// Package stochstream is a library for joining and caching stochastic data
// streams under limited cache memory, reproducing "On Joining and Caching
// Stochastic Streams" (Xie, Yang, Chen). It provides:
//
//   - stream models (stationary, linear trend with bounded noise, random
//     walks, AR(1)) with Δ-step conditional forecasting;
//   - the paper's framework of expected cumulative benefit (ECB) functions
//     and dominance tests that certify provably optimal replacement
//     decisions;
//   - the HEEB replacement heuristic with pluggable survival estimates
//     (Lfixed, Linf, Linv, Lexp) and its efficient implementations
//     (time-incremental updates, value-incremental transfer, precomputed
//     h1 curves and h2 surfaces with spline/bicubic approximation);
//   - the FlowExpect min-cost-flow algorithm (with a windowed variant) and
//     the offline optimum OPT-offline, whose schedule is replayable as a
//     clairvoyant policy;
//   - joining and caching simulators with the classic policies (RAND, PROB,
//     LIFE, reservoir sampling, LRU, LFU, LRU-k, LFD, Ao) for comparison;
//   - the paper's future-work extensions: sliding windows, band
//     (non-equality) joins, multi-way joins sharing one cache, adaptive α,
//     and automatic model detection from observed prefixes;
//   - an online operator (NewOperator) that emits actual joined pairs, for
//     embedding in a stream system;
//   - experiment harnesses regenerating every figure of the paper's
//     evaluation plus ablations, with table/CSV/ASCII-chart output.
//
// The facade below re-exports the stable API surface from the internal
// packages; see the examples/ directory and docs/paper-map.md for
// end-to-end usage and the section-by-section mapping to the paper.
package stochstream

import (
	"io"

	"stochstream/internal/cachepolicy"
	"stochstream/internal/cachesim"
	"stochstream/internal/core"
	"stochstream/internal/dist"
	"stochstream/internal/engine"
	"stochstream/internal/experiment"
	"stochstream/internal/interp"
	"stochstream/internal/join"
	"stochstream/internal/mincostflow"
	"stochstream/internal/modelsel"
	"stochstream/internal/multijoin"
	"stochstream/internal/policy"
	"stochstream/internal/process"
	"stochstream/internal/stats"
	"stochstream/internal/telemetry"
	"stochstream/internal/workload"
)

// Distributions (see internal/dist).
type (
	// PMF is a probability mass function over the integers.
	PMF = dist.PMF
	// Table is an explicit finite PMF.
	Table = dist.Table
)

// Distribution constructors.
var (
	// NewPointMass returns the distribution concentrated at one value.
	NewPointMass = dist.NewPointMass
	// NewUniform returns the discrete uniform distribution on [lo, hi].
	NewUniform = dist.NewUniform
	// BoundedNormal returns a zero-mean discretized normal truncated to
	// [-bound, bound].
	BoundedNormal = dist.BoundedNormal
	// NewTable builds an explicit PMF from weights.
	NewTable = dist.NewTable
	// Empirical builds the frequency histogram of observed values.
	Empirical = dist.Empirical
)

// Stream models (see internal/process).
type (
	// Process is a stochastic stream model with conditional forecasting.
	Process = process.Process
	// History is the observed prefix of a stream.
	History = process.History
	// Stationary produces i.i.d. values from one distribution.
	Stationary = process.Stationary
	// LinearTrend is X_t = Slope·t + Intercept + noise.
	LinearTrend = process.LinearTrend
	// RandomWalk accumulates i.i.d. integer steps.
	RandomWalk = process.RandomWalk
	// GaussianWalk is a random walk with drift and normal steps.
	GaussianWalk = process.GaussianWalk
	// AR1 is the first-order autoregressive model.
	AR1 = process.AR1
	// Deterministic replays a known sequence (offline streams).
	Deterministic = process.Deterministic
	// MarkovChain is a finite-state first-order Markov model.
	MarkovChain = process.MarkovChain
	// GeneralTrend is X_t = F(t) + noise for an arbitrary trend function.
	GeneralTrend = process.GeneralTrend
)

// Process constructors and history helpers.
var (
	// NewHistory returns a history pre-populated with observations.
	NewHistory = process.NewHistory
	// NewMarkovChain validates a transition matrix and builds the model.
	NewMarkovChain = process.NewMarkovChain
	// MarkovFirstPassageH is HEEB's exact first-reference score for finite
	// Markov reference streams.
	MarkovFirstPassageH = core.MarkovFirstPassageH
)

// Core framework (see internal/core).
type (
	// ECB is an expected cumulative benefit function (Section 4.1).
	ECB = core.ECB
	// LFunc estimates the probability a tuple stays cached (Section 4.3).
	LFunc = core.LFunc
	// LExp is e^{-Δt/α}, the paper's survival estimate of choice.
	LExp = core.LExp
	// LFixed is 1 up to a fixed horizon and 0 after.
	LFixed = core.LFixed
	// LInf is constant 1 (caching only).
	LInf = core.LInf
	// LInv is 1/Δt (caching only).
	LInv = core.LInv
	// LWindow clips an inner L to sliding-window semantics.
	LWindow = core.LWindow
	// StreamID identifies one of the two joined streams.
	StreamID = core.StreamID
	// H1 is a precomputed random-walk HEEB curve (Theorem 5).
	H1 = core.H1
	// H2 is a precomputed AR(1) HEEB surface (Theorem 5).
	H2 = core.H2
)

// The two streams of a binary join.
const (
	StreamR = core.StreamR
	StreamS = core.StreamS
)

// Core framework functions.
var (
	// JoinECB computes a candidate tuple's ECB against its partner stream
	// (Lemma 1).
	JoinECB = core.JoinECB
	// CacheECB computes a database tuple's ECB under an independent
	// reference stream (Corollary 1).
	CacheECB = core.CacheECB
	// Dominates reports ECB dominance (Section 4.2).
	Dominates = core.Dominates
	// StronglyDominates reports strict ECB dominance.
	StronglyDominates = core.StronglyDominates
	// DominatedSubset extracts a provably-discardable subset (Corollary 2).
	DominatedSubset = core.DominatedSubset
	// JoinH scores a candidate with HEEB for the joining problem.
	JoinH = core.JoinH
	// CacheH scores a database tuple with HEEB for the caching problem.
	CacheH = core.CacheH
	// MarginalH is the Theorem 5 marginal HEEB score for Markov streams.
	MarginalH = core.MarginalH
	// PrecomputeH1 tabulates h1 for a drifted random walk (Theorem 5(2)).
	PrecomputeH1 = core.PrecomputeH1
	// PrecomputeH2 tabulates h2 for an AR(1) stream (Theorem 5(1)).
	PrecomputeH2 = core.PrecomputeH2
	// OptOfflineJoin computes the MAX-subset offline optimum.
	OptOfflineJoin = core.OptOfflineJoin
)

// Joining simulation (see internal/join and internal/policy).
type (
	// JoinConfig configures a joining run.
	JoinConfig = join.Config
	// JoinPolicy is a replacement policy for the joining problem.
	JoinPolicy = join.Policy
	// JoinResult summarizes a joining run.
	JoinResult = join.Result
	// Tuple is a cached stream tuple.
	Tuple = join.Tuple
	// HEEBOptions configures the HEEB policy.
	HEEBOptions = policy.HEEBOptions
	// HEEBMode selects HEEB's scoring implementation.
	HEEBMode = policy.HEEBMode
	// Lifetime estimates a tuple's remaining joinable steps.
	Lifetime = policy.Lifetime
	// RandPolicy discards random tuples (expired first).
	RandPolicy = policy.Rand
	// ProbPolicy discards the least historically frequent value.
	ProbPolicy = policy.Prob
	// LifePolicy weighs frequency by remaining lifetime.
	LifePolicy = policy.Life
	// ReservoirPolicy is the sampling comparator from the related work.
	ReservoirPolicy = policy.Reservoir
	// ClairvoyantPolicy replays the offline optimum's schedule.
	ClairvoyantPolicy = policy.Clairvoyant
	// FlowExpectPolicy is the Section 3 min-cost-flow algorithm.
	FlowExpectPolicy = policy.FlowExpect
)

// HEEB scoring modes.
const (
	HEEBDirect           = policy.HEEBDirect
	HEEBIncremental      = policy.HEEBIncremental
	HEEBPrecomputedH1    = policy.HEEBPrecomputedH1
	HEEBPrecomputedH2    = policy.HEEBPrecomputedH2
	HEEBValueIncremental = policy.HEEBValueIncremental
)

// NewHEEB builds the paper's HEEB replacement policy.
var NewHEEB = policy.NewHEEB

// RunJoin simulates joining streams r and s under a policy.
func RunJoin(r, s []int, p JoinPolicy, cfg JoinConfig, seed uint64) JoinResult {
	return join.Run(r, s, p, cfg, stats.NewRNG(seed))
}

// Caching simulation (see internal/cachesim and internal/cachepolicy).
type (
	// CachePolicy is a replacement policy for the caching problem.
	CachePolicy = cachesim.Policy
	// CacheConfig configures a caching run.
	CacheConfig = cachesim.Config
	// CacheResult summarizes a caching run.
	CacheResult = cachesim.Result
	// LRU evicts the least recently used value.
	LRU = cachepolicy.LRU
	// LFU evicts the least frequently used value (perfect counts).
	LFU = cachepolicy.LFU
	// LRUK is the LRU-k policy of O'Neil et al.
	LRUK = cachepolicy.LRUK
	// LFD is Belady's offline-optimal policy.
	LFD = cachepolicy.LFD
	// Ao is the model-based policy of Aho, Denning and Ullman.
	Ao = cachepolicy.Ao
	// CacheHEEB is HEEB applied to the caching problem.
	CacheHEEB = cachepolicy.HEEB
	// CacheRand evicts a random cached value.
	CacheRand = cachepolicy.Rand
)

// RunCache replays a reference sequence against a caching policy.
func RunCache(refs []int, p CachePolicy, cfg CacheConfig, seed uint64) CacheResult {
	return cachesim.Run(refs, p, cfg, stats.NewRNG(seed))
}

// ReduceCachingToJoining performs the Section 2 reduction (Theorem 1).
var ReduceCachingToJoining = cachesim.Reduce

// Statistics utilities (see internal/stats).
type (
	// RNG is the library's deterministic random source.
	RNG = stats.RNG
	// AR1Fit is a fitted AR(1) model.
	AR1Fit = stats.AR1Fit
)

// Statistics functions.
var (
	// NewRNG seeds a deterministic random source.
	NewRNG = stats.NewRNG
	// FitAR1 fits an AR(1) model by conditional maximum likelihood.
	FitAR1 = stats.FitAR1
	// FitAR1Int fits an AR(1) model to an integer series.
	FitAR1Int = stats.FitAR1Int
	// AlphaForLifetime derives Lexp's α from a mean tuple lifetime.
	AlphaForLifetime = stats.AlphaForLifetime
)

// Online operator (see internal/engine): a push-driven join operator that
// emits the actual result pairs — the adoption surface for embedding the
// framework in a stream system.
type (
	// Operator is the step-driven binary join operator.
	Operator = engine.Join
	// OperatorConfig configures an Operator.
	OperatorConfig = engine.Config
	// OperatorTuple is a keyed tuple with an opaque payload.
	OperatorTuple = engine.Tuple
	// OperatorPair is one emitted join result.
	OperatorPair = engine.Pair
	// OperatorInput is one synchronized step for channel-driven operation.
	OperatorInput = engine.Input
	// OperatorMetrics snapshots the operator's counters.
	OperatorMetrics = engine.Metrics
)

// NewOperator builds an online join operator.
var NewOperator = engine.NewJoin

// Multi-way joins (see internal/multijoin): multiple binary equijoins over
// multiple streams sharing one cache, the appendix's extension.
type (
	// MultiJoinConfig describes a multi-join workload.
	MultiJoinConfig = multijoin.Config
	// MultiJoinEdge is one binary join between two streams.
	MultiJoinEdge = multijoin.Edge
	// MultiJoinPolicy decides evictions for the shared cache.
	MultiJoinPolicy = multijoin.Policy
	// MultiJoinResult summarizes a multi-join run.
	MultiJoinResult = multijoin.Result
	// MultiHEEB scores tuples by their summed per-partner HEEB scores.
	MultiHEEB = multijoin.HEEB
	// MultiRand is the random baseline for multi-joins.
	MultiRand = multijoin.Rand
	// MultiProb is the PROB heuristic summed over the join graph.
	MultiProb = multijoin.Prob
)

// RunMultiJoin simulates a multi-join workload.
func RunMultiJoin(streams [][]int, p MultiJoinPolicy, cfg MultiJoinConfig, seed uint64) (MultiJoinResult, error) {
	return multijoin.Run(streams, p, cfg, stats.NewRNG(seed))
}

// Band joins (the paper's non-equality-join extension): set
// JoinConfig.Band > 0, or use the band-aware core functions below.
var (
	// BandJoinECB generalizes Lemma 1 to band joins.
	BandJoinECB = core.BandJoinECB
	// BandJoinH generalizes HEEB's joining score to band joins.
	BandJoinH = core.BandJoinH
	// OptOfflineBandJoin is the offline optimum under a band join.
	OptOfflineBandJoin = core.OptOfflineBandJoin
)

// Model selection (see internal/modelsel): identify a stream's statistical
// properties from an observed prefix and obtain a fitted Process.
type (
	// ModelKind is a detected model class.
	ModelKind = modelsel.Kind
	// ModelReport is the outcome of model detection.
	ModelReport = modelsel.Report
	// ModelThresholds tunes the detection decision tree.
	ModelThresholds = modelsel.Thresholds
)

// Detected model classes.
const (
	ModelStationary  = modelsel.KindStationary
	ModelLinearTrend = modelsel.KindLinearTrend
	ModelRandomWalk  = modelsel.KindRandomWalk
	ModelAR1         = modelsel.KindAR1
)

// Model detection entry points.
var (
	// DetectModel identifies the model class of an observed series.
	DetectModel = modelsel.Detect
	// DetectModelWith runs detection with explicit thresholds.
	DetectModelWith = modelsel.DetectWith
)

// Workloads (see internal/workload).
type (
	// TrendSpec parameterizes a linear-trend joining workload.
	TrendSpec = workload.TrendSpec
	// JoinWorkload is a materialized joining workload.
	JoinWorkload = workload.JoinWorkload
	// RealWorkload is the REAL caching workload.
	RealWorkload = workload.RealWorkload
)

// Paper workload constructors.
var (
	// Tower is the TOWER configuration (sharp bounded normal noise).
	Tower = workload.Tower
	// Roof is the ROOF configuration (wide bounded normal noise).
	Roof = workload.Roof
	// Floor is the FLOOR configuration (bounded uniform noise).
	Floor = workload.Floor
	// Walk is the WALK configuration (two Gaussian random walks).
	Walk = workload.Walk
	// Real is the REAL caching workload specification.
	Real = workload.Real
	// RealSeasonal is REAL with a ±4 °C annual cycle (robustness variant).
	RealSeasonal = workload.RealSeasonal
)

// Experiments (see internal/experiment).
type (
	// ExperimentOptions controls experiment scale.
	ExperimentOptions = experiment.Options
	// FigureResult is a regenerated paper figure.
	FigureResult = experiment.Figure
)

// Experiment entry points.
var (
	// DefaultExperimentOptions returns interactive-scale options.
	DefaultExperimentOptions = experiment.Defaults
	// PaperScaleOptions returns the paper's full experiment scale.
	PaperScaleOptions = experiment.PaperScale
	// FigureIDs lists the regenerable figures.
	FigureIDs = experiment.IDs
)

// GenerateFigure regenerates the paper figure with the given id ("6".."19")
// and returns its data for rendering (FigureResult.Render for a text table,
// FigureResult.WriteCSV for CSV).
func GenerateFigure(id string, o ExperimentOptions) (*FigureResult, error) {
	gen, ok := experiment.Registry()[id]
	if !ok {
		return nil, &UnknownFigureError{ID: id}
	}
	return gen(o)
}

// Figure regenerates the paper figure with the given id ("6".."19") and
// renders it to w as a text table.
func Figure(id string, o ExperimentOptions, w io.Writer) error {
	fig, err := GenerateFigure(id, o)
	if err != nil {
		return err
	}
	fig.Render(w)
	return nil
}

// UnknownFigureError reports a figure id outside the registry.
type UnknownFigureError struct{ ID string }

// Error implements error.
func (e *UnknownFigureError) Error() string {
	return "stochstream: unknown figure " + e.ID + " (valid: 6..19, a1, a2)"
}

// Telemetry (see internal/telemetry and docs/observability.md): counters,
// gauges, latency histograms with p50/p90/p99, a decision trace recording
// per-candidate policy scores at each eviction, and Prometheus/JSON/HTTP
// export surfaces.
type (
	// TelemetryRegistry holds named metrics and the decision trace.
	TelemetryRegistry = telemetry.Registry
	// TelemetrySnapshot is the point-in-time JSON export schema.
	TelemetrySnapshot = telemetry.Snapshot
	// DecisionRecord is one traced eviction with per-candidate scores.
	DecisionRecord = telemetry.DecisionRecord
	// TraceCandidate is one scored candidate inside a DecisionRecord.
	TraceCandidate = telemetry.TraceCandidate
)

// Telemetry entry points.
var (
	// Telemetry returns the process-wide registry.
	Telemetry = telemetry.Default
	// EnableTelemetry turns on process-wide instrumentation: every RunJoin
	// step is timed, every policy is wrapped with decision instrumentation,
	// and the flow-solver counters are surfaced. Returns the registry.
	EnableTelemetry = telemetry.EnableGlobal
	// DisableTelemetry removes the process-wide hooks (collected metrics
	// stay readable).
	DisableTelemetry = telemetry.DisableGlobal
	// NewTelemetryRegistry builds a private registry for per-operator use
	// (OperatorConfig.Telemetry).
	NewTelemetryRegistry = telemetry.NewRegistry
	// InstrumentPolicy wraps a policy with latency/decision telemetry.
	InstrumentPolicy = telemetry.InstrumentPolicy
)

// Interpolation and flow-solver access for advanced use.
type (
	// Spline is a natural cubic spline.
	Spline = interp.Spline
	// FlowGraph is a min-cost max-flow network.
	FlowGraph = mincostflow.Graph
)

// Advanced constructors.
var (
	// NewSpline fits a natural cubic spline.
	NewSpline = interp.NewSpline
	// NewFlowGraph builds an empty flow network.
	NewFlowGraph = mincostflow.New
)
