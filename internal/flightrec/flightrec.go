// Package flightrec is the engine's flight recorder: an always-on,
// fixed-memory observability layer that keeps a causal record of what the
// operator was doing in the steps leading up to a fault. It has three parts:
//
//   - Step-phase spans. engine.Step is decomposed into recorded phases
//     (expiry-prune, probe, emit, score, evict, checkpoint) with begin/end
//     timestamps and key counts, written into a power-of-two ring buffer
//     with zero steady-state allocation. join.Run, policy.Ladder rung walks
//     and mincostflow solver attempts record child spans, so a ladder
//     downgrade is attributable to the exact solver budget event inside the
//     exact step.
//
//   - Per-tuple lifecycle tracking. A deterministic hash-sampled subset of
//     join keys gets full causal records — ingest, index admit, matches
//     emitted, cache admit/evict/expire — queryable by key. Sampling is
//     seeded from the operator Config, so it is replay-stable.
//
//   - Diagnostics bundles. On ErrInvariant, a ladder downgrade, a recovered
//     panic or an explicit signal, the engine dumps a versioned bundle (span
//     ring, lifecycle records, telemetry snapshot, downgrade trace and a
//     checkpoint in the internal/checkpoint envelope) to a directory; see
//     bundle.go and WriteChromeTrace for the Perfetto-loadable trace export.
//
// Determinism contract: the recorder never reads the wall clock itself. All
// timestamps come from the injected Clock; the engine installs its single
// wall-clock seam via EnsureClock, and deterministic runs (replay tests,
// export-determinism tests) inject LogicalClock instead. stochlint's
// dettaint analyzer enforces this package-wide.
package flightrec

import (
	"sync"
	"sync/atomic"
)

// Phase identifies what the operator was doing during a span.
type Phase uint8

// The recorded phases. PhaseStep is the per-step root span; the engine
// phases (expire … checkpoint) and the policy/solver phases (rung, solve)
// are its children. PhaseSimRun/PhaseSimStep come from the batch simulator.
const (
	PhaseStep Phase = iota
	PhaseExpire
	PhaseProbe
	PhaseEmit
	PhaseScore
	PhaseEvict
	PhaseCheckpoint
	PhaseRung
	PhaseSolve
	PhaseSimRun
	PhaseSimStep
	numPhases
)

var phaseNames = [numPhases]string{
	"step", "expire", "probe", "emit", "score", "evict",
	"checkpoint", "rung", "solve", "sim-run", "sim-step",
}

// String returns the phase's stable wire name.
func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return "unknown"
}

// MarshalJSON encodes the phase as its stable wire name.
func (p Phase) MarshalJSON() ([]byte, error) {
	return []byte(`"` + p.String() + `"`), nil
}

// UnmarshalJSON decodes a wire name back to a phase; unknown names decode to
// numPhases ("unknown") rather than failing, so bundles from newer versions
// still load.
func (p *Phase) UnmarshalJSON(b []byte) error {
	s := string(b)
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		s = s[1 : len(s)-1]
	}
	for i, n := range phaseNames {
		if n == s {
			*p = Phase(i)
			return nil
		}
	}
	*p = numPhases
	return nil
}

// Span is one recorded phase: its position in the step/parent hierarchy,
// begin/end timestamps from the injected clock, a key/item count, a
// phase-specific detail value and — for failed rung or solver attempts —
// the taxonomy error class.
type Span struct {
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent"`
	Step   int    `json:"step"`
	Phase  Phase  `json:"phase"`
	Label  string `json:"label,omitempty"`
	Begin  int64  `json:"begin_ns"`
	End    int64  `json:"end_ns"`
	// Keys counts the items the phase touched: pruned entries for expire,
	// probe hits for probe, emitted pairs for emit/step, candidates for
	// score/rung, cached entries for checkpoint.
	Keys int `json:"keys"`
	// Detail is a phase-specific scalar: evictions needed for score/evict,
	// flow units for solve, evictions for the step root.
	Detail int64  `json:"detail"`
	Err    string `json:"err,omitempty"`
}

// Active is an in-flight span handle returned by Begin*. It is a small
// value that lives on the caller's stack, so beginning and ending a span
// allocates nothing.
type Active struct {
	id     uint64
	parent uint64
	step   int
	phase  Phase
	label  string
	begin  int64
}

// SpanID returns the span's identity, usable as an explicit parent for
// BeginChild.
func (a Active) SpanID() uint64 { return a.id }

// Options configures a Recorder. The zero value is usable: a 1024-span
// ring, 1-in-64 key sampling with seed 0, 128 tracked keys with 32 events
// each, the built-in logical clock, and no bundle directory.
type Options struct {
	// RingSize is the span ring capacity, rounded up to a power of two.
	// Default 1024.
	RingSize int
	// Clock supplies span timestamps (nanoseconds by convention). When nil
	// the recorder uses its own logical clock and a later EnsureClock call
	// (the engine's wall-clock seam) may replace it; a non-nil Clock is
	// pinned and EnsureClock leaves it alone.
	Clock func() int64
	// SampleSeed seeds the lifecycle key sampler; the engine passes the
	// operator seed so sampling is replay-stable.
	SampleSeed uint64
	// SampleEvery tracks roughly one in SampleEvery keys, rounded up to a
	// power of two. 1 tracks every key; default 64.
	SampleEvery int
	// MaxTrackedKeys bounds the lifecycle map. Default 128.
	MaxTrackedKeys int
	// EventsPerKey bounds each tracked key's event ring. Default 32.
	EventsPerKey int
	// BundleDir, when non-empty, enables WriteBundle.
	BundleDir string
	// MaxBundles bounds how many bundles this recorder will write; 0 means
	// unlimited. Production deployments should set a bound so a flapping
	// fault cannot fill the disk.
	MaxBundles int
}

// Recorder is the flight recorder: a fixed-memory span ring plus the
// sampled lifecycle store. All methods are safe for concurrent use; the
// write path (Begin/End/Life) takes one short mutex hold and allocates
// nothing at steady state.
type Recorder struct {
	mu sync.Mutex

	clock       func() int64
	clockPinned bool

	ring   []Span
	mask   int
	next   int
	total  uint64
	nextID uint64

	curStep   int
	curParent uint64

	sampleSeed uint64
	sampleMask uint64
	maxKeys    int
	eventsPer  int
	keys       map[int]*keyLife

	bundleDir      string
	maxBundles     int
	bundlesWritten int
}

// New returns a recorder for the options; see Options for defaults.
func New(opts Options) *Recorder {
	ring := nextPow2(opts.RingSize, 1024)
	every := nextPow2(opts.SampleEvery, 64)
	maxKeys := opts.MaxTrackedKeys
	if maxKeys <= 0 {
		maxKeys = 128
	}
	eventsPer := opts.EventsPerKey
	if eventsPer <= 0 {
		eventsPer = 32
	}
	r := &Recorder{
		clock:       opts.Clock,
		clockPinned: opts.Clock != nil,
		ring:        make([]Span, ring),
		mask:        ring - 1,
		sampleSeed:  opts.SampleSeed,
		sampleMask:  uint64(every - 1),
		maxKeys:     maxKeys,
		eventsPer:   eventsPer,
		keys:        make(map[int]*keyLife, maxKeys),
		bundleDir:   opts.BundleDir,
		maxBundles:  opts.MaxBundles,
	}
	if r.clock == nil {
		r.clock = LogicalClock()
	}
	return r
}

// LogicalClock returns a deterministic clock: successive calls return 1, 2,
// 3, … Use it for replay and export-determinism tests, where span
// timestamps must be identical across identical seeded runs.
func LogicalClock() func() int64 {
	var c atomic.Int64
	return func() int64 { return c.Add(1) }
}

// EnsureClock installs fn as the recorder's clock unless the caller pinned
// one via Options.Clock. It is the engine's hook: engine.NewJoin passes its
// single wall-clock seam here, so production runs get real timestamps while
// a test that injected LogicalClock keeps it.
func (r *Recorder) EnsureClock(fn func() int64) {
	if fn == nil {
		return
	}
	r.mu.Lock()
	if !r.clockPinned {
		r.clock = fn
		r.clockPinned = true
	}
	r.mu.Unlock()
}

// Clock returns the recorder's resolved clock, for callers (the engine's
// latency telemetry) that must share the recorder's time base.
func (r *Recorder) Clock() func() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.clock
}

// BeginStep opens the root span for one operator step. Subsequent Begin
// calls (until EndStep) record children of this span.
func (r *Recorder) BeginStep(step int) Active {
	r.mu.Lock()
	r.nextID++
	a := Active{id: r.nextID, step: step, phase: PhaseStep, begin: r.clock()}
	r.curStep = step
	r.curParent = a.id
	r.mu.Unlock()
	return a
}

// Begin opens a child span of the current step under the given phase.
func (r *Recorder) Begin(phase Phase) Active { return r.BeginLabel(phase, "") }

// BeginLabel is Begin with a label (a rung or solver name). Pass constant
// strings; the label is stored by reference.
func (r *Recorder) BeginLabel(phase Phase, label string) Active {
	r.mu.Lock()
	r.nextID++
	a := Active{id: r.nextID, parent: r.curParent, step: r.curStep, phase: phase, label: label, begin: r.clock()}
	r.mu.Unlock()
	return a
}

// BeginChild opens a span under an explicit parent instead of the current
// step — used by the simulator, whose run span outlives many step spans.
func (r *Recorder) BeginChild(phase Phase, label string, parent uint64) Active {
	r.mu.Lock()
	r.nextID++
	a := Active{id: r.nextID, parent: parent, step: r.curStep, phase: phase, label: label, begin: r.clock()}
	r.mu.Unlock()
	return a
}

// End closes a span and writes it to the ring.
func (r *Recorder) End(a Active, keys int, detail int64) {
	r.finish(a, keys, detail, "")
}

// Fail closes a span that represents a failed attempt, recording the
// taxonomy error class. Pass constant strings.
func (r *Recorder) Fail(a Active, keys int, detail int64, errClass string) {
	r.finish(a, keys, detail, errClass)
}

// EndStep closes a step root span and detaches the current-parent state.
func (r *Recorder) EndStep(a Active, keys int, detail int64) {
	r.mu.Lock()
	r.writeLocked(a, keys, detail, "")
	r.curParent = 0
	r.mu.Unlock()
}

func (r *Recorder) finish(a Active, keys int, detail int64, errClass string) {
	r.mu.Lock()
	r.writeLocked(a, keys, detail, errClass)
	r.mu.Unlock()
}

func (r *Recorder) writeLocked(a Active, keys int, detail int64, errClass string) {
	r.ring[r.next] = Span{
		ID:     a.id,
		Parent: a.parent,
		Step:   a.step,
		Phase:  a.phase,
		Label:  a.label,
		Begin:  a.begin,
		End:    r.clock(),
		Keys:   keys,
		Detail: detail,
		Err:    errClass,
	}
	r.next = (r.next + 1) & r.mask
	r.total++
}

// CurrentStep returns the step of the most recent BeginStep.
func (r *Recorder) CurrentStep() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.curStep
}

// TotalSpans returns the number of spans ever recorded, including those the
// ring has overwritten.
func (r *Recorder) TotalSpans() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Spans returns a copy of the retained spans in record (completion) order,
// oldest first.
func (r *Recorder) Spans() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.spansLocked()
}

func (r *Recorder) spansLocked() []Span {
	n := len(r.ring)
	if r.total < uint64(n) {
		n = int(r.total)
	}
	out := make([]Span, 0, n)
	if r.total >= uint64(len(r.ring)) {
		out = append(out, r.ring[r.next:]...)
		out = append(out, r.ring[:r.next]...)
	} else {
		out = append(out, r.ring[:r.next]...)
	}
	return out
}

// LastSpans returns the newest n retained spans, oldest first; n <= 0
// returns an empty (non-nil) slice and n beyond the retained count returns
// everything. It backs the telemetry /spans endpoint.
func (r *Recorder) LastSpans(n int) []Span {
	spans := r.Spans()
	if n < 0 {
		n = 0
	}
	if n < len(spans) {
		spans = spans[len(spans)-n:]
	}
	return spans
}

// nextPow2 rounds v up to a power of two, substituting def (itself a power
// of two) when v is not positive.
func nextPow2(v, def int) int {
	if v <= 0 {
		return def
	}
	p := 1
	for p < v {
		p <<= 1
	}
	return p
}
