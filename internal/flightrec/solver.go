package flightrec

import (
	"errors"
	"sync"

	"stochstream/internal/mincostflow"
)

// AttachSolver installs a mincostflow.SolveObserver that records every solver
// attempt as a PhaseSolve child span of the current step, labeled with the
// solver name and carrying the routed flow (Keys and Detail) and, on failure,
// the taxonomy error class. It returns an uninstall func; callers must invoke
// it before attaching a different recorder (the observer is process-wide,
// like the solver failure hook it mirrors).
func AttachSolver(r *Recorder) (uninstall func()) {
	// Solves can nest across goroutines in principle, but every caller in
	// this repo solves from the engine goroutine, so a simple LIFO stack of
	// active spans pairs Begin with End correctly.
	var mu sync.Mutex
	var stack []Active
	mincostflow.SetSolveObserver(&mincostflow.SolveObserver{
		Begin: func(solver string) {
			a := r.BeginLabel(PhaseSolve, solver)
			mu.Lock()
			stack = append(stack, a)
			mu.Unlock()
		},
		End: func(solver string, flow int64, err error) {
			mu.Lock()
			if len(stack) == 0 {
				mu.Unlock()
				return
			}
			a := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			mu.Unlock()
			if err == nil {
				r.End(a, int(flow), flow)
				return
			}
			r.Fail(a, int(flow), flow, solveErrClass(err))
		},
	})
	return func() { mincostflow.SetSolveObserver(nil) }
}

// solveErrClass maps solver errors to static taxonomy strings, so failed
// solve spans carry no per-call allocations.
func solveErrClass(err error) string {
	switch {
	case errors.Is(err, mincostflow.ErrBudgetExceeded):
		return "budget"
	case errors.Is(err, mincostflow.ErrDisconnected):
		return "disconnected"
	case errors.Is(err, mincostflow.ErrNumericalInstability):
		return "numerical-instability"
	case errors.Is(err, mincostflow.ErrInjectedFailure):
		return "injected"
	default:
		return "error"
	}
}
