package flightrec

import "sort"

// LifeKind classifies one lifecycle event of a tracked key.
type LifeKind uint8

// The lifecycle event kinds, in the causal order a tuple moves through the
// operator: ingest (arrival observed), reject (StepChecked refused the
// arrival), match (a join pair emitted), admit (cached and indexed), evict
// (a replacement decision discarded it) and expire (window expiry pruned
// it).
const (
	LifeIngest LifeKind = iota
	LifeReject
	LifeMatch
	LifeAdmit
	LifeEvict
	LifeExpire
	numLifeKinds
)

var lifeKindNames = [numLifeKinds]string{
	"ingest", "reject", "match", "admit", "evict", "expire",
}

// String returns the kind's stable wire name.
func (k LifeKind) String() string {
	if int(k) < len(lifeKindNames) {
		return lifeKindNames[k]
	}
	return "unknown"
}

// MarshalJSON encodes the kind as its stable wire name.
func (k LifeKind) MarshalJSON() ([]byte, error) {
	return []byte(`"` + k.String() + `"`), nil
}

// UnmarshalJSON decodes a wire name back to a kind; unknown names decode to
// numLifeKinds ("unknown") so newer bundles still load.
func (k *LifeKind) UnmarshalJSON(b []byte) error {
	s := string(b)
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		s = s[1 : len(s)-1]
	}
	for i, n := range lifeKindNames {
		if n == s {
			*k = LifeKind(i)
			return nil
		}
	}
	*k = numLifeKinds
	return nil
}

// LifeEvent is one causal record in a tracked key's lifecycle.
type LifeEvent struct {
	Step int      `json:"step"`
	Kind LifeKind `json:"kind"`
	// Stream is "R" or "S". Pass constant strings; the value is stored by
	// reference.
	Stream string `json:"stream"`
	// TupleID is the operator-assigned tuple ID, or -1 when the event
	// precedes ID assignment (a rejected arrival).
	TupleID int `json:"tuple_id"`
	// Partner is the other side's key on a match event, 0 otherwise.
	Partner int `json:"partner"`
}

// KeyLifecycle is one tracked key's record: the retained events plus the
// total ever recorded (the ring keeps the newest EventsPerKey).
type KeyLifecycle struct {
	Key    int         `json:"key"`
	Total  int         `json:"total"`
	Events []LifeEvent `json:"events"`
}

// keyLife is the fixed-capacity per-key event ring.
type keyLife struct {
	events []LifeEvent
	next   int
	total  int
}

// Sampled reports whether a key is in the deterministic tracked subset:
// a seeded hash of the key masked by the sampling rate. The same seed and
// rate always select the same keys, so replays track identical subsets.
func (r *Recorder) Sampled(key int) bool {
	return splitmix64(uint64(key)^r.sampleSeed)&r.sampleMask == 0
}

// Life records one lifecycle event for a sampled key. Keys beyond
// MaxTrackedKeys are dropped (the map is full-memory-bounded); events
// beyond EventsPerKey overwrite the oldest for that key. Callers should
// gate on Sampled first — Life itself does not re-check, so tests can force
// events for specific keys.
func (r *Recorder) Life(key int, ev LifeEvent) {
	r.mu.Lock()
	kl := r.keys[key]
	if kl == nil {
		if len(r.keys) >= r.maxKeys {
			r.mu.Unlock()
			return
		}
		kl = &keyLife{events: make([]LifeEvent, 0, r.eventsPer)}
		r.keys[key] = kl
	}
	if len(kl.events) < cap(kl.events) {
		kl.events = append(kl.events, ev)
	} else {
		kl.events[kl.next] = ev
		kl.next = (kl.next + 1) % cap(kl.events)
	}
	kl.total++
	r.mu.Unlock()
}

// Lifecycle returns a tracked key's record, chronological, or nil when the
// key is not tracked.
func (r *Recorder) Lifecycle(key int) []LifeEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	kl := r.keys[key]
	if kl == nil {
		return nil
	}
	return kl.snapshot()
}

func (kl *keyLife) snapshot() []LifeEvent {
	out := make([]LifeEvent, 0, len(kl.events))
	out = append(out, kl.events[kl.next:]...)
	out = append(out, kl.events[:kl.next]...)
	return out
}

// TrackedKeys returns the tracked keys in ascending order.
func (r *Recorder) TrackedKeys() []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.trackedKeysLocked()
}

func (r *Recorder) trackedKeysLocked() []int {
	ks := make([]int, 0, len(r.keys))
	for k := range r.keys {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	return ks
}

// lifecycleLocked snapshots every tracked key's record in key order, for
// bundle export.
func (r *Recorder) lifecycleLocked() []KeyLifecycle {
	ks := r.trackedKeysLocked()
	out := make([]KeyLifecycle, 0, len(ks))
	for _, k := range ks {
		kl := r.keys[k]
		out = append(out, KeyLifecycle{Key: k, Total: kl.total, Events: kl.snapshot()})
	}
	return out
}

// splitmix64 is the SplitMix64 finalizer: a strong, allocation-free integer
// hash. Fixed constants keep the sampled subset stable across builds.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
