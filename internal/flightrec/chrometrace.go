package flightrec

import (
	"encoding/json"
	"fmt"
	"io"
)

// Chrome trace_event export: the span ring serialized as "X" (complete)
// events in the JSON Object Format — {"traceEvents": [...]} — which
// Perfetto (ui.perfetto.dev) and chrome://tracing load directly. Timestamps
// are microseconds by the format's convention; span clocks are nanoseconds,
// so ts/dur are divided by 1e3.

// traceEvent is one trace_event record. Field order is fixed by the struct,
// so identical span slices marshal to identical bytes — the export
// determinism tests rely on it.
type traceEvent struct {
	Name string    `json:"name"`
	Cat  string    `json:"cat"`
	Ph   string    `json:"ph"`
	Ts   float64   `json:"ts"`
	Dur  float64   `json:"dur"`
	Pid  int       `json:"pid"`
	Tid  int       `json:"tid"`
	Args traceArgs `json:"args"`
}

type traceArgs struct {
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent"`
	Step   int    `json:"step"`
	Keys   int    `json:"keys"`
	Detail int64  `json:"detail"`
	Label  string `json:"label,omitempty"`
	Err    string `json:"err,omitempty"`
}

type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteChromeTrace writes spans as Chrome trace_event JSON. Load the output
// in Perfetto or chrome://tracing; spans nest visually by time containment
// (all events share one pid/tid track).
func WriteChromeTrace(w io.Writer, spans []Span) error {
	events := make([]traceEvent, len(spans))
	for i, s := range spans {
		name := s.Phase.String()
		if s.Label != "" {
			name = name + ":" + s.Label
		}
		dur := s.End - s.Begin
		if dur < 0 {
			dur = 0
		}
		events[i] = traceEvent{
			Name: name,
			Cat:  "flightrec",
			Ph:   "X",
			Ts:   float64(s.Begin) / 1e3,
			Dur:  float64(dur) / 1e3,
			Pid:  1,
			Tid:  1,
			Args: traceArgs{
				ID:     s.ID,
				Parent: s.Parent,
				Step:   s.Step,
				Keys:   s.Keys,
				Detail: s.Detail,
				Label:  s.Label,
				Err:    s.Err,
			},
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(traceFile{TraceEvents: events, DisplayTimeUnit: "ns"}); err != nil {
		return fmt.Errorf("flightrec: encoding chrome trace: %w", err)
	}
	return nil
}

// WriteChromeTrace exports the recorder's retained span ring; see the
// package-level WriteChromeTrace.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	return WriteChromeTrace(w, r.Spans())
}
