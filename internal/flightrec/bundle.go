package flightrec

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"stochstream/internal/checkpoint"
)

// Diagnostics bundles: on a fault (ErrInvariant, ladder downgrade, recovered
// panic) or an explicit signal, the engine dumps everything the flight
// recorder knows — plus operator state and telemetry snapshots supplied by
// the caller — into one versioned directory:
//
//	manifest.json    version, reason, step, file inventory (written last,
//	                 so a manifest's presence marks a complete bundle)
//	spans.json       the retained span ring, oldest first
//	trace.json       the same spans as Chrome trace_event JSON (Perfetto)
//	lifecycle.json   per-key lifecycle records for the sampled subset
//	telemetry.json   telemetry registry snapshot        (if source given)
//	downgrades.json  ladder downgrade trace             (if source given)
//	checkpoint.sscp  operator checkpoint, SSCP envelope (if source given)
//
// Directory names are deterministic — bundle-<seq>-step<step>-<reason> —
// so identical seeded runs produce identical bundle paths.

// BundleVersion is the bundle format version recorded in every manifest.
const BundleVersion = 1

// Bundle write errors.
var (
	// ErrNoBundleDir means the recorder was built without Options.BundleDir.
	ErrNoBundleDir = errors.New("flightrec: no bundle directory configured")
	// ErrBundleLimit means Options.MaxBundles bundles have already been
	// written; the fault is likely flapping and further dumps would only
	// fill the disk.
	ErrBundleLimit = errors.New("flightrec: bundle limit reached")
)

// BundleInfo describes why a bundle is being written.
type BundleInfo struct {
	// Reason is a short taxonomy word: "invariant", "downgrade", "panic",
	// "signal". It becomes part of the directory name.
	Reason string
	// Step is the operator step at which the fault surfaced.
	Step int
}

// BundleSources are caller-supplied writers for the parts of a bundle the
// recorder cannot see itself. Any nil source is skipped.
type BundleSources struct {
	// Checkpoint serializes the operator state (engine.Join.Checkpoint).
	// It runs outside the recorder lock, so the spans it records while
	// serializing are safe — they land in the ring after the snapshot this
	// bundle captures.
	Checkpoint func(io.Writer) error
	// Telemetry writes the registry snapshot (telemetry.Registry.WriteJSON).
	Telemetry func(io.Writer) error
	// Downgrades writes the ladder downgrade trace as JSON.
	Downgrades func(io.Writer) error
}

// Manifest is the bundle's self-description, written last.
type Manifest struct {
	Version int    `json:"version"`
	Reason  string `json:"reason"`
	Step    int    `json:"step"`
	// Spans is the number of spans in spans.json; SpansTotal counts every
	// span ever recorded, so SpansTotal - Spans is how many the ring lost.
	Spans       int      `json:"spans"`
	SpansTotal  uint64   `json:"spans_total"`
	TrackedKeys int      `json:"tracked_keys"`
	Files       []string `json:"files"`
	// CheckpointError records a checkpoint source failure; the bundle is
	// still written (the spans are exactly what a failing serialize needs)
	// but checkpoint.sscp is absent.
	CheckpointError string `json:"checkpoint_error,omitempty"`
}

// Bundle is a loaded diagnostics bundle.
type Bundle struct {
	Dir       string
	Manifest  Manifest
	Spans     []Span
	Lifecycle []KeyLifecycle
	// Checkpoint is the raw checkpoint.sscp bytes (envelope included),
	// validated against the SSCP codec; pass them to engine.Join.Restore.
	// Nil when the bundle has no checkpoint.
	Checkpoint []byte
}

// WriteBundle dumps a diagnostics bundle and returns its directory. The span
// ring and lifecycle store are snapshotted atomically under the recorder
// lock; sources then run unlocked, so a Checkpoint source that records spans
// of its own does not deadlock.
func (r *Recorder) WriteBundle(info BundleInfo, src BundleSources) (string, error) {
	r.mu.Lock()
	if r.bundleDir == "" {
		r.mu.Unlock()
		return "", ErrNoBundleDir
	}
	if r.maxBundles > 0 && r.bundlesWritten >= r.maxBundles {
		r.mu.Unlock()
		return "", fmt.Errorf("%w (%d written)", ErrBundleLimit, r.bundlesWritten)
	}
	seq := r.bundlesWritten
	r.bundlesWritten++
	spans := r.spansLocked()
	life := r.lifecycleLocked()
	total := r.total
	root := r.bundleDir
	r.mu.Unlock()

	dir := filepath.Join(root, fmt.Sprintf("bundle-%04d-step%08d-%s", seq, info.Step, sanitizeReason(info.Reason)))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("flightrec: creating bundle dir: %w", err)
	}

	man := Manifest{
		Version:     BundleVersion,
		Reason:      info.Reason,
		Step:        info.Step,
		Spans:       len(spans),
		SpansTotal:  total,
		TrackedKeys: len(life),
	}

	if err := writeJSONFile(dir, "spans.json", spans, &man); err != nil {
		return "", err
	}
	if err := writeFile(dir, "trace.json", &man, func(w io.Writer) error {
		return WriteChromeTrace(w, spans)
	}); err != nil {
		return "", err
	}
	if err := writeJSONFile(dir, "lifecycle.json", life, &man); err != nil {
		return "", err
	}
	if src.Telemetry != nil {
		if err := writeFile(dir, "telemetry.json", &man, src.Telemetry); err != nil {
			return "", err
		}
	}
	if src.Downgrades != nil {
		if err := writeFile(dir, "downgrades.json", &man, src.Downgrades); err != nil {
			return "", err
		}
	}
	if src.Checkpoint != nil {
		if err := writeFile(dir, "checkpoint.sscp", &man, src.Checkpoint); err != nil {
			// A failing checkpoint must not lose the rest of the bundle —
			// the spans are the evidence for diagnosing that very failure.
			man.CheckpointError = err.Error()
			_ = os.Remove(filepath.Join(dir, "checkpoint.sscp"))
		}
	}

	mb, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return "", fmt.Errorf("flightrec: encoding manifest: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), append(mb, '\n'), 0o644); err != nil {
		return "", fmt.Errorf("flightrec: writing manifest: %w", err)
	}
	return dir, nil
}

// LoadBundle reads a bundle directory back, validating the manifest version
// and — when a checkpoint is present — its SSCP envelope (magic, version,
// CRC32), so a corrupt bundle is rejected before anyone tries to restore it.
func LoadBundle(dir string) (*Bundle, error) {
	mb, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return nil, fmt.Errorf("flightrec: reading manifest: %w", err)
	}
	b := &Bundle{Dir: dir}
	if err := json.Unmarshal(mb, &b.Manifest); err != nil {
		return nil, fmt.Errorf("flightrec: decoding manifest: %w", err)
	}
	if b.Manifest.Version <= 0 || b.Manifest.Version > BundleVersion {
		return nil, fmt.Errorf("flightrec: bundle version %d, loader supports <= %d", b.Manifest.Version, BundleVersion)
	}
	sb, err := os.ReadFile(filepath.Join(dir, "spans.json"))
	if err != nil {
		return nil, fmt.Errorf("flightrec: reading spans: %w", err)
	}
	if err := json.Unmarshal(sb, &b.Spans); err != nil {
		return nil, fmt.Errorf("flightrec: decoding spans: %w", err)
	}
	lb, err := os.ReadFile(filepath.Join(dir, "lifecycle.json"))
	if err != nil {
		return nil, fmt.Errorf("flightrec: reading lifecycle: %w", err)
	}
	if err := json.Unmarshal(lb, &b.Lifecycle); err != nil {
		return nil, fmt.Errorf("flightrec: decoding lifecycle: %w", err)
	}
	ckPath := filepath.Join(dir, "checkpoint.sscp")
	if cb, err := os.ReadFile(ckPath); err == nil {
		if _, err := checkpoint.Read(bytes.NewReader(cb)); err != nil {
			return nil, fmt.Errorf("flightrec: bundle checkpoint invalid: %w", err)
		}
		b.Checkpoint = cb
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("flightrec: reading checkpoint: %w", err)
	}
	return b, nil
}

func writeJSONFile(dir, name string, v any, man *Manifest) error {
	return writeFile(dir, name, man, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(v)
	})
}

func writeFile(dir, name string, man *Manifest, fn func(io.Writer) error) error {
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return fmt.Errorf("flightrec: creating %s: %w", name, err)
	}
	werr := fn(f)
	cerr := f.Close()
	if werr != nil {
		return fmt.Errorf("flightrec: writing %s: %w", name, werr)
	}
	if cerr != nil {
		return fmt.Errorf("flightrec: closing %s: %w", name, cerr)
	}
	man.Files = append(man.Files, name)
	return nil
}

// sanitizeReason maps a reason to directory-name-safe characters.
func sanitizeReason(reason string) string {
	if reason == "" {
		return "signal"
	}
	out := make([]byte, 0, len(reason))
	for i := 0; i < len(reason); i++ {
		c := reason[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '-':
			out = append(out, c)
		case c >= 'A' && c <= 'Z':
			out = append(out, c+'a'-'A')
		default:
			out = append(out, '-')
		}
	}
	return string(out)
}
