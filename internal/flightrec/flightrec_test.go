package flightrec_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"stochstream/internal/checkpoint"
	"stochstream/internal/flightrec"
)

func TestSpanRingBasics(t *testing.T) {
	r := flightrec.New(flightrec.Options{RingSize: 8})
	for step := 0; step < 3; step++ {
		root := r.BeginStep(step)
		child := r.Begin(flightrec.PhaseProbe)
		r.End(child, 2, 0)
		r.EndStep(root, 1, 0)
	}
	if got := r.TotalSpans(); got != 6 {
		t.Fatalf("TotalSpans = %d, want 6", got)
	}
	spans := r.Spans()
	if len(spans) != 6 {
		t.Fatalf("len(Spans) = %d, want 6", len(spans))
	}
	// Spans complete child-before-root, oldest first.
	if spans[0].Phase != flightrec.PhaseProbe || spans[1].Phase != flightrec.PhaseStep {
		t.Fatalf("unexpected phase order: %v then %v", spans[0].Phase, spans[1].Phase)
	}
	if spans[0].Parent != spans[1].ID {
		t.Fatalf("child parent = %d, want root ID %d", spans[0].Parent, spans[1].ID)
	}
	if spans[0].Step != 0 || spans[5].Step != 2 {
		t.Fatalf("steps = %d..%d, want 0..2", spans[0].Step, spans[5].Step)
	}
	for i, s := range spans {
		if s.End < s.Begin {
			t.Fatalf("span %d ends (%d) before it begins (%d)", i, s.End, s.Begin)
		}
		if i > 0 && s.End < spans[i-1].End {
			t.Fatalf("span %d out of completion order", i)
		}
	}
}

func TestSpanRingWrap(t *testing.T) {
	r := flightrec.New(flightrec.Options{RingSize: 4})
	for i := 0; i < 10; i++ {
		a := r.BeginStep(i)
		r.EndStep(a, 0, 0)
	}
	if got := r.TotalSpans(); got != 10 {
		t.Fatalf("TotalSpans = %d, want 10", got)
	}
	spans := r.Spans()
	if len(spans) != 4 {
		t.Fatalf("ring retained %d spans, want 4", len(spans))
	}
	for i, s := range spans {
		if want := 6 + i; s.Step != want {
			t.Fatalf("retained span %d has step %d, want %d (newest 4, oldest first)", i, s.Step, want)
		}
	}
}

func TestRingSizeRounding(t *testing.T) {
	r := flightrec.New(flightrec.Options{RingSize: 5})
	for i := 0; i < 100; i++ {
		a := r.BeginStep(i)
		r.EndStep(a, 0, 0)
	}
	if got := len(r.Spans()); got != 8 {
		t.Fatalf("RingSize 5 retained %d spans, want 8 (next power of two)", got)
	}
}

func TestLastSpans(t *testing.T) {
	r := flightrec.New(flightrec.Options{RingSize: 8})
	for i := 0; i < 5; i++ {
		a := r.BeginStep(i)
		r.EndStep(a, 0, 0)
	}
	if got := r.LastSpans(0); got == nil || len(got) != 0 {
		t.Fatalf("LastSpans(0) = %v, want empty non-nil", got)
	}
	if got := r.LastSpans(-3); got == nil || len(got) != 0 {
		t.Fatalf("LastSpans(-3) = %v, want empty non-nil", got)
	}
	got := r.LastSpans(2)
	if len(got) != 2 || got[0].Step != 3 || got[1].Step != 4 {
		t.Fatalf("LastSpans(2) steps = %v, want [3 4]", got)
	}
	if got := r.LastSpans(100); len(got) != 5 {
		t.Fatalf("LastSpans(100) len = %d, want all 5", len(got))
	}
}

func TestFailRecordsErrClass(t *testing.T) {
	r := flightrec.New(flightrec.Options{})
	root := r.BeginStep(0)
	a := r.BeginLabel(flightrec.PhaseRung, "FLOWEXPECT")
	r.Fail(a, 3, 1, "solver-budget")
	r.EndStep(root, 0, 0)
	spans := r.Spans()
	if spans[0].Err != "solver-budget" || spans[0].Label != "FLOWEXPECT" {
		t.Fatalf("failed span = %+v, want err class and label", spans[0])
	}
}

func TestLogicalClockDeterminism(t *testing.T) {
	run := func() []flightrec.Span {
		r := flightrec.New(flightrec.Options{Clock: flightrec.LogicalClock()})
		for i := 0; i < 4; i++ {
			root := r.BeginStep(i)
			c := r.Begin(flightrec.PhaseEvict)
			r.End(c, i, 0)
			r.EndStep(root, 0, 0)
		}
		return r.Spans()
	}
	a, b := run(), run()
	ab, _ := json.Marshal(a)
	bb, _ := json.Marshal(b)
	if !bytes.Equal(ab, bb) {
		t.Fatalf("identical runs under LogicalClock differ:\n%s\n%s", ab, bb)
	}
}

func TestEnsureClockRespectsPinned(t *testing.T) {
	pinned := flightrec.New(flightrec.Options{Clock: func() int64 { return 42 }})
	pinned.EnsureClock(func() int64 { return 7 })
	if got := pinned.Clock()(); got != 42 {
		t.Fatalf("EnsureClock replaced a pinned clock: got %d", got)
	}
	unpinned := flightrec.New(flightrec.Options{})
	unpinned.EnsureClock(func() int64 { return 7 })
	if got := unpinned.Clock()(); got != 7 {
		t.Fatalf("EnsureClock did not install on default clock: got %d", got)
	}
	// The first EnsureClock wins; later ones are ignored.
	unpinned.EnsureClock(func() int64 { return 9 })
	if got := unpinned.Clock()(); got != 7 {
		t.Fatalf("second EnsureClock replaced the first: got %d", got)
	}
}

func TestSamplingDeterministicAndSeedSensitive(t *testing.T) {
	a := flightrec.New(flightrec.Options{SampleSeed: 1, SampleEvery: 8})
	b := flightrec.New(flightrec.Options{SampleSeed: 1, SampleEvery: 8})
	c := flightrec.New(flightrec.Options{SampleSeed: 2, SampleEvery: 8})
	sampled, differs := 0, false
	for k := 0; k < 4096; k++ {
		if a.Sampled(k) != b.Sampled(k) {
			t.Fatalf("same seed disagrees on key %d", k)
		}
		if a.Sampled(k) {
			sampled++
		}
		if a.Sampled(k) != c.Sampled(k) {
			differs = true
		}
	}
	// 1-in-8 sampling over 4096 keys: expect ~512; allow a wide band.
	if sampled < 256 || sampled > 1024 {
		t.Fatalf("sampled %d of 4096 keys at rate 1/8", sampled)
	}
	if !differs {
		t.Fatal("different seeds selected identical subsets")
	}
}

func TestSampleEveryOneTracksAll(t *testing.T) {
	r := flightrec.New(flightrec.Options{SampleEvery: 1})
	for k := 0; k < 100; k++ {
		if !r.Sampled(k) {
			t.Fatalf("SampleEvery=1 rejected key %d", k)
		}
	}
}

func TestLifecycle(t *testing.T) {
	r := flightrec.New(flightrec.Options{SampleEvery: 1, MaxTrackedKeys: 2, EventsPerKey: 4})
	for i := 0; i < 6; i++ {
		r.Life(7, flightrec.LifeEvent{Step: i, Kind: flightrec.LifeIngest, Stream: "R", TupleID: i})
	}
	r.Life(9, flightrec.LifeEvent{Step: 0, Kind: flightrec.LifeAdmit, Stream: "S", TupleID: 1})
	r.Life(11, flightrec.LifeEvent{Step: 0, Kind: flightrec.LifeAdmit, Stream: "S", TupleID: 2}) // over MaxTrackedKeys: dropped

	evs := r.Lifecycle(7)
	if len(evs) != 4 {
		t.Fatalf("key 7 retained %d events, want 4 (EventsPerKey)", len(evs))
	}
	for i, ev := range evs {
		if want := 2 + i; ev.Step != want {
			t.Fatalf("key 7 event %d has step %d, want %d (newest 4, oldest first)", i, ev.Step, want)
		}
	}
	if got := r.Lifecycle(11); got != nil {
		t.Fatalf("key over MaxTrackedKeys was tracked: %v", got)
	}
	if got := r.Lifecycle(8); got != nil {
		t.Fatalf("unseen key returned events: %v", got)
	}
	if keys := r.TrackedKeys(); len(keys) != 2 || keys[0] != 7 || keys[1] != 9 {
		t.Fatalf("TrackedKeys = %v, want [7 9]", keys)
	}
}

func TestZeroSteadyStateAllocations(t *testing.T) {
	r := flightrec.New(flightrec.Options{RingSize: 64, SampleEvery: 1, EventsPerKey: 8})
	// Warm the lifecycle ring past its append phase.
	for i := 0; i < 16; i++ {
		r.Life(5, flightrec.LifeEvent{Step: i, Kind: flightrec.LifeMatch, Stream: "R"})
	}
	step := 0
	allocs := testing.AllocsPerRun(200, func() {
		root := r.BeginStep(step)
		c := r.BeginLabel(flightrec.PhaseRung, "HEEB")
		r.End(c, 3, 1)
		r.Life(5, flightrec.LifeEvent{Step: step, Kind: flightrec.LifeMatch, Stream: "R"})
		r.EndStep(root, 1, 0)
		step++
	})
	if allocs != 0 {
		t.Fatalf("steady-state span+lifecycle recording allocates %.1f per step, want 0", allocs)
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := flightrec.New(flightrec.Options{RingSize: 128, SampleEvery: 1})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				a := r.Begin(flightrec.PhaseSolve)
				r.Life(g, flightrec.LifeEvent{Step: i, Kind: flightrec.LifeMatch, Stream: "R"})
				r.End(a, 1, 0)
				_ = r.LastSpans(8)
			}
		}(g)
	}
	wg.Wait()
	if got := r.TotalSpans(); got != 8*200 {
		t.Fatalf("TotalSpans = %d, want %d", got, 8*200)
	}
}

func TestPhaseAndLifeKindJSONRoundTrip(t *testing.T) {
	for p := flightrec.PhaseStep; p <= flightrec.PhaseSimStep; p++ {
		b, err := json.Marshal(p)
		if err != nil {
			t.Fatal(err)
		}
		var back flightrec.Phase
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatal(err)
		}
		if back != p {
			t.Fatalf("phase %v round-tripped to %v", p, back)
		}
	}
	var unknown flightrec.Phase
	if err := json.Unmarshal([]byte(`"from-the-future"`), &unknown); err != nil {
		t.Fatalf("unknown phase name must not error: %v", err)
	}
	if unknown.String() != "unknown" {
		t.Fatalf("unknown phase decoded to %q", unknown.String())
	}
	for k := flightrec.LifeIngest; k <= flightrec.LifeExpire; k++ {
		b, _ := json.Marshal(k)
		var back flightrec.LifeKind
		if err := json.Unmarshal(b, &back); err != nil || back != k {
			t.Fatalf("life kind %v round-tripped to %v (err %v)", k, back, err)
		}
	}
}

// TestChromeTraceSchema validates WriteChromeTrace output against the Chrome
// trace_event JSON Object Format: a traceEvents array of complete ("X")
// events, each with name/cat/ph/ts/dur/pid/tid, ts and dur in microseconds.
func TestChromeTraceSchema(t *testing.T) {
	r := flightrec.New(flightrec.Options{Clock: flightrec.LogicalClock()})
	root := r.BeginStep(3)
	c := r.BeginLabel(flightrec.PhaseRung, "HEEB")
	r.Fail(c, 4, 2, "model-diverged")
	r.EndStep(root, 1, 0)

	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("traceEvents has %d events, want 2", len(doc.TraceEvents))
	}
	for i, ev := range doc.TraceEvents {
		for _, field := range []string{"name", "cat", "ph", "ts", "dur", "pid", "tid", "args"} {
			if _, ok := ev[field]; !ok {
				t.Fatalf("event %d missing required field %q: %v", i, field, ev)
			}
		}
		if ev["ph"] != "X" {
			t.Fatalf("event %d has ph %v, want complete event \"X\"", i, ev["ph"])
		}
		ts, ok := ev["ts"].(float64)
		if !ok || ts < 0 {
			t.Fatalf("event %d ts = %v, want non-negative number", i, ev["ts"])
		}
		dur, ok := ev["dur"].(float64)
		if !ok || dur < 0 {
			t.Fatalf("event %d dur = %v, want non-negative number", i, ev["dur"])
		}
	}
	if name := doc.TraceEvents[0]["name"]; name != "rung:HEEB" {
		t.Fatalf("labeled span exported as %v, want rung:HEEB", name)
	}
	args := doc.TraceEvents[0]["args"].(map[string]any)
	if args["err"] != "model-diverged" {
		t.Fatalf("failed span args = %v, want err class", args)
	}
	if args["step"].(float64) != 3 {
		t.Fatalf("span step exported as %v, want 3", args["step"])
	}
}

func TestChromeTraceDeterminism(t *testing.T) {
	render := func() []byte {
		r := flightrec.New(flightrec.Options{Clock: flightrec.LogicalClock()})
		for i := 0; i < 5; i++ {
			root := r.BeginStep(i)
			c := r.Begin(flightrec.PhaseProbe)
			r.End(c, i, 0)
			r.EndStep(root, i, 0)
		}
		var buf bytes.Buffer
		if err := r.WriteChromeTrace(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if a, b := render(), render(); !bytes.Equal(a, b) {
		t.Fatal("identical logical-clock runs rendered different Chrome traces")
	}
}

func TestBundleRoundTrip(t *testing.T) {
	dir := t.TempDir()
	r := flightrec.New(flightrec.Options{
		Clock:       flightrec.LogicalClock(),
		SampleEvery: 1,
		BundleDir:   dir,
	})
	root := r.BeginStep(7)
	r.Life(42, flightrec.LifeEvent{Step: 7, Kind: flightrec.LifeAdmit, Stream: "R", TupleID: 14})
	r.EndStep(root, 2, 1)

	payload := []byte("operator-state")
	bdir, err := r.WriteBundle(flightrec.BundleInfo{Reason: "Invariant #3!", Step: 7}, flightrec.BundleSources{
		Checkpoint: func(w io.Writer) error { return checkpoint.Write(w, payload) },
		Telemetry:  func(w io.Writer) error { _, err := io.WriteString(w, `{"m":1}`); return err },
		Downgrades: func(w io.Writer) error { _, err := io.WriteString(w, `[]`); return err },
	})
	if err != nil {
		t.Fatal(err)
	}
	base := filepath.Base(bdir)
	if base != "bundle-0000-step00000007-invariant--3-" {
		t.Fatalf("bundle dir %q not deterministic/sanitized", base)
	}

	b, err := flightrec.LoadBundle(bdir)
	if err != nil {
		t.Fatal(err)
	}
	if b.Manifest.Version != flightrec.BundleVersion || b.Manifest.Reason != "Invariant #3!" || b.Manifest.Step != 7 {
		t.Fatalf("manifest = %+v", b.Manifest)
	}
	if b.Manifest.Spans != 1 || b.Manifest.SpansTotal != 1 || b.Manifest.TrackedKeys != 1 {
		t.Fatalf("manifest counts = %+v", b.Manifest)
	}
	wantFiles := []string{"spans.json", "trace.json", "lifecycle.json", "telemetry.json", "downgrades.json", "checkpoint.sscp"}
	if strings.Join(b.Manifest.Files, ",") != strings.Join(wantFiles, ",") {
		t.Fatalf("manifest files = %v, want %v", b.Manifest.Files, wantFiles)
	}
	if len(b.Spans) != 1 || b.Spans[0].Phase != flightrec.PhaseStep || b.Spans[0].Step != 7 {
		t.Fatalf("loaded spans = %+v", b.Spans)
	}
	if len(b.Lifecycle) != 1 || b.Lifecycle[0].Key != 42 || b.Lifecycle[0].Total != 1 {
		t.Fatalf("loaded lifecycle = %+v", b.Lifecycle)
	}
	got, err := checkpoint.Read(bytes.NewReader(b.Checkpoint))
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("embedded checkpoint payload = %q, %v", got, err)
	}
}

func TestBundleCheckpointFailureKeepsBundle(t *testing.T) {
	dir := t.TempDir()
	r := flightrec.New(flightrec.Options{BundleDir: dir})
	a := r.BeginStep(0)
	r.EndStep(a, 0, 0)
	bdir, err := r.WriteBundle(flightrec.BundleInfo{Reason: "panic", Step: 0}, flightrec.BundleSources{
		Checkpoint: func(io.Writer) error { return fmt.Errorf("cache inconsistent") },
	})
	if err != nil {
		t.Fatalf("a failing checkpoint source must not fail the bundle: %v", err)
	}
	b, err := flightrec.LoadBundle(bdir)
	if err != nil {
		t.Fatal(err)
	}
	if b.Manifest.CheckpointError == "" || b.Checkpoint != nil {
		t.Fatalf("manifest = %+v, checkpoint = %v; want recorded error and no checkpoint", b.Manifest, b.Checkpoint)
	}
	if _, err := os.Stat(filepath.Join(bdir, "checkpoint.sscp")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("partial checkpoint.sscp left behind: %v", err)
	}
}

func TestBundleLimitsAndErrors(t *testing.T) {
	r := flightrec.New(flightrec.Options{})
	if _, err := r.WriteBundle(flightrec.BundleInfo{}, flightrec.BundleSources{}); !errors.Is(err, flightrec.ErrNoBundleDir) {
		t.Fatalf("no BundleDir: err = %v, want ErrNoBundleDir", err)
	}
	r = flightrec.New(flightrec.Options{BundleDir: t.TempDir(), MaxBundles: 2})
	for i := 0; i < 2; i++ {
		if _, err := r.WriteBundle(flightrec.BundleInfo{Reason: "signal", Step: i}, flightrec.BundleSources{}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.WriteBundle(flightrec.BundleInfo{Reason: "signal", Step: 2}, flightrec.BundleSources{}); !errors.Is(err, flightrec.ErrBundleLimit) {
		t.Fatalf("over MaxBundles: err = %v, want ErrBundleLimit", err)
	}
}

func TestLoadBundleRejectsCorruptCheckpoint(t *testing.T) {
	dir := t.TempDir()
	r := flightrec.New(flightrec.Options{BundleDir: dir})
	bdir, err := r.WriteBundle(flightrec.BundleInfo{Reason: "signal", Step: 0}, flightrec.BundleSources{
		Checkpoint: func(w io.Writer) error { return checkpoint.Write(w, []byte("state")) },
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(bdir, "checkpoint.sscp")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xFF // corrupt the CRC
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := flightrec.LoadBundle(bdir); !errors.Is(err, checkpoint.ErrChecksum) {
		t.Fatalf("corrupt checkpoint: err = %v, want ErrChecksum", err)
	}
}

func TestLoadBundleRejectsNewerVersion(t *testing.T) {
	dir := t.TempDir()
	r := flightrec.New(flightrec.Options{BundleDir: dir})
	bdir, err := r.WriteBundle(flightrec.BundleInfo{Reason: "signal", Step: 0}, flightrec.BundleSources{})
	if err != nil {
		t.Fatal(err)
	}
	manPath := filepath.Join(bdir, "manifest.json")
	man, err := os.ReadFile(manPath)
	if err != nil {
		t.Fatal(err)
	}
	future := bytes.Replace(man, []byte(`"version": 1`), []byte(`"version": 99`), 1)
	if bytes.Equal(future, man) {
		t.Fatal("test did not rewrite the manifest version")
	}
	if err := os.WriteFile(manPath, future, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := flightrec.LoadBundle(bdir); err == nil || !strings.Contains(err.Error(), "version 99") {
		t.Fatalf("future-version bundle loaded: err = %v", err)
	}
}
