package lintrules

import (
	"strings"

	"stochstream/internal/lintrules/analysis"
)

// Rule pairs an analyzer with the set of packages it applies to. Scoping
// lives here, in the suite, not in the analyzers: analysistest runs an
// analyzer directly on a corpus package regardless of scope.
type Rule struct {
	Analyzer *analysis.Analyzer
	// Applies reports whether the analyzer runs on the package with the
	// given import path.
	Applies func(pkgPath string) bool
}

// decisionPkgs are the packages whose code decides replacements: the
// paper's guarantees require their behavior to be a pure, deterministic
// function of stream state and seed.
var decisionPkgs = []string{
	"stochstream/internal/core",
	"stochstream/internal/policy",
	"stochstream/internal/cachepolicy",
	"stochstream/internal/engine",
	"stochstream/internal/mincostflow",
	// The fault-tolerance layer inherits the contract: a checkpoint must
	// restore identically and a fault plan must replay identically, so
	// neither may read clocks or ambient randomness.
	"stochstream/internal/checkpoint",
	"stochstream/internal/faultinject",
}

// emissionPkgs additionally carry result emission and metric export, whose
// output must be byte-identical across replays.
var emissionPkgs = append([]string{
	"stochstream/internal/join",
	"stochstream/internal/telemetry",
}, decisionPkgs...)

func inAny(pkgPath string, roots []string) bool {
	for _, r := range roots {
		if pkgPath == r || strings.HasPrefix(pkgPath, r+"/") {
			return true
		}
	}
	return false
}

func everywhere(string) bool { return true }

// Rules returns the stochlint suite with its package scoping.
func Rules() []Rule {
	return []Rule{
		{Detsource, func(p string) bool { return inAny(p, decisionPkgs) }},
		{Maprange, func(p string) bool { return inAny(p, emissionPkgs) }},
		{Floateq, everywhere},
		{Stepretain, everywhere},
		{Locksafe, everywhere},
	}
}

// Analyzers returns the five analyzers without scoping, for tests and docs.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{Detsource, Maprange, Floateq, Stepretain, Locksafe}
}
