// Package lintrules is stochlint's analyzer suite: fifteen custom static
// checks that mechanically enforce the determinism and correctness
// contracts the paper's guarantees rest on (Theorem 3 dominance optimality
// and the Corollary 3–5 incremental updates require every replacement
// decision to be a pure, deterministic function of stream state).
//
// Eleven of the analyzers are interprocedural, running on per-function
// summaries computed over the whole module by internal/lintrules/dataflow
// (call graph, fixed-point solver, CFG def-use chains, field-access
// summaries), so a contract violation hidden behind any chain of helper
// calls still surfaces. Four of those — dettaint, stepescape, scorepure,
// errdiscipline — track value and purity contracts; four — goleak,
// chandiscipline, atomicfield, mergedet — are the concurrency-safety suite
// over the sharded runtime (goroutine termination, channel discipline,
// atomic-vs-plain field access, and merge-order determinism); and three —
// snapcomplete, fingerprintcover, wirexhaustive — are the state-contract
// suite (serialization completeness, config-fingerprint coverage, and wire
// protocol exhaustiveness). The rest are syntactic or type-based
// per-package checks.
//
// The analyzers are built on internal/lintrules/analysis, an offline mirror
// of the golang.org/x/tools/go/analysis API. cmd/stochlint is the
// multichecker driver; docs/static-analysis.md documents each rule, its
// rationale and the //lint:ignore suppression directive.
package lintrules

import (
	"strings"

	"stochstream/internal/lintrules/analysis"
)

// Rule pairs an analyzer with the set of packages it applies to. Scoping
// lives here, in the suite, not in the analyzers: analysistest runs an
// analyzer directly on a corpus package regardless of scope.
type Rule struct {
	Analyzer *analysis.Analyzer
	// Applies reports whether the analyzer runs on the package with the
	// given import path.
	Applies func(pkgPath string) bool
}

// decisionPkgs are the packages whose code decides replacements: the
// paper's guarantees require their behavior to be a pure, deterministic
// function of stream state and seed.
var decisionPkgs = []string{
	"stochstream/internal/core",
	"stochstream/internal/policy",
	"stochstream/internal/cachepolicy",
	"stochstream/internal/engine",
	"stochstream/internal/mincostflow",
	// The fault-tolerance layer inherits the contract: a checkpoint must
	// restore identically and a fault plan must replay identically, so
	// neither may read clocks or ambient randomness.
	"stochstream/internal/checkpoint",
	"stochstream/internal/faultinject",
	// The flight recorder runs inside Step: span timestamps must come
	// through the engine's clock seam (flightrec.Options.Clock /
	// Recorder.Clock), never time.Now directly, or two replays of the same
	// seed stop being byte-identical.
	"stochstream/internal/flightrec",
	// The sharded runtime's routing, batching, merge order and budget
	// rebalancing all decide which tuples reach which cache and when; any
	// clock or ambient-rand read there breaks checkpoint replay of the
	// whole runtime, not just one shard.
	"stochstream/internal/shardrt",
	// The network daemon (and its wire/client subpackages, caught by the
	// prefix match) admits, orders and replays batches: any ambient clock
	// or randomness in sequencing, dedup or replay decisions would break
	// the drain/restart byte-identity guarantee. Wall-clock needs —
	// connection deadlines, reaping, backoff jitter — go through the
	// Config.Clock seam or seeded stats.RNG.
	"stochstream/internal/streamd",
}

// emissionPkgs additionally carry result emission and metric export, whose
// output must be byte-identical across replays.
var emissionPkgs = append([]string{
	"stochstream/internal/join",
	"stochstream/internal/telemetry",
	// The managed HTTP server lifecycle: its serve goroutine is the
	// pattern goleak's managed-serve evidence exists for.
	"stochstream/internal/httpd",
}, decisionPkgs...)

func inAny(pkgPath string, roots []string) bool {
	for _, r := range roots {
		if pkgPath == r || strings.HasPrefix(pkgPath, r+"/") {
			return true
		}
	}
	return false
}

func everywhere(string) bool { return true }

// mergedetPkgs scope the merge-order determinism check to the sharded
// runtime, the one place that merges concurrent shard outputs into an
// emission order.
var mergedetPkgs = []string{
	"stochstream/internal/shardrt",
	// The daemon forwards the runtime's merged order to clients; anything
	// it persists or returns must preserve that order.
	"stochstream/internal/streamd",
}

// statePkgs scope serialization completeness to the packages that own
// snapshot/restore pairs: the engine and sharded runtime checkpoints, the
// policies' SnapshotState/RestoreState, the stats trackers and RNG, and the
// core sketches' binary codecs.
var statePkgs = []string{
	"stochstream/internal/core",
	"stochstream/internal/policy",
	"stochstream/internal/cachepolicy",
	"stochstream/internal/engine",
	"stochstream/internal/shardrt",
	"stochstream/internal/stats",
}

// fingerprintPkgs scope config-fingerprint coverage to the packages whose
// checkpoints carry a config fingerprint compared on restore.
var fingerprintPkgs = []string{
	"stochstream/internal/engine",
	"stochstream/internal/shardrt",
}

// wirePkgs scope protocol exhaustiveness to the daemon tree (the wire
// package itself, the daemon, and the client, via the prefix match).
var wirePkgs = []string{
	"stochstream/internal/streamd",
}

// Rules returns the stochlint suite with its package scoping.
func Rules() []Rule {
	return []Rule{
		{Dettaint, func(p string) bool { return inAny(p, decisionPkgs) }},
		{Maprange, func(p string) bool { return inAny(p, emissionPkgs) }},
		{Floateq, everywhere},
		{Stepretain, everywhere},
		{Stepescape, everywhere},
		{Locksafe, everywhere},
		{Scorepure, func(p string) bool { return inAny(p, scorepurePkgs) }},
		{Errdiscipline, func(p string) bool { return inAny(p, decisionPkgs) }},
		{Goleak, func(p string) bool { return inAny(p, emissionPkgs) }},
		{Chandiscipline, func(p string) bool { return inAny(p, decisionPkgs) }},
		{Atomicfield, func(p string) bool { return inAny(p, emissionPkgs) }},
		{Mergedet, func(p string) bool { return inAny(p, mergedetPkgs) }},
		{Snapcomplete, func(p string) bool { return inAny(p, statePkgs) }},
		{Fingerprintcover, func(p string) bool { return inAny(p, fingerprintPkgs) }},
		{Wirexhaustive, func(p string) bool { return inAny(p, wirePkgs) }},
	}
}

// Analyzers returns the fifteen analyzers without scoping, for tests and docs.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		Dettaint, Maprange, Floateq, Stepretain, Stepescape, Locksafe, Scorepure, Errdiscipline,
		Goleak, Chandiscipline, Atomicfield, Mergedet,
		Snapcomplete, Fingerprintcover, Wirexhaustive,
	}
}
