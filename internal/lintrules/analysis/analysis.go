// Package analysis is a minimal, dependency-free mirror of the
// golang.org/x/tools/go/analysis API surface that the stochlint analyzers
// use. The build environment for this repository is fully offline (empty
// module cache, no proxy), so the x/tools module cannot be a dependency;
// this package keeps the same shape — Analyzer, Pass, Reportf — so the
// analyzers can be moved onto the real framework by swapping one import
// when x/tools becomes available.
//
// Beyond the x/tools subset, RunAnalyzer implements the repo's suppression
// directive:
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// A directive suppresses matching diagnostics on its own line (trailing
// comment) and on the immediately following line (standalone comment). The
// reason is mandatory; a bare directive suppresses nothing.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check. Run inspects the package held by the
// Pass and reports findings via Pass.Reportf.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) (interface{}, error)
}

// Pass is the interface between one Analyzer and one package being checked.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// Diagnostic is one finding, positioned by token.Pos within the pass's
// FileSet.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.diags = append(p.diags, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Finding is a resolved diagnostic: file position plus the analyzer that
// produced it. This is what drivers print and what tests compare against.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// RunAnalyzer runs a over one type-checked package, applies //lint:ignore
// suppression, and returns the surviving findings sorted by position.
func RunAnalyzer(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Finding, error) {
	pass := &Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
	}
	if _, err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %w", a.Name, err)
	}
	sup := collectSuppressions(fset, files)
	var out []Finding
	for _, d := range pass.diags {
		pos := fset.Position(d.Pos)
		if sup.suppressed(a.Name, pos) {
			continue
		}
		out = append(out, Finding{Pos: pos, Analyzer: a.Name, Message: d.Message})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return out, nil
}

// suppressions maps file → line → set of suppressed analyzer names ("*"
// suppresses every analyzer).
type suppressions map[string]map[int]map[string]bool

func (s suppressions) suppressed(analyzer string, pos token.Position) bool {
	byLine := s[pos.Filename]
	if byLine == nil {
		return false
	}
	names := byLine[pos.Line]
	return names != nil && (names[analyzer] || names["*"])
}

const ignorePrefix = "//lint:ignore "

func collectSuppressions(fset *token.FileSet, files []*ast.File) suppressions {
	sup := suppressions{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, ignorePrefix))
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					continue // a reason is mandatory; a bare directive is inert
				}
				pos := fset.Position(c.Pos())
				byLine := sup[pos.Filename]
				if byLine == nil {
					byLine = map[int]map[string]bool{}
					sup[pos.Filename] = byLine
				}
				for _, ln := range []int{pos.Line, pos.Line + 1} {
					names := byLine[ln]
					if names == nil {
						names = map[string]bool{}
						byLine[ln] = names
					}
					for _, n := range strings.Split(fields[0], ",") {
						names[strings.TrimSpace(n)] = true
					}
				}
			}
		}
	}
	return sup
}
