// Package analysis is a minimal, dependency-free mirror of the
// golang.org/x/tools/go/analysis API surface that the stochlint analyzers
// use. The build environment for this repository is fully offline (empty
// module cache, no proxy), so the x/tools module cannot be a dependency;
// this package keeps the same shape — Analyzer, Pass, Reportf — so the
// analyzers can be moved onto the real framework by swapping one import
// when x/tools becomes available.
//
// Beyond the x/tools subset, this package implements the repo's suppression
// directive:
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// A directive suppresses matching diagnostics on its own line (trailing
// comment) and on the immediately following line (standalone comment). The
// reason is mandatory; a bare directive suppresses nothing. Directives are
// audited: SuppressionTable tracks which directives actually suppressed a
// diagnostic (or killed taint/impurity propagation at summary time in the
// dataflow analyzers), and Audit turns stale or malformed directives into
// findings of the pseudo-analyzer "staleignore".
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"sync"
)

// Analyzer describes one static check. Run inspects the package held by the
// Pass and reports findings via Pass.Reportf.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) (interface{}, error)
}

// Pass is the interface between one Analyzer and one package being checked.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Facts is the whole-program context shared across packages — a
	// *dataflow.Program when the driver built one — used by the
	// interprocedural analyzers to read per-function summaries. Nil for
	// purely syntactic analyzers or single-package runs.
	Facts interface{}

	diags []Diagnostic
}

// Diagnostic is one finding, positioned by token.Pos within the pass's
// FileSet.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.diags = append(p.diags, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Finding is a resolved diagnostic: file position plus the analyzer that
// produced it. This is what drivers print and what tests compare against.
// Suppressed findings are retained (for the driver's -json output and the
// suppression audit); only unsuppressed findings gate CI.
type Finding struct {
	Pos        token.Position
	Analyzer   string
	Message    string
	Suppressed bool
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// SortFindings orders findings by (file, line, column, analyzer) — the
// deterministic output order every driver and test relies on.
func SortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i].Pos, fs[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return fs[i].Analyzer < fs[j].Analyzer
	})
}

// RunAnalyzer runs a over one type-checked package with a throwaway
// suppression table built from the package's own files, and returns every
// finding (suppressed ones flagged) sorted by position. Multi-analyzer
// drivers that audit suppressions share one table via RunAnalyzerWith.
func RunAnalyzer(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Finding, error) {
	table := NewSuppressionTable()
	table.AddFiles(fset, files)
	return RunAnalyzerWith(a, table, nil, fset, files, pkg, info)
}

// RunAnalyzerWith runs a over one type-checked package, marking findings
// covered by a directive in table as suppressed (and recording the directive
// use for the audit). facts is the whole-program context handed to
// interprocedural analyzers via Pass.Facts; nil for syntactic ones.
func RunAnalyzerWith(a *Analyzer, table *SuppressionTable, facts interface{}, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Finding, error) {
	pass := &Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		Facts:     facts,
	}
	if _, err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %w", a.Name, err)
	}
	var out []Finding
	for _, d := range pass.diags {
		pos := fset.Position(d.Pos)
		out = append(out, Finding{
			Pos:        pos,
			Analyzer:   a.Name,
			Message:    d.Message,
			Suppressed: table.Suppresses(a.Name, pos),
		})
	}
	SortFindings(out)
	return out, nil
}

// Directive is one parsed //lint:ignore comment.
type Directive struct {
	// Pos is the position of the comment itself.
	Pos token.Position
	// Names are the analyzer names the directive claims to suppress ("*"
	// suppresses every analyzer).
	Names []string
	// Reason is the mandatory free-text justification; empty when the
	// directive is malformed (and therefore inert).
	Reason string

	used bool
}

// SuppressionTable indexes every //lint:ignore directive of a run and
// records which ones earned their keep. It is safe for concurrent use by
// the driver's per-package workers.
type SuppressionTable struct {
	mu sync.Mutex
	// byLine maps file → line → directives covering that line (a directive
	// covers its own line and the next).
	byLine map[string]map[int][]*Directive
	dirs   []*Directive
	seen   map[string]bool // files already collected
}

// NewSuppressionTable returns an empty table.
func NewSuppressionTable() *SuppressionTable {
	return &SuppressionTable{
		byLine: map[string]map[int][]*Directive{},
		seen:   map[string]bool{},
	}
}

const ignorePrefix = "//lint:ignore"

// AddFiles collects the directives of files into the table. Files already
// collected (by filename) are skipped, so overlapping package loads are
// safe.
func (t *SuppressionTable) AddFiles(fset *token.FileSet, files []*ast.File) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, f := range files {
		fname := fset.Position(f.Pos()).Filename
		if t.seen[fname] {
			continue
		}
		t.seen[fname] = true
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if c.Text != ignorePrefix && !strings.HasPrefix(c.Text, ignorePrefix+" ") {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, ignorePrefix))
				fields := strings.Fields(rest)
				d := &Directive{Pos: fset.Position(c.Pos())}
				if len(fields) > 0 {
					for _, n := range strings.Split(fields[0], ",") {
						if n = strings.TrimSpace(n); n != "" {
							d.Names = append(d.Names, n)
						}
					}
				}
				if len(fields) > 1 {
					d.Reason = strings.Join(fields[1:], " ")
				}
				t.dirs = append(t.dirs, d)
				byLine := t.byLine[d.Pos.Filename]
				if byLine == nil {
					byLine = map[int][]*Directive{}
					t.byLine[d.Pos.Filename] = byLine
				}
				for _, ln := range []int{d.Pos.Line, d.Pos.Line + 1} {
					byLine[ln] = append(byLine[ln], d)
				}
			}
		}
	}
}

// Suppresses reports whether a well-formed directive covers a finding of
// analyzer at pos, marking the directive used. A directive without a reason
// is inert: it suppresses nothing (and the audit flags it).
func (t *SuppressionTable) Suppresses(analyzer string, pos token.Position) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	hit := false
	for _, d := range t.byLine[pos.Filename][pos.Line] {
		if d.Reason == "" {
			continue
		}
		for _, n := range d.Names {
			if n == analyzer || n == "*" {
				d.used = true
				hit = true
			}
		}
	}
	return hit
}

// StaleignoreName is the pseudo-analyzer the suppression audit reports
// under. It is not a registered Analyzer: its findings come from Audit, not
// from a Run over a package, and they cannot themselves be suppressed.
const StaleignoreName = "staleignore"

// Audit returns one staleignore finding per defective directive in the
// given file set: directives naming an analyzer outside known, directives
// without the mandatory reason, and well-formed directives that suppressed
// nothing in this run. Call it only after every applicable analyzer has run
// over every file in files, or live directives will be reported as stale.
func (t *SuppressionTable) Audit(known func(name string) bool, files map[string]bool) []Finding {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Finding
	report := func(d *Directive, format string, args ...interface{}) {
		out = append(out, Finding{
			Pos:      d.Pos,
			Analyzer: StaleignoreName,
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for _, d := range t.dirs {
		if files != nil && !files[d.Pos.Filename] {
			continue
		}
		if len(d.Names) == 0 {
			report(d, "bare //lint:ignore directive: name the analyzer(s) and give a reason")
			continue
		}
		bad := false
		for _, n := range d.Names {
			if n != "*" && !known(n) {
				report(d, "//lint:ignore names unknown analyzer %q (known analyzers are listed in docs/static-analysis.md)", n)
				bad = true
			}
		}
		if bad {
			continue
		}
		if d.Reason == "" {
			report(d, "//lint:ignore %s without a reason: the justification is mandatory and the directive is inert until one is given", strings.Join(d.Names, ","))
			continue
		}
		if !d.used {
			report(d, "stale //lint:ignore %s: no finding on this line to suppress; delete the directive or fix the drift", strings.Join(d.Names, ","))
		}
	}
	SortFindings(out)
	return out
}
