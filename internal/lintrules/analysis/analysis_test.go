package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseTable(t *testing.T, src string) (*token.FileSet, *SuppressionTable) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "sup.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	table := NewSuppressionTable()
	table.AddFiles(fset, []*ast.File{f})
	return fset, table
}

func auditMessages(t *testing.T, table *SuppressionTable, known ...string) []string {
	t.Helper()
	set := map[string]bool{}
	for _, k := range known {
		set[k] = true
	}
	fs := table.Audit(func(n string) bool { return set[n] }, nil)
	var msgs []string
	for _, f := range fs {
		msgs = append(msgs, f.Message)
	}
	return msgs
}

func TestBareDirectiveIsInertAndAudited(t *testing.T) {
	_, table := parseTable(t, `package p

func f() int {
	//lint:ignore
	return 1
}
`)
	if table.Suppresses("floateq", token.Position{Filename: "sup.go", Line: 5}) {
		t.Error("bare directive must not suppress anything")
	}
	msgs := auditMessages(t, table, "floateq")
	if len(msgs) != 1 || !strings.Contains(msgs[0], "bare //lint:ignore") {
		t.Errorf("want one bare-directive finding, got %q", msgs)
	}
}

func TestMissingReasonIsInertAndAudited(t *testing.T) {
	_, table := parseTable(t, `package p

func f() int {
	//lint:ignore floateq
	return 1
}
`)
	if table.Suppresses("floateq", token.Position{Filename: "sup.go", Line: 5}) {
		t.Error("reasonless directive must not suppress anything")
	}
	msgs := auditMessages(t, table, "floateq")
	if len(msgs) != 1 || !strings.Contains(msgs[0], "without a reason") {
		t.Errorf("want one missing-reason finding, got %q", msgs)
	}
}

func TestUnknownAnalyzerAudited(t *testing.T) {
	_, table := parseTable(t, `package p

func f() int {
	//lint:ignore flaoteq typo of floateq
	return 1
}
`)
	msgs := auditMessages(t, table, "floateq")
	if len(msgs) != 1 || !strings.Contains(msgs[0], `unknown analyzer "flaoteq"`) {
		t.Errorf("want one unknown-analyzer finding, got %q", msgs)
	}
}

func TestUsedDirectiveNotStale(t *testing.T) {
	_, table := parseTable(t, `package p

func f() int {
	//lint:ignore floateq exact comparison intended
	return 1
}
`)
	// Covers its own line and the next.
	if !table.Suppresses("floateq", token.Position{Filename: "sup.go", Line: 5}) {
		t.Error("directive must cover the following line")
	}
	if msgs := auditMessages(t, table, "floateq"); len(msgs) != 0 {
		t.Errorf("used directive must not be audited, got %q", msgs)
	}
}

func TestUnusedDirectiveIsStale(t *testing.T) {
	_, table := parseTable(t, `package p

func f() int {
	//lint:ignore floateq nothing here matches
	return 1
}
`)
	msgs := auditMessages(t, table, "floateq")
	if len(msgs) != 1 || !strings.Contains(msgs[0], "stale //lint:ignore floateq") {
		t.Errorf("want one stale finding, got %q", msgs)
	}
}

func TestDirectiveScoping(t *testing.T) {
	_, table := parseTable(t, `package p

func f() int {
	//lint:ignore floateq,maprange two analyzers, one reason
	return 1
}
`)
	pos := token.Position{Filename: "sup.go", Line: 5}
	if !table.Suppresses("maprange", pos) {
		t.Error("comma-separated names must each suppress")
	}
	if table.Suppresses("locksafe", pos) {
		t.Error("unnamed analyzer must not be suppressed")
	}
	if table.Suppresses("floateq", token.Position{Filename: "sup.go", Line: 7}) {
		t.Error("directive must not cover two lines down")
	}
	if table.Suppresses("floateq", token.Position{Filename: "other.go", Line: 5}) {
		t.Error("directive must not cover other files")
	}
}

func TestAuditFileScope(t *testing.T) {
	_, table := parseTable(t, `package p

func f() int {
	//lint:ignore floateq stale but out of scope
	return 1
}
`)
	fs := table.Audit(func(string) bool { return true }, map[string]bool{"elsewhere.go": true})
	if len(fs) != 0 {
		t.Errorf("audit must skip files outside the analyzed set, got %v", fs)
	}
}
