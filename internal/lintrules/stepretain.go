package lintrules

import (
	"go/ast"
	"go/types"

	"stochstream/internal/lintrules/analysis"
)

// enginePath is the package whose Step buffer-reuse contract Stepretain
// enforces.
const enginePath = "stochstream/internal/engine"

// Stepretain enforces the engine's buffer-reuse contract: the slices
// returned by (*engine.Join).Step and (*engine.Join).StepBatch are owned by
// the operator and valid only until the next Step/StepBatch call, so callers
// must not retain them (or any sub-slice of one) beyond the step. The type
// system cannot express this; the analyzer flags the stores that outlive the
// step:
//
//   - assignment of a Step result (or a sub-slice of one) into a struct
//     field, a package-level variable, or an element of either,
//   - a Step result placed in a composite literal field,
//   - the same stores through a local variable the result was first
//     assigned to (one level of intra-function flow).
//
// Copying the pairs out (append(dst, result...) or an element read
// result[i]) is fine — Pair is a value type — and is not flagged.
var Stepretain = &analysis.Analyzer{
	Name: "stepretain",
	Doc:  "flag retention of engine.Step results beyond the step (valid-until-next-Step contract)",
	Run:  runStepretain,
}

func runStepretain(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkStepretainBody(pass, n.Body)
				}
			case *ast.FuncLit:
				checkStepretainBody(pass, n.Body)
			}
			return true
		})
	}
	return nil, nil
}

func checkStepretainBody(pass *analysis.Pass, body *ast.BlockStmt) {
	// Pass 1: local variables holding a Step result (one level of flow).
	tainted := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			if !isStepResult(pass.TypesInfo, rhs, tainted) {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if obj := identObj(pass.TypesInfo, id); obj != nil && !isPackageLevel(obj) {
					tainted[obj] = true
				}
			}
		}
		return true
	})

	// Pass 2: stores of a Step result (direct or via a tainted local) into
	// anything that outlives the step.
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				if isStepResult(pass.TypesInfo, rhs, tainted) && isPersistentLvalue(pass.TypesInfo, n.Lhs[i]) {
					report(pass, rhs)
				}
			}
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				v := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if isStepResult(pass.TypesInfo, v, tainted) {
					report(pass, v)
				}
			}
		}
		return true
	})
}

func report(pass *analysis.Pass, at ast.Expr) {
	pass.Reportf(at.Pos(), "engine.Step result retained beyond the step: the returned slice is reused by the next Step/StepBatch call; copy the pairs (append(dst, res...)) before storing them")
}

// isStepResult reports whether e is a call to (*engine.Join).Step, a
// sub-slice of one, or a local variable holding one.
func isStepResult(info *types.Info, e ast.Expr, tainted map[types.Object]bool) bool {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return isStepResult(info, e.X, tainted)
	case *ast.SliceExpr:
		return isStepResult(info, e.X, tainted)
	case *ast.CallExpr:
		return isStepCall(info, e)
	case *ast.Ident:
		obj := identObj(info, e)
		return obj != nil && tainted[obj]
	}
	return false
}

func isStepCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	s := info.Selections[sel]
	if s == nil || s.Kind() != types.MethodVal {
		return false
	}
	fn, ok := s.Obj().(*types.Func)
	if !ok || (fn.Name() != "Step" && fn.Name() != "StepBatch") {
		return false
	}
	recv := s.Recv()
	if p, ok := recv.Underlying().(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := types.Unalias(recv).(*types.Named)
	return ok && named.Obj().Name() == "Join" &&
		named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == enginePath
}

// isPersistentLvalue reports whether the assignment target outlives the
// enclosing function's current step: a struct field, a package-level
// variable, or an element of either.
func isPersistentLvalue(info *types.Info, lhs ast.Expr) bool {
	switch lhs := lhs.(type) {
	case *ast.ParenExpr:
		return isPersistentLvalue(info, lhs.X)
	case *ast.SelectorExpr:
		if s := info.Selections[lhs]; s != nil && s.Kind() == types.FieldVal {
			return true
		}
		// Qualified package-level var: pkg.V.
		if obj, ok := info.Uses[lhs.Sel].(*types.Var); ok {
			return isPackageLevel(obj)
		}
		return false
	case *ast.Ident:
		obj := identObj(info, lhs)
		return obj != nil && isPackageLevel(obj)
	case *ast.IndexExpr:
		return isPersistentLvalue(info, lhs.X)
	}
	return false
}

func identObj(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Defs[id]; o != nil {
		return o
	}
	return info.Uses[id]
}

func isPackageLevel(obj types.Object) bool {
	return obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope()
}
