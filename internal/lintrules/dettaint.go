package lintrules

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strconv"

	"stochstream/internal/lintrules/analysis"
	"stochstream/internal/lintrules/dataflow"
)

// Dettaint forbids nondeterminism sources on the code paths of decision
// packages: wall-clock reads (time.Now/Since/Until) and ambient math/rand
// or math/rand/v2 use, whether they appear directly in decision code or
// inside any helper function a decision package calls, across package
// boundaries. It subsumes the syntactic detsource analyzer of PR 3, which
// checked only the package's own source text — a helper one call away
// defeated it.
//
// Two package families are clean boundaries and never export taint:
// internal/stats (owns the seeded, splittable RNGs and wraps math/rand/v2
// legitimately) and internal/telemetry (out-of-band observability whose
// clock reads never feed a decision).
//
// Suppression composes with propagation: a //lint:ignore dettaint on the
// source line (or on a call that forwards the taint) kills the taint for
// every transitive caller, so one reasoned directive at the root is enough.
// dettaintName is a constant (not Dettaint.Name) so the fact-computing
// helpers can reference it without an initialization cycle through Run.
const dettaintName = "dettaint"

var Dettaint = &analysis.Analyzer{
	Name: dettaintName,
	Doc:  "track wall-clock and ambient-rand taint through call chains into decision packages",
	Run:  runDettaint,
}

// wallClockFuncs are the time package functions that read the wall clock.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// dettaintBoundaries never export taint: their nondeterminism is owned
// (stats seeds it, telemetry keeps it out of the decision path).
var dettaintBoundaries = []string{
	"stochstream/internal/stats",
	"stochstream/internal/telemetry",
}

// taintFact is one function's nondeterminism summary: nil means clean;
// otherwise kind/root identify the ultimate source and via is the next hop
// toward it (nil when the source is in the function's own body).
type taintFact struct {
	kind string         // e.g. "time.Now", "global math/rand Int63"
	root token.Position // position of the ultimate source
	via  *types.Func    // callee the taint arrives through; nil at the root
}

func taintEq(a, b interface{}) bool {
	x, _ := a.(*taintFact)
	y, _ := b.(*taintFact)
	if x == nil || y == nil {
		return x == y
	}
	return x.kind == y.kind && x.root == y.root && x.via == y.via
}

// nondetSource is one direct nondeterminism source in a function body.
type nondetSource struct {
	pos     token.Pos
	kind    string // short name for chain messages
	message string // full diagnostic for in-package reporting
}

// nondetSources scans one function body for direct wall-clock and ambient
// rand uses. The diagnostics match the old detsource wording so existing
// familiarity (and docs) carry over.
func nondetSources(info *types.Info, body ast.Node, pkgPath string) []nondetSource {
	var out []nondetSource
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := info.Uses[id].(*types.PkgName)
		if !ok {
			return true
		}
		switch pn.Imported().Path() {
		case "time":
			if wallClockFuncs[sel.Sel.Name] {
				out = append(out, nondetSource{
					pos:  sel.Pos(),
					kind: "time." + sel.Sel.Name,
					message: "time." + sel.Sel.Name + " in decision code (" + pkgPath + "): wall-clock reads are nondeterministic under replay; " +
						"take timestamps from stream state, or //lint:ignore dettaint with a reason if the value never feeds a decision",
				})
			}
		case "math/rand", "math/rand/v2":
			obj, ok := info.Uses[sel.Sel].(*types.Func)
			if !ok {
				return true // types and constants are harmless
			}
			switch obj.Name() {
			case "New":
				out = append(out, nondetSource{
					pos:     sel.Pos(),
					kind:    "rand.New",
					message: "rand.New in decision code (" + pkgPath + "): construct RNGs via internal/stats (stats.NewRNG / RNG.Split) so seeds thread through the experiment",
				})
			case "NewSource", "NewPCG", "NewChaCha8":
				// Source constructors are inert by themselves; the rand.New
				// (or direct use) wrapping them is what reports.
			default:
				out = append(out, nondetSource{
					pos:     sel.Pos(),
					kind:    "global math/rand " + obj.Name(),
					message: "global math/rand " + obj.Name() + " in decision code (" + pkgPath + "): the process-wide source is unseeded and shared; use the internal/stats RNG threaded through the policy",
				})
			}
		}
		return true
	})
	return out
}

// dettaintFacts computes (or returns the memoized) per-function taint
// summaries for the whole program.
func dettaintFacts(prog *dataflow.Program) *dataflow.FactStore {
	transfer := func(f *dataflow.Func, store *dataflow.FactStore) interface{} {
		if inAny(f.Pkg.Path, dettaintBoundaries) {
			return (*taintFact)(nil)
		}
		// A source in the function's own body roots the taint — unless a
		// reasoned //lint:ignore dettaint covers it, which kills the taint
		// for every caller and marks the directive used for the audit.
		for _, s := range nondetSources(f.Pkg.Info, f.Decl.Body, f.Pkg.Path) {
			if prog.Sup.Suppresses(dettaintName, prog.Fset.Position(s.pos)) {
				continue
			}
			return &taintFact{kind: s.kind, root: prog.Fset.Position(s.pos)}
		}
		for _, c := range f.Calls {
			fact, _ := store.Get(c.StaticObj).(*taintFact)
			if fact == nil {
				continue
			}
			if prog.Sup.Suppresses(dettaintName, prog.Fset.Position(c.Site.Pos())) {
				continue
			}
			return &taintFact{kind: fact.kind, root: fact.root, via: c.StaticObj}
		}
		return (*taintFact)(nil)
	}
	return prog.Facts(dettaintName, transfer, taintEq)
}

// taintChain renders the call chain from fact down to its root source,
// e.g. "util.Stamp → util.clock → time.Now at util/clock.go:12".
func taintChain(prog *dataflow.Program, store *dataflow.FactStore, fact *taintFact) string {
	chain := ""
	for hops := 0; fact != nil && fact.via != nil && hops < 12; hops++ {
		if f := prog.FuncOf(fact.via); f != nil {
			chain += f.Name() + " → "
		} else {
			chain += fact.via.Name() + " → "
		}
		fact, _ = store.Get(fact.via).(*taintFact)
	}
	if fact == nil {
		return chain + "?"
	}
	// Base filename only: the full path would vary with the checkout
	// location, and the chain is a hint, not a position (the finding's own
	// position is the call site).
	return chain + fact.kind + " at " + filepath.Base(fact.root.Filename) + ":" + strconv.Itoa(fact.root.Line)
}

func runDettaint(pass *analysis.Pass) (interface{}, error) {
	// Direct sources in this package always report, with or without
	// whole-program context. Scanning whole files (not just function
	// bodies) also catches package-level initializers like
	// `var t0 = time.Now()`.
	for _, file := range pass.Files {
		for _, s := range nondetSources(pass.TypesInfo, file, pass.Pkg.Path()) {
			pass.Reportf(s.pos, "%s", s.message)
		}
	}

	prog, _ := pass.Facts.(*dataflow.Program)
	if prog == nil {
		return nil, nil // no whole-program context: syntactic checks only
	}
	store := dettaintFacts(prog)

	// Frontier reporting: a call into a tainted helper reports here only
	// when the helper's package is neither this package (its direct source
	// reports above) nor itself dettaint-scoped (its own run reports it) —
	// so each taint surfaces exactly once, at the boundary where it enters
	// checked code.
	for _, f := range prog.FuncsOf(pass.Pkg.Path()) {
		for _, c := range f.Calls {
			fact, _ := store.Get(c.StaticObj).(*taintFact)
			if fact == nil || c.Callee == nil {
				continue
			}
			calleePkg := c.Callee.Pkg.Path
			if calleePkg == pass.Pkg.Path() || inAny(calleePkg, decisionPkgs) {
				continue
			}
			pass.Reportf(c.Site.Pos(), "call to %s reaches a nondeterminism source (%s): wall-clock and ambient rand must not feed decisions, even through helpers; seed it via internal/stats or take the value from stream state",
				c.Callee.Name(), taintChain(prog, store, fact))
		}
	}
	return nil, nil
}
