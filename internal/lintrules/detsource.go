// Package lintrules is stochlint's analyzer suite: five custom static
// checks that mechanically enforce the determinism and correctness
// contracts the paper's guarantees rest on (Theorem 3 dominance optimality
// and the Corollary 3–5 incremental updates require every replacement
// decision to be a pure, deterministic function of stream state).
//
// The analyzers are built on internal/lintrules/analysis, an offline mirror
// of the golang.org/x/tools/go/analysis API. cmd/stochlint is the
// multichecker driver; docs/static-analysis.md documents each rule, its
// rationale and the //lint:ignore suppression directive.
package lintrules

import (
	"go/ast"
	"go/types"

	"stochstream/internal/lintrules/analysis"
)

// Detsource forbids nondeterminism sources inside decision packages: wall
// clock reads (time.Now/Since/Until) and any use of math/rand or
// math/rand/v2 (the global source, and rand.New whether or not its source
// is seeded). All randomness in decision code must flow through the seeded,
// splittable RNGs of internal/stats, and all timestamps must arrive as
// stream state, so that a replay from the same seed and trace is
// bit-identical.
var Detsource = &analysis.Analyzer{
	Name: "detsource",
	Doc:  "forbid time.Now and math/rand in decision packages; randomness must flow through internal/stats",
	Run:  runDetsource,
}

// wallClockFuncs are the time package functions that read the wall clock.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

func runDetsource(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			switch pn.Imported().Path() {
			case "time":
				if wallClockFuncs[sel.Sel.Name] {
					pass.Reportf(sel.Pos(), "time.%s in decision package %s: wall-clock reads are nondeterministic under replay; take timestamps from stream state, or //lint:ignore detsource with a reason if the value never feeds a decision", sel.Sel.Name, pass.Pkg.Path())
				}
			case "math/rand", "math/rand/v2":
				obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
				if !ok {
					return true // types and constants are harmless
				}
				switch obj.Name() {
				case "New":
					pass.Reportf(sel.Pos(), "rand.New in decision package %s: construct RNGs via internal/stats (stats.NewRNG / RNG.Split) so seeds thread through the experiment", pass.Pkg.Path())
				case "NewSource", "NewPCG", "NewChaCha8":
					// Source constructors are inert by themselves; the
					// rand.New (or direct use) wrapping them is what reports.
				default:
					pass.Reportf(sel.Pos(), "global math/rand %s in decision package %s: the process-wide source is unseeded and shared; use the internal/stats RNG threaded through the policy", obj.Name(), pass.Pkg.Path())
				}
			}
			return true
		})
	}
	return nil, nil
}
