package lintrules_test

import (
	"testing"

	"stochstream/internal/lintrules"
	"stochstream/internal/lintrules/analysistest"
)

func TestSnapcomplete(t *testing.T) {
	analysistest.Run(t, testdata(t), lintrules.Snapcomplete, "snapcomplete")
}

func TestFingerprintcover(t *testing.T) {
	analysistest.Run(t, testdata(t), lintrules.Fingerprintcover, "fingerprintcover")
}

func TestFingerprintcoverMissingFingerprint(t *testing.T) {
	analysistest.Run(t, testdata(t), lintrules.Fingerprintcover, "fingerprintcover/nofp")
}

func TestWirexhaustiveEndpoints(t *testing.T) {
	analysistest.Run(t, testdata(t), lintrules.Wirexhaustive, "wirexhaustive")
}

func TestWirexhaustiveBijectivity(t *testing.T) {
	analysistest.Run(t, testdata(t), lintrules.Wirexhaustive, "wirexhaustive/wire")
}
