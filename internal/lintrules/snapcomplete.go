package lintrules

import (
	"go/ast"
	"go/types"
	"strings"

	"stochstream/internal/lintrules/analysis"
	"stochstream/internal/lintrules/dataflow"
)

// Snapcomplete proves serialization completeness for every type that
// participates in the checkpoint protocol: a struct with a snapshot-encoder
// method (SnapshotState / Checkpoint / MarshalBinary / State) and a
// matching decoder (RestoreState / Restore / UnmarshalBinary) must keep its
// persistent state and its snapshot in agreement. The canonical way the
// byte-identical-replay guarantee rots is someone adding a struct field,
// wiring it into normal operation, and forgetting the snapshot write or the
// restore read — a bug the differential tests only catch if the field
// happens to be exercised on the tested path. This analyzer catches it at
// lint time, before the state even exists.
//
// For each checked type the analyzer computes, over the whole program:
//
//   - the persistent set: fields written or mutated by operational code —
//     any function except the codec pair itself, the type's constructors
//     and Reset methods, and helpers reachable only from the codec pair
//     (a restore-only helper's writes are decode plumbing, not operation);
//   - the encoded set: the encoder's transitive field reads;
//   - the decoder's touched set: its transitive reads, writes and mutates
//     (a decoder may legitimately read a field only to validate identity).
//
// It reports, at the field declaration: persistent fields never captured by
// the encoder, encoded fields the decoder never touches, and fields the
// decoder restores that the encoder never captured. Derived or rebuildable
// fields (memo tables, scratch buffers, rebuilt indexes) are the expected
// //lint:ignore snapcomplete story — the directive on the field line must
// say how the field is rebuilt.
//
// Two further contracts ride along. For ordered (encoding/binary-style)
// codecs — never for gob/json, whose wire format is self-describing — the
// decoder must touch the common fields in the encoder's order. And any
// struct whose name marks it as a wire/snapshot schema (…Wire…) must have
// every field both populated somewhere and read back somewhere: a write-only
// or read-only wire field is a set-level encode/decode asymmetry.
const snapcompleteName = "snapcomplete"

var Snapcomplete = &analysis.Analyzer{
	Name: snapcompleteName,
	Doc:  "persistent fields must be captured by the snapshot encoder and restored by its decoder",
	Run:  runSnapcomplete,
}

// snapEncoderNames and snapDecoderNames pair a type's codec methods, in
// priority order (a type with both Checkpoint and MarshalBinary is checked
// against Checkpoint).
var snapEncoderNames = []string{"SnapshotState", "Checkpoint", "MarshalBinary", "State"}
var snapDecoderNames = []string{"RestoreState", "Restore", "UnmarshalBinary"}

// snapObsExempt reports whether fld is an observability handle (telemetry /
// flightrec types): out-of-band instrumentation that is never replay state.
func snapObsExempt(fld *types.Var) bool {
	t := types.Unalias(fld.Type())
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	name := n.Obj().Pkg().Name()
	return name == "telemetry" || name == "flightrec"
}

// snapFuncField reports whether fld holds a function value (directly or
// behind a pointer). Function values have no serialized form — they are
// wiring, re-established by the constructor — so a codec can never capture
// them and snapcomplete must not demand it.
func snapFuncField(fld *types.Var) bool {
	t := fld.Type().Underlying()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem().Underlying()
	}
	_, ok := t.(*types.Signature)
	return ok
}

// recvNamed resolves a method's receiver to its named type; nil for
// package-level functions.
func recvNamed(f *dataflow.Func) *types.Named {
	recv := f.Obj.Signature().Recv()
	if recv == nil {
		return nil
	}
	t := types.Unalias(recv.Type())
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// isTypeConstructor reports whether fn is a package-level function returning
// T or *T — construction-time writes are initialization, not operation.
func isTypeConstructor(f *dataflow.Func, named *types.Named) bool {
	if f.Obj.Signature().Recv() != nil {
		return false
	}
	results := f.Obj.Signature().Results()
	for i := 0; i < results.Len(); i++ {
		t := types.Unalias(results.At(i).Type())
		if p, ok := t.(*types.Pointer); ok {
			t = types.Unalias(p.Elem())
		}
		if n, ok := t.(*types.Named); ok && n.Obj() == named.Obj() {
			return true
		}
	}
	return false
}

// structFieldsOf returns the declared fields of named's underlying struct.
func structFieldsOf(named *types.Named) []*types.Var {
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	fields := make([]*types.Var, 0, st.NumFields())
	for i := 0; i < st.NumFields(); i++ {
		fields = append(fields, st.Field(i))
	}
	return fields
}

// codecHelpersOf returns the codec pair plus every function reachable only
// through it: a helper whose every caller chain passes through the encoder
// or decoder is codec plumbing, and its writes must not count as operation.
// Shared helpers (called from operational code too, like the engine's admit)
// stay operational.
func codecHelpersOf(prog *dataflow.Program, enc, dec *dataflow.Func) map[*dataflow.Func]bool {
	callers := map[*dataflow.Func][]*dataflow.Func{}
	for _, f := range prog.Funcs() {
		for _, c := range f.Calls {
			if c.Callee != nil && c.Callee != f {
				callers[c.Callee] = append(callers[c.Callee], f)
			}
		}
	}
	helper := map[*dataflow.Func]bool{enc: true, dec: true}
	for changed := true; changed; {
		changed = false
		for _, f := range prog.Funcs() {
			if helper[f] || len(callers[f]) == 0 {
				continue
			}
			all := true
			for _, caller := range callers[f] {
				if !helper[caller] {
					all = false
					break
				}
			}
			if all {
				helper[f] = true
				changed = true
			}
		}
	}
	return helper
}

// snapCodecFact marks which serialization families a function transitively
// uses; it decides whether the field-order contract applies.
type snapCodecFact struct{ selfDescribing, ordered bool }

func snapCodecEq(a, b interface{}) bool {
	x, _ := a.(*snapCodecFact)
	y, _ := b.(*snapCodecFact)
	if x == nil || y == nil {
		return x == y
	}
	return *x == *y
}

func snapCodecFacts(prog *dataflow.Program) *dataflow.FactStore {
	transfer := func(f *dataflow.Func, store *dataflow.FactStore) interface{} {
		fact := &snapCodecFact{}
		for _, c := range f.Calls {
			if c.StaticObj == nil || c.StaticObj.Pkg() == nil {
				continue
			}
			switch c.StaticObj.Pkg().Path() {
			case "encoding/gob", "encoding/json":
				fact.selfDescribing = true
			case "encoding/binary":
				fact.ordered = true
			}
			if sub, _ := store.Get(c.StaticObj).(*snapCodecFact); sub != nil {
				fact.selfDescribing = fact.selfDescribing || sub.selfDescribing
				fact.ordered = fact.ordered || sub.ordered
			}
		}
		return fact
	}
	return prog.Facts("snapcodec", transfer, snapCodecEq)
}

// fieldSeq returns the first-occurrence source order in which f's own body
// accesses the given fields — assignment targets when writes is set, plain
// selector reads otherwise.
func fieldSeq(f *dataflow.Func, fields map[*types.Var]bool, writes bool) []*types.Var {
	info := f.Pkg.Info
	var seq []*types.Var
	seen := map[*types.Var]bool{}
	add := func(fld *types.Var) {
		if fld != nil && fields[fld] && !seen[fld] {
			seen[fld] = true
			seq = append(seq, fld)
		}
	}
	fieldOfSel := func(e ast.Expr) *types.Var {
		sel, ok := e.(*ast.SelectorExpr)
		if !ok {
			return nil
		}
		if s := info.Selections[sel]; s != nil && s.Kind() == types.FieldVal {
			v, _ := s.Obj().(*types.Var)
			return v
		}
		return nil
	}
	writeTargets := map[ast.Expr]bool{}
	ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
		if a, ok := n.(*ast.AssignStmt); ok {
			for _, lhs := range a.Lhs {
				writeTargets[lhs] = true
				if writes {
					add(fieldOfSel(lhs))
				}
			}
			return true
		}
		if !writes {
			if sel, ok := n.(*ast.SelectorExpr); ok && !writeTargets[sel] {
				add(fieldOfSel(sel))
			}
		}
		return true
	})
	return seq
}

func runSnapcomplete(pass *analysis.Pass) (interface{}, error) {
	prog, _ := pass.Facts.(*dataflow.Program)
	if prog == nil {
		return nil, nil // interprocedural-only: nothing without whole-program context
	}
	store := dataflow.FieldFacts(prog)
	codecs := snapCodecFacts(prog)

	// Index this package's methods by receiver type, preserving source order
	// of first appearance for deterministic reporting.
	var typesInOrder []*types.Named
	methods := map[*types.Named]map[string]*dataflow.Func{}
	for _, f := range prog.FuncsOf(pass.Pkg.Path()) {
		named := recvNamed(f)
		if named == nil || named.Obj().Pkg() != pass.Pkg {
			continue
		}
		if methods[named] == nil {
			methods[named] = map[string]*dataflow.Func{}
			typesInOrder = append(typesInOrder, named)
		}
		methods[named][f.Obj.Name()] = f
	}

	for _, named := range typesInOrder {
		var enc, dec *dataflow.Func
		for _, n := range snapEncoderNames {
			if m := methods[named][n]; m != nil {
				enc = m
				break
			}
		}
		for _, n := range snapDecoderNames {
			if m := methods[named][n]; m != nil {
				dec = m
				break
			}
		}
		if enc == nil || dec == nil {
			continue
		}
		checkSnapshotPair(pass, prog, store, codecs, named, enc, dec)
	}

	checkWireStructs(pass, prog)
	return nil, nil
}

func checkSnapshotPair(pass *analysis.Pass, prog *dataflow.Program, store, codecs *dataflow.FactStore, named *types.Named, enc, dec *dataflow.Func) {
	fields := structFieldsOf(named)
	if len(fields) == 0 {
		return
	}
	fieldSet := map[*types.Var]bool{}
	for _, fld := range fields {
		fieldSet[fld] = true
	}
	encSum := dataflow.FieldSummaryOf(store, enc.Obj)
	decSum := dataflow.FieldSummaryOf(store, dec.Obj)
	helpers := codecHelpersOf(prog, enc, dec)

	// witness[fld] is the first operational writer in program order.
	witness := map[*types.Var]*dataflow.Func{}
	for _, f := range prog.Funcs() {
		if helpers[f] || isTypeConstructor(f, named) {
			continue
		}
		if n := recvNamed(f); n != nil && n.Obj() == named.Obj() && f.Obj.Name() == "Reset" {
			continue
		}
		d := f.DirectFieldAccesses()
		for _, fld := range fields {
			if witness[fld] == nil && (d.Writes[fld] || d.Mutates[fld]) {
				witness[fld] = f
			}
		}
	}

	tName := named.Obj().Name()
	for _, fld := range fields {
		if snapObsExempt(fld) || snapFuncField(fld) {
			continue
		}
		encoded := encSum != nil && encSum.Reads[fld]
		touched := decSum.Touches(fld)
		restored := decSum.WritesOrMutates(fld)
		switch {
		case witness[fld] != nil && !encoded:
			pass.Reportf(fld.Pos(),
				"persistent field %s of %s is written by %s but never captured by %s: a checkpoint drops it and replay diverges; encode it, or //lint:ignore snapcomplete with the story for how it is rebuilt on restore",
				fld.Name(), tName, witness[fld].Name(), enc.Name())
		case encoded && !touched:
			pass.Reportf(fld.Pos(),
				"field %s of %s is captured by %s but never touched by %s: the snapshot carries bytes the restore ignores; restore the field or drop it from the encoder",
				fld.Name(), tName, enc.Name(), dec.Name())
		case restored && !encoded:
			pass.Reportf(fld.Pos(),
				"field %s of %s is restored by %s but never captured by %s: the decode fills it from data the snapshot never wrote",
				fld.Name(), tName, dec.Name(), enc.Name())
		}
	}

	// Field-order agreement for ordered codecs. Gob/json codecs are
	// self-describing (field order on the wire is keyed), so only a codec
	// pair that uses encoding/binary and never gob/json is held to it.
	encCodec, _ := codecs.Get(enc.Obj).(*snapCodecFact)
	decCodec, _ := codecs.Get(dec.Obj).(*snapCodecFact)
	if encCodec == nil || decCodec == nil ||
		!encCodec.ordered || encCodec.selfDescribing || decCodec.selfDescribing {
		return
	}
	encSeq := fieldSeq(enc, fieldSet, false)
	decSeq := fieldSeq(dec, fieldSet, true)
	common := map[*types.Var]bool{}
	for _, fld := range encSeq {
		common[fld] = true
	}
	var want []*types.Var
	for _, fld := range encSeq {
		for _, d := range decSeq {
			if d == fld {
				want = append(want, fld)
				break
			}
		}
	}
	got := make([]*types.Var, 0, len(want))
	for _, fld := range decSeq {
		if common[fld] {
			got = append(got, fld)
		}
	}
	for i := range want {
		if i < len(got) && got[i] != want[i] {
			pass.Reportf(dec.Decl.Pos(),
				"field %s of %s is decoded out of order relative to %s (encoder order %s): an ordered codec must read fields back in the order they were written",
				got[i].Name(), tName, enc.Name(), fieldNameList(want))
			return
		}
	}
}

func fieldNameList(fields []*types.Var) string {
	names := make([]string, len(fields))
	for i, fld := range fields {
		names[i] = fld.Name()
	}
	return strings.Join(names, ", ")
}

// checkWireStructs enforces set-level encode/decode agreement on wire-schema
// structs (name contains "wire"): every field must be populated somewhere
// and read back somewhere in the program, or one side of the codec is
// silently dropping data.
func checkWireStructs(pass *analysis.Pass, prog *dataflow.Program) {
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		if !strings.Contains(strings.ToLower(name), "wire") {
			continue
		}
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := types.Unalias(tn.Type()).(*types.Named)
		if !ok {
			continue
		}
		fields := structFieldsOf(named)
		if len(fields) == 0 {
			continue
		}
		written := map[*types.Var]bool{}
		read := map[*types.Var]bool{}
		anyUse := false
		for _, f := range prog.Funcs() {
			d := f.DirectFieldAccesses()
			for _, fld := range fields {
				if d.Writes[fld] || d.Mutates[fld] {
					written[fld] = true
					anyUse = true
				}
				if d.Reads[fld] {
					read[fld] = true
					anyUse = true
				}
			}
		}
		if !anyUse {
			continue // declared but unused schema: not this analyzer's business
		}
		for _, fld := range fields {
			switch {
			case written[fld] && !read[fld]:
				pass.Reportf(fld.Pos(),
					"field %s of wire struct %s is populated on encode but never read back: the decoder silently drops it",
					fld.Name(), name)
			case read[fld] && !written[fld]:
				pass.Reportf(fld.Pos(),
					"field %s of wire struct %s is read on decode but never populated on encode: it only ever carries the zero value",
					fld.Name(), name)
			}
		}
	}
}
