// Package load type-checks this module's packages using only the standard
// library, so the stochlint analyzers can run in a fully offline build
// environment (no golang.org/x/tools, no module proxy).
//
// Resolution order for an import path:
//
//  1. the overlay root (an analysistest-style testdata/src tree, checked
//     first so corpora can fake module packages such as
//     stochstream/internal/engine),
//  2. the module tree (paths under the go.mod module path, parsed and
//     type-checked from source, recursively),
//  3. the standard library via importer.Default()'s compiled export data.
//
// Only non-test files are loaded: every contract stochlint enforces is
// scoped to non-test code, and the allowlisted bitwise-equivalence tests
// live in _test.go files by construction.
package load

import (
	"bufio"
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one type-checked package.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader loads and memoizes packages. It implements types.Importer so the
// type checker resolves transitive imports through the same three-step
// resolution.
type Loader struct {
	Fset *token.FileSet

	repoRoot    string // module root directory; "" disables module resolution
	modulePath  string // module path from go.mod; "" when repoRoot is ""
	overlayRoot string // testdata/src-style root checked first; "" disables

	std  types.Importer
	pkgs map[string]*result
}

type result struct {
	pkg *Package
	err error
}

// NewLoader builds a loader. repoRoot is the directory containing go.mod
// (pass "" for analysistest runs, which must resolve only overlay + stdlib);
// overlayRoot is a testdata/src tree checked before the module (pass "" for
// driver runs over the real tree).
func NewLoader(repoRoot, overlayRoot string) (*Loader, error) {
	l := &Loader{
		Fset:        token.NewFileSet(),
		repoRoot:    repoRoot,
		overlayRoot: overlayRoot,
		pkgs:        map[string]*result{},
	}
	l.std = importer.Default()
	if repoRoot != "" {
		mod, err := modulePath(filepath.Join(repoRoot, "go.mod"))
		if err != nil {
			return nil, err
		}
		l.modulePath = mod
	}
	return l, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	b, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(b), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("load: no module directive in %s", gomod)
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	p, err := l.Load(path)
	if err != nil {
		return nil, err
	}
	return p.Types, nil
}

// Load returns the package for an import path, type-checking it from source
// when the path resolves inside the overlay or the module.
func (l *Loader) Load(path string) (*Package, error) {
	if r, ok := l.pkgs[path]; ok {
		return r.pkg, r.err
	}
	// Reserve the slot to fail fast on import cycles instead of recursing.
	l.pkgs[path] = &result{err: fmt.Errorf("load: import cycle through %s", path)}
	pkg, err := l.load(path)
	l.pkgs[path] = &result{pkg: pkg, err: err}
	return pkg, err
}

func (l *Loader) load(path string) (*Package, error) {
	if dir, ok := l.sourceDir(path); ok {
		return l.loadSource(path, dir)
	}
	tp, err := l.std.Import(path)
	if err != nil {
		return nil, fmt.Errorf("load %s: %w", path, err)
	}
	return &Package{Path: path, Fset: l.Fset, Types: tp}, nil
}

// sourceDir resolves an import path to a source directory via the overlay
// and then the module tree.
func (l *Loader) sourceDir(path string) (string, bool) {
	if l.overlayRoot != "" {
		dir := filepath.Join(l.overlayRoot, filepath.FromSlash(path))
		if hasGoFiles(dir) {
			return dir, true
		}
	}
	if l.modulePath != "" {
		if path == l.modulePath {
			return l.repoRoot, true
		}
		if rest, ok := strings.CutPrefix(path, l.modulePath+"/"); ok {
			return filepath.Join(l.repoRoot, filepath.FromSlash(rest)), true
		}
	}
	return "", false
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if isLoadableGoFile(e) {
			return true
		}
	}
	return false
}

func isLoadableGoFile(e os.DirEntry) bool {
	name := e.Name()
	return !e.IsDir() &&
		strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") &&
		!strings.HasPrefix(name, ".") &&
		!strings.HasPrefix(name, "_")
}

// buildTagExcludes reports whether a //go:build (or legacy // +build)
// constraint in the file's header excludes it from this platform's build.
// Like the go tool, only the lines before the package clause count. Files
// that cannot be read are not excluded here — the parse step will surface
// the real error.
func buildTagExcludes(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if strings.HasPrefix(line, "package ") {
			break
		}
		if !constraint.IsGoBuild(line) && !constraint.IsPlusBuild(line) {
			continue
		}
		expr, err := constraint.Parse(line)
		if err != nil {
			continue
		}
		if !expr.Eval(buildTagOK) {
			return true
		}
	}
	return false
}

// buildTagOK evaluates one constraint tag the way a plain `go build` on this
// platform would: GOOS/GOARCH, the gc toolchain, unix for unix-family
// systems, and any released go1.N version tag are true; custom tags (none
// are ever passed to stochlint) are false.
func buildTagOK(tag string) bool {
	switch tag {
	case runtime.GOOS, runtime.GOARCH, "gc":
		return true
	case "unix":
		switch runtime.GOOS {
		case "linux", "darwin", "freebsd", "netbsd", "openbsd", "dragonfly", "solaris", "aix":
			return true
		}
		return false
	}
	return strings.HasPrefix(tag, "go1.")
}

func (l *Loader) loadSource(path, dir string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("load %s: %w", path, err)
	}
	var files []*ast.File
	for _, e := range ents {
		if !isLoadableGoFile(e) {
			continue
		}
		fname := filepath.Join(dir, e.Name())
		if buildTagExcludes(fname) {
			continue
		}
		f, err := parser.ParseFile(l.Fset, fname, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("load %s: %w", path, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("load %s: no Go files in %s (all excluded by build tags, or only _test.go files)", path, dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	cfg := types.Config{Importer: l}
	tp, err := cfg.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("load %s: %w", path, err)
	}
	return &Package{Path: path, Fset: l.Fset, Files: files, Types: tp, Info: info}, nil
}

// SourcePackages returns every package loaded from source so far (overlay
// and module packages — the ones with Files and full type info), sorted by
// import path. This is the package set a whole-program analysis (the
// dataflow call graph) is built over: transitive imports are present
// because Load resolves them recursively.
func (l *Loader) SourcePackages() []*Package {
	var out []*Package
	for _, r := range l.pkgs {
		if r.err == nil && r.pkg != nil && len(r.pkg.Files) > 0 {
			out = append(out, r.pkg)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// List expands go-style package patterns ("./...", "./internal/...",
// "./cmd/stochlint") against the module tree and returns matching import
// paths in sorted order. testdata, vendor and hidden directories are
// skipped, matching the go tool's ./... semantics.
func (l *Loader) List(patterns []string) ([]string, error) {
	if l.repoRoot == "" {
		return nil, fmt.Errorf("load: List requires a module root")
	}
	all, err := l.moduleDirs()
	if err != nil {
		return nil, err
	}
	matched := map[string]bool{}
	for _, pat := range patterns {
		pat = strings.TrimPrefix(strings.TrimSuffix(pat, "/"), "./")
		switch {
		case pat == "..." || pat == "":
			for _, p := range all {
				matched[p] = true
			}
		case strings.HasSuffix(pat, "/..."):
			prefix := strings.TrimSuffix(pat, "/...")
			for _, rel := range all {
				if rel == prefix || strings.HasPrefix(rel, prefix+"/") {
					matched[rel] = true
				}
			}
		default:
			matched[pat] = true
		}
	}
	paths := make([]string, 0, len(matched))
	for rel := range matched {
		paths = append(paths, rel)
	}
	sort.Strings(paths)
	for i, rel := range paths {
		if rel == "." {
			paths[i] = l.modulePath
		} else {
			paths[i] = l.modulePath + "/" + rel
		}
	}
	return paths, nil
}

// moduleDirs walks the module tree and returns the relative slash-separated
// directories containing loadable Go files ("." for the module root).
func (l *Loader) moduleDirs() ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(l.repoRoot, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != l.repoRoot && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if hasGoFiles(p) {
			rel, err := filepath.Rel(l.repoRoot, p)
			if err != nil {
				return err
			}
			dirs = append(dirs, filepath.ToSlash(rel))
		}
		return nil
	})
	return dirs, err
}
