package load

import (
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

func overlayLoader(t *testing.T) *Loader {
	t.Helper()
	src, err := filepath.Abs("testdata/src")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader("", src)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// TestBuildTagExcluded pins the constraint handling: tagged's two sibling
// files redeclare V under a custom //go:build tag and a legacy // +build
// line, so the package type-checks only if both are excluded.
func TestBuildTagExcluded(t *testing.T) {
	l := overlayLoader(t)
	pkg, err := l.Load("tagged")
	if err != nil {
		t.Fatalf("load tagged: %v", err)
	}
	if len(pkg.Files) != 1 {
		t.Errorf("loaded %d files, want 1 (excluded.go and legacy.go must be skipped)", len(pkg.Files))
	}
}

// TestTypeCheckFailureIsAnError pins the failure mode: a package that does
// not type-check returns an error naming the package, never a panic.
func TestTypeCheckFailureIsAnError(t *testing.T) {
	l := overlayLoader(t)
	if _, err := l.Load("broken"); err == nil {
		t.Fatal("load broken: expected a type-check error, got nil")
	} else if !strings.Contains(err.Error(), "broken") {
		t.Errorf("error does not name the package: %v", err)
	}
}

// TestTestOnlyPackageFailsCleanly pins the _test.go-only edge: the loader
// skips test files by design, so the directory resolves to nothing and the
// load fails with an error instead of producing an empty package.
func TestTestOnlyPackageFailsCleanly(t *testing.T) {
	l := overlayLoader(t)
	if _, err := l.Load("testonly"); err == nil {
		t.Fatal("load testonly: expected an error for a _test.go-only package, got nil")
	}
}

// TestLoadErrorIsMemoized pins that a failed load is cached like a success:
// the second call returns the same error without re-type-checking.
func TestLoadErrorIsMemoized(t *testing.T) {
	l := overlayLoader(t)
	_, err1 := l.Load("broken")
	_, err2 := l.Load("broken")
	if err1 == nil || err2 == nil {
		t.Fatal("expected errors from both loads")
	}
	if err1.Error() != err2.Error() {
		t.Errorf("memoized error drifted: %q vs %q", err1, err2)
	}
	if pkgs := l.SourcePackages(); len(pkgs) != 0 {
		t.Errorf("failed loads must not surface in SourcePackages, got %d", len(pkgs))
	}
}

func TestBuildTagOK(t *testing.T) {
	cases := []struct {
		tag  string
		want bool
	}{
		{runtime.GOOS, true},
		{runtime.GOARCH, true},
		{"gc", true},
		{"go1.21", true},
		{"fancytag", false},
		{"ignore", false},
	}
	for _, c := range cases {
		if got := buildTagOK(c.tag); got != c.want {
			t.Errorf("buildTagOK(%q) = %v, want %v", c.tag, got, c.want)
		}
	}
}
