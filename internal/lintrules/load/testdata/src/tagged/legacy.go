// +build ignore

package tagged

// V would collide with tagged.go's V if this file were loaded.
func V() int { return 3 }
