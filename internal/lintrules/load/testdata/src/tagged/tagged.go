// Package tagged has two sibling files that redeclare V under build
// constraints: the package type-checks only if the loader excludes them,
// so a successful load proves the tag handling.
package tagged

// V is redeclared by excluded.go and legacy.go.
func V() int { return 1 }
