// Package broken fails type-checking on purpose: the loader must return
// the error, not panic.
package broken

var X int = "not an int"
