// Package testonly holds only _test.go files: the loader skips test files
// by design, so resolving this path must fail cleanly.
package testonly
