package lintrules

import (
	"go/ast"
	"go/types"

	"stochstream/internal/lintrules/analysis"
)

// Maprange flags `for range` over a map in decision/emission code unless
// the loop body is order-insensitive. Go randomizes map iteration order, so
// any order-dependent effect inside such a loop silently breaks replay
// determinism and the ReferenceJoin differential oracle.
//
// A body is accepted as order-insensitive when every statement is one of:
//
//   - a write through a map index expression (building another map/set),
//   - delete(m, k),
//   - ++/--/+=/-=/|=/&=/^= on an integer-typed variable (commutative over
//     ints; float accumulation is NOT exempt — it is order-sensitive in the
//     low bits),
//   - append to a local slice that a later statement in the same block
//     passes to a sort call (the sortedKeys idiom),
//   - an if/block statement whose nested statements all qualify, or a bare
//     continue.
//
// Everything else — emitting output, sends, calls with effects, float sums
// — is reported. Iterate a sorted key slice instead (cf. telemetry's
// sortedKeys), or suppress a reviewed loop with //lint:ignore maprange.
var Maprange = &analysis.Analyzer{
	Name: "maprange",
	Doc:  "flag order-dependent iteration over maps in decision/emission paths",
	Run:  runMaprange,
}

func runMaprange(pass *analysis.Pass) (interface{}, error) {
	m := &maprangeChecker{pass: pass}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					m.checkStmts(n.Body.List)
				}
			case *ast.FuncLit:
				m.checkStmts(n.Body.List)
			}
			return true
		})
	}
	return nil, nil
}

type maprangeChecker struct {
	pass *analysis.Pass
}

// checkStmts scans a statement list, reporting map-range loops with
// order-dependent bodies. Statements after a loop are its sort context: an
// append inside the loop is fine if a later sibling sorts the slice.
func (m *maprangeChecker) checkStmts(stmts []ast.Stmt) {
	for i, s := range stmts {
		if r, ok := s.(*ast.RangeStmt); ok && m.isMapRange(r) {
			m.checkMapRange(r, stmts[i+1:])
		}
		// Recurse into nested statement lists (the range body included:
		// nested map-ranges get their own report and sort context).
		m.recurse(s)
	}
}

func (m *maprangeChecker) recurse(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		m.checkStmts(s.List)
	case *ast.IfStmt:
		m.checkStmts(s.Body.List)
		if s.Else != nil {
			m.recurse(s.Else)
		}
	case *ast.ForStmt:
		m.checkStmts(s.Body.List)
	case *ast.RangeStmt:
		m.checkStmts(s.Body.List)
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			m.checkStmts(c.(*ast.CaseClause).Body)
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			m.checkStmts(c.(*ast.CaseClause).Body)
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			m.checkStmts(c.(*ast.CommClause).Body)
		}
	case *ast.LabeledStmt:
		m.recurse(s.Stmt)
	}
}

func (m *maprangeChecker) isMapRange(r *ast.RangeStmt) bool {
	t := m.pass.TypesInfo.Types[r.X].Type
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// checkMapRange validates one map-range loop; rest is the statement list
// following the loop in its enclosing block, searched for sort calls that
// legitimize appends made inside the body.
func (m *maprangeChecker) checkMapRange(r *ast.RangeStmt, rest []ast.Stmt) {
	var appended []*ast.Ident // slices appended to inside the body
	if !m.orderInsensitive(r.Body.List, &appended) {
		m.pass.Reportf(r.Pos(), "map iteration with order-dependent effects in %s: iterate a sorted key slice instead (Go randomizes map order, which breaks replay determinism and the differential oracle)", m.pass.Pkg.Path())
		return
	}
	for _, id := range appended {
		if !m.sortedLater(id, rest) {
			m.pass.Reportf(r.Pos(), "map iteration appends to %q which is never sorted afterwards in this block: sort it before use, or iterate a sorted key slice", id.Name)
			return
		}
	}
}

// orderInsensitive reports whether every statement in the list has only
// commutative effects, collecting slice idents that are appended to (their
// order sensitivity is resolved by sortedLater).
func (m *maprangeChecker) orderInsensitive(stmts []ast.Stmt, appended *[]*ast.Ident) bool {
	for _, s := range stmts {
		switch s := s.(type) {
		case *ast.AssignStmt:
			if !m.orderInsensitiveAssign(s, appended) {
				return false
			}
		case *ast.IncDecStmt:
			if !m.isIntLvalue(s.X) {
				return false
			}
		case *ast.ExprStmt:
			// delete(m, k) is the only order-insensitive call form.
			call, ok := s.X.(*ast.CallExpr)
			if !ok || !m.isBuiltin(call.Fun, "delete") {
				return false
			}
		case *ast.IfStmt:
			if s.Init != nil || s.Else != nil {
				return false
			}
			if !m.orderInsensitive(s.Body.List, appended) {
				return false
			}
		case *ast.BlockStmt:
			if !m.orderInsensitive(s.List, appended) {
				return false
			}
		case *ast.BranchStmt:
			if s.Tok.String() != "continue" {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func (m *maprangeChecker) orderInsensitiveAssign(s *ast.AssignStmt, appended *[]*ast.Ident) bool {
	// s = append(s, ...) collects; order sensitivity resolved by a later sort.
	if id, ok := m.selfAppend(s); ok {
		*appended = append(*appended, id)
		return true
	}
	switch s.Tok.String() {
	case "=", ":=":
		for _, lhs := range s.Lhs {
			if !m.isMapIndexWrite(lhs) {
				return false
			}
		}
		return true
	case "+=", "-=", "|=", "&=", "^=":
		return len(s.Lhs) == 1 && m.isIntLvalue(s.Lhs[0])
	}
	return false
}

// selfAppend matches `x = append(x, ...)` with x a plain identifier.
func (m *maprangeChecker) selfAppend(s *ast.AssignStmt) (*ast.Ident, bool) {
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 || (s.Tok.String() != "=" && s.Tok.String() != ":=") {
		return nil, false
	}
	id, ok := s.Lhs[0].(*ast.Ident)
	if !ok {
		return nil, false
	}
	call, ok := s.Rhs[0].(*ast.CallExpr)
	if !ok || !m.isBuiltin(call.Fun, "append") || len(call.Args) == 0 {
		return nil, false
	}
	arg0, ok := call.Args[0].(*ast.Ident)
	if !ok || m.pass.TypesInfo.Uses[arg0] == nil || m.pass.TypesInfo.Uses[arg0] != m.objOf(id) {
		return nil, false
	}
	return id, true
}

func (m *maprangeChecker) objOf(id *ast.Ident) types.Object {
	if o := m.pass.TypesInfo.Uses[id]; o != nil {
		return o
	}
	return m.pass.TypesInfo.Defs[id]
}

func (m *maprangeChecker) isBuiltin(fun ast.Expr, name string) bool {
	id, ok := fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = m.pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok
}

func (m *maprangeChecker) isMapIndexWrite(lhs ast.Expr) bool {
	ix, ok := lhs.(*ast.IndexExpr)
	if !ok {
		return false
	}
	t := m.pass.TypesInfo.Types[ix.X].Type
	if t == nil {
		return false
	}
	_, ok = t.Underlying().(*types.Map)
	return ok
}

func (m *maprangeChecker) isIntLvalue(e ast.Expr) bool {
	t := m.pass.TypesInfo.Types[e].Type
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// sortedLater reports whether a statement after the loop passes the
// appended slice to a sort-package call (sort.Strings(ks), sort.Ints(ks),
// sort.Slice(ks, ...) and friends).
func (m *maprangeChecker) sortedLater(id *ast.Ident, rest []ast.Stmt) bool {
	obj := m.objOf(id)
	if obj == nil {
		return false
	}
	for _, s := range rest {
		found := false
		ast.Inspect(s, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !m.isSortCall(call) {
				return true
			}
			for _, arg := range call.Args {
				ast.Inspect(arg, func(an ast.Node) bool {
					if aid, ok := an.(*ast.Ident); ok && m.pass.TypesInfo.Uses[aid] == obj {
						found = true
					}
					return !found
				})
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

func (m *maprangeChecker) isSortCall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := m.pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return false
	}
	p := pn.Imported().Path()
	return p == "sort" || p == "slices"
}
