package lintrules

import (
	"go/ast"
	"go/token"
	"go/types"

	"stochstream/internal/lintrules/analysis"
	"stochstream/internal/lintrules/dataflow"
)

// Mergedet is the static twin of shardrt's TestMergeOrder: the merged
// emission order of the sharded runtime must derive only from ingress
// sequence IDs, never from channel-receive or goroutine-completion order.
// Data that arrives over a channel (`res := <-sh.res`, `for v := range ch`)
// is in scheduling order — which shard finished first — and letting that
// order escape (returned, or stored into a struct field or package
// variable) makes replay diverge run to run even with identical inputs.
//
// The analyzer runs a small taint pass per function: channel receives and
// calls to functions summarized as returning arrival-ordered data are
// sources; returns and persistent stores are sinks; a sort by sequence
// numbers — sort.Slice/SliceStable with a comparator that reads only
// seq-named fields (mergeKey style), or a call to a helper like sortPairs
// that does so to its parameter — sanitizes, provided the sort is on a
// CFG path before the sink. Summaries propagate both directions across
// packages: a helper that returns arrival order taints its callers'
// results, and a helper that seq-sorts its slice parameter sanitizes at
// the call site.
const mergedetName = "mergedet"

var Mergedet = &analysis.Analyzer{
	Name: mergedetName,
	Doc:  "merged emission order must derive from seq IDs, not channel-receive or goroutine-completion order",
	Run:  runMergedet,
}

// mergeFact is one function's summary for the analysis.
type mergeFact struct {
	// seqOnly: the body reads only seq-named fields and calls only other
	// seqOnly functions — safe as (part of) a merge comparator.
	seqOnly bool
	// sortsBySeq[i] (ParamVars index space): the function seq-sorts its
	// i-th slice parameter, directly or through a callee.
	sortsBySeq []bool
	// returnsArrival: some return value derives from channel-receive order
	// with no seq sort before it.
	returnsArrival bool
}

func mergeEq(a, b interface{}) bool {
	x, _ := a.(*mergeFact)
	y, _ := b.(*mergeFact)
	if x == nil || y == nil {
		return x == y
	}
	if x.seqOnly != y.seqOnly || x.returnsArrival != y.returnsArrival || len(x.sortsBySeq) != len(y.sortsBySeq) {
		return false
	}
	for i := range x.sortsBySeq {
		if x.sortsBySeq[i] != y.sortsBySeq[i] {
			return false
		}
	}
	return true
}

// bodySeqOnly reports whether node reads only sequence-numbered state: every
// struct field it selects has "seq" in its name, it performs no channel
// receives, and every call target is a builtin, a type conversion, or a
// module function already summarized seqOnly.
func bodySeqOnly(info *types.Info, store *dataflow.FactStore, node ast.Node) bool {
	ok := true
	ast.Inspect(node, func(n ast.Node) bool {
		if !ok {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if s := info.Selections[n]; s != nil && s.Kind() == types.FieldVal {
				if !hasSeqName(s.Obj().Name()) {
					ok = false
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				ok = false
			}
		case *ast.CallExpr:
			fun := unparenExpr(n.Fun)
			if tv, isType := info.Types[fun]; isType && tv.IsType() {
				return true // conversion
			}
			if id, isIdent := fun.(*ast.Ident); isIdent {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					return true
				}
			}
			callee := dataflow.CalleeObj(info, n)
			if callee == nil {
				ok = false
				return false
			}
			cf, _ := store.Get(callee).(*mergeFact)
			if cf == nil || !cf.seqOnly {
				ok = false
			}
		}
		return true
	})
	return ok
}

func hasSeqName(name string) bool {
	lower := make([]byte, len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		lower[i] = c
	}
	s := string(lower)
	for i := 0; i+3 <= len(s); i++ {
		if s[i:i+3] == "seq" {
			return true
		}
	}
	return false
}

// mergeViolation is one arrival-order escape in a function body.
type mergeViolation struct {
	pos      token.Pos
	isReturn bool
	what     string // "returned" or the stored lvalue description
}

// mergeAnalyze runs the per-function taint pass and returns the function's
// summary inputs: its violations, its sanitize map (root object → seq-sort
// sites), and whether it is seqOnly. It reads callee summaries only through
// store, so it is safe inside the fixed-point transfer.
func mergeAnalyze(f *dataflow.Func, store *dataflow.FactStore) (violations []mergeViolation, sortsParam []bool) {
	info := f.Pkg.Info
	body := f.Decl.Body

	// --- taint: which variables hold arrival-ordered data ---
	tainted := map[types.Object]bool{}
	var taintedExpr func(e ast.Expr) bool
	taintedExpr = func(e ast.Expr) bool {
		switch e := unparenExpr(e).(type) {
		case *ast.Ident:
			var obj types.Object = info.Defs[e]
			if obj == nil {
				obj = info.Uses[e]
			}
			return obj != nil && tainted[obj]
		case *ast.UnaryExpr:
			return e.Op == token.ARROW // receive: the arrival-order source
		case *ast.SliceExpr:
			return taintedExpr(e.X)
		case *ast.SelectorExpr:
			return taintedExpr(e.X) // field of an arrival-ordered value
		case *ast.CallExpr:
			if id, ok := unparenExpr(e.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok {
					if b.Name() == "append" {
						for _, a := range e.Args {
							if taintedExpr(a) {
								return true
							}
						}
					}
					return false
				}
			}
			if callee := dataflow.CalleeObj(info, e); callee != nil {
				if cf, _ := store.Get(callee).(*mergeFact); cf != nil && cf.returnsArrival {
					return true
				}
			}
			return false
		}
		return false
	}

	// Fixed point over assignments and range statements: receives taint
	// their targets, taint flows through append chains.
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				multi := len(n.Rhs) == 1 && len(n.Lhs) > 1 // v, ok := <-ch
				for i, lhs := range n.Lhs {
					rhs := n.Rhs[0]
					if !multi && i < len(n.Rhs) {
						rhs = n.Rhs[i]
					}
					if !taintedExpr(rhs) {
						continue
					}
					if r := dataflow.RootOf(info, lhs); r.Obj != nil && !tainted[r.Obj] {
						tainted[r.Obj] = true
						changed = true
					}
				}
			case *ast.RangeStmt:
				tv, ok := info.Types[n.X]
				if !ok {
					return true
				}
				if _, isChan := tv.Type.Underlying().(*types.Chan); !isChan {
					return true
				}
				if n.Key != nil {
					if r := dataflow.RootOf(info, n.Key); r.Obj != nil && !tainted[r.Obj] {
						tainted[r.Obj] = true
						changed = true
					}
				}
			}
			return true
		})
	}

	// --- sanitize sites: root object → nodes where it is seq-sorted ---
	sortSites := map[types.Object][]ast.Node{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// sort.Slice / sort.SliceStable with a seq-only comparator.
		if sel, ok := unparenExpr(call.Fun).(*ast.SelectorExpr); ok && len(call.Args) == 2 {
			if id, ok := sel.X.(*ast.Ident); ok {
				if pn, ok := info.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "sort" &&
					(sel.Sel.Name == "Slice" || sel.Sel.Name == "SliceStable") {
					if lit, ok := unparenExpr(call.Args[1]).(*ast.FuncLit); ok && bodySeqOnly(info, store, lit.Body) {
						if r := dataflow.RootOf(info, call.Args[0]); r.Obj != nil {
							sortSites[r.Obj] = append(sortSites[r.Obj], call)
						}
					}
					return true
				}
			}
		}
		// A callee that seq-sorts its slice parameter sanitizes the argument.
		if callee := dataflow.CalleeObj(info, call); callee != nil {
			cf, _ := store.Get(callee).(*mergeFact)
			if cf != nil {
				for k, arg := range call.Args {
					j := dataflow.ArgParamIndex(callee, k)
					if j < len(cf.sortsBySeq) && cf.sortsBySeq[j] {
						if r := dataflow.RootOf(info, arg); r.Obj != nil {
							sortSites[r.Obj] = append(sortSites[r.Obj], call)
						}
					}
				}
			}
		}
		return true
	})

	cfg := f.CFG()
	sanitized := func(e ast.Expr, sink ast.Node) bool {
		r := dataflow.RootOf(info, e)
		if r.Obj == nil {
			return false
		}
		sinkSite, ok := cfg.SiteOf(sink)
		if !ok {
			return false
		}
		for _, sn := range sortSites[r.Obj] {
			if ss, ok := cfg.SiteOf(sn); ok && cfg.ReachableAfter(ss, sinkSite) {
				return true
			}
		}
		return false
	}

	// --- sinks: returns and persistent stores (function literals skipped:
	// their returns are not this function's). Only ordered collections
	// escape arrival order — a scalar or error pulled out of a received
	// value carries no sequence.
	ordered := func(e ast.Expr) bool {
		tv, ok := info.Types[e]
		if !ok || tv.Type == nil {
			return false
		}
		switch tv.Type.Underlying().(type) {
		case *types.Slice, *types.Array:
			return true
		}
		return false
	}
	skipFuncLits(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if ordered(res) && taintedExpr(res) && !sanitized(res, n) {
					violations = append(violations, mergeViolation{pos: n.Pos(), isReturn: true, what: "returned"})
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if !isPersistentLvalue(info, lhs) {
					continue
				}
				rhs := n.Rhs[0]
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				}
				if ordered(rhs) && taintedExpr(rhs) && !sanitized(rhs, n) {
					violations = append(violations, mergeViolation{pos: n.Pos(), what: "stored"})
				}
			}
		}
	})

	// --- sortsBySeq over the parameter index space ---
	params := dataflow.ParamVars(f.Obj)
	sortsParam = make([]bool, len(params))
	for i, v := range params {
		if _, isSlice := v.Type().Underlying().(*types.Slice); !isSlice {
			continue
		}
		if len(sortSites[v]) > 0 {
			sortsParam[i] = true
		}
	}
	return violations, sortsParam
}

// mergedetFacts computes (or returns the memoized) per-function merge-order
// summaries for the whole program.
func mergedetFacts(prog *dataflow.Program) *dataflow.FactStore {
	transfer := func(f *dataflow.Func, store *dataflow.FactStore) interface{} {
		violations, sortsParam := mergeAnalyze(f, store)
		fact := &mergeFact{
			seqOnly:    bodySeqOnly(f.Pkg.Info, store, f.Decl.Body),
			sortsBySeq: sortsParam,
		}
		for _, v := range violations {
			if v.isReturn && !prog.Sup.Suppresses(mergedetName, prog.Fset.Position(v.pos)) {
				fact.returnsArrival = true
				break
			}
		}
		return fact
	}
	return prog.Facts(mergedetName, transfer, mergeEq)
}

func runMergedet(pass *analysis.Pass) (interface{}, error) {
	prog, _ := pass.Facts.(*dataflow.Program)
	if prog == nil {
		return nil, nil // summaries need whole-program context
	}
	store := mergedetFacts(prog)
	for _, f := range prog.FuncsOf(pass.Pkg.Path()) {
		violations, _ := mergeAnalyze(f, store)
		for _, v := range violations {
			pass.Reportf(v.pos, "merged result %s in arrival order: it derives from channel-receive order (scheduling-dependent), not ingress seq IDs; sort by the sequence numbers (mergeKey/sortPairs style) before emitting — this is the static twin of TestMergeOrder", v.what)
		}
	}
	return nil, nil
}
