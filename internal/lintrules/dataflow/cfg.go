package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"sync"
)

// CFG is a function's control-flow graph: basic blocks of executable AST
// nodes with successor edges, plus def-use chains over the function's
// variables. It is deliberately lightweight — blocks hold AST nodes, not
// instructions — but the edges are real: loops have back edges, branches
// join, returns flow to Exit. That is exactly enough for the suite's
// flow-sensitive questions ("is this error read on any path after this
// write?", including reads reached only through a loop's back edge, which
// position-based scans get wrong).
//
// Approximations, all conservative for the analyses built on top: goto
// edges go to Exit, labeled break/continue resolve to the innermost target,
// and references inside nested function literals are attributed to the
// block of the enclosing statement (a closure may run later or never; its
// reads still count as uses).
type CFG struct {
	Blocks []*Block
	Entry  *Block
	Exit   *Block

	refs map[types.Object][]Ref

	siteOnce sync.Once
	sites    map[ast.Node]NodeSite
}

// Block is one basic block. Nodes are the executable AST fragments in
// order: full simple statements, or the header expressions of compound
// statements (an if's condition, a range's operand) — compound bodies live
// in their own blocks.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
}

// Ref is one reference to a variable: a read or a write, located at a
// block position so flow queries can order it against other refs.
type Ref struct {
	Ident *ast.Ident
	Obj   types.Object
	Write bool
	Block *Block
	Seq   int // position of the enclosing node within Block.Nodes
}

// Refs returns the function's references to obj in deterministic (block,
// seq, position) order.
func (c *CFG) Refs(obj types.Object) []Ref { return c.refs[obj] }

// ReadAfter reports whether any read of ref.Obj can execute strictly after
// ref: later in the same block, in any block reachable from it, or — when
// the block sits on a cycle — anywhere in the block itself via the back
// edge. This is the "is this value ever consumed?" query errdiscipline
// asks about discarded error results.
func (c *CFG) ReadAfter(ref Ref) bool {
	reach := c.reachableFrom(ref.Block)
	for _, r := range c.refs[ref.Obj] {
		if r.Write {
			continue
		}
		if r.Block == ref.Block && r.Seq > ref.Seq {
			return true
		}
		if reach[r.Block] {
			return true
		}
	}
	return false
}

// NodeSite locates an AST node in its function's CFG: the block and
// position of the executable node containing it. Sites order operations
// against each other (via ReachableAfter) the same way Ref.Block/Seq order
// variable references.
type NodeSite struct {
	Block *Block
	Seq   int
}

// SiteOf returns the CFG location of the executable node containing n,
// building the (lazy, per-CFG) index on first use. Nodes in dead code still
// have sites (unreachable code gets blocks); nodes outside the CFG —
// compound-statement keywords, types — do not.
func (c *CFG) SiteOf(n ast.Node) (NodeSite, bool) {
	c.siteOnce.Do(c.buildSites)
	s, ok := c.sites[n]
	return s, ok
}

func (c *CFG) buildSites() {
	c.sites = map[ast.Node]NodeSite{}
	for _, blk := range c.Blocks {
		for seq, node := range blk.Nodes {
			site := NodeSite{Block: blk, Seq: seq}
			claim := func(m ast.Node) bool {
				if m != nil {
					if _, seen := c.sites[m]; !seen {
						c.sites[m] = site
					}
				}
				return true
			}
			// A range statement is appended whole as the loop header, but its
			// body executes in the loop's body blocks: claim only the header
			// parts here, so the body's own blocks claim their nodes.
			if r, ok := node.(*ast.RangeStmt); ok {
				claim(r)
				for _, sub := range []ast.Node{r.Key, r.Value, r.X} {
					if sub != nil {
						ast.Inspect(sub, claim)
					}
				}
				continue
			}
			ast.Inspect(node, claim)
		}
	}
}

// ReachableAfter reports whether b can execute strictly after a: later in
// the same block, in any block reachable from a's, or — when a's block sits
// on a cycle — anywhere in the block via the back edge. This is the
// ordering query behind send-after-close and sort-before-return checks.
func (c *CFG) ReachableAfter(a, b NodeSite) bool {
	if a.Block == b.Block && b.Seq > a.Seq {
		return true
	}
	return c.reachableFrom(a.Block)[b.Block]
}

// reachableFrom returns the blocks reachable from b through at least one
// edge (so b itself is included only when it sits on a cycle).
func (c *CFG) reachableFrom(b *Block) map[*Block]bool {
	seen := map[*Block]bool{}
	queue := append([]*Block(nil), b.Succs...)
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if seen[n] {
			continue
		}
		seen[n] = true
		queue = append(queue, n.Succs...)
	}
	return seen
}

type cfgBuilder struct {
	cfg  *CFG
	cur  *Block
	info *types.Info
	// break/continue targets, innermost last.
	breaks    []*Block
	continues []*Block
}

// buildCFG constructs the CFG of one function body and collects its
// def-use chains.
func buildCFG(body *ast.BlockStmt, info *types.Info) *CFG {
	b := &cfgBuilder{cfg: &CFG{refs: map[types.Object][]Ref{}}, info: info}
	b.cfg.Exit = b.newBlock() // Index 0 reserved for Exit; Entry follows
	b.cfg.Entry = b.newBlock()
	b.cur = b.cfg.Entry
	b.stmts(body.List)
	if b.cur != nil {
		b.link(b.cur, b.cfg.Exit)
	}
	b.collectRefs()
	return b.cfg
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) link(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// append adds an executable node to the current block, starting a fresh
// (unreachable) block when control already left.
func (b *cfgBuilder) append(n ast.Node) {
	if n == nil {
		return
	}
	if b.cur == nil {
		b.cur = b.newBlock() // unreachable code still gets blocks and refs
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *cfgBuilder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmts(s.List)
	case *ast.IfStmt:
		b.append(s.Init)
		b.append(s.Cond)
		cond := b.cur
		after := b.newBlock()
		then := b.newBlock()
		if cond != nil {
			b.link(cond, then)
		}
		b.cur = then
		b.stmts(s.Body.List)
		if b.cur != nil {
			b.link(b.cur, after)
		}
		if s.Else != nil {
			els := b.newBlock()
			if cond != nil {
				b.link(cond, els)
			}
			b.cur = els
			b.stmt(s.Else)
			if b.cur != nil {
				b.link(b.cur, after)
			}
		} else if cond != nil {
			b.link(cond, after)
		}
		b.cur = after
	case *ast.ForStmt:
		b.append(s.Init)
		head := b.newBlock()
		if b.cur != nil {
			b.link(b.cur, head)
		}
		b.cur = head
		b.append(s.Cond)
		body := b.newBlock()
		after := b.newBlock()
		b.link(head, body)
		if s.Cond != nil {
			b.link(head, after)
		}
		// continue re-evaluates Post (when present) before the condition.
		cont := head
		var post *Block
		if s.Post != nil {
			post = b.newBlock()
			b.cur = post
			b.append(s.Post)
			b.link(post, head)
			cont = post
		}
		b.pushLoop(after, cont)
		b.cur = body
		b.stmts(s.Body.List)
		if b.cur != nil {
			b.link(b.cur, cont)
		}
		b.popLoop()
		b.cur = after
	case *ast.RangeStmt:
		head := b.newBlock()
		if b.cur != nil {
			b.link(b.cur, head)
		}
		b.cur = head
		b.append(s) // header: operand read + key/value writes (see collectRefs)
		body := b.newBlock()
		after := b.newBlock()
		b.link(head, body)
		b.link(head, after)
		b.pushLoop(after, head)
		b.cur = body
		b.stmts(s.Body.List)
		if b.cur != nil {
			b.link(b.cur, head)
		}
		b.popLoop()
		b.cur = after
	case *ast.SwitchStmt:
		b.append(s.Init)
		b.append(s.Tag)
		b.cases(s.Body.List)
	case *ast.TypeSwitchStmt:
		b.append(s.Init)
		b.append(s.Assign)
		b.cases(s.Body.List)
	case *ast.SelectStmt:
		b.cases(s.Body.List)
	case *ast.ReturnStmt:
		b.append(s)
		if b.cur != nil {
			b.link(b.cur, b.cfg.Exit)
		}
		b.cur = nil
	case *ast.BranchStmt:
		b.append(s)
		if b.cur != nil {
			switch s.Tok {
			case token.BREAK:
				if t := b.top(b.breaks); t != nil {
					b.link(b.cur, t)
				}
			case token.CONTINUE:
				if t := b.top(b.continues); t != nil {
					b.link(b.cur, t)
				}
			case token.GOTO:
				b.link(b.cur, b.cfg.Exit) // approximation, documented
			}
			// fallthrough is handled by cases().
		}
		if s.Tok != token.FALLTHROUGH {
			b.cur = nil
		}
	case *ast.LabeledStmt:
		b.stmt(s.Stmt)
	default:
		// Assign, IncDec, Expr, Send, Decl, Defer, Go, Empty: straight-line.
		b.append(s)
	}
}

// cases builds the clause blocks of a switch/type-switch/select body;
// fallthrough links a switch clause to the next clause's block.
func (b *cfgBuilder) cases(clauses []ast.Stmt) {
	head := b.cur
	after := b.newBlock()
	blocks := make([]*Block, len(clauses))
	for i := range clauses {
		blocks[i] = b.newBlock()
		if head != nil {
			b.link(head, blocks[i])
		}
	}
	hasDefault := false
	b.breaks = append(b.breaks, after)
	for i, cs := range clauses {
		b.cur = blocks[i]
		var body []ast.Stmt
		switch cs := cs.(type) {
		case *ast.CaseClause:
			if cs.List == nil {
				hasDefault = true
			}
			for _, e := range cs.List {
				b.append(e)
			}
			body = cs.Body
		case *ast.CommClause:
			if cs.Comm == nil {
				hasDefault = true
			}
			b.append(cs.Comm)
			body = cs.Body
		}
		fallsThrough := false
		if n := len(body); n > 0 {
			if br, ok := body[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = true
			}
		}
		b.stmts(body)
		if b.cur != nil {
			if fallsThrough && i+1 < len(blocks) {
				b.link(b.cur, blocks[i+1])
			} else {
				b.link(b.cur, after)
			}
		}
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	// Without a default clause a switch can skip every case; a select blocks
	// instead, but the extra head→after edge only over-approximates paths,
	// which is the safe direction for every query built on this CFG.
	if !hasDefault && head != nil {
		b.link(head, after)
	}
	b.cur = after
}

func (b *cfgBuilder) pushLoop(brk, cont *Block) {
	b.breaks = append(b.breaks, brk)
	b.continues = append(b.continues, cont)
}

func (b *cfgBuilder) popLoop() {
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
}

func (b *cfgBuilder) top(s []*Block) *Block {
	if len(s) == 0 {
		return nil
	}
	return s[len(s)-1]
}

// collectRefs walks every block's nodes and records variable reads and
// writes. Node kinds that bind variables (assignments, declarations, range
// headers) are special-cased so left-hand sides register as writes; every
// other identifier resolving to a variable is a read.
func (b *cfgBuilder) collectRefs() {
	for _, blk := range b.cfg.Blocks {
		for seq, n := range blk.Nodes {
			b.nodeRefs(n, blk, seq)
		}
	}
}

func (b *cfgBuilder) nodeRefs(n ast.Node, blk *Block, seq int) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		for _, lhs := range n.Lhs {
			b.lvalueRefs(lhs, blk, seq)
			if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
				b.readRefs(lhs, blk, seq) // x += y reads x as well
			}
		}
		for _, rhs := range n.Rhs {
			b.readRefs(rhs, blk, seq)
		}
	case *ast.IncDecStmt:
		b.lvalueRefs(n.X, blk, seq)
		b.readRefs(n.X, blk, seq) // x++ both reads and writes x
	case *ast.RangeStmt:
		b.readRefs(n.X, blk, seq)
		b.lvalueRefs(n.Key, blk, seq)
		b.lvalueRefs(n.Value, blk, seq)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					b.addRef(name, true, blk, seq)
				}
				for _, v := range vs.Values {
					b.readRefs(v, blk, seq)
				}
			}
		}
	default:
		b.readRefs(n, blk, seq)
	}
}

// lvalueRefs records an assignment target: a plain identifier is a write of
// that variable; anything else (index, selector, star) mutates through a
// value that is itself read.
func (b *cfgBuilder) lvalueRefs(lhs ast.Expr, blk *Block, seq int) {
	if lhs == nil {
		return
	}
	if id, ok := unparen(lhs).(*ast.Ident); ok {
		b.addRef(id, true, blk, seq)
		return
	}
	b.readRefs(lhs, blk, seq)
}

// readRefs records every variable identifier under n as a read. Nested
// function literals are included whole: assignments inside a closure are
// conservatively treated as uses of the closed-over variable.
func (b *cfgBuilder) readRefs(n ast.Node, blk *Block, seq int) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok {
			b.addRef(id, false, blk, seq)
		}
		return true
	})
}

func (b *cfgBuilder) addRef(id *ast.Ident, write bool, blk *Block, seq int) {
	if id == nil || id.Name == "_" {
		return
	}
	obj := b.info.Defs[id]
	if obj == nil {
		obj = b.info.Uses[id]
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return
	}
	b.cfg.refs[v] = append(b.cfg.refs[v], Ref{Ident: id, Obj: v, Write: write, Block: blk, Seq: seq})
}
