package dataflow

import (
	"go/types"
	"sort"
	"testing"

	"stochstream/internal/lintrules/load"
)

// loadFieldProgram loads the fieldsum corpus and its FieldFacts store.
func loadFieldProgram(t *testing.T) (*Program, *FactStore) {
	t.Helper()
	l, err := load.NewLoader("", "testdata/src")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	if _, err := l.Load("fieldsum"); err != nil {
		t.Fatalf("Load fieldsum: %v", err)
	}
	p := NewProgram(l.Fset, l.SourcePackages(), nil)
	return p, FieldFacts(p)
}

func summaryOf(t *testing.T, p *Program, store *FactStore, fn string) *FieldSummary {
	t.Helper()
	f := funcByName(t, p, fn)
	s := FieldSummaryOf(store, f.Obj)
	if s == nil {
		t.Fatalf("no field summary for %s", fn)
	}
	return s
}

func names(set map[*types.Var]bool) []string {
	var out []string
	for f := range set {
		out = append(out, f.Name())
	}
	sort.Strings(out)
	return out
}

func wantSet(t *testing.T, fn, kind string, got map[*types.Var]bool, want ...string) {
	t.Helper()
	g := names(got)
	if len(g) != len(want) {
		t.Errorf("%s %s = %v, want %v", fn, kind, g, want)
		return
	}
	for i := range want {
		if g[i] != want[i] {
			t.Errorf("%s %s = %v, want %v", fn, kind, g, want)
			return
		}
	}
}

func TestFieldAccessClassification(t *testing.T) {
	p, store := loadFieldProgram(t)
	cases := []struct {
		fn                     string
		reads, writes, mutates []string
	}{
		{"plainWrite", nil, []string{"a"}, nil},
		{"compound", []string{"b"}, []string{"b"}, nil},
		{"incdec", []string{"c"}, []string{"c"}, nil},
		// The base selector of an index, address-of or copy target is both
		// read (the slice/map header) and mutated (its element state).
		{"indexMutate", []string{"items"}, nil, []string{"items"}},
		{"mapMutate", []string{"m"}, nil, []string{"m"}},
		{"addrMutate", []string{"a"}, nil, []string{"a"}},
		{"copyMutate", []string{"items"}, nil, []string{"items"}},
		// The pointer-receiver call mutates the field; the callee Bump's own
		// summary (n read+write) merges in through the call edge.
		{"ptrRecvCall", []string{"n", "tr"}, []string{"n"}, []string{"tr"}},
		{"valRecvCall", []string{"agg", "n"}, nil, nil},
		{"chainWrite", []string{"agg"}, []string{"n"}, []string{"agg"}},
		{"readOnly", []string{"a", "b"}, nil, nil},
		{"keyedLit", nil, []string{"a", "c"}, nil},
		{"positionalLit", nil, []string{"n"}, nil},
		{"wholeStore", nil, []string{"n"}, nil},
		// Two helper hops between the caller and the write.
		{"writeViaHelper", nil, []string{"b"}, nil},
		{"readViaHelper", []string{"a", "b"}, nil, nil},
	}
	for _, c := range cases {
		s := summaryOf(t, p, store, c.fn)
		wantSet(t, c.fn, "reads", s.Reads, c.reads...)
		wantSet(t, c.fn, "writes", s.Writes, c.writes...)
		wantSet(t, c.fn, "mutates", s.Mutates, c.mutates...)
	}
}

func TestFieldSummaryHelpers(t *testing.T) {
	p, store := loadFieldProgram(t)
	s := summaryOf(t, p, store, "ptrRecvCall")
	var tr *types.Var
	for f := range s.Mutates {
		if f.Name() == "tr" {
			tr = f
		}
	}
	if tr == nil {
		t.Fatal("tr not in mutates")
	}
	if !s.Touches(tr) || !s.WritesOrMutates(tr) {
		t.Error("Touches/WritesOrMutates(tr) = false, want true")
	}
	if (*FieldSummary)(nil).Touches(tr) || (*FieldSummary)(nil).WritesOrMutates(tr) {
		t.Error("nil summary must touch nothing")
	}
}
