// Package dfa is the dataflow package's own test corpus: a tiny program
// exercising call-graph construction, SCC ordering, the fixed-point solver,
// and CFG def-use queries. It is loaded through lintrules/load with this
// directory tree as the overlay root.
package dfa

func source() int { return 1 }

func mid() int { return source() }

func top() int { return mid() + clean() }

func clean() int { return 2 }

type counter struct{ n int }

func (c *counter) bump() { c.n++ }

func callsMethod(c *counter) { c.bump() }

func even(n int) bool {
	if n == 0 {
		return true
	}
	return odd(n - 1)
}

func odd(n int) bool {
	if n == 0 {
		return false
	}
	return even(n - 1)
}

func sink(int) {}

// backEdge's second write to x is read only on the next loop iteration:
// the read (sink(x)) precedes the write in the block, so only the loop's
// back edge makes it a use.
func backEdge(n int) {
	x := 0
	for i := 0; i < n; i++ {
		sink(x)
		x = i
	}
}

// writeNoRead's second write to v is dead: nothing reads v afterwards.
func writeNoRead(n int) int {
	v := n
	out := v
	v = out + 1
	return out
}

// branchWrite's write inside the if is read at the return via the join.
func branchWrite(n int) int {
	v := 0
	if n > 0 {
		v = n
	}
	return v
}
