// Concurrency-surface corpus: spawn sites of every kind, channel
// operations on fields, locals and parameters, forwarded channel
// parameters, deferred closes, atomic field access, and ordered
// close-then-send shapes for the CFG site queries.
package dfa

import "sync/atomic"

type hub struct {
	in   chan int
	hits int64
}

// spawns holds one spawn of each kind: literal, resolved callee, dynamic.
func spawns(fn func()) {
	go func() { _ = recv(make(chan int)) }()
	go drainChan(make(chan int))
	go fn()
}

func drainChan(ch chan int) {
	for v := range ch {
		_ = v
	}
}

func recv(ch chan int) int {
	return <-ch
}

// sendParam sends on its parameter — a direct channel-parameter fact.
func sendParam(ch chan int) {
	ch <- 1
}

// forwardSend forwards its parameter to sendParam — the fact must
// propagate through the call.
func forwardSend(ch chan int) {
	sendParam(ch)
}

// closeParam closes its parameter.
func closeParam(ch chan int) {
	close(ch)
}

// spawner transitively spawns: it calls spawns, which starts goroutines.
func spawner() {
	spawns(func() {})
}

// fieldOps sends on and closes a struct field; the deferred close carries
// the Deferred flag.
func (h *hub) fieldOps() {
	defer close(h.in)
	h.in <- 1
}

// closeThenSend orders a close before a send on the same local — the CFG
// site query must see the send as reachable after the close.
func closeThenSend() {
	ch := make(chan int, 1)
	close(ch)
	ch <- 1
}

// sendThenClose is the legal order: the close is not reachable before the
// send.
func sendThenClose() {
	ch := make(chan int, 1)
	ch <- 1
	close(ch)
}

// loopSend sends inside a loop body after a conditional close in a prior
// iteration is reachable via the back edge.
func loopSend(n int) {
	ch := make(chan int, 8)
	for i := 0; i < n; i++ {
		ch <- i
	}
	close(ch)
}

// bumpAtomic accesses hub.hits via function-style sync/atomic.
func (h *hub) bumpAtomic() {
	atomic.AddInt64(&h.hits, 1)
}
