// Package fieldsum is the FieldFacts corpus: one struct with every access
// shape the collector classifies, plus helpers exercising transitive
// summaries across calls.
package fieldsum

type tracker struct {
	n int
}

func (t *tracker) Bump()    { t.n++ }
func (t tracker) Peek() int { return t.n }

type box struct {
	a, b, c int
	items   []int
	m       map[int]int
	tr      *tracker
	agg     tracker
}

func (x *box) plainWrite(v int)  { x.a = v }
func (x *box) compound(v int)    { x.b += v }
func (x *box) incdec()           { x.c++ }
func (x *box) indexMutate(v int) { x.items[0] = v }
func (x *box) mapMutate(v int)   { x.m[1] = v }
func (x *box) addrMutate() *int  { return &x.a }
func (x *box) copyMutate(src []int) {
	copy(x.items, src)
}
func (x *box) ptrRecvCall()     { x.tr.Bump() }
func (x *box) valRecvCall() int { return x.agg.Peek() }
func (x *box) chainWrite(v int) { x.agg.n = v }
func (x *box) readOnly() int    { return x.a + x.b }

func keyedLit() box          { return box{a: 1, c: 2} }
func positionalLit() tracker { return tracker{7} }

func wholeStore(dst *tracker, src tracker) { *dst = src }

// helper layers: writeViaHelper's own body touches nothing; the summary
// must pick the write up from two calls down.
func writeViaHelper(x *box, v int) { writeHelper(x, v) }
func writeHelper(x *box, v int)    { writeInner(x, v) }
func writeInner(x *box, v int)     { x.b = v }
func readViaHelper(x *box) int     { return x.readOnly() }
