package dataflow

import (
	"go/ast"
	"go/types"
	"sort"
	"testing"

	"stochstream/internal/lintrules/load"
)

// loadProgram loads the dfa corpus through the overlay loader and indexes it.
func loadProgram(t *testing.T) *Program {
	t.Helper()
	l, err := load.NewLoader("", "testdata/src")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	if _, err := l.Load("dfa"); err != nil {
		t.Fatalf("Load dfa: %v", err)
	}
	return NewProgram(l.Fset, l.SourcePackages(), nil)
}

func funcByName(t *testing.T, p *Program, name string) *Func {
	t.Helper()
	for _, f := range p.Funcs() {
		if f.Obj.Name() == name {
			return f
		}
	}
	t.Fatalf("function %q not in program", name)
	return nil
}

func calleeNames(f *Func) []string {
	var out []string
	for _, c := range f.Calls {
		if c.Callee != nil {
			out = append(out, c.Callee.Obj.Name())
		}
	}
	sort.Strings(out)
	return out
}

func TestCallGraphEdges(t *testing.T) {
	p := loadProgram(t)
	cases := []struct {
		fn   string
		want []string
	}{
		{"top", []string{"clean", "mid"}},
		{"mid", []string{"source"}},
		{"callsMethod", []string{"bump"}}, // concrete method resolves statically
		{"even", []string{"odd"}},
		{"clean", nil},
	}
	for _, c := range cases {
		got := calleeNames(funcByName(t, p, c.fn))
		if len(got) != len(c.want) {
			t.Fatalf("%s callees = %v, want %v", c.fn, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("%s callees = %v, want %v", c.fn, got, c.want)
			}
		}
	}
}

func TestSCCBottomUpOrder(t *testing.T) {
	p := loadProgram(t)
	sccIndex := map[string]int{}
	for i, scc := range p.SCCs() {
		for _, f := range scc {
			sccIndex[f.Obj.Name()] = i
		}
	}
	// Callees' SCCs must come before their callers' (the solver relies on it).
	for _, pair := range [][2]string{{"source", "mid"}, {"mid", "top"}, {"clean", "top"}, {"bump", "callsMethod"}} {
		if sccIndex[pair[0]] >= sccIndex[pair[1]] {
			t.Errorf("SCC of %s (%d) not before SCC of %s (%d)", pair[0], sccIndex[pair[0]], pair[1], sccIndex[pair[1]])
		}
	}
	// Mutual recursion collapses into one component.
	if sccIndex["even"] != sccIndex["odd"] {
		t.Errorf("even (scc %d) and odd (scc %d) should share an SCC", sccIndex["even"], sccIndex["odd"])
	}
}

func TestFactsFixedPoint(t *testing.T) {
	p := loadProgram(t)
	// Toy taint: source() is the root; taint propagates through static calls.
	transfer := func(f *Func, store *FactStore) interface{} {
		if f.Obj.Name() == "source" {
			return true
		}
		for _, c := range f.Calls {
			if v, _ := store.Get(c.StaticObj).(bool); v {
				return true
			}
		}
		return false
	}
	eq := func(a, b interface{}) bool { return a == b }
	store := p.Facts("toytaint", transfer, eq)
	for name, want := range map[string]bool{
		"source": true, "mid": true, "top": true,
		"clean": false, "even": false, "odd": false, "backEdge": false,
	} {
		f := funcByName(t, p, name)
		if got, _ := store.Get(f.Obj).(bool); got != want {
			t.Errorf("taint(%s) = %v, want %v", name, got, want)
		}
	}
	if again := p.Facts("toytaint", transfer, eq); again != store {
		t.Error("Facts not memoized by name")
	}
}

// lastWrite returns the source-order-last write ref to the named variable.
func lastWrite(t *testing.T, f *Func, name string) Ref {
	t.Helper()
	var obj types.Object
	ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name && obj == nil {
			if d := f.Pkg.Info.Defs[id]; d != nil {
				obj = d
			}
		}
		return true
	})
	if obj == nil {
		t.Fatalf("%s: no definition of %q", f.Name(), name)
	}
	var writes []Ref
	for _, r := range f.CFG().Refs(obj) {
		if r.Write {
			writes = append(writes, r)
		}
	}
	if len(writes) == 0 {
		t.Fatalf("%s: no writes to %q", f.Name(), name)
	}
	sort.Slice(writes, func(i, j int) bool { return writes[i].Ident.Pos() < writes[j].Ident.Pos() })
	return writes[len(writes)-1]
}

func TestCFGReadAfter(t *testing.T) {
	p := loadProgram(t)
	cases := []struct {
		fn, v string
		want  bool
	}{
		// The only read of backEdge's x after the write is via the loop's
		// back edge — the case a position-based scan cannot see.
		{"backEdge", "x", true},
		{"writeNoRead", "v", false},
		{"branchWrite", "v", true},
	}
	for _, c := range cases {
		f := funcByName(t, p, c.fn)
		if got := f.CFG().ReadAfter(lastWrite(t, f, c.v)); got != c.want {
			t.Errorf("%s: ReadAfter(last write of %s) = %v, want %v", c.fn, c.v, got, c.want)
		}
	}
}
