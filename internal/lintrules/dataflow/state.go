package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Field-access summaries: the whole-program facts under the statecheck
// analyzer suite (snapcomplete, fingerprintcover). For every function the
// summary records which struct fields the function — or anything it
// transitively calls — reads, writes, or mutates. Field identity is the
// *types.Var of the field declaration, so accesses through any receiver or
// alias of the same struct type aggregate onto one object, and summaries
// compose across package boundaries exactly like the taint and purity facts.
//
// The three access kinds:
//
//   - Read:   the field's value is used (including as the base of a deeper
//     selector chain in a read context, and as the receiver of a
//     value-receiver method call).
//   - Write:  the field itself is assigned — plain assignment, compound
//     assignment, ++/--, a keyed or positional composite-literal entry, or a
//     whole-struct store through a pointer (*p = v writes every field).
//   - Mutate: the field's pointee or element state changes without the field
//     being reassigned — it is indexed or dereferenced on the left of an
//     assignment, its address is taken, it is the first argument of the copy
//     builtin, or it receives a pointer- or interface-receiver method call.
//
// Serialization-completeness consumes them as: "persistent" fields are
// writes ∪ mutates of operational code, the encoded set is the encoder's
// transitive reads, and the decoder's touched set is reads ∪ writes ∪
// mutates (a decoder may legitimately read a field only to validate it).

// FieldSummary is one function's transitive field-access summary.
type FieldSummary struct {
	Reads, Writes, Mutates map[*types.Var]bool
}

func newFieldSummary() *FieldSummary {
	return &FieldSummary{
		Reads:   map[*types.Var]bool{},
		Writes:  map[*types.Var]bool{},
		Mutates: map[*types.Var]bool{},
	}
}

// Touches reports whether the summary accesses fld in any way.
func (s *FieldSummary) Touches(fld *types.Var) bool {
	if s == nil {
		return false
	}
	return s.Reads[fld] || s.Writes[fld] || s.Mutates[fld]
}

// WritesOrMutates reports whether the summary writes or mutates fld — the
// "operational write" notion serialization completeness is defined over.
func (s *FieldSummary) WritesOrMutates(fld *types.Var) bool {
	if s == nil {
		return false
	}
	return s.Writes[fld] || s.Mutates[fld]
}

func (s *FieldSummary) union(o *FieldSummary) {
	if o == nil {
		return
	}
	for f := range o.Reads {
		s.Reads[f] = true
	}
	for f := range o.Writes {
		s.Writes[f] = true
	}
	for f := range o.Mutates {
		s.Mutates[f] = true
	}
}

func fieldSummaryEq(a, b interface{}) bool {
	x, _ := a.(*FieldSummary)
	y, _ := b.(*FieldSummary)
	if x == nil || y == nil {
		return x == y
	}
	return setEq(x.Reads, y.Reads) && setEq(x.Writes, y.Writes) && setEq(x.Mutates, y.Mutates)
}

func setEq(a, b map[*types.Var]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for f := range a {
		if !b[f] {
			return false
		}
	}
	return true
}

const fieldFactsName = "fieldaccess"

// FieldFacts returns the memoized per-function field-access summaries for
// the whole program: each function's direct accesses unioned with the
// summaries of everything it statically calls, solved bottom-up over the
// call graph. Calls through interfaces and function values contribute
// nothing (nil summary) — the conservative direction differs per consumer,
// so the consumers add their own slack (snapcomplete treats a dynamic
// method call on a field as a mutation of that field, which the direct
// collector already records).
func FieldFacts(prog *Program) *FactStore {
	transfer := func(f *Func, store *FactStore) interface{} {
		sum := newFieldSummary()
		sum.union(f.DirectFieldAccesses())
		for _, c := range f.Calls {
			cs, _ := store.Get(c.StaticObj).(*FieldSummary)
			sum.union(cs)
		}
		return sum
	}
	return prog.Facts(fieldFactsName, transfer, fieldSummaryEq)
}

// FieldSummaryOf reads one function's summary out of a FieldFacts store;
// nil when the function is external or dynamic.
func FieldSummaryOf(store *FactStore, obj *types.Func) *FieldSummary {
	s, _ := store.Get(obj).(*FieldSummary)
	return s
}

// fieldOf resolves sel to the struct field it selects, or nil when sel is
// not a field selection (method values, qualified identifiers, …).
func fieldOf(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	if s := info.Selections[sel]; s != nil {
		if s.Kind() != types.FieldVal {
			return nil
		}
		if v, ok := s.Obj().(*types.Var); ok {
			return v
		}
		return nil
	}
	// No selection entry: qualified identifier (pkg.X) — not a field.
	return nil
}

// DirectFieldAccesses returns the function's own (non-transitive) field
// accesses, built on first use. Analyzers that must attribute an access to
// the exact function whose body contains it — snapcomplete's operational
// writers — use this; FieldFacts layers the call-graph closure on top.
func (f *Func) DirectFieldAccesses() *FieldSummary {
	f.fieldOnce.Do(func() { f.fieldSum = collectFieldAccesses(f) })
	return f.fieldSum
}

// collectFieldAccesses computes one function's direct summary by walking its
// body (nested function literals included, matching Func flattening).
func collectFieldAccesses(f *Func) *FieldSummary {
	info := f.Pkg.Info
	sum := newFieldSummary()
	// written holds the exact selector nodes consumed as plain write targets,
	// so the default selector visit below does not also record them as reads.
	written := map[ast.Node]bool{}

	// markChain marks the base chain under a write/mutate target: every field
	// selector between the target and the root variable is mutated (storing
	// through j.m.Steps changes the aggregate j.m holds).
	var markChain func(e ast.Expr)
	markChain = func(e ast.Expr) {
		switch x := e.(type) {
		case *ast.ParenExpr:
			markChain(x.X)
		case *ast.StarExpr:
			markChain(x.X)
		case *ast.IndexExpr:
			markChain(x.X)
		case *ast.SliceExpr:
			markChain(x.X)
		case *ast.SelectorExpr:
			if fld := fieldOf(info, x); fld != nil {
				sum.Mutates[fld] = true
			}
			markChain(x.X)
		}
	}

	// markWrite classifies one assignment target: the outermost field
	// selector is a write; anything reached through an index, slice or
	// dereference — and the rest of the chain — is a mutation.
	markWrite := func(lhs ast.Expr) {
		e := lhs
		for {
			pe, ok := e.(*ast.ParenExpr)
			if !ok {
				break
			}
			e = pe.X
		}
		switch x := e.(type) {
		case *ast.SelectorExpr:
			if fld := fieldOf(info, x); fld != nil {
				sum.Writes[fld] = true
				written[x] = true
			}
			markChain(x.X)
		case *ast.IndexExpr, *ast.SliceExpr:
			markChain(e)
		case *ast.StarExpr:
			// A whole-struct store through a pointer writes every field of
			// the pointed-to struct (the H1/H2 `*h = out` restore idiom).
			if st, ok := derefStruct(info.TypeOf(x.X)); ok {
				for i := 0; i < st.NumFields(); i++ {
					sum.Writes[st.Field(i)] = true
				}
			}
			markChain(x.X)
		}
	}

	ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				markWrite(lhs)
				if x.Tok != token.ASSIGN && x.Tok != token.DEFINE {
					// Compound assignment reads the old value too; the write
					// marking suppressed the default read.
					if sel, ok := lhs.(*ast.SelectorExpr); ok {
						if fld := fieldOf(info, sel); fld != nil {
							sum.Reads[fld] = true
						}
					}
				}
			}
		case *ast.IncDecStmt:
			markWrite(x.X)
			if sel, ok := x.X.(*ast.SelectorExpr); ok {
				if fld := fieldOf(info, sel); fld != nil {
					sum.Reads[fld] = true
				}
			}
		case *ast.RangeStmt:
			if x.Tok == token.ASSIGN {
				if x.Key != nil {
					markWrite(x.Key)
				}
				if x.Value != nil {
					markWrite(x.Value)
				}
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				markChain(x.X)
			}
		case *ast.CallExpr:
			// copy(dst, src) mutates dst's element state.
			if id, ok := unparen(x.Fun).(*ast.Ident); ok && len(x.Args) == 2 {
				if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "copy" {
					markChain(x.Args[0])
				}
			}
			// A pointer- or interface-receiver method call on a field mutates
			// it (the callee's effects on its own receiver are otherwise
			// invisible to this type's summary — the receiver's fields belong
			// to another struct).
			if fun, ok := unparen(x.Fun).(*ast.SelectorExpr); ok {
				if s := info.Selections[fun]; s != nil && s.Kind() == types.MethodVal {
					if recvMayMutate(s) {
						markChain(fun.X)
					}
				}
			}
		case *ast.CompositeLit:
			st, ok := derefStruct(info.TypeOf(x))
			if !ok {
				return true
			}
			keyed := false
			for _, el := range x.Elts {
				kv, ok := el.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				keyed = true
				if id, ok := kv.Key.(*ast.Ident); ok {
					if fld, ok := info.Uses[id].(*types.Var); ok && fld.IsField() {
						sum.Writes[fld] = true
					}
				}
			}
			if !keyed && len(x.Elts) > 0 {
				// Positional struct literal: every field is written.
				for i := 0; i < st.NumFields(); i++ {
					sum.Writes[st.Field(i)] = true
				}
			}
		case *ast.SelectorExpr:
			if written[x] {
				return true
			}
			if fld := fieldOf(info, x); fld != nil {
				sum.Reads[fld] = true
			}
		}
		return true
	})
	return sum
}

// recvMayMutate reports whether a method call through sel can change its
// receiver: pointer receivers can, interface receivers must be assumed to,
// value receivers cannot.
func recvMayMutate(sel *types.Selection) bool {
	fn, ok := sel.Obj().(*types.Func)
	if !ok {
		return true
	}
	recv := fn.Signature().Recv()
	if recv == nil {
		return true
	}
	t := recv.Type()
	if types.IsInterface(t) {
		return true
	}
	_, isPtr := types.Unalias(t).(*types.Pointer)
	return isPtr
}

// derefStruct resolves t (through pointers and names) to its struct type.
func derefStruct(t types.Type) (*types.Struct, bool) {
	if t == nil {
		return nil, false
	}
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	if n, ok := t.(*types.Named); ok {
		t = n.Underlying()
	}
	st, ok := t.(*types.Struct)
	return st, ok
}
