// Package dataflow is the interprocedural layer under stochlint: a
// lightweight SSA-like IR over go/ast + go/types giving the analyzers a
// per-function control-flow graph with def-use chains (cfg.go), a bottom-up
// call graph over the module's packages, and a generic fixed-point solver
// with a per-analysis fact store, so analyzers can export per-function
// summaries and import their callees' summaries across package boundaries.
//
// The design mirrors the shape (not the machinery) of
// golang.org/x/tools/go/ssa + go/callgraph: this repository builds offline
// with the standard library only, and the analyzers need far less than full
// SSA — taint, escape, purity and error-discipline summaries are all small
// monotone lattices over the static call graph.
//
// Soundness model: the call graph contains only statically resolved calls
// (package functions and methods on concrete receiver types). Calls through
// interfaces, function values and reflection are not edges; an analyzer
// that needs conservatism for those must add it itself. This matches the
// suite's posture — the determinism contracts are enforced on the concrete
// decision paths, and the dynamic seams (join.Policy, process.Process) are
// covered by the differential and chaos harnesses instead.
package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"sync"

	"stochstream/internal/lintrules/analysis"
	"stochstream/internal/lintrules/load"
)

// Program is the whole-program context: every source-loaded package, the
// function index, the call graph in bottom-up SCC order, and the run's
// shared suppression table (so summary-phase suppression — killing a taint
// at its root — records directive uses for the stale audit).
type Program struct {
	Fset *token.FileSet
	Pkgs []*load.Package
	// Sup is the run's suppression table; never nil (NewProgram substitutes
	// an empty table), so analyzers can consult it unconditionally.
	Sup *analysis.SuppressionTable

	funcs map[*types.Func]*Func
	byPkg map[string][]*Func
	order []*Func   // all functions, deterministic (pkg path, file, pos) order
	sccs  [][]*Func // bottom-up: callees' SCCs before callers'

	mu    sync.Mutex
	facts map[string]*FactStore
}

// Func is one module function or method with a body. Function literals are
// flattened into their enclosing declaration: their statements contribute
// to the enclosing Func's calls and effects (an over-approximation — the
// literal may never run — which is the conservative direction for every
// analysis in the suite).
type Func struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
	Pkg  *load.Package
	// Calls are the function's call sites in source order, including those
	// inside nested function literals.
	Calls []Call

	cfgOnce sync.Once
	cfg     *CFG

	concOnce sync.Once
	conc     *Conc

	fieldOnce sync.Once
	fieldSum  *FieldSummary
}

// Name returns a compact package-qualified name for messages, e.g.
// "policy.(*HEEB).score".
func (f *Func) Name() string {
	recv := f.Obj.Signature().Recv()
	pkg := f.Pkg.Types.Name()
	if recv == nil {
		return pkg + "." + f.Obj.Name()
	}
	t := recv.Type()
	ptr := ""
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
		ptr = "*"
	}
	name := "?"
	if n, ok := types.Unalias(t).(*types.Named); ok {
		name = n.Obj().Name()
	}
	if ptr != "" {
		return pkg + ".(" + ptr + name + ")." + f.Obj.Name()
	}
	return pkg + "." + name + "." + f.Obj.Name()
}

// Call is one call site with its statically resolved target.
type Call struct {
	Site *ast.CallExpr
	// Callee is the target when it is a module function with a body; nil
	// for dynamic, interface, builtin and external calls.
	Callee *Func
	// StaticObj is the resolved target object even when it is external
	// (stdlib) or body-less; nil only for truly dynamic calls.
	StaticObj *types.Func
}

// NewProgram indexes pkgs (typically loader.SourcePackages()) into a
// Program: function index, call graph, SCC order. sup may be nil.
func NewProgram(fset *token.FileSet, pkgs []*load.Package, sup *analysis.SuppressionTable) *Program {
	if sup == nil {
		sup = analysis.NewSuppressionTable()
	}
	p := &Program{
		Fset:  fset,
		Pkgs:  pkgs,
		Sup:   sup,
		funcs: map[*types.Func]*Func{},
		byPkg: map[string][]*Func{},
		facts: map[string]*FactStore{},
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				f := &Func{Obj: obj, Decl: fd, Pkg: pkg}
				p.funcs[obj] = f
				p.byPkg[pkg.Path] = append(p.byPkg[pkg.Path], f)
				p.order = append(p.order, f)
			}
		}
	}
	for _, f := range p.order {
		f.Calls = p.collectCalls(f)
	}
	p.buildSCCs()
	return p
}

// collectCalls resolves every call site in f's body (function literals
// included) in source order.
func (p *Program) collectCalls(f *Func) []Call {
	var calls []Call
	ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		obj := CalleeObj(f.Pkg.Info, call)
		if obj == nil {
			return true
		}
		calls = append(calls, Call{Site: call, Callee: p.funcs[obj], StaticObj: obj})
		return true
	})
	return calls
}

// CalleeObj statically resolves a call expression to its target function:
// package functions, qualified functions, and methods on concrete receiver
// types. Interface method calls, function-value calls, builtins and type
// conversions resolve to nil.
func CalleeObj(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if s := info.Selections[fun]; s != nil {
			if s.Kind() != types.MethodVal {
				return nil
			}
			fn, ok := s.Obj().(*types.Func)
			if !ok {
				return nil
			}
			if recv := fn.Signature().Recv(); recv != nil && types.IsInterface(recv.Type()) {
				return nil
			}
			return fn
		}
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

func unparen(e ast.Expr) ast.Expr {
	for {
		pe, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = pe.X
	}
}

// FuncOf returns the Func for a resolved *types.Func, or nil when the
// object is external or body-less.
func (p *Program) FuncOf(obj *types.Func) *Func {
	if obj == nil {
		return nil
	}
	return p.funcs[obj]
}

// FuncsOf returns the functions of one package in source order.
func (p *Program) FuncsOf(pkgPath string) []*Func { return p.byPkg[pkgPath] }

// Funcs returns every function in deterministic program order.
func (p *Program) Funcs() []*Func { return p.order }

// CFG returns the function's control-flow graph with def-use chains, built
// on first use.
func (f *Func) CFG() *CFG {
	f.cfgOnce.Do(func() { f.cfg = buildCFG(f.Decl.Body, f.Pkg.Info) })
	return f.cfg
}

// buildSCCs runs Tarjan's algorithm over the static call graph. Tarjan
// emits each strongly connected component only after every component it
// can reach, so p.sccs is already in bottom-up (callee-first) order — the
// order the fixed-point solver wants.
func (p *Program) buildSCCs() {
	index := make(map[*Func]int, len(p.order))
	low := make(map[*Func]int, len(p.order))
	onstack := make(map[*Func]bool, len(p.order))
	var stack []*Func
	next := 0
	var strong func(v *Func)
	strong = func(v *Func) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onstack[v] = true
		for _, c := range v.Calls {
			w := c.Callee
			if w == nil {
				continue
			}
			if _, seen := index[w]; !seen {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onstack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []*Func
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onstack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			p.sccs = append(p.sccs, scc)
		}
	}
	for _, f := range p.order {
		if _, seen := index[f]; !seen {
			strong(f)
		}
	}
}

// SCCs returns the call graph's strongly connected components in bottom-up
// order (every component before the components that call into it).
func (p *Program) SCCs() [][]*Func { return p.sccs }

// FactStore holds the per-function summaries of one analysis.
type FactStore struct {
	m map[*types.Func]interface{}
}

// Get returns the summary of obj, or nil when obj is external, dynamic or
// not yet summarized. Analyzers must treat nil as "no information" and pick
// their conservative default.
func (s *FactStore) Get(obj *types.Func) interface{} {
	if obj == nil {
		return nil
	}
	return s.m[obj]
}

// TransferFunc computes one function's summary from its body and its
// callees' current summaries (read through store.Get). It must be monotone
// and deterministic: the solver re-runs it until the summary stabilizes.
type TransferFunc func(f *Func, store *FactStore) interface{}

// Facts returns the memoized fact store of the named analysis, computing it
// on first use: functions are visited bottom-up over the call graph's SCCs,
// and each SCC is iterated to a fixed point (eq compares summaries). Within
// an SCC the iteration is capped — a non-monotone transfer terminates
// rather than looping, at the cost of a possibly unstable summary.
//
// Transfer functions must not call Facts recursively (the store lock is
// held during the solve); layer analyses by calling Facts for the earlier
// analysis first and closing over its store.
func (p *Program) Facts(name string, transfer TransferFunc, eq func(a, b interface{}) bool) *FactStore {
	p.mu.Lock()
	defer p.mu.Unlock()
	if s, ok := p.facts[name]; ok {
		return s
	}
	s := &FactStore{m: map[*types.Func]interface{}{}}
	for _, scc := range p.sccs {
		for round := 0; round <= 2*len(scc)+4; round++ {
			changed := false
			for _, f := range scc {
				nv := transfer(f, s)
				if !eq(nv, s.m[f.Obj]) {
					s.m[f.Obj] = nv
					changed = true
				}
			}
			if !changed {
				break
			}
		}
	}
	p.facts[name] = s
	return s
}
