package dataflow

import (
	"go/ast"
	"testing"
)

// opsOf renders a function's channel operations as "kind:root" strings,
// with "+defer" marking deferred closes.
func opsOf(f *Func) []string {
	var out []string
	for _, op := range f.Conc().ChanOps {
		s := op.Kind.String() + ":" + op.Root.Name()
		if op.Deferred {
			s += "+defer"
		}
		out = append(out, s)
	}
	return out
}

func TestConcCollection(t *testing.T) {
	p := loadProgram(t)

	sp := funcByName(t, p, "spawns").Conc().Spawns
	if len(sp) != 3 {
		t.Fatalf("spawns: %d spawn sites, want 3", len(sp))
	}
	if sp[0].Lit == nil || sp[0].Callee != nil {
		t.Errorf("spawn 0: want literal spawn, got %+v", sp[0])
	}
	if sp[1].Callee == nil || sp[1].Callee.Name() != "drainChan" {
		t.Errorf("spawn 1: want resolved callee drainChan, got %+v", sp[1])
	}
	if sp[2].Lit != nil || sp[2].Callee != nil {
		t.Errorf("spawn 2: want dynamic spawn (no body), got %+v", sp[2])
	}

	cases := []struct {
		fn   string
		want []string
	}{
		{"sendParam", []string{"send:ch"}},
		{"drainChan", []string{"range:ch"}},
		{"closeParam", []string{"close:ch"}},
		{"fieldOps", []string{"close:in+defer", "send:in"}},
		{"closeThenSend", []string{"close:ch", "send:ch"}},
	}
	for _, c := range cases {
		got := opsOf(funcByName(t, p, c.fn))
		if len(got) != len(c.want) {
			t.Fatalf("%s ops = %v, want %v", c.fn, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("%s ops = %v, want %v", c.fn, got, c.want)
			}
		}
	}

	at := funcByName(t, p, "bumpAtomic").Conc().Atomics
	if len(at) != 1 || at[0].Name != "AddInt64" || at[0].Field.Name() != "hits" {
		t.Errorf("bumpAtomic atomics = %+v, want one AddInt64 on hits", at)
	}
}

func TestSpawnFacts(t *testing.T) {
	p := loadProgram(t)
	store := SpawnFacts(p)
	for name, want := range map[string]bool{
		"spawns":  true,
		"spawner": true, // transitively, through the call to spawns
		"clean":   false,
		"recv":    false,
	} {
		f := funcByName(t, p, name)
		if got, _ := store.Get(f.Obj).(bool); got != want {
			t.Errorf("spawnFact(%s) = %v, want %v", name, got, want)
		}
	}
}

func TestChanParamFacts(t *testing.T) {
	p := loadProgram(t)
	store := ChanParamFacts(p)
	cases := []struct {
		fn                  string
		sends, recvs, close bool
	}{
		{"sendParam", true, false, false},
		{"forwardSend", true, false, false}, // through the forwarded call
		{"drainChan", false, true, false},   // range counts as receive
		{"recv", false, true, false},
		{"closeParam", false, false, true},
	}
	for _, c := range cases {
		f := funcByName(t, p, c.fn)
		fact, _ := store.Get(f.Obj).(*ChanParamFact)
		if fact == nil {
			t.Fatalf("%s: no channel-parameter fact", c.fn)
		}
		if fact.Sends[0] != c.sends || fact.Recvs[0] != c.recvs || fact.Closes[0] != c.close {
			t.Errorf("%s fact = sends %v recvs %v closes %v, want %v %v %v",
				c.fn, fact.Sends[0], fact.Recvs[0], fact.Closes[0], c.sends, c.recvs, c.close)
		}
	}
}

// siteOfOp locates a function's i-th channel op in its CFG.
func siteOfOp(t *testing.T, f *Func, i int) NodeSite {
	t.Helper()
	s, ok := f.CFG().SiteOf(f.Conc().ChanOps[i].Node)
	if !ok {
		t.Fatalf("%s: op %d not located in CFG", f.Name(), i)
	}
	return s
}

func TestCFGSiteOrdering(t *testing.T) {
	p := loadProgram(t)

	// closeThenSend: ops are [close, send]; the send is reachable after the
	// close, not the other way around.
	f := funcByName(t, p, "closeThenSend")
	cl, snd := siteOfOp(t, f, 0), siteOfOp(t, f, 1)
	if !f.CFG().ReachableAfter(cl, snd) {
		t.Error("closeThenSend: send not reachable after close")
	}
	if f.CFG().ReachableAfter(snd, cl) {
		t.Error("closeThenSend: close reachable after send (straight-line code)")
	}

	// sendThenClose: ops are [send, close]; the send precedes the close.
	f = funcByName(t, p, "sendThenClose")
	snd, cl = siteOfOp(t, f, 0), siteOfOp(t, f, 1)
	if f.CFG().ReachableAfter(cl, snd) {
		t.Error("sendThenClose: send reachable after close")
	}

	// loopSend: the close is after the loop; no back edge reaches the send
	// from it.
	f = funcByName(t, p, "loopSend")
	snd, cl = siteOfOp(t, f, 0), siteOfOp(t, f, 1)
	if f.CFG().ReachableAfter(cl, snd) {
		t.Error("loopSend: in-loop send reachable after post-loop close")
	}
	if !f.CFG().ReachableAfter(snd, cl) {
		t.Error("loopSend: post-loop close not reachable after in-loop send")
	}

	// A node that is not in the function does not resolve.
	if _, ok := f.CFG().SiteOf(&ast.BadStmt{}); ok {
		t.Error("SiteOf resolved a foreign node")
	}
}
