package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the concurrency surface of the dataflow layer: per-function
// collection of goroutine spawn sites, channel operations and sync/atomic
// field accesses (Func.Conc), a root abstraction that identifies the
// variable or struct field behind an operand across instances (RootOf), and
// two interprocedural summaries — SpawnFacts ("calling this function may
// start a goroutine") and ChanParamFacts ("this function sends on /
// receives from / closes its i-th channel parameter, directly or through
// callees") — that the goleak, chandiscipline, atomicfield and mergedet
// analyzers are built on.

// SpawnSite is one `go` statement in a function body (nested function
// literals included, like Func.Calls).
type SpawnSite struct {
	Stmt *ast.GoStmt
	// Callee is the statically resolved spawn target (go sh.run()); nil
	// when the goroutine body is a function literal or a dynamic call.
	Callee *types.Func
	// Lit is the spawned literal for `go func() { ... }()` spawns.
	Lit *ast.FuncLit
}

// ChanOpKind classifies one channel operation.
type ChanOpKind int

const (
	ChanSend ChanOpKind = iota
	ChanRecv
	ChanRange
	ChanClose
)

func (k ChanOpKind) String() string {
	switch k {
	case ChanSend:
		return "send"
	case ChanRecv:
		return "receive"
	case ChanRange:
		return "range"
	case ChanClose:
		return "close"
	}
	return "?"
}

// Root identifies the variable behind an operand expression in a way that
// is stable across instances: a struct field (sh.in resolves to the field
// declaration, shared by every shard), or a local, parameter or
// package-level variable object. The zero Root means the expression's base
// could not be resolved (a call result, a map element, ...), and analyzers
// must treat operations on it conservatively.
type Root struct {
	// Field is the field declaration when the operand is a struct field
	// selector, however deep the selector chain.
	Field *types.Var
	// Obj is the variable object for plain identifiers and package-qualified
	// variables.
	Obj types.Object
}

// Valid reports whether the root resolved to a field or variable.
func (r Root) Valid() bool { return r.Field != nil || r.Obj != nil }

// Name renders the root for diagnostics: "T.field" for fields, the
// variable name otherwise.
func (r Root) Name() string {
	if r.Field != nil {
		return r.Field.Name()
	}
	if r.Obj != nil {
		return r.Obj.Name()
	}
	return "?"
}

// RootOf resolves an operand expression to its Root, looking through
// parens, index and slice expressions. It is not channel-specific: the
// same resolution identifies WaitGroup receivers and atomic operands.
func RootOf(info *types.Info, e ast.Expr) Root {
	for {
		switch x := unparen(e).(type) {
		case *ast.SelectorExpr:
			if s := info.Selections[x]; s != nil && s.Kind() == types.FieldVal {
				if v, ok := s.Obj().(*types.Var); ok {
					return Root{Field: v}
				}
				return Root{}
			}
			// Qualified package-level variable (pkg.Ch).
			if v, ok := info.Uses[x.Sel].(*types.Var); ok {
				return Root{Obj: v}
			}
			return Root{}
		case *ast.Ident:
			obj := info.Defs[x]
			if obj == nil {
				obj = info.Uses[x]
			}
			if v, ok := obj.(*types.Var); ok {
				return Root{Obj: v}
			}
			return Root{}
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return Root{}
			}
			e = x.X
		default:
			return Root{}
		}
	}
}

// ChanOp is one channel operation in a function body. Node is the operation
// itself (SendStmt, receive UnaryExpr, RangeStmt, or the close CallExpr) and
// can be located in the function's CFG via CFG.SiteOf for ordering queries.
type ChanOp struct {
	Kind ChanOpKind
	Node ast.Node
	Root Root
	// Deferred marks a close that runs at function exit (`defer close(ch)`):
	// its textual position says nothing about execution order relative to
	// the function's sends, so ordering checks must skip it.
	Deferred bool
}

// Pos returns the operation's source position.
func (op ChanOp) Pos() token.Pos { return op.Node.Pos() }

// AtomicAccess is one function-style sync/atomic call whose operand is the
// address of a struct field (atomic.AddInt64(&c.hits, 1)). Method-style
// atomics (atomic.Int64 fields) are not recorded: the type system already
// prevents plain access to their values.
type AtomicAccess struct {
	Call *ast.CallExpr
	// Sel is the field selector under the & operand — recorded so plain-
	// access scans can exempt the atomic call's own operand.
	Sel   *ast.SelectorExpr
	Field *types.Var
	Name  string // the atomic function, e.g. "AddInt64"
}

// Conc is one function's concurrency surface, collected lazily like the
// CFG. Operations inside nested function literals are attributed to the
// enclosing function (the same flattening as Func.Calls): a receive inside
// a spawned closure still drains the channel, which is the conservative
// direction for every pairing query built on top.
type Conc struct {
	Spawns  []SpawnSite
	ChanOps []ChanOp
	Atomics []AtomicAccess
}

// Conc returns the function's concurrency surface, built on first use.
func (f *Func) Conc() *Conc {
	f.concOnce.Do(func() { f.conc = collectConc(f.Decl.Body, f.Pkg.Info) })
	return f.conc
}

func collectConc(body *ast.BlockStmt, info *types.Info) *Conc {
	c := &Conc{}
	// Deferred calls run at function exit; mark their channel closes so
	// ordering checks (send-after-close) do not misread the textual order.
	deferred := map[*ast.CallExpr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok && d.Call != nil {
			deferred[d.Call] = true
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			sp := SpawnSite{Stmt: n}
			if lit, ok := unparen(n.Call.Fun).(*ast.FuncLit); ok {
				sp.Lit = lit
			} else {
				sp.Callee = CalleeObj(info, n.Call)
			}
			c.Spawns = append(c.Spawns, sp)
		case *ast.SendStmt:
			c.ChanOps = append(c.ChanOps, ChanOp{Kind: ChanSend, Node: n, Root: RootOf(info, n.Chan)})
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				c.ChanOps = append(c.ChanOps, ChanOp{Kind: ChanRecv, Node: n, Root: RootOf(info, n.X)})
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					c.ChanOps = append(c.ChanOps, ChanOp{Kind: ChanRange, Node: n, Root: RootOf(info, n.X)})
				}
			}
		case *ast.CallExpr:
			if id, ok := unparen(n.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "close" && len(n.Args) == 1 {
					c.ChanOps = append(c.ChanOps, ChanOp{
						Kind:     ChanClose,
						Node:     n,
						Root:     RootOf(info, n.Args[0]),
						Deferred: deferred[n],
					})
				}
				return true
			}
			if a, ok := atomicFieldAccess(info, n); ok {
				c.Atomics = append(c.Atomics, a)
			}
		}
		return true
	})
	return c
}

// atomicFieldAccess matches a function-style sync/atomic call whose first
// argument is the address of a struct field.
func atomicFieldAccess(info *types.Info, call *ast.CallExpr) (AtomicAccess, bool) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || len(call.Args) == 0 {
		return AtomicAccess{}, false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return AtomicAccess{}, false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != "sync/atomic" {
		return AtomicAccess{}, false
	}
	un, ok := unparen(call.Args[0]).(*ast.UnaryExpr)
	if !ok || un.Op != token.AND {
		return AtomicAccess{}, false
	}
	fsel, ok := unparen(un.X).(*ast.SelectorExpr)
	if !ok {
		return AtomicAccess{}, false
	}
	s := info.Selections[fsel]
	if s == nil || s.Kind() != types.FieldVal {
		return AtomicAccess{}, false
	}
	v, ok := s.Obj().(*types.Var)
	if !ok {
		return AtomicAccess{}, false
	}
	return AtomicAccess{Call: call, Sel: fsel, Field: v, Name: sel.Sel.Name}, true
}

// ParamVars returns a function's parameter objects, receiver first for
// methods — the index space of ChanParamFact.
func ParamVars(obj *types.Func) []*types.Var {
	sig := obj.Signature()
	var out []*types.Var
	if r := sig.Recv(); r != nil {
		out = append(out, r)
	}
	for i := 0; i < sig.Params().Len(); i++ {
		out = append(out, sig.Params().At(i))
	}
	return out
}

// ArgParamIndex maps a call-site argument position to the callee's
// ParamVars index: methods shift by one for the receiver, and variadic
// overflow maps onto the last parameter.
func ArgParamIndex(callee *types.Func, arg int) int {
	off := 0
	if callee.Signature().Recv() != nil {
		off = 1
	}
	n := callee.Signature().Params().Len() + off
	i := arg + off
	if i >= n {
		i = n - 1
	}
	return i
}

// SpawnFacts returns per-function summaries (as bool facts) of whether
// calling the function may start a goroutine, directly or through any chain
// of static callees.
func SpawnFacts(p *Program) *FactStore {
	transfer := func(f *Func, store *FactStore) interface{} {
		if len(f.Conc().Spawns) > 0 {
			return true
		}
		for _, c := range f.Calls {
			if v, _ := store.Get(c.StaticObj).(bool); v {
				return true
			}
		}
		return false
	}
	return p.Facts("conc:spawns", transfer, func(a, b interface{}) bool { return a == b })
}

// ChanParamFact summarizes what a function does to its channel-typed
// parameters (ParamVars index space): Sends[i] / Recvs[i] / Closes[i] —
// the function sends on, receives or ranges from, or closes parameter i,
// directly or by forwarding it to a callee that does. Range counts as a
// receive: both drain the channel.
type ChanParamFact struct {
	Sends  []bool
	Recvs  []bool
	Closes []bool
}

func chanParamEq(a, b interface{}) bool {
	x, _ := a.(*ChanParamFact)
	y, _ := b.(*ChanParamFact)
	if x == nil || y == nil {
		return x == y
	}
	return boolSliceEq(x.Sends, y.Sends) && boolSliceEq(x.Recvs, y.Recvs) && boolSliceEq(x.Closes, y.Closes)
}

func boolSliceEq(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func isChanType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// ChanParamFacts computes (or returns the memoized) channel-parameter
// summaries for the whole program.
func ChanParamFacts(p *Program) *FactStore {
	transfer := func(f *Func, store *FactStore) interface{} {
		params := ParamVars(f.Obj)
		fact := &ChanParamFact{
			Sends:  make([]bool, len(params)),
			Recvs:  make([]bool, len(params)),
			Closes: make([]bool, len(params)),
		}
		idx := map[types.Object]int{}
		for i, v := range params {
			if isChanType(v.Type()) {
				idx[v] = i
			}
		}
		if len(idx) == 0 {
			return fact
		}
		for _, op := range f.Conc().ChanOps {
			if op.Root.Obj == nil {
				continue
			}
			i, ok := idx[op.Root.Obj]
			if !ok {
				continue
			}
			switch op.Kind {
			case ChanSend:
				fact.Sends[i] = true
			case ChanRecv, ChanRange:
				fact.Recvs[i] = true
			case ChanClose:
				fact.Closes[i] = true
			}
		}
		for _, c := range f.Calls {
			cf, _ := store.Get(c.StaticObj).(*ChanParamFact)
			if cf == nil {
				continue
			}
			for k, arg := range c.Site.Args {
				root := RootOf(f.Pkg.Info, arg)
				if root.Obj == nil {
					continue
				}
				i, ok := idx[root.Obj]
				if !ok {
					continue
				}
				j := ArgParamIndex(c.StaticObj, k)
				if j < len(cf.Sends) && cf.Sends[j] {
					fact.Sends[i] = true
				}
				if j < len(cf.Recvs) && cf.Recvs[j] {
					fact.Recvs[i] = true
				}
				if j < len(cf.Closes) && cf.Closes[j] {
					fact.Closes[i] = true
				}
			}
		}
		return fact
	}
	return p.Facts("conc:chanparam", transfer, chanParamEq)
}
