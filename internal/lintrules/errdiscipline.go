package lintrules

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"

	"stochstream/internal/lintrules/analysis"
	"stochstream/internal/lintrules/dataflow"
)

// Errdiscipline enforces the typed-error taxonomy's three contracts:
//
//  1. sentinel errors (package-level `var ErrX = ...`) are matched with
//     errors.Is/As, never == or != — wrapping with %w breaks identity
//     comparison by design;
//  2. fmt.Errorf calls that embed a sentinel use the %w verb, so the
//     wrapped sentinel stays matchable;
//  3. errors that can be (or wrap) mincostflow.ErrNumericalInstability are
//     never silently discarded: the degradation ladder's whole design rests
//     on instability surfacing through errors.Is so a rung can descend.
//
// Contract 3 is interprocedural and flow-sensitive: the analyzer computes
// which sentinels each function can return (bottom-up, through wrapping
// helpers), then uses the CFG's def-use chains to decide whether an error
// assigned from such a call is ever examined on any subsequent path —
// including reads that only happen on a loop's next iteration.
var Errdiscipline = &analysis.Analyzer{
	Name: errdisciplineName,
	Doc:  "typed errors: wrap with %w, match with errors.Is/As, never swallow ErrNumericalInstability",
	Run:  runErrdiscipline,
}

const errdisciplineName = "errdiscipline"

// instabilityName is the sentinel contract 3 protects.
const instabilityName = "ErrNumericalInstability"

// sentinelVar resolves e to a package-level error sentinel (a var named
// Err* whose type implements error), or nil.
func sentinelVar(info *types.Info, e ast.Expr) *types.Var {
	var id *ast.Ident
	switch e := unparenExpr(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	v, ok := identObj(info, id).(*types.Var)
	if !ok || !strings.HasPrefix(v.Name(), "Err") || !isPackageLevel(v) {
		return nil
	}
	errIface, _ := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	if errIface == nil || !types.Implements(v.Type(), errIface) {
		return nil
	}
	return v
}

// errFact is one function's returnable-sentinel summary, kept sorted by
// (package path, name) for deterministic comparison and iteration.
type errFact struct {
	sentinels []*types.Var
}

func errEq(a, b interface{}) bool {
	x, _ := a.(*errFact)
	y, _ := b.(*errFact)
	if x == nil || y == nil {
		return x == y
	}
	if len(x.sentinels) != len(y.sentinels) {
		return false
	}
	for i := range x.sentinels {
		if x.sentinels[i] != y.sentinels[i] {
			return false
		}
	}
	return true
}

func sentinelKey(v *types.Var) string {
	pkg := ""
	if v.Pkg() != nil {
		pkg = v.Pkg().Path()
	}
	return pkg + "." + v.Name()
}

func sortSentinels(set map[*types.Var]bool) []*types.Var {
	out := make([]*types.Var, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return sentinelKey(out[i]) < sentinelKey(out[j]) })
	return out
}

// hasErrorResult reports whether the call's (possibly tuple) type includes
// an error, with its tuple index (-1 when absent).
func errorResultIndex(info *types.Info, call *ast.CallExpr) int {
	tv, ok := info.Types[call]
	if !ok {
		return -1
	}
	if tup, ok := tv.Type.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if isErrorType(tup.At(i).Type()) {
				return i
			}
		}
		return -1
	}
	if isErrorType(tv.Type) {
		return 0
	}
	return -1
}

func isErrorType(t types.Type) bool {
	n, ok := types.Unalias(t).(*types.Named)
	return ok && n.Obj().Name() == "error" && n.Obj().Pkg() == nil
}

// errdisciplineFacts computes which sentinels each function can return.
// Sentinels enter a summary when they appear under a return statement
// (directly or inside a wrapping fmt.Errorf), and callee summaries are
// unioned in only when the callee's error result can actually flow to a
// return — via a direct `return g(...)` or an assigned error variable that
// some return statement mentions.
func errdisciplineFacts(prog *dataflow.Program) *dataflow.FactStore {
	transfer := func(f *dataflow.Func, store *dataflow.FactStore) interface{} {
		info := f.Pkg.Info
		set := map[*types.Var]bool{}

		// Objects mentioned in this function's own return statements.
		returnObjs := map[types.Object]bool{}
		inReturn := map[*ast.CallExpr]bool{}
		skipFuncLits(f.Decl.Body, func(n ast.Node) {
			ret, ok := n.(*ast.ReturnStmt)
			if !ok {
				return
			}
			for _, res := range ret.Results {
				ast.Inspect(res, func(m ast.Node) bool {
					switch m := m.(type) {
					case *ast.Ident:
						if v := sentinelVar(info, m); v != nil {
							set[v] = true
						} else if obj := identObj(info, m); obj != nil {
							returnObjs[obj] = true
						}
					case *ast.CallExpr:
						inReturn[m] = true
					}
					return true
				})
			}
		})

		for _, c := range f.Calls {
			fact, _ := store.Get(c.StaticObj).(*errFact)
			if fact == nil || len(fact.sentinels) == 0 {
				continue
			}
			flows := inReturn[c.Site]
			if !flows {
				// err := g(...); ... return err  (possibly wrapped)
				if lhs := assignedErrIdent(info, f.Decl.Body, c.Site); lhs != nil {
					if obj := identObj(info, lhs); obj != nil && returnObjs[obj] {
						flows = true
					}
				}
			}
			if !flows {
				continue
			}
			if prog.Sup.Suppresses(errdisciplineName, prog.Fset.Position(c.Site.Pos())) {
				continue
			}
			for _, v := range fact.sentinels {
				set[v] = true
			}
		}
		if len(set) == 0 {
			return (*errFact)(nil)
		}
		return &errFact{sentinels: sortSentinels(set)}
	}
	return prog.Facts(errdisciplineName, transfer, errEq)
}

// assignedErrIdent finds the identifier the call's error result is assigned
// to in `v, err := g(...)` / `err = g(...)` forms, or nil.
func assignedErrIdent(info *types.Info, body ast.Node, call *ast.CallExpr) *ast.Ident {
	var found *ast.Ident
	ast.Inspect(body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || unparenExpr(as.Rhs[0]) != call {
			return true
		}
		idx := errorResultIndex(info, call)
		if idx < 0 || idx >= len(as.Lhs) {
			return true
		}
		if id, ok := as.Lhs[idx].(*ast.Ident); ok && id.Name != "_" {
			found = id
		}
		return true
	})
	return found
}

// factHasInstability reports whether a callee summary includes the
// numerical-instability sentinel.
func factHasInstability(fact *errFact) *types.Var {
	if fact == nil {
		return nil
	}
	for _, v := range fact.sentinels {
		if v.Name() == instabilityName {
			return v
		}
	}
	return nil
}

func runErrdiscipline(pass *analysis.Pass) (interface{}, error) {
	info := pass.TypesInfo

	// Contracts 1 and 2 are per-file.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				for _, side := range []ast.Expr{n.X, n.Y} {
					if v := sentinelVar(info, side); v != nil {
						pass.Reportf(n.Pos(), "sentinel %s compared with %s: use errors.Is(err, %s) — the taxonomy wraps errors with %%w, which breaks identity comparison", v.Name(), n.Op, v.Name())
						break
					}
				}
			case *ast.CallExpr:
				sel, ok := unparenExpr(n.Fun).(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Errorf" || len(n.Args) < 2 {
					return true
				}
				if id, ok := sel.X.(*ast.Ident); !ok {
					return true
				} else if pn, ok := info.Uses[id].(*types.PkgName); !ok || pn.Imported().Path() != "fmt" {
					return true
				}
				lit, ok := unparenExpr(n.Args[0]).(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					return true
				}
				format, err := strconv.Unquote(lit.Value)
				if err != nil || strings.Contains(format, "%w") {
					return true
				}
				for _, arg := range n.Args[1:] {
					if v := sentinelVar(info, arg); v != nil {
						pass.Reportf(arg.Pos(), "sentinel %s formatted without %%w: the wrap is invisible to errors.Is/As; use fmt.Errorf(\"...: %%w\", %s)", v.Name(), v.Name())
					}
				}
			}
			return true
		})
	}

	// Contract 3 needs the whole-program summaries and the CFG.
	prog, _ := pass.Facts.(*dataflow.Program)
	if prog == nil {
		return nil, nil
	}
	store := errdisciplineFacts(prog)
	for _, f := range prog.FuncsOf(pass.Pkg.Path()) {
		checkInstabilitySwallow(pass, store, f)
	}
	return nil, nil
}

func checkInstabilitySwallow(pass *analysis.Pass, store *dataflow.FactStore, f *dataflow.Func) {
	info := pass.TypesInfo
	report := func(pos token.Pos, callee *types.Func, how string) {
		pass.Reportf(pos, "error from %s can wrap %s and is %s: the degradation ladder relies on instability surfacing through errors.Is — handle it or propagate it", funcDisplayName(callee), instabilityName, how)
	}
	handledCalls := map[*ast.CallExpr]bool{}
	// First pass: calls whose error result is bound to a named variable —
	// flow-sensitively check the variable is read afterwards.
	ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := unparenExpr(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		fact, _ := store.Get(dataflow.CalleeObj(info, call)).(*errFact)
		if factHasInstability(fact) == nil {
			return true
		}
		idx := errorResultIndex(info, call)
		if idx < 0 || idx >= len(as.Lhs) {
			return true
		}
		handledCalls[call] = true
		id, ok := as.Lhs[idx].(*ast.Ident)
		callee := dataflow.CalleeObj(info, call)
		if !ok || id.Name == "_" {
			report(call.Pos(), callee, "discarded into _")
			return true
		}
		obj := identObj(info, id)
		if obj == nil {
			return true
		}
		cfg := f.CFG()
		for _, ref := range cfg.Refs(obj) {
			if ref.Write && ref.Ident == id {
				if !cfg.ReadAfter(ref) {
					report(call.Pos(), callee, "assigned to "+id.Name+" but never examined afterwards on any path")
				}
				return true
			}
		}
		return true
	})
	// Second pass: bare calls whose results are dropped entirely.
	ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			return true
		}
		call, ok := unparenExpr(es.X).(*ast.CallExpr)
		if !ok || handledCalls[call] {
			return true
		}
		callee := dataflow.CalleeObj(info, call)
		fact, _ := store.Get(callee).(*errFact)
		if factHasInstability(fact) == nil || errorResultIndex(info, call) < 0 {
			return true
		}
		report(call.Pos(), callee, "dropped (the call's error result is unused)")
		return true
	})
}
