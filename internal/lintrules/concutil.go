package lintrules

import (
	"go/ast"
	"go/types"

	"stochstream/internal/lintrules/dataflow"
)

// Helpers shared by the concurrency analyzers (goleak, chandiscipline,
// atomicfield, mergedet). They fold the dataflow layer's per-function
// concurrency surfaces (Func.Conc) and channel-parameter summaries
// (dataflow.ChanParamFacts) into the program-wide sets the analyzers
// query: which channel roots are closed, drained or sent-to anywhere, and
// which sync.WaitGroup roots are waited on.

// chanOpSite is one channel operation as an analyzer sees it: the direct
// operation, or a call site projected through the callee's channel-parameter
// summary (a helper that closes its channel parameter makes the call site an
// effective close of the argument's root). via names the callee for
// projected ops; nil for direct ones.
type chanOpSite struct {
	dataflow.ChanOp
	via *types.Func
}

// effectiveChanOps returns f's channel operations: its own, plus the ops
// its call sites perform through callees' summaries. Only ops whose root
// resolves are projected — an unresolvable argument cannot be paired with
// anything anyway.
func effectiveChanOps(f *dataflow.Func, store *dataflow.FactStore) []chanOpSite {
	var ops []chanOpSite
	for _, op := range f.Conc().ChanOps {
		ops = append(ops, chanOpSite{ChanOp: op})
	}
	info := f.Pkg.Info
	for _, c := range f.Calls {
		cf, _ := store.Get(c.StaticObj).(*dataflow.ChanParamFact)
		if cf == nil {
			continue
		}
		for k, arg := range c.Site.Args {
			root := dataflow.RootOf(info, arg)
			if !root.Valid() {
				continue
			}
			j := dataflow.ArgParamIndex(c.StaticObj, k)
			if j < len(cf.Sends) && cf.Sends[j] {
				ops = append(ops, chanOpSite{ChanOp: dataflow.ChanOp{Kind: dataflow.ChanSend, Node: c.Site, Root: root}, via: c.StaticObj})
			}
			if j < len(cf.Recvs) && cf.Recvs[j] {
				ops = append(ops, chanOpSite{ChanOp: dataflow.ChanOp{Kind: dataflow.ChanRecv, Node: c.Site, Root: root}, via: c.StaticObj})
			}
			if j < len(cf.Closes) && cf.Closes[j] {
				ops = append(ops, chanOpSite{ChanOp: dataflow.ChanOp{Kind: dataflow.ChanClose, Node: c.Site, Root: root}, via: c.StaticObj})
			}
		}
	}
	return ops
}

// chanRootsWith returns every root that some function in the program
// applies ops of the given kinds to (range counts as a receive). Field
// roots are shared across instances; local and parameter roots only ever
// match operations within their own function, which is exactly the
// visibility a local channel has.
func chanRootsWith(prog *dataflow.Program, store *dataflow.FactStore, kinds ...dataflow.ChanOpKind) map[dataflow.Root]bool {
	want := map[dataflow.ChanOpKind]bool{}
	for _, k := range kinds {
		want[k] = true
		if k == dataflow.ChanRecv {
			want[dataflow.ChanRange] = true
		}
	}
	out := map[dataflow.Root]bool{}
	for _, f := range prog.Funcs() {
		for _, op := range effectiveChanOps(f, store) {
			if want[op.Kind] && op.Root.Valid() {
				out[op.Root] = true
			}
		}
	}
	return out
}

// isNamedType reports whether t (after pointer deref) is the named type
// pkgPath.name.
func isNamedType(t types.Type, pkgPath, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// waitGroupCall matches a method call on a sync.WaitGroup value and returns
// the receiver's root and the method name.
func waitGroupCall(info *types.Info, call *ast.CallExpr) (dataflow.Root, string, bool) {
	sel, ok := unparenExpr(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return dataflow.Root{}, "", false
	}
	s := info.Selections[sel]
	if s == nil || s.Kind() != types.MethodVal {
		return dataflow.Root{}, "", false
	}
	fn, ok := s.Obj().(*types.Func)
	if !ok {
		return dataflow.Root{}, "", false
	}
	recv := fn.Signature().Recv()
	if recv == nil || !isNamedType(recv.Type(), "sync", "WaitGroup") {
		return dataflow.Root{}, "", false
	}
	return dataflow.RootOf(info, sel.X), sel.Sel.Name, true
}

// waitGroupRoots returns every WaitGroup root the program calls the given
// method on (e.g. "Wait").
func waitGroupRoots(prog *dataflow.Program, method string) map[dataflow.Root]bool {
	out := map[dataflow.Root]bool{}
	for _, f := range prog.Funcs() {
		ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if root, m, ok := waitGroupCall(f.Pkg.Info, call); ok && m == method && root.Valid() {
					out[root] = true
				}
			}
			return true
		})
	}
	return out
}

// isCtxDoneRecv matches `<-x.Done()` for a context.Context x.
func isCtxDoneRecv(info *types.Info, recv *ast.UnaryExpr) bool {
	call, ok := unparenExpr(recv.X).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := unparenExpr(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return false
	}
	s := info.Selections[sel]
	if s == nil {
		return false
	}
	fn, ok := s.Obj().(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "context"
}
