package lintrules

import (
	"go/types"
	"strings"

	"stochstream/internal/lintrules/analysis"
	"stochstream/internal/lintrules/dataflow"
)

// Fingerprintcover closes the second state-integrity gap: a checkpoint is
// only safe to restore under the configuration it was taken with, and the
// guard is the config fingerprint compared on restore (ErrConfigMismatch).
// The failure mode is a new Config knob that changes runtime decisions —
// cache budget split, window, seed derivation — but never gets folded into
// the fingerprint, so a checkpoint taken under one value silently restores
// under another and replay diverges instead of failing fast.
//
// For every package in scope that declares a Config struct, the analyzer
// requires a fingerprint function (a function or method named fingerprint /
// Fingerprint) and computes:
//
//   - the covered set: Config fields transitively read by the fingerprint
//     function — helpers included, so a fingerprint that delegates hashing
//     still covers what its helpers read;
//   - the relevant set: Config fields read anywhere else in the program
//     (any function outside the fingerprint's exclusive helper closure) —
//     if nothing reads a field, it cannot steer a decision.
//
// Relevant fields not covered are reported at the field declaration.
// Observability handles (telemetry / flightrec types) are exempt; knobs
// that genuinely cannot affect replay — queue capacities, file paths,
// observability toggles — carry a //lint:ignore fingerprintcover with the
// reason.
const fingerprintcoverName = "fingerprintcover"

var Fingerprintcover = &analysis.Analyzer{
	Name: fingerprintcoverName,
	Doc:  "every decision-relevant Config field must be folded into the config fingerprint",
	Run:  runFingerprintcover,
}

func runFingerprintcover(pass *analysis.Pass) (interface{}, error) {
	prog, _ := pass.Facts.(*dataflow.Program)
	if prog == nil {
		return nil, nil
	}
	tn, ok := pass.Pkg.Scope().Lookup("Config").(*types.TypeName)
	if !ok {
		return nil, nil
	}
	named, ok := types.Unalias(tn.Type()).(*types.Named)
	if !ok {
		return nil, nil
	}
	fields := structFieldsOf(named)
	if len(fields) == 0 {
		return nil, nil
	}

	var fps []*dataflow.Func
	for _, f := range prog.FuncsOf(pass.Pkg.Path()) {
		if strings.EqualFold(f.Obj.Name(), "fingerprint") {
			fps = append(fps, f)
		}
	}
	if len(fps) == 0 {
		pass.Reportf(tn.Pos(),
			"package %s declares a Config but no fingerprint function: a checkpoint cannot detect a config mismatch on restore (ErrConfigMismatch can never fire)",
			pass.Pkg.Name())
		return nil, nil
	}

	store := dataflow.FieldFacts(prog)
	covered := map[*types.Var]bool{}
	for _, fp := range fps {
		if sum := dataflow.FieldSummaryOf(store, fp.Obj); sum != nil {
			for fld := range sum.Reads {
				covered[fld] = true
			}
		}
	}

	// Functions reachable only through the fingerprint are part of the
	// fingerprint computation, not the runtime; their reads must not make a
	// field relevant. Reuse the codec-helper closure with the fingerprint
	// playing both roles.
	helpers := codecHelpersOf(prog, fps[0], fps[len(fps)-1])
	for _, fp := range fps {
		helpers[fp] = true
	}

	witness := map[*types.Var]*dataflow.Func{}
	for _, f := range prog.Funcs() {
		if helpers[f] {
			continue
		}
		d := f.DirectFieldAccesses()
		for _, fld := range fields {
			if witness[fld] == nil && d.Reads[fld] {
				witness[fld] = f
			}
		}
	}

	for _, fld := range fields {
		if covered[fld] || snapObsExempt(fld) {
			continue
		}
		if w := witness[fld]; w != nil {
			pass.Reportf(fld.Pos(),
				"config field %s is read on the runtime path (%s) but never folded into %s: a checkpoint taken under a different %s restores cleanly instead of failing with ErrConfigMismatch; fold it in, or //lint:ignore fingerprintcover with why it cannot affect replay",
				fld.Name(), w.Name(), fps[0].Name(), fld.Name())
		}
	}
	return nil, nil
}
