package lintrules_test

import (
	"path/filepath"
	"testing"

	"stochstream/internal/lintrules"
	"stochstream/internal/lintrules/analysistest"
)

func testdata(t *testing.T) string {
	t.Helper()
	abs, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

func TestDetsource(t *testing.T) {
	analysistest.Run(t, testdata(t), lintrules.Detsource, "detsource")
}

func TestMaprange(t *testing.T) {
	analysistest.Run(t, testdata(t), lintrules.Maprange, "maprange")
}

func TestFloateq(t *testing.T) {
	analysistest.Run(t, testdata(t), lintrules.Floateq, "floateq")
}

func TestStepretain(t *testing.T) {
	analysistest.Run(t, testdata(t), lintrules.Stepretain, "stepretain")
}

func TestLocksafe(t *testing.T) {
	analysistest.Run(t, testdata(t), lintrules.Locksafe, "locksafe")
}

// TestScoping pins the suite's package scoping: detsource must cover
// exactly the decision packages, maprange additionally the emission/export
// packages, and the remaining analyzers everything.
func TestScoping(t *testing.T) {
	byName := map[string]lintrules.Rule{}
	for _, r := range lintrules.Rules() {
		byName[r.Analyzer.Name] = r
	}
	if len(byName) != 5 {
		t.Fatalf("expected 5 rules, got %d", len(byName))
	}
	cases := []struct {
		analyzer string
		pkg      string
		want     bool
	}{
		{"detsource", "stochstream/internal/policy", true},
		{"detsource", "stochstream/internal/engine", true},
		{"detsource", "stochstream/internal/checkpoint", true},
		{"detsource", "stochstream/internal/faultinject", true},
		{"detsource", "stochstream/internal/stats", false}, // stats owns the RNGs
		{"detsource", "stochstream/internal/telemetry", false},
		{"maprange", "stochstream/internal/telemetry", true},
		{"maprange", "stochstream/internal/join", true},
		{"maprange", "stochstream/internal/workload", false},
		{"floateq", "stochstream/internal/workload", true},
		{"stepretain", "stochstream", true},
		{"locksafe", "stochstream/cmd/repro", true},
	}
	for _, c := range cases {
		if got := byName[c.analyzer].Applies(c.pkg); got != c.want {
			t.Errorf("%s.Applies(%s) = %v, want %v", c.analyzer, c.pkg, got, c.want)
		}
	}
}
