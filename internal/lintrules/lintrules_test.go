package lintrules_test

import (
	"path/filepath"
	"testing"

	"stochstream/internal/lintrules"
	"stochstream/internal/lintrules/analysistest"
)

func testdata(t *testing.T) string {
	t.Helper()
	abs, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

func TestDettaint(t *testing.T) {
	analysistest.Run(t, testdata(t), lintrules.Dettaint, "dettaint")
}

func TestMaprange(t *testing.T) {
	analysistest.Run(t, testdata(t), lintrules.Maprange, "maprange")
}

func TestFloateq(t *testing.T) {
	analysistest.Run(t, testdata(t), lintrules.Floateq, "floateq")
}

func TestStepretain(t *testing.T) {
	analysistest.Run(t, testdata(t), lintrules.Stepretain, "stepretain")
}

func TestStepescape(t *testing.T) {
	analysistest.Run(t, testdata(t), lintrules.Stepescape, "stepescape")
}

func TestLocksafe(t *testing.T) {
	analysistest.Run(t, testdata(t), lintrules.Locksafe, "locksafe")
}

func TestScorepure(t *testing.T) {
	analysistest.Run(t, testdata(t), lintrules.Scorepure, "scorepure")
}

func TestErrdiscipline(t *testing.T) {
	analysistest.Run(t, testdata(t), lintrules.Errdiscipline, "errdiscipline")
}

func TestGoleak(t *testing.T) {
	analysistest.Run(t, testdata(t), lintrules.Goleak, "goleak")
}

func TestChandiscipline(t *testing.T) {
	analysistest.Run(t, testdata(t), lintrules.Chandiscipline, "chandiscipline")
}

func TestAtomicfield(t *testing.T) {
	analysistest.Run(t, testdata(t), lintrules.Atomicfield, "atomicfield")
}

func TestMergedet(t *testing.T) {
	analysistest.Run(t, testdata(t), lintrules.Mergedet, "mergedet")
}

// TestStaleignore runs the whole suite plus the suppression audit over the
// staleignore corpus: live directives stay silent, stale and misnamed ones
// report under the "staleignore" pseudo-analyzer.
func TestStaleignore(t *testing.T) {
	analysistest.RunSuite(t, testdata(t), lintrules.Analyzers(), "staleignore", true)
}

// TestScoping pins the suite's package scoping: dettaint and errdiscipline
// cover exactly the decision packages, maprange additionally the
// emission/export packages, scorepure only the policy package, the state
// contracts (snapcomplete, fingerprintcover, wirexhaustive) their own
// serialization/protocol packages, and the remaining analyzers everything.
func TestScoping(t *testing.T) {
	byName := map[string]lintrules.Rule{}
	for _, r := range lintrules.Rules() {
		byName[r.Analyzer.Name] = r
	}
	if len(byName) != 15 {
		t.Fatalf("expected 15 rules, got %d", len(byName))
	}
	cases := []struct {
		analyzer string
		pkg      string
		want     bool
	}{
		{"dettaint", "stochstream/internal/policy", true},
		{"dettaint", "stochstream/internal/engine", true},
		{"dettaint", "stochstream/internal/checkpoint", true},
		{"dettaint", "stochstream/internal/faultinject", true},
		{"dettaint", "stochstream/internal/flightrec", true},
		{"dettaint", "stochstream/internal/shardrt", true},
		{"errdiscipline", "stochstream/internal/shardrt", true},
		{"maprange", "stochstream/internal/shardrt", true},
		{"stepretain", "stochstream/internal/shardrt", true},
		{"locksafe", "stochstream/internal/shardrt", true},
		{"scorepure", "stochstream/internal/shardrt", false},
		{"errdiscipline", "stochstream/internal/flightrec", true},
		{"maprange", "stochstream/internal/flightrec", true},
		{"dettaint", "stochstream/internal/stats", false}, // stats owns the RNGs
		{"dettaint", "stochstream/internal/telemetry", false},
		{"errdiscipline", "stochstream/internal/engine", true},
		{"errdiscipline", "stochstream/internal/mincostflow", true},
		{"errdiscipline", "stochstream/internal/telemetry", false},
		{"scorepure", "stochstream/internal/policy", true},
		{"scorepure", "stochstream/internal/engine", false},
		{"maprange", "stochstream/internal/telemetry", true},
		{"maprange", "stochstream/internal/join", true},
		{"maprange", "stochstream/internal/workload", false},
		{"floateq", "stochstream/internal/workload", true},
		{"stepretain", "stochstream", true},
		{"stepescape", "stochstream/internal/cachepolicy", true},
		{"locksafe", "stochstream/cmd/repro", true},
		{"goleak", "stochstream/internal/shardrt", true},
		{"goleak", "stochstream/internal/telemetry", true},
		{"goleak", "stochstream/internal/join", true},
		{"goleak", "stochstream/internal/workload", false},
		{"chandiscipline", "stochstream/internal/shardrt", true},
		{"chandiscipline", "stochstream/internal/engine", true},
		{"chandiscipline", "stochstream/internal/telemetry", false},
		{"atomicfield", "stochstream/internal/telemetry", true},
		{"atomicfield", "stochstream/internal/shardrt", true},
		{"atomicfield", "stochstream/internal/stats", false},
		{"mergedet", "stochstream/internal/shardrt", true},
		{"mergedet", "stochstream/internal/engine", false},
		{"snapcomplete", "stochstream/internal/engine", true},
		{"snapcomplete", "stochstream/internal/shardrt", true},
		{"snapcomplete", "stochstream/internal/stats", true},
		{"snapcomplete", "stochstream/internal/telemetry", false},
		{"fingerprintcover", "stochstream/internal/engine", true},
		{"fingerprintcover", "stochstream/internal/shardrt", true},
		{"fingerprintcover", "stochstream/internal/policy", false},
		{"wirexhaustive", "stochstream/internal/streamd", true},
		{"wirexhaustive", "stochstream/internal/streamd/wire", true},
		{"wirexhaustive", "stochstream/internal/streamd/client", true},
		{"wirexhaustive", "stochstream/internal/engine", false},
	}
	for _, c := range cases {
		if got := byName[c.analyzer].Applies(c.pkg); got != c.want {
			t.Errorf("%s.Applies(%s) = %v, want %v", c.analyzer, c.pkg, got, c.want)
		}
	}
}
