package lintrules

import (
	"bytes"
	"go/ast"
	"go/constant"
	"go/printer"
	"go/token"
	"go/types"

	"stochstream/internal/lintrules/analysis"
)

// Floateq flags == and != between floating-point (or complex) operands in
// non-test code. The scoring kernels are required to be bitwise-equal
// across the direct and cached paths — that equivalence is asserted by
// dedicated _test.go harnesses, which are outside this analyzer's load set
// by construction. Everywhere else, exact float comparison is almost always
// a latent tolerance bug.
//
// Two idioms are exempt:
//
//   - comparison against an exact constant zero (sentinel/emptiness checks
//     such as `if w == 0`), which is representable and intentional, and
//   - `x != x` / `x == x` on the same expression, the canonical NaN test.
//
// Anything else should use an epsilon helper (math.Abs(a-b) <= eps) or, for
// a reviewed exact comparison, carry //lint:ignore floateq with the reason.
var Floateq = &analysis.Analyzer{
	Name: "floateq",
	Doc:  "flag ==/!= on floating-point operands outside the bitwise-equivalence tests",
	Run:  runFloateq,
}

func runFloateq(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(pass, be.X) || !isFloat(pass, be.Y) {
				return true
			}
			if isExactZero(pass, be.X) || isExactZero(pass, be.Y) {
				return true
			}
			if sameExpr(be.X, be.Y) {
				return true // x != x: the NaN check
			}
			pass.Reportf(be.OpPos, "floating-point %s comparison: use an epsilon comparison (math.Abs(a-b) <= eps), or //lint:ignore floateq with the reason exact equality is intended", be.Op)
			return true
		})
	}
	return nil, nil
}

func isFloat(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.Types[e].Type
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

// isExactZero reports whether e is a compile-time constant equal to ±0.
func isExactZero(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	v := constant.ToFloat(tv.Value)
	return v.Kind() == constant.Float && constant.Sign(v) == 0
}

// sameExpr reports whether two expressions are syntactically identical
// (printed form), the shape of the deliberate NaN self-comparison.
func sameExpr(a, b ast.Expr) bool {
	return exprString(a) == exprString(b)
}

func exprString(e ast.Expr) string {
	var buf bytes.Buffer
	_ = printer.Fprint(&buf, token.NewFileSet(), e)
	return buf.String()
}
