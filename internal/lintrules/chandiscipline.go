package lintrules

import (
	"go/types"

	"stochstream/internal/lintrules/analysis"
	"stochstream/internal/lintrules/dataflow"
)

// Chandiscipline enforces the channel contracts the sharded runtime's
// bounded queues depend on, in decision packages:
//
//   - drain pairing: a send on a channel the function owns (a struct field
//     or a variable, not a parameter) must have a receive or range
//     somewhere in the program — a bounded channel with no drain blocks the
//     coordinator the moment the buffer fills. The pairing looks through
//     helper calls on both sides via dataflow.ChanParamFacts, so a worker
//     that drains inside a helper still counts.
//   - no send-after-close: within a function's CFG, a send must not be
//     reachable after a close of the same channel (send on a closed channel
//     panics). Closes performed by a callee on a forwarded channel count;
//     `defer close(ch)` does not — it runs at function exit, whatever its
//     textual position.
//   - close-by-owner: a channel held in a struct field may only be closed
//     by code in the field's declaring package. Closing another package's
//     queue from outside races its senders; the owner must expose a
//     Close/Stop method instead.
//
// Sends on channel parameters are exempt from drain pairing: the caller
// owns both ends (engine.Run's out channel is the canonical case).
const chandisciplineName = "chandiscipline"

var Chandiscipline = &analysis.Analyzer{
	Name: chandisciplineName,
	Doc:  "bounded-channel sends need a reachable drain; no send-after-close; channel fields close only in their owning package",
	Run:  runChandiscipline,
}

func runChandiscipline(pass *analysis.Pass) (interface{}, error) {
	prog, _ := pass.Facts.(*dataflow.Program)
	if prog == nil {
		return nil, nil // pairing is a whole-program property
	}
	store := dataflow.ChanParamFacts(prog)
	drained := chanRootsWith(prog, store, dataflow.ChanRecv)

	for _, f := range prog.FuncsOf(pass.Pkg.Path()) {
		params := map[types.Object]bool{}
		for _, v := range dataflow.ParamVars(f.Obj) {
			params[v] = true
		}
		ops := effectiveChanOps(f, store)

		// Non-deferred closes, for the in-function ordering check.
		var closes []chanOpSite
		for _, op := range ops {
			if op.Kind == dataflow.ChanClose && !op.Deferred && op.Root.Valid() {
				closes = append(closes, op)
			}
		}

		for _, op := range ops {
			switch op.Kind {
			case dataflow.ChanSend:
				if !op.Root.Valid() {
					continue
				}
				isParam := op.Root.Obj != nil && params[op.Root.Obj]
				if !isParam && !drained[op.Root] {
					pass.Reportf(op.Pos(), "send on channel %s with no receive or range anywhere in the program: a bounded channel with no drain blocks once the buffer fills; pair every send path with a worker drain and a Flush/Close shutdown", op.Root.Name())
					continue
				}
				for _, cl := range closes {
					if cl.Root != op.Root {
						continue
					}
					clSite, ok1 := f.CFG().SiteOf(cl.Node)
					opSite, ok2 := f.CFG().SiteOf(op.Node)
					if ok1 && ok2 && f.CFG().ReachableAfter(clSite, opSite) {
						via := ""
						if cl.via != nil {
							via = " (closed via " + funcDisplayName(cl.via) + ")"
						}
						pass.Reportf(op.Pos(), "send on %s is reachable after close(%s)%s: sending on a closed channel panics; close only after every sender has stopped", op.Root.Name(), op.Root.Name(), via)
						break
					}
				}
			case dataflow.ChanClose:
				// Ownership applies to direct closes of field channels; a
				// projected close already reports (or is legal) inside the
				// helper that performs it.
				if op.via != nil || op.Root.Field == nil {
					continue
				}
				owner := op.Root.Field.Pkg()
				if owner != nil && owner.Path() != f.Pkg.Path {
					pass.Reportf(op.Pos(), "close of channel field %s owned by package %s: only the owning package's shutdown path may close its queues (closing from outside races the owner's senders); expose a Close/Stop method instead", op.Root.Name(), owner.Path())
				}
			}
		}
	}
	return nil, nil
}
