package lintrules

import (
	"go/ast"
	"go/types"

	"stochstream/internal/lintrules/analysis"
	"stochstream/internal/lintrules/dataflow"
)

// Stepescape extends Stepretain across call boundaries: the slice returned
// by (*engine.Join).Step is valid only until the next Step call, and a
// helper function can smuggle it into persistent storage in two ways the
// syntactic analyzer cannot see:
//
//   - the result is passed as an argument to a function that stores that
//     parameter (directly, or through further calls) into a struct field
//     or package-level variable, or
//   - the result round-trips through a helper whose return value aliases
//     its argument, and the caller stores the returned alias.
//
// The analyzer computes a per-function escape summary — which parameters
// reach persistent storage, and which parameters a return value aliases —
// bottom-up over the call graph, then flags call sites in the checked
// package that feed a Step result into an escaping parameter, and stores
// of call-derived Step aliases. Direct stores without a call in the chain
// stay Stepretain's findings, so each violation reports exactly once.
var Stepescape = &analysis.Analyzer{
	Name: stepescapeName,
	Doc:  "interprocedural escape analysis for engine.Step results (valid-until-next-Step contract through helpers)",
	Run:  runStepescape,
}

const stepescapeName = "stepescape"

// escapeFact summarizes one function: escapes[i] — parameter i (receiver
// first for methods) reaches persistent storage; returns[i] — some return
// value aliases parameter i.
type escapeFact struct {
	escapes []bool
	returns []bool
}

func boolsEq(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func escapeEq(a, b interface{}) bool {
	x, _ := a.(*escapeFact)
	y, _ := b.(*escapeFact)
	if x == nil || y == nil {
		return x == y
	}
	return boolsEq(x.escapes, y.escapes) && boolsEq(x.returns, y.returns)
}

// escapeParams returns a function's parameter objects, receiver first for
// methods — the index space of escapeFact.
func escapeParams(obj *types.Func) []*types.Var {
	sig := obj.Signature()
	var out []*types.Var
	if r := sig.Recv(); r != nil {
		out = append(out, r)
	}
	for i := 0; i < sig.Params().Len(); i++ {
		out = append(out, sig.Params().At(i))
	}
	return out
}

// argIndex maps a call-site argument position to the callee's escapeFact
// index: methods shift by one for the receiver, and variadic overflow maps
// onto the last parameter.
func argIndex(callee *types.Func, arg int) int {
	off := 0
	if callee.Signature().Recv() != nil {
		off = 1
	}
	n := callee.Signature().Params().Len() + off
	i := arg + off
	if i >= n {
		i = n - 1
	}
	return i
}

// paramAliasOf resolves an expression to the parameter it aliases, looking
// through parens, sub-slices, locals in aliases, and calls to helpers whose
// return aliases an argument. Returns -1 when the expression aliases no
// parameter.
func paramAliasOf(info *types.Info, store *dataflow.FactStore, e ast.Expr, aliases map[types.Object]int) int {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return paramAliasOf(info, store, e.X, aliases)
	case *ast.SliceExpr:
		return paramAliasOf(info, store, e.X, aliases)
	case *ast.Ident:
		if obj := identObj(info, e); obj != nil {
			if i, ok := aliases[obj]; ok {
				return i
			}
		}
	case *ast.CallExpr:
		callee := dataflow.CalleeObj(info, e)
		fact, _ := store.Get(callee).(*escapeFact)
		if fact == nil {
			return -1
		}
		for k, arg := range e.Args {
			if pi := paramAliasOf(info, store, arg, aliases); pi >= 0 {
				if j := argIndex(callee, k); j < len(fact.returns) && fact.returns[j] {
					return pi
				}
			}
		}
	}
	return -1
}

// stepescapeFacts computes the whole program's escape summaries.
func stepescapeFacts(prog *dataflow.Program) *dataflow.FactStore {
	transfer := func(f *dataflow.Func, store *dataflow.FactStore) interface{} {
		params := escapeParams(f.Obj)
		fact := &escapeFact{escapes: make([]bool, len(params)), returns: make([]bool, len(params))}
		if len(params) == 0 {
			return fact
		}
		info := f.Pkg.Info

		// Alias set: each reference-typed parameter aliases itself; locals
		// assigned from an alias (or a sub-slice, or an alias-returning call)
		// join it. Value-typed parameters (engine.Tuple, floats, ...) are
		// copies and can never alias the Step buffer. Iterate to a local
		// fixed point — assignments may chain in any order.
		aliases := map[types.Object]int{}
		for i, v := range params {
			if isRefType(v.Type()) {
				aliases[v] = i
			}
		}
		for changed := true; changed; {
			changed = false
			ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
				as, ok := n.(*ast.AssignStmt)
				if !ok || len(as.Lhs) != len(as.Rhs) {
					return true
				}
				for i, rhs := range as.Rhs {
					pi := paramAliasOf(info, store, rhs, aliases)
					if pi < 0 {
						continue
					}
					id, ok := as.Lhs[i].(*ast.Ident)
					if !ok {
						continue
					}
					obj := identObj(info, id)
					if obj == nil || isPackageLevel(obj) {
						continue
					}
					if _, seen := aliases[obj]; !seen {
						aliases[obj] = pi
						changed = true
					}
				}
				return true
			})
		}

		// Effects: persistent stores, composite-literal captures, and
		// forwarding to a callee parameter that itself escapes. A reasoned
		// //lint:ignore stepescape on the effect line kills the escape for
		// every caller.
		suppressed := func(n ast.Node) bool {
			return prog.Sup.Suppresses(stepescapeName, prog.Fset.Position(n.Pos()))
		}
		ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for i, rhs := range n.Rhs {
					if pi := paramAliasOf(info, store, rhs, aliases); pi >= 0 &&
						isPersistentLvalue(info, n.Lhs[i]) && !suppressed(n) {
						fact.escapes[pi] = true
					}
				}
			case *ast.CompositeLit:
				for _, el := range n.Elts {
					v := el
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						v = kv.Value
					}
					if pi := paramAliasOf(info, store, v, aliases); pi >= 0 && !suppressed(v) {
						fact.escapes[pi] = true
					}
				}
			case *ast.CallExpr:
				callee := dataflow.CalleeObj(info, n)
				cf, _ := store.Get(callee).(*escapeFact)
				if cf == nil {
					return true
				}
				for k, arg := range n.Args {
					pi := paramAliasOf(info, store, arg, aliases)
					if pi < 0 {
						continue
					}
					if j := argIndex(callee, k); j < len(cf.escapes) && cf.escapes[j] && !suppressed(arg) {
						fact.escapes[pi] = true
					}
				}
				// A method receiver that aliases a parameter escapes through
				// an escaping receiver the same way.
				if sel, ok := unparenExpr(n.Fun).(*ast.SelectorExpr); ok && callee.Signature().Recv() != nil {
					if pi := paramAliasOf(info, store, sel.X, aliases); pi >= 0 && len(cf.escapes) > 0 && cf.escapes[0] && !suppressed(sel.X) {
						fact.escapes[pi] = true
					}
				}
			}
			return true
		})

		// Return aliasing: only the function's own return statements count,
		// so nested function literals are skipped.
		skipFuncLits(f.Decl.Body, func(n ast.Node) {
			ret, ok := n.(*ast.ReturnStmt)
			if !ok {
				return
			}
			for _, res := range ret.Results {
				if pi := paramAliasOf(info, store, res, aliases); pi >= 0 {
					fact.returns[pi] = true
				}
			}
		})
		return fact
	}
	return prog.Facts(stepescapeName, transfer, escapeEq)
}

// skipFuncLits walks the statements under root, visiting every node except
// the bodies of nested function literals.
func skipFuncLits(root ast.Node, visit func(ast.Node)) {
	ast.Inspect(root, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

func unparenExpr(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

func runStepescape(pass *analysis.Pass) (interface{}, error) {
	prog, _ := pass.Facts.(*dataflow.Program)
	if prog == nil {
		return nil, nil // the intraprocedural cases are Stepretain's
	}
	store := stepescapeFacts(prog)
	for _, f := range prog.FuncsOf(pass.Pkg.Path()) {
		checkStepescapeFunc(pass, store, f)
	}
	return nil, nil
}

// stepAlias classifies expressions in one checked function: direct — the
// expression is a Step result or a sub-slice/local copy of one (Stepretain's
// territory for stores); viaCall — the aliasing chain passes through a
// helper call, which only this analyzer can see.
type stepAlias struct {
	direct  map[types.Object]bool
	derived map[types.Object]bool
	info    *types.Info
	store   *dataflow.FactStore
}

// classify resolves e to (isStepAlias, viaCall).
func (sa *stepAlias) classify(e ast.Expr) (bool, bool) {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return sa.classify(e.X)
	case *ast.SliceExpr:
		return sa.classify(e.X)
	case *ast.Ident:
		obj := identObj(sa.info, e)
		if obj == nil {
			return false, false
		}
		if sa.derived[obj] {
			return true, true
		}
		return sa.direct[obj], false
	case *ast.CallExpr:
		if isStepCall(sa.info, e) {
			return true, false
		}
		callee := dataflow.CalleeObj(sa.info, e)
		fact, _ := sa.store.Get(callee).(*escapeFact)
		if fact == nil {
			return false, false
		}
		for k, arg := range e.Args {
			if is, _ := sa.classify(arg); is {
				if j := argIndex(callee, k); j < len(fact.returns) && fact.returns[j] {
					return true, true
				}
			}
		}
	}
	return false, false
}

// funcDisplayName renders obj like dataflow.Func.Name does —
// "pkg.(*T).method" or "pkg.Func" — so messages about callees resolved only
// through go/types read the same as those built from dataflow summaries.
func funcDisplayName(obj *types.Func) string {
	pkg := "?"
	if obj.Pkg() != nil {
		pkg = obj.Pkg().Name()
	}
	recv := obj.Signature().Recv()
	if recv == nil {
		return pkg + "." + obj.Name()
	}
	t := recv.Type()
	ptr := ""
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
		ptr = "*"
	}
	name := "?"
	if n, ok := types.Unalias(t).(*types.Named); ok {
		name = n.Obj().Name()
	}
	if ptr != "" {
		return pkg + ".(" + ptr + name + ")." + obj.Name()
	}
	return pkg + "." + name + "." + obj.Name()
}

func checkStepescapeFunc(pass *analysis.Pass, store *dataflow.FactStore, f *dataflow.Func) {
	info := pass.TypesInfo
	sa := &stepAlias{direct: map[types.Object]bool{}, derived: map[types.Object]bool{}, info: info, store: store}

	// Local fixed point over assignments: a local can become a Step alias
	// through a chain of copies and helper round-trips in any source order.
	for changed := true; changed; {
		changed = false
		ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, rhs := range as.Rhs {
				is, via := sa.classify(rhs)
				if !is {
					continue
				}
				id, ok := as.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				obj := identObj(info, id)
				if obj == nil || isPackageLevel(obj) {
					continue
				}
				set := sa.direct
				if via {
					set = sa.derived
				}
				if !set[obj] {
					set[obj] = true
					changed = true
				}
			}
			return true
		})
	}

	ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				is, via := sa.classify(rhs)
				// Stores of purely direct aliases are Stepretain findings;
				// report only chains that pass through a call.
				if is && via && isPersistentLvalue(info, n.Lhs[i]) {
					pass.Reportf(rhs.Pos(), "engine.Step result retained beyond the step through a helper call: the returned slice aliases the Step buffer, which the next Step call reuses; copy the pairs before storing them")
				}
			}
		case *ast.CallExpr:
			callee := dataflow.CalleeObj(info, n)
			fact, _ := store.Get(callee).(*escapeFact)
			if fact == nil {
				return true
			}
			for k, arg := range n.Args {
				is, _ := sa.classify(arg)
				if !is {
					continue
				}
				if j := argIndex(callee, k); j < len(fact.escapes) && fact.escapes[j] {
					name := "argument"
					if params := escapeParams(callee); j < len(params) {
						name = "parameter " + params[j].Name()
					}
					pass.Reportf(arg.Pos(), "engine.Step result passed to %s, which stores %s beyond the step; the slice is valid only until the next Step call — copy the pairs before handing them off", funcDisplayName(callee), name)
				}
			}
		}
		return true
	})
}
