package lintrules

import (
	"go/ast"
	"go/types"

	"stochstream/internal/lintrules/analysis"
)

// telemetryPath is the package whose handle types Locksafe guards.
const telemetryPath = "stochstream/internal/telemetry"

// telemetryHandleTypes are the types that must be obtained through their
// constructors (NewRegistry, Registry.Counter/Gauge/Histogram,
// NewHistogram, NewDecisionTrace): literal or zero-value construction
// bypasses registration, so the metric silently never exports, and a copied
// handle splits the counter state.
var telemetryHandleTypes = map[string]bool{
	"Counter":       true,
	"Gauge":         true,
	"Histogram":     true,
	"Registry":      true,
	"DecisionTrace": true,
}

// Locksafe flags copies of lock-bearing values and out-of-band construction
// of telemetry handle types.
//
// A type "bears a lock" when it is, or transitively contains (struct field
// or array element), one of sync.{Mutex,RWMutex,WaitGroup,Once,Cond} or a
// sync/atomic value type. Copying such a value forks its state: the copy's
// lock guards nothing, and a copied atomic counter silently splits its
// count — exactly the failure mode that would corrupt the telemetry layer's
// registry and the engine's instrumented counters. Flagged copy sites:
// assignments from an existing value, by-value parameters, receivers and
// results in function signatures, by-value call arguments, range value
// variables, and return statements.
var Locksafe = &analysis.Analyzer{
	Name: "locksafe",
	Doc:  "flag copies of mutex/atomic-bearing values and literal construction of telemetry handles",
	Run:  runLocksafe,
}

func runLocksafe(pass *analysis.Pass) (interface{}, error) {
	lc := &lockChecker{pass: pass, memo: map[types.Type]bool{}}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				lc.checkSignature(n.Recv)
				lc.checkSignature(n.Type.Params)
				lc.checkSignature(n.Type.Results)
			case *ast.FuncLit:
				lc.checkSignature(n.Type.Params)
				lc.checkSignature(n.Type.Results)
			case *ast.AssignStmt:
				for _, rhs := range n.Rhs {
					lc.checkCopy(rhs, "assignment copies")
				}
			case *ast.CallExpr:
				for _, arg := range n.Args {
					lc.checkCopy(arg, "call copies")
				}
			case *ast.RangeStmt:
				if n.Value != nil {
					if t := lc.exprType(n.Value); t != nil && lc.containsLock(t) {
						pass.Reportf(n.Value.Pos(), "range value copies %s: lock/atomic-bearing values must not be copied; range over indices or pointers", typeName(t))
					}
				}
			case *ast.ReturnStmt:
				for _, res := range n.Results {
					lc.checkCopy(res, "return copies")
				}
			case *ast.CompositeLit:
				lc.checkTelemetryLiteral(n)
			case *ast.ValueSpec:
				lc.checkTelemetryZeroValue(n)
			}
			return true
		})
	}
	return nil, nil
}

type lockChecker struct {
	pass *analysis.Pass
	memo map[types.Type]bool
}

// exprType resolves an expression's type, falling back to the defined
// object for idents that only appear in Defs (e.g. range variables).
func (lc *lockChecker) exprType(e ast.Expr) types.Type {
	if t := lc.pass.TypesInfo.Types[e].Type; t != nil {
		return t
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := lc.pass.TypesInfo.Defs[id]; obj != nil {
			return obj.Type()
		}
		if obj := lc.pass.TypesInfo.Uses[id]; obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// checkCopy flags e when it denotes an existing lock-bearing value being
// copied. Fresh values — composite literals, conversions, call results —
// are construction, not copying, and taking an address is not a copy.
func (lc *lockChecker) checkCopy(e ast.Expr, what string) {
	switch e.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
	default:
		return
	}
	t := lc.pass.TypesInfo.Types[e].Type
	if t == nil || !lc.containsLock(t) {
		return
	}
	lc.pass.Reportf(e.Pos(), "%s %s by value: the copy's lock/atomic state is forked from the original; pass a pointer", what, typeName(t))
}

// checkSignature flags by-value lock-bearing parameters, receivers and
// results in function signatures.
func (lc *lockChecker) checkSignature(fl *ast.FieldList) {
	if fl == nil {
		return
	}
	for _, field := range fl.List {
		t := lc.pass.TypesInfo.Types[field.Type].Type
		if t == nil {
			continue
		}
		if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
			continue
		}
		if lc.containsLock(t) {
			lc.pass.Reportf(field.Type.Pos(), "signature passes %s by value: the callee operates on a forked lock/atomic copy; use *%s", typeName(t), typeName(t))
		}
	}
}

// containsLock reports whether t is or transitively contains a
// lock-bearing type.
func (lc *lockChecker) containsLock(t types.Type) bool {
	if v, ok := lc.memo[t]; ok {
		return v
	}
	lc.memo[t] = false // breaks recursive types
	v := lc.containsLockUncached(t)
	lc.memo[t] = v
	return v
}

func (lc *lockChecker) containsLockUncached(t types.Type) bool {
	switch t := types.Unalias(t).(type) {
	case *types.Named:
		if isLockType(t) {
			return true
		}
		return lc.containsLock(t.Underlying())
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if lc.containsLock(t.Field(i).Type()) {
				return true
			}
		}
	case *types.Array:
		return lc.containsLock(t.Elem())
	}
	return false
}

var syncLockTypes = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true, "Once": true, "Cond": true,
}

var atomicValueTypes = map[string]bool{
	"Bool": true, "Int32": true, "Int64": true, "Uint32": true, "Uint64": true,
	"Uintptr": true, "Pointer": true, "Value": true,
}

func isLockType(n *types.Named) bool {
	obj := n.Obj()
	if obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() {
	case "sync":
		return syncLockTypes[obj.Name()]
	case "sync/atomic":
		return atomicValueTypes[obj.Name()]
	}
	return false
}

func typeName(t types.Type) string {
	if n, ok := types.Unalias(t).(*types.Named); ok {
		if pkg := n.Obj().Pkg(); pkg != nil {
			return pkg.Name() + "." + n.Obj().Name()
		}
		return n.Obj().Name()
	}
	return t.String()
}

// checkTelemetryLiteral flags composite literals of telemetry handle types
// outside the telemetry package itself.
func (lc *lockChecker) checkTelemetryLiteral(cl *ast.CompositeLit) {
	if lc.pass.Pkg.Path() == telemetryPath {
		return
	}
	t := lc.pass.TypesInfo.Types[cl].Type
	if name, ok := telemetryHandle(t); ok {
		lc.pass.Reportf(cl.Pos(), "telemetry.%s constructed by literal: handles must come from the registry constructors (Registry.%s / New%s) or the metric never registers for export", name, name, name)
	}
}

// checkTelemetryZeroValue flags `var x telemetry.Counter`-style zero-value
// declarations outside the telemetry package.
func (lc *lockChecker) checkTelemetryZeroValue(vs *ast.ValueSpec) {
	if lc.pass.Pkg.Path() == telemetryPath || vs.Type == nil {
		return
	}
	t := lc.pass.TypesInfo.Types[vs.Type].Type
	if name, ok := telemetryHandle(t); ok {
		lc.pass.Reportf(vs.Type.Pos(), "zero-value telemetry.%s declared: handles must come from the registry constructors (Registry.%s / New%s) or the metric never registers for export", name, name, name)
	}
}

// telemetryHandle reports whether t is a telemetry handle value type (not a
// pointer to one — pointers are how handles circulate).
func telemetryHandle(t types.Type) (string, bool) {
	if t == nil {
		return "", false
	}
	n, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return "", false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != telemetryPath || !telemetryHandleTypes[obj.Name()] {
		return "", false
	}
	return obj.Name(), true
}
