package lintrules

import (
	"go/ast"
	"go/token"
	"go/types"

	"stochstream/internal/lintrules/analysis"
	"stochstream/internal/lintrules/dataflow"
)

// Goleak requires every goroutine spawned in emission-scoped packages to
// have a proven termination path. The sharded runtime's replay guarantee
// assumes workers are quiescent between dispatches and gone after Close; a
// leaked worker keeps a shard engine alive past the runtime's lifetime and
// turns the next chaos or checkpoint run nondeterministic.
//
// For each `go` statement the analyzer resolves the goroutine body (a
// function literal, or the statically resolved callee — across package
// boundaries) and proves one of:
//
//   - structural termination: every loop in the body is bounded (has a
//     condition or ranges over a finite collection);
//   - channel-closed: a `for range ch` worker's channel is closed somewhere
//     in the program — directly, or by a helper that closes its channel
//     parameter (via dataflow.ChanParamFacts), with spawn-site arguments
//     substituted into the spawned function's parameters;
//   - an exit inside an unconditional loop: a return, a break that targets
//     the loop, or a context cancellation receive (<-ctx.Done());
//   - WaitGroup-waited: the body calls Done on a WaitGroup some reachable
//     code Waits on — the author's explicit termination claim, which the
//     race-detected suites then exercise dynamically.
//
// A goroutine that blocks on a channel nothing ever sends on or closes, or
// that runs a (*net/http.Server).Serve loop whose shutdown the analysis
// cannot see, is reported at the spawn site. The Serve case has its own
// termination evidence — "managed serve": when the server value the
// goroutine serves on is also the receiver of a Shutdown or Close call
// somewhere in the program (the internal/httpd lifecycle), the analyzer
// accepts the spawn, exactly as a channel close proves a range worker.
// A bare spawn whose server nothing visibly stops still reports; when the
// shutdown genuinely lives outside the module, say so in a
// //lint:ignore goleak reason.
const goleakName = "goleak"

var Goleak = &analysis.Analyzer{
	Name: goleakName,
	Doc:  "every spawned goroutine needs a proven termination path (closed channel, context, exit, or waited WaitGroup)",
	Run:  runGoleak,
}

// serveMethods are the net/http.Server methods that block until shutdown.
var serveMethods = map[string]bool{
	"Serve": true, "ServeTLS": true, "ListenAndServe": true, "ListenAndServeTLS": true,
}

func isServeMethod(fn *types.Func) bool {
	if fn == nil || !serveMethods[fn.Name()] {
		return false
	}
	recv := fn.Signature().Recv()
	return recv != nil && isNamedType(recv.Type(), "net/http", "Server")
}

// shutdownMethods are the net/http.Server methods that stop a Serve loop.
var shutdownMethods = map[string]bool{"Shutdown": true, "Close": true}

// httpServerCall matches a method call on a net/http.Server value and
// returns the receiver's root and the method name.
func httpServerCall(info *types.Info, call *ast.CallExpr) (dataflow.Root, string, bool) {
	sel, ok := unparenExpr(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return dataflow.Root{}, "", false
	}
	s := info.Selections[sel]
	if s == nil || s.Kind() != types.MethodVal {
		return dataflow.Root{}, "", false
	}
	fn, ok := s.Obj().(*types.Func)
	if !ok {
		return dataflow.Root{}, "", false
	}
	recv := fn.Signature().Recv()
	if recv == nil || !isNamedType(recv.Type(), "net/http", "Server") {
		return dataflow.Root{}, "", false
	}
	return dataflow.RootOf(info, sel.X), sel.Sel.Name, true
}

// serverShutdownRoots returns every http.Server root the program calls
// Shutdown or Close on — the managed-serve termination evidence. Field
// roots are shared across instances, matching the lifecycle-struct idiom
// (internal/httpd.Server.srv); local and parameter roots only pair with
// shutdowns in their own function, the same visibility a local channel has.
func serverShutdownRoots(prog *dataflow.Program) map[dataflow.Root]bool {
	out := map[dataflow.Root]bool{}
	for _, f := range prog.Funcs() {
		ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if root, m, ok := httpServerCall(f.Pkg.Info, call); ok && shutdownMethods[m] && root.Valid() {
					out[root] = true
				}
			}
			return true
		})
	}
	return out
}

// serveRecvRoot resolves the receiver root of a Serve-method call for the
// managed-serve check.
func serveRecvRoot(info *types.Info, call *ast.CallExpr) dataflow.Root {
	if sel, ok := unparenExpr(call.Fun).(*ast.SelectorExpr); ok {
		return dataflow.RootOf(info, sel.X)
	}
	return dataflow.Root{}
}

func runGoleak(pass *analysis.Pass) (interface{}, error) {
	prog, _ := pass.Facts.(*dataflow.Program)
	if prog == nil {
		return nil, nil // spawn-site proofs need whole-program context
	}
	store := dataflow.ChanParamFacts(prog)
	closed := chanRootsWith(prog, store, dataflow.ChanClose)
	sent := chanRootsWith(prog, store, dataflow.ChanSend)
	waited := waitGroupRoots(prog, "Wait")
	stopped := serverShutdownRoots(prog)
	for _, f := range prog.FuncsOf(pass.Pkg.Path()) {
		for _, sp := range f.Conc().Spawns {
			checkSpawn(pass, prog, f, sp, closed, sent, waited, stopped)
		}
	}
	return nil, nil
}

func checkSpawn(pass *analysis.Pass, prog *dataflow.Program, f *dataflow.Func, sp dataflow.SpawnSite,
	closed, sent, waited, stopped map[dataflow.Root]bool) {
	siteInfo := f.Pkg.Info
	bodyInfo := siteInfo
	var body *ast.BlockStmt
	// subst maps the spawned function's parameters to the spawn-site
	// arguments' roots, so `go worker(jobs)` proves termination against the
	// caller's jobs channel, not the callee's opaque parameter.
	subst := map[types.Object]dataflow.Root{}
	switch {
	case sp.Lit != nil:
		body = sp.Lit.Body
	case sp.Callee != nil:
		callee := prog.FuncOf(sp.Callee)
		if callee == nil {
			// External spawn target: the one named contract is the blocking
			// http server loop — accepted when the spawned server's root has
			// a visible Shutdown/Close (managed serve), reported otherwise.
			if isServeMethod(sp.Callee) && !stopped[serveRecvRoot(siteInfo, sp.Stmt.Call)] {
				reportServe(pass, sp.Stmt.Pos(), sp.Callee.Name())
			}
			return
		}
		body = callee.Decl.Body
		bodyInfo = callee.Pkg.Info
		params := dataflow.ParamVars(sp.Callee)
		if recv := sp.Callee.Signature().Recv(); recv != nil {
			if sel, ok := unparenExpr(sp.Stmt.Call.Fun).(*ast.SelectorExpr); ok {
				if r := dataflow.RootOf(siteInfo, sel.X); r.Valid() {
					subst[params[0]] = r
				}
			}
		}
		for k, arg := range sp.Stmt.Call.Args {
			j := dataflow.ArgParamIndex(sp.Callee, k)
			if j < len(params) {
				if r := dataflow.RootOf(siteInfo, arg); r.Valid() {
					subst[params[j]] = r
				}
			}
		}
	default:
		return // dynamic spawn (function value): no body to reason about
	}

	resolve := func(r dataflow.Root) dataflow.Root {
		if r.Obj != nil {
			if s, ok := subst[r.Obj]; ok {
				return s
			}
		}
		return r
	}

	// WaitGroup evidence: the body Dones a WaitGroup that reachable code
	// Waits on — accepted as the author's termination claim for loops the
	// structural checks cannot bound.
	wgCovered := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if root, m, ok := waitGroupCall(bodyInfo, call); ok && m == "Done" && waited[resolve(root)] {
				wgCovered = true
			}
		}
		return true
	})

	reported := false
	report := func(pos token.Pos, format string, args ...interface{}) {
		if !reported {
			reported = true
			pass.Reportf(pos, format, args...)
		}
	}

	// Receives that are select communication clauses are exempt from the
	// blocked-forever check: the select exits through whichever case is
	// live, and flagging each dead alternative would over-report.
	selectRecv := map[ast.Node]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, cl := range sel.Body.List {
			if comm, ok := cl.(*ast.CommClause); ok && comm.Comm != nil {
				ast.Inspect(comm.Comm, func(m ast.Node) bool {
					if u, ok := m.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
						selectRecv[u] = true
					}
					return true
				})
			}
		}
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		if reported {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if fn := dataflow.CalleeObj(bodyInfo, n); isServeMethod(fn) {
				if !stopped[resolve(serveRecvRoot(bodyInfo, n))] {
					reportServe(pass, sp.Stmt.Pos(), fn.Name())
					reported = true
				}
			}
		case *ast.RangeStmt:
			tv, ok := bodyInfo.Types[n.X]
			if !ok {
				return true
			}
			if _, isChan := tv.Type.Underlying().(*types.Chan); !isChan {
				return true
			}
			root := resolve(dataflow.RootOf(bodyInfo, n.X))
			if !root.Valid() {
				return true // cannot name the channel: stay silent
			}
			if !closed[root] {
				report(sp.Stmt.Pos(), "goroutine ranges over channel %s that nothing in the program closes: the worker never exits; close it on the shutdown path (WaitGroup-wait it there if senders must drain first)", root.Name())
			}
		case *ast.ForStmt:
			if n.Cond != nil {
				return true // bounded (or at least condition-gated) loop
			}
			if !loopHasExit(bodyInfo, n) && !wgCovered {
				report(sp.Stmt.Pos(), "goroutine loops forever with no termination path: no return or loop-breaking exit, no context cancellation, and no WaitGroup the program waits on; give the loop a shutdown signal (ctx.Done or a closed quit channel)")
			}
		case *ast.UnaryExpr:
			if n.Op != token.ARROW || isCtxDoneRecv(bodyInfo, n) || selectRecv[n] {
				return true
			}
			root := resolve(dataflow.RootOf(bodyInfo, n.X))
			if !root.Valid() {
				return true
			}
			if !closed[root] && !sent[root] {
				report(sp.Stmt.Pos(), "goroutine blocks receiving from channel %s, but nothing in the program sends on or closes it: the goroutine can never exit; close the channel on the shutdown path", root.Name())
			}
		}
		return true
	})
}

func reportServe(pass *analysis.Pass, pos token.Pos, method string) {
	pass.Reportf(pos, "goroutine runs (*http.Server).%s, which blocks until the server shuts down, and no shutdown path is visible to the analysis: call Shutdown/Close on the same server value from the owner's stop path (the internal/httpd managed lifecycle), or //lint:ignore goleak with the reason the shutdown lives outside the module", method)
}

// loopHasExit reports whether an unconditional `for { ... }` loop has a
// path out of the goroutine: a return, a break that targets this loop
// (plain break at nesting depth zero, or any labeled break), or a context
// cancellation receive. Nested function literals are skipped — their
// returns do not exit the goroutine.
func loopHasExit(info *types.Info, loop *ast.ForStmt) bool {
	exit := false
	var scan func(n ast.Node, depth int)
	scan = func(n ast.Node, depth int) {
		ast.Inspect(n, func(m ast.Node) bool {
			if exit || m == nil {
				return false
			}
			if m == n {
				return true
			}
			switch s := m.(type) {
			case *ast.FuncLit:
				return false
			case *ast.ReturnStmt:
				exit = true
				return false
			case *ast.BranchStmt:
				if s.Tok == token.BREAK && (s.Label != nil || depth == 0) {
					exit = true
				}
				return false
			case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
				// A plain break below binds to this construct, not our loop.
				scan(s, depth+1)
				return false
			case *ast.UnaryExpr:
				if s.Op == token.ARROW && isCtxDoneRecv(info, s) {
					exit = true
					return false
				}
			}
			return true
		})
	}
	scan(loop.Body, 0)
	return exit
}
