// Package analysistest runs one analyzer over a corpus package under a
// testdata/src tree and checks its findings against `// want` expectations,
// mirroring golang.org/x/tools/go/analysis/analysistest for the offline
// framework in internal/lintrules/analysis.
//
// Corpus layout follows the x/tools GOPATH convention: the package named by
// pkgPath lives at <testdata>/src/<pkgPath>, and corpora may fake module
// packages (e.g. a stub stochstream/internal/engine) by placing them under
// the same tree — the loader resolves overlay packages before anything
// else, and the standard library resolves normally.
//
// Expectations are comments of the form
//
//	code() // want "substring-regexp"
//	code() // want "first" "second"
//
// Each finding on a line must match one expectation on that line and vice
// versa; mismatches in either direction fail the test.
package analysistest

import (
	"regexp"
	"testing"

	"stochstream/internal/lintrules/analysis"
	"stochstream/internal/lintrules/load"
)

var wantRE = regexp.MustCompile(`//\s*want((?:\s+"(?:[^"\\]|\\.)*")+)`)
var quotedRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// Run loads <testdata>/src/<pkgPath>, runs a over it, and reports
// expectation mismatches on t.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPath string) {
	t.Helper()
	loader, err := load.NewLoader("", testdata+"/src")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkg, err := loader.Load(pkgPath)
	if err != nil {
		t.Fatalf("load %s: %v", pkgPath, err)
	}
	if pkg.Files == nil {
		t.Fatalf("load %s: resolved outside the corpus", pkgPath)
	}
	findings, err := analysis.RunAnalyzer(a, pkg.Fset, pkg.Files, pkg.Types, pkg.Info)
	if err != nil {
		t.Fatalf("run %s: %v", a.Name, err)
	}

	type key struct {
		file string
		line int
	}
	wants := map[key][]*regexp.Regexp{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				k := key{pos.Filename, pos.Line}
				for _, q := range quotedRE.FindAllStringSubmatch(m[1], -1) {
					re, err := regexp.Compile(q[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, q[1], err)
					}
					wants[k] = append(wants[k], re)
				}
			}
		}
	}

	for _, f := range findings {
		k := key{f.Pos.Filename, f.Pos.Line}
		if i := matchIndex(wants[k], f.Message); i >= 0 {
			wants[k] = append(wants[k][:i], wants[k][i+1:]...)
			continue
		}
		t.Errorf("unexpected finding: %s", f)
	}
	for k, res := range wants {
		for _, re := range res {
			t.Errorf("%s:%d: expected finding matching %q, got none", k.file, k.line, re)
		}
	}
}

func matchIndex(res []*regexp.Regexp, msg string) int {
	for i, re := range res {
		if re.MatchString(msg) {
			return i
		}
	}
	return -1
}
