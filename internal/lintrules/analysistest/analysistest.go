// Package analysistest runs analyzers over a corpus package under a
// testdata/src tree and checks their findings against `// want`
// expectations, mirroring golang.org/x/tools/go/analysis/analysistest for
// the offline framework in internal/lintrules/analysis.
//
// Corpus layout follows the x/tools GOPATH convention: the package named by
// pkgPath lives at <testdata>/src/<pkgPath>, and corpora may fake module
// packages (e.g. a stub stochstream/internal/engine) by placing them under
// the same tree — the loader resolves overlay packages before anything
// else, and the standard library resolves normally.
//
// Every run builds whole-program context (a dataflow.Program over the
// corpus package and everything it transitively loaded) and a shared
// suppression table, so interprocedural analyzers see exactly what the
// cmd/stochlint driver would show them. Findings suppressed by a reasoned
// //lint:ignore are filtered before matching, like the driver's exit code.
//
// Expectations are comments of the form
//
//	code() // want "substring-regexp"
//	code() // want "first" "second"
//
// Each finding on a line must match one expectation on that line and vice
// versa; mismatches in either direction fail the test.
package analysistest

import (
	"regexp"
	"testing"

	"stochstream/internal/lintrules/analysis"
	"stochstream/internal/lintrules/dataflow"
	"stochstream/internal/lintrules/load"
)

var wantRE = regexp.MustCompile(`//\s*want((?:\s+"(?:[^"\\]|\\.)*")+)`)
var quotedRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// Run loads <testdata>/src/<pkgPath>, runs a over it with whole-program
// context, and reports expectation mismatches on t.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPath string) {
	t.Helper()
	RunSuite(t, testdata, []*analysis.Analyzer{a}, pkgPath, false)
}

// RunSuite runs several analyzers over one corpus package with a shared
// suppression table and whole-program context, optionally followed by the
// stale-suppression audit (findings under the "staleignore" name, scoped to
// the target package's files). Unsuppressed findings are matched against
// the corpus's `// want` expectations.
func RunSuite(t *testing.T, testdata string, as []*analysis.Analyzer, pkgPath string, audit bool) {
	t.Helper()
	loader, err := load.NewLoader("", testdata+"/src")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkg, err := loader.Load(pkgPath)
	if err != nil {
		t.Fatalf("load %s: %v", pkgPath, err)
	}
	if pkg.Files == nil {
		t.Fatalf("load %s: resolved outside the corpus", pkgPath)
	}

	table := analysis.NewSuppressionTable()
	srcPkgs := loader.SourcePackages()
	for _, p := range srcPkgs {
		table.AddFiles(loader.Fset, p.Files)
	}
	prog := dataflow.NewProgram(loader.Fset, srcPkgs, table)

	var findings []analysis.Finding
	for _, a := range as {
		fs, err := analysis.RunAnalyzerWith(a, table, prog, pkg.Fset, pkg.Files, pkg.Types, pkg.Info)
		if err != nil {
			t.Fatalf("run %s: %v", a.Name, err)
		}
		findings = append(findings, fs...)
	}
	if audit {
		known := map[string]bool{}
		for _, a := range as {
			known[a.Name] = true
		}
		targetFiles := map[string]bool{}
		for _, f := range pkg.Files {
			targetFiles[pkg.Fset.Position(f.Pos()).Filename] = true
		}
		findings = append(findings, table.Audit(func(n string) bool { return known[n] }, targetFiles)...)
	}
	analysis.SortFindings(findings)

	type key struct {
		file string
		line int
	}
	wants := map[key][]*regexp.Regexp{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				k := key{pos.Filename, pos.Line}
				for _, q := range quotedRE.FindAllStringSubmatch(m[1], -1) {
					re, err := regexp.Compile(q[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, q[1], err)
					}
					wants[k] = append(wants[k], re)
				}
			}
		}
	}

	for _, f := range findings {
		if f.Suppressed {
			continue
		}
		k := key{f.Pos.Filename, f.Pos.Line}
		if i := matchIndex(wants[k], f.Message); i >= 0 {
			wants[k] = append(wants[k][:i], wants[k][i+1:]...)
			continue
		}
		t.Errorf("unexpected finding: %s", f)
	}
	for k, res := range wants {
		for _, re := range res {
			t.Errorf("%s:%d: expected finding matching %q, got none", k.file, k.line, re)
		}
	}
}

func matchIndex(res []*regexp.Regexp, msg string) int {
	for i, re := range res {
		if re.MatchString(msg) {
			return i
		}
	}
	return -1
}
