package lintrules

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"stochstream/internal/lintrules/analysis"
	"stochstream/internal/lintrules/dataflow"
)

// Scorepure enforces the paper's purity contract on scoring paths: every
// function reachable from a policy's ScoreCandidates method must be a pure
// function of (stream state, seed) — no mutation of operator state (writes
// rooted at the receiver or at package-level variables, deletes from
// receiver maps, sends on shared channels) and no I/O (fmt print family,
// log, os). Writes through non-receiver parameters are allowed: that is
// the out-buffer idiom scoreAll uses, and the caller sees the buffer it
// handed in.
//
// core.ForecastCache is the blessed memoization seam: its methods mutate
// the cache deterministically from stream state, so they are allowlisted
// and never contribute impurity. A reasoned //lint:ignore scorepure on an
// effect (or on a call forwarding one) kills the impurity for every
// transitive caller, exactly like dettaint.
var Scorepure = &analysis.Analyzer{
	Name: scorepureName,
	Doc:  "scoring paths (ScoreCandidates and everything it reaches) must not mutate operator state or perform I/O",
	Run:  runScorepure,
}

const scorepureName = "scorepure"

// scorepurePkgs are the packages whose scoring roots anchor the analysis;
// impurity inside them reports at the effect, impurity beyond them reports
// at the frontier call site.
var scorepurePkgs = []string{
	"stochstream/internal/policy",
}

// forecastCachePath/forecastCacheType identify the allowlisted memoization
// type.
const (
	forecastCachePath = "stochstream/internal/core"
	forecastCacheType = "ForecastCache"
)

// impureFact mirrors taintFact: nil means pure; otherwise what/pos identify
// the root effect and via the callee it arrives through.
type impureFact struct {
	what string
	pos  token.Position
	via  *types.Func
}

func impureEq(a, b interface{}) bool {
	x, _ := a.(*impureFact)
	y, _ := b.(*impureFact)
	if x == nil || y == nil {
		return x == y
	}
	return x.what == y.what && x.pos == y.pos && x.via == y.via
}

// isForecastCacheMethod reports whether obj is a method of the allowlisted
// core.ForecastCache type.
func isForecastCacheMethod(obj *types.Func) bool {
	recv := obj.Signature().Recv()
	if recv == nil {
		return false
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := types.Unalias(t).(*types.Named)
	return ok && n.Obj().Name() == forecastCacheType &&
		n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == forecastCachePath
}

// sideEffect is one direct impurity in a function body.
type sideEffect struct {
	pos  token.Pos
	what string
}

// rootIdent peels selectors, indexes, slices, derefs and parens down to the
// base identifier of an lvalue chain, or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			return x
		default:
			return nil
		}
	}
}

// isRefType reports whether t can alias state reachable from the receiver
// (pointers, maps, slices, channels): value copies of receiver fields are
// local and writable.
func isRefType(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Slice, *types.Chan:
		return true
	}
	return false
}

// directEffects scans one function body for impurities. recvObj is the
// receiver variable (nil for plain functions); locals that alias
// receiver-reachable reference state are tracked so `e := p.inc[id]; e.h = x`
// counts as receiver mutation.
func directEffects(info *types.Info, f *dataflow.Func) []sideEffect {
	body := f.Decl.Body
	recvAliases := map[types.Object]bool{}
	if r := f.Decl.Recv; r != nil && len(r.List) == 1 && len(r.List[0].Names) == 1 {
		if obj := info.Defs[r.List[0].Names[0]]; obj != nil {
			recvAliases[obj] = true
		}
	}
	rooted := func(e ast.Expr) bool {
		id := rootIdent(e)
		if id == nil {
			return false
		}
		obj := identObj(info, id)
		return obj != nil && recvAliases[obj]
	}
	// Alias fixed point: locals assigned reference-typed values rooted at
	// the receiver join the alias set.
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			// Comma-ok map reads (e, ok := p.inc[k]) bind the value to the
			// first LHS only.
			if len(as.Lhs) == 2 && len(as.Rhs) == 1 && rooted(as.Rhs[0]) {
				if id, ok := as.Lhs[0].(*ast.Ident); ok {
					if obj := identObj(info, id); obj != nil && !isPackageLevel(obj) && !recvAliases[obj] && isRefType(obj.Type()) {
						recvAliases[obj] = true
						changed = true
					}
				}
			}
			if len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, rhs := range as.Rhs {
				if !rooted(rhs) {
					continue
				}
				if tv, ok := info.Types[rhs]; !ok || !isRefType(tv.Type) {
					continue
				}
				id, ok := as.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				obj := identObj(info, id)
				if obj != nil && !isPackageLevel(obj) && !recvAliases[obj] {
					recvAliases[obj] = true
					changed = true
				}
			}
			return true
		})
	}

	var out []sideEffect
	lvalue := func(lhs ast.Expr, at token.Pos) {
		id := rootIdent(lhs)
		if id == nil {
			return
		}
		obj := identObj(info, id)
		if obj == nil {
			return
		}
		switch {
		case recvAliases[obj]:
			// Rebinding a local alias (e := p.inc[k]) is not a mutation;
			// only writes through it (e.h = v, e[i] = v, *e = v) are.
			if _, bare := unparenExpr(lhs).(*ast.Ident); bare {
				return
			}
			out = append(out, sideEffect{at, "mutates receiver state (" + types.ExprString(lhs) + ")"})
		case isPackageLevel(obj) && !isPkgName(obj):
			out = append(out, sideEffect{at, "writes package-level state (" + types.ExprString(lhs) + ")"})
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				lvalue(lhs, lhs.Pos())
			}
		case *ast.IncDecStmt:
			lvalue(n.X, n.X.Pos())
		case *ast.SendStmt:
			if id := rootIdent(n.Chan); id != nil {
				if obj := identObj(info, id); obj != nil && (recvAliases[obj] || isPackageLevel(obj) && !isPkgName(obj)) {
					out = append(out, sideEffect{n.Arrow, "sends on shared channel " + types.ExprString(n.Chan)})
				}
			}
		case *ast.CallExpr:
			switch fun := unparenExpr(n.Fun).(type) {
			case *ast.Ident:
				if fun.Name == "delete" && info.Uses[fun] == nil && info.Defs[fun] == nil && len(n.Args) > 0 && rooted(n.Args[0]) {
					out = append(out, sideEffect{n.Pos(), "deletes from receiver map " + types.ExprString(n.Args[0])})
				}
				if (fun.Name == "println" || fun.Name == "print") && info.Uses[fun] == nil && info.Defs[fun] == nil {
					out = append(out, sideEffect{n.Pos(), "performs I/O (builtin " + fun.Name + ")"})
				}
			case *ast.SelectorExpr:
				if id, ok := fun.X.(*ast.Ident); ok {
					if pn, ok := info.Uses[id].(*types.PkgName); ok {
						out = append(out, ioEffects(pn.Imported().Path(), fun, n)...)
					}
				}
			}
		}
		return true
	})
	return out
}

// isPkgName guards rootIdent results like the `pkg` of pkg.Var: the
// PkgName object is package-level by construction but names no state.
func isPkgName(obj types.Object) bool {
	_, ok := obj.(*types.PkgName)
	return ok
}

// ioEffects classifies calls into I/O-performing stdlib packages.
func ioEffects(pkgPath string, fun *ast.SelectorExpr, call *ast.CallExpr) []sideEffect {
	name := fun.Sel.Name
	switch pkgPath {
	case "fmt":
		// Sprint*/Errorf are pure; Print* writes stdout, Fprint* a writer.
		if strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint") {
			return []sideEffect{{call.Pos(), "performs I/O (fmt." + name + ")"}}
		}
	case "log":
		return []sideEffect{{call.Pos(), "performs I/O (log." + name + ")"}}
	case "os":
		return []sideEffect{{call.Pos(), "touches ambient process state (os." + name + ")"}}
	}
	return nil
}

// scorepureFacts computes per-function impurity summaries.
func scorepureFacts(prog *dataflow.Program) *dataflow.FactStore {
	transfer := func(f *dataflow.Func, store *dataflow.FactStore) interface{} {
		if isForecastCacheMethod(f.Obj) {
			return (*impureFact)(nil) // blessed memoization seam
		}
		for _, e := range directEffects(f.Pkg.Info, f) {
			if prog.Sup.Suppresses(scorepureName, prog.Fset.Position(e.pos)) {
				continue
			}
			return &impureFact{what: e.what, pos: prog.Fset.Position(e.pos)}
		}
		for _, c := range f.Calls {
			if c.StaticObj != nil && isForecastCacheMethod(c.StaticObj) {
				continue
			}
			fact, _ := store.Get(c.StaticObj).(*impureFact)
			if fact == nil {
				continue
			}
			if prog.Sup.Suppresses(scorepureName, prog.Fset.Position(c.Site.Pos())) {
				continue
			}
			return &impureFact{what: fact.what, pos: fact.pos, via: c.StaticObj}
		}
		return (*impureFact)(nil)
	}
	return prog.Facts(scorepureName, transfer, impureEq)
}

// impureChain renders the hop chain to the root effect.
func impureChain(prog *dataflow.Program, store *dataflow.FactStore, fact *impureFact) string {
	chain := ""
	for hops := 0; fact != nil && fact.via != nil && hops < 12; hops++ {
		if f := prog.FuncOf(fact.via); f != nil {
			chain += f.Name() + " → "
		} else {
			chain += fact.via.Name() + " → "
		}
		fact, _ = store.Get(fact.via).(*impureFact)
	}
	if fact == nil {
		return chain + "?"
	}
	return chain + fact.what
}

func runScorepure(pass *analysis.Pass) (interface{}, error) {
	prog, _ := pass.Facts.(*dataflow.Program)
	if prog == nil {
		return nil, nil // reachability needs the whole-program call graph
	}
	store := scorepureFacts(prog)

	// Roots: ScoreCandidates methods declared in this package.
	type item struct {
		f    *dataflow.Func
		root string
	}
	var queue []item
	for _, f := range prog.FuncsOf(pass.Pkg.Path()) {
		if f.Obj.Name() == "ScoreCandidates" && f.Obj.Signature().Recv() != nil {
			queue = append(queue, item{f, f.Name()})
		}
	}
	reached := map[*dataflow.Func]string{}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		if _, ok := reached[it.f]; ok {
			continue
		}
		reached[it.f] = it.root
		for _, c := range it.f.Calls {
			if c.Callee != nil && !isForecastCacheMethod(c.StaticObj) {
				queue = append(queue, item{c.Callee, it.root})
			}
		}
	}

	for _, f := range prog.FuncsOf(pass.Pkg.Path()) {
		root, ok := reached[f]
		if !ok {
			continue
		}
		// Direct effects in this package report at the effect itself.
		for _, e := range directEffects(pass.TypesInfo, f) {
			pass.Reportf(e.pos, "%s on the scoring path from %s: scoring must be a pure function of (stream state, seed) so replacement decisions replay bit-identically; memoize through core.ForecastCache or restructure, or //lint:ignore scorepure with a reason",
				e.what, root)
		}
		// Impurity beyond this package reports once, at the frontier call.
		for _, c := range f.Calls {
			fact, _ := store.Get(c.StaticObj).(*impureFact)
			if fact == nil || c.Callee == nil {
				continue
			}
			calleePkg := c.Callee.Pkg.Path
			if calleePkg == pass.Pkg.Path() || inAny(calleePkg, scorepurePkgs) {
				continue
			}
			pass.Reportf(c.Site.Pos(), "call to %s on the scoring path from %s is impure (%s): scoring must be a pure function of (stream state, seed); memoize through core.ForecastCache or move the effect off the scoring path",
				c.Callee.Name(), root, impureChain(prog, store, fact))
		}
	}
	return nil, nil
}
