package lintrules

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strconv"

	"stochstream/internal/lintrules/analysis"
	"stochstream/internal/lintrules/dataflow"
)

// Atomicfield mechanizes the contract the shardrt HTTP surface documents in
// prose: a struct field that any code accesses through function-style
// sync/atomic calls (atomic.AddInt64(&c.hits, 1)) must never be read or
// written plainly outside a constructor. A plain load of an atomically
// written field is a data race that tears on 32-bit platforms and is
// reordered freely by the memory model — the counter the metrics endpoint
// reports stops matching what the workers wrote.
//
// The atomically-accessed field set is collected program-wide (an atomic
// write in one package poisons plain reads of the same field everywhere),
// so the cross-package case only an interprocedural collection can see is
// covered. Constructors — functions returning the field's owning struct
// type (or a pointer to it) — are exempt: before the value escapes the
// constructor no other goroutine can hold it.
//
// Method-style atomics (atomic.Int64 fields) are invisible here on
// purpose: their type already makes plain access impossible, which is the
// recommended fix.
const atomicfieldName = "atomicfield"

var Atomicfield = &analysis.Analyzer{
	Name: atomicfieldName,
	Doc:  "fields accessed via sync/atomic anywhere must not be read or written plainly outside the constructor",
	Run:  runAtomicfield,
}

// ownsField reports whether t (after pointer deref) is the named struct
// type declaring fld.
func ownsField(t types.Type, fld *types.Var) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	st, ok := n.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i) == fld {
			return true
		}
	}
	return false
}

// isConstructorOf reports whether fn is a constructor of fld's owning
// struct: a non-method function with a result of that type.
func isConstructorOf(fn *types.Func, fld *types.Var) bool {
	sig := fn.Signature()
	if sig.Recv() != nil {
		return false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if ownsField(sig.Results().At(i).Type(), fld) {
			return true
		}
	}
	return false
}

func runAtomicfield(pass *analysis.Pass) (interface{}, error) {
	prog, _ := pass.Facts.(*dataflow.Program)
	if prog == nil {
		return nil, nil // the field set is a whole-program property
	}

	// Every field with a function-style atomic access anywhere, with the
	// first access (in deterministic program order) as the witness for
	// messages.
	witness := map[*types.Var]string{}
	for _, f := range prog.Funcs() {
		for _, a := range f.Conc().Atomics {
			if _, ok := witness[a.Field]; !ok {
				pos := prog.Fset.Position(a.Call.Pos())
				witness[a.Field] = "atomic." + a.Name + " at " + filepath.Base(pos.Filename) + ":" + strconv.Itoa(pos.Line)
			}
		}
	}
	if len(witness) == 0 {
		return nil, nil
	}

	for _, f := range prog.FuncsOf(pass.Pkg.Path()) {
		// The atomic calls' own operands are the legal accesses.
		atomicSel := map[*ast.SelectorExpr]bool{}
		for _, a := range f.Conc().Atomics {
			atomicSel[a.Sel] = true
		}
		ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || atomicSel[sel] {
				return true
			}
			s := pass.TypesInfo.Selections[sel]
			if s == nil || s.Kind() != types.FieldVal {
				return true
			}
			fld, ok := s.Obj().(*types.Var)
			if !ok {
				return true
			}
			w, tracked := witness[fld]
			if !tracked || isConstructorOf(f.Obj, fld) {
				return true
			}
			pass.Reportf(sel.Pos(), "plain access to field %s, which is accessed atomically elsewhere (%s): mixing sync/atomic and direct loads/stores tears reads under concurrent ingest; use sync/atomic for every access outside the constructor, or make the field an atomic.Int64-style type", fld.Name(), w)
			return true
		})
	}
	return nil, nil
}
