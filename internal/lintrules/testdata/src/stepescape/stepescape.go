// Package stepescape exercises interprocedural escape analysis for
// engine.Step results: the returned slice is valid only until the next
// Step call, and these cases smuggle it into persistent storage through
// helper calls the syntactic stepretain analyzer cannot see.
package stepescape

import "stochstream/internal/engine"

// Holder is persistent operator state.
type Holder struct{ buf []engine.Pair }

// stash stores its parameter into persistent state: any Step result passed
// to it escapes.
func stash(h *Holder, s []engine.Pair) { h.buf = s }

// stashIndirect forwards to stash: escape summaries compose bottom-up.
func stashIndirect(h *Holder, s []engine.Pair) { stash(h, s) }

// same returns its argument unchanged; the returns summary records the
// aliasing so the caller's store is caught.
func same(s []engine.Pair) []engine.Pair { return s }

// copyOut copies the pairs; nothing escapes.
func copyOut(h *Holder, s []engine.Pair) { h.buf = append(h.buf[:0], s...) }

// keep is stash as a method: the receiver shifts argument indexes by one.
func (h *Holder) keep(s []engine.Pair) { h.buf = s }

// INTERPROCEDURAL-ONLY: no field write appears anywhere in this function,
// so the syntactic stepretain provably passes it — the store happens inside
// stash, one call away.
func escapeViaArg(h *Holder, j *engine.Join, r, s engine.Tuple) {
	res := j.Step(r, s)
	stash(h, res) // want "passed to stepescape.stash, which stores parameter s beyond the step"
}

func escapeViaTwoHops(h *Holder, j *engine.Join, r, s engine.Tuple) {
	stashIndirect(h, j.Step(r, s)) // want "passed to stepescape.stashIndirect"
}

// INTERPROCEDURAL-ONLY: the alias round-trips through same(), so the value
// being stored is not syntactically a Step result.
func escapeViaReturn(h *Holder, j *engine.Join, r, s engine.Tuple) {
	h.buf = same(j.Step(r, s)) // want "retained beyond the step through a helper call"
}

// A sub-slice through the helper still aliases the Step buffer.
func escapeSubslice(h *Holder, j *engine.Join, r, s engine.Tuple) {
	res := j.Step(r, s)
	stash(h, res[:1]) // want "passed to stepescape.stash"
}

func escapeViaMethod(h *Holder, j *engine.Join, r, s engine.Tuple) {
	h.keep(j.Step(r, s)) // want "passed to stepescape...Holder..keep"
}

// Copying through a helper is fine: copyOut appends by value.
func safeCopy(h *Holder, j *engine.Join, r, s engine.Tuple) {
	copyOut(h, j.Step(r, s))
}

// Element copies out of the result are fine too — Pair is a value type.
func safeElement(j *engine.Join, r, s engine.Tuple) engine.Pair {
	res := j.Step(r, s)
	return res[0]
}
