// Package atomicfield is the seeded-violation corpus for the atomic-field
// analyzer: fields accessed via function-style sync/atomic calls anywhere
// must never be read or written plainly outside a constructor — plain
// access in the same package, in a different package from the atomic use,
// and the constructor exemption.
package atomicfield

import (
	"sync/atomic"

	"atomicfield/ctr"
)

// Counter mixes atomic increments with a plain read — the seeded tear.
type Counter struct {
	hits   int64
	misses int64
}

// NewCounter may touch the field plainly: the value has not escaped yet.
func NewCounter() *Counter {
	c := &Counter{}
	c.hits = 0
	return c
}

func (c *Counter) Inc() {
	atomic.AddInt64(&c.hits, 1)
}

func (c *Counter) Peek() int64 {
	return c.hits // want "plain access to field hits, which is accessed atomically elsewhere"
}

// misses is never accessed atomically: plain access is fine.
func (c *Counter) Misses() int64 {
	return c.misses
}

// INTERPROCEDURAL-ONLY: the atomic access to Gauge.N lives in package ctr;
// nothing in this file mentions sync/atomic near the read, but the
// program-wide field set still catches the plain load.
func readGauge(g *ctr.Gauge) int64 {
	return g.N // want "plain access to field N, which is accessed atomically elsewhere"
}
