// Package ctr owns a gauge whose field is accessed atomically here; the
// atomicfield corpus reads it plainly from the outside.
package ctr

import "sync/atomic"

// Gauge carries a counter updated via sync/atomic.
type Gauge struct {
	N int64
}

// Bump increments the gauge atomically.
func Bump(g *Gauge) {
	atomic.AddInt64(&g.N, 1)
}
