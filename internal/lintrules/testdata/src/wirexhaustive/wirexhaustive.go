// Package wirexhaustive is the endpoint side of the protocol corpus: its
// dispatch never handles TypeBye, it reaches the error codes only through
// the wire package's decoder (so the CodeGone coverage gap is visible only
// interprocedurally), and it commits every raw-literal sin the analyzer
// flags.
package wirexhaustive

import "wirexhaustive/wire"

func dispatch(typ uint8, payload []byte) error { // want "can never reach TypeBye"
	switch typ {
	case wire.TypeHello:
		return nil
	case wire.TypeData:
		return handleData(payload)
	default:
		return nil
	}
}

func handleData(b []byte) error {
	if len(b) == 0 {
		return wire.ErrBad
	}
	return nil
}

// decodeErr is this package's only path to the code constants: the mention
// set comes entirely from wire.CodeToErr's body, one package away.
func decodeErr(code uint16) error { // want "can never reach CodeGone"
	return wire.CodeToErr(code)
}

func rawDispatch(typ uint8) bool {
	switch typ {
	case wire.TypeHello:
		return true
	case 0x03: // want "raw frame type literal 0x03"
		return true
	}
	return false
}

func buildRaw() []byte {
	return wire.Frame(0x05, nil) // want "raw frame type literal 0x05"
}

func rejectFull() error {
	return wire.CodeToErr(1) // want "raw error code literal 1"
}

func isFull(f wire.ErrorFrame) bool {
	return f.Code == 1 // want "raw code field comparison literal 1"
}

func mkErr() wire.ErrorFrame {
	return wire.ErrorFrame{Code: 2} // want "raw code field literal 2"
}

func legacyDispatch(typ uint8) bool {
	switch typ {
	//lint:ignore wirexhaustive legacy v0 probe byte, predates the constant table
	case 0x7F:
		return true
	case wire.TypeHello:
		return true
	}
	return false
}
