// Package wire is the protocol side of the wirexhaustive corpus: two
// constant groups, sentinels, and a code↔error translator pair with three
// deliberate bijectivity defects.
package wire

import "errors"

const (
	TypeHello = 0x01
	TypeData  = 0x02
	TypeBye   = 0x03
)

const (
	CodeFull = 1 // want "error codes CodeDup and CodeFull both decode to sentinel ErrFull"
	CodeBad  = 2
	CodeGone = 3 // want "error code CodeGone has no explicit case in the code→error decoder"
	CodeDup  = 4 // want "code CodeDup decodes to sentinel ErrFull but the error→code encoder maps ErrFull back to CodeFull"
)

var (
	ErrFull = errors.New("full")
	ErrBad  = errors.New("bad")
	ErrGone = errors.New("gone")
)

// CodeToErr is the client-side decoder: CodeGone is missing and CodeDup
// aliases ErrFull.
func CodeToErr(code uint16) error {
	switch code {
	case CodeFull:
		return ErrFull
	case CodeBad:
		return ErrBad
	case CodeDup:
		return ErrFull
	default:
		return errors.New("unknown code")
	}
}

// ErrToCode is the daemon-side encoder.
func ErrToCode(err error) uint16 {
	switch {
	case errors.Is(err, ErrFull):
		return CodeFull
	case errors.Is(err, ErrBad):
		return CodeBad
	default:
		return CodeGone
	}
}

// ErrorFrame mirrors a typed rejection frame.
type ErrorFrame struct {
	Code uint16
	Msg  string
}

// Frame assembles a raw frame; the typ parameter name is what the raw
// literal check keys on at call sites.
func Frame(typ uint8, payload []byte) []byte {
	return append([]byte{typ}, payload...)
}
