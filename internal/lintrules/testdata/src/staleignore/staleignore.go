// Package staleignore exercises the suppression audit: every //lint:ignore
// must name a known analyzer, carry a reason, and actually suppress a
// finding; defective directives become findings of the pseudo-analyzer
// "staleignore". (Bare directives and directives without a reason cannot
// carry a trailing `// want` marker — a line comment consumes the rest of
// the line — so those two shapes are pinned by the analysis package's unit
// tests instead.)
package staleignore

// goodFloat carries a live, reasoned suppression: the float comparison is
// suppressed and the directive is not stale.
func goodFloat(a, b float64) bool {
	//lint:ignore floateq corpus: exact equality intended for the test
	return a == b
}

// The directive below names a real analyzer but no finding exists on its
// line or the next: the audit flags it as stale.
func staleDirective() int {
	//lint:ignore floateq stale by construction // want "stale //lint:ignore floateq"
	return 1
}

// The directive below names an analyzer that does not exist.
func unknownAnalyzer() int {
	//lint:ignore flaoteq typo of floateq // want "names unknown analyzer .flaoteq."
	return 2
}

// An unsuppressed violation still reports normally alongside the audit.
func plain(a, b float64) bool {
	return a == b // want "floating-point == comparison"
}
