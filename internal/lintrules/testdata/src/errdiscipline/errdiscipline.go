// Package errdiscipline exercises the typed-error analyzer: sentinel
// comparisons, %w wrapping discipline, and — interprocedurally — silently
// discarded errors that can wrap mincostflow.ErrNumericalInstability.
package errdiscipline

import (
	"errors"
	"fmt"

	"stochstream/internal/mincostflow"
)

// ErrLocal is this package's own sentinel.
var ErrLocal = errors.New("local")

// Contract 1: sentinels are matched with errors.Is, never ==/!=.
func cmp(err error) bool {
	return err == ErrLocal // want "sentinel ErrLocal compared with =="
}

func cmpNeq(err error) bool {
	return err != ErrLocal // want "sentinel ErrLocal compared with !="
}

func cmpOK(err error) bool { return errors.Is(err, ErrLocal) }

func nilCheckOK(err error) bool { return err == nil }

// Contract 2: wrapping a sentinel without %w hides it from errors.Is.
func wrapBad() error {
	return fmt.Errorf("solve failed: %v", ErrLocal) // want "sentinel ErrLocal formatted without %w"
}

func wrapOK() error {
	return fmt.Errorf("solve failed: %w", ErrLocal)
}

// rung wraps the solver error with %w: its summary records that its error
// can wrap ErrNumericalInstability.
func rung(n int) (float64, error) {
	v, err := mincostflow.Solve(n)
	if err != nil {
		return 0, fmt.Errorf("rung: %w", err)
	}
	return v, nil
}

// INTERPROCEDURAL-ONLY: nothing in this function's text mentions the
// sentinel or the solver — only the bottom-up summaries know rung's error
// can wrap ErrNumericalInstability.
func swallowBlank(n int) float64 {
	v, _ := rung(n) // want "error from errdiscipline.rung can wrap ErrNumericalInstability and is discarded into _"
	return v
}

// The error is bound but never examined on any path afterwards: the CFG's
// def-use chains prove it.
func swallowUnread(n int) (float64, error) {
	v, err := mincostflow.Solve(n)
	if err != nil {
		return 0, err
	}
	w, err := rung(int(v)) // want "assigned to err but never examined afterwards"
	return w, nil
}

// A dropped call expression discards the whole result tuple.
func fireAndForget(n int) {
	rung(n) // want "error from errdiscipline.rung can wrap ErrNumericalInstability and is dropped"
}

// Handling through errors.Is is the contract: no finding.
func handled(n int) float64 {
	v, err := rung(n)
	if errors.Is(err, mincostflow.ErrNumericalInstability) {
		return 0
	}
	return v
}

// The error is examined only on the NEXT loop iteration: the loop's back
// edge in the CFG proves the read happens; a position-based scan (is there
// a read later in the source?) would flag this incorrectly.
func loopCarried(n int) float64 {
	var err error
	total := 0.0
	for i := 0; i < n; i++ {
		if err != nil {
			break
		}
		var v float64
		v, err = rung(i)
		total += v
	}
	return total
}
