// Package sink is the scorepure corpus's impure helper package: its
// functions perform I/O so scoring paths that call into it inherit the
// impurity across the package boundary.
package sink

import "fmt"

// Emit prints — impure; scorepure callers inherit it.
func Emit(id int) float64 {
	fmt.Println("scored", id)
	return float64(id)
}

// Deep adds a hop between the scoring path and the I/O.
func Deep(id int) float64 { return Emit(id) }
