// Package scorepure exercises the purity analyzer: everything reachable
// from a ScoreCandidates method must not mutate operator state or perform
// I/O, with core.ForecastCache memoization allowlisted and the out-buffer
// idiom (writes through non-receiver parameters) explicitly permitted.
package scorepure

import (
	"scorepure/sink"

	"stochstream/internal/core"
)

// Candidate mirrors a policy candidate.
type Candidate struct {
	ID    int
	Score float64
}

type entry struct{ h float64 }

// P is a policy whose ScoreCandidates roots the analysis.
type P struct {
	fc    *core.ForecastCache
	inc   map[int]*entry
	ltab  []float64
	calls int
}

// ScoreCandidates is the scoring root. Writes through the out parameter
// are the blessed out-buffer idiom: no finding for out[i].
func (p *P) ScoreCandidates(cands []Candidate, out []float64) {
	p.ensureLTab()
	for i := range cands {
		out[i] = p.score(cands[i]) + p.forecast(cands[i]) + p.scoreInc(cands[i]) + p.scoreIncOK(cands[i]) + p.trace(cands[i])
	}
}

// score is reachable from the root: its receiver write reports here, at
// the effect.
func (p *P) score(c Candidate) float64 {
	p.calls++ // want "mutates receiver state .p.calls. on the scoring path from scorepure...P..ScoreCandidates"
	return float64(c.ID)
}

// Memoizing through core.ForecastCache is the blessed seam: no finding.
func (p *P) forecast(c Candidate) float64 { return p.fc.At(c.ID) }

// scoreInc mutates heap state reached through the receiver via a local
// alias — rootIdent alone cannot see it; the alias tracking can.
func (p *P) scoreInc(c Candidate) float64 {
	e := p.inc[c.ID]
	e.h = float64(c.ID) // want "mutates receiver state .e.h. on the scoring path"
	return e.h
}

// scoreIncOK reaches the same heap state through a comma-ok map read: the
// value binds to the first LHS only.
func (p *P) scoreIncOK(c Candidate) float64 {
	e, ok := p.inc[c.ID]
	if !ok {
		return 0
	}
	e.h++ // want "mutates receiver state .e.h. on the scoring path"
	return e.h
}

// INTERPROCEDURAL-ONLY: this function's own text is pure — a syntactic
// check provably passes it — but the helper one package away prints.
func (p *P) trace(c Candidate) float64 {
	return sink.Deep(c.ID) // want "call to sink.Deep on the scoring path from scorepure...P..ScoreCandidates is impure"
}

// ensureLTab memoizes into the receiver under a reasoned suppression: the
// impurity is killed at the root, so neither this line nor any caller
// reports.
func (p *P) ensureLTab() {
	if p.ltab == nil {
		//lint:ignore scorepure corpus: deterministic lazy init of a pure lookup table
		p.ltab = []float64{1, 2, 3}
	}
}

// Reset mutates the receiver but is not on any scoring path: no finding.
func (p *P) Reset() {
	p.ltab = nil
	p.calls = 0
}
