// Package stepretain is the seeded-violation corpus for the stepretain
// analyzer: retaining engine.Step results beyond the step.
package stepretain

import "stochstream/internal/engine"

var lastPairs []engine.Pair

type sink struct {
	pairs  []engine.Pair
	byStep [][]engine.Pair
}

func storeInField(j *engine.Join, s *sink, r, t engine.Tuple) {
	s.pairs = j.Step(r, t) // want "engine.Step result retained"
}

func storeInGlobal(j *engine.Join, r, t engine.Tuple) {
	lastPairs = j.Step(r, t) // want "engine.Step result retained"
}

func storeSubslice(j *engine.Join, s *sink, r, t engine.Tuple) {
	s.pairs = j.Step(r, t)[:1] // want "engine.Step result retained"
}

func storeInElement(j *engine.Join, s *sink, r, t engine.Tuple) {
	s.byStep[0] = j.Step(r, t) // want "engine.Step result retained"
}

func storeViaLocal(j *engine.Join, s *sink, r, t engine.Tuple) {
	res := j.Step(r, t)
	s.pairs = res // want "engine.Step result retained"
}

func storeInLiteral(j *engine.Join, r, t engine.Tuple) *sink {
	return &sink{
		pairs: j.Step(r, t), // want "engine.Step result retained"
	}
}

func copyOutIsFine(j *engine.Join, s *sink, r, t engine.Tuple) {
	// Copying the pairs detaches them from the reused buffer: not flagged.
	s.pairs = append(s.pairs[:0], j.Step(r, t)...)
}

func elementCopyIsFine(j *engine.Join, r, t engine.Tuple) engine.Pair {
	// A Pair is a value: reading one element copies it.
	res := j.Step(r, t)
	if len(res) > 0 {
		return res[0]
	}
	return engine.Pair{}
}

func localUseIsFine(j *engine.Join, r, t engine.Tuple) int {
	res := j.Step(r, t)
	n := 0
	for range res {
		n++
	}
	return n
}

func suppressed(j *engine.Join, s *sink, r, t engine.Tuple) {
	//lint:ignore stepretain consumed synchronously before the next Step, reviewed
	s.pairs = j.Step(r, t)
}

// A checkpoint-shaped buffer that retains Step results for later
// serialization: the engine reuses the pairs buffer across steps, so the
// "snapshot" would alias live memory and mutate under the writer.
type checkpointBuf struct {
	step    int
	pending []engine.Pair
}

func (c *checkpointBuf) capture(j *engine.Join, r, t engine.Tuple) {
	c.pending = j.Step(r, t) // want "engine.Step result retained"
	c.step++
}

func (c *checkpointBuf) captureDetached(j *engine.Join, r, t engine.Tuple) {
	// Copying into the buffer's own backing array detaches the snapshot
	// from the reused step buffer: not flagged.
	c.pending = append(c.pending[:0], j.Step(r, t)...)
	c.step++
}
