// Flight-recorder flavor of the stepretain contract: a diagnostics capture
// that stores a step's pairs next to its spans. The spans are values the
// recorder copied out — safe to keep; the pairs alias the engine's reused
// step buffer and are not.
package stepretain

import (
	"stochstream/internal/engine"
	"stochstream/internal/flightrec"
)

type flightCapture struct {
	spans []flightrec.Span
	pairs []engine.Pair
}

func (c *flightCapture) record(j *engine.Join, rec *flightrec.Recorder, r, t engine.Tuple) {
	a := rec.Begin(1)
	c.pairs = j.Step(r, t) // want "engine.Step result retained"
	rec.End(a)
	c.spans = rec.Spans()
}

func (c *flightCapture) recordDetached(j *engine.Join, rec *flightrec.Recorder, r, t engine.Tuple) {
	a := rec.Begin(1)
	// Copying the pairs detaches them from the reused buffer: not flagged.
	c.pairs = append(c.pairs[:0], j.Step(r, t)...)
	rec.End(a)
	c.spans = rec.Spans()
}
