// Seeded violations for the batched-step surface: StepBatch returns the
// same operator-owned buffer contract as Step, so retaining its result (or
// a sub-slice, or a local it flowed through) is flagged identically.
package stepretain

import "stochstream/internal/engine"

var lastBatchPairs []engine.Pair

func batchStoreInField(j *engine.Join, s *sink, batch []engine.TuplePair) {
	s.pairs = j.StepBatch(batch) // want "engine.Step result retained"
}

func batchStoreInGlobal(j *engine.Join, batch []engine.TuplePair) {
	lastBatchPairs = j.StepBatch(batch) // want "engine.Step result retained"
}

func batchStoreSubslice(j *engine.Join, s *sink, batch []engine.TuplePair) {
	s.pairs = j.StepBatch(batch)[1:] // want "engine.Step result retained"
}

func batchStoreViaLocal(j *engine.Join, s *sink, batch []engine.TuplePair) {
	res := j.StepBatch(batch)
	s.pairs = res // want "engine.Step result retained"
}

func batchCopyOutIsFine(j *engine.Join, s *sink, batch []engine.TuplePair) {
	// Copying detaches the pairs from the reused buffer: not flagged.
	s.pairs = append(s.pairs[:0], j.StepBatch(batch)...)
}

func batchLocalUseIsFine(j *engine.Join, batch []engine.TuplePair) int {
	return len(j.StepBatch(batch))
}
