// Package extq owns a channel-bearing queue type; the chandiscipline
// corpus closes its field from outside to seed the ownership violation.
package extq

// Q is a queue whose channel field only this package may close.
type Q struct {
	Ch chan int
}

// New returns a queue with a buffered channel.
func New() *Q {
	return &Q{Ch: make(chan int, 4)}
}

// Drain consumes the queue.
func (q *Q) Drain() {
	for v := range q.Ch {
		_ = v
	}
}

// Close shuts the queue down from its owning package.
func (q *Q) Close() {
	close(q.Ch)
}
