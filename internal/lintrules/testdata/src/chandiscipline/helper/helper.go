// Package helper supplies the channel-forwarding helpers of the
// chandiscipline corpus.
package helper

// Shutdown closes its channel parameter.
func Shutdown(ch chan int) {
	close(ch)
}
