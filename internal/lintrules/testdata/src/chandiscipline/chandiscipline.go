// Package chandiscipline is the seeded-violation corpus for the channel
// discipline analyzer: sends with no drain anywhere in the program, sends
// reachable after a close (directly and through a helper), and closes of
// channel fields another package owns — against the clean shapes (drained
// fields, deferred closes, channel parameters the caller owns).
package chandiscipline

import (
	"chandiscipline/extq"
	"chandiscipline/helper"
)

// Q's queue is sent on but nothing in the program ever receives from it:
// the first Push past the buffer blocks the coordinator forever.
type Q struct {
	ch chan int
}

func (q *Q) Push(v int) {
	q.ch <- v // want "send on channel ch with no receive or range anywhere in the program"
}

// R's queue is drained by its worker — the pairing the analyzer wants.
type R struct {
	rch chan int
}

func (r *R) Push(v int) {
	r.rch <- v
}

func (r *R) worker() {
	for v := range r.rch {
		_ = v
	}
}

// A send textually and control-flow after a close panics.
func sendAfterClose() {
	ch := make(chan int, 1)
	<-ch
	close(ch)
	ch <- 1 // want "send on ch is reachable after close"
}

// INTERPROCEDURAL-ONLY: the close happens inside helper.Shutdown (which
// closes its channel parameter), so no close is visible in this function's
// source text — the channel-parameter summary projects it onto the call
// site, and the send after it still panics.
func sendAfterHelperClose() {
	ch := make(chan int, 1)
	<-ch
	helper.Shutdown(ch)
	ch <- 1 // want "send on ch is reachable after close\(ch\) \(closed via helper.Shutdown\)"
}

// A deferred close runs at function exit, whatever its textual position:
// the send below it is fine.
func deferredCloseClean() {
	ch := make(chan int, 1)
	defer close(ch)
	ch <- 1
	<-ch
}

// Sends on channel parameters are the caller's business: it owns both ends
// (the engine.Run out-channel shape).
func emit(out chan<- int) {
	out <- 1
}

// Closing another package's channel field races its senders; only the
// owning package's shutdown path may do it.
func stealClose(q *extq.Q) {
	close(q.Ch) // want "close of channel field Ch owned by package chandiscipline/extq"
}
