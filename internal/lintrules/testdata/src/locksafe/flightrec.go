// Flight-recorder flavor of the locksafe contract: the Recorder is a
// mutex-guarded handle — copying one forks the span ring and its lock — while
// the Active span handles are plain values whose copying is the API.
package locksafe

import "stochstream/internal/flightrec"

// A diagnostics snapshot holding the recorder by value: the copy's mutex and
// ring detach from the live recorder, so spans recorded after the snapshot
// land in neither consistently.
type bundleState struct {
	step int
	rec  flightrec.Recorder
}

func snapshotRecorder(rec *flightrec.Recorder, b *bundleState) {
	b.step++
	b.rec = *rec // want "assignment copies flightrec.Recorder by value"
}

func recorderByValue(rec flightrec.Recorder) { // want "signature passes flightrec.Recorder by value"
	_ = &rec
}

func recorderPointerIsFine(rec *flightrec.Recorder) *flightrec.Recorder {
	return rec
}

func activeSpansAreValues(rec *flightrec.Recorder) {
	// Active handles and completed Spans carry no locks: copying is fine.
	a := rec.Begin(1)
	b := a
	rec.End(b)
	spans := rec.Spans()
	for _, s := range spans {
		_ = s
	}
}
