// Package locksafe is the seeded-violation corpus for the locksafe
// analyzer: lock/atomic-bearing values copied, and telemetry handles
// constructed outside their constructors.
package locksafe

import (
	"sync"

	"stochstream/internal/telemetry"
)

type guarded struct {
	mu sync.Mutex
	n  int
}

type wrapper struct{ g guarded }

func copyOnAssign(a guarded) { // want "signature passes locksafe.guarded by value"
	b := a // want "assignment copies locksafe.guarded by value"
	_ = &b
}

func copyNested(w wrapper) { // want "signature passes locksafe.wrapper by value"
	_ = &w
}

func byValueReceiver() {
	var mu sync.Mutex
	use(mu) // want "call copies sync.Mutex by value"
	_ = &mu
}

func use(interface{}) {}

func rangeCopies(gs []guarded) int {
	total := 0
	for _, g := range gs { // want "range value copies locksafe.guarded"
		total += g.n
	}
	return total
}

func returnCopies(w *wrapper) guarded { // want "signature passes locksafe.guarded by value"
	return w.g // want "return copies locksafe.guarded by value"
}

func pointersAreFine(g *guarded, w *wrapper) *guarded {
	usePtr(g)
	return &w.g
}

func usePtr(*guarded) {}

func freshValuesAreFine() *guarded {
	// Composite literals and zero-value declarations construct, not copy.
	var g guarded
	g = guarded{}
	return &g
}

func literalCounter() *telemetry.Counter {
	return &telemetry.Counter{} // want "telemetry.Counter constructed by literal"
}

func literalRegistry() telemetry.Registry { // want "signature passes telemetry.Registry by value"
	r := telemetry.Registry{} // want "telemetry.Registry constructed by literal"
	return r                  // want "return copies telemetry.Registry by value"
}

func zeroValueHandle() {
	var c telemetry.Counter // want "zero-value telemetry.Counter declared"
	c.Inc()
}

func constructorsAreFine() *telemetry.Counter {
	r := telemetry.NewRegistry()
	return r.Counter("steps_total")
}

func suppressed() {
	var mu sync.Mutex
	//lint:ignore locksafe deliberately copying a never-locked zero mutex in a test fixture
	use(mu)
}

// A checkpoint-shaped struct holding a telemetry handle by value: the
// snapshot forks the registry's atomic state, and a restore would resurrect
// stale counters disconnected from the exporter.
type ckptWithHandle struct {
	step int
	reg  telemetry.Registry
}

func snapshotTelemetry(reg *telemetry.Registry, c *ckptWithHandle) {
	c.step++
	c.reg = *reg // want "assignment copies telemetry.Registry by value"
}

func restoreTelemetry(c *ckptWithHandle) *telemetry.Registry {
	r := c.reg // want "assignment copies telemetry.Registry by value"
	return &r
}

// A checkpoint that records a pointer to the handle (or better, none at
// all) stays connected to the live registry: not flagged.
type ckptWithPointer struct {
	step int
	reg  *telemetry.Registry
}

func snapshotPointer(reg *telemetry.Registry, c *ckptWithPointer) {
	c.reg = reg
}
