// Copied sync.WaitGroup and sync.Once values, pinned for the concurrency
// suite: a forked WaitGroup's counter never reaches the original's Wait,
// and a forked Once re-runs its function — the shard coordinator shapes.
package locksafe

import "sync"

// coordinator is the shard-runtime shape: a WaitGroup tracking workers and
// a Once guarding shutdown, embedded by value.
type coordinator struct {
	wg       sync.WaitGroup
	stopOnce sync.Once
}

func copyWaitGroup() {
	var wg sync.WaitGroup
	wg.Add(1)
	wg2 := wg // want "assignment copies sync.WaitGroup by value"
	wg2.Done()
	wg.Wait()
}

func copyOnce(once sync.Once) { // want "signature passes sync.Once by value"
	once.Do(func() {})
}

func copyCoordinator(c *coordinator) {
	snapshot := *c // want "assignment copies locksafe.coordinator by value"
	_ = &snapshot
}

func passCoordinator() {
	var c coordinator
	inspectCoordinator(c) // want "call copies locksafe.coordinator by value"
}

func inspectCoordinator(c coordinator) { // want "signature passes locksafe.coordinator by value"
	_ = &c
}

func rangeCoordinators(cs []coordinator) {
	for _, c := range cs { // want "range value copies locksafe.coordinator"
		_ = &c
	}
}
