package locksafe

import "sync"

// Shard-runtime-shaped violations: a shard handle owns channels plus a
// mutex-guarded recorder, so copying it forks the lock state and detaches
// the copy's recorder from the worker's.

type shardRecorder struct {
	mu    sync.Mutex
	spans []int
}

type shardHandle struct {
	id  int
	rec shardRecorder
}

func snapshotShard(sh shardHandle) int { // want "signature passes locksafe.shardHandle by value"
	return sh.id
}

func gatherShards(shards []shardHandle) int {
	total := 0
	for _, sh := range shards { // want "range value copies locksafe.shardHandle"
		total += sh.id
	}
	return total
}

func shardByPointerIsFine(sh *shardHandle) int {
	sh.rec.mu.Lock()
	defer sh.rec.mu.Unlock()
	return len(sh.rec.spans)
}
