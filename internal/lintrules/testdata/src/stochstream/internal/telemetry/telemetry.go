// Package telemetry is a stub of stochstream/internal/telemetry for the
// locksafe corpus: handle types with the real names and atomic/mutex
// internals, plus their constructors.
package telemetry

import (
	"sync"
	"sync/atomic"
)

// Counter mirrors the real atomic counter handle.
type Counter struct{ v atomic.Int64 }

// Inc increments the counter.
func (c *Counter) Inc() { c.v.Add(1) }

// Gauge mirrors the real atomic gauge handle.
type Gauge struct{ bits atomic.Uint64 }

// Histogram mirrors the real histogram handle.
type Histogram struct {
	mu     sync.Mutex
	counts []int64
}

// DecisionTrace mirrors the real ring-buffer trace.
type DecisionTrace struct {
	mu  sync.Mutex
	cap int
}

// NewDecisionTrace mirrors the real constructor.
func NewDecisionTrace(capacity int) *DecisionTrace { return &DecisionTrace{cap: capacity} }

// Registry mirrors the real registry.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
}

// NewRegistry mirrors the real constructor.
func NewRegistry() *Registry { return &Registry{counters: map[string]*Counter{}} }

// Counter mirrors the real get-or-create accessor.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}
