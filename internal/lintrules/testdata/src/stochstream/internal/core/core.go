// Package core is a stub of stochstream/internal/core for the scorepure
// corpus: ForecastCache is the allowlisted memoization seam, so its
// receiver mutations must not count as impurity.
package core

// ForecastCache memoizes forecasts keyed by process id; the real type
// rebinds deterministically from stream state.
type ForecastCache struct {
	vals map[int]float64
}

// NewForecastCache builds an empty cache.
func NewForecastCache() *ForecastCache {
	return &ForecastCache{vals: map[int]float64{}}
}

// At memoizes on miss — receiver mutation that scorepure blesses.
func (fc *ForecastCache) At(k int) float64 {
	v, ok := fc.vals[k]
	if !ok {
		v = float64(k) * 0.5
		fc.vals[k] = v
	}
	return v
}
