// Package mincostflow is a stub of stochstream/internal/mincostflow for
// the errdiscipline corpus: it exports the numerical-instability sentinel
// and a solver that can return it.
package mincostflow

import "errors"

// ErrNumericalInstability mirrors the real solver sentinel.
var ErrNumericalInstability = errors.New("numerical instability")

// Solve fails with the sentinel for negative sizes.
func Solve(n int) (float64, error) {
	if n < 0 {
		return 0, ErrNumericalInstability
	}
	return float64(n), nil
}
