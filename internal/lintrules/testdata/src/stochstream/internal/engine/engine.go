// Package engine is a stub of stochstream/internal/engine for the
// stepretain corpus: it mirrors the Join.Step signature so the analyzer's
// type-based matching resolves against the real import path.
package engine

// Tuple mirrors the real engine's tuple.
type Tuple struct {
	Key     int
	Payload interface{}
}

// Pair mirrors the real engine's join result.
type Pair struct {
	Time     int
	R, S     Tuple
	SameTime bool
}

// Join mirrors the real operator.
type Join struct{ out []Pair }

// Step mirrors the real Step: the returned slice is valid only until the
// next call.
func (j *Join) Step(r, s Tuple) []Pair {
	j.out = j.out[:0]
	j.out = append(j.out, Pair{R: r, S: s})
	return j.out
}

// TuplePair mirrors the real engine's batched-step input.
type TuplePair struct {
	R, S Tuple
}

// StepBatch mirrors the real StepBatch: the returned slice is valid only
// until the next Step or StepBatch call.
func (j *Join) StepBatch(batch []TuplePair) []Pair {
	j.out = j.out[:0]
	for _, tp := range batch {
		j.out = append(j.out, Pair{R: tp.R, S: tp.S})
	}
	return j.out
}
