// Package stats is a stub of stochstream/internal/stats for the dettaint
// corpus: it mirrors the real package's role as the blessed owner of
// randomness. It deliberately uses math/rand/v2 — the analyzer must treat
// this package as a clean boundary and not taint its callers.
package stats

import "math/rand/v2"

// RNG mirrors the real seeded, splittable source.
type RNG struct{ r *rand.Rand }

// NewRNG builds a seeded source.
func NewRNG(seed uint64) *RNG {
	return &RNG{r: rand.New(rand.NewPCG(seed, 0))}
}

// Float64 draws from the seeded source.
func (g *RNG) Float64() float64 { return g.r.Float64() }
