// Package flightrec is a stub of stochstream/internal/flightrec for the
// lintrules corpora: the mutex-bearing Recorder handle (locksafe), the
// value-type span handles, and the clock seam span timestamps must come
// through (dettaint).
package flightrec

import "sync"

// Span mirrors the real completed-span record: a plain value, safe to copy.
type Span struct {
	ID, Parent int64
	Step       int
	BeginNs    int64
	EndNs      int64
}

// Active mirrors the real in-flight span handle: a plain value, safe to copy.
type Active struct {
	ID      int64
	Step    int
	BeginNs int64
}

// Recorder mirrors the real recorder: a mutex-guarded span ring behind a
// pinned clock seam. Copying one forks the ring and the mutex.
type Recorder struct {
	mu    sync.Mutex
	clock func() int64
	tick  int64
	spans []Span
}

// New returns a recorder on a logical clock.
func New() *Recorder {
	r := &Recorder{}
	r.clock = func() int64 { r.tick++; return r.tick }
	return r
}

// Clock returns the recorder's clock seam; every span timestamp must come
// from it.
func (r *Recorder) Clock() func() int64 { return r.clock }

// Begin opens a span stamped through the seam.
func (r *Recorder) Begin(step int) Active {
	return Active{ID: int64(step), Step: step, BeginNs: r.clock()}
}

// End closes a span into the ring.
func (r *Recorder) End(a Active) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.spans = append(r.spans, Span{ID: a.ID, Step: a.Step, BeginNs: a.BeginNs, EndNs: r.clock()})
}

// Spans returns a copy of the recorded spans (values, safe to retain).
func (r *Recorder) Spans() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Span(nil), r.spans...)
}
