// Package goleak is the seeded-violation corpus for the goroutine-leak
// analyzer: spawned goroutines whose termination cannot be proven — ranges
// over channels nothing closes, unconditional loops with no exit, receives
// nothing pairs with, and blocking http Serve loops — against the clean
// shapes (closed channels, context cancellation, WaitGroup coverage).
package goleak

import (
	"context"
	"net"
	"net/http"
	"sync"

	"goleak/worker"
)

// A worker ranging over a channel the program never closes leaks.
func rangeLeak() {
	jobs := make(chan int)
	go func() { // want "goroutine ranges over channel jobs that nothing in the program closes"
		for v := range jobs {
			_ = v
		}
	}()
	jobs <- 1
}

// Closing the channel is the termination proof.
func rangeClean() {
	q := make(chan int, 4)
	go func() {
		for v := range q {
			_ = v
		}
	}()
	q <- 1
	close(q)
}

// INTERPROCEDURAL-ONLY: the spawn target lives one package away and ranges
// over its parameter; nothing here or there closes feed, so the worker
// never exits. A syntactic check of this file sees only a clean call.
func spawnHelperLeak() {
	feed := make(chan int)
	go worker.Drain(feed) // want "goroutine ranges over channel feed that nothing in the program closes"
	feed <- 1
}

// The close happens inside a helper (worker.Shutdown closes its channel
// parameter): the channel-parameter summary proves termination.
func spawnHelperClean() {
	feed := make(chan int, 1)
	go worker.Drain(feed)
	feed <- 1
	worker.Shutdown(feed)
}

// An unconditional loop with no return, break or cancellation leaks.
func spinLeak() {
	go func() { // want "goroutine loops forever with no termination path"
		n := 0
		for {
			n++
		}
	}()
}

// Context cancellation is an exit path.
func spinCtxClean(ctx context.Context, ticks chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case t := <-ticks:
				_ = t
			}
		}
	}()
}

// A WaitGroup the program waits on is the author's termination claim.
func spinWaitGroupClean(step func() int) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			_ = step()
		}
	}()
	wg.Wait()
}

// Blocking on a receive nothing ever sends on or closes leaks.
func recvLeak() {
	done := make(chan struct{})
	go func() { // want "goroutine blocks receiving from channel done, but nothing in the program sends on or closes it"
		<-done
	}()
}

// A close elsewhere in the function pairs the receive.
func recvClean() {
	done := make(chan struct{})
	go func() {
		<-done
	}()
	close(done)
}

// (*http.Server).Serve blocks until shutdown; with no visible shutdown
// path the spawn reports — the reviewed-suppression seam for servers whose
// lifetime genuinely lives outside the module.
func serveLeak(srv *http.Server, ln net.Listener) {
	go func() { // want "goroutine runs \(\*http.Server\).Serve, which blocks until the server shuts down"
		_ = srv.Serve(ln)
	}()
}

// managed is the internal/httpd lifecycle shape: the serve goroutine runs
// on a server field a visible Shutdown path stops, which is the analyzer's
// managed-serve termination evidence — no suppression needed.
type managed struct {
	srv  *http.Server
	done chan struct{}
}

func (m *managed) start(ln net.Listener) {
	go m.run(ln)
}

func (m *managed) run(ln net.Listener) {
	defer close(m.done)
	_ = m.srv.Serve(ln)
}

func (m *managed) stop(ctx context.Context) error {
	err := m.srv.Shutdown(ctx)
	<-m.done
	return err
}

// unmanaged has the same field shape but nothing in the program ever stops
// its server: the spawn still reports, proving the managed-serve acceptance
// is evidence-gated, not struct-shaped.
type unmanaged struct {
	srv *http.Server
}

func (u *unmanaged) start(ln net.Listener) {
	go u.serveIt(ln) // want "goroutine runs \(\*http.Server\).Serve, which blocks until the server shuts down"
}

func (u *unmanaged) serveIt(ln net.Listener) {
	_ = u.srv.Serve(ln)
}

// serveDirectManaged spawns the external Serve method directly; the local
// server variable is shut down in the same function, which pairs the roots.
func serveDirectManaged(ln net.Listener, ctx context.Context) {
	srv := &http.Server{}
	go srv.Serve(ln)
	<-ctx.Done()
	_ = srv.Shutdown(ctx)
}
