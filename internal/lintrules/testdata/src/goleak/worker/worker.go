// Package worker holds the spawn targets and channel helpers of the goleak
// corpus: the interprocedural cases resolve through these.
package worker

// Drain ranges over its channel parameter until it is closed.
func Drain(ch chan int) {
	for v := range ch {
		_ = v
	}
}

// Shutdown closes its channel parameter — a close the channel-parameter
// summaries project onto the caller's argument.
func Shutdown(ch chan int) {
	close(ch)
}
