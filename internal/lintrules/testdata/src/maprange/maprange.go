// Package maprange is the seeded-violation corpus for the maprange
// analyzer: order-dependent iteration over maps.
package maprange

import (
	"fmt"
	"sort"
)

// emitUnsorted writes map entries in iteration order: order-dependent.
func emitUnsorted(m map[string]int) {
	for k, v := range m { // want "map iteration with order-dependent effects"
		fmt.Println(k, v)
	}
}

// appendNoSort collects values but never sorts them: the slice order is the
// randomized map order.
func appendNoSort(m map[string]int) []string {
	var ks []string
	for k := range m { // want "never sorted afterwards"
		ks = append(ks, k)
	}
	return ks
}

// floatSum accumulates floats: addition order changes the low bits.
func floatSum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { // want "map iteration with order-dependent effects"
		sum += v
	}
	return sum
}

// sortedKeysIdiom is the blessed pattern: collect keys, sort, iterate.
func sortedKeysIdiom(m map[string]int) {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	for _, k := range ks {
		fmt.Println(k, m[k])
	}
}

// invert writes only through another map's index: order-insensitive.
func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// intCount increments integer accumulators: commutative.
func intCount(m map[string]int) (n, total int) {
	for _, v := range m {
		n++
		total += v
	}
	return n, total
}

// conditionalWrite keeps the allowlist through if/continue nesting.
func conditionalWrite(m map[string]int, keep map[string]bool) map[string]int {
	out := map[string]int{}
	for k, v := range m {
		if v == 0 {
			continue
		}
		if keep[k] {
			out[k] = v
		}
	}
	return out
}

// pruneEmpty deletes from another map: order-insensitive.
func pruneEmpty(index map[int][]int, dead map[int]bool) {
	for k := range dead {
		delete(index, k)
	}
}

// suppressed shows the escape hatch for a reviewed loop.
func suppressed(m map[string]int, out chan<- int) {
	//lint:ignore maprange consumer is an unordered set aggregator, reviewed
	for _, v := range m {
		out <- v
	}
}

// nestedOrderDependent: the outer loop body is an inner range over a map
// with an emission — the inner loop is flagged.
func nestedOrderDependent(mm map[string]map[string]int) {
	keys := make([]string, 0, len(mm))
	for k := range mm {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for k2, v := range mm[k] { // want "map iteration with order-dependent effects"
			fmt.Println(k2, v)
		}
	}
}
