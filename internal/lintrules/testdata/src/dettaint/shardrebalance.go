package dettaint

import (
	"math/rand"
	"time"
)

// Shard-runtime-shaped decision code: budget rebalancing is a replacement
// decision spread across shards, so clock- or rand-driven moves break
// whole-runtime checkpoint replay exactly like a nondeterministic eviction
// would.

type shardBudget struct {
	budget int
	pairs  int
}

// rebalanceByClock jitters the rebalance cadence off the wall clock.
func rebalanceByClock(shards []shardBudget) int {
	if time.Now().UnixNano()%2 == 0 { // want "time.Now in decision code"
		return 0
	}
	worst := 0
	for i, sh := range shards {
		if sh.pairs < shards[worst].pairs {
			worst = i
		}
	}
	return worst
}

// pickDonorByRand breaks benefit-rate ties with ambient randomness instead
// of the documented lowest-shard-ID rule.
func pickDonorByRand(shards []shardBudget) int {
	return rand.Intn(len(shards)) // want "global math/rand Intn in decision code"
}
