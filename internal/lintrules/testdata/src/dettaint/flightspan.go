// Flight-recorder flavor of the dettaint contract: span timestamps must come
// through the recorder's clock seam, never straight off the wall clock — the
// span brackets run inside Step, so the read sits on the decision path.
package dettaint

import (
	"time"

	"stochstream/internal/flightrec"
)

func stampSpanDirectly(rec *flightrec.Recorder) {
	a := rec.Begin(1)
	a.BeginNs = time.Now().UnixNano() // want "time.Now in decision code"
	rec.End(a)
}

// The recorder's clock seam is the sanctioned path: callers draw timestamps
// from whatever clock the recorder was pinned to (logical in tests), so
// nothing here reads ambient time.
func stampThroughSeam(rec *flightrec.Recorder) {
	a := rec.Begin(2)
	a.BeginNs = rec.Clock()()
	rec.End(a)
}
