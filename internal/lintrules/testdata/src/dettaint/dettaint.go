// Package dettaint exercises the interprocedural nondeterminism-taint
// analyzer: direct sources (the old detsource behavior), taint arriving
// through helper packages, the internal/stats clean boundary, and
// root-level suppression killing propagation.
package dettaint

import (
	"math/rand"
	"time"

	"dettaint/util"
	"stochstream/internal/stats"
)

// Direct sources still report, as the syntactic detsource did.
func direct() int64 {
	return time.Now().UnixNano() // want "time.Now in decision code"
}

func directRand() int {
	return rand.Int() // want "global math/rand Int in decision code"
}

func viaNew() float64 {
	r := rand.New(rand.NewSource(1)) // want "rand.New in decision code"
	return r.Float64()
}

// INTERPROCEDURAL-ONLY: nothing in this function's source text mentions
// time or rand — the PR 3 syntactic detsource provably passes it — but the
// helper one package away reads the wall clock.
func viaHelper() int64 {
	return util.Stamp() // want "call to util.Stamp reaches a nondeterminism source"
}

// Two hops away is still caught: summaries compose bottom-up.
func viaTwoHops() int64 {
	return util.Indirect() // want "call to util.Indirect reaches a nondeterminism source"
}

// A same-package helper's source reports once, at the source (direct()
// above), not again at every caller.
func viaLocal() int64 { return direct() }

// The reasoned suppression at the root of util.Blessed kills the taint for
// its callers: no finding here.
func viaBlessed() int64 { return util.Blessed() }

// internal/stats is the blessed boundary: it owns ambient randomness, so
// calls into it are clean even though it uses math/rand/v2 internally.
func viaStats() float64 { return stats.NewRNG(42).Float64() }
