// Package util is the dettaint corpus's helper package: its functions read
// the wall clock so that callers in the checked package inherit the taint
// across the package boundary.
package util

import "time"

// Stamp reads the wall clock directly.
func Stamp() int64 { return time.Now().UnixNano() }

// Indirect adds one more hop between the caller and the clock.
func Indirect() int64 { return Stamp() }

// Blessed reads the clock under a reasoned suppression: the taint is
// killed at the root, for every transitive caller.
func Blessed() int64 {
	//lint:ignore dettaint corpus: value feeds a log line, never a decision
	return time.Now().UnixNano()
}
