// Package src supplies the arrival-ordered helper of the mergedet corpus.
package src

// Pair carries sequence numbers like the runtime's merged records.
type Pair struct {
	RSeq int
	SSeq int
}

// Collect drains the channel in arrival order and returns the accumulation
// unsorted — callers relaying this result emit scheduling order.
func Collect(ch chan Pair) []Pair {
	var out []Pair
	for p := range ch {
		out = append(out, p)
	}
	return out
}
