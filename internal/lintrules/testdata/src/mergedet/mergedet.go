// Package mergedet is the seeded-violation corpus for the merge-order
// determinism analyzer: merged results that escape in channel-receive
// (arrival) order — returned directly, via a helper one package away, or
// stored into a field — against the clean shapes (seq-sorted before the
// sink, directly or through a sortPairs-style helper).
package mergedet

import (
	"sort"

	"mergedet/src"
)

// Pair mirrors the runtime's merged emission record: sequence numbers plus
// a payload.
type Pair struct {
	RSeq int
	SSeq int
	Val  string
}

// Returning the receive loop's accumulation unsorted emits in scheduling
// order: whichever shard finished first.
func MergeBad(ch chan Pair) []Pair {
	var out []Pair
	for p := range ch {
		out = append(out, p)
	}
	return out // want "merged result returned in arrival order"
}

// Sorting by the sequence numbers before returning pins the order to the
// ingress, not the scheduler.
func MergeGood(ch chan Pair) []Pair {
	var out []Pair
	for p := range ch {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].RSeq != out[j].RSeq {
			return out[i].RSeq < out[j].RSeq
		}
		return out[i].SSeq < out[j].SSeq
	})
	return out
}

// Sorting by a non-seq field does not fix the order: equal payloads keep
// their arrival order, which is still scheduling-dependent.
func MergeWrongKey(ch chan Pair) []Pair {
	var out []Pair
	for p := range ch {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Val < out[j].Val })
	return out // want "merged result returned in arrival order"
}

// mergeKey and sortPairs are the runtime's idiom: a seq-only comparator in
// a helper, applied to the slice parameter.
func mergeKey(a, b Pair) bool {
	if a.RSeq != b.RSeq {
		return a.RSeq < b.RSeq
	}
	return a.SSeq < b.SSeq
}

func sortPairs(ps []Pair) {
	sort.Slice(ps, func(i, j int) bool { return mergeKey(ps[i], ps[j]) })
}

// The sort arriving through the helper still sanitizes: the summary says
// sortPairs seq-sorts its parameter.
func MergeViaHelper(ch chan Pair) []Pair {
	var out []Pair
	for p := range ch {
		out = append(out, p)
	}
	sortPairs(out)
	return out
}

// INTERPROCEDURAL-ONLY: src.Collect returns its receive loop's
// accumulation unsorted, so relaying its result emits arrival order even
// though no receive appears in this function's source text.
func Relay(ch chan src.Pair) []src.Pair {
	return src.Collect(ch) // want "merged result returned in arrival order"
}

// Agg persists merged pairs across calls.
type Agg struct {
	pairs []Pair
}

// Storing the arrival-ordered slice into a field is the same escape as
// returning it: the next reader sees scheduling order.
func (a *Agg) Fill(ch chan Pair) {
	var out []Pair
	for p := range ch {
		out = append(out, p)
	}
	a.pairs = out // want "merged result stored in arrival order"
}

// Sorting before the store is clean.
func (a *Agg) FillSorted(ch chan Pair) {
	var out []Pair
	for p := range ch {
		out = append(out, p)
	}
	sortPairs(out)
	a.pairs = out
}
