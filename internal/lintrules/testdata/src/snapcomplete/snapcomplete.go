// Package snapcomplete is the serialization-completeness corpus: a
// snapshotter whose persistent/encoded/restored sets disagree in every way
// the analyzer distinguishes, with both the operational writes and the
// codec reads hidden behind helper chains (interprocedural-only), plus an
// ordered-codec pair, a gob pair, and a wire-schema struct.
package snapcomplete

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
)

type Counter struct {
	Count int // want "persistent field Count of Counter is written by snapcomplete.bump but never captured"
	Total int
	Extra int   // want "field Extra of Counter is captured by .* but never touched"
	Ghost int   // want "field Ghost of Counter is restored by .* but never captured"
	memo  []int //lint:ignore snapcomplete derived: Grow rebuilds memo from Total on demand
}

func NewCounter() *Counter { return &Counter{Total: 1} }

// The operational write of Count sits two helper hops below the exported
// method — invisible to any single-function analysis.
func (c *Counter) Touch(v int)     { applyDelta(c, v) }
func applyDelta(c *Counter, v int) { bump(c, v) }
func bump(c *Counter, v int)       { c.Count += v }

func (c *Counter) Add(v int) { c.Total += v }
func (c *Counter) Grow()     { c.memo = append(c.memo, c.Total) }

// The codec pair delegates both directions, so the encoded and restored
// sets are interprocedural too.
func (c *Counter) SnapshotState() ([]byte, error) { return encodeBody(c), nil }
func encodeBody(c *Counter) []byte                { return []byte{byte(c.Total), byte(c.Extra)} }

func (c *Counter) RestoreState(b []byte) error { decodeBody(c, b); return nil }
func decodeBody(c *Counter, b []byte) {
	c.Total = int(b[0])
	c.Ghost = int(b[1])
}

// pairCodec is an ordered (encoding/binary) codec whose decoder reads the
// fields back in the wrong order.
type pairCodec struct {
	a uint32
	b uint32
}

func (p *pairCodec) MarshalBinary() ([]byte, error) {
	var out []byte
	out = binary.BigEndian.AppendUint32(out, p.a)
	out = binary.BigEndian.AppendUint32(out, p.b)
	return out, nil
}

func (p *pairCodec) UnmarshalBinary(data []byte) error { // want "field b of pairCodec is decoded out of order"
	p.b = binary.BigEndian.Uint32(data[4:8])
	p.a = binary.BigEndian.Uint32(data[0:4])
	return nil
}

// gobCodec encodes fields in a different order than it decodes them, which
// is fine: gob streams are self-describing, so the order contract must not
// apply.
type gobCodec struct {
	x, y int
}

func (g *gobCodec) SnapshotState() ([]byte, error) {
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	_ = enc.Encode(g.y)
	_ = enc.Encode(g.x)
	return buf.Bytes(), nil
}

func (g *gobCodec) RestoreState(b []byte) error {
	dec := gob.NewDecoder(bytes.NewReader(b))
	_ = dec.Decode(&g.x)
	_ = dec.Decode(&g.y)
	return nil
}

// blobWire is a wire-schema struct with one field each side of the codec
// silently drops.
type blobWire struct {
	Keep  int
	Lost  int // want "populated on encode but never read back"
	Stale int // want "read on decode but never populated"
}

func packBlob(k, l int) blobWire       { return blobWire{Keep: k, Lost: l} }
func unpackBlob(w blobWire) (int, int) { return w.Keep, w.Stale }
