// Package detsource is the seeded-violation corpus for the detsource
// analyzer: wall-clock reads and math/rand in decision code.
package detsource

import (
	"math/rand"
	randv2 "math/rand/v2"
	"time"
)

func clockReads() (int64, time.Duration, time.Duration) {
	start := time.Now()              // want "time.Now in decision package"
	since := time.Since(start)       // want "time.Since in decision package"
	until := time.Until(start)       // want "time.Until in decision package"
	return start.UnixNano(), since, until
}

func clockSafe() time.Duration {
	// Constructing durations and parsing are deterministic: not flagged.
	d := 3 * time.Second
	t, _ := time.Parse(time.RFC3339, "2005-06-14T00:00:00Z")
	return d + t.Sub(t)
}

func suppressed() time.Time {
	//lint:ignore detsource telemetry-only timing, never feeds a decision
	return time.Now()
}

func globalRand() (int, float64) {
	a := rand.Int()                      // want "global math/rand Int"
	b := randv2.Float64()                // want "global math/rand Float64"
	rand.Seed(42)                        // want "global math/rand Seed"
	randv2.Shuffle(1, func(i, j int) {}) // want "global math/rand Shuffle"
	return a, b
}

func adHocRNG() *rand.Rand {
	// Even a seeded source is forbidden: randomness must thread through
	// internal/stats so experiment seeds split deterministically.
	return rand.New(rand.NewSource(7)) // want "rand.New in decision package"
}

func typesAreFine(r *rand.Rand, s randv2.Source) int {
	// Mentioning rand types (e.g. accepting an injected generator) is not a
	// use of the global source.
	if r == nil || s == nil {
		return 0
	}
	return r.Int()
}
