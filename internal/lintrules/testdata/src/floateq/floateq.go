// Package floateq is the seeded-violation corpus for the floateq analyzer:
// exact equality on floating-point operands.
package floateq

import "math"

type score float64

func compare(a, b float64) (bool, bool) {
	eq := a == b  // want "floating-point == comparison"
	ne := a != b  // want "floating-point != comparison"
	return eq, ne
}

func namedFloat(a, b score) bool {
	return a == b // want "floating-point == comparison"
}

func complexEq(a, b complex128) bool {
	return a == b // want "floating-point == comparison"
}

func constantNonZero(x float64) bool {
	return x == 0.1 // want "floating-point == comparison"
}

func zeroSentinel(x float64) (bool, bool) {
	// Exact-zero comparisons are sentinel/emptiness checks: exempt.
	return x == 0, x != 0.0
}

func nanCheck(x float64) bool {
	return x != x // the canonical NaN test: exempt
}

func epsilonHelper(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9 // the blessed form: not a ==/!= at all
}

func intsAreFine(a, b int) bool {
	return a == b
}

func documentedExact(a, b float64) bool {
	//lint:ignore floateq both sides are the same memoized kernel output, bitwise equality is the contract
	return a == b
}
