// Package fingerprintcover is the config-fingerprint coverage corpus. The
// fingerprint covers Seed only through a helper, and the runtime reads Band
// only through a two-hop helper chain — a syntactic look at any single
// function would either flag Seed falsely or miss Band entirely; only the
// transitive closure separates them.
package fingerprintcover

type Config struct {
	CacheSize  int
	Window     int
	Seed       uint64
	Band       int // want "config field Band is read on the runtime path .fingerprintcover.bandOf. but never folded"
	QueueDepth int //lint:ignore fingerprintcover capacity knob: affects throughput, never which tuple is evicted
	unused     int
}

type Runtime struct {
	cfg Config
}

func New(cfg Config) *Runtime { return &Runtime{cfg: cfg} }

func (r *Runtime) fingerprint() (int, int, uint64) {
	return r.cfg.CacheSize, r.cfg.Window, mixSeed(&r.cfg)
}

func mixSeed(c *Config) uint64 { return c.Seed * 0x9e3779b9 }

func (r *Runtime) Step(k int) int  { return r.place(k) }
func (r *Runtime) place(k int) int { return bandOf(&r.cfg, k) }
func bandOf(c *Config, k int) int  { return k % c.Band }

func (r *Runtime) lanes() int { return r.cfg.QueueDepth }
