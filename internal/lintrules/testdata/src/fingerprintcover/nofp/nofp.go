// Package nofp declares a Config the runtime reads but provides no
// fingerprint function at all: checkpoints taken here can never detect a
// config mismatch.
package nofp

type Config struct { // want "declares a Config but no fingerprint function"
	Size int
}

func Use(c Config) int { return c.Size }
