package lintrules

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"stochstream/internal/lintrules/analysis"
	"stochstream/internal/lintrules/dataflow"
)

// Wirexhaustive enforces protocol exhaustiveness over the daemon's wire
// contract. The wire package's frame-type and error-code constants ARE the
// protocol; the classic rot is asymmetric evolution — a new frame type the
// daemon emits but the client's dispatch never cases, an error code the
// server can send that the client decodes to a generic error, or a raw
// 0x03 literal in endpoint code that silently diverges when the constant
// table is renumbered. Three checks:
//
//   - endpoint coverage: for every package that engages a wire constant
//     group at all (directly or through any call chain — reaching the wire
//     package's own code↔error translators counts), every constant of that
//     group must be reachable from the package's code. A client that can
//     never produce a given sentinel, or a daemon switch that can never see
//     a frame type, surfaces here.
//   - code↔sentinel bijectivity, inside the wire package: the code→error
//     decoder switch must carry an explicit case for every code constant,
//     no two codes may map to the same sentinel, and the error→code
//     encoder must agree with the decoder in reverse (the encoder's
//     default-returned code counts as the implicit mapping for the
//     decoder's sentinel of that code).
//   - no raw protocol literals outside the wire package: an integer
//     literal used as a case label beside wire constants, passed as a
//     wire function's typ/code parameter, assigned to a Code/Type field of
//     a wire struct, or compared against one, must be the named constant.
//
// Constant groups are discovered by convention: package-level integer
// constants named Type<X> / Code<X> in a package named "wire". Mentions
// inside _test.go files do not count (the loader excludes them) — protocol
// tests exercising raw bytes stay free.
const wirexhaustiveName = "wirexhaustive"

var Wirexhaustive = &analysis.Analyzer{
	Name: wirexhaustiveName,
	Doc:  "wire frame-type and error-code constants must be handled exhaustively at both endpoints",
	Run:  runWirexhaustive,
}

// wireGroup is one protocol constant group of a wire package.
type wireGroup struct {
	kind   string // "frame type" or "error code"
	pkg    *types.Package
	consts []*types.Const // name order
	set    map[*types.Const]bool
}

var wireGroupPrefixes = []struct{ prefix, kind string }{
	{"Type", "frame type"},
	{"Code", "error code"},
}

// wireGroupsOf discovers the protocol constant groups of every wire-named
// package in the program, and the union index of their constants.
func wireGroupsOf(prog *dataflow.Program) ([]*wireGroup, map[*types.Const]*wireGroup) {
	var groups []*wireGroup
	index := map[*types.Const]*wireGroup{}
	for _, pkg := range prog.Pkgs {
		if pkg.Types.Name() != "wire" {
			continue
		}
		scope := pkg.Types.Scope()
		for _, pk := range wireGroupPrefixes {
			g := &wireGroup{kind: pk.kind, pkg: pkg.Types, set: map[*types.Const]bool{}}
			for _, name := range scope.Names() {
				rest, ok := strings.CutPrefix(name, pk.prefix)
				if !ok || rest == "" || rest[0] < 'A' || rest[0] > 'Z' {
					continue
				}
				c, ok := scope.Lookup(name).(*types.Const)
				if !ok {
					continue
				}
				if b, ok := c.Type().Underlying().(*types.Basic); !ok || b.Info()&types.IsInteger == 0 {
					continue
				}
				g.consts = append(g.consts, c)
				g.set[c] = true
			}
			if len(g.consts) >= 2 {
				groups = append(groups, g)
				for c := range g.set {
					index[c] = g
				}
			}
		}
	}
	return groups, index
}

// wireMentionFact is one function's transitive set of wire-group constants.
type wireMentionFact map[*types.Const]bool

func wireMentionEq(a, b interface{}) bool {
	x, _ := a.(wireMentionFact)
	y, _ := b.(wireMentionFact)
	if len(x) != len(y) {
		return false
	}
	for c := range x {
		if !y[c] {
			return false
		}
	}
	return true
}

// wireDirectMentions scans one function body for uses of wire-group
// constants, in source order.
func wireDirectMentions(f *dataflow.Func, index map[*types.Const]*wireGroup) []*types.Const {
	var out []*types.Const
	ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if c, ok := f.Pkg.Info.Uses[id].(*types.Const); ok && index[c] != nil {
			out = append(out, c)
		}
		return true
	})
	return out
}

func wireMentionFacts(prog *dataflow.Program, index map[*types.Const]*wireGroup) *dataflow.FactStore {
	transfer := func(f *dataflow.Func, store *dataflow.FactStore) interface{} {
		sum := wireMentionFact{}
		for _, c := range wireDirectMentions(f, index) {
			sum[c] = true
		}
		for _, call := range f.Calls {
			if sub, _ := store.Get(call.StaticObj).(wireMentionFact); sub != nil {
				for c := range sub {
					sum[c] = true
				}
			}
		}
		return sum
	}
	return prog.Facts("wirementions", transfer, wireMentionEq)
}

func runWirexhaustive(pass *analysis.Pass) (interface{}, error) {
	prog, _ := pass.Facts.(*dataflow.Program)
	if prog == nil {
		return nil, nil
	}
	groups, index := wireGroupsOf(prog)
	if len(groups) == 0 {
		return nil, nil
	}
	if pass.Pkg.Name() == "wire" {
		checkWireBijectivity(pass, prog, groups)
		return nil, nil
	}
	checkEndpointCoverage(pass, prog, groups, index)
	checkRawWireLiterals(pass, prog, index)
	return nil, nil
}

// checkEndpointCoverage reports wire constants a participating endpoint
// package can never reach.
func checkEndpointCoverage(pass *analysis.Pass, prog *dataflow.Program, groups []*wireGroup, index map[*types.Const]*wireGroup) {
	store := wireMentionFacts(prog, index)
	funcs := prog.FuncsOf(pass.Pkg.Path())

	for _, g := range groups {
		if g.pkg == pass.Pkg {
			continue
		}
		reached := map[*types.Const]bool{}
		var firstDirect, firstTransitive token.Pos
		for _, f := range funcs {
			sum, _ := store.Get(f.Obj).(wireMentionFact)
			engaged := false
			for c := range sum {
				if g.set[c] {
					reached[c] = true
					engaged = true
				}
			}
			if engaged && !firstTransitive.IsValid() {
				firstTransitive = f.Decl.Pos()
			}
			if !firstDirect.IsValid() {
				for _, c := range wireDirectMentions(f, index) {
					if g.set[c] {
						firstDirect = f.Decl.Pos()
						break
					}
				}
			}
		}
		anchor := firstDirect
		if !anchor.IsValid() {
			anchor = firstTransitive
		}
		if len(reached) == 0 {
			continue // this package does not speak this group at all
		}
		for _, c := range g.consts {
			if !reached[c] {
				pass.Reportf(anchor,
					"package %s handles %ss but can never reach %s (%s): a peer sending it falls into the generic path; every protocol constant must be handled at both endpoints",
					pass.Pkg.Name(), g.kind, c.Name(), g.pkg.Path())
			}
		}
	}
}

// wireSwitchMaps extracts the code→sentinel map of a decoder switch
// (`switch code { case CodeX: return ErrY }`) and the sentinel→code map
// plus default code of an encoder switch
// (`switch { case errors.Is(err, ErrY): return CodeX; default: return CodeD }`).
type wireCodecMaps struct {
	decoder     map[*types.Const]*types.Var // explicit case → returned sentinel (nil if opaque)
	hasDecoder  bool
	encoder     map[*types.Var]*types.Const
	defaultCode *types.Const
}

func collectWireCodecs(prog *dataflow.Program, pkg *types.Package, g *wireGroup) *wireCodecMaps {
	m := &wireCodecMaps{
		decoder: map[*types.Const]*types.Var{},
		encoder: map[*types.Var]*types.Const{},
	}
	constOf := func(info *types.Info, e ast.Expr) *types.Const {
		switch x := e.(type) {
		case *ast.Ident:
			c, _ := info.Uses[x].(*types.Const)
			return c
		case *ast.SelectorExpr:
			c, _ := info.Uses[x.Sel].(*types.Const)
			return c
		}
		return nil
	}
	sentinelOf := func(info *types.Info, e ast.Expr) *types.Var {
		switch x := e.(type) {
		case *ast.Ident:
			if v, ok := info.Uses[x].(*types.Var); ok && v.Parent() != nil && !v.IsField() {
				return v
			}
		case *ast.SelectorExpr:
			if v, ok := info.Uses[x.Sel].(*types.Var); ok && !v.IsField() {
				return v
			}
		}
		return nil
	}
	returnedExpr := func(body []ast.Stmt) ast.Expr {
		if len(body) != 1 {
			return nil
		}
		ret, ok := body[0].(*ast.ReturnStmt)
		if !ok || len(ret.Results) != 1 {
			return nil
		}
		return ret.Results[0]
	}
	for _, f := range prog.FuncsOf(pkg.Path()) {
		info := f.Pkg.Info
		ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok {
				return true
			}
			if sw.Tag != nil {
				// Candidate decoder: group constants as case labels.
				hits := 0
				for _, stmt := range sw.Body.List {
					cc := stmt.(*ast.CaseClause)
					for _, e := range cc.List {
						if c := constOf(info, e); c != nil && g.set[c] {
							hits++
						}
					}
				}
				if hits < 2 {
					return true
				}
				m.hasDecoder = true
				for _, stmt := range sw.Body.List {
					cc := stmt.(*ast.CaseClause)
					for _, e := range cc.List {
						c := constOf(info, e)
						if c == nil || !g.set[c] {
							continue
						}
						m.decoder[c] = sentinelOf(info, returnedExpr(cc.Body))
					}
				}
				return true
			}
			// Candidate encoder: tagless switch of errors.Is(err, ErrX)
			// cases returning group constants.
			for _, stmt := range sw.Body.List {
				cc := stmt.(*ast.CaseClause)
				code := constOf(info, returnedExpr(cc.Body))
				if code == nil || !g.set[code] {
					continue
				}
				if cc.List == nil {
					m.defaultCode = code
					continue
				}
				for _, e := range cc.List {
					call, ok := e.(*ast.CallExpr)
					if !ok || len(call.Args) != 2 {
						continue
					}
					if fn := dataflow.CalleeObj(info, call); fn == nil || fn.Name() != "Is" {
						continue
					}
					if s := sentinelOf(info, call.Args[1]); s != nil {
						m.encoder[s] = code
					}
				}
			}
			return true
		})
	}
	return m
}

// checkWireBijectivity verifies, inside the wire package itself, that the
// code↔sentinel translators form a bijection over the code constants.
func checkWireBijectivity(pass *analysis.Pass, prog *dataflow.Program, groups []*wireGroup) {
	for _, g := range groups {
		if g.pkg != pass.Pkg || g.kind != "error code" {
			continue
		}
		m := collectWireCodecs(prog, pass.Pkg, g)
		if !m.hasDecoder {
			continue
		}
		bySentinel := map[*types.Var]*types.Const{}
		for _, c := range g.consts {
			sent, explicit := m.decoder[c]
			if !explicit {
				pass.Reportf(c.Pos(),
					"error code %s has no explicit case in the code→error decoder: the peer rebuilds it as an anonymous error and errors.Is can never match a sentinel; map it explicitly",
					c.Name())
				continue
			}
			if sent == nil {
				continue // explicitly handled, but not via a sentinel — out of the bijection
			}
			if prev := bySentinel[sent]; prev != nil {
				pass.Reportf(c.Pos(),
					"error codes %s and %s both decode to sentinel %s: the code↔sentinel mapping must be injective",
					prev.Name(), c.Name(), sent.Name())
				continue
			}
			bySentinel[sent] = c
			if back, ok := m.encoder[sent]; ok {
				if back != c {
					pass.Reportf(c.Pos(),
						"code %s decodes to sentinel %s but the error→code encoder maps %s back to %s: encode and decode must agree",
						c.Name(), sent.Name(), sent.Name(), back.Name())
				}
			} else if m.defaultCode != c {
				pass.Reportf(c.Pos(),
					"code %s decodes to sentinel %s but the error→code encoder never maps %s to any code: encode and decode must agree",
					c.Name(), sent.Name(), sent.Name())
			}
		}
	}
}

// checkRawWireLiterals flags integer literals standing in for wire
// constants outside the wire package.
func checkRawWireLiterals(pass *analysis.Pass, prog *dataflow.Program, index map[*types.Const]*wireGroup) {
	wirePkgs := map[*types.Package]bool{}
	for _, g := range index {
		wirePkgs[g.pkg] = true
	}
	isWireField := func(info *types.Info, sel *ast.SelectorExpr) (string, bool) {
		s := info.Selections[sel]
		if s == nil || s.Kind() != types.FieldVal {
			return "", false
		}
		fld, ok := s.Obj().(*types.Var)
		if !ok || fld.Pkg() == nil || !wirePkgs[fld.Pkg()] {
			return "", false
		}
		if fld.Name() != "Code" && fld.Name() != "Type" {
			return "", false
		}
		return fld.Name(), true
	}
	intLit := func(e ast.Expr) *ast.BasicLit {
		lit, ok := e.(*ast.BasicLit)
		if !ok || lit.Kind != token.INT {
			return nil
		}
		return lit
	}
	report := func(lit *ast.BasicLit, what string) {
		pass.Reportf(lit.Pos(),
			"raw %s literal %s outside the wire package: use the named wire constant — the constant table is the protocol contract",
			what, lit.Value)
	}
	for _, f := range prog.FuncsOf(pass.Pkg.Path()) {
		info := f.Pkg.Info
		ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.SwitchStmt:
				// A literal case label beside wire-constant labels.
				var g *wireGroup
				for _, stmt := range x.Body.List {
					for _, e := range stmt.(*ast.CaseClause).List {
						if id, ok := unparenExpr(e).(*ast.Ident); ok {
							if c, ok := info.Uses[id].(*types.Const); ok && index[c] != nil {
								g = index[c]
							}
						}
						if sel, ok := unparenExpr(e).(*ast.SelectorExpr); ok {
							if c, ok := info.Uses[sel.Sel].(*types.Const); ok && index[c] != nil {
								g = index[c]
							}
						}
					}
				}
				if g == nil {
					return true
				}
				for _, stmt := range x.Body.List {
					for _, e := range stmt.(*ast.CaseClause).List {
						if lit := intLit(unparenExpr(e)); lit != nil {
							report(lit, g.kind)
						}
					}
				}
			case *ast.CallExpr:
				// A literal passed as a wire function's typ/code parameter.
				fn := dataflow.CalleeObj(info, x)
				if fn == nil || fn.Pkg() == nil || !wirePkgs[fn.Pkg()] {
					return true
				}
				params := fn.Signature().Params()
				for i, arg := range x.Args {
					if i >= params.Len() {
						break
					}
					name := params.At(i).Name()
					if name != "typ" && name != "code" {
						continue
					}
					if lit := intLit(unparenExpr(arg)); lit != nil {
						if name == "typ" {
							report(lit, "frame type")
						} else {
							report(lit, "error code")
						}
					}
				}
			case *ast.CompositeLit:
				// A literal assigned to a wire struct's Code/Type field.
				for _, el := range x.Elts {
					kv, ok := el.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					id, ok := kv.Key.(*ast.Ident)
					if !ok || (id.Name != "Code" && id.Name != "Type") {
						continue
					}
					fld, ok := info.Uses[id].(*types.Var)
					if !ok || fld.Pkg() == nil || !wirePkgs[fld.Pkg()] {
						continue
					}
					if lit := intLit(unparenExpr(kv.Value)); lit != nil {
						report(lit, strings.ToLower(id.Name)+" field")
					}
				}
			case *ast.BinaryExpr:
				// A literal compared against a wire struct's Code/Type field.
				if x.Op != token.EQL && x.Op != token.NEQ {
					return true
				}
				sides := []struct{ sel, lit ast.Expr }{{x.X, x.Y}, {x.Y, x.X}}
				for _, s := range sides {
					sel, ok := unparenExpr(s.sel).(*ast.SelectorExpr)
					if !ok {
						continue
					}
					if name, ok := isWireField(info, sel); ok {
						if lit := intLit(unparenExpr(s.lit)); lit != nil {
							report(lit, strings.ToLower(name)+" field comparison")
						}
					}
				}
			}
			return true
		})
	}
}
