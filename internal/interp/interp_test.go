package interp

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplineInterpolatesKnotsExactly(t *testing.T) {
	xs := []float64{0, 1, 2.5, 4, 7}
	ys := []float64{1, -2, 0, 5, 3}
	s, err := NewSpline(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if got := s.At(xs[i]); math.Abs(got-ys[i]) > 1e-12 {
			t.Fatalf("At(knot %v) = %v, want %v", xs[i], got, ys[i])
		}
	}
}

func TestSplineReproducesLine(t *testing.T) {
	// A cubic spline through samples of a line is the line itself.
	xs := Linspace(0, 10, 6)
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3*x - 2
	}
	s, err := NewSpline(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	for x := 0.0; x <= 10; x += 0.37 {
		if got := s.At(x); math.Abs(got-(3*x-2)) > 1e-9 {
			t.Fatalf("At(%v) = %v, want %v", x, got, 3*x-2)
		}
	}
}

func TestSplineTwoPointsIsLinear(t *testing.T) {
	s, err := NewSpline([]float64{0, 2}, []float64{1, 5})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.At(1); math.Abs(got-3) > 1e-12 {
		t.Fatalf("midpoint = %v, want 3", got)
	}
}

func TestSplineApproximatesSmoothFunction(t *testing.T) {
	xs := Linspace(0, math.Pi, 15)
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = math.Sin(x)
	}
	s, err := NewSpline(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	for x := 0.0; x <= math.Pi; x += 0.01 {
		if got := s.At(x); math.Abs(got-math.Sin(x)) > 1e-4 {
			t.Fatalf("At(%v) = %v, want sin = %v", x, got, math.Sin(x))
		}
	}
}

func TestSplineErrors(t *testing.T) {
	if _, err := NewSpline([]float64{0}, []float64{1}); err != ErrInsufficientPoints {
		t.Fatalf("single point: err = %v", err)
	}
	if _, err := NewSpline([]float64{0, 1}, []float64{1}); err == nil {
		t.Fatal("mismatched lengths should fail")
	}
	if _, err := NewSpline([]float64{0, 0}, []float64{1, 2}); err == nil {
		t.Fatal("non-increasing abscissae should fail")
	}
	if _, err := NewSpline([]float64{0, 2, 1}, []float64{1, 2, 3}); err == nil {
		t.Fatal("non-monotone abscissae should fail")
	}
}

func TestSplineExtrapolationContinuity(t *testing.T) {
	s, _ := NewSpline([]float64{0, 1, 2}, []float64{0, 1, 4})
	in := s.At(2)
	out := s.At(2.0001)
	if math.Abs(in-out) > 0.01 {
		t.Fatalf("discontinuity at right boundary: %v vs %v", in, out)
	}
}

func TestGridInterpolatesControlPoints(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := []float64{0, 2, 4}
	z := [][]float64{
		{0, 1, 2, 3, 4},
		{1, 3, 5, 7, 9},
		{0, 0, 1, 0, 0},
	}
	g, err := NewGrid(xs, ys, z)
	if err != nil {
		t.Fatal(err)
	}
	for j, y := range ys {
		for i, x := range xs {
			if got := g.At(x, y); math.Abs(got-z[j][i]) > 1e-9 {
				t.Fatalf("At(%v,%v) = %v, want %v", x, y, got, z[j][i])
			}
		}
	}
}

func TestGridReproducesBilinearSurface(t *testing.T) {
	f := func(x, y float64) float64 { return 2*x - 3*y + 0.5*x*y + 1 }
	xs := Linspace(0, 4, 5)
	ys := Linspace(0, 4, 5)
	z := make([][]float64, len(ys))
	for j, y := range ys {
		z[j] = make([]float64, len(xs))
		for i, x := range xs {
			z[j][i] = f(x, y)
		}
	}
	g, err := NewGrid(xs, ys, z)
	if err != nil {
		t.Fatal(err)
	}
	maxErr, meanErr := g.MaxAbsError(f, 33, 33)
	if maxErr > 1e-9 {
		t.Fatalf("maxErr = %v for a bilinear surface", maxErr)
	}
	if meanErr > maxErr {
		t.Fatalf("meanErr %v > maxErr %v", meanErr, maxErr)
	}
}

func TestGridApproximatesGaussianBump(t *testing.T) {
	// A 5x5 control grid — the paper's 25 control points — should capture a
	// smooth bump to a few percent.
	f := func(x, y float64) float64 { return math.Exp(-(x*x + y*y) / 8) }
	xs := Linspace(-4, 4, 5)
	ys := Linspace(-4, 4, 5)
	z := make([][]float64, 5)
	for j, y := range ys {
		z[j] = make([]float64, 5)
		for i, x := range xs {
			z[j][i] = f(x, y)
		}
	}
	g, err := NewGrid(xs, ys, z)
	if err != nil {
		t.Fatal(err)
	}
	maxErr, _ := g.MaxAbsError(f, 41, 41)
	if maxErr > 0.08 {
		t.Fatalf("maxErr = %v, want < 0.08", maxErr)
	}
	// Denser control grids must not be worse.
	xs9 := Linspace(-4, 4, 9)
	ys9 := Linspace(-4, 4, 9)
	z9 := make([][]float64, 9)
	for j, y := range ys9 {
		z9[j] = make([]float64, 9)
		for i, x := range xs9 {
			z9[j][i] = f(x, y)
		}
	}
	g9, _ := NewGrid(xs9, ys9, z9)
	maxErr9, _ := g9.MaxAbsError(f, 41, 41)
	if maxErr9 > maxErr {
		t.Fatalf("9x9 grid error %v worse than 5x5 error %v", maxErr9, maxErr)
	}
}

func TestGridErrors(t *testing.T) {
	if _, err := NewGrid([]float64{0, 1}, []float64{0}, [][]float64{{1, 2}}); err != ErrInsufficientPoints {
		t.Fatalf("short ys: %v", err)
	}
	if _, err := NewGrid([]float64{0, 1}, []float64{0, 1}, [][]float64{{1, 2}}); err == nil {
		t.Fatal("row count mismatch should fail")
	}
	if _, err := NewGrid([]float64{0, 1}, []float64{0, 1}, [][]float64{{1, 2}, {1}}); err == nil {
		t.Fatal("row length mismatch should fail")
	}
}

func TestLinspace(t *testing.T) {
	got := Linspace(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("Linspace = %v", got)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Linspace(0,1,1) did not panic")
		}
	}()
	Linspace(0, 1, 1)
}

// Property: splines through random increasing knots hit every knot and stay
// finite between them.
func TestQuickSplineKnotInterpolation(t *testing.T) {
	f := func(seed int64, raw []float64) bool {
		if len(raw) < 2 {
			return true
		}
		if len(raw) > 12 {
			raw = raw[:12]
		}
		xs := make([]float64, len(raw))
		ys := make([]float64, len(raw))
		for i := range raw {
			xs[i] = float64(i) + math.Abs(math.Mod(raw[i], 0.5))
			ys[i] = math.Mod(raw[i], 100)
			if math.IsNaN(ys[i]) || math.IsInf(ys[i], 0) {
				ys[i] = 0
			}
		}
		s, err := NewSpline(xs, ys)
		if err != nil {
			return false
		}
		for i := range xs {
			if math.Abs(s.At(xs[i])-ys[i]) > 1e-6 {
				return false
			}
		}
		mid := s.At((xs[0] + xs[len(xs)-1]) / 2)
		return !math.IsNaN(mid) && !math.IsInf(mid, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestGridSectionMatchesAtOnKnots(t *testing.T) {
	xs := Linspace(0, 4, 5)
	ys := Linspace(0, 2, 3)
	z := [][]float64{
		{0, 1, 4, 9, 16},
		{1, 2, 5, 10, 17},
		{4, 5, 8, 13, 20},
	}
	g, err := NewGrid(xs, ys, z)
	if err != nil {
		t.Fatal(err)
	}
	for j, y := range ys {
		sec := g.Section(y)
		for i, x := range xs {
			if got := sec.At(x); math.Abs(got-z[j][i]) > 1e-9 {
				t.Fatalf("Section(%v).At(%v) = %v, want %v", y, x, got, z[j][i])
			}
		}
	}
	// Off-knot: the section tracks At to interpolation accuracy.
	sec := g.Section(0.7)
	for x := 0.0; x <= 4; x += 0.31 {
		if diff := math.Abs(sec.At(x) - g.At(x, 0.7)); diff > 0.05 {
			t.Fatalf("x=%v: section %v vs At %v", x, sec.At(x), g.At(x, 0.7))
		}
	}
}

func TestSplineSerializationRoundTrip(t *testing.T) {
	orig, err := NewSpline([]float64{0, 1, 3, 6}, []float64{2, -1, 4, 0})
	if err != nil {
		t.Fatal(err)
	}
	data, err := orig.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got Spline
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	for x := -0.5; x <= 6.5; x += 0.17 {
		if math.Abs(got.At(x)-orig.At(x)) > 1e-12 {
			t.Fatalf("At(%v) mismatch after round trip", x)
		}
	}
	if err := got.UnmarshalBinary([]byte{1, 2, 3}); err == nil {
		t.Fatal("garbage should fail")
	}
}

func TestGridSerializationRoundTrip(t *testing.T) {
	xs := Linspace(0, 3, 4)
	ys := Linspace(0, 2, 3)
	z := [][]float64{{1, 2, 3, 4}, {0, 1, 0, 1}, {5, 4, 3, 2}}
	orig, err := NewGrid(xs, ys, z)
	if err != nil {
		t.Fatal(err)
	}
	data, err := orig.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got Grid
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	for y := 0.0; y <= 2; y += 0.43 {
		for x := 0.0; x <= 3; x += 0.37 {
			if math.Abs(got.At(x, y)-orig.At(x, y)) > 1e-12 {
				t.Fatalf("At(%v,%v) mismatch after round trip", x, y)
			}
		}
	}
	if err := got.UnmarshalBinary(nil); err == nil {
		t.Fatal("empty payload should fail")
	}
}
