package interp

import (
	"bytes"
	"encoding/gob"
)

// The wire forms hold only the fitted data; second derivatives and row
// splines are refitted on load, so the encoding stays compact and version
// drift in solver internals cannot corrupt stored curves.

type splineWire struct {
	Xs, Ys []float64
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (s *Spline) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(splineWire{Xs: s.xs, Ys: s.ys})
	return buf.Bytes(), err
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (s *Spline) UnmarshalBinary(data []byte) error {
	var w splineWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return err
	}
	fitted, err := NewSpline(w.Xs, w.Ys)
	if err != nil {
		return err
	}
	*s = *fitted
	return nil
}

type gridWire struct {
	Xs, Ys []float64
	Z      [][]float64
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (g *Grid) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(gridWire{Xs: g.xs, Ys: g.ys, Z: g.rowVals})
	return buf.Bytes(), err
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (g *Grid) UnmarshalBinary(data []byte) error {
	var w gridWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return err
	}
	fitted, err := NewGrid(w.Xs, w.Ys, w.Z)
	if err != nil {
		return err
	}
	*g = *fitted
	return nil
}
