// Package interp provides the interpolation substrate for HEEB's
// precomputation technique (Theorem 5): natural cubic splines for the
// one-dimensional h1 curve of random walks with drift, and bicubic grid
// interpolation for the two-dimensional h2 surface of AR(1) streams, which
// the paper approximates with bicubic interpolation of 25 control points.
package interp

import (
	"errors"
	"fmt"
	"sort"
)

// ErrInsufficientPoints is returned when fewer control points are supplied
// than the interpolant needs.
var ErrInsufficientPoints = errors.New("interp: insufficient control points")

// Spline is a natural cubic spline through a set of strictly increasing
// control abscissae.
type Spline struct {
	xs []float64
	ys []float64
	m  []float64 // second derivatives at the knots
}

// NewSpline fits a natural cubic spline through (xs[i], ys[i]). The xs must
// be strictly increasing and there must be at least two points.
func NewSpline(xs, ys []float64) (*Spline, error) {
	n := len(xs)
	if n != len(ys) {
		return nil, fmt.Errorf("interp: %d abscissae but %d ordinates", n, len(ys))
	}
	if n < 2 {
		return nil, ErrInsufficientPoints
	}
	for i := 1; i < n; i++ {
		if xs[i] <= xs[i-1] {
			return nil, fmt.Errorf("interp: abscissae not strictly increasing at index %d", i)
		}
	}
	s := &Spline{
		xs: append([]float64(nil), xs...),
		ys: append([]float64(nil), ys...),
		m:  make([]float64, n),
	}
	if n == 2 {
		return s, nil // linear segment; second derivatives stay zero
	}
	// Solve the tridiagonal system for the natural spline's second
	// derivatives via the Thomas algorithm.
	a := make([]float64, n) // sub-diagonal
	b := make([]float64, n) // diagonal
	c := make([]float64, n) // super-diagonal
	d := make([]float64, n) // right-hand side
	b[0], b[n-1] = 1, 1
	for i := 1; i < n-1; i++ {
		hi0 := xs[i] - xs[i-1]
		hi1 := xs[i+1] - xs[i]
		a[i] = hi0
		b[i] = 2 * (hi0 + hi1)
		c[i] = hi1
		d[i] = 6 * ((ys[i+1]-ys[i])/hi1 - (ys[i]-ys[i-1])/hi0)
	}
	for i := 1; i < n; i++ {
		w := a[i] / b[i-1]
		b[i] -= w * c[i-1]
		d[i] -= w * d[i-1]
	}
	s.m[n-1] = d[n-1] / b[n-1]
	for i := n - 2; i >= 0; i-- {
		s.m[i] = (d[i] - c[i]*s.m[i+1]) / b[i]
	}
	return s, nil
}

// At evaluates the spline at x. Outside the knot range the boundary cubic
// segment is extrapolated.
func (s *Spline) At(x float64) float64 {
	n := len(s.xs)
	// Find the segment [xs[i], xs[i+1]] containing x.
	i := sort.SearchFloat64s(s.xs, x) - 1
	if i < 0 {
		i = 0
	}
	if i > n-2 {
		i = n - 2
	}
	h := s.xs[i+1] - s.xs[i]
	A := (s.xs[i+1] - x) / h
	B := (x - s.xs[i]) / h
	return A*s.ys[i] + B*s.ys[i+1] +
		((A*A*A-A)*s.m[i]+(B*B*B-B)*s.m[i+1])*h*h/6
}

// Grid is a two-dimensional surface z(x, y) interpolated over a rectangular
// grid of control points by repeated one-dimensional cubic splines (spline
// bicubic interpolation): a spline along x through each grid row, then a
// spline along y through the row values at the query x.
type Grid struct {
	xs, ys  []float64
	rows    []*Spline // one spline per y-row, over xs
	rowVals [][]float64
}

// NewGrid builds a bicubic interpolant over control values z[j][i] at
// (xs[i], ys[j]). Both coordinate slices must be strictly increasing with at
// least two entries each.
func NewGrid(xs, ys []float64, z [][]float64) (*Grid, error) {
	if len(ys) != len(z) {
		return nil, fmt.Errorf("interp: %d rows of values for %d y-coordinates", len(z), len(ys))
	}
	if len(xs) < 2 || len(ys) < 2 {
		return nil, ErrInsufficientPoints
	}
	g := &Grid{
		xs:      append([]float64(nil), xs...),
		ys:      append([]float64(nil), ys...),
		rows:    make([]*Spline, len(ys)),
		rowVals: make([][]float64, len(ys)),
	}
	for j, row := range z {
		if len(row) != len(xs) {
			return nil, fmt.Errorf("interp: row %d has %d values for %d x-coordinates", j, len(row), len(xs))
		}
		sp, err := NewSpline(xs, row)
		if err != nil {
			return nil, err
		}
		g.rows[j] = sp
		g.rowVals[j] = append([]float64(nil), row...)
	}
	return g, nil
}

// At evaluates the surface at (x, y).
func (g *Grid) At(x, y float64) float64 {
	col := make([]float64, len(g.ys))
	for j, sp := range g.rows {
		col[j] = sp.At(x)
	}
	sp, err := NewSpline(g.ys, col)
	if err != nil {
		// Unreachable: g.ys was validated at construction.
		panic(err)
	}
	return sp.At(y)
}

// Section returns the one-dimensional slice x ↦ z(x, y0) of the surface as
// a spline, built once so repeated queries at a fixed y cost O(log nx) each
// instead of rebuilding a column spline per call. The section interpolates
// column-major (a spline through each x-knot's column evaluated at y0, then
// a spline across x), which agrees with At exactly on the knot lattice and
// to interpolation accuracy elsewhere.
func (g *Grid) Section(y0 float64) *Spline {
	vals := make([]float64, len(g.xs))
	col := make([]float64, len(g.ys))
	for i := range g.xs {
		for j := range g.ys {
			col[j] = g.rowVals[j][i]
		}
		sp, err := NewSpline(g.ys, col)
		if err != nil {
			panic(err) // unreachable: validated at construction
		}
		vals[i] = sp.At(y0)
	}
	sp, err := NewSpline(g.xs, vals)
	if err != nil {
		panic(err)
	}
	return sp
}

// MaxAbsError evaluates the interpolant against a reference function on a
// dense lattice and returns the maximum and mean absolute errors. The
// Figure 16 experiment uses it to report approximation quality.
func (g *Grid) MaxAbsError(f func(x, y float64) float64, nx, ny int) (maxErr, meanErr float64) {
	x0, x1 := g.xs[0], g.xs[len(g.xs)-1]
	y0, y1 := g.ys[0], g.ys[len(g.ys)-1]
	var sum float64
	var count int
	for j := 0; j < ny; j++ {
		y := y0 + (y1-y0)*float64(j)/float64(ny-1)
		for i := 0; i < nx; i++ {
			x := x0 + (x1-x0)*float64(i)/float64(nx-1)
			e := g.At(x, y) - f(x, y)
			if e < 0 {
				e = -e
			}
			if e > maxErr {
				maxErr = e
			}
			sum += e
			count++
		}
	}
	return maxErr, sum / float64(count)
}

// Linspace returns n evenly spaced values covering [a, b] inclusive.
func Linspace(a, b float64, n int) []float64 {
	if n < 2 {
		panic("interp: Linspace requires n >= 2")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = a + (b-a)*float64(i)/float64(n-1)
	}
	return out
}
