package shardrt

import (
	"testing"

	"stochstream/internal/engine"
)

// skewKeys returns join keys that all route to the same shard, so every pair
// lands there and the other shards produce nothing.
func skewKeys(shards, want, n int) []int {
	var keys []int
	for k := 0; len(keys) < n; k++ {
		if ShardOf(k, shards) == want {
			keys = append(keys, k)
		}
	}
	return keys
}

// TestRebalanceSkewShiftsBudget: under a fully skewed workload the rebalancer
// moves budget from the idle shards to the hot one, the per-shard floor
// holds, and the total is conserved at every cycle.
func TestRebalanceSkewShiftsBudget(t *testing.T) {
	const (
		shards    = 4
		total     = 32
		minBudget = 2
	)
	hot := ShardOf(1, shards)
	keys := skewKeys(shards, hot, 8)
	rt, err := New(Config{
		Shards: shards, TotalCache: total, Seed: 13,
		RebalanceEvery: 2, RebalanceStep: 2, MinBudget: minBudget,
		Telemetry: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	start := rt.Budgets()[hot]
	for round := 0; round < 40; round++ {
		steps := make([]Step, 8)
		for i := range steps {
			k := keys[(round+i)%len(keys)]
			steps[i] = Step{R: engine.Tuple{Key: k}, S: engine.Tuple{Key: k}}
		}
		if _, err := rt.IngestBatch(steps); err != nil {
			t.Fatal(err)
		}
		// Floor and conservation hold after every batch, not just at the end.
		for i, b := range rt.Budgets() {
			if b < minBudget {
				t.Fatalf("round %d: shard %d budget %d below floor %d", round, i, b, minBudget)
			}
		}
		if err := rt.CheckInvariants(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}

	budgets := rt.Budgets()
	if budgets[hot] <= start {
		t.Fatalf("hot shard %d budget %d did not grow from %d under full skew (budgets %v)", hot, budgets[hot], start, budgets)
	}
	for i, b := range budgets {
		if i != hot && b != minBudget {
			t.Fatalf("idle shard %d holds budget %d, want drained to floor %d (budgets %v)", i, b, minBudget, budgets)
		}
	}
	m := rt.Metrics()
	if m.Rebalances == 0 {
		t.Fatal("no rebalance cycles recorded")
	}
	if got := rt.CoordinatorRegistry().Snapshot().Counters["shardrt_rebalance_moves_total"]; got == 0 {
		t.Fatal("coordinator counter shardrt_rebalance_moves_total stayed zero")
	}
	// The shard registries mirror the budget through the gauge.
	for i, b := range budgets {
		if g := rt.Registry(i).Snapshot().Gauges["shardrt_cache_budget"]; g != float64(b) {
			t.Fatalf("shard %d gauge %g, want %d", i, g, b)
		}
	}
}

// TestRebalanceDisabled: with RebalanceEvery 0 the even split never moves.
func TestRebalanceDisabled(t *testing.T) {
	rt, err := New(Config{Shards: 3, TotalCache: 12, Procs: trendProcs(), Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	ingestAll(t, rt, genSteps(4, 600), 50)
	want := []int{4, 4, 4}
	for i, b := range rt.Budgets() {
		if b != want[i] {
			t.Fatalf("budgets moved without a rebalancer: %v", rt.Budgets())
		}
	}
	if m := rt.Metrics(); m.Rebalances != 0 {
		t.Fatalf("recorded %d rebalances with rebalancing disabled", m.Rebalances)
	}
}
