package shardrt

import (
	"errors"
	"sort"
	"testing"

	"stochstream/internal/dist"
	"stochstream/internal/engine"
	"stochstream/internal/process"
	"stochstream/internal/stats"
)

func trendProcs() [2]process.Process {
	return [2]process.Process{
		&process.LinearTrend{Slope: 1, Intercept: -1, Noise: dist.BoundedNormal(2, 12)},
		&process.LinearTrend{Slope: 1, Intercept: 0, Noise: dist.BoundedNormal(3, 15)},
	}
}

// genSteps generates n global steps from the trend models with payloads that
// identify their origin, so unwrapping can be verified end to end.
func genSteps(seed uint64, n int) []Step {
	rng := stats.NewRNG(seed)
	procs := trendProcs()
	r := procs[0].Generate(rng.Split(), n)
	s := procs[1].Generate(rng.Split(), n)
	steps := make([]Step, n)
	for i := range steps {
		steps[i] = Step{
			R: engine.Tuple{Key: r[i], Payload: i * 2},
			S: engine.Tuple{Key: s[i], Payload: i*2 + 1},
		}
	}
	return steps
}

// ingestAll drives steps through the runtime in batches of batchSize and
// returns every emitted pair (copied), ending with a Flush.
func ingestAll(t *testing.T, rt *Runtime, steps []Step, batchSize int) []Pair {
	t.Helper()
	var out []Pair
	for lo := 0; lo < len(steps); lo += batchSize {
		hi := lo + batchSize
		if hi > len(steps) {
			hi = len(steps)
		}
		pairs, err := rt.IngestBatch(steps[lo:hi])
		if err != nil {
			t.Fatalf("IngestBatch[%d:%d): %v", lo, hi, err)
		}
		out = append(out, pairs...)
	}
	pairs, err := rt.Flush()
	if err != nil {
		t.Fatalf("Flush: %v", err)
	}
	return append(out, pairs...)
}

func TestConfigValidation(t *testing.T) {
	cases := []Config{
		{Shards: 0, TotalCache: 8},
		{Shards: 4, TotalCache: 3},               // below the 1-slot floor
		{Shards: 2, TotalCache: 8, MinBudget: 5}, // floor unsatisfiable
		{Shards: 2, TotalCache: 8, Window: -1},   // bad window
		{Shards: 2, TotalCache: 8, QueueDepth: -1},
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: config %+v should be rejected", i, cfg)
		}
	}
}

func TestBudgetSplit(t *testing.T) {
	rt, err := New(Config{Shards: 3, TotalCache: 11, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	want := []int{4, 4, 3} // 11 = 4+4+3, remainder to low shard IDs
	got := rt.Budgets()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("budgets %v, want %v", got, want)
		}
	}
	if err := rt.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestShardOfDeterministic pins the routing hash: stable values (a re-shard
// would silently invalidate every checkpoint), full range coverage, and
// NoValue never routed (it is filtered at ingress).
func TestShardOfDeterministic(t *testing.T) {
	pinned := map[int]int{ // key -> shard at Shards=8, pinned values
		0: 0, 1: ShardOf(1, 8), -5: ShardOf(-5, 8),
	}
	for k, want := range pinned {
		if got := ShardOf(k, 8); got != want {
			t.Fatalf("ShardOf(%d, 8) moved: %d -> %d", k, want, got)
		}
	}
	seen := map[int]bool{}
	for k := -500; k < 500; k++ {
		s := ShardOf(k, 4)
		if s < 0 || s >= 4 {
			t.Fatalf("ShardOf(%d, 4) = %d out of range", k, s)
		}
		seen[s] = true
	}
	if len(seen) != 4 {
		t.Fatalf("1000 consecutive keys hit only shards %v", seen)
	}
}

// TestMergeOrder pins the deterministic result merge against an
// independently computed oracle: with a budget big enough that nothing is
// ever evicted, the joined pairs and their (trigger, partner) sequence keys
// are computable by a quadratic scan over the raw streams. Every dispatch's
// returned slice must be strictly ascending in that key (the merge order),
// and the full run must produce exactly the oracle's pair set.
func TestMergeOrder(t *testing.T) {
	const n = 300
	rng := stats.NewRNG(77)
	steps := make([]Step, n)
	keys := make([][2]int, n)
	for i := range steps {
		rk, sk := rng.IntN(40), rng.IntN(40)
		keys[i] = [2]int{rk, sk}
		steps[i] = Step{R: engine.Tuple{Key: rk, Payload: i}, S: engine.Tuple{Key: sk, Payload: ^i}}
	}

	// Oracle pair set: arrivals join on key equality across streams, each
	// unordered pair once, keyed (trigger, partner) = (max, min) of the two
	// global sequence numbers — globally sorted.
	type want struct{ trigger, partner uint64 }
	var wants []want
	for i := 0; i < n; i++ {
		rseq, sseq := uint64(2*i), uint64(2*i+1)
		for p := 0; p < i; p++ {
			if keys[p][1] == keys[i][0] { // earlier S joins this R
				wants = append(wants, want{rseq, uint64(2*p + 1)})
			}
			if keys[p][0] == keys[i][1] { // earlier R joins this S
				wants = append(wants, want{sseq, uint64(2 * p)})
			}
		}
		if keys[i][0] == keys[i][1] {
			wants = append(wants, want{sseq, rseq})
		}
	}
	sort.Slice(wants, func(a, b int) bool {
		if wants[a].trigger != wants[b].trigger {
			return wants[a].trigger < wants[b].trigger
		}
		return wants[a].partner < wants[b].partner
	})

	for _, shards := range []int{1, 2, 4, 8} {
		// Every shard gets budget for the entire stream (arrivals plus any
		// drain padding), so nothing is ever evicted and the oracle's
		// no-eviction pair set is exact regardless of key skew.
		rt, err := New(Config{Shards: shards, TotalCache: shards * 3 * n, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		var got []Pair
		collect := func(pairs []Pair) {
			// The merge-order pin proper: each returned slice is strictly
			// ascending by (trigger, partner), so the order is total and
			// deterministic within every dispatch.
			for i := 1; i < len(pairs); i++ {
				ta, pa := mergeKey(pairs[i-1])
				tb, pb := mergeKey(pairs[i])
				if tb < ta || (tb == ta && pb <= pa) {
					t.Fatalf("shards=%d: merge order violated: (%d,%d) before (%d,%d)", shards, ta, pa, tb, pb)
				}
			}
			got = append(got, pairs...)
		}
		for lo := 0; lo < n; lo += 64 {
			hi := lo + 64
			if hi > n {
				hi = n
			}
			pairs, err := rt.IngestBatch(steps[lo:hi])
			if err != nil {
				t.Fatal(err)
			}
			collect(pairs)
		}
		pairs, err := rt.Flush()
		if err != nil {
			t.Fatal(err)
		}
		collect(pairs)
		rt.Close()

		if len(got) != len(wants) {
			t.Fatalf("shards=%d: %d pairs, oracle %d", shards, len(got), len(wants))
		}
		sort.Slice(got, func(a, b int) bool {
			ta, pa := mergeKey(got[a])
			tb, pb := mergeKey(got[b])
			if ta != tb {
				return ta < tb
			}
			return pa < pb
		})
		for i, p := range got {
			trig, part := mergeKey(p)
			if trig != wants[i].trigger || part != wants[i].partner {
				t.Fatalf("shards=%d pair %d: got (%d,%d), want (%d,%d)", shards, i, trig, part, wants[i].trigger, wants[i].partner)
			}
			if wantR := int(p.RSeq / 2); p.R.Payload.(int) != wantR {
				t.Fatalf("pair %d: R payload %v, want %d", i, p.R.Payload, wantR)
			}
			if wantS := ^int(p.SSeq / 2); p.S.Payload.(int) != wantS {
				t.Fatalf("pair %d: S payload %v, want %d", i, p.S.Payload, wantS)
			}
		}
	}
}

// TestDeterministicReplay: two identical runs are byte-identical in outputs
// and metrics, across batch sizes and with rebalancing enabled.
func TestDeterministicReplay(t *testing.T) {
	cfg := Config{
		Shards: 4, TotalCache: 64, Procs: trendProcs(), Seed: 9,
		RebalanceEvery: 3, MinBudget: 4,
	}
	steps := genSteps(31, 1500)
	run := func(batchSize int) ([]Pair, Metrics) {
		rt, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		out := append([]Pair(nil), ingestAll(t, rt, steps, batchSize)...)
		m := rt.Metrics()
		if _, err := rt.Close(); err != nil {
			t.Fatal(err)
		}
		return out, m
	}
	a, am := run(97)
	b, bm := run(97)
	if len(a) != len(b) {
		t.Fatalf("replay diverged: %d vs %d pairs", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at pair %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	if am.Ingested != bm.Ingested || am.Pairs != bm.Pairs || am.Rebalances != bm.Rebalances {
		t.Fatalf("replay metrics diverged: %+v vs %+v", am, bm)
	}
	for i := range am.Shards {
		if am.Shards[i] != bm.Shards[i] {
			t.Fatalf("shard %d metrics diverged: %+v vs %+v", i, am.Shards[i], bm.Shards[i])
		}
	}
}

// TestNoValueFiltered: NoValue arrivals are dropped at ingress — they can
// never join — so they occupy no lane slot and no cache budget, and the two
// real arrivals get paired into one shard step immediately.
func TestNoValueFiltered(t *testing.T) {
	rt, err := New(Config{Shards: 2, TotalCache: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	steps := []Step{
		{R: engine.Tuple{Key: process.NoValue}, S: engine.Tuple{Key: 1}},
		{R: engine.Tuple{Key: 1}, S: engine.Tuple{Key: process.NoValue}},
	}
	// Both key-1 arrivals route to one shard; its lanes pair them into a
	// single shard step, so the pair (trigger 2, partner 1) is emitted by
	// the ingest itself, flagged SameStep under the shard-local clock.
	out, err := rt.IngestBatch(steps)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].RSeq != 2 || out[0].SSeq != 1 || !out[0].SameStep {
		t.Fatalf("pairs %+v, want exactly the same-step (2,1) pair", out)
	}
	if tail, err := rt.Flush(); err != nil || len(tail) != 0 {
		t.Fatalf("flush: %v, %d pairs (want none)", err, len(tail))
	}
	m := rt.Metrics()
	if m.Ingested != 2 {
		t.Fatalf("ingested %d, want 2", m.Ingested)
	}
	// Only one shard ever stepped, and only once: NoValue ingress costs no
	// engine work at all.
	stepsTotal := 0
	for _, sm := range m.Shards {
		stepsTotal += sm.Engine.Steps
	}
	if stepsTotal != 1 {
		t.Fatalf("shards stepped %d times total, want 1", stepsTotal)
	}
	rt.Close()
}

// TestBadStepRejected: out-of-domain keys reject the batch atomically.
func TestBadStepRejected(t *testing.T) {
	rt, err := New(Config{Shards: 2, TotalCache: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	bad := []Step{
		{R: engine.Tuple{Key: 3}, S: engine.Tuple{Key: 4}},
		{R: engine.Tuple{Key: 5}, S: engine.Tuple{Key: engine.MaxKey + 1}},
	}
	if _, err := rt.IngestBatch(bad); !errors.Is(err, ErrBadStep) {
		t.Fatalf("err %v, want ErrBadStep", err)
	}
	if m := rt.Metrics(); m.Ingested != 0 {
		t.Fatalf("rejected batch mutated state: %+v", m)
	}
}

// TestClosedRuntime: every operation after Close answers ErrClosed, and
// Close drains carried lane tails so no routed arrival is lost.
func TestClosedRuntime(t *testing.T) {
	rt, err := New(Config{Shards: 2, TotalCache: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// One S then two Rs on key 3: the shard pairs the first R with the S,
	// and the second R (seq 4) sits in the R-lane tail until Close pads the
	// S side and drains it — joining the cached S (seq 1) on the way out.
	steps := []Step{
		{R: engine.Tuple{Key: process.NoValue}, S: engine.Tuple{Key: 3}},
		{R: engine.Tuple{Key: 3}, S: engine.Tuple{Key: process.NoValue}},
		{R: engine.Tuple{Key: 3}, S: engine.Tuple{Key: process.NoValue}},
	}
	ingested, err := rt.IngestBatch(steps)
	if err != nil {
		t.Fatal(err)
	}
	if len(ingested) != 1 {
		t.Fatalf("ingest emitted %d pairs, want 1", len(ingested))
	}
	out, err := rt.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].RSeq != 4 || out[0].SSeq != 1 {
		t.Fatalf("drain pairs %+v, want exactly the (4,1) pair", out)
	}
	if _, err := rt.IngestBatch(steps); !errors.Is(err, ErrClosed) {
		t.Fatalf("IngestBatch after Close: %v, want ErrClosed", err)
	}
	if _, err := rt.Flush(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Flush after Close: %v, want ErrClosed", err)
	}
	if _, err := rt.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("second Close: %v, want ErrClosed", err)
	}
}
