package shardrt

import (
	"stochstream/internal/engine"
)

// Tagged is the runtime's internal payload wrapper: every arrival is tagged
// with its global ingress sequence number before routing, so emitted pairs
// can be merged into one deterministic global order and hand the caller's
// original payload back. It is exported only because per-shard checkpoints
// gob-encode cached payloads; treat it as opaque.
type Tagged struct {
	Seq     uint64
	Payload interface{}
}

// ShardOf maps a join key to its shard with a Fibonacci-style multiplicative
// hash: platform-independent, deterministic, and scrambling enough that the
// trend workloads (keys drifting through a contiguous range) spread across
// shards instead of marching through them one at a time.
func ShardOf(key, shards int) int {
	if shards == 1 {
		return 0
	}
	h := uint64(int64(key)) * 0x9E3779B97F4A7C15
	h ^= h >> 32
	return int(h % uint64(shards))
}

// convertPair unwraps one engine pair into the runtime's result type: the
// Tagged payloads become the global sequence numbers plus the caller's
// payloads.
func convertPair(p engine.Pair, shard int) Pair {
	rt := p.R.Payload.(Tagged)
	st := p.S.Payload.(Tagged)
	return Pair{
		RSeq:     rt.Seq,
		SSeq:     st.Seq,
		R:        engine.Tuple{Key: p.R.Key, Payload: rt.Payload},
		S:        engine.Tuple{Key: p.S.Key, Payload: st.Payload},
		SameStep: p.SameTime,
		Shard:    shard,
	}
}
