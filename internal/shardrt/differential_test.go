package shardrt

import (
	"testing"

	"stochstream/internal/engine"
	"stochstream/internal/process"
)

// Per-shard differential harness: an independent reimplementation of the
// routing/batching layer (refRouter) feeds each shard-local stream to an
// engine.ReferenceJoin configured exactly like that shard's engine, and every
// batch must produce a byte-identical merged pair stream. Rebalancer Resize
// calls are mirrored onto the references at the same batch boundaries by
// observing the runtime's budgets, so the differential also covers mid-run
// budget moves.

// refRouter re-derives, from first principles, the shard-local synchronized
// steps the runtime's batcher produces: sequence tagging before NoValue
// filtering, hash routing, positional min-length lane pairing with carry, and
// NoValue padding on drain. It shares only ShardOf and the Tagged type with
// the runtime.
type refRouter struct {
	shards int
	lanes  [][2][]engine.Tuple
	seq    uint64
}

func newRefRouter(shards int) *refRouter {
	return &refRouter{shards: shards, lanes: make([][2][]engine.Tuple, shards)}
}

// route ingests a batch of global steps and returns each shard's batch of
// synchronized steps (empty slices for idle shards).
func (rr *refRouter) route(steps []Step, drain bool) [][]engine.TuplePair {
	for _, st := range steps {
		rseq, sseq := rr.seq, rr.seq+1
		rr.seq += 2
		if st.R.Key != process.NoValue {
			i := ShardOf(st.R.Key, rr.shards)
			rr.lanes[i][0] = append(rr.lanes[i][0], engine.Tuple{Key: st.R.Key, Payload: Tagged{Seq: rseq, Payload: st.R.Payload}})
		}
		if st.S.Key != process.NoValue {
			i := ShardOf(st.S.Key, rr.shards)
			rr.lanes[i][1] = append(rr.lanes[i][1], engine.Tuple{Key: st.S.Key, Payload: Tagged{Seq: sseq, Payload: st.S.Payload}})
		}
	}
	out := make([][]engine.TuplePair, rr.shards)
	for i := range rr.lanes {
		lr, ls := rr.lanes[i][0], rr.lanes[i][1]
		k := len(lr)
		if len(ls) < k {
			k = len(ls)
		}
		if drain {
			k = len(lr)
			if len(ls) > k {
				k = len(ls)
			}
		}
		for x := 0; x < k; x++ {
			pad := engine.Tuple{Key: process.NoValue, Payload: Tagged{}}
			r, s := pad, pad
			if x < len(lr) {
				r = lr[x]
			}
			if x < len(ls) {
				s = ls[x]
			}
			out[i] = append(out[i], engine.TuplePair{R: r, S: s})
		}
		rr.lanes[i][0] = lr[min(k, len(lr)):]
		rr.lanes[i][1] = ls[min(k, len(ls)):]
	}
	return out
}

func diffPairsEqual(a, b []Pair) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// runShardedDifferential drives the runtime and the reference shards over the
// same global stream and requires byte-identical merged pairs per batch,
// identical cache contents per shard, and identical per-shard metrics.
func runShardedDifferential(t *testing.T, cfg Config, steps []Step, batchSize int) {
	t.Helper()
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	refs := make([]*engine.ReferenceJoin, cfg.Shards)
	budgets := rt.Budgets()
	for i := range refs {
		ecfg := engine.Config{
			CacheSize: budgets[i],
			Window:    cfg.Window,
			Procs:     cfg.Procs,
			Seed:      shardSeed(cfg.Seed, i),
		}
		if cfg.NewPolicy != nil {
			ecfg.Policy = cfg.NewPolicy(i)
		}
		refs[i], err = engine.NewReferenceJoin(ecfg)
		if err != nil {
			t.Fatalf("reference shard %d: %v", i, err)
		}
	}
	rr := newRefRouter(cfg.Shards)

	compareBatch := func(label string, got []Pair, batches [][]engine.TuplePair) {
		var want []Pair
		for i, batch := range batches {
			for _, tp := range batch {
				for _, p := range refs[i].Step(tp.R, tp.S) {
					want = append(want, convertPair(p, i))
				}
			}
		}
		sortPairs(want)
		if !diffPairsEqual(got, want) {
			t.Fatalf("%s: pairs diverge:\n  runtime   %v\n  reference %v", label, got, want)
		}
		// Mirror any rebalance the runtime just performed onto the
		// references, at the same batch boundary, in budget order observed
		// from the runtime itself.
		for i, b := range rt.Budgets() {
			if b != budgets[i] {
				if err := refs[i].Resize(b); err != nil {
					t.Fatalf("%s: reference shard %d resize to %d: %v", label, i, b, err)
				}
				budgets[i] = b
			}
		}
		// Snapshot equality implies identical admission and eviction choices.
		for i := range refs {
			so, sr := rt.Shard(i).Snapshot(), refs[i].Snapshot()
			if len(so) != len(sr) {
				t.Fatalf("%s: shard %d cache sizes diverge: %d vs %d", label, i, len(so), len(sr))
			}
			for x := range so {
				if so[x] != sr[x] {
					t.Fatalf("%s: shard %d cache slot %d diverges: %+v vs %+v", label, i, x, so[x], sr[x])
				}
			}
		}
	}

	for lo := 0; lo < len(steps); lo += batchSize {
		hi := lo + batchSize
		if hi > len(steps) {
			hi = len(steps)
		}
		got, err := rt.IngestBatch(steps[lo:hi])
		if err != nil {
			t.Fatalf("IngestBatch[%d:%d): %v", lo, hi, err)
		}
		compareBatch("batch", got, rr.route(steps[lo:hi], false))
	}
	got, err := rt.Flush()
	if err != nil {
		t.Fatal(err)
	}
	compareBatch("flush", got, rr.route(nil, true))

	for i, sm := range rt.Metrics().Shards {
		if rm := refs[i].Metrics(); sm.Engine != rm {
			t.Fatalf("shard %d metrics diverge:\n  runtime   %+v\n  reference %+v", i, sm.Engine, rm)
		}
	}
}

// TestShardedDifferential is the tentpole correctness gate: each shard engine
// held byte-identical to a ReferenceJoin fed the independently re-derived
// shard-local stream, across shard counts, window semantics, and with the
// rebalancer moving budgets mid-run.
func TestShardedDifferential(t *testing.T) {
	steps := genSteps(11, 2000)
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"equi-2", Config{Shards: 2, TotalCache: 24, Procs: trendProcs(), Seed: 3}},
		{"equi-4", Config{Shards: 4, TotalCache: 32, Procs: trendProcs(), Seed: 3}},
		{"window-4", Config{Shards: 4, TotalCache: 32, Window: 40, Procs: trendProcs(), Seed: 7}},
		{"rebalance-4", Config{Shards: 4, TotalCache: 48, Procs: trendProcs(), Seed: 5,
			RebalanceEvery: 2, RebalanceStep: 2, MinBudget: 3}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			runShardedDifferential(t, tc.cfg, steps, 53)
		})
	}
}
