package shardrt

import (
	"errors"
	"testing"

	"stochstream/internal/engine"
)

// TestFlushEmptyRuntime: Flush on a runtime that never ingested anything is a
// no-op — no pairs, no error, no shard steps — and stays repeatable.
func TestFlushEmptyRuntime(t *testing.T) {
	rt, err := New(Config{Shards: 3, TotalCache: 9, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	for i := 0; i < 2; i++ {
		out, err := rt.Flush()
		if err != nil {
			t.Fatalf("flush %d on empty runtime: %v", i, err)
		}
		if len(out) != 0 {
			t.Fatalf("flush %d emitted %d pairs from an empty runtime", i, len(out))
		}
	}
	m := rt.Metrics()
	if m.Ingested != 0 {
		t.Fatalf("empty flush counted ingress: %+v", m)
	}
	for i, sm := range m.Shards {
		if sm.Engine.Steps != 0 {
			t.Fatalf("shard %d stepped %d times on empty flushes", i, sm.Engine.Steps)
		}
	}
}

// TestIngestEmptyBatch: a zero-length batch is accepted, emits nothing, and
// does not advance the ingress counter or step any shard.
func TestIngestEmptyBatch(t *testing.T) {
	rt, err := New(Config{Shards: 2, TotalCache: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	out, err := rt.IngestBatch(nil)
	if err != nil {
		t.Fatalf("IngestBatch(nil): %v", err)
	}
	if len(out) != 0 {
		t.Fatalf("empty batch emitted %d pairs", len(out))
	}
	if m := rt.Metrics(); m.Ingested != 0 {
		t.Fatalf("empty batch counted ingress: %+v", m)
	}
}

// TestFlushRepeatable: a Flush that drains a carried lane tail leaves nothing
// behind, so an immediate second Flush is an empty no-op.
func TestFlushRepeatable(t *testing.T) {
	rt, err := New(Config{Shards: 2, TotalCache: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	// One unpaired R on key 3 sits in the lane tail until Flush pads its S
	// side with NoValue.
	steps := []Step{{R: engine.Tuple{Key: 3}, S: engine.Tuple{Key: 4}}}
	if _, err := rt.IngestBatch(steps); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Flush(); err != nil {
		t.Fatalf("first flush: %v", err)
	}
	out, err := rt.Flush()
	if err != nil {
		t.Fatalf("second flush: %v", err)
	}
	if len(out) != 0 {
		t.Fatalf("second flush re-emitted %d pairs", len(out))
	}
}

// TestCloseEmptyRuntime: closing a runtime that never ingested drains nothing,
// and the closed runtime answers ErrClosed to every mutator — including a
// second Close, which must not panic on the already-stopped workers.
func TestCloseEmptyRuntime(t *testing.T) {
	rt, err := New(Config{Shards: 3, TotalCache: 9, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	out, err := rt.Close()
	if err != nil {
		t.Fatalf("close on empty runtime: %v", err)
	}
	if len(out) != 0 {
		t.Fatalf("close drained %d pairs from an empty runtime", len(out))
	}
	if _, err := rt.Flush(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Flush after Close: %v, want ErrClosed", err)
	}
	if _, err := rt.IngestBatch(nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("IngestBatch after Close: %v, want ErrClosed", err)
	}
	if _, err := rt.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("second Close: %v, want ErrClosed", err)
	}
}
