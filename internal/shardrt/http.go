package shardrt

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"stochstream/internal/flightrec"
	"stochstream/internal/httpd"
	"stochstream/internal/telemetry"
)

// HTTP surface of the sharded runtime. Every route reads only concurrency-
// safe state — atomic telemetry handles and the mutex-protected flight
// recorders — so the handler can be scraped while the runtime is ingesting.
// Engine-level Metrics()/Snapshot() are deliberately not exposed here: they
// read unsynchronized operator state and are only safe between IngestBatch
// calls (see docs/observability.md, "Sharded snapshots").

// ShardSet returns the runtime's registries grouped for aggregated export
// (nil registries when the runtime was built without telemetry).
func (rt *Runtime) ShardSet() telemetry.ShardSet {
	set := telemetry.ShardSet{Coordinator: rt.reg}
	for _, sh := range rt.shards {
		set.Shards = append(set.Shards, sh.reg)
	}
	return set
}

// shardSpans is one shard's contribution to the aggregated /spans view.
type shardSpans struct {
	Shard int              `json:"shard"`
	Spans []flightrec.Span `json:"spans"`
}

// Handler returns the runtime's aggregated HTTP surface:
//
//	/metrics            Prometheus text exposition across all shards, each
//	                    shard's series labeled shard="<i>"; coordinator
//	                    metrics unlabeled
//	/metrics.json       structured JSON: coordinator + per-shard snapshots
//	/spans?n=K          newest K spans per shard (default 128), grouped by
//	                    shard; available when the runtime has flight
//	                    recorders
//	/shards             per-shard summary (budget, steps, pairs, evictions)
//	                    from atomic telemetry reads
//	/shard/<i>/...      shard i's own full telemetry.Handler surface
//	                    (/trace, /bundle, pprof, ...)
//
// Requires Config.Telemetry; without it every route answers 404.
func (rt *Runtime) Handler() http.Handler {
	mux := http.NewServeMux()
	if rt.reg == nil {
		mux.HandleFunc("/", func(w http.ResponseWriter, _ *http.Request) {
			httpError(w, http.StatusNotFound, "runtime built without telemetry")
		})
		return mux
	}
	set := rt.ShardSet()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		set.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(set.Snapshot())
	})
	mux.HandleFunc("/spans", func(w http.ResponseWriter, req *http.Request) {
		n := 128
		if s := req.URL.Query().Get("n"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil || v < 0 {
				httpError(w, http.StatusBadRequest, fmt.Sprintf("parameter n=%q must be a non-negative integer", s))
				return
			}
			n = v
		}
		var out []shardSpans
		for _, sh := range rt.shards {
			if sh.rec == nil {
				continue
			}
			out = append(out, shardSpans{Shard: sh.id, Spans: sh.rec.LastSpans(n)})
		}
		if out == nil {
			httpError(w, http.StatusNotFound, "runtime built without flight recorders")
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(out)
	})
	mux.HandleFunc("/shards", func(w http.ResponseWriter, _ *http.Request) {
		type row struct {
			Shard     int     `json:"shard"`
			Budget    float64 `json:"budget"`
			Steps     int64   `json:"steps"`
			Pairs     int64   `json:"pairs"`
			Evictions int64   `json:"evictions"`
		}
		rows := make([]row, 0, len(rt.shards))
		for _, sh := range rt.shards {
			snap := sh.reg.Snapshot()
			rows = append(rows, row{
				Shard:     sh.id,
				Budget:    snap.Gauges["shardrt_cache_budget"],
				Steps:     snap.Counters["engine_steps_total"],
				Pairs:     snap.Counters["engine_pairs_total"],
				Evictions: snap.Counters["engine_evictions_total"],
			})
		}
		sort.Slice(rows, func(a, b int) bool { return rows[a].Shard < rows[b].Shard })
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(rows)
	})
	for _, sh := range rt.shards {
		prefix := fmt.Sprintf("/shard/%d/", sh.id)
		mux.Handle(prefix, http.StripPrefix(strings.TrimSuffix(prefix, "/"), sh.reg.Handler()))
	}
	return mux
}

// httpError mirrors the telemetry package's JSON error convention.
func httpError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// Serve starts the aggregated HTTP surface on addr as a managed httpd
// server (header/idle timeouts, context-driven Shutdown, joined serve
// goroutine) and returns it with the bound address (use ":0" for an
// ephemeral port). Stop it with Shutdown (graceful) or Close.
func (rt *Runtime) Serve(addr string) (*httpd.Server, string, error) {
	srv, err := httpd.Start(addr, rt.Handler())
	if err != nil {
		return nil, "", err
	}
	return srv, srv.Addr(), nil
}
