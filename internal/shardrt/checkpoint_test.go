package shardrt

import (
	"bytes"
	"errors"
	"testing"

	"stochstream/internal/engine"
)

// TestShardedCheckpointReplay is the fault-tolerance gate for the sharded
// runtime: run a rebalancing multi-shard stream to completion, then rerun it
// with a checkpoint/restore in the middle (into a freshly built runtime), and
// require the interrupted run's full output and final state to be
// byte-identical to the uninterrupted one. The cut point deliberately leaves
// carried lane tails and a post-rebalance budget split in the manifest.
func TestShardedCheckpointReplay(t *testing.T) {
	cfg := Config{
		Shards: 4, TotalCache: 48, Procs: trendProcs(), Seed: 21,
		RebalanceEvery: 3, RebalanceStep: 2, MinBudget: 3,
	}
	steps := genSteps(77, 1200)
	const batchSize = 53 // does not divide the stream: lanes carry at the cut
	const cut = 7        // checkpoint after this many batches

	// Uninterrupted run.
	base, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantPairs := ingestAll(t, base, steps, batchSize)
	wantMetrics := base.Metrics()
	if _, err := base.Close(); err != nil {
		t.Fatal(err)
	}

	// Interrupted run: ingest cut batches, checkpoint, discard the runtime,
	// restore into a fresh one, continue from the same stream position.
	first, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var gotPairs []Pair
	pos := 0
	for b := 0; b < cut; b++ {
		hi := pos + batchSize
		if hi > len(steps) {
			hi = len(steps)
		}
		pairs, err := first.IngestBatch(steps[pos:hi])
		if err != nil {
			t.Fatal(err)
		}
		gotPairs = append(gotPairs, copyShardPairs(pairs)...)
		pos = hi
	}
	var ckpt bytes.Buffer
	if err := first.Checkpoint(&ckpt); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if _, err := first.Close(); err != nil {
		t.Fatal(err)
	}

	second, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := second.Restore(bytes.NewReader(ckpt.Bytes())); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if err := second.CheckInvariants(); err != nil {
		t.Fatalf("invariants after restore: %v", err)
	}
	for lo := pos; lo < len(steps); lo += batchSize {
		hi := lo + batchSize
		if hi > len(steps) {
			hi = len(steps)
		}
		pairs, err := second.IngestBatch(steps[lo:hi])
		if err != nil {
			t.Fatal(err)
		}
		gotPairs = append(gotPairs, copyShardPairs(pairs)...)
	}
	tail, err := second.Flush()
	if err != nil {
		t.Fatal(err)
	}
	gotPairs = append(gotPairs, tail...)
	gotMetrics := second.Metrics()
	if _, err := second.Close(); err != nil {
		t.Fatal(err)
	}

	if len(gotPairs) != len(wantPairs) {
		t.Fatalf("interrupted run emitted %d pairs, uninterrupted %d", len(gotPairs), len(wantPairs))
	}
	for i := range gotPairs {
		if gotPairs[i] != wantPairs[i] {
			t.Fatalf("pair %d diverged after restore: %+v vs %+v", i, gotPairs[i], wantPairs[i])
		}
	}
	if gotMetrics.Ingested != wantMetrics.Ingested || gotMetrics.Pairs != wantMetrics.Pairs ||
		gotMetrics.Batches != wantMetrics.Batches || gotMetrics.Rebalances != wantMetrics.Rebalances {
		t.Fatalf("runtime metrics diverged:\n  got  %+v\n  want %+v", gotMetrics, wantMetrics)
	}
	for i := range wantMetrics.Shards {
		if gotMetrics.Shards[i] != wantMetrics.Shards[i] {
			t.Fatalf("shard %d metrics diverged:\n  got  %+v\n  want %+v", i, gotMetrics.Shards[i], wantMetrics.Shards[i])
		}
	}
}

func copyShardPairs(pairs []Pair) []Pair {
	return append([]Pair(nil), pairs...)
}

// TestShardedCheckpointFingerprint: a manifest only restores into a runtime
// built with the same partitioning configuration.
func TestShardedCheckpointFingerprint(t *testing.T) {
	cfg := Config{Shards: 2, TotalCache: 16, Procs: trendProcs(), Seed: 4}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ingestAll(t, rt, genSteps(9, 200), 32)
	var ckpt bytes.Buffer
	if err := rt.Checkpoint(&ckpt); err != nil {
		t.Fatal(err)
	}
	rt.Close()

	for name, bad := range map[string]Config{
		"shards": {Shards: 4, TotalCache: 16, Procs: trendProcs(), Seed: 4},
		"cache":  {Shards: 2, TotalCache: 20, Procs: trendProcs(), Seed: 4},
		"window": {Shards: 2, TotalCache: 16, Window: 8, Procs: trendProcs(), Seed: 4},
		"seed":   {Shards: 2, TotalCache: 16, Procs: trendProcs(), Seed: 5},
	} {
		other, err := New(bad)
		if err != nil {
			t.Fatal(err)
		}
		if err := other.Restore(bytes.NewReader(ckpt.Bytes())); !errors.Is(err, engine.ErrConfigMismatch) {
			t.Fatalf("%s mismatch restored with err %v, want ErrConfigMismatch", name, err)
		}
		other.Close()
	}

	// Matching config accepts the same bytes.
	same, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := same.Restore(bytes.NewReader(ckpt.Bytes())); err != nil {
		t.Fatalf("matching config rejected: %v", err)
	}
	same.Close()

	// Garbage is rejected before any state is touched, and a closed runtime
	// refuses both directions.
	fresh, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.Restore(bytes.NewReader([]byte("not a checkpoint"))); err == nil {
		t.Fatal("garbage restore succeeded")
	}
	fresh.Close()
	if err := fresh.Checkpoint(&bytes.Buffer{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Checkpoint after Close: %v, want ErrClosed", err)
	}
	if err := fresh.Restore(bytes.NewReader(ckpt.Bytes())); !errors.Is(err, ErrClosed) {
		t.Fatalf("Restore after Close: %v, want ErrClosed", err)
	}
}
