package shardrt

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"stochstream/internal/telemetry"
)

func newTelemetryRuntime(t *testing.T) *Runtime {
	t.Helper()
	rt, err := New(Config{
		Shards: 2, TotalCache: 16, Procs: trendProcs(), Seed: 6,
		Telemetry: true, Flight: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rt.Close() })
	ingestAll(t, rt, genSteps(8, 300), 50)
	return rt
}

func get(t *testing.T, h http.Handler, path string) (*httptest.ResponseRecorder, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec, rec.Body.String()
}

func TestHandlerMetrics(t *testing.T) {
	rt := newTelemetryRuntime(t)
	h := rt.Handler()

	rec, body := get(t, h, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics: %d\n%s", rec.Code, body)
	}
	for _, want := range []string{
		`engine_steps_total{shard="0"}`,
		`engine_steps_total{shard="1"}`,
		`shardrt_cache_budget{shard="0"}`,
		"shardrt_shards 2",
		"shardrt_rebalance_moves_total 0",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}

	rec, body = get(t, h, "/metrics.json")
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics.json: %d", rec.Code)
	}
	var snap telemetry.ShardedSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/metrics.json: %v", err)
	}
	if snap.Coordinator == nil || len(snap.Shards) != 2 {
		t.Fatalf("/metrics.json shape: coordinator %v, %d shards", snap.Coordinator != nil, len(snap.Shards))
	}
	if steps := snap.Shards[0].Counters["engine_steps_total"] + snap.Shards[1].Counters["engine_steps_total"]; steps == 0 {
		t.Fatal("/metrics.json: no shard recorded any steps")
	}
}

func TestHandlerSpansAndShards(t *testing.T) {
	rt := newTelemetryRuntime(t)
	h := rt.Handler()

	rec, body := get(t, h, "/spans?n=5")
	if rec.Code != http.StatusOK {
		t.Fatalf("/spans: %d\n%s", rec.Code, body)
	}
	var groups []struct {
		Shard int               `json:"shard"`
		Spans []json.RawMessage `json:"spans"`
	}
	if err := json.Unmarshal([]byte(body), &groups); err != nil {
		t.Fatalf("/spans: %v", err)
	}
	if len(groups) != 2 {
		t.Fatalf("/spans groups %d, want 2", len(groups))
	}
	for _, g := range groups {
		if len(g.Spans) == 0 || len(g.Spans) > 5 {
			t.Fatalf("shard %d returned %d spans, want 1..5", g.Shard, len(g.Spans))
		}
	}
	if rec, _ := get(t, h, "/spans?n=bogus"); rec.Code != http.StatusBadRequest {
		t.Fatalf("/spans?n=bogus: %d, want 400", rec.Code)
	}

	rec, body = get(t, h, "/shards")
	if rec.Code != http.StatusOK {
		t.Fatalf("/shards: %d", rec.Code)
	}
	var rows []struct {
		Shard  int     `json:"shard"`
		Budget float64 `json:"budget"`
		Steps  int64   `json:"steps"`
	}
	if err := json.Unmarshal([]byte(body), &rows); err != nil {
		t.Fatalf("/shards: %v", err)
	}
	total := 0.0
	for i, r := range rows {
		if r.Shard != i {
			t.Fatalf("/shards out of order: %+v", rows)
		}
		total += r.Budget
	}
	if total != 16 {
		t.Fatalf("/shards budgets sum to %g, want 16", total)
	}

	// Per-shard drill-down proxies to the shard registry's own handler.
	rec, body = get(t, h, "/shard/1/metrics")
	if rec.Code != http.StatusOK || !strings.Contains(body, "engine_steps_total") {
		t.Fatalf("/shard/1/metrics: %d\n%s", rec.Code, body)
	}
}

func TestHandlerWithoutTelemetry(t *testing.T) {
	rt, err := New(Config{Shards: 2, TotalCache: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	for _, path := range []string{"/metrics", "/metrics.json", "/spans", "/shards"} {
		if rec, _ := get(t, rt.Handler(), path); rec.Code != http.StatusNotFound {
			t.Fatalf("%s without telemetry: %d, want 404", path, rec.Code)
		}
	}
}

func TestServe(t *testing.T) {
	rt := newTelemetryRuntime(t)
	srv, addr, err := rt.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics over TCP: %d", resp.StatusCode)
	}
}
