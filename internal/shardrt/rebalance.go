package shardrt

// Online budget rebalancing: every RebalanceEvery batches the coordinator
// compares per-shard benefit rates — pairs produced since the last cycle per
// budget slot — and moves RebalanceStep slots from the lowest-rate shard to
// the highest-rate one, bounded below by the MinBudget floor. The move calls
// engine.Resize, which evicts the donor down with its own policy
// immediately, so the budget invariant holds before the next batch. All
// inputs are deterministic (engine metrics, fixed tie-breaks by shard ID),
// so rebalanced runs replay exactly.

type rebalancer struct {
	// lastPairs is each shard's cumulative pair count at the last cycle.
	lastPairs []int
	moves     int
}

func (rb *rebalancer) init(shards int) {
	rb.lastPairs = make([]int, shards)
}

// maybeRebalance runs one rebalance cycle when the cadence hits. Called at
// the end of dispatch, when every worker is quiescent, so touching the shard
// engines directly is safe.
func (rt *Runtime) maybeRebalance() {
	every := rt.cfg.RebalanceEvery
	if every <= 0 || rt.batches%every != 0 || len(rt.shards) < 2 {
		return
	}
	minBudget := rt.cfg.MinBudget
	if minBudget == 0 {
		minBudget = 1
	}
	step := rt.cfg.RebalanceStep
	if step == 0 {
		step = 1
	}
	// Benefit rate per shard: pairs since the last cycle per budget slot.
	// Ties break toward the lower shard ID on both ends, so the cycle is a
	// pure function of the run so far. Shards already at the floor cannot
	// donate, so they are excluded from the worst-rate pick — otherwise a
	// drained shard would win every tie and wedge the cycle while other
	// low-rate shards still hold spare budget.
	best, worst := -1, -1
	var bestRate, worstRate float64
	for i, sh := range rt.shards {
		pairs := sh.eng.Metrics().Pairs
		rate := float64(pairs-rt.reb.lastPairs[i]) / float64(sh.budget)
		rt.reb.lastPairs[i] = pairs
		if best < 0 || rate > bestRate {
			best, bestRate = i, rate
		}
		if sh.budget > minBudget && (worst < 0 || rate < worstRate) {
			worst, worstRate = i, rate
		}
	}
	if worst < 0 {
		return
	}
	if best == worst || bestRate <= worstRate {
		return
	}
	donor, recv := rt.shards[worst], rt.shards[best]
	if step > donor.budget-minBudget {
		step = donor.budget - minBudget
	}
	if step <= 0 {
		return
	}
	// Shrink the donor first so the total budget never exceeds TotalCache,
	// even transiently.
	if err := donor.eng.Resize(donor.budget - step); err != nil {
		return
	}
	if err := recv.eng.Resize(recv.budget + step); err != nil {
		// Roll the donor back; its evictions stand (Resize cannot unevict)
		// but the budget conservation invariant must.
		_ = donor.eng.Resize(donor.budget)
		return
	}
	donor.budget -= step
	recv.budget += step
	if donor.budgetGauge != nil {
		donor.budgetGauge.Set(float64(donor.budget))
		recv.budgetGauge.Set(float64(recv.budget))
	}
	rt.reb.moves++
	if rt.rebalances != nil {
		rt.rebalances.Add(int64(step))
	}
}
