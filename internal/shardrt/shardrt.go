// Package shardrt is the sharded operator runtime: it hash-partitions the
// join-key domain across N independent engine.Join instances, each with its
// own cache budget, telemetry registry, flight recorder and policy (so each
// shard can carry its own degradation ladder), and drives them with batched
// ingress over per-shard channels.
//
// Partitioning an equijoin by key is lossless: two tuples can only pair when
// their keys match, and matching keys hash to the same shard, so the union
// of the shards' outputs is exactly the single-operator output over the same
// per-shard arrival interleavings. What sharding does change is the arrival
// interleaving each cache sees (a shard steps only when the batcher has an
// arrival pair for it) and the cache budget (TotalCache is split across the
// shards), so a sharded run is its own deterministic system — the per-shard
// differential harness holds each shard byte-identical to a ReferenceJoin
// fed the same shard-local stream, and the merge-order pin holds the global
// emission order fixed.
//
// Throughput: the replacement policies score every cached candidate on each
// eviction, so decision cost is linear in the cache budget. Splitting one
// budget-C cache into N budget-C/N shards means a global step (two arrivals,
// landing on at most two shards) scores ~2·C/N candidates instead of ~C, an
// algorithmic win that needs no parallelism — and the per-shard channels
// additionally let the shards run on separate cores where the host has them.
// See docs/performance.md, "Sharded runtime".
package shardrt

import (
	"errors"
	"fmt"
	"sort"

	"stochstream/internal/engine"
	"stochstream/internal/flightrec"
	"stochstream/internal/join"
	"stochstream/internal/process"
	"stochstream/internal/telemetry"
)

// Step is one synchronized step of global arrivals: one tuple from each
// stream, exactly like the two engine.Step arguments.
type Step struct {
	R, S engine.Tuple
}

// Pair is one join result with its global provenance: the ingress sequence
// numbers of both sides (RSeq/SSeq), the shard that produced it, and the
// caller's original payloads (the runtime's internal tagging is unwrapped).
type Pair struct {
	// RSeq and SSeq are the global ingress sequence numbers of the two
	// sides: every arrival is numbered 2·step (R) and 2·step+1 (S) at
	// ingress, before routing, so pairs from different shards are globally
	// comparable. The merge orders results by (max, min) of the two — the
	// triggering arrival first, ties broken by the cached partner — which
	// is unique per pair and pinned by TestMergeOrder.
	RSeq, SSeq uint64
	// R and S carry the join keys and the caller's payloads.
	R, S engine.Tuple
	// SameStep marks a pair whose two sides were paired into the same
	// shard-local step (engine.Pair.SameTime under the shard's clock).
	// Because the batcher pairs each shard's R and S lanes positionally,
	// this is a property of the shard-local interleaving, not of the global
	// step numbers — two arrivals from different global steps can share a
	// shard step.
	SameStep bool
	// Shard is the shard that produced the pair.
	Shard int
}

// Config configures the sharded runtime.
type Config struct {
	// Shards is the number of partitions (>= 1).
	Shards int
	// TotalCache is the cache budget summed over all shards; it is split
	// evenly (remainder to the lowest shard IDs) and thereafter moved
	// between shards by the rebalancer.
	TotalCache int
	// Window > 0 enables sliding-window semantics per shard. A shard's
	// clock advances only when the shard steps, so the window counts
	// shard-local steps, not global ones; see docs/performance.md.
	Window int
	// Procs carries the stream models for model-driven policies.
	//lint:ignore fingerprintcover each shard engine's nested checkpoint fingerprints the process pair (ProcSig); the manifest does not repeat it
	Procs [2]process.Process
	// NewPolicy builds shard i's replacement policy; nil uses the engine
	// default (HEEB with the models, RAND otherwise). Each shard needs its
	// own instance — policies are stateful — which is why this is a factory
	// and not a value.
	//lint:ignore fingerprintcover policy identity is fingerprinted by name (PolicyName) inside each shard's engine envelope; the factory is construction wiring
	NewPolicy func(shard int) join.Policy
	// Seed drives per-shard policy randomness; each shard derives its own
	// seed from it.
	Seed uint64
	// Telemetry, when true, attaches a registry to every shard engine plus
	// a runtime registry for the coordinator's own counters; Registry and
	// Handler expose them, aggregated across shards.
	//lint:ignore fingerprintcover observability toggle; counters and gauges never feed a decision, so replay is unaffected
	Telemetry bool
	// Flight, when true, attaches a flight recorder to every shard engine.
	//lint:ignore fingerprintcover observability toggle; the recorder observes decisions, it never makes them
	Flight bool
	// FlightDir, when non-empty, implies Flight and gives every shard a
	// bundle directory FlightDir/shard-<i> so faults dump per-shard
	// diagnostics bundles.
	//lint:ignore fingerprintcover diagnostics output path; where bundles land cannot affect replay
	FlightDir string
	// FlightSampleEvery is the per-shard lifecycle sampling rate (0 keeps
	// the recorder default).
	//lint:ignore fingerprintcover observability sampling rate; which steps get lifecycle records cannot affect replay
	FlightSampleEvery int
	// QueueDepth bounds the per-shard ingress channel (batches in flight
	// per shard); 0 means 1.
	//lint:ignore fingerprintcover channel capacity only: it shifts backpressure timing, never the per-batch semantics a checkpoint replays
	QueueDepth int
	// RebalanceEvery, in ingested batches, is the budget-rebalance cadence;
	// 0 disables rebalancing.
	RebalanceEvery int
	// RebalanceStep is how many budget slots move per cycle (0 means 1).
	RebalanceStep int
	// MinBudget is the per-shard budget floor the rebalancer will not cross
	// (0 means 1), so no shard starves.
	MinBudget int
}

// ErrClosed is returned by operations on a runtime after Close.
var ErrClosed = errors.New("shardrt: runtime is closed")

// ErrBadStep wraps ingress validation failures: out-of-domain join keys are
// rejected before any state is touched, mirroring engine.StepChecked.
var ErrBadStep = errors.New("shardrt: bad step")

func (cfg *Config) validate() error {
	if cfg.Shards < 1 {
		return fmt.Errorf("shardrt: Shards must be >= 1, got %d", cfg.Shards)
	}
	min := cfg.MinBudget
	if min == 0 {
		min = 1
	}
	if min < 1 {
		return fmt.Errorf("shardrt: MinBudget must be >= 1, got %d", min)
	}
	if cfg.TotalCache < cfg.Shards*min {
		return fmt.Errorf("shardrt: TotalCache %d cannot give %d shards the %d-slot floor", cfg.TotalCache, cfg.Shards, min)
	}
	if cfg.Window < 0 {
		return fmt.Errorf("shardrt: Window must be >= 0, got %d", cfg.Window)
	}
	if cfg.RebalanceEvery < 0 || cfg.RebalanceStep < 0 || cfg.QueueDepth < 0 {
		return fmt.Errorf("shardrt: RebalanceEvery, RebalanceStep and QueueDepth must be >= 0")
	}
	return nil
}

// shard is one partition: its engine, observability handles and worker
// plumbing. The coordinator owns batchBuf between a result gather and the
// next dispatch; the channel handoff transfers ownership to the worker.
type shard struct {
	id     int
	eng    *engine.Join
	reg    *telemetry.Registry
	rec    *flightrec.Recorder
	budget int
	// budgetGauge mirrors budget into the shard registry (nil without
	// telemetry).
	budgetGauge *telemetry.Gauge

	in       chan []engine.TuplePair
	res      chan shardResult
	batchBuf []engine.TuplePair
	pending  bool
}

type shardResult struct {
	pairs []Pair
	err   error
}

// Runtime is the sharded operator. It is driven from one goroutine
// (IngestBatch/Flush/Close and every accessor); internally each shard steps
// on its own worker goroutine. Accessors that touch shard engines are safe
// between calls because the result gather at the end of every dispatch
// leaves all workers quiescent.
type Runtime struct {
	cfg    Config
	shards []*shard
	// lanes[i][side] holds routed arrivals shard i has not stepped yet: the
	// engine's synchronized-step model needs one tuple per stream per step,
	// so the batcher pairs each shard's R and S lanes and carries the
	// unmatched tail to the next batch (Flush pads it out with NoValue).
	lanes [][2][]engine.Tuple
	seq   uint64
	// ingested counts global steps accepted; batches counts IngestBatch
	// dispatches (the rebalance clock).
	ingested int
	batches  int
	merged   int
	//lint:ignore snapcomplete merge buffer handed to the caller each batch; Checkpoint runs between IngestBatch calls, when it is dead
	out    []Pair
	closed bool

	reg        *telemetry.Registry // coordinator registry (nil without telemetry)
	rebalances *telemetry.Counter
	reb        rebalancer
}

// New validates the configuration and builds the runtime: engines, per-shard
// observability, and one worker goroutine per shard.
func New(cfg Config) (*Runtime, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.FlightDir != "" {
		cfg.Flight = true
	}
	qd := cfg.QueueDepth
	if qd == 0 {
		qd = 1
	}
	rt := &Runtime{
		cfg:   cfg,
		lanes: make([][2][]engine.Tuple, cfg.Shards),
	}
	if cfg.Telemetry {
		rt.reg = telemetry.NewRegistry()
		rt.rebalances = rt.reg.Counter("shardrt_rebalance_moves_total")
		rt.reg.GaugeFunc("shardrt_shards", func() float64 { return float64(cfg.Shards) })
	}
	base := cfg.TotalCache / cfg.Shards
	rem := cfg.TotalCache % cfg.Shards
	for i := 0; i < cfg.Shards; i++ {
		budget := base
		if i < rem {
			budget++
		}
		sh := &shard{
			id:     i,
			budget: budget,
			in:     make(chan []engine.TuplePair, qd),
			res:    make(chan shardResult, qd),
		}
		ecfg := engine.Config{
			CacheSize: budget,
			Window:    cfg.Window,
			Procs:     cfg.Procs,
			Seed:      shardSeed(cfg.Seed, i),
		}
		if cfg.NewPolicy != nil {
			ecfg.Policy = cfg.NewPolicy(i)
		}
		if cfg.Telemetry {
			sh.reg = telemetry.NewRegistry()
			sh.budgetGauge = sh.reg.Gauge("shardrt_cache_budget")
			sh.budgetGauge.Set(float64(budget))
			ecfg.Telemetry = sh.reg
		}
		if cfg.Flight {
			opts := flightrec.Options{
				SampleSeed:  shardSeed(cfg.Seed, i),
				SampleEvery: cfg.FlightSampleEvery,
			}
			if cfg.FlightDir != "" {
				opts.BundleDir = fmt.Sprintf("%s/shard-%d", cfg.FlightDir, i)
			}
			sh.rec = flightrec.New(opts)
			ecfg.Flight = sh.rec
		}
		eng, err := engine.NewJoin(ecfg)
		if err != nil {
			rt.stopWorkers()
			return nil, fmt.Errorf("shardrt: shard %d: %w", i, err)
		}
		sh.eng = eng
		rt.shards = append(rt.shards, sh)
		go sh.run()
	}
	rt.reb.init(cfg.Shards)
	return rt, nil
}

// shardSeed derives shard i's seed from the base seed with a splitmix-style
// increment, so shards never share a policy RNG stream.
func shardSeed(seed uint64, i int) uint64 {
	return seed + uint64(i+1)*0x9E3779B97F4A7C15
}

// run is the shard worker: it steps every batch it receives and answers with
// the converted pairs. A policy panic is captured and surfaced as the
// batch's error instead of deadlocking the coordinator.
func (sh *shard) run() {
	for batch := range sh.in {
		sh.res <- sh.step(batch)
	}
	close(sh.res)
}

func (sh *shard) step(batch []engine.TuplePair) (out shardResult) {
	defer func() {
		if r := recover(); r != nil {
			out = shardResult{err: fmt.Errorf("shardrt: shard %d: step panic: %v", sh.id, r)}
		}
	}()
	pairs := sh.eng.StepBatch(batch)
	conv := make([]Pair, len(pairs))
	for i, p := range pairs {
		conv[i] = convertPair(p, sh.id)
	}
	return shardResult{pairs: conv}
}

// IngestBatch feeds a batch of global steps and returns every pair produced
// by the shard work it could dispatch. All keys are validated up front —
// a bad step rejects the whole batch before any state changes. Arrivals
// whose key is process.NoValue are dropped at ingress (they can never join);
// the rest are routed to their shard's lanes, and each shard steps
// min(|R lane|, |S lane|) synchronized steps. Unpaired lane tails carry over
// to the next batch; Flush drains them.
//
// The returned slice is owned by the runtime and valid until the next
// IngestBatch/Flush/Close call; callers that retain pairs must copy them.
func (rt *Runtime) IngestBatch(steps []Step) ([]Pair, error) {
	if rt.closed {
		return nil, ErrClosed
	}
	for i, st := range steps {
		if err := checkKey(st.R.Key); err != nil {
			return nil, fmt.Errorf("%w: step %d stream R: %v", ErrBadStep, i, err)
		}
		if err := checkKey(st.S.Key); err != nil {
			return nil, fmt.Errorf("%w: step %d stream S: %v", ErrBadStep, i, err)
		}
	}
	for _, st := range steps {
		rseq, sseq := rt.seq, rt.seq+1
		rt.seq += 2
		if st.R.Key != process.NoValue {
			i := ShardOf(st.R.Key, rt.cfg.Shards)
			rt.lanes[i][0] = append(rt.lanes[i][0], engine.Tuple{Key: st.R.Key, Payload: Tagged{Seq: rseq, Payload: st.R.Payload}})
		}
		if st.S.Key != process.NoValue {
			i := ShardOf(st.S.Key, rt.cfg.Shards)
			rt.lanes[i][1] = append(rt.lanes[i][1], engine.Tuple{Key: st.S.Key, Payload: Tagged{Seq: sseq, Payload: st.S.Payload}})
		}
	}
	rt.ingested += len(steps)
	return rt.dispatch(false)
}

// Flush drains the lane tails: every shard steps its remaining arrivals,
// with the shorter lane padded by NoValue tuples (which can never join but
// do occupy a cache slot until evicted, exactly as a NoValue arrival fed to
// the single operator would). Call it at end of stream, before a checkpoint
// that must capture all routed work, or before reading final metrics.
func (rt *Runtime) Flush() ([]Pair, error) {
	if rt.closed {
		return nil, ErrClosed
	}
	return rt.dispatch(true)
}

// checkKey mirrors engine.StepChecked's domain check at the ingress
// boundary.
func checkKey(k int) error {
	if k != process.NoValue && (k < engine.MinKey || k > engine.MaxKey) {
		return fmt.Errorf("key %d outside [%d, %d]", k, engine.MinKey, engine.MaxKey)
	}
	return nil
}

// dispatch pairs each shard's lanes into a StepBatch, hands the batches to
// the workers, gathers every result, and merges them into the global
// emission order. With drain set the longer lane is padded instead of
// carried.
func (rt *Runtime) dispatch(drain bool) ([]Pair, error) {
	for i, sh := range rt.shards {
		lr, ls := rt.lanes[i][0], rt.lanes[i][1]
		k := len(lr)
		if len(ls) < k {
			k = len(ls)
		}
		if drain {
			k = len(lr)
			if len(ls) > k {
				k = len(ls)
			}
		}
		if k == 0 {
			sh.pending = false
			continue
		}
		batch := sh.batchBuf[:0]
		for x := 0; x < k; x++ {
			pad := engine.Tuple{Key: process.NoValue, Payload: Tagged{}}
			r, s := pad, pad
			if x < len(lr) {
				r = lr[x]
			}
			if x < len(ls) {
				s = ls[x]
			}
			batch = append(batch, engine.TuplePair{R: r, S: s})
		}
		rt.lanes[i][0] = consumeLane(lr, k)
		rt.lanes[i][1] = consumeLane(ls, k)
		sh.batchBuf = batch
		sh.in <- batch
		sh.pending = true
	}
	out := rt.out[:0]
	var firstErr error
	for _, sh := range rt.shards {
		if !sh.pending {
			continue
		}
		res := <-sh.res
		sh.pending = false
		if res.err != nil && firstErr == nil {
			firstErr = res.err
		}
		out = append(out, res.pairs...)
	}
	if firstErr != nil {
		return nil, firstErr
	}
	sortPairs(out)
	rt.out = out
	rt.merged += len(out)
	rt.batches++
	rt.maybeRebalance()
	return out, nil
}

// consumeLane drops the first k routed tuples, keeping the tail at the front
// of the same backing array.
func consumeLane(lane []engine.Tuple, k int) []engine.Tuple {
	if k >= len(lane) {
		return lane[:0]
	}
	n := copy(lane, lane[k:])
	return lane[:n]
}

// Close drains the lanes (so no routed arrival is silently dropped), stops
// the workers and marks the runtime closed. The returned pairs are the
// drain's output. Close is idempotent; later calls return ErrClosed.
func (rt *Runtime) Close() ([]Pair, error) {
	if rt.closed {
		return nil, ErrClosed
	}
	out, err := rt.dispatch(true)
	rt.closed = true
	rt.stopWorkers()
	return out, err
}

// Shutdown stops the shard workers and marks the runtime closed WITHOUT the
// drain dispatch Close performs: the lanes and shard engines keep their
// exact state. It is the checkpoint-then-exit path — a Checkpoint taken
// just before Shutdown restores byte-identically, carried lane tails
// included, whereas Close's drain would pad and step them first. Idempotent.
func (rt *Runtime) Shutdown() {
	if rt.closed {
		return
	}
	rt.closed = true
	rt.stopWorkers()
}

func (rt *Runtime) stopWorkers() {
	for _, sh := range rt.shards {
		if sh.eng != nil {
			close(sh.in)
		}
	}
}

// ShardCount returns the number of shards.
func (rt *Runtime) ShardCount() int { return len(rt.shards) }

// Budgets returns the current per-shard cache budgets (summing to
// Config.TotalCache).
func (rt *Runtime) Budgets() []int {
	out := make([]int, len(rt.shards))
	for i, sh := range rt.shards {
		out[i] = sh.budget
	}
	return out
}

// Metrics is a snapshot of the runtime's counters plus every shard engine's
// metrics.
type Metrics struct {
	// Ingested counts accepted global steps; Batches the dispatches;
	// Pairs the merged result pairs returned to the caller; Rebalances the
	// budget moves performed.
	Ingested   int
	Batches    int
	Pairs      int
	Rebalances int
	Shards     []ShardMetrics
}

// ShardMetrics is one shard's view: its current budget and its engine
// counters (engine.Metrics semantics, shard-local step clock).
type ShardMetrics struct {
	Shard  int
	Budget int
	Engine engine.Metrics
}

// Metrics snapshots the runtime. Safe between IngestBatch calls (workers
// are quiescent then).
func (rt *Runtime) Metrics() Metrics {
	m := Metrics{
		Ingested:   rt.ingested,
		Batches:    rt.batches,
		Pairs:      rt.merged,
		Rebalances: rt.reb.moves,
	}
	for _, sh := range rt.shards {
		m.Shards = append(m.Shards, ShardMetrics{Shard: sh.id, Budget: sh.budget, Engine: sh.eng.Metrics()})
	}
	return m
}

// CheckInvariants runs engine.CheckInvariants on every shard plus the
// runtime-level budget conservation check. Safe between IngestBatch calls.
func (rt *Runtime) CheckInvariants() error {
	total := 0
	for _, sh := range rt.shards {
		if err := sh.eng.CheckInvariants(); err != nil {
			return fmt.Errorf("shard %d: %w", sh.id, err)
		}
		total += sh.budget
	}
	if total != rt.cfg.TotalCache {
		return fmt.Errorf("shardrt: budgets sum to %d, want TotalCache %d", total, rt.cfg.TotalCache)
	}
	return nil
}

// Registry returns shard i's telemetry registry (nil without telemetry).
func (rt *Runtime) Registry(i int) *telemetry.Registry { return rt.shards[i].reg }

// CoordinatorRegistry returns the runtime's own registry (nil without
// telemetry).
func (rt *Runtime) CoordinatorRegistry() *telemetry.Registry { return rt.reg }

// Recorder returns shard i's flight recorder (nil without Flight).
func (rt *Runtime) Recorder(i int) *flightrec.Recorder { return rt.shards[i].rec }

// Shard returns shard i's engine for tests and tooling. The engine is only
// quiescent between IngestBatch/Flush calls; do not touch it concurrently
// with one.
func (rt *Runtime) Shard(i int) *engine.Join { return rt.shards[i].eng }

// sortPairs orders merged results by (trigger, partner) sequence: the later
// (triggering) arrival first, ties broken by the cached partner's sequence.
// The key is unique — two tuples pair at most once — so the order is total
// and deterministic regardless of shard interleaving.
func sortPairs(out []Pair) {
	sort.Slice(out, func(a, b int) bool {
		ta, pa := mergeKey(out[a])
		tb, pb := mergeKey(out[b])
		if ta != tb {
			return ta < tb
		}
		return pa < pb
	})
}

func mergeKey(p Pair) (trigger, partner uint64) {
	if p.RSeq >= p.SSeq {
		return p.RSeq, p.SSeq
	}
	return p.SSeq, p.RSeq
}
