package shardrt

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"

	"stochstream/internal/checkpoint"
	"stochstream/internal/engine"
)

// Sharded checkpoint/restore: one SSCP manifest envelope carrying the
// coordinator's state (ingress sequence, lanes, budgets, rebalancer state)
// plus every shard engine's own SSCP envelope, nested as opaque bytes. The
// shard envelopes are the engine's full fault-tolerance format — policy
// state, RNGs, cache payloads — so restore→replay is byte-identical to an
// uninterrupted sharded run (pinned by TestShardedCheckpointReplay).

func init() {
	// Cached and in-flight payloads are Tagged wrappers; the engine's gob
	// cache encoding and the manifest's lane encoding both need the type
	// registered.
	gob.Register(Tagged{})
}

// manifestVersion guards the gob schema inside the manifest envelope.
// Version 2 added the rebalancer knobs (MinBudget, RebalanceEvery,
// RebalanceStep) to the fingerprint; version-1 manifests predate them and
// are rejected rather than restored with unchecked rebalancer state.
const manifestVersion = 2

type manifestWire struct {
	Version int
	// Fingerprint: a manifest only restores into a runtime built with the
	// same partitioning configuration. The rebalancer knobs are part of it
	// because they decide how budgets move after restore: replaying under a
	// different cadence or step diverges from the uninterrupted run.
	Shards         int
	TotalCache     int
	Window         int
	Seed           uint64
	MinBudget      int
	RebalanceEvery int
	RebalanceStep  int
	// Coordinator state.
	Seq      uint64
	Ingested int
	Batches  int
	Merged   int
	Lanes    [][2][]engine.Tuple
	// Budgets is each shard's current budget (post-rebalancing); LastPairs
	// and Moves are the rebalancer's state.
	Budgets   []int
	LastPairs []int
	Moves     int
	// Envelopes holds each shard engine's own SSCP checkpoint.
	Envelopes [][]byte
}

// fingerprint returns the partitioning identity a manifest is bound to.
// MinBudget and RebalanceStep are normalized (0 means 1, matching the
// rebalancer) so a zero-valued and an explicit-1 config fingerprint
// identically.
func (rt *Runtime) fingerprint() (shards, totalCache, window int, seed uint64, minBudget, rebalanceEvery, rebalanceStep int) {
	minBudget = rt.cfg.MinBudget
	if minBudget == 0 {
		minBudget = 1
	}
	rebalanceStep = rt.cfg.RebalanceStep
	if rebalanceStep == 0 {
		rebalanceStep = 1
	}
	return rt.cfg.Shards, rt.cfg.TotalCache, rt.cfg.Window, rt.cfg.Seed, minBudget, rt.cfg.RebalanceEvery, rebalanceStep
}

// Checkpoint writes the full sharded state. Call it between IngestBatch
// calls (the workers are quiescent then); the lanes are captured too, so a
// checkpoint does not require a Flush first.
func (rt *Runtime) Checkpoint(w io.Writer) error {
	if rt.closed {
		return ErrClosed
	}
	shards, totalCache, window, seed, minBudget, rebEvery, rebStep := rt.fingerprint()
	wire := manifestWire{
		Version:        manifestVersion,
		Shards:         shards,
		TotalCache:     totalCache,
		Window:         window,
		Seed:           seed,
		MinBudget:      minBudget,
		RebalanceEvery: rebEvery,
		RebalanceStep:  rebStep,
		Seq:            rt.seq,
		Ingested:       rt.ingested,
		Batches:        rt.batches,
		Merged:         rt.merged,
		Lanes:          rt.lanes,
		Budgets:        make([]int, len(rt.shards)),
		LastPairs:      append([]int(nil), rt.reb.lastPairs...),
		Moves:          rt.reb.moves,
		Envelopes:      make([][]byte, len(rt.shards)),
	}
	for i, sh := range rt.shards {
		wire.Budgets[i] = sh.budget
		var buf bytes.Buffer
		if err := sh.eng.Checkpoint(&buf); err != nil {
			return fmt.Errorf("shardrt: checkpoint shard %d: %w", i, err)
		}
		wire.Envelopes[i] = buf.Bytes()
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(&wire); err != nil {
		return fmt.Errorf("shardrt: encode manifest: %w", err)
	}
	return checkpoint.Write(w, payload.Bytes())
}

// Restore loads a manifest into a freshly built runtime with the same
// configuration (shards, total cache, window, seed, policy construction).
// The manifest is validated before any shard is touched; a failure while
// restoring the shard engines leaves the runtime partially restored, so
// discard it on error. Budgets are re-applied via Resize before each shard
// restore, so a post-rebalance checkpoint restores into the even-split
// engines a fresh runtime starts with.
func (rt *Runtime) Restore(r io.Reader) error {
	if rt.closed {
		return ErrClosed
	}
	payload, err := checkpoint.Read(r)
	if err != nil {
		return fmt.Errorf("shardrt: read manifest: %w", err)
	}
	var wire manifestWire
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&wire); err != nil {
		return fmt.Errorf("shardrt: decode manifest: %w", err)
	}
	if err := rt.validateManifest(&wire); err != nil {
		return err
	}
	for i, sh := range rt.shards {
		if err := sh.eng.Resize(wire.Budgets[i]); err != nil {
			return fmt.Errorf("shardrt: restore shard %d: %w", i, err)
		}
		if err := sh.eng.Restore(bytes.NewReader(wire.Envelopes[i])); err != nil {
			return fmt.Errorf("shardrt: restore shard %d: %w", i, err)
		}
		sh.budget = wire.Budgets[i]
		if sh.budgetGauge != nil {
			sh.budgetGauge.Set(float64(sh.budget))
		}
	}
	rt.seq = wire.Seq
	rt.ingested = wire.Ingested
	rt.batches = wire.Batches
	rt.merged = wire.Merged
	rt.lanes = wire.Lanes
	copy(rt.reb.lastPairs, wire.LastPairs)
	rt.reb.moves = wire.Moves
	return nil
}

func (rt *Runtime) validateManifest(wire *manifestWire) error {
	if wire.Version != manifestVersion {
		return fmt.Errorf("shardrt: manifest version %d, want %d", wire.Version, manifestVersion)
	}
	shards, totalCache, window, seed, minBudget, rebEvery, rebStep := rt.fingerprint()
	if wire.Shards != shards || wire.TotalCache != totalCache ||
		wire.Window != window || wire.Seed != seed {
		return fmt.Errorf("shardrt: manifest fingerprint (shards %d, cache %d, window %d, seed %d) does not match runtime (shards %d, cache %d, window %d, seed %d): %w",
			wire.Shards, wire.TotalCache, wire.Window, wire.Seed,
			shards, totalCache, window, seed, engine.ErrConfigMismatch)
	}
	if wire.MinBudget != minBudget || wire.RebalanceEvery != rebEvery || wire.RebalanceStep != rebStep {
		return fmt.Errorf("shardrt: manifest rebalancer config (floor %d, every %d, step %d) does not match runtime (floor %d, every %d, step %d): %w",
			wire.MinBudget, wire.RebalanceEvery, wire.RebalanceStep,
			minBudget, rebEvery, rebStep, engine.ErrConfigMismatch)
	}
	if len(wire.Budgets) != rt.cfg.Shards || len(wire.Envelopes) != rt.cfg.Shards ||
		len(wire.Lanes) != rt.cfg.Shards || len(wire.LastPairs) != rt.cfg.Shards {
		return fmt.Errorf("shardrt: manifest shard-state lengths (%d budgets, %d envelopes, %d lanes, %d rebalance entries) do not match %d shards",
			len(wire.Budgets), len(wire.Envelopes), len(wire.Lanes), len(wire.LastPairs), rt.cfg.Shards)
	}
	total := 0
	for i, b := range wire.Budgets {
		if b < minBudget {
			return fmt.Errorf("shardrt: manifest budget %d for shard %d below floor %d", b, i, minBudget)
		}
		total += b
	}
	if total != rt.cfg.TotalCache {
		return fmt.Errorf("shardrt: manifest budgets sum to %d, want %d", total, rt.cfg.TotalCache)
	}
	if wire.Seq != uint64(2*wire.Ingested) {
		return fmt.Errorf("shardrt: manifest sequence %d inconsistent with %d ingested steps", wire.Seq, wire.Ingested)
	}
	return nil
}
