package experiment

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
)

func TestWriteCSV(t *testing.T) {
	f := &Figure{ID: "figX", XLabel: "memory", X: []float64{1, 2.5}}
	f.AddSeries("HEEB", []float64{10, 20})
	f.AddSeries("RAND", []float64{5, 7.25})
	f.Note("hello, world") // contains a comma: must be quoted
	var buf bytes.Buffer
	if err := f.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rd := csv.NewReader(&buf)
	rd.FieldsPerRecord = -1 // note rows are shorter than data rows
	rows, err := rd.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0][0] != "memory" || rows[0][1] != "HEEB" || rows[0][2] != "RAND" {
		t.Fatalf("header = %v", rows[0])
	}
	if rows[2][0] != "2.5" || rows[2][2] != "7.25" {
		t.Fatalf("data row = %v", rows[2])
	}
	if rows[3][0] != "#note" || !strings.Contains(rows[3][1], "hello, world") {
		t.Fatalf("note row = %v", rows[3])
	}
}

func TestWriteCSVFigure7RoundTrips(t *testing.T) {
	f, err := Figure7(Defaults())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1+31 { // header + 31 values
		t.Fatalf("got %d rows", len(rows))
	}
}

func TestChartRendersAllSeries(t *testing.T) {
	f := &Figure{ID: "figY", Title: "chart", XLabel: "x", YLabel: "y", X: []float64{0, 5, 10}}
	f.AddSeries("up", []float64{0, 5, 10})
	f.AddSeries("down", []float64{10, 5, 0})
	var buf bytes.Buffer
	f.Chart(&buf, 30, 8)
	out := buf.String()
	for _, want := range []string{"figY", "o=up", "x=down", "10", "0"} {
		if !strings.Contains(out, want) {
			t.Fatalf("chart missing %q:\n%s", want, out)
		}
	}
	// Crossing point marked as overlap.
	if !strings.Contains(out, "*") {
		t.Fatalf("expected overlap marker:\n%s", out)
	}
}

func TestChartDegenerateInputs(t *testing.T) {
	var buf bytes.Buffer
	(&Figure{ID: "empty"}).Chart(&buf, 10, 3)
	if !strings.Contains(buf.String(), "no data") {
		t.Fatalf("empty chart output: %q", buf.String())
	}
	// Flat series and tiny dimensions must not divide by zero.
	f := &Figure{ID: "flat", X: []float64{1, 1}}
	f.AddSeries("c", []float64{3, 3})
	buf.Reset()
	f.Chart(&buf, 1, 1)
	if buf.Len() == 0 {
		t.Fatal("flat chart produced nothing")
	}
}
