package experiment

import (
	"bytes"
	"strings"
	"testing"
)

// tiny returns options small enough for unit tests but large enough for the
// qualitative orderings to hold.
func tiny() Options {
	o := Defaults()
	o.Runs = 2
	o.Length = 1200
	o.Cache = 10
	o.Seed = 4
	o.FlowExpectRuns = 1
	o.FlowExpectLength = 300
	return o
}

func seriesByLabel(f *Figure, label string) []float64 {
	for _, s := range f.Series {
		if strings.HasPrefix(s.Label, label) {
			return s.Y
		}
	}
	return nil
}

func TestFigureAddSeriesValidates(t *testing.T) {
	f := &Figure{X: []float64{1, 2}}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched series did not panic")
		}
	}()
	f.AddSeries("bad", []float64{1})
}

func TestFigureRender(t *testing.T) {
	f := &Figure{ID: "figX", Title: "demo", XLabel: "x", YLabel: "y", X: []float64{1, 2}}
	f.AddSeries("a", []float64{0.5, 1})
	f.Note("hello %d", 7)
	var buf bytes.Buffer
	f.Render(&buf)
	out := buf.String()
	for _, want := range []string{"figX", "demo", "a", "0.5", "hello 7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryCoversAllFigures(t *testing.T) {
	ids := IDs()
	want := []string{"6", "7", "8", "9", "10", "11", "12", "13", "14", "15", "16", "17", "18", "19", "a1", "a2"}
	if len(ids) != len(want) {
		t.Fatalf("ids = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("ids = %v, want %v", ids, want)
		}
	}
}

func TestFigure6Shapes(t *testing.T) {
	f, err := Figure6(tiny())
	if err != nil {
		t.Fatal(err)
	}
	d0 := seriesByLabel(f, "drift=0")
	d4 := seriesByLabel(f, "drift=4")
	if d0 == nil || d4 == nil {
		t.Fatal("missing series")
	}
	// Zero drift peaks at the center (x = 0 is index 20).
	for i := range d0 {
		if d0[i] > d0[20] {
			t.Fatalf("drift=0 peak not at 0 (index %d)", i)
		}
	}
	// Drift 4 prefers the right half.
	peak4 := 0
	for i := range d4 {
		if d4[i] > d4[peak4] {
			peak4 = i
		}
	}
	if peak4 <= 20 {
		t.Fatalf("drift=4 peak at index %d, want right of center", peak4)
	}
}

func TestFigure7NoisePDFs(t *testing.T) {
	f, err := Figure7(tiny())
	if err != nil {
		t.Fatal(err)
	}
	tower := seriesByLabel(f, "TOWER")
	floor := seriesByLabel(f, "FLOOR")
	// TOWER is sharply peaked; FLOOR flat at 1/31.
	if tower[15] < 0.15 {
		t.Fatalf("TOWER center mass = %v", tower[15])
	}
	for _, p := range floor {
		if p < 1.0/31-1e-9 || p > 1.0/31+1e-9 {
			t.Fatalf("FLOOR not uniform: %v", p)
		}
	}
	var sum float64
	for _, p := range tower {
		sum += p
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("TOWER mass = %v", sum)
	}
}

func TestFigure8QualitativeOrdering(t *testing.T) {
	f, err := Figure8(tiny())
	if err != nil {
		t.Fatal(err)
	}
	opt := seriesByLabel(f, "OPT-OFFLINE")
	heeb := seriesByLabel(f, "HEEB")
	prob := seriesByLabel(f, "PROB")
	rand := seriesByLabel(f, "RAND")
	if opt == nil || heeb == nil || prob == nil || rand == nil {
		t.Fatalf("missing series: %+v", f.Series)
	}
	for ci := 0; ci < 3; ci++ { // TOWER, ROOF, FLOOR
		if !(opt[ci] >= heeb[ci]) {
			t.Fatalf("config %d: OPT %v < HEEB %v", ci, opt[ci], heeb[ci])
		}
		if !(heeb[ci] > prob[ci]) {
			t.Fatalf("config %d: HEEB %v <= PROB %v", ci, heeb[ci], prob[ci])
		}
	}
	// WALK: HEEB beats PROB and RAND; OPT far ahead (paper Figure 12).
	if !(heeb[3] >= rand[3]) {
		t.Fatalf("WALK: HEEB %v < RAND %v", heeb[3], rand[3])
	}
	if !(opt[3] > 2*heeb[3]) {
		t.Logf("WALK OPT %v vs HEEB %v (paper shows a large gap)", opt[3], heeb[3])
	}
}

func TestFigure9MonotoneInCache(t *testing.T) {
	o := tiny()
	o.Runs = 1
	o.Length = 800
	f, err := Figure9(o)
	if err != nil {
		t.Fatal(err)
	}
	opt := seriesByLabel(f, "OPT-OFFLINE")
	heeb := seriesByLabel(f, "HEEB")
	// More memory never hurts the offline optimum... warm-up grows with the
	// cache, so compare only a prefix with matching warm-ups is impossible;
	// instead check the large-cache end dominates the small-cache start.
	if opt[len(opt)-1] < opt[0] {
		t.Fatalf("OPT at max cache (%v) below min cache (%v)", opt[len(opt)-1], opt[0])
	}
	if heeb[len(heeb)-1] < heeb[0] {
		t.Fatalf("HEEB at max cache (%v) below min cache (%v)", heeb[len(heeb)-1], heeb[0])
	}
	// With abundant memory every policy approaches OPT (Figure 9).
	last := len(opt) - 1
	if heeb[last] < 0.9*opt[last] {
		t.Fatalf("HEEB %v not converging to OPT %v at cache 50", heeb[last], opt[last])
	}
}

func TestFigures10to12Run(t *testing.T) {
	o := tiny()
	o.Runs = 1
	o.Length = 500
	for _, gen := range []Generator{Figure10, Figure11, Figure12} {
		f, err := gen(o)
		if err != nil {
			t.Fatal(err)
		}
		if len(f.Series) < 4 || len(f.X) == 0 {
			t.Fatalf("%s: malformed figure", f.ID)
		}
	}
}

func TestFigure12WalkHasNoLife(t *testing.T) {
	o := tiny()
	o.Runs = 1
	o.Length = 400
	f, err := Figure12(o)
	if err != nil {
		t.Fatal(err)
	}
	if s := seriesByLabel(f, "LIFE"); s != nil {
		t.Fatal("WALK sweep must not include LIFE")
	}
}

func TestFigure13Shape(t *testing.T) {
	f, err := Figure13(tiny())
	if err != nil {
		t.Fatal(err)
	}
	lfd := seriesByLabel(f, "LFD")
	heeb := seriesByLabel(f, "HEEB")
	lru := seriesByLabel(f, "LRU")
	randS := seriesByLabel(f, "RAND")
	for i := range lfd {
		if lfd[i] > heeb[i]+1e-9 {
			t.Fatalf("memory %v: LFD misses %v above HEEB %v (LFD must be optimal)",
				f.X[i], lfd[i], heeb[i])
		}
	}
	// Misses decrease with memory for the optimal policy.
	if lfd[len(lfd)-1] > lfd[0] {
		t.Fatalf("LFD misses increased with memory: %v", lfd)
	}
	// HEEB leads the online pack overall (paper: beats LRU/LFU by up to 20%).
	var heebSum, lruSum, randSum float64
	for i := range heeb {
		heebSum += heeb[i]
		lruSum += lru[i]
		randSum += randS[i]
	}
	if heebSum > lruSum || heebSum > randSum {
		t.Fatalf("HEEB total misses %v vs LRU %v RAND %v: HEEB should lead", heebSum, lruSum, randSum)
	}
	if len(f.Notes) == 0 || !strings.Contains(f.Notes[0], "AR(1)") {
		t.Fatal("missing AR(1) fit note")
	}
}

func TestFigure14AllocationIntuitions(t *testing.T) {
	o := tiny()
	o.Runs = 2
	o.Length = 1500
	f, err := Figure14(o)
	if err != nil {
		t.Fatal(err)
	}
	mean := func(label string) float64 {
		s := seriesByLabel(f, label)
		if s == nil {
			t.Fatalf("missing series %q", label)
		}
		var sum float64
		n := 0
		// Skip the first fifth (warm-up transient).
		for i := len(s) / 5; i < len(s); i++ {
			sum += s[i]
			n++
		}
		return sum / float64(n)
	}
	same := mean("R AND S SAME")
	lag2 := mean("R LAGS BY 2")
	lag4 := mean("R LAGS BY 4")
	sx2 := mean("S NOISE 2X")
	if same < 0.35 || same > 0.65 {
		t.Fatalf("symmetric case fraction = %v, want ~0.5", same)
	}
	// Lagging stream gets less memory; more lag, less memory.
	if !(lag2 < same) || !(lag4 < lag2) {
		t.Fatalf("lag ordering violated: same %v lag2 %v lag4 %v", same, lag2, lag4)
	}
	// Higher S variance shifts memory toward R.
	if !(sx2 > same) {
		t.Fatalf("variance intuition violated: sx2 %v <= same %v", sx2, same)
	}
}

func TestFigures17And18Run(t *testing.T) {
	o := tiny()
	o.Runs = 1
	o.Length = 800
	for _, gen := range []Generator{Figure17, Figure18} {
		f, err := gen(o)
		if err != nil {
			t.Fatal(err)
		}
		if len(f.Series) != 3 {
			t.Fatalf("%s: want 3 series, got %d", f.ID, len(f.Series))
		}
		for _, s := range f.Series {
			for _, v := range s.Y {
				if v < 0 || v > 1 {
					t.Fatalf("%s: fraction %v out of range", f.ID, v)
				}
			}
		}
	}
}

func TestFigure15And16Agree(t *testing.T) {
	o := tiny()
	exact, err := Figure15(o)
	if err != nil {
		t.Fatal(err)
	}
	approx, err := Figure16(o)
	if err != nil {
		t.Fatal(err)
	}
	for si := range exact.Series {
		e := exact.Series[si].Y
		a := approx.Series[si].Y
		for i := range e {
			diff := e[i] - a[i]
			if diff < 0 {
				diff = -diff
			}
			if diff > 0.35*maxOf(e) {
				t.Fatalf("series %d point %d: exact %v approx %v", si, i, e[i], a[i])
			}
		}
	}
	if len(approx.Notes) == 0 || !strings.Contains(approx.Notes[0], "bicubic") {
		t.Fatal("Figure 16 must record approximation accuracy")
	}
}

func maxOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func TestFigure19LookaheadHelpsThenSaturates(t *testing.T) {
	o := tiny()
	o.FlowExpectRuns = 1
	f, err := Figure19(o)
	if err != nil {
		t.Fatal(err)
	}
	fe := seriesByLabel(f, "FLOWEXPECT")
	if fe == nil {
		t.Fatal("missing FLOWEXPECT series")
	}
	// The paper: limited look-ahead (ΔT ≈ 5) already brings most of the
	// improvement. Check ΔT=5 beats ΔT=1 and the tail stays in a band.
	if !(fe[3] > fe[0]) { // index 3 is ΔT=5
		t.Fatalf("look-ahead 5 (%v) not better than 1 (%v)", fe[3], fe[0])
	}
	// Baselines are flat.
	for _, l := range []string{"RAND", "PROB", "LIFE"} {
		s := seriesByLabel(f, l)
		for i := 1; i < len(s); i++ {
			if s[i] != s[0] {
				t.Fatalf("%s baseline not flat", l)
			}
		}
	}
}

func TestPaperScaleOptions(t *testing.T) {
	o := PaperScale()
	if o.Runs != 50 || !o.FlowExpect {
		t.Fatalf("PaperScale = %+v", o)
	}
}

func TestFigure8WithFlowExpect(t *testing.T) {
	o := tiny()
	o.Runs = 1
	o.Length = 400
	o.FlowExpect = true
	o.FlowExpectRuns = 1
	o.FlowExpectLength = 150
	o.Lookahead = 3
	f, err := Figure8(o)
	if err != nil {
		t.Fatal(err)
	}
	fe := seriesByLabel(f, "FLOWEXPECT")
	if fe == nil {
		t.Fatal("missing FLOWEXPECT series")
	}
	opt := seriesByLabel(f, "OPT-OFFLINE")
	for ci := range fe {
		if fe[ci] <= 0 {
			t.Fatalf("config %d: FlowExpect produced nothing", ci)
		}
		// Scaled estimate can wobble but should stay below ~1.5x OPT.
		if fe[ci] > 1.5*opt[ci] {
			t.Fatalf("config %d: FlowExpect %v implausibly above OPT %v", ci, fe[ci], opt[ci])
		}
	}
	foundNote := false
	for _, n := range f.Notes {
		if strings.Contains(n, "FLOWEXPECT") {
			foundNote = true
		}
	}
	if !foundNote {
		t.Fatal("missing FlowExpect scaling note")
	}
}

func TestAblationControlPoints(t *testing.T) {
	f, err := AblationControlPoints(tiny())
	if err != nil {
		t.Fatal(err)
	}
	maxErr := seriesByLabel(f, "max abs err")
	misses := seriesByLabel(f, "REAL misses")
	if maxErr == nil || misses == nil {
		t.Fatalf("missing series: %+v", f.Series)
	}
	// Error decreases (weakly) as the control grid densifies, comparing the
	// coarsest and finest grids.
	if maxErr[len(maxErr)-1] > maxErr[0] {
		t.Fatalf("densest grid error %v above coarsest %v", maxErr[len(maxErr)-1], maxErr[0])
	}
	for _, m := range misses {
		if m <= 0 || m > 3650 {
			t.Fatalf("implausible miss count %v", m)
		}
	}
	if len(f.Notes) == 0 {
		t.Fatal("missing exact-HEEB note")
	}
}

func TestAblationAlpha(t *testing.T) {
	o := tiny()
	o.Runs = 2
	o.Length = 1200
	f, err := AblationAlpha(o)
	if err != nil {
		t.Fatal(err)
	}
	y := seriesByLabel(f, "HEEB")
	if len(y) != 6 {
		t.Fatalf("series = %v", y)
	}
	// The heuristic estimate (multiplier 1, index 2) should be within 5% of
	// the best sweep point — the paper's selection rule is near-optimal.
	best := y[0]
	for _, v := range y {
		if v > best {
			best = v
		}
	}
	if y[2] < 0.95*best {
		t.Fatalf("estimate multiplier 1 (%v) far below best (%v)", y[2], best)
	}
}

// Every registered figure must generate, render, chart and CSV-encode
// without error at micro scale.
func TestRegistrySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("micro-scale full-registry sweep")
	}
	o := Defaults()
	o.Runs = 1
	o.Length = 300
	o.Cache = 5
	o.Seed = 2
	o.FlowExpect = false
	o.FlowExpectRuns = 1
	o.FlowExpectLength = 60
	// The FlowExpect sweep and the ablations have dedicated tests and
	// dominate runtime; the smoke pass covers the rest.
	skip := map[string]bool{"19": true, "a1": true, "a2": true}
	for id, gen := range Registry() {
		if skip[id] {
			continue
		}
		fig, err := gen(o)
		if err != nil {
			t.Fatalf("figure %s: %v", id, err)
		}
		if len(fig.X) == 0 || len(fig.Series) == 0 {
			t.Fatalf("figure %s: empty", id)
		}
		var buf bytes.Buffer
		fig.Render(&buf)
		fig.Chart(&buf, 40, 10)
		if err := fig.WriteCSV(&buf); err != nil {
			t.Fatalf("figure %s csv: %v", id, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("figure %s produced no output", id)
		}
	}
}
