package experiment

import (
	"os"

	"stochstream/internal/cachepolicy"
	"stochstream/internal/cachesim"
	"stochstream/internal/core"
	"stochstream/internal/dist"
	"stochstream/internal/process"
	"stochstream/internal/stats"
	"stochstream/internal/workload"
)

// Figure6 regenerates the precomputed h_R curves for a random walk with
// N(0,1) steps and drifts 0, 2, 4, over v_x − x_{t0} ∈ [−20, 20] with
// Lexp(α = cache size).
func Figure6(o Options) (*Figure, error) {
	fig := &Figure{
		ID:     "fig6",
		Title:  "Precomputed h_R for random walk with drift",
		XLabel: "vx - x_t0",
		YLabel: "H (Lexp, alpha = cache size)",
	}
	alpha := float64(o.Cache)
	l := core.LExp{Alpha: alpha}
	for d := -20; d <= 20; d++ {
		fig.X = append(fig.X, float64(d))
	}
	for _, drift := range []float64{0, 2, 4} {
		w := &process.GaussianWalk{Drift: drift, Sigma: 1}
		h1, err := core.PrecomputeH1(w, l, -20, 20, 1, 0)
		if err != nil {
			return nil, err
		}
		y := make([]float64, 0, len(fig.X))
		for d := -20; d <= 20; d++ {
			y = append(y, h1.At(0, d))
		}
		fig.AddSeries(labelDrift(drift), y)
	}
	return fig, nil
}

func labelDrift(d float64) string {
	switch d {
	case 0:
		return "drift=0"
	case 2:
		return "drift=2"
	default:
		return "drift=4"
	}
}

// Figure7 regenerates the TOWER/ROOF/FLOOR noise pdfs for stream S (bounded
// normal σ=2, bounded normal σ=5, bounded uniform, all on [−15, 15]).
func Figure7(Options) (*Figure, error) {
	fig := &Figure{
		ID:     "fig7",
		Title:  "TOWER/ROOF/FLOOR noise distributions (stream S)",
		XLabel: "value",
		YLabel: "probability",
	}
	for v := -15; v <= 15; v++ {
		fig.X = append(fig.X, float64(v))
	}
	pdfs := []struct {
		label string
		p     dist.PMF
	}{
		{"TOWER", dist.BoundedNormal(2, 15)},
		{"ROOF", dist.BoundedNormal(5, 15)},
		{"FLOOR", dist.NewUniform(-15, 15)},
	}
	for _, e := range pdfs {
		y := make([]float64, 0, len(fig.X))
		for v := -15; v <= 15; v++ {
			y = append(y, e.p.Prob(v))
		}
		fig.AddSeries(e.label, y)
	}
	return fig, nil
}

// realWorkload builds the REAL experiment once per figure: the synthetic
// Melbourne-like series by default, or a user-supplied trace file.
func realWorkload(o Options) (workload.RealWorkload, error) {
	if o.RealTracePath != "" {
		f, err := os.Open(o.RealTracePath)
		if err != nil {
			return workload.RealWorkload{}, err
		}
		defer f.Close()
		return workload.LoadRealTrace(f, 10)
	}
	return workload.Real().Build(stats.NewRNG(o.Seed))
}

// Figure13 compares LFD, RAND, LRU, PROB(LFU) and HEEB on the REAL caching
// workload across memory sizes, reporting total misses of a single run (the
// paper uses one run because the data set is fixed).
func Figure13(o Options) (*Figure, error) {
	rw, err := realWorkload(o)
	if err != nil {
		return nil, err
	}
	title := "REAL (synthetic Melbourne temperatures): misses vs memory size"
	if o.RealTracePath != "" {
		title = "REAL (user trace " + o.RealTracePath + "): misses vs memory size"
	}
	fig := &Figure{
		ID:     "fig13",
		Title:  title,
		XLabel: "memory size",
		YLabel: "number of misses",
	}
	fig.Note("fitted AR(1): X_t = %.3f + %.3f X_{t-1} + N(0, %.2f^2) over %d transitions (values are 0.1 °C buckets)",
		rw.Fit.Phi0, rw.Fit.Phi1, rw.Fit.Sigma, rw.Fit.N)
	sizes := []int{10, 25, 50, 75, 100, 150, 200, 250, 300}
	for _, m := range sizes {
		fig.X = append(fig.X, float64(m))
	}
	policies := []struct {
		label string
		mk    func() cachesim.Policy
	}{
		{"LFD", func() cachesim.Policy { return &cachepolicy.LFD{} }},
		{"RAND", func() cachesim.Policy { return &cachepolicy.Rand{} }},
		{"LRU", func() cachesim.Policy { return &cachepolicy.LRU{} }},
		{"PROB(LFU)", func() cachesim.Policy { return &cachepolicy.LFU{} }},
		{"HEEB", func() cachesim.Policy { return &cachepolicy.HEEB{Model: rw.Model} }},
	}
	for _, pe := range policies {
		y := make([]float64, 0, len(sizes))
		for _, m := range sizes {
			res := cachesim.Run(rw.Refs, pe.mk(), cachesim.Config{Capacity: m}, stats.NewRNG(o.Seed+7))
			y = append(y, float64(res.Misses))
		}
		fig.AddSeries(pe.label, y)
	}
	return fig, nil
}

// h2FigureGrid evaluates the REAL h2 surface (exact or approximated) on a
// coarse display grid: one series per observation value x, sampled over
// candidate values v.
func h2FigureGrid(id, title string, o Options, approx bool) (*Figure, error) {
	rw, err := realWorkload(o)
	if err != nil {
		return nil, err
	}
	model := rw.Model
	alpha := 100.0 // representative cache size for the surface plots
	l := core.LExp{Alpha: alpha}
	vLo, vHi := 50, 400
	fig := &Figure{
		ID:     id,
		Title:  title,
		XLabel: "tuple value vx (0.1 °C buckets)",
		YLabel: "H",
	}
	for v := vLo; v <= vHi; v += 25 {
		fig.X = append(fig.X, float64(v))
	}
	var h2 *core.H2
	if approx {
		h2, err = core.PrecomputeH2(model, l, vLo, vHi, vLo, vHi, 5, 5, 0)
		if err != nil {
			return nil, err
		}
		maxErr, meanErr := h2.Accuracy(model, l, 0, 29, 29)
		fig.Note("bicubic approximation from 25 control points: max abs err %.3g, mean abs err %.3g", maxErr, meanErr)
	}
	for _, x := range []int{100, 200, 300} {
		y := make([]float64, 0, len(fig.X))
		for v := vLo; v <= vHi; v += 25 {
			if approx {
				y = append(y, h2.At(x, v))
			} else {
				y = append(y, core.MarginalH(model, x, v, l, 0))
			}
		}
		fig.AddSeries(labelX(x), y)
	}
	return fig, nil
}

func labelX(x int) string {
	switch x {
	case 100:
		return "x_t0=100"
	case 200:
		return "x_t0=200"
	default:
		return "x_t0=300"
	}
}

// Figure15 reports the exact h2 surface for the REAL AR(1) model.
func Figure15(o Options) (*Figure, error) {
	return h2FigureGrid("fig15", "HEEB surface for REAL (actual)", o, false)
}

// Figure16 reports the bicubic approximation of the h2 surface from the
// paper's 25 control points, with its accuracy recorded as a note.
func Figure16(o Options) (*Figure, error) {
	return h2FigureGrid("fig16", "HEEB surface for REAL (bicubic, 25 control points)", o, true)
}
