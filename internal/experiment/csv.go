package experiment

import (
	"encoding/csv"
	"io"
	"strconv"
)

// WriteCSV emits the figure as RFC-4180 CSV: a header row of the x label and
// series labels, one row per x value, and one trailing comment-style row per
// note (prefixed "#note").
func (f *Figure) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append([]string{f.XLabel}, labels(f)...)
	if err := cw.Write(header); err != nil {
		return err
	}
	for i := range f.X {
		row := make([]string, 0, len(f.Series)+1)
		row = append(row, formatFloat(f.X[i]))
		for _, s := range f.Series {
			row = append(row, formatFloat(s.Y[i]))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	for _, n := range f.Notes {
		if err := cw.Write([]string{"#note", n}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func labels(f *Figure) []string {
	out := make([]string, len(f.Series))
	for i, s := range f.Series {
		out[i] = s.Label
	}
	return out
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', 8, 64)
}
