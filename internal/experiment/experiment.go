// Package experiment regenerates every figure of the paper's evaluation
// (Section 6): the precomputed h1 curves (Fig. 6), the workload noise pdfs
// (Fig. 7), the cross-workload policy comparison (Fig. 8), the cache-size
// sweeps (Figs. 9–12), the REAL caching comparison (Fig. 13), the memory-
// allocation studies (Figs. 14, 17, 18), the h2 surface and its bicubic
// approximation (Figs. 15–16), and the FlowExpect look-ahead study
// (Fig. 19). Each harness returns a Figure of labeled series that renders as
// a plain-text table; cmd/repro exposes them on the command line.
package experiment

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Series is one labeled line of a figure: y values over the shared x axis.
type Series struct {
	Label string
	Y     []float64
}

// Figure is the reproducible result of one experiment.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	// X is the shared abscissa of all series.
	X []float64
	// Series holds one entry per plotted line, each with len(Y) == len(X).
	Series []Series
	// Notes carries free-form observations (fit parameters, approximation
	// errors, run variances) recorded alongside the data.
	Notes []string
}

// AddSeries appends a labeled series, panicking on a length mismatch so
// harness bugs surface immediately.
func (f *Figure) AddSeries(label string, y []float64) {
	if len(y) != len(f.X) {
		panic(fmt.Sprintf("experiment: series %q has %d points for %d x values", label, len(y), len(f.X)))
	}
	f.Series = append(f.Series, Series{Label: label, Y: y})
}

// Note records an observation.
func (f *Figure) Note(format string, args ...interface{}) {
	f.Notes = append(f.Notes, fmt.Sprintf(format, args...))
}

// Render writes the figure as a plain-text table.
func (f *Figure) Render(w io.Writer) {
	fmt.Fprintf(w, "%s: %s\n", f.ID, f.Title)
	headers := []string{f.XLabel}
	for _, s := range f.Series {
		headers = append(headers, s.Label)
	}
	widths := make([]int, len(headers))
	rows := make([][]string, len(f.X))
	for i := range f.X {
		row := []string{trimFloat(f.X[i])}
		for _, s := range f.Series {
			row = append(row, trimFloat(s.Y[i]))
		}
		rows[i] = row
	}
	for c, h := range headers {
		widths[c] = len(h)
		for _, row := range rows {
			if len(row[c]) > widths[c] {
				widths[c] = len(row[c])
			}
		}
	}
	writeRow := func(cells []string) {
		parts := make([]string, len(cells))
		for c, cell := range cells {
			parts[c] = fmt.Sprintf("%*s", widths[c], cell)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	writeRow(headers)
	for _, row := range rows {
		writeRow(row)
	}
	if f.YLabel != "" {
		fmt.Fprintf(w, "  (y: %s)\n", f.YLabel)
	}
	for _, n := range f.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.4f", v)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}

// Options controls experiment scale. The paper's full scale (50 runs × 5000
// tuples) takes minutes; the defaults are sized for interactive use and can
// be raised via cmd/repro flags.
type Options struct {
	// Runs is the number of independent runs averaged per data point
	// (paper: 50).
	Runs int
	// Length is the stream length per run (paper: 5000).
	Length int
	// Cache is the cache size where a figure fixes it (paper: 10).
	Cache int
	// Seed is the base seed; run i uses Seed+i.
	Seed uint64
	// FlowExpect enables the expensive FlowExpect policy in Figure 8.
	FlowExpect bool
	// FlowExpectRuns/FlowExpectLength shrink FlowExpect's share of the
	// work; zero means "same as Runs/Length".
	FlowExpectRuns   int
	FlowExpectLength int
	// Lookahead is FlowExpect's l (paper Figure 8 setting; Figure 19 sweeps
	// its own).
	Lookahead int
	// RealTracePath optionally replaces the synthetic REAL series with an
	// actual reference trace file (one observation per line or CSV with the
	// value last) for Figures 13, 15, 16 and ablation a1.
	RealTracePath string
}

// Defaults returns interactive-scale options.
func Defaults() Options {
	return Options{
		Runs:             10,
		Length:           5000,
		Cache:            10,
		Seed:             1,
		FlowExpect:       false,
		FlowExpectRuns:   2,
		FlowExpectLength: 1000,
		Lookahead:        5,
	}
}

// PaperScale returns the paper's full experiment scale.
func PaperScale() Options {
	o := Defaults()
	o.Runs = 50
	o.FlowExpect = true
	o.FlowExpectRuns = 3
	return o
}

// Generator produces one figure.
type Generator func(Options) (*Figure, error)

// Registry maps figure ids ("6".."19") to their generators.
func Registry() map[string]Generator {
	return map[string]Generator{
		"6":  Figure6,
		"7":  Figure7,
		"8":  Figure8,
		"9":  Figure9,
		"10": Figure10,
		"11": Figure11,
		"12": Figure12,
		"13": Figure13,
		"14": Figure14,
		"15": Figure15,
		"16": Figure16,
		"17": Figure17,
		"18": Figure18,
		"19": Figure19,
		"a1": AblationControlPoints,
		"a2": AblationAlpha,
	}
}

// IDs returns the registered figure ids in numeric order.
func IDs() []string {
	reg := Registry()
	ids := make([]string, 0, len(reg))
	for id := range reg {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		ni, nj := atoiSafe(ids[i]), atoiSafe(ids[j])
		if (ni == 0) != (nj == 0) {
			return nj == 0 // numeric figures before ablation ids
		}
		if ni != nj {
			return ni < nj
		}
		return ids[i] < ids[j]
	})
	return ids
}

func atoiSafe(s string) int {
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0
		}
		n = n*10 + int(c-'0')
	}
	return n
}
