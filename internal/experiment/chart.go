package experiment

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Chart renders the figure as an ASCII line chart: one mark per series per x
// position, sharing a y axis, approximating the paper's plots in a terminal.
// Width and height are the plot area in characters; sensible minimums are
// enforced.
func (f *Figure) Chart(w io.Writer, width, height int) {
	if len(f.X) == 0 || len(f.Series) == 0 {
		fmt.Fprintf(w, "%s: (no data)\n", f.ID)
		return
	}
	if width < 20 {
		width = 20
	}
	if height < 5 {
		height = 5
	}
	yMin, yMax := math.Inf(1), math.Inf(-1)
	for _, s := range f.Series {
		for _, v := range s.Y {
			yMin = math.Min(yMin, v)
			yMax = math.Max(yMax, v)
		}
	}
	//lint:ignore floateq degenerate-range guard: a flat series yields bitwise-identical min/max
	if yMax == yMin {
		yMax = yMin + 1
	}
	xMin, xMax := f.X[0], f.X[len(f.X)-1]
	//lint:ignore floateq degenerate-range guard: a single x yields bitwise-identical endpoints
	if xMax == xMin {
		xMax = xMin + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	marks := seriesMarks()
	for si, s := range f.Series {
		mark := marks[si%len(marks)]
		for i, x := range f.X {
			col := int(math.Round((x - xMin) / (xMax - xMin) * float64(width-1)))
			row := height - 1 - int(math.Round((s.Y[i]-yMin)/(yMax-yMin)*float64(height-1)))
			if row >= 0 && row < height && col >= 0 && col < width {
				if grid[row][col] == ' ' {
					grid[row][col] = mark
				} else {
					grid[row][col] = '*' // overlap
				}
			}
		}
	}

	fmt.Fprintf(w, "%s: %s\n", f.ID, f.Title)
	top := fmt.Sprintf("%.4g", yMax)
	bottom := fmt.Sprintf("%.4g", yMin)
	labelW := max(len(top), len(bottom))
	for r, row := range grid {
		label := strings.Repeat(" ", labelW)
		switch r {
		case 0:
			label = fmt.Sprintf("%*s", labelW, top)
		case height - 1:
			label = fmt.Sprintf("%*s", labelW, bottom)
		}
		fmt.Fprintf(w, "  %s |%s\n", label, string(row))
	}
	fmt.Fprintf(w, "  %s +%s\n", strings.Repeat(" ", labelW), strings.Repeat("-", width))
	fmt.Fprintf(w, "  %s  %-*s%s\n", strings.Repeat(" ", labelW), width-len(fmt.Sprintf("%.4g", xMax)),
		fmt.Sprintf("%.4g", xMin), fmt.Sprintf("%.4g", xMax))
	var legend []string
	for si, s := range f.Series {
		legend = append(legend, fmt.Sprintf("%c=%s", marks[si%len(marks)], s.Label))
	}
	fmt.Fprintf(w, "  %s (x: %s, y: %s)\n", strings.Join(legend, "  "), f.XLabel, f.YLabel)
}

func seriesMarks() []byte { return []byte{'o', 'x', '+', '#', '@', '%', '~', '^'} }
