package experiment

import (
	"fmt"

	"stochstream/internal/core"
	"stochstream/internal/join"
	"stochstream/internal/policy"
	"stochstream/internal/stats"
	"stochstream/internal/workload"
)

// joinAverager runs a policy constructor over several generated runs of a
// workload and reports the mean post-warm-up join count, mirroring the
// paper's measurement protocol (Section 6.2).
type joinAverager struct {
	w      workload.JoinWorkload
	cfg    join.Config
	runs   int
	length int
	seed   uint64
	// streams are generated once per run and shared by all policies.
	rs, ss [][]int
}

func newJoinAverager(w workload.JoinWorkload, cacheSize, runs, length int, seed uint64) *joinAverager {
	a := &joinAverager{
		w:      w,
		cfg:    join.Config{CacheSize: cacheSize, Warmup: -1, Procs: w.Procs},
		runs:   runs,
		length: length,
		seed:   seed,
	}
	for i := 0; i < runs; i++ {
		r, s := w.Generate(stats.NewRNG(seed+uint64(i)), length)
		a.rs = append(a.rs, r)
		a.ss = append(a.ss, s)
	}
	return a
}

// mean averages post-warm-up joins of the given policy across runs and also
// reports the relative standard deviation.
func (a *joinAverager) mean(mk func() join.Policy) (mean, relSD float64) {
	var sum stats.Summary
	for i := 0; i < a.runs; i++ {
		res := join.Run(a.rs[i], a.ss[i], mk(), a.cfg, stats.NewRNG(a.seed+1000+uint64(i)))
		sum.Add(float64(res.Joins))
	}
	return sum.Mean(), sum.RelStdDev()
}

// opt averages the offline optimum across the same runs.
func (a *joinAverager) opt() float64 {
	var sum stats.Summary
	warm := a.cfg.EffectiveWarmup()
	for i := 0; i < a.runs; i++ {
		res := core.OptOfflineJoin(a.rs[i], a.ss[i], a.cfg.CacheSize, a.cfg.Window)
		sum.Add(float64(res.CountAfter(warm - 1)))
	}
	return sum.Mean()
}

// standardPolicies returns the paper's comparison set for a workload (LIFE
// only when a window exists).
func standardPolicies(w workload.JoinWorkload) []func() join.Policy {
	ps := []func() join.Policy{
		func() join.Policy { return &policy.Rand{Lifetime: w.Lifetime} },
		func() join.Policy { return &policy.Prob{Lifetime: w.Lifetime} },
	}
	if w.Lifetime != nil {
		ps = append(ps, func() join.Policy { return &policy.Life{Lifetime: w.Lifetime} })
	}
	ps = append(ps, func() join.Policy { return w.HEEBPolicy() })
	return ps
}

// Figure8 compares OPT-offline, FlowExpect (optional), RAND, PROB, LIFE and
// HEEB across the four synthetic workloads at a fixed cache size.
func Figure8(o Options) (*Figure, error) {
	configs := []workload.JoinWorkload{
		workload.Tower().Join(),
		workload.Roof().Join(),
		workload.Floor().Join(),
		workload.Walk(),
	}
	fig := &Figure{
		ID:     "fig8",
		Title:  "Average join counts across synthetic data configurations",
		XLabel: "config(1=TOWER 2=ROOF 3=FLOOR 4=WALK)",
		YLabel: "avg result tuples after warm-up",
	}
	for i := range configs {
		fig.X = append(fig.X, float64(i+1))
	}
	names := []string{"OPT-OFFLINE", "RAND", "PROB", "LIFE", "HEEB"}
	vals := map[string][]float64{}
	for _, n := range names {
		vals[n] = make([]float64, len(configs))
	}
	feVals := make([]float64, len(configs))
	for ci, w := range configs {
		a := newJoinAverager(w, o.Cache, o.Runs, o.Length, o.Seed)
		vals["OPT-OFFLINE"][ci] = a.opt()
		m, sd := a.mean(func() join.Policy { return &policy.Rand{Lifetime: w.Lifetime} })
		vals["RAND"][ci] = m
		fig.Note("%s RAND rel. stdev %.3f over %d runs", w.Name, sd, o.Runs)
		vals["PROB"][ci], _ = a.mean(func() join.Policy { return &policy.Prob{Lifetime: w.Lifetime} })
		if w.Lifetime != nil {
			vals["LIFE"][ci], _ = a.mean(func() join.Policy { return &policy.Life{Lifetime: w.Lifetime} })
		}
		vals["HEEB"][ci], _ = a.mean(func() join.Policy { return w.HEEBPolicy() })
		if o.FlowExpect {
			runs, length := o.FlowExpectRuns, o.FlowExpectLength
			if runs == 0 {
				runs = o.Runs
			}
			if length == 0 {
				length = o.Length
			}
			fa := newJoinAverager(w, o.Cache, runs, length, o.Seed)
			m, _ := fa.mean(func() join.Policy { return &policy.FlowExpect{Lookahead: o.Lookahead} })
			// Scale to the full length for comparability of the bar chart.
			feVals[ci] = m * float64(o.Length) / float64(length)
			fig.Note("%s FLOWEXPECT measured over %d runs of %d tuples, linearly scaled to %d",
				w.Name, runs, length, o.Length)
		}
	}
	for _, n := range names {
		if n == "LIFE" {
			fig.AddSeries("LIFE(-=WALK n/a)", vals[n])
			continue
		}
		fig.AddSeries(n, vals[n])
	}
	if o.FlowExpect {
		fig.AddSeries("FLOWEXPECT", feVals)
	}
	return fig, nil
}

// cacheSweep is the shared harness of Figures 9–12.
func cacheSweep(id string, w workload.JoinWorkload, o Options) (*Figure, error) {
	sizes := []int{1, 2, 3, 5, 7, 10, 15, 20, 25, 30, 40, 50}
	fig := &Figure{
		ID:     id,
		Title:  fmt.Sprintf("%s: join count vs cache size", w.Name),
		XLabel: "memory size",
		YLabel: "avg result tuples after warm-up",
	}
	for _, k := range sizes {
		fig.X = append(fig.X, float64(k))
	}
	labels := []string{"OPT-OFFLINE", "RAND", "PROB"}
	if w.Lifetime != nil {
		labels = append(labels, "LIFE")
	}
	labels = append(labels, "HEEB")
	series := map[string][]float64{}
	for _, l := range labels {
		series[l] = nil
	}
	for _, k := range sizes {
		a := newJoinAverager(w, k, o.Runs, o.Length, o.Seed)
		series["OPT-OFFLINE"] = append(series["OPT-OFFLINE"], a.opt())
		m, _ := a.mean(func() join.Policy { return &policy.Rand{Lifetime: w.Lifetime} })
		series["RAND"] = append(series["RAND"], m)
		m, _ = a.mean(func() join.Policy { return &policy.Prob{Lifetime: w.Lifetime} })
		series["PROB"] = append(series["PROB"], m)
		if w.Lifetime != nil {
			m, _ = a.mean(func() join.Policy { return &policy.Life{Lifetime: w.Lifetime} })
			series["LIFE"] = append(series["LIFE"], m)
		}
		m, _ = a.mean(func() join.Policy { return w.HEEBPolicy() })
		series["HEEB"] = append(series["HEEB"], m)
	}
	for _, l := range labels {
		fig.AddSeries(l, series[l])
	}
	return fig, nil
}

// Figure9 sweeps cache size on TOWER.
func Figure9(o Options) (*Figure, error) { return cacheSweep("fig9", workload.Tower().Join(), o) }

// Figure10 sweeps cache size on ROOF.
func Figure10(o Options) (*Figure, error) { return cacheSweep("fig10", workload.Roof().Join(), o) }

// Figure11 sweeps cache size on FLOOR.
func Figure11(o Options) (*Figure, error) { return cacheSweep("fig11", workload.Floor().Join(), o) }

// Figure12 sweeps cache size on WALK.
func Figure12(o Options) (*Figure, error) { return cacheSweep("fig12", workload.Walk(), o) }

// occupancyStudy runs HEEB with occupancy tracking over variants of TOWER
// and reports the fraction of cache held by R tuples, sampled along the run.
func occupancyStudy(id, title string, variants []occupancyVariant, o Options) (*Figure, error) {
	samplePoints := 25
	fig := &Figure{
		ID:     id,
		Title:  title,
		XLabel: "time",
		YLabel: "fraction of cache taken by R tuples",
	}
	step := o.Length / samplePoints
	if step < 1 {
		step = 1
	}
	for t := step - 1; t < o.Length; t += step {
		fig.X = append(fig.X, float64(t))
	}
	for _, v := range variants {
		w := v.spec.Join()
		cfg := join.Config{CacheSize: o.Cache, Warmup: -1, Procs: w.Procs, TrackOccupancy: true}
		acc := make([]float64, len(fig.X))
		for run := 0; run < o.Runs; run++ {
			r, s := w.Generate(stats.NewRNG(o.Seed+uint64(run)), o.Length)
			res := join.Run(r, s, w.HEEBPolicy(), cfg, stats.NewRNG(o.Seed+500+uint64(run)))
			for i, t := range fig.X {
				acc[i] += res.OccupancyR[int(t)]
			}
		}
		for i := range acc {
			acc[i] /= float64(o.Runs)
		}
		fig.AddSeries(v.label, acc)
	}
	return fig, nil
}

type occupancyVariant struct {
	label string
	spec  workload.TrendSpec
}

// symmetricTower is the Figure 14/17/18 baseline: R and S share identical
// statistical properties and no lag.
func symmetricTower() workload.TrendSpec {
	ts := workload.Tower()
	ts.Lag = 0
	ts.RBound, ts.SBound = 15, 15
	ts.RSigma, ts.SSigma = 1, 1
	return ts
}

// Figure14 reproduces the memory-allocation study: HEEB's division of cache
// between R and S under lags and variance scalings of the TOWER setup.
func Figure14(o Options) (*Figure, error) {
	base := symmetricTower()
	lag2, lag4 := base, base
	lag2.Lag, lag2.Name = 2, "lag2"
	lag4.Lag, lag4.Name = 4, "lag4"
	sx2, sx4 := base, base
	sx2.SSigma, sx2.Name = 2, "Sx2"
	sx4.SSigma, sx4.Name = 4, "Sx4"
	return occupancyStudy("fig14", "Memory allocation between streams under HEEB",
		[]occupancyVariant{
			{"R AND S SAME", base},
			{"R LAGS BY 2", lag2},
			{"R LAGS BY 4", lag4},
			{"S NOISE 2X STDEV", sx2},
			{"S NOISE 4X STDEV", sx4},
		}, o)
}

// Figure17 tracks occupancy over time for stdev ratios 1:1, 1:2, 1:4.
func Figure17(o Options) (*Figure, error) {
	base := symmetricTower()
	r2, r4 := base, base
	r2.SSigma = 2
	r4.SSigma = 4
	return occupancyStudy("fig17", "Cache fraction of stream R over time (variance ratios)",
		[]occupancyVariant{
			{"Std0:Std1=1:1", base},
			{"Std0:Std1=1:2", r2},
			{"Std0:Std1=1:4", r4},
		}, o)
}

// Figure18 tracks occupancy over time for lags 1, 2, 4.
func Figure18(o Options) (*Figure, error) {
	base := symmetricTower()
	l1, l2, l4 := base, base, base
	l1.Lag, l2.Lag, l4.Lag = 1, 2, 4
	return occupancyStudy("fig18", "Cache fraction of stream R over time (lags)",
		[]occupancyVariant{
			{"R 1 BEHIND S", l1},
			{"R 2 BEHIND S", l2},
			{"R 4 BEHIND S", l4},
		}, o)
}

// Figure19 studies FlowExpect's look-ahead distance on a FLOOR-style
// workload with stream length 500 and memory 20, with RAND/PROB/LIFE as
// flat baselines (their performance does not depend on the look-ahead).
func Figure19(o Options) (*Figure, error) {
	w := workload.Floor().Join()
	length := 500
	cache := 20
	lookaheads := []int{1, 2, 3, 5, 7, 10, 15, 20, 25, 30}
	fig := &Figure{
		ID:     "fig19",
		Title:  "Look-ahead effect of FlowExpect (FLOOR-style, len 500, mem 20)",
		XLabel: "look-ahead ΔT",
		YLabel: "avg result tuples after warm-up",
	}
	for _, l := range lookaheads {
		fig.X = append(fig.X, float64(l))
	}
	runs := o.FlowExpectRuns
	if runs == 0 {
		runs = 2
	}
	a := newJoinAverager(w, cache, runs, length, o.Seed)
	fe := make([]float64, len(lookaheads))
	for i, l := range lookaheads {
		fe[i], _ = a.mean(func() join.Policy { return &policy.FlowExpect{Lookahead: l} })
	}
	fig.AddSeries("FLOWEXPECT", fe)
	flat := func(mk func() join.Policy) []float64 {
		m, _ := a.mean(mk)
		out := make([]float64, len(lookaheads))
		for i := range out {
			out[i] = m
		}
		return out
	}
	fig.AddSeries("RAND", flat(func() join.Policy { return &policy.Rand{Lifetime: w.Lifetime} }))
	fig.AddSeries("PROB", flat(func() join.Policy { return &policy.Prob{Lifetime: w.Lifetime} }))
	fig.AddSeries("LIFE", flat(func() join.Policy { return &policy.Life{Lifetime: w.Lifetime} }))
	return fig, nil
}
