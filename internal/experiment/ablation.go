package experiment

import (
	"stochstream/internal/cachepolicy"
	"stochstream/internal/cachesim"
	"stochstream/internal/core"
	"stochstream/internal/join"
	"stochstream/internal/policy"
	"stochstream/internal/stats"
	"stochstream/internal/workload"
)

// The ablation experiments quantify the design choices DESIGN.md calls out.
// They are registered beside the paper figures as ids "a1" and "a2".

// AblationControlPoints (a1) sweeps the h2 control-grid density for the REAL
// model and reports both approximation error and the end effect on cache
// misses — the investigation the paper defers ("we plan to investigate the
// effect of approximation on the performance of HEEB as future work").
func AblationControlPoints(o Options) (*Figure, error) {
	rw, err := realWorkload(o)
	if err != nil {
		return nil, err
	}
	capacity := 100
	l := core.LExp{Alpha: float64(capacity)}
	grid := []int{2, 3, 5, 9, 17}
	fig := &Figure{
		ID:     "a1",
		Title:  "Ablation: h2 control-point density (REAL, capacity 100)",
		XLabel: "control points per axis",
		YLabel: "errors scaled by 1e6; misses absolute",
	}
	mean := rw.Model.Phi0 / (1 - rw.Model.Phi1)
	sd := rw.Model.Sigma / 0.7 // crude stationary-sd proxy for the domain
	lo, hi := int(mean-3*sd), int(mean+3*sd)
	var maxErrs, meanErrs, misses []float64
	for _, n := range grid {
		h2, err := core.PrecomputeH2(rw.Model, l, lo, hi, lo, hi, n, n, 0)
		if err != nil {
			return nil, err
		}
		maxErr, meanErr := h2.Accuracy(rw.Model, l, 0, 25, 25)
		maxErrs = append(maxErrs, maxErr*1e6)
		meanErrs = append(meanErrs, meanErr*1e6)
		res := cachesim.Run(rw.Refs, &cachepolicy.HEEB{Model: rw.Model, ControlPoints: n},
			cachesim.Config{Capacity: capacity}, stats.NewRNG(o.Seed+3))
		misses = append(misses, float64(res.Misses))
		fig.X = append(fig.X, float64(n))
	}
	fig.AddSeries("max abs err (1e-6)", maxErrs)
	fig.AddSeries("mean abs err (1e-6)", meanErrs)
	fig.AddSeries("REAL misses", misses)
	// Exact-H reference: direct marginal scoring with no approximation.
	exact := cachesim.Run(rw.Refs, &exactMarginalHEEB{model: rw.Model, alpha: float64(capacity)},
		cachesim.Config{Capacity: capacity}, stats.NewRNG(o.Seed+3))
	fig.Note("exact (unapproximated) HEEB misses: %d", exact.Misses)
	return fig, nil
}

// exactMarginalHEEB scores with MarginalH directly, bypassing h2.
type exactMarginalHEEB struct {
	model interface {
		ForecastNormal(last, delta int) (float64, float64)
	}
	alpha float64
	hist  []int
}

func (p *exactMarginalHEEB) Name() string { return "HEEB-exact" }
func (p *exactMarginalHEEB) Reset(int, []int, *stats.RNG) {
	p.hist = p.hist[:0]
}
func (p *exactMarginalHEEB) Touch(_, v int, _ bool) { p.hist = append(p.hist, v) }
func (p *exactMarginalHEEB) Victim(_ int, v int, cached []int) (int, bool) {
	last := p.hist[len(p.hist)-1]
	l := core.LExp{Alpha: p.alpha}
	score := func(u int) float64 { return core.MarginalH(p.model, last, u, l, 0) }
	bestIdx, bestH := -1, score(v)
	for i, cv := range cached {
		if h := score(cv); h < bestH {
			bestIdx, bestH = i, h
		}
	}
	if bestIdx < 0 {
		return 0, false
	}
	return bestIdx, true
}

// AblationAlpha (a2) sweeps HEEB's α around the heuristic lifetime estimate
// on TOWER, validating the paper's α-selection rule (Section 4.3's matching
// of predicted and estimated lifetimes).
func AblationAlpha(o Options) (*Figure, error) {
	w := workload.Tower().Join()
	fig := &Figure{
		ID:     "a2",
		Title:  "Ablation: HEEB α sensitivity (TOWER)",
		XLabel: "lifetime-estimate multiplier",
		YLabel: "avg result tuples after warm-up",
	}
	mults := []float64{0.25, 0.5, 1, 2, 4, 8}
	a := newJoinAverager(w, o.Cache, o.Runs, o.Length, o.Seed)
	var ys []float64
	for _, m := range mults {
		est := w.LifetimeEstimate * m
		mean, _ := a.mean(func() join.Policy {
			return policy.NewHEEB(policy.HEEBOptions{Mode: w.HEEBMode, LifetimeEstimate: est})
		})
		ys = append(ys, mean)
		fig.X = append(fig.X, m)
	}
	fig.AddSeries("HEEB", ys)
	adaptive, _ := a.mean(func() join.Policy {
		return policy.NewHEEB(policy.HEEBOptions{
			Mode:             w.HEEBMode,
			LifetimeEstimate: w.LifetimeEstimate,
			Adaptive:         true,
		})
	})
	fig.Note("adaptive-α HEEB (future-work feature): %.1f", adaptive)
	return fig, nil
}
