package checkpoint

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	for _, payload := range [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte{0xAB, 0x00, 0x7F}, 1000)} {
		var buf bytes.Buffer
		if err := Write(&buf, payload); err != nil {
			t.Fatalf("Write: %v", err)
		}
		got, err := Read(&buf)
		if err != nil {
			t.Fatalf("Read: %v", err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("payload round-trip: got %d bytes, want %d", len(got), len(payload))
		}
	}
}

func envelope(t *testing.T, payload []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, payload); err != nil {
		t.Fatalf("Write: %v", err)
	}
	return buf.Bytes()
}

func TestBadMagic(t *testing.T) {
	env := envelope(t, []byte("hello"))
	env[0] = 'X'
	if _, err := Read(bytes.NewReader(env)); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("got %v, want ErrBadMagic", err)
	}
}

func TestUnsupportedVersion(t *testing.T) {
	env := envelope(t, []byte("hello"))
	binary.LittleEndian.PutUint32(env[4:8], Version+1)
	if _, err := Read(bytes.NewReader(env)); !errors.Is(err, ErrUnsupportedVersion) {
		t.Fatalf("future version: got %v, want ErrUnsupportedVersion", err)
	}
	binary.LittleEndian.PutUint32(env[4:8], 0)
	if _, err := Read(bytes.NewReader(env)); !errors.Is(err, ErrUnsupportedVersion) {
		t.Fatalf("version 0: got %v, want ErrUnsupportedVersion", err)
	}
}

func TestChecksumMismatch(t *testing.T) {
	env := envelope(t, []byte("hello"))
	env[16] ^= 0xFF // flip a payload byte
	if _, err := Read(bytes.NewReader(env)); !errors.Is(err, ErrChecksum) {
		t.Fatalf("corrupt payload: got %v, want ErrChecksum", err)
	}
	env = envelope(t, []byte("hello"))
	env[len(env)-1] ^= 0xFF // flip a checksum byte
	if _, err := Read(bytes.NewReader(env)); !errors.Is(err, ErrChecksum) {
		t.Fatalf("corrupt checksum: got %v, want ErrChecksum", err)
	}
}

func TestTruncated(t *testing.T) {
	env := envelope(t, []byte("hello"))
	for _, cut := range []int{0, 3, 15, 17, len(env) - 1} {
		if _, err := Read(bytes.NewReader(env[:cut])); !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut at %d: got %v, want ErrTruncated", cut, err)
		}
	}
}

func TestOversizedDeclaredLength(t *testing.T) {
	env := envelope(t, []byte("hello"))
	binary.LittleEndian.PutUint64(env[8:16], MaxPayload+1)
	_, err := Read(bytes.NewReader(env))
	if err == nil || errors.Is(err, io.EOF) {
		t.Fatalf("oversized length: got %v, want typed error", err)
	}
}
