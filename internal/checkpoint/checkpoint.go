// Package checkpoint defines the on-disk envelope for operator checkpoints:
// a fixed magic, a format version, the payload length, the payload, and an
// IEEE CRC32 of the payload. The envelope carries no knowledge of what the
// payload means — the engine serializes its state into opaque bytes and this
// package makes them self-identifying and corruption-evident, so a restore
// can reject bad input with a typed error before touching any operator state.
//
// Layout (all integers little-endian):
//
//	offset  size  field
//	0       4     magic "SSCP" (stochstream checkpoint)
//	4       4     format version (currently 1)
//	8       8     payload length n
//	16      n     payload
//	16+n    4     IEEE CRC32 of payload
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Magic identifies a stochstream checkpoint stream.
const Magic = "SSCP"

// Version is the current envelope format version. Readers reject anything
// newer; older versions are accepted as long as they remain decodable (there
// is only version 1 so far).
const Version uint32 = 1

// MaxPayload bounds the declared payload length so a corrupted header cannot
// drive an allocation of arbitrary size.
const MaxPayload = 1 << 30

// Typed envelope errors. Restore paths test these with errors.Is to decide
// whether a failure is an envelope problem (bad input, state untouched) or a
// payload problem.
var (
	// ErrBadMagic means the stream does not start with the checkpoint magic —
	// it is not a checkpoint at all.
	ErrBadMagic = errors.New("checkpoint: bad magic")
	// ErrUnsupportedVersion means the envelope was written by a newer format
	// version than this reader understands.
	ErrUnsupportedVersion = errors.New("checkpoint: unsupported format version")
	// ErrChecksum means the payload bytes do not match the recorded CRC32.
	ErrChecksum = errors.New("checkpoint: payload checksum mismatch")
	// ErrTruncated means the stream ended before the declared payload and
	// checksum were read.
	ErrTruncated = errors.New("checkpoint: truncated stream")
)

// Write wraps payload in an envelope and writes it to w.
func Write(w io.Writer, payload []byte) error {
	if len(payload) > MaxPayload {
		return fmt.Errorf("checkpoint: payload of %d bytes exceeds limit %d", len(payload), MaxPayload)
	}
	var hdr [16]byte
	copy(hdr[:4], Magic)
	binary.LittleEndian.PutUint32(hdr[4:8], Version)
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("checkpoint: writing header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("checkpoint: writing payload: %w", err)
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(sum[:]); err != nil {
		return fmt.Errorf("checkpoint: writing checksum: %w", err)
	}
	return nil
}

// Read reads one envelope from r, verifies magic, version and checksum, and
// returns the payload. All failures are typed: ErrBadMagic,
// ErrUnsupportedVersion, ErrChecksum or ErrTruncated (wrapped with detail).
func Read(r io.Reader) ([]byte, error) {
	var hdr [16]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: reading header: %v", ErrTruncated, err)
	}
	if string(hdr[:4]) != Magic {
		return nil, fmt.Errorf("%w: got %q", ErrBadMagic, hdr[:4])
	}
	v := binary.LittleEndian.Uint32(hdr[4:8])
	if v == 0 || v > Version {
		return nil, fmt.Errorf("%w: version %d, reader supports <= %d", ErrUnsupportedVersion, v, Version)
	}
	n := binary.LittleEndian.Uint64(hdr[8:16])
	if n > MaxPayload {
		return nil, fmt.Errorf("%w: declared payload of %d bytes exceeds limit %d", ErrChecksum, n, MaxPayload)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("%w: reading %d-byte payload: %v", ErrTruncated, n, err)
	}
	var sum [4]byte
	if _, err := io.ReadFull(r, sum[:]); err != nil {
		return nil, fmt.Errorf("%w: reading checksum: %v", ErrTruncated, err)
	}
	want := binary.LittleEndian.Uint32(sum[:])
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, fmt.Errorf("%w: crc32 %08x, envelope records %08x", ErrChecksum, got, want)
	}
	return payload, nil
}
