package streamd_test

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"stochstream/internal/shardrt"
	"stochstream/internal/stats"
	"stochstream/internal/streamd"
	"stochstream/internal/streamd/client"
	"stochstream/internal/streamd/wire"
)

// TestDrainExpiredContextUnderLoad pins the drain timeout path: even when
// the context is already dead, drain must wait for the engine loop to
// finish its admitted batches before shutting the runtime down (the
// race-detected CI run would flag a Shutdown racing IngestBatch), and the
// daemon must still stop completely.
func TestDrainExpiredContextUnderLoad(t *testing.T) {
	srv, err := streamd.Start(streamd.Config{
		Runtime:    testRuntimeConfig(4),
		Listen:     "127.0.0.1:0",
		RetryAfter: time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	cl, err := client.Dial(client.Options{
		Addr:        srv.Addr(),
		Session:     "expired",
		Seed:        13,
		MaxAttempts: 3,
		BaseBackoff: 100 * time.Microsecond,
		MaxBackoff:  time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer func() { _ = cl.Close() }()

	// Keep the engine busy while the drain lands.
	rng := stats.NewRNG(77)
	var sent atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			if _, err := cl.Ingest(genSteps(rng, 64, 16)); err != nil {
				return // draining: retries exhausted, the stream ends here
			}
			sent.Add(1)
		}
	}()
	for sent.Load() < 3 {
		time.Sleep(100 * time.Microsecond)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := srv.Drain(ctx); err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("Drain with dead context: %v", err)
	}
	wg.Wait()

	// Conservation still holds: every acknowledged batch was ingested
	// exactly once even though the drain context never granted any time.
	steps := srv.Registry().Snapshot().Counters["streamd_steps_total"]
	if steps < sent.Load()*64 {
		t.Fatalf("steps_total = %d, below the %d acknowledged", steps, sent.Load()*64)
	}
}

// TestDrainRestartByteIdentical is the drain-under-load differential: a
// client streams batches while the daemon is drained mid-stream, the drain
// writes a checkpoint, a fresh daemon restores it on the same address, and
// the client rides its retry loop across the outage. The concatenated
// result stream — acknowledged batches before the drain, after the restart,
// and the final flush — must be byte-identical to an uninterrupted direct
// runtime fed the same batch boundaries.
func TestDrainRestartByteIdentical(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "drain.ckpt")
	cfg := func(listen string) streamd.Config {
		return streamd.Config{
			Runtime:        testRuntimeConfig(4),
			Listen:         listen,
			CheckpointPath: ckpt,
			RetryAfter:     time.Millisecond,
		}
	}
	srv1, err := streamd.Start(cfg("127.0.0.1:0"))
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	addr := srv1.Addr()

	// Pre-generate every batch: the boundaries are the determinism domain.
	rng := stats.NewRNG(2024)
	const batches, batchLen = 40, 64
	work := make([][]wire.Step, batches)
	for b := range work {
		work[b] = genSteps(rng, batchLen, 16)
	}

	cl, err := client.Dial(client.Options{
		Addr:        addr,
		Session:     "drain",
		Seed:        11,
		MaxAttempts: 400,
		BaseBackoff: 500 * time.Microsecond,
		MaxBackoff:  10 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer func() { _ = cl.Close() }()

	// The client streams on its own goroutine, so the drain lands mid-load.
	// A batch that exhausts its retries inside the outage window is simply
	// retried again: the base is derived from acked state, so the resume
	// point cannot drift.
	gotPairs := make([][]wire.Pair, batches)
	var acked atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for b := 0; b < batches; b++ {
			for {
				pairs, err := cl.Ingest(work[b])
				if err == nil {
					gotPairs[b] = pairs
					break
				}
				t.Logf("batch %d riding outage: %v", b, err)
			}
			acked.Store(int64(b + 1))
		}
	}()

	// Drain once a few batches are acknowledged, so the checkpoint carries
	// real session and runtime state.
	for acked.Load() < 5 {
		time.Sleep(200 * time.Microsecond)
	}
	if err := srv1.Drain(context.Background()); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	ackedAtDrain := acked.Load()
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("drain wrote no checkpoint: %v", err)
	}

	// Restart on the same address from the checkpoint; the client's backoff
	// spans the gap and its session resumes by sequence.
	srv2, err := streamd.Start(cfg(addr))
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer func() { _ = srv2.Close() }()
	wg.Wait()

	if acked.Load() != batches {
		t.Fatalf("client finished %d/%d batches", acked.Load(), batches)
	}
	if ackedAtDrain >= batches {
		t.Fatalf("drain landed after the stream ended (acked %d); shrink the trigger threshold", ackedAtDrain)
	}
	gotFlush, err := cl.Flush()
	if err != nil {
		t.Fatalf("Flush after restart: %v", err)
	}

	// Uninterrupted oracle: the direct runtime with identical boundaries.
	oracle, err := shardrt.New(testRuntimeConfig(4))
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	defer func() { _, _ = oracle.Close() }()
	for b := 0; b < batches; b++ {
		want, err := oracle.IngestBatch(toRuntimeSteps(work[b]))
		if err != nil {
			t.Fatalf("oracle batch %d: %v", b, err)
		}
		wirePairsEqualRuntime(t, gotPairs[b], want)
	}
	wantFlush, err := oracle.Flush()
	if err != nil {
		t.Fatalf("oracle flush: %v", err)
	}
	wirePairsEqualRuntime(t, gotFlush, wantFlush)

	// Step conservation across the restart: the two daemons together
	// ingested every step exactly once — the checkpoint carried the prefix,
	// the replay buffer absorbed any ack lost to the drain, and nothing was
	// re-ingested or dropped.
	pre := srv1.Registry().Snapshot().Counters["streamd_steps_total"]
	post := srv2.Registry().Snapshot().Counters["streamd_steps_total"]
	if pre+post != int64(batches)*batchLen {
		t.Fatalf("steps split %d + %d across restart, want total %d", pre, post, int64(batches)*batchLen)
	}
	if pre == 0 || post == 0 {
		t.Fatalf("drain did not land mid-stream: %d steps before, %d after", pre, post)
	}
	t.Logf("drained after ~%d/%d batches; steps %d before restart, %d after", ackedAtDrain, batches, pre, post)
}
