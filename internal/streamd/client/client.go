// Package client is the synchronous Go client of the streamd framed
// protocol. It keeps exactly one batch in flight, which is what makes the
// daemon's one-frame replay buffer a complete recovery story: on any
// connection loss the client reconnects with jittered exponential backoff,
// resumes from its acknowledged batch sequence, and resends the unacked
// batch — the daemon dedups replayed sequences, so every batch is ingested
// exactly once and every results frame is recovered or replayed.
//
// The client deliberately runs zero goroutines: every call does its own
// socket I/O, so there is no state to race and no cleanup to leak. Overload
// rejections (wire.ErrOverloaded) are retried after the daemon's
// retry-after hint plus seeded jitter; retries are bounded by MaxAttempts,
// after which the typed error surfaces to the caller.
package client

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"time"

	"stochstream/internal/stats"
	"stochstream/internal/streamd/wire"
)

// Options configures a Client. Addr and Session are required.
type Options struct {
	// Addr is the daemon's framed-protocol TCP address.
	Addr string
	// Session names the daemon-side resume state; reconnects under the
	// same name continue the same batch sequence.
	Session string
	// Seed drives backoff jitter deterministically (tests pin it).
	Seed uint64
	// MaxAttempts bounds retries per operation — sheds, reconnects and
	// transient failures combined (default 10).
	MaxAttempts int
	// BaseBackoff and MaxBackoff shape the jittered exponential reconnect
	// backoff (defaults 10ms and 1s).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// MaxBatch splits larger Ingest calls into batches of at most this
	// many steps (default and cap: wire.MaxBatchSteps). Batches are
	// additionally bounded by the server's credit window (from the
	// handshake) and by the frame payload cap, so a default client never
	// trips flow control or frame-size limits against any server. The
	// split is a pure function of the input and the server's (constant)
	// window, so replaying the same calls replays the same batch
	// boundaries — which is what the daemon's byte-identical drain/restart
	// guarantee is defined over.
	MaxBatch int
	// Dialer overrides the TCP dial — the fault-injection seam.
	Dialer func(addr string) (net.Conn, error)
}

func (o *Options) applyDefaults() error {
	if o.Addr == "" || o.Session == "" {
		return errors.New("client: Addr and Session are required")
	}
	if o.MaxAttempts == 0 {
		o.MaxAttempts = 10
	}
	if o.BaseBackoff == 0 {
		o.BaseBackoff = 10 * time.Millisecond
	}
	if o.MaxBackoff == 0 {
		o.MaxBackoff = time.Second
	}
	if o.MaxBatch == 0 || o.MaxBatch > wire.MaxBatchSteps {
		o.MaxBatch = wire.MaxBatchSteps
	}
	if o.Dialer == nil {
		o.Dialer = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	return nil
}

// Client is a synchronous streamd session. Not safe for concurrent use —
// one goroutine, one client, exactly one batch in flight.
type Client struct {
	opt Options
	rng *stats.RNG

	nc      net.Conn
	rd      *bufio.Reader
	acked   uint64 // highest batch base the server acknowledged
	credits int    // absolute remaining window, from the last frame
	closed  bool
}

// Dial validates options and connects, performing the session handshake
// (with backoff retries on transient failures).
func Dial(opt Options) (*Client, error) {
	if err := opt.applyDefaults(); err != nil {
		return nil, err
	}
	c := &Client{opt: opt, rng: stats.NewRNG(opt.Seed)}
	if err := c.withRetries("dial", func() error { return c.connect() }); err != nil {
		return nil, err
	}
	return c, nil
}

// Acked returns the highest batch base the server has acknowledged.
func (c *Client) Acked() uint64 { return c.acked }

// connect dials and handshakes; on success the connection is attached and
// any replayed results frame is left buffered for the next read loop.
func (c *Client) connect() error {
	c.dropConn()
	nc, err := c.opt.Dialer(c.opt.Addr)
	if err != nil {
		return &transientError{err: fmt.Errorf("client: dial %s: %w", c.opt.Addr, err)}
	}
	hello := wire.EncodeHello(wire.Hello{Version: wire.Version, Session: c.opt.Session, LastSeq: c.acked})
	if _, err := nc.Write(wire.Frame(wire.TypeHello, hello)); err != nil {
		_ = nc.Close()
		return &transientError{err: fmt.Errorf("client: hello: %w", err)}
	}
	rd := bufio.NewReader(nc)
	typ, payload, err := wire.ReadFrame(rd)
	if err != nil {
		_ = nc.Close()
		return &transientError{err: fmt.Errorf("client: handshake read: %w", err)}
	}
	switch typ {
	case wire.TypeWelcome:
		w, err := wire.DecodeWelcome(payload)
		if err != nil {
			_ = nc.Close()
			return fmt.Errorf("client: welcome: %w", err)
		}
		c.nc, c.rd = nc, rd
		c.credits = int(w.Credits)
		return nil
	case wire.TypeError:
		f, err := wire.DecodeError(payload)
		_ = nc.Close()
		if err != nil {
			return fmt.Errorf("client: handshake error frame: %w", err)
		}
		cause := wire.CodeToErr(f.Code)
		if isRetryableCode(f.Code) {
			return &transientError{err: fmt.Errorf("client: attach refused: %w", cause), hint: f.RetryAfter()}
		}
		return fmt.Errorf("client: attach refused: %w", cause)
	default:
		_ = nc.Close()
		return fmt.Errorf("%w: handshake frame type 0x%02x", wire.ErrBadFrame, typ)
	}
}

func (c *Client) dropConn() {
	if c.nc != nil {
		_ = c.nc.Close()
		c.nc, c.rd = nil, nil
	}
}

// transientError marks a failure worth a backoff retry; hint, when set,
// overrides the exponential schedule (the daemon's retry-after).
type transientError struct {
	err  error
	hint time.Duration
}

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// isRetryableCode: overload and drain clear on their own; a busy session
// clears when the previous connection's deadline reaps it.
func isRetryableCode(code uint16) bool {
	return code == wire.CodeOverloaded || code == wire.CodeDraining || code == wire.CodeSessionBusy
}

// backoff sleeps the jittered exponential delay for attempt (0-based); a
// non-zero hint replaces the exponential base, keeping the jitter.
func (c *Client) backoff(attempt int, hint time.Duration) {
	d := c.opt.BaseBackoff << uint(attempt)
	if hint > 0 {
		d = hint
	}
	if d > c.opt.MaxBackoff {
		d = c.opt.MaxBackoff
	}
	// Full jitter in [d/2, d): desynchronizes a fleet of clients retrying
	// against the same overloaded daemon.
	time.Sleep(d/2 + time.Duration(c.rng.Float64()*float64(d/2)))
}

// withRetries runs op until it succeeds, fails permanently, or exhausts
// MaxAttempts; transient failures back off between attempts.
func (c *Client) withRetries(what string, op func() error) error {
	var last error
	for attempt := 0; attempt < c.opt.MaxAttempts; attempt++ {
		err := op()
		if err == nil {
			return nil
		}
		var tr *transientError
		if !errors.As(err, &tr) {
			return err
		}
		last = err
		c.backoff(attempt, tr.hint)
	}
	return fmt.Errorf("client: %s: attempts exhausted: %w", what, last)
}

// Ingest runs steps through the daemon, splitting into batches bounded by
// MaxBatch, the server's credit window and the frame payload cap, and
// returns the join pairs in the daemon's deterministic merge order. Each
// batch survives disconnects, sheds and daemon restarts: the client
// reconnects, resumes, and resends until acknowledged.
func (c *Client) Ingest(steps []wire.Step) ([]wire.Pair, error) {
	if c.closed {
		return nil, wire.ErrClosed
	}
	for i := range steps {
		if n := len(steps[i].RPayload); n > wire.MaxPayloadBytes {
			return nil, fmt.Errorf("%w: step %d stream R payload %d bytes exceeds cap %d", wire.ErrBadStep, i, n, wire.MaxPayloadBytes)
		}
		if n := len(steps[i].SPayload); n > wire.MaxPayloadBytes {
			return nil, fmt.Errorf("%w: step %d stream S payload %d bytes exceeds cap %d", wire.ErrBadStep, i, n, wire.MaxPayloadBytes)
		}
	}
	var out []wire.Pair
	for len(steps) > 0 {
		n := c.nextBatchLen(steps)
		pairs, err := c.ingestBatch(steps[:n])
		if err != nil {
			return out, err
		}
		out = append(out, pairs...)
		steps = steps[n:]
	}
	return out, nil
}

// nextBatchLen is how many leading steps the next batch takes: at most
// MaxBatch, at most the server's credit window (the daemon treats an
// overrun as a fatal flow-control violation, so the split must respect the
// handshake's grant), and no more than fits one ingest frame. With the
// one-batch-in-flight discipline the window is fully regranted by every
// acknowledgment, so the split is deterministic across replays against the
// same server configuration.
func (c *Client) nextBatchLen(steps []wire.Step) int {
	limit := c.opt.MaxBatch
	if c.credits > 0 && c.credits < limit {
		limit = c.credits
	}
	if limit > len(steps) {
		limit = len(steps)
	}
	n, size := 0, wire.IngestHeaderSize
	for n < limit {
		sz := wire.StepSize(&steps[n])
		if n > 0 && size+sz > wire.MaxFramePayload {
			break
		}
		size += sz
		n++
	}
	return n
}

// ingestBatch drives one batch (base = acked+1) to acknowledgment.
func (c *Client) ingestBatch(steps []wire.Step) ([]wire.Pair, error) {
	base := c.acked + 1
	payload := wire.EncodeIngest(wire.Ingest{Base: base, Steps: steps})
	frame := wire.Frame(wire.TypeIngest, payload)
	var pairs []wire.Pair
	err := c.withRetries("ingest", func() error {
		if c.nc == nil {
			if err := c.connect(); err != nil {
				return err
			}
		}
		if c.acked >= base {
			// The reconnect handshake replayed the acknowledgment (the
			// results frame consumed below before we got to resend).
			return nil
		}
		if _, err := c.nc.Write(frame); err != nil {
			c.dropConn()
			return &transientError{err: fmt.Errorf("client: ingest write: %w", err)}
		}
		p, err := c.awaitResults(base)
		if err != nil {
			return err
		}
		pairs = p
		return nil
	})
	return pairs, err
}

// awaitResults reads frames until the acknowledgment for base arrives,
// accumulating chunked replies (More flag) into one pair listing. Replayed
// results for already-acknowledged batches are recognized by their
// sequence and skipped — the dedup half of retry safety.
func (c *Client) awaitResults(base uint64) ([]wire.Pair, error) {
	var acc []wire.Pair
	for {
		typ, payload, err := wire.ReadFrame(c.rd)
		if err != nil {
			c.dropConn()
			return nil, &transientError{err: fmt.Errorf("client: results read: %w", err)}
		}
		switch typ {
		case wire.TypeResults:
			f, err := wire.DecodeResults(payload)
			if err != nil {
				c.dropConn()
				return nil, fmt.Errorf("client: results: %w", err)
			}
			if f.Flush || f.AckSeq < base {
				continue // stale flush response or replayed duplicate (chunks included)
			}
			if f.AckSeq > base {
				c.dropConn()
				return nil, fmt.Errorf("%w: server acked %d, expected %d", wire.ErrSeqGap, f.AckSeq, base)
			}
			acc = append(acc, f.Pairs...)
			if f.More {
				continue // the acknowledgment completes when More clears
			}
			c.acked = base
			c.credits = int(f.Credits)
			return acc, nil
		case wire.TypeError:
			f, err := wire.DecodeError(payload)
			if err != nil {
				c.dropConn()
				return nil, fmt.Errorf("client: error frame: %w", err)
			}
			cause := wire.CodeToErr(f.Code)
			switch f.Code {
			case wire.CodeOverloaded, wire.CodeDraining:
				// Shed before any state was consumed: same base retries.
				return nil, &transientError{err: cause, hint: f.RetryAfter()}
			default:
				// BadStep and protocol violations are the caller's bug.
				return nil, fmt.Errorf("client: ingest rejected: %w", cause)
			}
		default:
			c.dropConn()
			return nil, fmt.Errorf("%w: unexpected frame type 0x%02x", wire.ErrBadFrame, typ)
		}
	}
}

// Flush drains the daemon's carried lane tails and returns the resulting
// pairs. A flush response lost to a disconnect is not replayed: the retry
// re-flushes, and lanes already drained yield nothing — callers treat
// Flush as at-least-once with possible loss of the pair listing, or flush
// only at stream end over a live connection.
func (c *Client) Flush() ([]wire.Pair, error) {
	if c.closed {
		return nil, wire.ErrClosed
	}
	frame := wire.Frame(wire.TypeFlush, nil)
	var pairs []wire.Pair
	err := c.withRetries("flush", func() error {
		if c.nc == nil {
			if err := c.connect(); err != nil {
				return err
			}
		}
		if _, err := c.nc.Write(frame); err != nil {
			c.dropConn()
			return &transientError{err: fmt.Errorf("client: flush write: %w", err)}
		}
		p, err := c.awaitFlush()
		if err != nil {
			return err
		}
		pairs = p
		return nil
	})
	return pairs, err
}

func (c *Client) awaitFlush() ([]wire.Pair, error) {
	var acc []wire.Pair
	for {
		typ, payload, err := wire.ReadFrame(c.rd)
		if err != nil {
			c.dropConn()
			return nil, &transientError{err: fmt.Errorf("client: flush read: %w", err)}
		}
		switch typ {
		case wire.TypeResults:
			f, err := wire.DecodeResults(payload)
			if err != nil {
				c.dropConn()
				return nil, fmt.Errorf("client: flush results: %w", err)
			}
			if !f.Flush {
				continue // replayed ingest acknowledgment (chunks included)
			}
			acc = append(acc, f.Pairs...)
			if f.More {
				continue
			}
			c.credits = int(f.Credits)
			return acc, nil
		case wire.TypeError:
			f, err := wire.DecodeError(payload)
			if err != nil {
				c.dropConn()
				return nil, fmt.Errorf("client: error frame: %w", err)
			}
			cause := wire.CodeToErr(f.Code)
			if f.Code == wire.CodeOverloaded || f.Code == wire.CodeDraining {
				return nil, &transientError{err: cause, hint: f.RetryAfter()}
			}
			return nil, fmt.Errorf("client: flush rejected: %w", cause)
		default:
			c.dropConn()
			return nil, fmt.Errorf("%w: unexpected frame type 0x%02x", wire.ErrBadFrame, typ)
		}
	}
}

// Close detaches cleanly (best-effort goodbye) and releases the
// connection. The daemon retains the session's resume state until its TTL.
func (c *Client) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	if c.nc != nil {
		_, _ = c.nc.Write(wire.Frame(wire.TypeGoodbye, nil))
		err := c.nc.Close()
		c.nc, c.rd = nil, nil
		return err
	}
	return nil
}
