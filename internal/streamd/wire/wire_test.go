package wire

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"
)

func TestHelloRoundTrip(t *testing.T) {
	in := Hello{Version: Version, Session: "sess-a", LastSeq: 42}
	out, err := DecodeHello(EncodeHello(in))
	if err != nil {
		t.Fatalf("DecodeHello: %v", err)
	}
	if out != in {
		t.Fatalf("round trip %+v -> %+v", in, out)
	}
}

func TestWelcomeRoundTrip(t *testing.T) {
	in := Welcome{Credits: 4096, AckSeq: 17}
	out, err := DecodeWelcome(EncodeWelcome(in))
	if err != nil {
		t.Fatalf("DecodeWelcome: %v", err)
	}
	if out != in {
		t.Fatalf("round trip %+v -> %+v", in, out)
	}
}

func TestIngestRoundTrip(t *testing.T) {
	in := Ingest{Base: 7, Steps: []Step{
		{RKey: -5, SKey: 9, RPayload: []byte("left"), SPayload: nil},
		{RKey: 0, SKey: 0, RPayload: []byte{}, SPayload: []byte{0, 1, 2}},
	}}
	out, err := DecodeIngest(EncodeIngest(in))
	if err != nil {
		t.Fatalf("DecodeIngest: %v", err)
	}
	if !reflect.DeepEqual(out, in) {
		t.Fatalf("round trip %+v -> %+v", in, out)
	}
	// The nil-vs-empty distinction is load-bearing: nil is the absent
	// marker, empty is a present zero-length payload.
	if out.Steps[0].SPayload != nil {
		t.Error("nil payload became non-nil")
	}
	if out.Steps[1].RPayload == nil {
		t.Error("empty payload became nil")
	}
}

func TestResultsRoundTrip(t *testing.T) {
	in := Results{AckSeq: 3, Credits: 100, Flush: true, Pairs: []Pair{
		{RSeq: 8, SSeq: 9, RKey: 4, SKey: 4, Shard: 2, SameStep: true, RPayload: []byte("r"), SPayload: nil},
		{RSeq: 2, SSeq: 11, RKey: -1, SKey: -1},
	}}
	out, err := DecodeResults(EncodeResults(in))
	if err != nil {
		t.Fatalf("DecodeResults: %v", err)
	}
	if !reflect.DeepEqual(out, in) {
		t.Fatalf("round trip %+v -> %+v", in, out)
	}
}

func TestResultsMoreFlagRoundTrip(t *testing.T) {
	in := Results{AckSeq: 5, Credits: 64, More: true, Pairs: []Pair{{RSeq: 1, SSeq: 2}}}
	out, err := DecodeResults(EncodeResults(in))
	if err != nil {
		t.Fatalf("DecodeResults: %v", err)
	}
	if !reflect.DeepEqual(out, in) {
		t.Fatalf("round trip %+v -> %+v", in, out)
	}
	// Unknown flag bits are a frame violation, not silently ignored.
	payload := EncodeResults(Results{AckSeq: 1})
	payload[12] |= 0x80 // flags byte follows AckSeq (8) + Credits (4)
	if _, err := DecodeResults(payload); !errors.Is(err, ErrBadFrame) {
		t.Errorf("unknown flags: err = %v, want ErrBadFrame", err)
	}
}

// TestEncodeResultsFramesChunksOversizedReply pins the results chunker: a
// reply bigger than MaxFramePayload must arrive as several legal frames
// that reassemble exactly, with More set on every chunk but the last.
func TestEncodeResultsFramesChunksOversizedReply(t *testing.T) {
	big := bytes.Repeat([]byte{0xC7}, MaxPayloadBytes)
	f := Results{AckSeq: 9, Credits: 4096, Pairs: make([]Pair, 6)}
	for i := range f.Pairs {
		f.Pairs[i] = Pair{
			RSeq: uint64(2 * i), SSeq: uint64(2*i + 1), RKey: 7, SKey: 7,
			Shard: 1, SameStep: i%2 == 0, RPayload: big, SPayload: big,
		}
	}
	buf := EncodeResultsFrames(f) // ~12 MiB of pairs: must split
	rd := bytes.NewReader(buf)
	var got []Pair
	var mores []bool
	for rd.Len() > 0 {
		typ, payload, err := ReadFrame(rd) // enforces MaxFramePayload per frame
		if err != nil {
			t.Fatalf("ReadFrame chunk %d: %v", len(mores), err)
		}
		if typ != TypeResults {
			t.Fatalf("chunk %d type = 0x%02x, want results", len(mores), typ)
		}
		chunk, err := DecodeResults(payload)
		if err != nil {
			t.Fatalf("DecodeResults chunk %d: %v", len(mores), err)
		}
		if chunk.AckSeq != f.AckSeq || chunk.Credits != f.Credits || chunk.Flush {
			t.Fatalf("chunk %d header = %+v, want AckSeq %d Credits %d", len(mores), chunk, f.AckSeq, f.Credits)
		}
		if len(chunk.Pairs) == 0 {
			t.Fatalf("chunk %d carries no pairs", len(mores))
		}
		mores = append(mores, chunk.More)
		got = append(got, chunk.Pairs...)
	}
	if len(mores) < 2 {
		t.Fatalf("reply of %d bytes did not chunk (frames = %d)", len(buf), len(mores))
	}
	for i, m := range mores {
		if want := i < len(mores)-1; m != want {
			t.Errorf("chunk %d More = %v, want %v", i, m, want)
		}
	}
	if !reflect.DeepEqual(got, f.Pairs) {
		t.Fatal("reassembled pairs diverge from input")
	}

	// The small path stays a single frame, byte-identical to the direct
	// encoder.
	small := Results{AckSeq: 3, Credits: 10, Pairs: []Pair{{RSeq: 1, SSeq: 2, RPayload: []byte("x")}}}
	if !bytes.Equal(EncodeResultsFrames(small), EncodeResultsFrame(small)) {
		t.Fatal("single-frame reply diverges from EncodeResultsFrame")
	}
}

func TestErrorRoundTrip(t *testing.T) {
	in := ErrorFrame{Code: CodeOverloaded, RetryAfterMillis: 50, Msg: "queue full"}
	out, err := DecodeError(EncodeError(in))
	if err != nil {
		t.Fatalf("DecodeError: %v", err)
	}
	if out != in {
		t.Fatalf("round trip %+v -> %+v", in, out)
	}
	if out.RetryAfter().Milliseconds() != 50 {
		t.Fatalf("RetryAfter = %v, want 50ms", out.RetryAfter())
	}
}

// TestTruncationSweep feeds every strict prefix of every payload kind to its
// decoder: each must fail with ErrBadFrame, never panic, never succeed.
func TestTruncationSweep(t *testing.T) {
	cases := []struct {
		name    string
		payload []byte
		decode  func([]byte) error
	}{
		{"hello", EncodeHello(Hello{Version: 1, Session: "s", LastSeq: 9}),
			func(b []byte) error { _, err := DecodeHello(b); return err }},
		{"welcome", EncodeWelcome(Welcome{Credits: 1, AckSeq: 2}),
			func(b []byte) error { _, err := DecodeWelcome(b); return err }},
		{"ingest", EncodeIngest(Ingest{Base: 1, Steps: []Step{{RKey: 1, SKey: 2, RPayload: []byte("p")}}}),
			func(b []byte) error { _, err := DecodeIngest(b); return err }},
		{"results", EncodeResults(Results{AckSeq: 1, Pairs: []Pair{{RSeq: 0, SSeq: 1, SPayload: []byte("q")}}}),
			func(b []byte) error { _, err := DecodeResults(b); return err }},
		{"error", EncodeError(ErrorFrame{Code: 3, Msg: "m"}),
			func(b []byte) error { _, err := DecodeError(b); return err }},
	}
	for _, tc := range cases {
		for i := 0; i < len(tc.payload); i++ {
			if err := tc.decode(tc.payload[:i]); !errors.Is(err, ErrBadFrame) {
				t.Errorf("%s[:%d]: err = %v, want ErrBadFrame", tc.name, i, err)
			}
		}
		// Trailing garbage after a complete payload is equally a violation.
		if err := tc.decode(append(append([]byte{}, tc.payload...), 0xAA)); !errors.Is(err, ErrBadFrame) {
			t.Errorf("%s+garbage: err = %v, want ErrBadFrame", tc.name, err)
		}
	}
}

func TestDecodeHelloRejectsBadSession(t *testing.T) {
	if _, err := DecodeHello(EncodeHello(Hello{Version: 1, Session: ""})); !errors.Is(err, ErrBadFrame) {
		t.Errorf("empty session: err = %v, want ErrBadFrame", err)
	}
	long := make([]byte, MaxSessionName+1)
	for i := range long {
		long[i] = 'x'
	}
	if _, err := DecodeHello(EncodeHello(Hello{Version: 1, Session: string(long)})); !errors.Is(err, ErrBadFrame) {
		t.Errorf("oversize session: err = %v, want ErrBadFrame", err)
	}
}

func TestDecodeIngestRejectsOversizeBatch(t *testing.T) {
	steps := make([]Step, MaxBatchSteps+1)
	if _, err := DecodeIngest(EncodeIngest(Ingest{Base: 1, Steps: steps})); !errors.Is(err, ErrBadFrame) {
		t.Errorf("oversize batch: err = %v, want ErrBadFrame", err)
	}
}

// TestEncodeResultsFrameEquivalence pins the fast path to the reference
// encoder: the single-allocation frame must be byte-identical to
// Frame(TypeResults, EncodeResults(f)).
func TestEncodeResultsFrameEquivalence(t *testing.T) {
	cases := []Results{
		{},
		{AckSeq: 9, Credits: 512, Flush: true},
		{AckSeq: 3, Credits: 100, Pairs: []Pair{
			{RSeq: 8, SSeq: 9, RKey: 4, SKey: 4, Shard: 2, SameStep: true, RPayload: []byte("rp"), SPayload: nil},
			{RSeq: 2, SSeq: 11, RKey: -1, SKey: -1, RPayload: []byte{}, SPayload: []byte{1, 2, 3}},
		}},
	}
	for i, f := range cases {
		want := Frame(TypeResults, EncodeResults(f))
		got := EncodeResultsFrame(f)
		if !bytes.Equal(got, want) {
			t.Errorf("case %d: fast frame diverges from reference (%d vs %d bytes)", i, len(got), len(want))
		}
	}
}

func TestFrameReadFrameRoundTrip(t *testing.T) {
	payload := []byte("hello payload")
	frame := Frame(TypeIngest, payload)
	typ, got, err := ReadFrame(bytes.NewReader(frame))
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	if typ != TypeIngest || !bytes.Equal(got, payload) {
		t.Fatalf("ReadFrame = (0x%02x, %q)", typ, got)
	}
	// WriteFrame produces identical bytes.
	var buf bytes.Buffer
	if err := WriteFrame(&buf, TypeIngest, payload); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), frame) {
		t.Fatal("WriteFrame and Frame disagree")
	}
}

func TestReadFrameRejectsOversizePayload(t *testing.T) {
	// A corrupted length field beyond the cap must fail before allocation.
	frame := Frame(TypeIngest, nil)
	frame[1], frame[2], frame[3], frame[4] = 0xFF, 0xFF, 0xFF, 0xFF
	if _, _, err := ReadFrame(bytes.NewReader(frame)); !errors.Is(err, ErrBadFrame) {
		t.Errorf("oversize frame: err = %v, want ErrBadFrame", err)
	}
}

func TestReadFrameTruncated(t *testing.T) {
	frame := Frame(TypeResults, []byte("full payload"))
	// Body cut short: the declared length never arrives.
	if _, _, err := ReadFrame(bytes.NewReader(frame[:len(frame)-3])); !errors.Is(err, ErrBadFrame) {
		t.Errorf("truncated body: err = %v, want ErrBadFrame", err)
	}
	// Header cut short: plain io error so idle disconnects stay untyped.
	if _, _, err := ReadFrame(bytes.NewReader(frame[:3])); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("truncated header: err = %v, want ErrUnexpectedEOF", err)
	}
}

// TestCodeErrMapping pins the full code↔sentinel table in both directions:
// every defined code decodes to exactly one sentinel, every sentinel encodes
// back to its code, and no two codes share a sentinel. The wirexhaustive
// analyzer proves the same contract statically; this test is the runtime
// witness that the table in the analyzer's view and the table the protocol
// actually executes are one and the same.
func TestCodeErrMapping(t *testing.T) {
	table := []struct {
		code     uint16
		sentinel error
	}{
		{CodeOverloaded, ErrOverloaded},
		{CodeDraining, ErrDraining},
		{CodeBadFrame, ErrBadFrame},
		{CodeBadStep, ErrBadStep},
		{CodeSessionBusy, ErrSessionBusy},
		{CodeSeqGap, ErrSeqGap},
		{CodeFlowControl, ErrFlowControl},
		{CodeInternal, ErrInternal},
	}
	seen := map[error]uint16{}
	for _, tc := range table {
		// Decode direction: the code rebuilds exactly its sentinel.
		got := CodeToErr(tc.code)
		if !errors.Is(got, tc.sentinel) {
			t.Errorf("CodeToErr(%d) = %v, want sentinel %v", tc.code, got, tc.sentinel)
		}
		// Injectivity: the decoded error matches no other sentinel.
		for _, other := range table {
			if other.code != tc.code && errors.Is(got, other.sentinel) {
				t.Errorf("CodeToErr(%d) also matches %v: mapping not injective", tc.code, other.sentinel)
			}
		}
		// Encode direction: the sentinel maps back to the same code.
		if back := ErrToCode(tc.sentinel); back != tc.code {
			t.Errorf("ErrToCode(%v) = %d, want %d", tc.sentinel, back, tc.code)
		}
		if prev, dup := seen[tc.sentinel]; dup {
			t.Errorf("codes %d and %d share sentinel %v", prev, tc.code, tc.sentinel)
		}
		seen[tc.sentinel] = tc.code
	}
	// Wrapped overloads keep their code and hint semantics.
	if got := ErrToCode(&OverloadError{Reason: "queue"}); got != CodeOverloaded {
		t.Errorf("OverloadError code = %d, want %d", got, CodeOverloaded)
	}
	// Unknown errors collapse to CodeInternal on encode; unknown codes decode
	// to an anonymous error that names the code and matches no sentinel.
	if got := ErrToCode(errors.New("surprise")); got != CodeInternal {
		t.Errorf("unknown error code = %d, want %d", got, CodeInternal)
	}
	unknown := CodeToErr(999)
	if unknown == nil {
		t.Fatal("unknown code decoded to nil error")
	}
	if !strings.Contains(unknown.Error(), "999") {
		t.Errorf("unknown-code error %q does not name the code", unknown)
	}
	for _, tc := range table {
		if errors.Is(unknown, tc.sentinel) {
			t.Errorf("unknown code 999 decodes to sentinel %v", tc.sentinel)
		}
	}
}
