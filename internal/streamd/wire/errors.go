package wire

import (
	"errors"
	"fmt"
	"time"
)

// Typed error taxonomy of the daemon, mirrored one-to-one by the wire
// protocol's error codes so a client can rebuild the same errors on its
// side of the connection. Compare with errors.Is — the daemon wraps these
// with context, never replaces them.
var (
	// ErrOverloaded is the admission controller's shed signal: the ingest
	// queue or the memory watermark is over its high-water mark and the
	// batch was rejected WITHOUT being acknowledged or consuming sequence
	// numbers. The client owns the retry (see OverloadError.RetryAfter).
	ErrOverloaded = errors.New("streamd: overloaded, retry later")
	// ErrDraining rejects work arriving after a graceful drain began; the
	// daemon is checkpointing and will not admit new batches.
	ErrDraining = errors.New("streamd: draining, not admitting work")
	// ErrClosed is returned by operations on a server or client after
	// Close/Drain completed.
	ErrClosed = errors.New("streamd: closed")
	// ErrSessionBusy rejects a second concurrent connection claiming a
	// session name that already has a live connection.
	ErrSessionBusy = errors.New("streamd: session already attached")
	// ErrSeqGap rejects an ingest whose base sequence skips past the
	// session's highest submitted sequence: the client lost state the
	// daemon cannot reconstruct.
	ErrSeqGap = errors.New("streamd: ingest sequence gap")
	// ErrBadFrame covers malformed, truncated or oversized protocol frames.
	ErrBadFrame = errors.New("streamd: bad frame")
	// ErrBadStep rejects out-of-domain join keys at admission, before any
	// sequence number is consumed (the shardrt/engine domain contract).
	ErrBadStep = errors.New("streamd: bad step")
	// ErrFlowControl rejects an ingest that exceeds the session's granted
	// credit window — a protocol violation, not an overload.
	ErrFlowControl = errors.New("streamd: credit window exceeded")
	// ErrInternal is the catch-all for daemon-side failures with no more
	// specific code (CodeInternal on the wire); clients match it with
	// errors.Is like every other sentinel.
	ErrInternal = errors.New("streamd: internal server error")
)

// OverloadError carries the daemon's retry-after hint alongside
// ErrOverloaded; errors.Is(err, ErrOverloaded) matches it.
type OverloadError struct {
	// Reason names the watermark that tripped: "queue", "memory", or
	// "slow-consumer".
	Reason string
	// RetryAfter is the daemon's backoff hint.
	RetryAfter time.Duration
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("streamd: overloaded (%s), retry after %v", e.Reason, e.RetryAfter)
}

// Unwrap makes errors.Is(err, ErrOverloaded) hold.
func (e *OverloadError) Unwrap() error { return ErrOverloaded }
