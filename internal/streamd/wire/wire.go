package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// Wire protocol of the daemon: length-prefixed binary frames over a byte
// stream. Every frame is
//
//	type   uint8
//	length uint32 big-endian   (payload bytes, not counting this header)
//	payload
//
// Integers inside payloads are big-endian; strings and byte slices are
// length-prefixed (uint16 for strings, uint32 for payload blobs). The
// payload cap bounds a malicious or corrupted length field before any
// allocation happens.
//
// The conversation is strictly client-initiated: the client sends Hello and
// receives Welcome, then alternates Ingest/Flush with Results/Error frames.
// Result frames carry the credit regrant — there is no standalone credit
// frame — and tag every pair with its global ingress sequence numbers so a
// client that reconnects can discard replayed results it has already seen.

// Frame types.
const (
	TypeHello   = 0x01 // client → server: session attach / resume
	TypeWelcome = 0x02 // server → client: attach accepted, credit grant
	TypeIngest  = 0x03 // client → server: batch of steps
	TypeResults = 0x04 // server → client: pairs + ack + credit regrant
	TypeFlush   = 0x05 // client → server: drain carried lanes
	TypeGoodbye = 0x06 // client → server: clean detach
	TypeError   = 0x07 // server → client: typed rejection
)

// Version is bumped on incompatible frame layout changes; Hello carries
// the client's version and the server rejects mismatches with ErrBadFrame.
const Version = 1

// MaxFramePayload bounds a single frame's payload. 4 MiB comfortably holds
// the largest legal ingest (MaxBatchSteps full-payload steps) while keeping
// a corrupted length field from provoking a giant allocation.
const MaxFramePayload = 4 << 20

// MaxBatchSteps bounds the steps in one ingest frame; larger batches must be
// split by the client (the client package does this transparently).
const MaxBatchSteps = 8192

// MaxPayloadBytes bounds one tuple payload blob, on every ingest route.
// It keeps the largest possible join pair (two echoed payloads plus fixed
// fields) well under MaxFramePayload, which is what lets the results
// chunker guarantee every emitted frame is legal.
const MaxPayloadBytes = 1 << 20

// MaxSessionName bounds the session identifier length.
const MaxSessionName = 256

// Wire error codes, mirrored by the typed errors in errors.go.
const (
	CodeOverloaded  = 1
	CodeDraining    = 2
	CodeBadFrame    = 3
	CodeBadStep     = 4
	CodeSessionBusy = 5
	CodeSeqGap      = 6
	CodeFlowControl = 7
	CodeInternal    = 8
)

// CodeToErr rebuilds the sentinel for a wire code on the client side.
func CodeToErr(code uint16) error {
	switch code {
	case CodeOverloaded:
		return ErrOverloaded
	case CodeDraining:
		return ErrDraining
	case CodeBadFrame:
		return ErrBadFrame
	case CodeBadStep:
		return ErrBadStep
	case CodeSessionBusy:
		return ErrSessionBusy
	case CodeSeqGap:
		return ErrSeqGap
	case CodeFlowControl:
		return ErrFlowControl
	case CodeInternal:
		return ErrInternal
	default:
		return fmt.Errorf("streamd: server error (code %d)", code)
	}
}

// ErrToCode maps a daemon-side error to its wire code.
func ErrToCode(err error) uint16 {
	switch {
	case errors.Is(err, ErrOverloaded):
		return CodeOverloaded
	case errors.Is(err, ErrDraining):
		return CodeDraining
	case errors.Is(err, ErrBadFrame):
		return CodeBadFrame
	case errors.Is(err, ErrBadStep):
		return CodeBadStep
	case errors.Is(err, ErrSessionBusy):
		return CodeSessionBusy
	case errors.Is(err, ErrSeqGap):
		return CodeSeqGap
	case errors.Is(err, ErrFlowControl):
		return CodeFlowControl
	default:
		return CodeInternal
	}
}

// Step is one (R, S) arrival pair in an ingest frame. Payloads travel as
// raw bytes; the daemon stores them opaquely and echoes them back in result
// frames. A nil payload travels as an explicit absent marker and
// round-trips as nil.
type Step struct {
	RKey, SKey         int64
	RPayload, SPayload []byte
}

// Pair is one join result in a results frame, tagged with the global
// ingress sequence numbers of both participating tuples.
type Pair struct {
	RSeq, SSeq         uint64
	RKey, SKey         int64
	Shard              uint16
	SameStep           bool
	RPayload, SPayload []byte
}

// Hello attaches (or resumes) a session.
type Hello struct {
	Version uint8
	Session string
	LastSeq uint64 // highest batch base the client saw acked; 0 = fresh
}

// Welcome accepts an attach.
type Welcome struct {
	Credits uint32 // initial credit window, in steps
	AckSeq  uint64 // highest batch base the server has processed
}

// Ingest carries a batch. Base is the 1-based batch sequence number of
// this batch within the session; batches must arrive with contiguous bases.
type Ingest struct {
	Base  uint64
	Steps []Step
}

// Results acknowledges batch Base and regrants credits. A reply whose pair
// listing would overflow MaxFramePayload travels as several Results frames:
// every chunk repeats AckSeq/Credits/Flush, all but the last set More, and
// the receiver accumulates pairs until More clears (EncodeResultsFrames
// does the splitting).
type Results struct {
	AckSeq  uint64
	Credits uint32
	Flush   bool // true when these pairs came from a Flush, not an Ingest
	More    bool // true when further chunks of the same reply follow
	Pairs   []Pair
}

// ErrorFrame is a typed rejection; RetryAfterMillis is meaningful only for
// CodeOverloaded.
type ErrorFrame struct {
	Code             uint16
	RetryAfterMillis uint32
	Msg              string
}

func (e ErrorFrame) RetryAfter() time.Duration {
	return time.Duration(e.RetryAfterMillis) * time.Millisecond
}

// --- encoding -------------------------------------------------------------

// wireBuf is an append-only encoder for frame payloads.
type wireBuf struct{ b []byte }

func (w *wireBuf) u8(v uint8)   { w.b = append(w.b, v) }
func (w *wireBuf) u16(v uint16) { w.b = binary.BigEndian.AppendUint16(w.b, v) }
func (w *wireBuf) u32(v uint32) { w.b = binary.BigEndian.AppendUint32(w.b, v) }
func (w *wireBuf) u64(v uint64) { w.b = binary.BigEndian.AppendUint64(w.b, v) }
func (w *wireBuf) i64(v int64)  { w.u64(uint64(v)) }

func (w *wireBuf) str(s string) {
	w.u16(uint16(len(s)))
	w.b = append(w.b, s...)
}

// blob writes a length-prefixed byte slice; nil and empty are distinguished
// (nil = 0xFFFFFFFF marker) so absent payloads round-trip as nil.
func (w *wireBuf) blob(b []byte) {
	if b == nil {
		w.u32(0xFFFFFFFF)
		return
	}
	w.u32(uint32(len(b)))
	w.b = append(w.b, b...)
}

// Frame assembles a complete wire frame (header + payload) as one byte
// slice — the unit of the daemon's writer queues and replay buffers.
func Frame(typ uint8, payload []byte) []byte {
	var w wireBuf
	w.b = make([]byte, 0, 5+len(payload))
	w.u8(typ)
	w.u32(uint32(len(payload)))
	w.b = append(w.b, payload...)
	return w.b
}

// WriteFrame emits one complete frame to wr.
func WriteFrame(wr io.Writer, typ uint8, payload []byte) error {
	if len(payload) > MaxFramePayload {
		return fmt.Errorf("%w: frame payload %d exceeds cap %d", ErrBadFrame, len(payload), MaxFramePayload)
	}
	var hdr [5]byte
	hdr[0] = typ
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := wr.Write(hdr[:]); err != nil {
		return err
	}
	_, err := wr.Write(payload)
	return err
}

func EncodeHello(f Hello) []byte {
	var w wireBuf
	w.u8(f.Version)
	w.str(f.Session)
	w.u64(f.LastSeq)
	return w.b
}

func EncodeWelcome(f Welcome) []byte {
	var w wireBuf
	w.u32(f.Credits)
	w.u64(f.AckSeq)
	return w.b
}

// IngestHeaderSize is the fixed payload prefix of an ingest frame (base +
// step count); StepSize is the exact encoded length of one step. Together
// they let the client split batches so every ingest frame stays under
// MaxFramePayload, mirroring the encoder below exactly.
const IngestHeaderSize = 8 + 4

func StepSize(st *Step) int {
	return 8 + 8 + 4 + 4 + len(st.RPayload) + len(st.SPayload)
}

func EncodeIngest(f Ingest) []byte {
	var w wireBuf
	w.u64(f.Base)
	w.u32(uint32(len(f.Steps)))
	for _, st := range f.Steps {
		w.i64(st.RKey)
		w.i64(st.SKey)
		w.blob(st.RPayload)
		w.blob(st.SPayload)
	}
	return w.b
}

// Results flags byte: bit 0 = Flush, bit 1 = More.
const (
	resultsFlagFlush = 1 << 0
	resultsFlagMore  = 1 << 1
)

func appendResults(w *wireBuf, f Results) {
	w.u64(f.AckSeq)
	w.u32(f.Credits)
	var flags uint8
	if f.Flush {
		flags |= resultsFlagFlush
	}
	if f.More {
		flags |= resultsFlagMore
	}
	w.u8(flags)
	w.u32(uint32(len(f.Pairs)))
	for i := range f.Pairs {
		p := &f.Pairs[i]
		w.u64(p.RSeq)
		w.u64(p.SSeq)
		w.i64(p.RKey)
		w.i64(p.SKey)
		w.u16(p.Shard)
		if p.SameStep {
			w.u8(1)
		} else {
			w.u8(0)
		}
		w.blob(p.RPayload)
		w.blob(p.SPayload)
	}
}

func EncodeResults(f Results) []byte {
	var w wireBuf
	appendResults(&w, f)
	return w.b
}

// resultsHeaderSize is the fixed payload prefix of a Results frame
// (AckSeq + Credits + flags + pair count).
const resultsHeaderSize = 8 + 4 + 1 + 4

// pairSize is the exact encoded length of one pair.
func pairSize(p *Pair) int {
	return 8 + 8 + 8 + 8 + 2 + 1 + 4 + 4 + len(p.RPayload) + len(p.SPayload)
}

// resultsSize is the exact encoded payload length of f, so the hot reply
// path can allocate once.
func resultsSize(f Results) int {
	n := resultsHeaderSize
	for i := range f.Pairs {
		n += pairSize(&f.Pairs[i])
	}
	return n
}

// EncodeResultsFrame builds the complete Results frame (header included) in
// one exact-size allocation. A large batch's reply runs to megabytes of
// pairs; encoding it through append-doubling plus Frame's payload copy costs
// several redundant passes over the buffer, which is the dominant daemon
// overhead versus calling the runtime directly. Callers that may exceed
// MaxFramePayload use EncodeResultsFrames instead.
func EncodeResultsFrame(f Results) []byte {
	size := resultsSize(f)
	var w wireBuf
	w.b = make([]byte, 0, 5+size)
	w.u8(TypeResults)
	w.u32(uint32(size))
	appendResults(&w, f)
	return w.b
}

// EncodeResultsFrames encodes f as one or more complete Results frames
// concatenated into a single byte slice, splitting the pair listing so that
// no frame payload exceeds MaxFramePayload (a join-heavy batch can produce
// a reply far larger than the ingest that caused it). Every chunk repeats
// AckSeq, Credits and Flush; all but the last set More. Because ingest
// payloads are capped at MaxPayloadBytes, a single pair always fits a
// frame, so the split cannot fail. The concatenation is the daemon's unit
// of delivery and replay — one writer-queue entry, one replay buffer — and
// decodes on the client as an ordinary frame sequence.
func EncodeResultsFrames(f Results) []byte {
	if resultsSize(f) <= MaxFramePayload {
		return EncodeResultsFrame(f)
	}
	// Greedy size-based cuts: close a chunk when the next pair would
	// overflow it (a chunk always takes at least one pair).
	type span struct{ start, end, size int }
	var spans []span
	start, size := 0, resultsHeaderSize
	for i := range f.Pairs {
		sz := pairSize(&f.Pairs[i])
		if i > start && size+sz > MaxFramePayload {
			spans = append(spans, span{start, i, size})
			start, size = i, resultsHeaderSize
		}
		size += sz
	}
	spans = append(spans, span{start, len(f.Pairs), size})

	total := 0
	for _, sp := range spans {
		total += 5 + sp.size
	}
	var w wireBuf
	w.b = make([]byte, 0, total)
	for k, sp := range spans {
		chunk := f
		chunk.Pairs = f.Pairs[sp.start:sp.end]
		chunk.More = k < len(spans)-1
		w.u8(TypeResults)
		w.u32(uint32(sp.size))
		appendResults(&w, chunk)
	}
	return w.b
}

func EncodeError(f ErrorFrame) []byte {
	var w wireBuf
	w.u16(f.Code)
	w.u32(f.RetryAfterMillis)
	w.str(f.Msg)
	return w.b
}

// --- decoding -------------------------------------------------------------

// wireCursor is a truncation-safe decoder over a frame payload: every read
// checks remaining length and poisons the cursor on underflow, so decode
// functions can read unconditionally and check err once at the end.
type wireCursor struct {
	b   []byte
	err error
}

func (c *wireCursor) take(n int) []byte {
	if c.err != nil {
		return nil
	}
	if n < 0 || n > len(c.b) {
		c.err = fmt.Errorf("%w: truncated payload (want %d bytes, have %d)", ErrBadFrame, n, len(c.b))
		return nil
	}
	out := c.b[:n]
	c.b = c.b[n:]
	return out
}

func (c *wireCursor) u8() uint8 {
	b := c.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (c *wireCursor) u16() uint16 {
	b := c.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

func (c *wireCursor) u32() uint32 {
	b := c.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (c *wireCursor) u64() uint64 {
	b := c.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (c *wireCursor) i64() int64 { return int64(c.u64()) }

func (c *wireCursor) str() string {
	n := int(c.u16())
	return string(c.take(n))
}

// blob reads a length-prefixed byte slice, copying out of the frame buffer
// so the caller may retain it after the buffer is reused.
func (c *wireCursor) blob() []byte {
	n := c.u32()
	if n == 0xFFFFFFFF {
		return nil
	}
	b := c.take(int(n))
	if b == nil {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// done rejects trailing garbage after a complete decode.
func (c *wireCursor) done() error {
	if c.err != nil {
		return c.err
	}
	if len(c.b) != 0 {
		return fmt.Errorf("%w: %d trailing bytes after frame payload", ErrBadFrame, len(c.b))
	}
	return nil
}

// ReadFrame reads one complete frame from rd, enforcing the payload cap
// before allocating.
func ReadFrame(rd io.Reader) (typ uint8, payload []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(rd, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > MaxFramePayload {
		return 0, nil, fmt.Errorf("%w: frame payload %d exceeds cap %d", ErrBadFrame, n, MaxFramePayload)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(rd, payload); err != nil {
		return 0, nil, fmt.Errorf("%w: truncated frame body: %v", ErrBadFrame, err)
	}
	return hdr[0], payload, nil
}

func DecodeHello(b []byte) (Hello, error) {
	c := wireCursor{b: b}
	f := Hello{Version: c.u8(), Session: c.str(), LastSeq: c.u64()}
	if err := c.done(); err != nil {
		return Hello{}, err
	}
	if len(f.Session) == 0 || len(f.Session) > MaxSessionName {
		return Hello{}, fmt.Errorf("%w: session name length %d (want 1..%d)", ErrBadFrame, len(f.Session), MaxSessionName)
	}
	return f, nil
}

func DecodeWelcome(b []byte) (Welcome, error) {
	c := wireCursor{b: b}
	f := Welcome{Credits: c.u32(), AckSeq: c.u64()}
	if err := c.done(); err != nil {
		return Welcome{}, err
	}
	return f, nil
}

func DecodeIngest(b []byte) (Ingest, error) {
	c := wireCursor{b: b}
	f := Ingest{Base: c.u64()}
	n := c.u32()
	if c.err == nil && n > MaxBatchSteps {
		return Ingest{}, fmt.Errorf("%w: batch of %d steps exceeds cap %d", ErrBadFrame, n, MaxBatchSteps)
	}
	if c.err == nil {
		f.Steps = make([]Step, 0, n)
	}
	for i := uint32(0); i < n && c.err == nil; i++ {
		f.Steps = append(f.Steps, Step{
			RKey: c.i64(), SKey: c.i64(),
			RPayload: c.blob(), SPayload: c.blob(),
		})
	}
	if err := c.done(); err != nil {
		return Ingest{}, err
	}
	return f, nil
}

func DecodeResults(b []byte) (Results, error) {
	c := wireCursor{b: b}
	f := Results{AckSeq: c.u64(), Credits: c.u32()}
	flags := c.u8()
	if c.err == nil && flags&^(resultsFlagFlush|resultsFlagMore) != 0 {
		return Results{}, fmt.Errorf("%w: unknown results flags 0x%02x", ErrBadFrame, flags)
	}
	f.Flush = flags&resultsFlagFlush != 0
	f.More = flags&resultsFlagMore != 0
	n := c.u32()
	if c.err == nil && n > MaxFramePayload/16 {
		return Results{}, fmt.Errorf("%w: pair count %d implausible for payload size", ErrBadFrame, n)
	}
	if c.err == nil {
		f.Pairs = make([]Pair, 0, n)
	}
	for i := uint32(0); i < n && c.err == nil; i++ {
		f.Pairs = append(f.Pairs, Pair{
			RSeq: c.u64(), SSeq: c.u64(),
			RKey: c.i64(), SKey: c.i64(),
			Shard: c.u16(), SameStep: c.u8() == 1,
			RPayload: c.blob(), SPayload: c.blob(),
		})
	}
	if err := c.done(); err != nil {
		return Results{}, err
	}
	return f, nil
}

func DecodeError(b []byte) (ErrorFrame, error) {
	c := wireCursor{b: b}
	f := ErrorFrame{Code: c.u16(), RetryAfterMillis: c.u32(), Msg: c.str()}
	if err := c.done(); err != nil {
		return ErrorFrame{}, err
	}
	return f, nil
}
