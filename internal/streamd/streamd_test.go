package streamd_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"stochstream/internal/shardrt"
	"stochstream/internal/stats"
	"stochstream/internal/streamd"
	"stochstream/internal/streamd/client"
	"stochstream/internal/streamd/wire"
)

// testRuntimeConfig is the shared runtime shape of the daemon tests: small
// cache, several shards, deterministic seed.
func testRuntimeConfig(shards int) shardrt.Config {
	return shardrt.Config{
		Shards:     shards,
		TotalCache: 64,
		Seed:       42,
	}
}

// genSteps builds a deterministic workload with enough key collisions to
// produce join pairs: keys cycle through a small domain.
func genSteps(rng *stats.RNG, n, domain int) []wire.Step {
	steps := make([]wire.Step, n)
	for i := range steps {
		steps[i] = wire.Step{
			RKey:     int64(rng.IntN(domain)),
			SKey:     int64(rng.IntN(domain)),
			RPayload: []byte{byte(i), byte(i >> 8), 'r'},
			SPayload: []byte{byte(i), byte(i >> 8), 's'},
		}
	}
	return steps
}

// toRuntimeSteps mirrors the daemon's wire-to-engine conversion for the
// direct-runtime differential oracle.
func toRuntimeSteps(in []wire.Step) []shardrt.Step {
	out := make([]shardrt.Step, len(in))
	for i, ws := range in {
		out[i] = shardrt.Step{}
		out[i].R.Key = int(ws.RKey)
		out[i].S.Key = int(ws.SKey)
		if ws.RPayload != nil {
			out[i].R.Payload = ws.RPayload
		}
		if ws.SPayload != nil {
			out[i].S.Payload = ws.SPayload
		}
	}
	return out
}

func pairKey(rseq, sseq uint64) string { return fmt.Sprintf("%d/%d", rseq, sseq) }

// wirePairsEqualRuntime checks the daemon's result stream against the
// direct runtime's, order included.
func wirePairsEqualRuntime(t *testing.T, got []wire.Pair, want []shardrt.Pair) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("pair count = %d, want %d", len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.RSeq != w.RSeq || g.SSeq != w.SSeq || int(g.RKey) != w.R.Key || int(g.SKey) != w.S.Key ||
			int(g.Shard) != w.Shard || g.SameStep != w.SameStep {
			t.Fatalf("pair %d = %+v, want seqs (%d,%d) keys (%d,%d) shard %d same %v",
				i, g, w.RSeq, w.SSeq, w.R.Key, w.S.Key, w.Shard, w.SameStep)
		}
	}
}

// TestEndToEnd drives one session through the framed protocol and checks
// the result stream is byte-for-byte what the runtime produces directly
// with the same batch boundaries.
func TestEndToEnd(t *testing.T) {
	srv, err := streamd.Start(streamd.Config{
		Runtime: testRuntimeConfig(4),
		Listen:  "127.0.0.1:0",
	})
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer func() { _ = srv.Close() }()

	rt, err := shardrt.New(testRuntimeConfig(4))
	if err != nil {
		t.Fatalf("shardrt.New: %v", err)
	}
	defer func() { _, _ = rt.Close() }()

	cl, err := client.Dial(client.Options{Addr: srv.Addr(), Session: "e2e", Seed: 7})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer func() { _ = cl.Close() }()

	rng := stats.NewRNG(99)
	const batches, batchLen = 20, 50
	for b := 0; b < batches; b++ {
		steps := genSteps(rng, batchLen, 16)
		got, err := cl.Ingest(steps)
		if err != nil {
			t.Fatalf("Ingest batch %d: %v", b, err)
		}
		want, err := rt.IngestBatch(toRuntimeSteps(steps))
		if err != nil {
			t.Fatalf("direct IngestBatch %d: %v", b, err)
		}
		wirePairsEqualRuntime(t, got, want)
	}
	if cl.Acked() != batches {
		t.Fatalf("Acked = %d, want %d", cl.Acked(), batches)
	}

	gotFlush, err := cl.Flush()
	if err != nil {
		t.Fatalf("Flush: %v", err)
	}
	wantFlush, err := rt.Flush()
	if err != nil {
		t.Fatalf("direct Flush: %v", err)
	}
	wirePairsEqualRuntime(t, gotFlush, wantFlush)
}

// TestPayloadRoundTrip pins the payload encoding: nil stays nil, empty
// stays empty, bytes echo back on both sides of every pair.
func TestPayloadRoundTrip(t *testing.T) {
	srv, err := streamd.Start(streamd.Config{
		Runtime: testRuntimeConfig(2),
		Listen:  "127.0.0.1:0",
	})
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer func() { _ = srv.Close() }()

	cl, err := client.Dial(client.Options{Addr: srv.Addr(), Session: "payload", Seed: 1})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer func() { _ = cl.Close() }()

	// Same key on both sides in one step joins immediately.
	pairs, err := cl.Ingest([]wire.Step{
		{RKey: 5, SKey: 5, RPayload: []byte("left"), SPayload: nil},
	})
	if err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	if len(pairs) != 1 {
		t.Fatalf("pairs = %d, want 1", len(pairs))
	}
	if string(pairs[0].RPayload) != "left" {
		t.Errorf("RPayload = %q, want left", pairs[0].RPayload)
	}
	if pairs[0].SPayload != nil {
		t.Errorf("SPayload = %v, want nil", pairs[0].SPayload)
	}
}

// TestHTTPIngest drives the HTTP/JSON route end to end: pairs match the
// direct runtime, bad requests answer typed 4xx JSON, and the conservation
// counters cover HTTP-ingested steps exactly like framed ones.
func TestHTTPIngest(t *testing.T) {
	srv, err := streamd.Start(streamd.Config{
		Runtime:    testRuntimeConfig(4),
		Listen:     "127.0.0.1:0",
		HTTPListen: "127.0.0.1:0",
	})
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer func() { _ = srv.Close() }()

	rt, err := shardrt.New(testRuntimeConfig(4))
	if err != nil {
		t.Fatalf("shardrt.New: %v", err)
	}
	defer func() { _, _ = rt.Close() }()

	base := "http://" + srv.HTTPAddr()
	body := `{"steps":[{"rkey":5,"skey":5},{"rkey":5,"skey":7},{"rkey":7,"skey":5}]}`
	resp, err := http.Post(base+"/ingest", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /ingest: %v", err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	var out struct {
		Pairs []struct {
			RSeq, SSeq uint64
			RKey, SKey int64
			Shard      int
			SameStep   bool `json:"same_step"`
		} `json:"pairs"`
		Count int `json:"count"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	want, err := rt.IngestBatch(toRuntimeSteps([]wire.Step{
		{RKey: 5, SKey: 5},
		{RKey: 5, SKey: 7},
		{RKey: 7, SKey: 5},
	}))
	if err != nil {
		t.Fatalf("direct IngestBatch: %v", err)
	}
	if out.Count != len(want) || len(out.Pairs) != len(want) {
		t.Fatalf("count = %d (pairs %d), want %d", out.Count, len(out.Pairs), len(want))
	}
	for i, p := range out.Pairs {
		w := want[i]
		if p.RSeq != w.RSeq || p.SSeq != w.SSeq || int(p.RKey) != w.R.Key || int(p.SKey) != w.S.Key ||
			p.Shard != w.Shard || p.SameStep != w.SameStep {
			t.Fatalf("pair %d = %+v, want %+v", i, p, w)
		}
	}

	// The conservation counters cover the HTTP route.
	counters := srv.Registry().Snapshot().Counters
	if got := counters["streamd_steps_total"]; got != 3 {
		t.Errorf("streamd_steps_total = %d, want 3", got)
	}
	if got := counters["streamd_pairs_total"]; got != int64(len(want)) {
		t.Errorf("streamd_pairs_total = %d, want %d", got, len(want))
	}
	if got := counters["streamd_http_ingest_total"]; got != 1 {
		t.Errorf("streamd_http_ingest_total = %d, want 1", got)
	}

	// Malformed and empty batches answer typed 4xx JSON, consume nothing.
	for _, bad := range []string{`{"steps":[]}`, `not json`} {
		r2, err := http.Post(base+"/ingest", "application/json", strings.NewReader(bad))
		if err != nil {
			t.Fatalf("POST bad body: %v", err)
		}
		_ = r2.Body.Close()
		if r2.StatusCode != http.StatusBadRequest {
			t.Errorf("bad body %q: status = %d, want 400", bad, r2.StatusCode)
		}
	}
	if got := srv.Registry().Snapshot().Counters["streamd_steps_total"]; got != 3 {
		t.Errorf("steps_total after rejected bodies = %d, want 3", got)
	}
}

// TestClientRespectsCreditWindow is the regression for the default-config
// flow-control mismatch: a client whose MaxBatch exceeds the server's
// credit window must split batches down to the handshake's grant instead
// of tripping the fatal ErrFlowControl rejection.
func TestClientRespectsCreditWindow(t *testing.T) {
	const window = 8
	srv, err := streamd.Start(streamd.Config{
		Runtime: testRuntimeConfig(2),
		Listen:  "127.0.0.1:0",
		Credits: window,
	})
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer func() { _ = srv.Close() }()

	// Default options: MaxBatch = wire.MaxBatchSteps (8192) >> window.
	cl, err := client.Dial(client.Options{Addr: srv.Addr(), Session: "window", Seed: 3})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer func() { _ = cl.Close() }()

	rng := stats.NewRNG(5)
	steps := genSteps(rng, 50, 8)
	got, err := cl.Ingest(steps)
	if err != nil {
		t.Fatalf("Ingest across small window: %v", err)
	}
	// The split is window-sized and deterministic: ceil(50/8) = 7 batches.
	if cl.Acked() != 7 {
		t.Fatalf("Acked = %d, want 7 window-sized batches", cl.Acked())
	}
	rt, err := shardrt.New(testRuntimeConfig(2))
	if err != nil {
		t.Fatalf("shardrt.New: %v", err)
	}
	defer func() { _, _ = rt.Close() }()
	var want []shardrt.Pair
	for i := 0; i < len(steps); i += window {
		end := i + window
		if end > len(steps) {
			end = len(steps)
		}
		ps, err := rt.IngestBatch(toRuntimeSteps(steps[i:end]))
		if err != nil {
			t.Fatalf("oracle batch at %d: %v", i, err)
		}
		want = append(want, ps...)
	}
	wirePairsEqualRuntime(t, got, want)
}

// TestChunkedResultsEndToEnd drives a payload-heavy join whose replies
// outgrow a single results frame: the daemon must chunk them (More flag)
// and the client must reassemble, staying byte-identical to the direct
// runtime with the same (size-driven) batch boundaries.
func TestChunkedResultsEndToEnd(t *testing.T) {
	srv, err := streamd.Start(streamd.Config{
		Runtime: testRuntimeConfig(2),
		Listen:  "127.0.0.1:0",
	})
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer func() { _ = srv.Close() }()

	cl, err := client.Dial(client.Options{Addr: srv.Addr(), Session: "chunked", Seed: 9})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer func() { _ = cl.Close() }()

	// Max-size payloads on one hot key: every step joins against all the
	// cached partners, so late batches reply with many ~2 MiB pairs.
	big := bytes.Repeat([]byte{0xAB}, wire.MaxPayloadBytes)
	const n = 6
	steps := make([]wire.Step, n)
	for i := range steps {
		steps[i] = wire.Step{RKey: 7, SKey: 7, RPayload: big, SPayload: big}
	}
	got, err := cl.Ingest(steps)
	if err != nil {
		t.Fatalf("Ingest: %v", err)
	}

	// The frame-size split puts one step per batch (two max-payload steps
	// overflow an ingest frame); the oracle uses the same boundaries.
	if cl.Acked() != n {
		t.Fatalf("Acked = %d, want %d single-step batches", cl.Acked(), n)
	}
	rt, err := shardrt.New(testRuntimeConfig(2))
	if err != nil {
		t.Fatalf("shardrt.New: %v", err)
	}
	defer func() { _, _ = rt.Close() }()
	var want []shardrt.Pair
	for i := range steps {
		ps, err := rt.IngestBatch(toRuntimeSteps(steps[i : i+1]))
		if err != nil {
			t.Fatalf("oracle step %d: %v", i, err)
		}
		want = append(want, ps...)
	}
	wirePairsEqualRuntime(t, got, want)
	total := 0
	for i := range got {
		if !bytes.Equal(got[i].RPayload, big) || !bytes.Equal(got[i].SPayload, big) {
			t.Fatalf("pair %d payload corrupted through chunked delivery", i)
		}
		total += len(got[i].RPayload) + len(got[i].SPayload)
	}
	if total <= wire.MaxFramePayload {
		t.Fatalf("workload produced only %d result bytes; raise n to force chunking", total)
	}
}

// TestClientRejectsOversizedPayload pins the client-side payload cap: a
// blob over wire.MaxPayloadBytes is refused before any frame is sent.
func TestClientRejectsOversizedPayload(t *testing.T) {
	srv, err := streamd.Start(streamd.Config{
		Runtime: testRuntimeConfig(2),
		Listen:  "127.0.0.1:0",
	})
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer func() { _ = srv.Close() }()
	cl, err := client.Dial(client.Options{Addr: srv.Addr(), Session: "overpay", Seed: 1})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer func() { _ = cl.Close() }()
	_, err = cl.Ingest([]wire.Step{{RKey: 1, SKey: 1, SPayload: make([]byte, wire.MaxPayloadBytes+1)}})
	if !errors.Is(err, wire.ErrBadStep) {
		t.Fatalf("oversized payload: err = %v, want ErrBadStep", err)
	}
	if cl.Acked() != 0 {
		t.Fatalf("Acked after rejection = %d, want 0", cl.Acked())
	}
}

// TestBadStepRejected pins admission-time key validation: an out-of-domain
// key is rejected with ErrBadStep, consumes no sequence number, and the
// session continues on the same connection.
func TestBadStepRejected(t *testing.T) {
	srv, err := streamd.Start(streamd.Config{
		Runtime: testRuntimeConfig(2),
		Listen:  "127.0.0.1:0",
	})
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer func() { _ = srv.Close() }()

	cl, err := client.Dial(client.Options{Addr: srv.Addr(), Session: "badstep", Seed: 1})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer func() { _ = cl.Close() }()

	_, err = cl.Ingest([]wire.Step{{RKey: -1 << 40, SKey: 1}})
	if !errors.Is(err, wire.ErrBadStep) {
		t.Fatalf("Ingest out-of-domain = %v, want ErrBadStep", err)
	}
	if cl.Acked() != 0 {
		t.Fatalf("Acked after rejection = %d, want 0", cl.Acked())
	}
	// The same session and connection keep working.
	pairs, err := cl.Ingest([]wire.Step{{RKey: 3, SKey: 3}})
	if err != nil {
		t.Fatalf("Ingest after rejection: %v", err)
	}
	if len(pairs) != 1 || cl.Acked() != 1 {
		t.Fatalf("pairs = %d acked = %d, want 1 and 1", len(pairs), cl.Acked())
	}
}
