package streamd

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"stochstream/internal/streamd/wire"
)

// HTTP surface of the daemon. /ingest is a sessionless convenience route —
// synchronous, sequence-tagged like the framed protocol, but without the
// resume/replay machinery (a client that needs retry safety uses the framed
// protocol). The health and observability routes make the daemon deployable
// behind ordinary load-balancer and scrape infrastructure:
//
//	POST /ingest    JSON batch in, JSON pairs out; 503 + Retry-After on shed
//	GET  /healthz   200 while the process serves
//	GET  /readyz    200 until drain begins, then 503
//	GET  /metrics   daemon + per-shard Prometheus exposition
//	GET  /metrics.json  combined JSON snapshot
//	/spans, /shards, /shard/<i>/...  delegated to the runtime's handler
type httpIngestRequest struct {
	Steps []httpStep `json:"steps"`
}

type httpStep struct {
	RKey     int64  `json:"rkey"`
	SKey     int64  `json:"skey"`
	RPayload []byte `json:"rpayload,omitempty"`
	SPayload []byte `json:"spayload,omitempty"`
}

type httpPair struct {
	RSeq     uint64 `json:"rseq"`
	SSeq     uint64 `json:"sseq"`
	RKey     int64  `json:"rkey"`
	SKey     int64  `json:"skey"`
	Shard    int    `json:"shard"`
	SameStep bool   `json:"same_step"`
	RPayload []byte `json:"rpayload,omitempty"`
	SPayload []byte `json:"spayload,omitempty"`
}

type httpIngestResponse struct {
	Pairs []httpPair `json:"pairs"`
	Count int        `json:"count"`
}

func (s *Server) httpHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/ingest", s.httpIngest)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		if s.draining.Load() {
			httpJSONError(w, http.StatusServiceUnavailable, "draining")
			return
		}
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("ready\n"))
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		s.reg.WritePrometheus(w)
		s.rt.ShardSet().WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(map[string]interface{}{
			"daemon":  s.reg.Snapshot(),
			"runtime": s.rt.ShardSet().Snapshot(),
		})
	})
	// The runtime's own aggregated surface (spans, per-shard registries).
	rth := s.rt.Handler()
	mux.Handle("/spans", rth)
	mux.Handle("/shards", rth)
	mux.Handle("/shard/", rth)
	return mux
}

// httpIngest runs one batch through the engine loop synchronously. It
// shares the framed protocol's admission control: a shed request answers
// 503 with a Retry-After header and consumes nothing.
func (s *Server) httpIngest(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		httpJSONError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var in httpIngestRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, req.Body, wire.MaxFramePayload))
	if err := dec.Decode(&in); err != nil {
		httpJSONError(w, http.StatusBadRequest, fmt.Sprintf("decode: %v", err))
		return
	}
	if len(in.Steps) == 0 {
		httpJSONError(w, http.StatusBadRequest, "empty batch")
		return
	}
	if len(in.Steps) > wire.MaxBatchSteps {
		httpJSONError(w, http.StatusBadRequest, fmt.Sprintf("batch of %d steps exceeds cap %d", len(in.Steps), wire.MaxBatchSteps))
		return
	}
	wsteps := make([]wire.Step, len(in.Steps))
	for i, st := range in.Steps {
		wsteps[i] = wire.Step{RKey: st.RKey, SKey: st.SKey, RPayload: st.RPayload, SPayload: st.SPayload}
	}
	steps, err := stepsFromWire(wsteps)
	if err != nil {
		httpJSONError(w, http.StatusBadRequest, err.Error())
		return
	}
	r := &ingestReq{kind: kindHTTP, steps: steps, reply: make(chan engineReply, 1)}
	if err := s.submit(r); err != nil {
		status := http.StatusServiceUnavailable
		var ov *OverloadError
		if errors.As(err, &ov) {
			w.Header().Set("Retry-After", strconv.FormatFloat(ov.RetryAfter.Seconds(), 'f', 3, 64))
		}
		httpJSONError(w, status, err.Error())
		return
	}
	rep := <-r.reply
	if rep.err != nil {
		httpJSONError(w, http.StatusInternalServerError, rep.err.Error())
		return
	}
	s.httpTotal.Inc()
	out := httpIngestResponse{Pairs: make([]httpPair, len(rep.pairs)), Count: len(rep.pairs)}
	for i, p := range rep.pairs {
		out.Pairs[i] = httpPair{
			RSeq: p.RSeq, SSeq: p.SSeq,
			RKey: int64(p.R.Key), SKey: int64(p.S.Key),
			Shard: p.Shard, SameStep: p.SameStep,
			RPayload: payloadToWire(p.R.Payload),
			SPayload: payloadToWire(p.S.Payload),
		}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(out)
}

func httpJSONError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
