package streamd

import (
	"net"
	"sync"
)

// session is the daemon-side state of one named client stream. Sessions
// outlive connections: a client that loses its TCP connection reattaches by
// name and resumes from the server's acknowledged batch sequence, and the
// one-batch replay buffer re-delivers the results frame a disconnect may
// have swallowed. With the client package's synchronous one-batch-in-flight
// discipline that single buffered frame always covers the gap.
type session struct {
	name string

	mu sync.Mutex
	// attached is the live connection, nil while detached. Result delivery
	// always targets the session's current attachment, not the connection
	// that submitted the batch, so results of a batch admitted just before
	// a disconnect reach the replacement connection.
	attached *conn
	// submitted is the highest batch base handed to the engine loop;
	// acked is the highest batch fully processed. submitted == acked
	// except while a batch sits in the ingest queue.
	submitted uint64
	acked     uint64
	// credits is the remaining flow-control window, in steps. Ingest
	// consumes, acknowledgment regrants; result frames carry the absolute
	// remainder so client and server cannot drift.
	credits int
	// lastSeen is the reap clock: nanos of the last frame or detach.
	lastSeen int64
	// lastBase/lastFrame are the replay buffer: the base of the last
	// acknowledged ingest batch and its complete encoded results frame.
	lastBase  uint64
	lastFrame []byte
}

// batchDisposition classifies an arriving ingest base against the session's
// sequence state. The zero value is never returned.
type batchDisposition int

const (
	// batchAdmit: next contiguous batch, hand to the engine.
	batchAdmit batchDisposition = iota + 1
	// batchReplay: duplicate of the last acknowledged batch — resend the
	// buffered results frame, do not re-ingest.
	batchReplay
	// batchInFlight: duplicate of a batch already queued for the engine —
	// drop silently, the original will deliver to the current attachment.
	batchInFlight
	// batchGap: the base skips ahead or falls behind the replay buffer;
	// unrecoverable, reject the connection.
	batchGap
)

// classify maps base onto the session's sequence state. Caller holds mu.
func (ss *session) classify(base uint64) batchDisposition {
	switch {
	case base == ss.submitted+1:
		return batchAdmit
	case base == ss.acked && base == ss.lastBase && ss.lastFrame != nil:
		return batchReplay
	case base > ss.acked && base <= ss.submitted:
		return batchInFlight
	default:
		return batchGap
	}
}

// conn is one TCP connection's plumbing: the reader goroutine owns nc
// reads, the writer goroutine drains out, and kill tears both down
// idempotently from either side (or from Drain).
type conn struct {
	nc net.Conn
	// out carries complete encoded frames to the writer. Senders never
	// block: delivery uses a non-blocking send and treats a full buffer as
	// a slow consumer (the connection is killed rather than letting one
	// stalled reader wedge the engine loop).
	out chan []byte
	// stop is closed by kill; the writer drains queued frames, then closes
	// the socket — which is what finally unblocks the reader.
	stop     chan struct{}
	stopOnce sync.Once
}

func newConn(nc net.Conn, outDepth int) *conn {
	return &conn{nc: nc, out: make(chan []byte, outDepth), stop: make(chan struct{})}
}

// kill signals teardown from any goroutine, idempotently. Only stop is
// closed here: the writer owns the socket close so frames already queued
// (a final error or draining notice) still flush, bounded by the write
// deadline; the socket close then unblocks a reader mid-ReadFull.
func (c *conn) kill() {
	c.stopOnce.Do(func() { close(c.stop) })
}

// trySend enqueues a complete frame for the writer without blocking and
// reports whether it fit. Callers kill the connection on false.
func (c *conn) trySend(frame []byte) bool {
	select {
	case c.out <- frame:
		return true
	default:
		return false
	}
}
