package streamd_test

import (
	"bufio"
	"net"
	"testing"
	"time"

	"stochstream/internal/streamd"
	"stochstream/internal/streamd/wire"
)

// Raw-socket protocol edge tests: each drives the daemon with hand-built
// frames and pins the exact typed error code, whether the connection
// survives, and that no sequence number is consumed by a rejected exchange.

type rawConn struct {
	nc net.Conn
	rd *bufio.Reader
}

func rawDial(t *testing.T, addr string) *rawConn {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial %s: %v", addr, err)
	}
	t.Cleanup(func() { _ = nc.Close() })
	_ = nc.SetDeadline(time.Now().Add(10 * time.Second))
	return &rawConn{nc: nc, rd: bufio.NewReader(nc)}
}

func (r *rawConn) send(t *testing.T, typ uint8, payload []byte) {
	t.Helper()
	if _, err := r.nc.Write(wire.Frame(typ, payload)); err != nil {
		t.Fatalf("write frame 0x%02x: %v", typ, err)
	}
}

func (r *rawConn) read(t *testing.T) (uint8, []byte) {
	t.Helper()
	typ, payload, err := wire.ReadFrame(r.rd)
	if err != nil {
		t.Fatalf("read frame: %v", err)
	}
	return typ, payload
}

// expectError reads one frame and requires a typed error with the code.
func (r *rawConn) expectError(t *testing.T, code uint16) wire.ErrorFrame {
	t.Helper()
	typ, payload := r.read(t)
	if typ != wire.TypeError {
		t.Fatalf("frame type 0x%02x, want error", typ)
	}
	f, err := wire.DecodeError(payload)
	if err != nil {
		t.Fatalf("DecodeError: %v", err)
	}
	if f.Code != code {
		t.Fatalf("error code %d (%s), want %d", f.Code, f.Msg, code)
	}
	return f
}

// expectClosed requires the server side to close the connection.
func (r *rawConn) expectClosed(t *testing.T) {
	t.Helper()
	if _, _, err := wire.ReadFrame(r.rd); err == nil {
		t.Fatal("connection still open, expected close")
	}
}

// handshake performs the hello/welcome exchange.
func (r *rawConn) handshake(t *testing.T, session string, lastSeq uint64) wire.Welcome {
	t.Helper()
	r.send(t, wire.TypeHello, wire.EncodeHello(wire.Hello{Version: wire.Version, Session: session, LastSeq: lastSeq}))
	typ, payload := r.read(t)
	if typ != wire.TypeWelcome {
		t.Fatalf("handshake frame type 0x%02x, want welcome", typ)
	}
	w, err := wire.DecodeWelcome(payload)
	if err != nil {
		t.Fatalf("DecodeWelcome: %v", err)
	}
	return w
}

func protoServer(t *testing.T, mutate func(*streamd.Config)) *streamd.Server {
	t.Helper()
	cfg := streamd.Config{Runtime: testRuntimeConfig(2), Listen: "127.0.0.1:0"}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := streamd.Start(cfg)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return srv
}

func TestProtocolVersionMismatch(t *testing.T) {
	srv := protoServer(t, nil)
	rc := rawDial(t, srv.Addr())
	rc.send(t, wire.TypeHello, wire.EncodeHello(wire.Hello{Version: wire.Version + 1, Session: "v"}))
	rc.expectError(t, wire.CodeBadFrame)
	rc.expectClosed(t)
}

func TestProtocolFirstFrameNotHello(t *testing.T) {
	srv := protoServer(t, nil)
	rc := rawDial(t, srv.Addr())
	rc.send(t, wire.TypeIngest, wire.EncodeIngest(wire.Ingest{Base: 1}))
	rc.expectError(t, wire.CodeBadFrame)
	rc.expectClosed(t)
}

func TestProtocolUnknownFrameType(t *testing.T) {
	srv := protoServer(t, nil)
	rc := rawDial(t, srv.Addr())
	rc.handshake(t, "unknown-type", 0)
	rc.send(t, 0x7F, nil)
	rc.expectError(t, wire.CodeBadFrame)
	rc.expectClosed(t)
}

func TestProtocolSeqGap(t *testing.T) {
	srv := protoServer(t, nil)
	rc := rawDial(t, srv.Addr())
	rc.handshake(t, "gap", 0)
	// Base 5 on a fresh session skips 1..4: unrecoverable, fatal.
	rc.send(t, wire.TypeIngest, wire.EncodeIngest(wire.Ingest{Base: 5, Steps: []wire.Step{{RKey: 1, SKey: 1}}}))
	rc.expectError(t, wire.CodeSeqGap)
	rc.expectClosed(t)

	// The violation consumed nothing: a fresh attach still resumes at 0.
	rc2 := rawDial(t, srv.Addr())
	if w := rc2.handshake(t, "gap", 0); w.AckSeq != 0 {
		t.Fatalf("AckSeq after rejected gap = %d, want 0", w.AckSeq)
	}
}

func TestProtocolResumeGapRefused(t *testing.T) {
	srv := protoServer(t, nil)
	// A client claiming a future resume point on a fresh session is beyond
	// the one-batch replay buffer: refused at attach.
	rc := rawDial(t, srv.Addr())
	rc.send(t, wire.TypeHello, wire.EncodeHello(wire.Hello{Version: wire.Version, Session: "resume-gap", LastSeq: 7}))
	rc.expectError(t, wire.CodeSeqGap)
	rc.expectClosed(t)
}

func TestProtocolCreditViolation(t *testing.T) {
	srv := protoServer(t, func(c *streamd.Config) { c.Credits = 8 })
	rc := rawDial(t, srv.Addr())
	if w := rc.handshake(t, "credits", 0); w.Credits != 8 {
		t.Fatalf("welcome credits = %d, want 8", w.Credits)
	}
	// 9 steps against an 8-step window: flow-control violation, fatal.
	steps := make([]wire.Step, 9)
	for i := range steps {
		steps[i] = wire.Step{RKey: 1, SKey: 1}
	}
	rc.send(t, wire.TypeIngest, wire.EncodeIngest(wire.Ingest{Base: 1, Steps: steps}))
	rc.expectError(t, wire.CodeFlowControl)
	rc.expectClosed(t)

	// Nothing was consumed: the session accepts a conforming batch next.
	rc2 := rawDial(t, srv.Addr())
	rc2.handshake(t, "credits", 0)
	rc2.send(t, wire.TypeIngest, wire.EncodeIngest(wire.Ingest{Base: 1, Steps: steps[:8]}))
	typ, payload := rc2.read(t)
	if typ != wire.TypeResults {
		t.Fatalf("frame type 0x%02x, want results", typ)
	}
	f, err := wire.DecodeResults(payload)
	if err != nil || f.AckSeq != 1 {
		t.Fatalf("results = %+v, %v; want ack 1", f, err)
	}
}

// TestProtocolOversizedPayloadRejected pins the server-side payload cap:
// a step blob over wire.MaxPayloadBytes is a recoverable bad-step
// rejection that consumes no sequence number.
func TestProtocolOversizedPayloadRejected(t *testing.T) {
	srv := protoServer(t, nil)
	rc := rawDial(t, srv.Addr())
	rc.handshake(t, "overpay", 0)
	rc.send(t, wire.TypeIngest, wire.EncodeIngest(wire.Ingest{Base: 1, Steps: []wire.Step{
		{RKey: 1, SKey: 1, RPayload: make([]byte, wire.MaxPayloadBytes+1)},
	}}))
	rc.expectError(t, wire.CodeBadStep)

	// The connection survives and the next conforming batch is sequence 1.
	rc.send(t, wire.TypeIngest, wire.EncodeIngest(wire.Ingest{Base: 1, Steps: []wire.Step{{RKey: 2, SKey: 2}}}))
	typ, payload := rc.read(t)
	if typ != wire.TypeResults {
		t.Fatalf("frame type 0x%02x, want results", typ)
	}
	f, err := wire.DecodeResults(payload)
	if err != nil || f.AckSeq != 1 {
		t.Fatalf("results = %+v, %v; want ack 1", f, err)
	}
}

func TestProtocolSessionBusy(t *testing.T) {
	srv := protoServer(t, nil)
	rc := rawDial(t, srv.Addr())
	rc.handshake(t, "busy", 0)
	rc2 := rawDial(t, srv.Addr())
	rc2.send(t, wire.TypeHello, wire.EncodeHello(wire.Hello{Version: wire.Version, Session: "busy", LastSeq: 0}))
	rc2.expectError(t, wire.CodeSessionBusy)
	rc2.expectClosed(t)

	// Releasing the first connection frees the name.
	_ = rc.nc.Close()
	for attempt := 0; ; attempt++ {
		rc3 := rawDial(t, srv.Addr())
		rc3.send(t, wire.TypeHello, wire.EncodeHello(wire.Hello{Version: wire.Version, Session: "busy", LastSeq: 0}))
		typ, _ := rc3.read(t)
		if typ == wire.TypeWelcome {
			break
		}
		if attempt > 100 {
			t.Fatal("session never released after disconnect")
		}
		_ = rc3.nc.Close()
		time.Sleep(2 * time.Millisecond)
	}
}

func TestProtocolOversizeFrameTearsDown(t *testing.T) {
	srv := protoServer(t, nil)
	rc := rawDial(t, srv.Addr())
	rc.handshake(t, "oversize", 0)
	// Header declares a payload beyond the cap: the daemon must drop the
	// connection without reading (or allocating) the body.
	hdr := []byte{wire.TypeIngest, 0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := rc.nc.Write(hdr); err != nil {
		t.Fatalf("write oversize header: %v", err)
	}
	rc.expectClosed(t)
}

func TestProtocolTruncatedFrameConsumesNothing(t *testing.T) {
	srv := protoServer(t, nil)
	rc := rawDial(t, srv.Addr())
	rc.handshake(t, "trunc", 0)
	// Declare 100 payload bytes, deliver 10, then half-close: the daemon
	// sees a truncated frame and tears down without consuming a sequence.
	hdr := wire.Frame(wire.TypeIngest, make([]byte, 100))[:15]
	if _, err := rc.nc.Write(hdr); err != nil {
		t.Fatalf("write truncated frame: %v", err)
	}
	if err := rc.nc.(*net.TCPConn).CloseWrite(); err != nil {
		t.Fatalf("CloseWrite: %v", err)
	}
	rc.expectClosed(t)

	rc2 := rawDial(t, srv.Addr())
	if w := rc2.handshake(t, "trunc", 0); w.AckSeq != 0 {
		t.Fatalf("AckSeq after truncated frame = %d, want 0", w.AckSeq)
	}
}

func TestProtocolMalformedIngestPayload(t *testing.T) {
	srv := protoServer(t, nil)
	rc := rawDial(t, srv.Addr())
	rc.handshake(t, "malformed", 0)
	// A well-framed payload with trailing garbage after a complete ingest.
	payload := append(wire.EncodeIngest(wire.Ingest{Base: 1, Steps: []wire.Step{{RKey: 1, SKey: 1}}}), 0xEE)
	rc.send(t, wire.TypeIngest, payload)
	rc.expectError(t, wire.CodeBadFrame)
	rc.expectClosed(t)
}

func TestProtocolGoodbyeDetachesCleanly(t *testing.T) {
	srv := protoServer(t, nil)
	rc := rawDial(t, srv.Addr())
	rc.handshake(t, "bye", 0)
	rc.send(t, wire.TypeIngest, wire.EncodeIngest(wire.Ingest{Base: 1, Steps: []wire.Step{{RKey: 2, SKey: 2}}}))
	if typ, _ := rc.read(t); typ != wire.TypeResults {
		t.Fatalf("frame type 0x%02x, want results", typ)
	}
	rc.send(t, wire.TypeGoodbye, nil)
	rc.expectClosed(t)

	// The session's resume state outlives the goodbye until its TTL.
	rc2 := rawDial(t, srv.Addr())
	if w := rc2.handshake(t, "bye", 1); w.AckSeq != 1 {
		t.Fatalf("AckSeq after goodbye = %d, want 1", w.AckSeq)
	}
}
