package streamd_test

import (
	"errors"
	"sync"
	"testing"
	"time"

	"stochstream/internal/shardrt"
	"stochstream/internal/stats"
	"stochstream/internal/streamd"
	"stochstream/internal/streamd/client"
	"stochstream/internal/streamd/wire"
)

// TestOverloadMemShedTyped pins the shape of an overload rejection: with a
// 1-byte memory soft limit every batch sheds, the wire frame carries
// CodeOverloaded plus the retry-after hint, the connection survives to
// retry, no sequence is consumed, and the client library surfaces the typed
// wire.ErrOverloaded once its bounded retries run out.
func TestOverloadMemShedTyped(t *testing.T) {
	srv := protoServer(t, func(c *streamd.Config) {
		c.MemSoftLimit = 1 // any live heap exceeds this: shed everything
		c.RetryAfter = 75 * time.Millisecond
	})

	rc := rawDial(t, srv.Addr())
	rc.handshake(t, "memshed", 0)
	batch := wire.EncodeIngest(wire.Ingest{Base: 1, Steps: []wire.Step{{RKey: 1, SKey: 1}}})
	rc.send(t, wire.TypeIngest, batch)
	f := rc.expectError(t, wire.CodeOverloaded)
	if f.RetryAfter() != 75*time.Millisecond {
		t.Fatalf("RetryAfter = %v, want 75ms", f.RetryAfter())
	}
	// Sheds are recoverable: the same connection may retry the same base.
	rc.send(t, wire.TypeIngest, batch)
	rc.expectError(t, wire.CodeOverloaded)

	// Nothing was consumed by either shed.
	rc2 := rawDial(t, srv.Addr())
	if w := rc2.handshake(t, "memshed-check", 0); w.AckSeq != 0 {
		t.Fatalf("AckSeq = %d, want 0", w.AckSeq)
	}

	// The client library retries, then surfaces the typed sentinel.
	cl, err := client.Dial(client.Options{
		Addr: srv.Addr(), Session: "memshed-client", Seed: 1,
		MaxAttempts: 3, BaseBackoff: 100 * time.Microsecond, MaxBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer func() { _ = cl.Close() }()
	if _, err := cl.Ingest([]wire.Step{{RKey: 2, SKey: 2}}); !errors.Is(err, streamd.ErrOverloaded) {
		t.Fatalf("Ingest under mem pressure = %v, want ErrOverloaded", err)
	}
	if cl.Acked() != 0 {
		t.Fatalf("Acked = %d, want 0", cl.Acked())
	}

	snap := srv.Registry().Snapshot()
	if snap.Counters["streamd_shed_mem_total"] < 3 {
		t.Fatalf("shed_mem_total = %d, want >= 3", snap.Counters["streamd_shed_mem_total"])
	}
	if snap.Counters["streamd_steps_total"] != 0 {
		t.Fatalf("steps ingested under full shed: %d", snap.Counters["streamd_steps_total"])
	}
}

// TestOverloadPressureCorrectness drives sustained load well past the
// admission capacity of a single-slot ingest queue — many sessions, each
// repeatedly offering batches the moment the previous one is acknowledged —
// and asserts the overload contract: the daemon stays up, sheds surface
// only as typed overloads the clients retry through, every accepted batch
// is ingested exactly once, and every returned pair is a correct join
// result (matching keys, R/S sequence parity, correct shard, exact
// conservation of the daemon's pair count).
func TestOverloadPressureCorrectness(t *testing.T) {
	const shards = 4
	srv := protoServer(t, func(c *streamd.Config) {
		c.Runtime = shardrt.Config{Shards: shards, TotalCache: 64, Seed: 42}
		c.QueueDepth = 1
		c.RetryAfter = 200 * time.Microsecond
	})

	const clients, batchesPer, batchLen = 8, 25, 256
	type clientResult struct {
		pairs int
		errs  []error
	}
	results := make([]clientResult, clients)
	run := func(round int) {
		var wg sync.WaitGroup
		for i := 0; i < clients; i++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				cl, err := client.Dial(client.Options{
					Addr:        srv.Addr(),
					Session:     "load-" + string(rune('a'+id)) + "-" + string(rune('0'+round)),
					Seed:        uint64(id),
					MaxAttempts: 500,
					BaseBackoff: 100 * time.Microsecond,
					MaxBackoff:  2 * time.Millisecond,
				})
				if err != nil {
					results[id].errs = append(results[id].errs, err)
					return
				}
				defer func() { _ = cl.Close() }()
				rng := stats.NewRNG(uint64(round*1000 + id))
				for b := 0; b < batchesPer; b++ {
					pairs, err := cl.Ingest(genSteps(rng, batchLen, 16))
					if err != nil {
						results[id].errs = append(results[id].errs, err)
						return
					}
					for _, p := range pairs {
						if p.RKey != p.SKey {
							t.Errorf("client %d: pair joins keys %d and %d", id, p.RKey, p.SKey)
							return
						}
						if p.RSeq%2 != 0 || p.SSeq%2 != 1 {
							t.Errorf("client %d: pair seq parity broken (%d,%d)", id, p.RSeq, p.SSeq)
							return
						}
						// SameStep is shard-local interleaving, deliberately not
						// derivable from global seqs — covered by the
						// single-session differential tests instead.
						if int(p.Shard) != shardrt.ShardOf(int(p.RKey), shards) {
							t.Errorf("client %d: key %d on shard %d, want %d", id, p.RKey, p.Shard, shardrt.ShardOf(int(p.RKey), shards))
							return
						}
					}
					results[id].pairs += len(pairs)
				}
			}(i)
		}
		wg.Wait()
	}

	// The single-slot queue makes collisions overwhelmingly likely in one
	// round; rerun (bounded) if the scheduler somehow serialized everything,
	// so the shed assertion never flakes.
	rounds := 0
	for ; rounds < 5; rounds++ {
		run(rounds)
		if t.Failed() {
			return
		}
		if srv.Registry().Snapshot().Counters["streamd_shed_queue_total"] > 0 {
			rounds++
			break
		}
	}

	totalPairs := 0
	for id := range results {
		for _, err := range results[id].errs {
			t.Errorf("client %d: %v", id, err)
		}
		totalPairs += results[id].pairs
	}
	if t.Failed() {
		return
	}

	snap := srv.Registry().Snapshot()
	shed := snap.Counters["streamd_shed_queue_total"]
	if shed == 0 {
		t.Fatalf("no queue sheds after %d rounds of %dx load", rounds, clients)
	}
	if got, want := snap.Counters["streamd_steps_total"], int64(rounds*clients*batchesPer*batchLen); got != want {
		t.Fatalf("steps_total = %d, want %d (shed retry double-ingested or lost a batch)", got, want)
	}
	if got := snap.Counters["streamd_pairs_total"]; got != int64(totalPairs) {
		t.Fatalf("daemon emitted %d pairs, clients received %d", got, totalPairs)
	}
	if snap.Counters["streamd_internal_errors_total"] != 0 {
		t.Fatalf("internal errors under load: %d", snap.Counters["streamd_internal_errors_total"])
	}
	t.Logf("pressure: %d rounds, %d queue sheds, %d pairs, %d batches",
		rounds, shed, totalPairs, snap.Counters["streamd_batches_total"])
}
