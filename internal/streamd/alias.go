package streamd

import "stochstream/internal/streamd/wire"

// The daemon's error taxonomy and wire-visible batch types live in the
// wire subpackage so the client package shares them without importing the
// server; they are re-exported here because streamd is the daemon's API
// surface and callers match rejections with errors.Is against these names.
var (
	ErrOverloaded  = wire.ErrOverloaded
	ErrDraining    = wire.ErrDraining
	ErrClosed      = wire.ErrClosed
	ErrSessionBusy = wire.ErrSessionBusy
	ErrSeqGap      = wire.ErrSeqGap
	ErrBadFrame    = wire.ErrBadFrame
	ErrBadStep     = wire.ErrBadStep
	ErrFlowControl = wire.ErrFlowControl
)

// OverloadError carries the shed reason and retry-after hint; it unwraps
// to ErrOverloaded.
type OverloadError = wire.OverloadError
