// Package streamd is the network front-end of the sharded runtime: a
// long-running daemon that mounts one shardrt.Runtime behind concurrent
// client sessions speaking a length-prefixed framed protocol, plus an
// HTTP/JSON convenience route and the runtime's observability surfaces.
//
// The daemon multiplexes every session into one global ingest order — the
// runtime assigns global ingress sequence numbers at admission, so results
// are idempotent to replay and a reconnecting client dedups by sequence.
// Robustness is layered: credit-based per-session flow control bounds what
// a client may have outstanding, the admission controller sheds with typed
// ErrOverloaded (plus a retry-after hint) once the ingest queue or the
// memory watermark is crossed, per-connection read/write deadlines plus a
// session reaper bound abandoned state, and SIGTERM triggers a graceful
// drain: stop admissions, flush in-flight batches through the engine,
// write a sharded checkpoint, exit. A restarted daemon restores the
// checkpoint and continues byte-identically with an uninterrupted run —
// provided clients replay the same batch boundaries, which the synchronous
// client package guarantees (see docs/service.md).
package streamd

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"stochstream/internal/checkpoint"
	"stochstream/internal/engine"
	"stochstream/internal/httpd"
	"stochstream/internal/process"
	"stochstream/internal/shardrt"
	"stochstream/internal/streamd/wire"
	"stochstream/internal/telemetry"
)

// Config configures the daemon.
type Config struct {
	// Runtime configures the mounted sharded runtime.
	Runtime shardrt.Config
	// Listen is the TCP address of the framed protocol (use "127.0.0.1:0"
	// for an ephemeral port in tests).
	Listen string
	// HTTPListen, when non-empty, serves the HTTP surface (/ingest,
	// /healthz, /readyz, /metrics, /spans, ...) on this address.
	HTTPListen string
	// Credits is the per-session flow-control window in steps (default
	// 4096). Result frames carry the absolute remainder.
	Credits int
	// QueueDepth bounds the engine ingest queue in batches (default 64);
	// a full queue sheds with ErrOverloaded.
	QueueDepth int
	// ConnOutDepth bounds each connection's outgoing frame buffer (default
	// 64); a full buffer marks the consumer slow and kills the connection.
	ConnOutDepth int
	// MemSoftLimit, in bytes, sheds new batches while heap usage is above
	// it (0 disables memory shedding).
	MemSoftLimit uint64
	// RetryAfter is the backoff hint attached to overload rejections
	// (default 50ms).
	RetryAfter time.Duration
	// ReadTimeout is the per-frame read deadline and therefore also the
	// idle-connection bound (default 2m). WriteTimeout is the per-frame
	// write deadline (default 30s).
	ReadTimeout  time.Duration
	WriteTimeout time.Duration
	// SessionTTL is how long a detached session's resume state is retained
	// (default 15m); ReapEvery is the reaper cadence (default 15s).
	SessionTTL time.Duration
	ReapEvery  time.Duration
	// CheckpointPath, when non-empty, is restored at startup if present
	// and written atomically during graceful drain.
	CheckpointPath string
	// Clock overrides the wall clock (nanos) for deadlines, reaping and
	// latency metrics; nil uses the real clock. Deterministic tests pin it.
	Clock func() int64
}

func (cfg *Config) applyDefaults() {
	if cfg.Credits == 0 {
		cfg.Credits = 4096
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 64
	}
	if cfg.ConnOutDepth == 0 {
		cfg.ConnOutDepth = 64
	}
	if cfg.RetryAfter == 0 {
		cfg.RetryAfter = 50 * time.Millisecond
	}
	if cfg.ReadTimeout == 0 {
		cfg.ReadTimeout = 2 * time.Minute
	}
	if cfg.WriteTimeout == 0 {
		cfg.WriteTimeout = 30 * time.Second
	}
	if cfg.SessionTTL == 0 {
		cfg.SessionTTL = 15 * time.Minute
	}
	if cfg.ReapEvery == 0 {
		cfg.ReapEvery = 15 * time.Second
	}
}

// request kinds for the engine loop.
const (
	kindIngest = iota + 1
	kindFlush
	kindHTTP
)

// engineReply answers a kindHTTP request.
type engineReply struct {
	pairs []shardrt.Pair
	err   error
}

// ingestReq is one unit of engine-loop work. The engine loop is the only
// goroutine that touches the runtime; everything else funnels through the
// bounded ingest queue, which is also the admission controller's gauge.
type ingestReq struct {
	kind  int
	sess  *session // kindIngest/kindFlush delivery target
	base  uint64   // kindIngest batch base
	steps []shardrt.Step
	reply chan engineReply // kindHTTP only, buffered cap 1
}

// Server is the daemon. Start builds and runs it; Drain (or Close) stops
// it. All exported methods are safe for concurrent use.
type Server struct {
	cfg Config
	rt  *shardrt.Runtime
	ln  net.Listener
	hs  *httpd.Server
	reg *telemetry.Registry

	mu       sync.Mutex
	sessions map[string]*session
	conns    map[*conn]struct{}

	// submitMu is the drain barrier: submitters hold it shared around the
	// draining check plus queue send, Drain takes it exclusively between
	// setting draining and closing the queue, so no send can race the
	// close.
	submitMu sync.RWMutex
	draining atomic.Bool
	ingest   chan *ingestReq

	engineDone chan struct{}
	acceptDone chan struct{}
	reaperStop chan struct{}
	reaperDone chan struct{}
	connWG     sync.WaitGroup
	drainOnce  sync.Once
	drainErr   error

	heapBytes atomic.Uint64

	stepsTotal   *telemetry.Counter
	pairsTotal   *telemetry.Counter
	batchesTotal *telemetry.Counter
	flushesTotal *telemetry.Counter
	httpTotal    *telemetry.Counter
	dupBatches   *telemetry.Counter
	shedQueue    *telemetry.Counter
	shedMem      *telemetry.Counter
	shedSlow     *telemetry.Counter
	drainRejects *telemetry.Counter
	acceptErrs   *telemetry.Counter
	internalErrs *telemetry.Counter
	batchLatency *telemetry.Histogram
}

// nowNanos is the daemon's only wall-clock access; Config.Clock overrides
// it for deterministic tests. The value feeds connection deadlines, the
// session reaper and latency metrics — never a replacement decision.
func (s *Server) nowNanos() int64 {
	if s.cfg.Clock != nil {
		return s.cfg.Clock()
	}
	//lint:ignore dettaint connection deadlines, idle reaping and latency metrics only; the value never feeds a replacement decision
	return time.Now().UnixNano()
}

// Start builds the runtime (restoring a checkpoint when configured and
// present), binds the listeners and launches the daemon's goroutines.
func Start(cfg Config) (*Server, error) {
	cfg.applyDefaults()
	rt, err := shardrt.New(cfg.Runtime)
	if err != nil {
		return nil, fmt.Errorf("streamd: runtime: %w", err)
	}
	s := &Server{
		cfg:        cfg,
		rt:         rt,
		reg:        telemetry.NewRegistry(),
		sessions:   map[string]*session{},
		conns:      map[*conn]struct{}{},
		ingest:     make(chan *ingestReq, cfg.QueueDepth),
		engineDone: make(chan struct{}),
		acceptDone: make(chan struct{}),
		reaperStop: make(chan struct{}),
		reaperDone: make(chan struct{}),
	}
	if err := s.restore(); err != nil {
		rt.Shutdown()
		return nil, err
	}
	s.initMetrics()
	s.refreshMem()
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		rt.Shutdown()
		return nil, fmt.Errorf("streamd: listen %s: %w", cfg.Listen, err)
	}
	s.ln = ln
	if cfg.HTTPListen != "" {
		hs, err := httpd.Start(cfg.HTTPListen, s.httpHandler())
		if err != nil {
			_ = ln.Close()
			rt.Shutdown()
			return nil, fmt.Errorf("streamd: http listen %s: %w", cfg.HTTPListen, err)
		}
		s.hs = hs
	}
	go s.engineLoop()
	go s.acceptLoop()
	go s.reapLoop()
	return s, nil
}

func (s *Server) initMetrics() {
	s.reg.SetClock(s.nowNanos)
	s.stepsTotal = s.reg.Counter("streamd_steps_total")
	s.pairsTotal = s.reg.Counter("streamd_pairs_total")
	s.batchesTotal = s.reg.Counter("streamd_batches_total")
	s.flushesTotal = s.reg.Counter("streamd_flushes_total")
	s.httpTotal = s.reg.Counter("streamd_http_ingest_total")
	s.dupBatches = s.reg.Counter("streamd_dup_batches_total")
	s.shedQueue = s.reg.Counter("streamd_shed_queue_total")
	s.shedMem = s.reg.Counter("streamd_shed_mem_total")
	s.shedSlow = s.reg.Counter("streamd_shed_slow_total")
	s.drainRejects = s.reg.Counter("streamd_drain_rejects_total")
	s.acceptErrs = s.reg.Counter("streamd_accept_errors_total")
	s.internalErrs = s.reg.Counter("streamd_internal_errors_total")
	s.batchLatency = s.reg.Histogram("streamd_batch_latency_ns")
	s.reg.GaugeFunc("streamd_queue_depth", func() float64 { return float64(len(s.ingest)) })
	s.reg.GaugeFunc("streamd_heap_bytes", func() float64 { return float64(s.heapBytes.Load()) })
	s.reg.GaugeFunc("streamd_sessions", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(len(s.sessions))
	})
	s.reg.GaugeFunc("streamd_conns", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(len(s.conns))
	})
}

// Addr is the bound address of the framed-protocol listener.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// HTTPAddr is the bound address of the HTTP surface ("" when disabled).
func (s *Server) HTTPAddr() string {
	if s.hs == nil {
		return ""
	}
	return s.hs.Addr()
}

// Registry exposes the daemon's own telemetry registry (the runtime's
// shard registries aggregate separately under the HTTP surface).
func (s *Server) Registry() *telemetry.Registry { return s.reg }

// Draining reports whether a drain has begun (readiness).
func (s *Server) Draining() bool { return s.draining.Load() }

// --- admission ------------------------------------------------------------

// submit is the admission controller: it rejects while draining, sheds on
// the memory watermark, and sheds when the bounded ingest queue is full.
// A shed batch consumed nothing — no sequence number, no credits — so the
// client's retry is exact.
func (s *Server) submit(req *ingestReq) error {
	s.submitMu.RLock()
	defer s.submitMu.RUnlock()
	if s.draining.Load() {
		s.drainRejects.Inc()
		return ErrDraining
	}
	if lim := s.cfg.MemSoftLimit; lim > 0 && s.heapBytes.Load() > lim {
		s.shedMem.Inc()
		return &OverloadError{Reason: "memory", RetryAfter: s.cfg.RetryAfter}
	}
	select {
	case s.ingest <- req:
		return nil
	default:
		s.shedQueue.Inc()
		return &OverloadError{Reason: "queue", RetryAfter: s.cfg.RetryAfter}
	}
}

// --- engine loop ----------------------------------------------------------

// engineLoop is the single consumer of the ingest queue and the only
// goroutine that drives the runtime. It exits when Drain closes the queue,
// leaving the runtime quiescent for the checkpoint.
func (s *Server) engineLoop() {
	defer close(s.engineDone)
	for req := range s.ingest {
		switch req.kind {
		case kindIngest:
			s.engineIngest(req)
		case kindFlush:
			s.engineFlush(req)
		case kindHTTP:
			pairs, err := s.rt.IngestBatch(req.steps)
			if err == nil {
				// The conservation counters cover every ingest route: the
				// stress and chaos gates assert steps_total equals exactly
				// what clients sent, HTTP included.
				s.stepsTotal.Add(int64(len(req.steps)))
				s.pairsTotal.Add(int64(len(pairs)))
			}
			req.reply <- engineReply{pairs: pairs, err: err}
		}
	}
}

func (s *Server) engineIngest(req *ingestReq) {
	t0 := s.nowNanos()
	pairs, err := s.rt.IngestBatch(req.steps)
	if err != nil {
		// Steps were validated at the reader, so this is an internal
		// failure; the runtime rejected before touching state, so roll the
		// reservation back and let the client retry the same base.
		s.internalErrs.Inc()
		req.sess.failSubmitted(req.base)
		s.deliver(req.sess, wire.Frame(wire.TypeError, wire.EncodeError(wire.ErrorFrame{
			Code: wire.CodeInternal, Msg: err.Error(),
		})), false)
		return
	}
	s.stepsTotal.Add(int64(len(req.steps)))
	s.pairsTotal.Add(int64(len(pairs)))
	s.batchesTotal.Inc()
	credits := req.sess.ack(req.base, len(req.steps), s.cfg.Credits, s.nowNanos())
	// A join-heavy batch's reply can exceed the frame payload cap; the
	// chunked encoding keeps every frame legal and replays as a unit.
	frame := wire.EncodeResultsFrames(wire.Results{
		AckSeq:  req.base,
		Credits: uint32(credits),
		Pairs:   pairsToWire(pairs),
	})
	req.sess.setReplay(req.base, frame)
	s.deliver(req.sess, frame, true)
	s.batchLatency.Observe(float64(s.nowNanos() - t0))
}

func (s *Server) engineFlush(req *ingestReq) {
	pairs, err := s.rt.Flush()
	if err != nil {
		s.internalErrs.Inc()
		s.deliver(req.sess, wire.Frame(wire.TypeError, wire.EncodeError(wire.ErrorFrame{
			Code: wire.CodeInternal, Msg: err.Error(),
		})), false)
		return
	}
	s.flushesTotal.Inc()
	s.pairsTotal.Add(int64(len(pairs)))
	ack, credits := req.sess.state()
	// Flush results are not buffered for replay: a flush drains carried
	// lane tails, so re-running one after reconnect yields nothing — the
	// client treats a lost flush response as an empty flush.
	s.deliver(req.sess, wire.EncodeResultsFrames(wire.Results{
		AckSeq:  ack,
		Credits: uint32(credits),
		Flush:   true,
		Pairs:   pairsToWire(pairs),
	}), true)
}

// deliver sends a frame to the session's current attachment (which may be
// a different connection than the one that submitted the batch). A full
// writer buffer marks the consumer slow and kills the connection; the
// replay buffer already holds the frame, so a synchronous client recovers
// it on reattach.
func (s *Server) deliver(ss *session, frame []byte, killSlow bool) {
	target := ss.attachedConn()
	if target == nil {
		return
	}
	if !target.trySend(frame) && killSlow {
		s.shedSlow.Inc()
		target.kill()
	}
}

// --- session helpers (locking lives here, one method per transition) ------

func (ss *session) attachedConn() *conn {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.attached
}

// ack records batch base as processed and regrants its credits, capped at
// the full window. Returns the absolute remaining credits for the frame.
func (ss *session) ack(base uint64, nsteps, window int, now int64) int {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	ss.acked = base
	ss.lastSeen = now
	ss.credits += nsteps
	if ss.credits > window {
		ss.credits = window
	}
	return ss.credits
}

func (ss *session) setReplay(base uint64, frame []byte) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	ss.lastBase, ss.lastFrame = base, frame
}

// failSubmitted rolls a reservation back after the runtime rejected the
// batch without ingesting it.
func (ss *session) failSubmitted(base uint64) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.submitted == base {
		ss.submitted = base - 1
	}
}

func (ss *session) state() (acked uint64, credits int) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.acked, ss.credits
}

// ingestOutcome is the reader-side result of offering a batch.
type ingestOutcome int

const (
	outcomeAdmitted ingestOutcome = iota + 1
	outcomeReplay                 // duplicate of the acked batch: resend frame
	outcomeDropDup                // duplicate already in flight: no response
	outcomeRejected               // err holds ErrSeqGap/ErrFlowControl/shed
)

// offer classifies the batch and, when admissible, reserves the sequence
// number and credits atomically with the queue submit (the callback runs
// under the session lock; it must not block — the admission send is
// non-blocking by construction).
func (ss *session) offer(base uint64, nsteps int, now int64, submit func() error) (ingestOutcome, []byte, error) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	ss.lastSeen = now
	switch ss.classify(base) {
	case batchReplay:
		return outcomeReplay, ss.lastFrame, nil
	case batchInFlight:
		return outcomeDropDup, nil, nil
	case batchGap:
		return outcomeRejected, nil, fmt.Errorf("%w: batch base %d against submitted %d, acked %d",
			ErrSeqGap, base, ss.submitted, ss.acked)
	}
	if nsteps > ss.credits {
		return outcomeRejected, nil, fmt.Errorf("%w: batch of %d steps exceeds remaining window %d",
			ErrFlowControl, nsteps, ss.credits)
	}
	if err := submit(); err != nil {
		return outcomeRejected, nil, err
	}
	ss.submitted = base
	ss.credits -= nsteps
	return outcomeAdmitted, nil, nil
}

// --- accept / serve -------------------------------------------------------

// acceptLoop admits connections until the listener closes (drain) or
// fails for good. Temporary failures (EMFILE-class fd exhaustion bursts)
// are retried forever with exponential backoff, the same treatment
// net/http's Serve gives them — only a non-temporary listener error stops
// ingress, surfaced via the accept-error counter and a dead readyz.
func (s *Server) acceptLoop() {
	defer close(s.acceptDone)
	var delay time.Duration
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			if s.draining.Load() {
				return
			}
			s.acceptErrs.Inc()
			var ne net.Error
			if errors.As(err, &ne) && ne.Temporary() { //nolint:staticcheck // net/http's Serve does the same: Temporary is the only signal for retryable accept errors
				if delay == 0 {
					delay = 5 * time.Millisecond
				} else {
					delay *= 2
				}
				if delay > time.Second {
					delay = time.Second
				}
				time.Sleep(delay)
				continue
			}
			return
		}
		delay = 0
		s.connWG.Add(2)
		go s.serveConn(nc)
	}
}

func (s *Server) addConn(c *conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.conns[c] = struct{}{}
}

func (s *Server) removeConn(c *conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.conns, c)
}

// serveConn is the per-connection reader: handshake, then a frame loop.
// The paired writer goroutine owns the socket close; kill (reader defers
// it) signals the writer to flush queued frames and tear down.
func (s *Server) serveConn(nc net.Conn) {
	defer s.connWG.Done()
	c := newConn(nc, s.cfg.ConnOutDepth)
	s.addConn(c)
	defer s.removeConn(c)
	go s.writeLoop(c)
	defer c.kill()

	rd := &deadlineReader{s: s, nc: nc}
	typ, payload, err := wire.ReadFrame(rd)
	if err != nil || typ != wire.TypeHello {
		s.refuse(c, fmt.Errorf("%w: expected hello", ErrBadFrame))
		return
	}
	hello, err := wire.DecodeHello(payload)
	if err != nil {
		s.refuse(c, err)
		return
	}
	if hello.Version != wire.Version {
		s.refuse(c, fmt.Errorf("%w: protocol version %d, want %d", ErrBadFrame, hello.Version, wire.Version))
		return
	}
	sess, err := s.attach(hello, c)
	if err != nil {
		s.refuse(c, err)
		return
	}
	defer s.detach(sess, c)

	for {
		typ, payload, err := wire.ReadFrame(rd)
		if err != nil {
			return // disconnect, idle timeout, or an unframeable stream
		}
		switch typ {
		case wire.TypeIngest:
			f, err := wire.DecodeIngest(payload)
			if err != nil {
				s.refuse(c, err)
				return
			}
			if fatal := s.handleIngestFrame(sess, c, f); fatal {
				return
			}
		case wire.TypeFlush:
			if err := s.submit(&ingestReq{kind: kindFlush, sess: sess}); err != nil {
				s.sendErr(c, err) // shed or draining: recoverable, keep the connection
			}
		case wire.TypeGoodbye:
			return
		default:
			s.refuse(c, fmt.Errorf("%w: unexpected frame type 0x%02x", ErrBadFrame, typ))
			return
		}
	}
}

// handleIngestFrame validates, dedups and admits one ingest batch.
// Returns true when the connection must close (protocol violation).
func (s *Server) handleIngestFrame(sess *session, c *conn, f wire.Ingest) bool {
	steps, err := stepsFromWire(f.Steps)
	if err != nil {
		// Out-of-domain keys consume nothing; the client may fix and
		// continue on the same connection.
		s.sendErr(c, err)
		return false
	}
	req := &ingestReq{kind: kindIngest, sess: sess, base: f.Base, steps: steps}
	outcome, replay, err := sess.offer(f.Base, len(steps), s.nowNanos(), func() error {
		return s.submit(req)
	})
	switch outcome {
	case outcomeReplay:
		s.dupBatches.Inc()
		if !c.trySend(replay) {
			s.shedSlow.Inc()
			c.kill()
			return true
		}
		return false
	case outcomeDropDup:
		s.dupBatches.Inc()
		return false
	case outcomeRejected:
		s.sendErr(c, err)
		// Shed and drain rejections are retryable on the same connection;
		// sequence and flow-control violations are fatal.
		return errors.Is(err, ErrSeqGap) || errors.Is(err, ErrFlowControl)
	default:
		return false
	}
}

// refuse sends a typed error frame and lets the caller close the
// connection (fatal path).
func (s *Server) refuse(c *conn, err error) { s.sendErr(c, err) }

// sendErr encodes err as an error frame with its wire code and, for
// overloads, the retry-after hint.
func (s *Server) sendErr(c *conn, err error) {
	f := wire.ErrorFrame{Code: wire.ErrToCode(err), Msg: err.Error()}
	var ov *OverloadError
	if errors.As(err, &ov) {
		f.RetryAfterMillis = uint32(ov.RetryAfter / time.Millisecond)
	}
	c.trySend(wire.Frame(wire.TypeError, wire.EncodeError(f)))
}

// writeLoop drains the connection's frame buffer; on kill it flushes what
// is already queued, then closes the socket — which is what finally
// unblocks the reader. The writer always closes the socket, exactly once.
func (s *Server) writeLoop(c *conn) {
	defer s.connWG.Done()
	defer func() { _ = c.nc.Close() }()
	for {
		select {
		case f := <-c.out:
			if !s.writeOne(c, f) {
				return
			}
		case <-c.stop:
			for {
				select {
				case f := <-c.out:
					if !s.writeOne(c, f) {
						return
					}
				default:
					return
				}
			}
		}
	}
}

func (s *Server) writeOne(c *conn, f []byte) bool {
	_ = c.nc.SetWriteDeadline(time.Unix(0, s.nowNanos()).Add(s.cfg.WriteTimeout))
	if _, err := c.nc.Write(f); err != nil {
		c.kill()
		return false
	}
	return true
}

// deadlineReader arms the per-frame read deadline before every read, so a
// connection idle past ReadTimeout fails out of wire.ReadFrame and is reaped.
type deadlineReader struct {
	s  *Server
	nc net.Conn
}

func (r *deadlineReader) Read(p []byte) (int, error) {
	_ = r.nc.SetReadDeadline(time.Unix(0, r.s.nowNanos()).Add(r.s.cfg.ReadTimeout))
	return r.nc.Read(p)
}

// --- attach / detach ------------------------------------------------------

// attach claims the named session for connection c and reconciles the
// client's resume point against the server's acknowledged sequence. A
// client exactly one results frame behind gets that frame replayed; a
// larger divergence is unrecoverable and refused with ErrSeqGap.
//
// The Welcome (and any replay) frame is enqueued here, while ss.mu is still
// held: deliver() reads ss.attached under the same lock, so a resumed
// in-flight batch's results frame cannot enter the writer queue before the
// handshake frame — the client is guaranteed to see Welcome first.
func (s *Server) attach(h wire.Hello, c *conn) (*session, error) {
	if s.draining.Load() {
		return nil, ErrDraining
	}
	s.mu.Lock()
	ss := s.sessions[h.Session]
	if ss == nil {
		ss = &session{name: h.Session}
		s.sessions[h.Session] = ss
	}
	s.mu.Unlock()

	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.attached != nil {
		return nil, fmt.Errorf("%w: %q", ErrSessionBusy, h.Session)
	}
	var replay []byte
	switch {
	case h.LastSeq == ss.acked:
		// In sync (or resuming with an in-flight batch the engine will
		// deliver to this new attachment).
	case h.LastSeq+1 == ss.acked && ss.lastFrame != nil:
		replay = ss.lastFrame
	default:
		return nil, fmt.Errorf("%w: client resumes at %d, server acked %d (replay buffer holds only the last batch)",
			ErrSeqGap, h.LastSeq, ss.acked)
	}
	ss.attached = c
	ss.credits = s.cfg.Credits
	ss.lastSeen = s.nowNanos()
	c.trySend(wire.Frame(wire.TypeWelcome, wire.EncodeWelcome(wire.Welcome{
		Credits: uint32(ss.credits), AckSeq: ss.acked,
	})))
	if replay != nil {
		c.trySend(replay)
	}
	return ss, nil
}

func (s *Server) detach(ss *session, c *conn) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.attached == c {
		ss.attached = nil
		ss.lastSeen = s.nowNanos()
	}
}

// --- reaper ---------------------------------------------------------------

// reapLoop periodically refreshes the heap watermark the admission
// controller reads and drops detached sessions idle past SessionTTL.
func (s *Server) reapLoop() {
	defer close(s.reaperDone)
	t := time.NewTicker(s.cfg.ReapEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.refreshMem()
			s.reapSessions()
		case <-s.reaperStop:
			return
		}
	}
}

func (s *Server) refreshMem() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.heapBytes.Store(ms.HeapAlloc)
}

// reapSessions deletes detached sessions whose lastSeen is older than
// SessionTTL. A client reattaching afterwards with a non-zero resume point
// is refused with ErrSeqGap — size SessionTTL beyond the client's retry
// horizon.
func (s *Server) reapSessions() {
	cutoff := s.nowNanos() - s.cfg.SessionTTL.Nanoseconds()
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.sessions))
	for name := range s.sessions {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ss := s.sessions[name]
		ss.mu.Lock()
		expired := ss.attached == nil && ss.lastSeen < cutoff
		ss.mu.Unlock()
		if expired {
			delete(s.sessions, name)
		}
	}
}

// --- drain ----------------------------------------------------------------

// Drain gracefully stops the daemon: admissions stop, the engine flushes
// every in-flight batch, a sharded checkpoint is written (when configured),
// clients get a Draining notice, and all goroutines are joined. A daemon
// restarted from the checkpoint continues byte-identically. ctx bounds the
// wait for the engine to flush.
func (s *Server) Drain(ctx context.Context) error {
	return s.drain(ctx, true)
}

// Close stops the daemon without writing a checkpoint (tests, benchmarks,
// and operators abandoning state deliberately).
func (s *Server) Close() error {
	return s.drain(context.Background(), false)
}

func (s *Server) drain(ctx context.Context, writeCkpt bool) error {
	s.drainOnce.Do(func() { s.drainErr = s.drainLocked(ctx, writeCkpt) })
	return s.drainErr
}

func (s *Server) drainLocked(ctx context.Context, writeCkpt bool) error {
	s.draining.Store(true)
	_ = s.ln.Close()
	<-s.acceptDone

	// Barrier: every in-flight submit finishes (shared lock released)
	// before the queue closes, so no send can hit a closed channel.
	s.submitMu.Lock()
	close(s.ingest)
	s.submitMu.Unlock()

	var firstErr error
	select {
	case <-s.engineDone:
	case <-ctx.Done():
		firstErr = fmt.Errorf("streamd: drain: engine flush: %w", ctx.Err())
		// The engine loop still owns the runtime: even on timeout, wait for
		// it to finish the already-admitted batches before rt.Shutdown below
		// may touch the runtime concurrently. The queue is closed, so this
		// wait is bounded by queued work; the expired context still skips
		// the checkpoint.
		<-s.engineDone
	}

	if writeCkpt && firstErr == nil && s.cfg.CheckpointPath != "" {
		if err := s.writeCheckpoint(); err != nil && firstErr == nil {
			firstErr = err
		}
	}

	s.killConns(wire.Frame(wire.TypeError, wire.EncodeError(wire.ErrorFrame{
		Code: wire.CodeDraining, Msg: ErrDraining.Error(),
	})))
	s.connWG.Wait()
	close(s.reaperStop)
	<-s.reaperDone
	s.rt.Shutdown()
	if s.hs != nil {
		if err := s.hs.Shutdown(ctx); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("streamd: drain: http shutdown: %w", err)
		}
	}
	return firstErr
}

// killConns notifies and tears down every live connection; the writers
// flush the notice before closing the sockets.
func (s *Server) killConns(notice []byte) {
	s.mu.Lock()
	list := make([]*conn, 0, len(s.conns))
	//lint:ignore maprange connection teardown is order-insensitive: every connection gets the same notice and kill
	for c := range s.conns {
		list = append(list, c)
	}
	s.mu.Unlock()
	for _, c := range list {
		c.trySend(notice)
		c.kill()
	}
}

// --- wire <-> engine conversion -------------------------------------------

// checkWireKey enforces the engine's key domain at admission, before any
// sequence number or credit is consumed.
func checkWireKey(k int64) error {
	if k == int64(process.NoValue) {
		return nil
	}
	if k < int64(engine.MinKey) || k > int64(engine.MaxKey) {
		return fmt.Errorf("key %d outside [%d, %d]", k, engine.MinKey, engine.MaxKey)
	}
	return nil
}

func stepsFromWire(in []wire.Step) ([]shardrt.Step, error) {
	steps := make([]shardrt.Step, len(in))
	for i, ws := range in {
		if err := checkWireKey(ws.RKey); err != nil {
			return nil, fmt.Errorf("%w: step %d stream R: %v", ErrBadStep, i, err)
		}
		if err := checkWireKey(ws.SKey); err != nil {
			return nil, fmt.Errorf("%w: step %d stream S: %v", ErrBadStep, i, err)
		}
		// The payload cap holds on every ingest route (the HTTP body limit
		// alone allows blobs big enough that one echoed pair could overflow
		// a results frame).
		if n := len(ws.RPayload); n > wire.MaxPayloadBytes {
			return nil, fmt.Errorf("%w: step %d stream R payload %d bytes exceeds cap %d", ErrBadStep, i, n, wire.MaxPayloadBytes)
		}
		if n := len(ws.SPayload); n > wire.MaxPayloadBytes {
			return nil, fmt.Errorf("%w: step %d stream S payload %d bytes exceeds cap %d", ErrBadStep, i, n, wire.MaxPayloadBytes)
		}
		steps[i] = shardrt.Step{
			R: engine.Tuple{Key: int(ws.RKey), Payload: payloadFromWire(ws.RPayload)},
			S: engine.Tuple{Key: int(ws.SKey), Payload: payloadFromWire(ws.SPayload)},
		}
	}
	return steps, nil
}

func payloadFromWire(b []byte) interface{} {
	if b == nil {
		return nil
	}
	return b
}

func payloadToWire(v interface{}) []byte {
	if b, ok := v.([]byte); ok {
		return b
	}
	return nil
}

func pairsToWire(pairs []shardrt.Pair) []wire.Pair {
	out := make([]wire.Pair, len(pairs))
	for i, p := range pairs {
		out[i] = wire.Pair{
			RSeq: p.RSeq, SSeq: p.SSeq,
			RKey: int64(p.R.Key), SKey: int64(p.S.Key),
			Shard: uint16(p.Shard), SameStep: p.SameStep,
			RPayload: payloadToWire(p.R.Payload),
			SPayload: payloadToWire(p.S.Payload),
		}
	}
	return out
}

// --- checkpoint -----------------------------------------------------------

// checkpointWire is the daemon's checkpoint envelope: the runtime's own
// sharded checkpoint plus per-session resume state, so a restarted daemon
// both continues the stream byte-identically and honors client resumes.
type checkpointWire struct {
	Version  int
	Sessions []sessionWire
	Runtime  []byte
}

type sessionWire struct {
	Name      string
	Acked     uint64
	LastBase  uint64
	LastFrame []byte
}

const checkpointVersion = 1

// writeCheckpoint persists atomically (temp file + rename). The engine
// loop has exited and admissions are closed, so session state is stable.
func (s *Server) writeCheckpoint() error {
	var rtBuf bytes.Buffer
	if err := s.rt.Checkpoint(&rtBuf); err != nil {
		return fmt.Errorf("streamd: checkpoint: runtime: %w", err)
	}
	wire := checkpointWire{Version: checkpointVersion, Runtime: rtBuf.Bytes()}
	s.mu.Lock()
	names := make([]string, 0, len(s.sessions))
	for name := range s.sessions {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ss := s.sessions[name]
		ss.mu.Lock()
		wire.Sessions = append(wire.Sessions, sessionWire{
			Name: ss.name, Acked: ss.acked, LastBase: ss.lastBase, LastFrame: ss.lastFrame,
		})
		ss.mu.Unlock()
	}
	s.mu.Unlock()

	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(&wire); err != nil {
		return fmt.Errorf("streamd: checkpoint: encode: %w", err)
	}
	tmp := s.cfg.CheckpointPath + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("streamd: checkpoint: %w", err)
	}
	if err := checkpoint.Write(f, payload.Bytes()); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return fmt.Errorf("streamd: checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("streamd: checkpoint: %w", err)
	}
	if err := os.Rename(tmp, s.cfg.CheckpointPath); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("streamd: checkpoint: %w", err)
	}
	return nil
}

// restore loads CheckpointPath when present: runtime state first (config
// fingerprint checked by shardrt), then session resume state.
func (s *Server) restore() error {
	if s.cfg.CheckpointPath == "" {
		return nil
	}
	f, err := os.Open(s.cfg.CheckpointPath)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil
		}
		return fmt.Errorf("streamd: restore: %w", err)
	}
	defer func() { _ = f.Close() }()
	payload, err := checkpoint.Read(f)
	if err != nil {
		return fmt.Errorf("streamd: restore: %w", err)
	}
	var wire checkpointWire
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&wire); err != nil {
		return fmt.Errorf("streamd: restore: decode: %w", err)
	}
	if wire.Version != checkpointVersion {
		return fmt.Errorf("streamd: restore: checkpoint version %d, want %d", wire.Version, checkpointVersion)
	}
	if err := s.rt.Restore(bytes.NewReader(wire.Runtime)); err != nil {
		return fmt.Errorf("streamd: restore: runtime: %w", err)
	}
	for _, sw := range wire.Sessions {
		s.sessions[sw.Name] = &session{
			name:      sw.Name,
			submitted: sw.Acked,
			acked:     sw.Acked,
			lastBase:  sw.LastBase,
			lastFrame: sw.LastFrame,
		}
	}
	return nil
}
