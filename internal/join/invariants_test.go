package join

import (
	"testing"
	"testing/quick"

	"stochstream/internal/core"
	"stochstream/internal/stats"
)

// auditPolicy wraps a random-but-valid policy and asserts simulator
// invariants from the inside: candidate ordering (cache before arrivals),
// stable tuple identity, and arrival freshness.
type auditPolicy struct {
	t       *testing.T
	rng     *stats.RNG
	lastIDs map[int]bool
	cache   int
	primed  bool // identity checks start after the cache first fills
}

func (a *auditPolicy) Name() string { return "audit" }

func (a *auditPolicy) Reset(cfg Config, rng *stats.RNG) {
	a.rng = rng
	a.lastIDs = map[int]bool{}
	a.cache = cfg.CacheSize
	a.primed = false
}

func (a *auditPolicy) Evict(st *State, cands []Tuple, n int) []int {
	t := a.t
	if len(cands) > a.cache+2 {
		t.Fatalf("candidates %d exceed cache+2", len(cands))
	}
	// The two arrivals are the last two candidates and carry the current time.
	for i, c := range cands[len(cands)-2:] {
		if c.Arrived != st.Time {
			t.Fatalf("arrival %d has Arrived=%d at time %d", i, c.Arrived, st.Time)
		}
	}
	// Cached tuples must be ones we chose to keep before (stable identity);
	// the fill phase before the first eviction admits tuples implicitly.
	for _, c := range cands[:len(cands)-2] {
		if a.primed && !a.lastIDs[c.ID] {
			t.Fatalf("cache contains tuple %d we never kept", c.ID)
		}
		if c.Arrived >= st.Time {
			t.Fatalf("cached tuple %d claims future arrival", c.ID)
		}
	}
	a.primed = true
	// Histories cover exactly [0, st.Time].
	if st.Hists[0].T0() != st.Time || st.Hists[1].T0() != st.Time {
		t.Fatalf("history T0 %d/%d at time %d", st.Hists[0].T0(), st.Hists[1].T0(), st.Time)
	}
	// Evict a random valid subset and remember the survivors.
	perm := a.rng.Perm(len(cands))
	evict := perm[:n]
	drop := map[int]bool{}
	for _, i := range evict {
		drop[i] = true
	}
	a.lastIDs = map[int]bool{}
	for i, c := range cands {
		if !drop[i] {
			a.lastIDs[c.ID] = true
		}
	}
	return evict
}

func TestSimulatorInvariantsUnderRandomPolicy(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		n := 20 + rng.IntN(80)
		k := 1 + rng.IntN(5)
		vals := 1 + rng.IntN(6)
		r := make([]int, n)
		s := make([]int, n)
		for i := range r {
			r[i] = rng.IntN(vals)
			s[i] = rng.IntN(vals)
		}
		ap := &auditPolicy{t: t}
		res := Run(r, s, ap, Config{CacheSize: k, Warmup: 0, Window: rng.IntN(3) * 5}, stats.NewRNG(seed+1))
		return res.TotalJoins >= res.Joins && res.Joins >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// No online policy can exceed the offline optimum — across random policies,
// workloads, cache sizes and windows.
func TestQuickNoPolicyBeatsOPT(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		n := 20 + rng.IntN(60)
		k := 1 + rng.IntN(4)
		vals := 1 + rng.IntN(5)
		window := 0
		if rng.IntN(2) == 1 {
			window = 2 + rng.IntN(8)
		}
		r := make([]int, n)
		s := make([]int, n)
		for i := range r {
			r[i] = rng.IntN(vals)
			s[i] = rng.IntN(vals)
		}
		ap := &auditPolicy{t: t}
		res := Run(r, s, ap, Config{CacheSize: k, Warmup: 0, Window: window}, stats.NewRNG(seed+1))
		opt := core.OptOfflineJoin(r, s, k, window)
		return res.TotalJoins <= opt.Total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
