// Package join simulates the paper's joining problem: a sliding equijoin of
// two discrete-time streams through a fixed-size tuple cache, with a
// pluggable replacement policy and MAX-subset accounting. At every time step
// one tuple arrives from each stream, joins against the cached tuples of the
// other stream, and then the policy chooses which tuples to discard so that
// the cache stays within its budget.
package join

import (
	"fmt"
	"sync/atomic"
	"time"

	"stochstream/internal/core"
	"stochstream/internal/flightrec"
	"stochstream/internal/process"
	"stochstream/internal/stats"
)

// Tuple is a stream tuple held in (or arriving at) the cache.
type Tuple struct {
	ID      int           // unique within a run, in arrival order
	Value   int           // join attribute value
	Stream  core.StreamID // which stream produced it
	Arrived int           // arrival time step
}

// Config describes one simulation run.
type Config struct {
	// CacheSize is the number of tuples the cache can hold. Must be >= 1.
	CacheSize int
	// Window enables sliding-window semantics when > 0: a cached tuple can
	// only join arrivals within Window steps of its own arrival
	// (Section 7). 0 means regular join semantics.
	Window int
	// Band generalizes the equijoin to a band join when > 0: tuples match
	// when their join-attribute values differ by at most Band (the paper's
	// Section 8 non-equality-join extension). 0 means equijoin.
	Band int
	// Warmup is the number of initial steps whose results are excluded from
	// Result.Joins (the paper uses at least 4× the cache size). Negative
	// means "use 4 × CacheSize".
	Warmup int
	// Procs optionally carries the stochastic models of the two streams for
	// model-driven policies (HEEB, FlowExpect). Model-free policies ignore
	// it.
	Procs [2]process.Process
	// TrackOccupancy records the fraction of cache slots holding R tuples
	// at every step (Figures 14, 17, 18).
	TrackOccupancy bool
}

// EffectiveWarmup resolves the warm-up period.
func (c Config) EffectiveWarmup() int {
	if c.Warmup >= 0 {
		return c.Warmup
	}
	return 4 * c.CacheSize
}

// State is the read view handed to policies when they decide replacements.
type State struct {
	// Time is the current step t0; arrivals at Time are already part of the
	// histories.
	Time int
	// Hists are the observed histories of streams R and S through Time.
	Hists [2]*process.History
	// Config echoes the run configuration.
	Config Config
	// RNG is the policy's private randomness source for this run.
	RNG *stats.RNG
}

// Procs returns the stream models from the configuration.
func (st *State) Procs() [2]process.Process { return st.Config.Procs }

// Policy decides which tuples to discard when the cache overflows.
type Policy interface {
	// Name identifies the policy in experiment reports.
	Name() string
	// Reset prepares the policy for a new run.
	Reset(cfg Config, rng *stats.RNG)
	// Evict returns the indices (into candidates) of tuples to discard —
	// exactly n of them, unless the policy also implements EagerEvictor, in
	// which case it may return more (never fewer). candidates holds the
	// current cache contents followed by the new arrivals.
	Evict(st *State, candidates []Tuple, n int) []int
}

// StateSnapshotter is implemented by policies whose decision state cannot be
// re-derived from the observed histories alone — private RNG streams,
// adaptive parameter trackers, incrementally maintained scores. The engine's
// checkpoint captures this state so a restored operator replays the exact
// decision sequence of an uninterrupted run. Policies whose state is a pure
// function of the histories (PROB/LIFE frequency counts, FlowExpect's
// per-decision memo) need not implement it.
type StateSnapshotter interface {
	// SnapshotState serializes the policy's decision state.
	SnapshotState() ([]byte, error)
	// RestoreState replaces the policy's decision state with a snapshot
	// taken from an identically configured policy. On error the policy may
	// be left partially restored and must be Reset before further use.
	RestoreState(data []byte) error
}

// EagerEvictor marks policies whose Evict must be invoked at every step,
// even when the cache is not overflowing, and which may discard more tuples
// than strictly required. The caching→joining reduction adapter uses it to
// drop reference-stream tuples and expired supply tuples immediately, as a
// "reasonable policy" in the sense of Theorem 1 must.
type EagerEvictor interface {
	EagerEvict()
}

// Observer receives run-time signals from Run. It exists so the telemetry
// layer can watch every simulation in the process (experiment harnesses build
// their configs internally, so per-run plumbing is not an option) without
// this package importing it.
type Observer interface {
	// WrapPolicy may replace the policy before a run starts (the telemetry
	// implementation wraps it with latency and decision instrumentation).
	WrapPolicy(p Policy) Policy
	// ObserveStep is called once per simulated step with the step's latency
	// and the result/eviction counts it produced.
	ObserveStep(latencyNs int64, results, evictions int)
}

// observer is the process-wide Run observer; nil means no instrumentation
// and costs a single atomic load per run (not per step).
var observer atomic.Pointer[Observer]

// SetObserver installs (or, with nil, removes) the process-wide Run
// observer. telemetry.EnableGlobal is the usual caller.
func SetObserver(o Observer) {
	if o == nil {
		observer.Store(nil)
		return
	}
	observer.Store(&o)
}

// spanRec is the process-wide flight recorder for Run, mirroring the
// observer: nil costs one atomic load per run.
var spanRec atomic.Pointer[flightrec.Recorder]

// SetSpanRecorder installs (or, with nil, removes) the flight recorder that
// Run records simulation spans into: one PhaseSimRun span per run, labeled
// with the policy name, with a PhaseSimStep child per simulated step.
func SetSpanRecorder(r *flightrec.Recorder) {
	spanRec.Store(r)
}

// Result summarizes one run.
type Result struct {
	// Joins is the number of result tuples produced after the warm-up
	// period — the paper's performance metric.
	Joins int
	// TotalJoins counts all result tuples including warm-up.
	TotalJoins int
	// OccupancyR[t] is the fraction of occupied cache slots holding R
	// tuples at step t (only if Config.TrackOccupancy).
	OccupancyR []float64
	// Evictions counts policy-initiated evictions.
	Evictions int
}

// Run simulates joining streams r and s (r[t], s[t] arrive at step t) under
// the policy p. It panics if the policy returns an invalid eviction set,
// since that is a programming error in the policy, not an input error.
func Run(r, s []int, p Policy, cfg Config, rng *stats.RNG) Result {
	if len(r) != len(s) {
		panic("join: streams must have equal length")
	}
	if cfg.CacheSize < 1 {
		panic("join: cache size must be >= 1")
	}
	var obs Observer
	if ptr := observer.Load(); ptr != nil {
		obs = *ptr
		p = obs.WrapPolicy(p)
	}
	rec := spanRec.Load()
	var runSpan flightrec.Active
	if rec != nil {
		runSpan = rec.BeginLabel(flightrec.PhaseSimRun, p.Name())
	}
	p.Reset(cfg, rng)

	warmup := cfg.EffectiveWarmup()
	hists := [2]*process.History{process.NewHistory(), process.NewHistory()}
	st := &State{Hists: hists, Config: cfg, RNG: rng}
	cache := make([]Tuple, 0, cfg.CacheSize)
	var res Result
	if cfg.TrackOccupancy {
		res.OccupancyR = make([]float64, 0, len(r))
	}
	nextID := 0
	newTuple := func(v int, sID core.StreamID, t int) Tuple {
		tp := Tuple{ID: nextID, Value: v, Stream: sID, Arrived: t}
		nextID++
		return tp
	}

	for t := 0; t < len(r); t++ {
		var stepStart time.Time
		if obs != nil {
			stepStart = time.Now()
		}
		var stepSpan flightrec.Active
		if rec != nil {
			stepSpan = rec.BeginChild(flightrec.PhaseSimStep, "", runSpan.SpanID())
		}
		stepEvictions := 0
		newR := newTuple(r[t], core.StreamR, t)
		newS := newTuple(s[t], core.StreamS, t)
		hists[core.StreamR].Append(newR.Value)
		hists[core.StreamS].Append(newS.Value)
		st.Time = t

		// Join the arrivals against the cached tuples of the other stream.
		// Same-time arrivals join regardless of replacement decisions, so
		// (like the paper) they are not counted.
		joins := 0
		matches := func(a, b int) bool {
			if a == process.NoValue || b == process.NoValue {
				return false
			}
			d := a - b
			if d < 0 {
				d = -d
			}
			return d <= cfg.Band
		}
		for _, c := range cache {
			if cfg.Window > 0 && t-c.Arrived > cfg.Window {
				continue
			}
			switch c.Stream {
			case core.StreamR:
				if matches(c.Value, newS.Value) {
					joins++
				}
			case core.StreamS:
				if matches(c.Value, newR.Value) {
					joins++
				}
			}
		}
		res.TotalJoins += joins
		if t >= warmup {
			res.Joins += joins
		}

		// Replacement: candidates are the cache plus the two arrivals.
		candidates := append(append(make([]Tuple, 0, len(cache)+2), cache...), newR, newS)
		need := len(candidates) - cfg.CacheSize
		_, eager := p.(EagerEvictor)
		if need <= 0 && !eager {
			cache = candidates
		} else {
			if need < 0 {
				need = 0
			}
			evict := p.Evict(st, candidates, need)
			validateEviction(p, evict, len(candidates), need, eager)
			res.Evictions += len(evict)
			stepEvictions = len(evict)
			drop := make(map[int]bool, len(evict))
			for _, i := range evict {
				drop[i] = true
			}
			cache = cache[:0]
			for i, c := range candidates {
				if !drop[i] {
					cache = append(cache, c)
				}
			}
		}

		if cfg.TrackOccupancy {
			nr := 0
			for _, c := range cache {
				if c.Stream == core.StreamR {
					nr++
				}
			}
			frac := 0.0
			if len(cache) > 0 {
				frac = float64(nr) / float64(len(cache))
			}
			res.OccupancyR = append(res.OccupancyR, frac)
		}

		if obs != nil {
			obs.ObserveStep(time.Since(stepStart).Nanoseconds(), joins, stepEvictions)
		}
		if rec != nil {
			rec.End(stepSpan, joins, int64(stepEvictions))
		}
	}
	if rec != nil {
		rec.End(runSpan, res.TotalJoins, int64(res.Evictions))
	}
	return res
}

func validateEviction(p Policy, evict []int, nCands, need int, eager bool) {
	if len(evict) != need && !(eager && len(evict) > need) {
		panic(fmt.Sprintf("join: policy %s returned %d evictions, need %d", p.Name(), len(evict), need))
	}
	seen := make(map[int]bool, need)
	for _, i := range evict {
		if i < 0 || i >= nCands {
			panic(fmt.Sprintf("join: policy %s returned out-of-range index %d", p.Name(), i))
		}
		if seen[i] {
			panic(fmt.Sprintf("join: policy %s returned duplicate index %d", p.Name(), i))
		}
		seen[i] = true
	}
}

// CountJoinsOffline replays streams against a fixed replacement trace — used
// by tests to cross-check Result accounting. Given per-step keep decisions
// it returns the post-warmup join count; decisions[t] lists candidate
// indices kept at step t (same candidate ordering as Run).
func CountJoinsOffline(r, s []int, decisions [][]int, cfg Config) int {
	replay := &scriptedPolicy{decisions: decisions}
	return Run(r, s, replay, cfg, stats.NewRNG(0)).Joins
}

type scriptedPolicy struct {
	decisions [][]int
	t         int
}

func (sp *scriptedPolicy) Name() string             { return "scripted" }
func (sp *scriptedPolicy) Reset(Config, *stats.RNG) { sp.t = 0 }
func (sp *scriptedPolicy) Evict(st *State, cands []Tuple, n int) []int {
	keep := map[int]bool{}
	if st.Time < len(sp.decisions) {
		for _, i := range sp.decisions[st.Time] {
			keep[i] = true
		}
	}
	var out []int
	for i := range cands {
		if !keep[i] && len(out) < n {
			out = append(out, i)
		}
	}
	return out
}
