package join

import (
	"testing"

	"stochstream/internal/core"
	"stochstream/internal/process"
	"stochstream/internal/stats"
)

// keepNewest evicts the oldest tuples (FIFO), a trivial deterministic policy
// for exercising the simulator.
type keepNewest struct{}

func (keepNewest) Name() string             { return "fifo" }
func (keepNewest) Reset(Config, *stats.RNG) {}
func (keepNewest) Evict(_ *State, cands []Tuple, n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i // simulator orders cache before arrivals, oldest first
	}
	return idx
}

func TestRunCountsJoins(t *testing.T) {
	// Cache big enough to hold everything: every cross-time match counts.
	r := []int{1, 2, 3, 4}
	s := []int{9, 1, 2, 1}
	res := Run(r, s, keepNewest{}, Config{CacheSize: 100, Warmup: 0}, stats.NewRNG(1))
	// s[1]=1 joins cached r[0]=1; s[2]=2 joins r[1]; s[3]=1 joins r[0].
	if res.Joins != 3 || res.TotalJoins != 3 {
		t.Fatalf("Joins = %d TotalJoins = %d, want 3/3", res.Joins, res.TotalJoins)
	}
	if res.Evictions != 0 {
		t.Fatalf("Evictions = %d, want 0", res.Evictions)
	}
}

func TestRunSameTimeMatchesNotCounted(t *testing.T) {
	r := []int{5, 6}
	s := []int{5, 6}
	res := Run(r, s, keepNewest{}, Config{CacheSize: 10, Warmup: 0}, stats.NewRNG(1))
	if res.TotalJoins != 0 {
		t.Fatalf("same-time joins must not count, got %d", res.TotalJoins)
	}
}

func TestRunDuplicateCachedTuplesEachJoin(t *testing.T) {
	// Two R tuples with the same value both join a later S arrival.
	r := []int{7, 7, 0}
	s := []int{1, 2, 7}
	res := Run(r, s, keepNewest{}, Config{CacheSize: 10, Warmup: 0}, stats.NewRNG(1))
	if res.TotalJoins != 2 {
		t.Fatalf("TotalJoins = %d, want 2", res.TotalJoins)
	}
}

func TestRunWarmupExcludesEarlyJoins(t *testing.T) {
	// Joins: t=1 (s=1 × r0), t=2 (r=1 × s1), t=3 (s=1 × r0 AND × r2).
	r := []int{1, 0, 1, 0}
	s := []int{9, 1, 9, 1}
	cfg := Config{CacheSize: 10, Warmup: 2}
	res := Run(r, s, keepNewest{}, cfg, stats.NewRNG(1))
	if res.TotalJoins != 4 || res.Joins != 3 {
		t.Fatalf("TotalJoins = %d Joins = %d, want 4/3", res.TotalJoins, res.Joins)
	}
	// Default warm-up is 4x cache size.
	if got := (Config{CacheSize: 3, Warmup: -1}).EffectiveWarmup(); got != 12 {
		t.Fatalf("EffectiveWarmup = %d, want 12", got)
	}
}

func TestRunEvictionMakesTupleUnavailable(t *testing.T) {
	// Cache of 1: FIFO keeps only the newest arrival (the S tuple at each
	// t), so the R tuple from t=0 cannot join at t=2.
	r := []int{1, 0, 0}
	s := []int{8, 9, 1}
	res := Run(r, s, keepNewest{}, Config{CacheSize: 1, Warmup: 0}, stats.NewRNG(1))
	if res.TotalJoins != 0 {
		t.Fatalf("TotalJoins = %d, want 0 after eviction", res.TotalJoins)
	}
	if res.Evictions != 2*3-1 {
		t.Fatalf("Evictions = %d, want 5", res.Evictions)
	}
}

func TestRunWindowSemantics(t *testing.T) {
	// r[0]=1 matches s at t=1 and t=3; window 2 cuts off t=3.
	r := []int{1, 0, 0, 0}
	s := []int{8, 1, 9, 1}
	noWin := Run(r, s, keepNewest{}, Config{CacheSize: 10, Warmup: 0}, stats.NewRNG(1))
	if noWin.TotalJoins != 2 {
		t.Fatalf("unwindowed TotalJoins = %d, want 2", noWin.TotalJoins)
	}
	win := Run(r, s, keepNewest{}, Config{CacheSize: 10, Warmup: 0, Window: 2}, stats.NewRNG(1))
	if win.TotalJoins != 1 {
		t.Fatalf("windowed TotalJoins = %d, want 1", win.TotalJoins)
	}
}

func TestRunNoValueNeverJoins(t *testing.T) {
	r := []int{process.NoValue, 0}
	s := []int{5, process.NoValue}
	res := Run(r, s, keepNewest{}, Config{CacheSize: 10, Warmup: 0}, stats.NewRNG(1))
	if res.TotalJoins != 0 {
		t.Fatalf("NoValue joined: %d", res.TotalJoins)
	}
}

func TestRunOccupancyTrace(t *testing.T) {
	r := []int{1, 2, 3}
	s := []int{4, 5, 6}
	res := Run(r, s, keepNewest{}, Config{CacheSize: 4, Warmup: 0, TrackOccupancy: true}, stats.NewRNG(1))
	if len(res.OccupancyR) != 3 {
		t.Fatalf("trace length = %d", len(res.OccupancyR))
	}
	// Steps 0-1: cache holds both arrivals each time → 1/2 R fraction.
	if res.OccupancyR[0] != 0.5 || res.OccupancyR[1] != 0.5 {
		t.Fatalf("occupancy = %v", res.OccupancyR)
	}
}

func TestRunPanicsOnBadInput(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("length mismatch", func() {
		Run([]int{1}, []int{1, 2}, keepNewest{}, Config{CacheSize: 1}, stats.NewRNG(1))
	})
	mustPanic("zero cache", func() {
		Run([]int{1}, []int{1}, keepNewest{}, Config{CacheSize: 0}, stats.NewRNG(1))
	})
}

type badPolicy struct{ mode int }

func (p badPolicy) Name() string             { return "bad" }
func (p badPolicy) Reset(Config, *stats.RNG) {}
func (p badPolicy) Evict(_ *State, cands []Tuple, n int) []int {
	switch p.mode {
	case 0:
		return nil // too few
	case 1:
		return []int{0, 0} // duplicate
	default:
		return []int{len(cands), 1} // out of range
	}
}

func TestRunRejectsInvalidEvictions(t *testing.T) {
	r := []int{1, 2, 3}
	s := []int{4, 5, 6}
	for mode := 0; mode < 3; mode++ {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("mode %d did not panic", mode)
				}
			}()
			Run(r, s, badPolicy{mode: mode}, Config{CacheSize: 2, Warmup: 0}, stats.NewRNG(1))
		}()
	}
}

// eagerDropAll discards everything every step; exercises EagerEvictor.
type eagerDropAll struct{}

func (eagerDropAll) Name() string             { return "eager" }
func (eagerDropAll) Reset(Config, *stats.RNG) {}
func (eagerDropAll) EagerEvict()              {}
func (eagerDropAll) Evict(_ *State, cands []Tuple, _ int) []int {
	out := make([]int, len(cands))
	for i := range out {
		out[i] = i
	}
	return out
}

func TestRunEagerEvictorCalledBelowCapacity(t *testing.T) {
	r := []int{1, 0}
	s := []int{9, 1} // would join r[0] if cached
	res := Run(r, s, eagerDropAll{}, Config{CacheSize: 100, Warmup: 0}, stats.NewRNG(1))
	if res.TotalJoins != 0 {
		t.Fatalf("eager policy emptied the cache, yet joins = %d", res.TotalJoins)
	}
	if res.Evictions != 4 {
		t.Fatalf("Evictions = %d, want 4", res.Evictions)
	}
}

func TestCountJoinsOfflineReplaysDecisions(t *testing.T) {
	r := []int{1, 0, 0}
	s := []int{8, 9, 1}
	// Keep the R(1) tuple (candidate 0 after step 0 has cache [r0 s0]).
	decisions := [][]int{
		nil,    // t=0: cache below capacity anyway
		{0, 2}, // t=1: keep r0 and the new r... candidate order: [r0, s0, r1, s1]
		nil,
	}
	cfg := Config{CacheSize: 2, Warmup: 0}
	got := CountJoinsOffline(r, s, decisions, cfg)
	if got != 1 {
		t.Fatalf("replayed joins = %d, want 1 (r0 joins s at t=2)", got)
	}
}

func TestStateProcs(t *testing.T) {
	cfg := Config{Procs: [2]process.Process{&process.Stationary{}, nil}}
	st := &State{Config: cfg}
	if st.Procs()[core.StreamR] == nil {
		t.Fatal("Procs lost the model")
	}
}
