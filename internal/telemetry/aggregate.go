package telemetry

import (
	"fmt"
	"io"
)

// Sharded aggregation: the sharded runtime (internal/shardrt) gives every
// shard its own Registry so the engine hot path keeps its lock-free handle
// writes, and aggregates at export time instead. A ShardSet renders all of
// them as one exposition, with each shard's metrics relabeled by a leading
// shard="<i>" label — so one scrape shows per-shard series side by side —
// while the coordinator's own metrics pass through unlabeled.
//
// Snapshot semantics are per shard: each registry is snapshotted atomically
// in shard order, but the set as a whole is not a consistent cut — shard 1
// may step between the shard-0 and shard-1 snapshots. See
// docs/observability.md, "Sharded snapshots".

// ShardSet groups the registries of a sharded runtime for aggregated export.
type ShardSet struct {
	// Coordinator, when non-nil, contributes runtime-level metrics
	// (rebalance counters and the like), exported without a shard label.
	Coordinator *Registry
	// Shards are the per-shard registries, indexed by shard ID; nil entries
	// are skipped.
	Shards []*Registry
}

// ShardLabel prepends shard="<id>" to a metric name's label set:
// ShardLabel(`engine_pairs_total`, 2) → `engine_pairs_total{shard="2"}` and
// ShardLabel(`ladder_fallback_total{from="x"}`, 2) →
// `ladder_fallback_total{shard="2",from="x"}`.
func ShardLabel(name string, shard int) string {
	base, labels := splitName(name)
	return base + joinLabels(fmt.Sprintf(`shard="%d"`, shard), labels)
}

// Merged flattens the set into one Snapshot whose shard metrics carry the
// shard label. Decision traces stay per shard (a merged trace would
// interleave unrelated policies); use the per-shard registries for those.
func (s ShardSet) Merged() Snapshot {
	out := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if s.Coordinator != nil {
		snap := s.Coordinator.Snapshot()
		for k, v := range snap.Counters {
			out.Counters[k] = v
		}
		for k, v := range snap.Gauges {
			out.Gauges[k] = v
		}
		for k, v := range snap.Histograms {
			out.Histograms[k] = v
		}
	}
	for i, reg := range s.Shards {
		if reg == nil {
			continue
		}
		snap := reg.Snapshot()
		for k, v := range snap.Counters {
			out.Counters[ShardLabel(k, i)] = v
		}
		for k, v := range snap.Gauges {
			out.Gauges[ShardLabel(k, i)] = v
		}
		for k, v := range snap.Histograms {
			out.Histograms[ShardLabel(k, i)] = v
		}
	}
	return out
}

// WritePrometheus writes the merged set in the Prometheus text exposition
// format, shard labels attached.
func (s ShardSet) WritePrometheus(w io.Writer) {
	writeSnapshotPrometheus(w, s.Merged())
}

// ShardedSnapshot is the JSON export of a ShardSet: the JSON form keeps the
// per-shard structure instead of flattening into labels, so consumers can
// index shards directly. Nil shard registries appear as empty snapshots.
type ShardedSnapshot struct {
	Coordinator *Snapshot  `json:"coordinator,omitempty"`
	Shards      []Snapshot `json:"shards"`
}

// Snapshot captures every registry in the set, shard order, each one
// atomically (see the package comment for cross-shard consistency).
func (s ShardSet) Snapshot() ShardedSnapshot {
	out := ShardedSnapshot{Shards: make([]Snapshot, len(s.Shards))}
	if s.Coordinator != nil {
		snap := s.Coordinator.Snapshot()
		out.Coordinator = &snap
	}
	for i, reg := range s.Shards {
		if reg == nil {
			continue
		}
		out.Shards[i] = reg.Snapshot()
	}
	return out
}
