// Package telemetry is the observability layer of the stream-join engine: a
// dependency-free metrics registry (atomic counters, gauges and fixed-bucket
// latency histograms with snapshot-on-read quantiles), a ring-buffer decision
// trace that records why each eviction happened (per-candidate policy scores,
// the chosen victims), and export surfaces — Prometheus text exposition, JSON,
// and an optional net/http endpoint with expvar and pprof mounted.
//
// The paper's argument is statistical: HEEB's benefit estimates and
// FlowExpect's expected-flow decisions are only as good as what the operator
// observes at run time. This package is the measurement substrate — it lets a
// deployment confirm that the policy's scores, the eviction decisions and the
// hot-path latencies match what the theory predicts, and it is the baseline
// every performance change must prove itself against.
//
// Hot-path cost: a disabled registry costs one atomic load; an enabled one
// costs a handful of atomic adds per step (no allocations, no locks on the
// counter/histogram write paths).
package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
)

// enabled gates the process-wide instrumentation installed by EnableGlobal;
// per-instance registries (engine.Config.Telemetry) ignore it.
var enabled atomic.Bool

// SetEnabled turns the process-wide telemetry hooks on or off.
func SetEnabled(on bool) { enabled.Store(on) }

// Enabled reports whether process-wide telemetry is on.
func Enabled() bool { return enabled.Load() }

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry used by the global hooks
// (join.SetObserver installation, cmd/repro -metrics, the examples).
func Default() *Registry { return defaultRegistry }

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomically settable float64 value.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(floatBits(v)) }

// Add atomically adds d to the gauge.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, floatBits(bitsFloat(old)+d)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return bitsFloat(g.bits.Load()) }

// Registry holds named metrics and the decision trace. All methods are safe
// for concurrent use; metric handles are resolved once (get-or-create under a
// lock) and then written lock-free.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	hists      map[string]*Histogram
	gaugeFuncs map[string]func() float64
	trace      *DecisionTrace
	downgrades *DowngradeTrace

	// clock, when set, replaces the wall clock for the registry's internal
	// latency timings (InstrumentedPolicy). The engine installs the flight
	// recorder's clock here so a run under a logical clock is byte-
	// deterministic end to end.
	clock atomic.Pointer[func() int64]
	// spansFn and bundleFn back the /spans and /bundle HTTP endpoints; the
	// engine wires them to the flight recorder so this package need not
	// import it.
	spansFn  atomic.Pointer[func(n int) any]
	bundleFn atomic.Pointer[func() (string, error)]
}

// NewRegistry returns an empty registry with a decision trace of the default
// capacity (512 records) and a downgrade trace of the same capacity.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		hists:      map[string]*Histogram{},
		gaugeFuncs: map[string]func() float64{},
		trace:      NewDecisionTrace(512),
		downgrades: NewDowngradeTrace(512),
	}
}

// Counter returns the named counter, creating it on first use. Names may
// carry a Prometheus label set in braces, e.g. `evictions_total{policy="HEEB"}`.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers (or replaces) a gauge whose value is computed at
// snapshot time — used to surface externally maintained counters such as the
// min-cost-flow solver statistics.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	r.mu.Lock()
	r.gaugeFuncs[name] = fn
	r.mu.Unlock()
}

// Histogram returns the named histogram with the default latency buckets
// (nanoseconds, log-spaced), creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	return r.HistogramWith(name, nil)
}

// HistogramWith returns the named histogram, creating it with the given
// bucket bounds on first use (nil means the default latency buckets). Bounds
// of an existing histogram are not changed.
func (r *Registry) HistogramWith(name string, bounds []float64) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// SetClock installs (or, with nil, removes) a nanosecond clock for the
// registry's internal latency timings. Without one the wall clock is used.
func (r *Registry) SetClock(fn func() int64) {
	if fn == nil {
		r.clock.Store(nil)
		return
	}
	r.clock.Store(&fn)
}

// nowNs reads the registry's clock: the installed one, or the wall clock.
func (r *Registry) nowNs() int64 {
	if fn := r.clock.Load(); fn != nil {
		return (*fn)()
	}
	return wallNowNs()
}

// SetSpansFunc installs the provider behind the /spans HTTP endpoint; the
// returned value is JSON-encoded verbatim. The engine wires the flight
// recorder's LastSpans here.
func (r *Registry) SetSpansFunc(fn func(n int) any) {
	if fn == nil {
		r.spansFn.Store(nil)
		return
	}
	r.spansFn.Store(&fn)
}

// SetBundleFunc installs the trigger behind the /bundle HTTP endpoint; it
// returns the written bundle's directory. The engine wires the flight
// recorder's WriteBundle here.
func (r *Registry) SetBundleFunc(fn func() (string, error)) {
	if fn == nil {
		r.bundleFn.Store(nil)
		return
	}
	r.bundleFn.Store(&fn)
}

// Trace returns the registry's decision trace.
func (r *Registry) Trace() *DecisionTrace { return r.trace }

// Downgrades returns the registry's degradation-ladder downgrade trace.
func (r *Registry) Downgrades() *DowngradeTrace { return r.downgrades }

// sortedKeys returns the keys of a map in stable order for deterministic
// export output.
func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
