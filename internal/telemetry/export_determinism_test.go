package telemetry

import (
	"bytes"
	"fmt"
	"testing"
)

// populateMetrics fills a registry with a spread of metric kinds. order
// permutes the registration sequence so the test can assert that export
// bytes do not depend on map insertion (and hence iteration) history.
func populateMetrics(reg *Registry, order []int) {
	for _, i := range order {
		name := fmt.Sprintf("metric_%02d_total", i)
		reg.Counter(name).Add(int64(100 + i))
		reg.Gauge(fmt.Sprintf("gauge_%02d", i)).Set(float64(i) * 1.5)
		h := reg.Histogram(fmt.Sprintf("latency_%02d_ns", i))
		for v := 0; v < 5; v++ {
			h.Observe(float64(1000 * (v + i + 1)))
		}
	}
	reg.Counter(`evictions_total{policy="HEEB"}`).Add(7)
	reg.Counter(`evictions_total{policy="RAND"}`).Add(3)
}

// TestExportByteIdentical is the regression test for stochlint's maprange
// contract on the export path: repeated Prometheus and JSON exports of the
// same registry must be byte-identical, and registries populated in
// different insertion orders must export identical bytes. A map-order
// dependent export loop would fail this within a few repetitions (Go
// randomizes map iteration per range statement).
func TestExportByteIdentical(t *testing.T) {
	forward := []int{0, 1, 2, 3, 4, 5, 6, 7}
	reverse := []int{7, 6, 5, 4, 3, 2, 1, 0}

	regA := NewRegistry()
	populateMetrics(regA, forward)
	regB := NewRegistry()
	populateMetrics(regB, reverse)

	export := func(reg *Registry) (prom, js string) {
		var pb, jb bytes.Buffer
		reg.WritePrometheus(&pb)
		if err := reg.WriteJSON(&jb); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		return pb.String(), jb.String()
	}

	promA, jsA := export(regA)
	if promA == "" || jsA == "" {
		t.Fatal("empty export")
	}
	for i := 0; i < 10; i++ {
		prom, js := export(regA)
		if prom != promA {
			t.Fatalf("Prometheus export differs between repeats (iteration %d):\nfirst:\n%s\nnow:\n%s", i, promA, prom)
		}
		if js != jsA {
			t.Fatalf("JSON export differs between repeats (iteration %d)", i)
		}
	}

	promB, jsB := export(regB)
	if promB != promA {
		t.Fatalf("Prometheus export depends on registration order:\nforward:\n%s\nreverse:\n%s", promA, promB)
	}
	if jsB != jsA {
		t.Fatal("JSON export depends on registration order")
	}
}
