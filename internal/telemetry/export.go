package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Snapshot is a point-in-time view of every metric in a registry, plus the
// retained decision trace. It is the JSON export schema.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	Trace      []DecisionRecord             `json:"trace,omitempty"`
}

// Snapshot captures all metrics. Gauge functions are evaluated here, not on
// the hot path.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	funcs := make(map[string]func() float64, len(r.gaugeFuncs))
	for k, v := range r.gaugeFuncs {
		funcs[k] = v
	}
	r.mu.RUnlock()

	s := Snapshot{
		Counters:   make(map[string]int64, len(counters)),
		Gauges:     make(map[string]float64, len(gauges)+len(funcs)),
		Histograms: make(map[string]HistogramSnapshot, len(hists)),
		Trace:      r.trace.Records(),
	}
	for k, c := range counters {
		s.Counters[k] = c.Value()
	}
	for k, g := range gauges {
		s.Gauges[k] = g.Value()
	}
	for k, fn := range funcs {
		s.Gauges[k] = fn()
	}
	for k, h := range hists {
		s.Histograms[k] = h.Snapshot()
	}
	return s
}

// WriteJSON writes the full snapshot (metrics and trace) as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WritePrometheus writes every metric in the Prometheus text exposition
// format: counters with TYPE counter, gauges with TYPE gauge, histograms as
// cumulative le-buckets with _sum/_count plus derived p50/p90/p99 gauges.
func (r *Registry) WritePrometheus(w io.Writer) {
	writeSnapshotPrometheus(w, r.Snapshot())
}

// writeSnapshotPrometheus renders one already-captured snapshot; the
// registry writer and the sharded aggregate writer (ShardSet) share it.
func writeSnapshotPrometheus(w io.Writer, s Snapshot) {
	for _, name := range sortedKeys(s.Counters) {
		base, labels := splitName(name)
		fmt.Fprintf(w, "# TYPE %s counter\n", base)
		fmt.Fprintf(w, "%s %d\n", joinName(base, labels), s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		base, labels := splitName(name)
		fmt.Fprintf(w, "# TYPE %s gauge\n", base)
		fmt.Fprintf(w, "%s %g\n", joinName(base, labels), s.Gauges[name])
	}
	for _, name := range sortedKeys(s.Histograms) {
		base, labels := splitName(name)
		h := s.Histograms[name]
		fmt.Fprintf(w, "# TYPE %s histogram\n", base)
		var cum int64
		for i, c := range h.Counts {
			cum += c
			le := "+Inf"
			if i < len(h.Bounds) {
				le = fmt.Sprintf("%g", h.Bounds[i])
			}
			// Elide interior empty buckets to keep the exposition readable;
			// cumulative counts stay exact because cum carries through.
			if c == 0 && i > 0 && i < len(h.Counts)-1 {
				continue
			}
			fmt.Fprintf(w, "%s_bucket%s %d\n", base, joinLabels(labels, `le="`+le+`"`), cum)
		}
		fmt.Fprintf(w, "%s_sum%s %g\n", base, joinLabels(labels), h.Sum)
		fmt.Fprintf(w, "%s_count%s %d\n", base, joinLabels(labels), h.Count)
		fmt.Fprintf(w, "%s_p50%s %g\n", base, joinLabels(labels), h.P50)
		fmt.Fprintf(w, "%s_p90%s %g\n", base, joinLabels(labels), h.P90)
		fmt.Fprintf(w, "%s_p99%s %g\n", base, joinLabels(labels), h.P99)
	}
}

// WriteTrace writes the newest n decision records (oldest first) as
// `# decision_trace <json>` comment lines — valid inside a Prometheus text
// exposition, so -metrics output can carry both.
func (r *Registry) WriteTrace(w io.Writer, n int) error {
	for _, rec := range r.trace.Last(n) {
		b, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "# decision_trace %s\n", b)
	}
	return nil
}

// splitName separates an optional brace-delimited label set from a metric
// name: `evictions_total{policy="HEEB"}` → ("evictions_total", `policy="HEEB"`).
func splitName(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:i], name[i+1 : len(name)-1]
	}
	return name, ""
}

// joinName re-attaches a label set to a base name.
func joinName(base, labels string) string {
	if labels == "" {
		return base
	}
	return base + "{" + labels + "}"
}

// joinLabels merges label fragments into one brace-delimited set (empty when
// no fragment is non-empty).
func joinLabels(fragments ...string) string {
	var parts []string
	for _, f := range fragments {
		if f != "" {
			parts = append(parts, f)
		}
	}
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}
