package telemetry

import "sync"

// TraceCandidate is one candidate tuple as the policy saw it at a decision:
// its key, stream, arrival time, the policy's score (HEEB's H_x value,
// FlowExpect's expected arc benefit) and whether it was chosen for eviction.
type TraceCandidate struct {
	Key     int     `json:"key"`
	Stream  string  `json:"stream"`
	Arrived int     `json:"arrived"`
	Score   float64 `json:"score"`
	Evicted bool    `json:"evicted"`
}

// DecisionRecord is one eviction decision: the step it happened at, the
// policy that made it, how many victims were required, and the full scored
// candidate set. It is what lets a paper-vs-implementation discrepancy be
// replayed: the record shows exactly which H_x values the policy compared.
type DecisionRecord struct {
	Step       int              `json:"step"`
	Policy     string           `json:"policy"`
	Need       int              `json:"need"`
	Candidates []TraceCandidate `json:"candidates"`
}

// DecisionTrace is a fixed-capacity ring buffer of decision records. Record
// is O(1) and overwrites the oldest entry when full; Records returns a
// chronological copy. A mutex (not atomics) is fine here: decisions are rare
// next to per-step metric writes, and a record is a composite value.
type DecisionTrace struct {
	mu    sync.Mutex
	buf   []DecisionRecord
	next  int
	total uint64
}

// NewDecisionTrace returns a trace holding the last capacity records.
func NewDecisionTrace(capacity int) *DecisionTrace {
	if capacity < 1 {
		capacity = 1
	}
	return &DecisionTrace{buf: make([]DecisionRecord, 0, capacity)}
}

// Record appends one decision, evicting the oldest when the ring is full.
func (t *DecisionTrace) Record(rec DecisionRecord) {
	t.mu.Lock()
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, rec)
	} else {
		t.buf[t.next] = rec
		t.next = (t.next + 1) % cap(t.buf)
	}
	t.total++
	t.mu.Unlock()
}

// Records returns the retained records, oldest first.
func (t *DecisionTrace) Records() []DecisionRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]DecisionRecord, 0, len(t.buf))
	out = append(out, t.buf[t.next:]...)
	out = append(out, t.buf[:t.next]...)
	return out
}

// Last returns the newest n records, oldest first (all of them when n exceeds
// the retained count).
func (t *DecisionTrace) Last(n int) []DecisionRecord {
	recs := t.Records()
	if n < len(recs) {
		recs = recs[len(recs)-n:]
	}
	return recs
}

// Total returns the number of records ever written (including overwritten
// ones).
func (t *DecisionTrace) Total() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}
