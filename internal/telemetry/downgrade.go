package telemetry

import "sync"

// DowngradeRecord is one degradation-ladder fallback: at Step, the rung From
// failed with Reason and the decision moved to rung To. Together with the
// ladder_fallback_total counters it makes every downgrade visible — the
// counters say how often each rung fails, the ring says when and why.
type DowngradeRecord struct {
	Step   int    `json:"step"`
	From   string `json:"from"`
	To     string `json:"to"`
	Reason string `json:"reason"`
}

// DowngradeTrace is a fixed-capacity ring of downgrade records, sharing the
// DecisionTrace design: O(1) recording under a mutex, chronological reads.
type DowngradeTrace struct {
	mu    sync.Mutex
	buf   []DowngradeRecord
	next  int
	total uint64
}

// NewDowngradeTrace returns a trace holding the last capacity records.
func NewDowngradeTrace(capacity int) *DowngradeTrace {
	if capacity < 1 {
		capacity = 1
	}
	return &DowngradeTrace{buf: make([]DowngradeRecord, 0, capacity)}
}

// Record appends one downgrade, evicting the oldest when the ring is full.
func (t *DowngradeTrace) Record(rec DowngradeRecord) {
	t.mu.Lock()
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, rec)
	} else {
		t.buf[t.next] = rec
		t.next = (t.next + 1) % cap(t.buf)
	}
	t.total++
	t.mu.Unlock()
}

// Records returns the retained records, oldest first.
func (t *DowngradeTrace) Records() []DowngradeRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]DowngradeRecord, 0, len(t.buf))
	out = append(out, t.buf[t.next:]...)
	out = append(out, t.buf[:t.next]...)
	return out
}

// Total returns the number of records ever written (including overwritten
// ones).
func (t *DowngradeTrace) Total() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}
