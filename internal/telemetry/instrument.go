package telemetry

import (
	"time"

	"stochstream/internal/join"
	"stochstream/internal/stats"
)

// CandidateScorer is implemented by policies that can explain an eviction
// decision by scoring every candidate (HEEB's H_x values, FlowExpect's
// expected arc benefits). InstrumentedPolicy uses it to fill decision-trace
// records; policies without it still get latency and count metrics.
type CandidateScorer interface {
	ScoreCandidates(st *join.State, cands []join.Tuple) []float64
}

// DefaultTraceEvery is the default decision-trace sampling interval: one in
// every 64 eviction decisions is scored and recorded. Tracing re-runs the
// policy's scorer over the candidate set — roughly the cost of one extra
// Evict — so the interval is what keeps instrumented runs within the <10%
// overhead budget (BENCH_telemetry.json) while the 512-record ring still
// fills within a few thousand decisions.
const DefaultTraceEvery = 64

// InstrumentedPolicy wraps any join.Policy with telemetry: an eviction-
// latency histogram, eviction/decision counters, a scoring-latency histogram
// (when the policy is a CandidateScorer) and sampled decision-trace records.
// Metric handles are resolved once per Reset, so Evict adds only clock reads
// and atomic writes to the wrapped policy's cost.
type InstrumentedPolicy struct {
	Inner join.Policy
	Reg   *Registry
	// TraceEvery records every Nth decision into Reg.Trace(); 0 uses
	// DefaultTraceEvery, negative disables tracing.
	TraceEvery int

	scorer       CandidateScorer // nil when Inner cannot explain decisions
	evictLatency *Histogram
	scoreLatency *Histogram
	decisions    *Counter
	evictions    *Counter
	n            uint64 // decisions seen, for trace sampling
}

// InstrumentPolicy wraps p with telemetry recorded into reg. Wrapping is
// idempotent, and policies that eager-evict keep that behavior.
func InstrumentPolicy(p join.Policy, reg *Registry) join.Policy {
	switch w := p.(type) {
	case *InstrumentedPolicy:
		return w
	case *eagerInstrumentedPolicy:
		return w
	}
	ip := &InstrumentedPolicy{Inner: p, Reg: reg}
	if _, eager := p.(join.EagerEvictor); eager {
		return &eagerInstrumentedPolicy{ip}
	}
	return ip
}

// eagerInstrumentedPolicy preserves the EagerEvictor marker of the wrapped
// policy, which changes the simulator's calling protocol.
type eagerInstrumentedPolicy struct{ *InstrumentedPolicy }

// EagerEvict implements join.EagerEvictor.
func (p *eagerInstrumentedPolicy) EagerEvict() {}

// Name implements join.Policy.
func (p *InstrumentedPolicy) Name() string { return p.Inner.Name() }

// Unwrap returns the instrumented policy, so callers that need the concrete
// policy behind the telemetry wrapper (the engine's checkpoint looks for
// join.StateSnapshotter, its downgrade wiring for the ladder) can reach it.
func (p *InstrumentedPolicy) Unwrap() join.Policy { return p.Inner }

// Reset implements join.Policy, resolving the policy-labeled metric handles.
func (p *InstrumentedPolicy) Reset(cfg join.Config, rng *stats.RNG) {
	label := `policy="` + p.Inner.Name() + `"`
	p.evictLatency = p.Reg.Histogram("policy_evict_latency_ns{" + label + "}")
	p.scoreLatency = p.Reg.Histogram("policy_score_latency_ns{" + label + "}")
	p.decisions = p.Reg.Counter("policy_decisions_total{" + label + "}")
	p.evictions = p.Reg.Counter("policy_evictions_total{" + label + "}")
	p.scorer, _ = p.Inner.(CandidateScorer)
	p.Inner.Reset(cfg, rng)
}

// wallNowNs is the registry clock's wall fallback, isolated here so the
// Registry.SetClock seam has exactly one wall-read site to displace.
func wallNowNs() int64 { return time.Now().UnixNano() }

// Evict implements join.Policy.
func (p *InstrumentedPolicy) Evict(st *join.State, cands []join.Tuple, n int) []int {
	start := p.Reg.nowNs()
	evict := p.Inner.Evict(st, cands, n)
	p.evictLatency.ObserveDuration(p.Reg.nowNs() - start)
	p.decisions.Inc()
	p.evictions.Add(int64(len(evict)))

	every := p.TraceEvery
	if every == 0 {
		every = DefaultTraceEvery
	}
	p.n++
	if p.scorer != nil && every > 0 && (p.n-1)%uint64(every) == 0 {
		p.recordTrace(st, cands, n, evict)
	}
	return evict
}

// recordTrace re-scores the candidates through the policy's own scorer and
// stores the decision for later replay.
func (p *InstrumentedPolicy) recordTrace(st *join.State, cands []join.Tuple, need int, evict []int) {
	start := p.Reg.nowNs()
	scores := p.scorer.ScoreCandidates(st, cands)
	p.scoreLatency.ObserveDuration(p.Reg.nowNs() - start)
	evicted := make(map[int]bool, len(evict))
	for _, i := range evict {
		evicted[i] = true
	}
	rec := DecisionRecord{
		Step:       st.Time,
		Policy:     p.Inner.Name(),
		Need:       need,
		Candidates: make([]TraceCandidate, len(cands)),
	}
	for i, c := range cands {
		score := 0.0
		if i < len(scores) {
			score = scores[i]
		}
		rec.Candidates[i] = TraceCandidate{
			Key:     c.Value,
			Stream:  c.Stream.String(),
			Arrived: c.Arrived,
			Score:   score,
			Evicted: evicted[i],
		}
	}
	p.Reg.Trace().Record(rec)
}

// joinObserver feeds join.Run's per-step signals into a registry and wraps
// every policy it sees with InstrumentedPolicy.
type joinObserver struct {
	reg         *Registry
	steps       *Counter
	results     *Counter
	evictions   *Counter
	stepLatency *Histogram
}

// NewJoinObserver returns a join.Observer recording into reg; install it with
// join.SetObserver.
func NewJoinObserver(reg *Registry) join.Observer {
	return &joinObserver{
		reg:         reg,
		steps:       reg.Counter("join_steps_total"),
		results:     reg.Counter("join_results_total"),
		evictions:   reg.Counter("join_evictions_total"),
		stepLatency: reg.Histogram("join_step_latency_ns"),
	}
}

// WrapPolicy implements join.Observer.
func (o *joinObserver) WrapPolicy(p join.Policy) join.Policy {
	return InstrumentPolicy(p, o.reg)
}

// ObserveStep implements join.Observer.
func (o *joinObserver) ObserveStep(latencyNs int64, results, evictions int) {
	o.steps.Inc()
	o.results.Add(int64(results))
	o.evictions.Add(int64(evictions))
	o.stepLatency.ObserveDuration(latencyNs)
}
