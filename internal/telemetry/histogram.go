package telemetry

import (
	"math"
	"sync/atomic"
)

func floatBits(v float64) uint64 { return math.Float64bits(v) }
func bitsFloat(b uint64) float64 { return math.Float64frombits(b) }

// defaultLatencyBounds are the default histogram buckets: log-spaced with ten
// buckets per decade from 100 ns to 10 s. They cover everything from a single
// atomic increment to a full FlowExpect solve while keeping quantile
// interpolation error at the bucket ratio (≈ 26%).
var defaultLatencyBounds = func() []float64 {
	var b []float64
	for e := 2; e < 10; e++ { // 1e2 .. 1e9 ns
		for i := 0; i < 10; i++ {
			b = append(b, math.Pow(10, float64(e)+float64(i)/10))
		}
	}
	return append(b, 1e10)
}()

// Histogram is a fixed-bucket histogram with atomic, allocation-free
// observation. Bucket bounds are immutable after construction; counts, the
// running sum and the observation count are all atomics, so Observe never
// locks and Snapshot never blocks writers.
type Histogram struct {
	bounds []float64      // upper bounds, ascending; implicit +Inf last
	counts []atomic.Int64 // len(bounds)+1, last is the +Inf bucket
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

// NewHistogram builds a histogram with the given ascending upper bounds; nil
// selects the default log-spaced latency buckets (nanoseconds).
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = defaultLatencyBounds
	}
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bound >= v.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	h.counts[lo].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, floatBits(bitsFloat(old)+v)) {
			return
		}
	}
}

// ObserveDuration records a latency given in nanoseconds.
func (h *Histogram) ObserveDuration(ns int64) { h.Observe(float64(ns)) }

// HistogramSnapshot is a consistent-enough point-in-time view: bucket counts
// are read one atomic at a time, so a snapshot taken mid-write may be off by
// the writes in flight, but it never tears a single bucket and the total is
// always the sum of the buckets it reports.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"` // len(Bounds)+1, last is +Inf
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	P50    float64   `json:"p50"`
	P90    float64   `json:"p90"`
	P99    float64   `json:"p99"`
}

// Snapshot captures the histogram's current state and derives p50/p90/p99.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Bounds: h.bounds, Counts: make([]int64, len(h.counts)), Sum: bitsFloat(h.sum.Load())}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	s.P50 = s.Quantile(0.50)
	s.P90 = s.Quantile(0.90)
	s.P99 = s.Quantile(0.99)
	return s
}

// Quantile estimates the q-quantile (0 < q < 1) by linear interpolation
// inside the bucket that contains it. Returns 0 for an empty histogram.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	var cum int64
	for i, c := range s.Counts {
		if float64(cum+c) < rank {
			cum += c
			continue
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := lo
		if i < len(s.Bounds) {
			hi = s.Bounds[i]
		} else if len(s.Bounds) > 0 {
			// +Inf bucket: extrapolate one bucket ratio past the last bound.
			hi = s.Bounds[len(s.Bounds)-1] * 2
		}
		if c == 0 {
			return hi
		}
		return lo + (hi-lo)*(rank-float64(cum))/float64(c)
	}
	if len(s.Bounds) > 0 {
		return s.Bounds[len(s.Bounds)-1]
	}
	return 0
}
