package telemetry

import (
	"stochstream/internal/join"
	"stochstream/internal/mincostflow"
)

// EnableGlobal turns on process-wide telemetry: it flips the enabled flag,
// installs a join.Run observer feeding the default registry (wrapping every
// policy with InstrumentedPolicy), and surfaces the min-cost-flow solver
// counters as gauges. cmd/repro -metrics and the examples call this; library
// embedders who want per-instance registries should use engine.Config.
// Telemetry instead.
func EnableGlobal() *Registry {
	reg := Default()
	SetEnabled(true)
	join.SetObserver(NewJoinObserver(reg))
	RegisterMinCostFlowStats(reg)
	return reg
}

// DisableGlobal removes the process-wide hooks installed by EnableGlobal.
// Already-collected metrics stay readable.
func DisableGlobal() {
	SetEnabled(false)
	join.SetObserver(nil)
}

// RegisterMinCostFlowStats surfaces the solver's package-level counters
// (SSP augmenting paths, Dijkstra runs, cost-scaling relabels/pushes) as
// snapshot-time gauges on reg.
func RegisterMinCostFlowStats(reg *Registry) {
	stat := func(sel func(mincostflow.Stats) int64) func() float64 {
		return func() float64 { return float64(sel(mincostflow.ReadStats())) }
	}
	reg.GaugeFunc("mincostflow_solves_total", stat(func(s mincostflow.Stats) int64 { return s.Solves }))
	reg.GaugeFunc("mincostflow_augmenting_paths_total", stat(func(s mincostflow.Stats) int64 { return s.Augmentations }))
	reg.GaugeFunc("mincostflow_dijkstra_runs_total", stat(func(s mincostflow.Stats) int64 { return s.DijkstraRuns }))
	reg.GaugeFunc("mincostflow_bellman_ford_runs_total", stat(func(s mincostflow.Stats) int64 { return s.BellmanFordRuns }))
	reg.GaugeFunc("mincostflow_costscaling_solves_total", stat(func(s mincostflow.Stats) int64 { return s.CostScalingSolves }))
	reg.GaugeFunc("mincostflow_costscaling_relabels_total", stat(func(s mincostflow.Stats) int64 { return s.Relabels }))
	reg.GaugeFunc("mincostflow_costscaling_pushes_total", stat(func(s mincostflow.Stats) int64 { return s.Pushes }))
}
