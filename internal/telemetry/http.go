package telemetry

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// Handler returns the registry's HTTP surface:
//
//	/metrics       Prometheus text exposition
//	/metrics.json  full JSON snapshot (metrics + trace)
//	/trace?n=K     newest K decision records as a JSON array (default 32)
//	/debug/vars    expvar
//	/debug/pprof/  runtime profiling
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		r.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteJSON(w)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, req *http.Request) {
		n := 32
		if s := req.URL.Query().Get("n"); s != "" {
			if v, err := strconv.Atoi(s); err == nil && v > 0 {
				n = v
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Trace().Last(n))
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the registry's HTTP surface on addr in a background goroutine
// and returns the server (close it to stop) and the bound address — useful
// with addr ":0" for an ephemeral port.
func (r *Registry) Serve(addr string) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: r.Handler()}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr().String(), nil
}
