package telemetry

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"

	"stochstream/internal/httpd"
)

// parseN resolves the n=K query parameter shared by /trace and /spans: an
// absent parameter yields the default, a non-numeric or negative value is an
// error (n=0 is valid and yields an empty result).
func parseN(req *http.Request, def int) (int, error) {
	s := req.URL.Query().Get("n")
	if s == "" {
		return def, nil
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("parameter n=%q is not an integer", s)
	}
	if v < 0 {
		return 0, fmt.Errorf("parameter n=%d is negative", v)
	}
	return v, nil
}

// httpError writes a JSON error body with the given status.
func httpError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// Handler returns the registry's HTTP surface:
//
//	/metrics       Prometheus text exposition
//	/metrics.json  full JSON snapshot (metrics + trace)
//	/trace?n=K     newest K decision records as a JSON array (default 32)
//	/spans?n=K     newest K flight-recorder spans (default 128); available
//	               when the engine wired a recorder via SetSpansFunc
//	/bundle        POST/GET: write a diagnostics bundle now, respond with
//	               its directory; available when wired via SetBundleFunc
//	/debug/vars    expvar
//	/debug/pprof/  runtime profiling
//
// Malformed or negative n on /trace and /spans is HTTP 400 with a JSON error
// body, not a silent fallback to the default.
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		r.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteJSON(w)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, req *http.Request) {
		n, err := parseN(req, 32)
		if err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Trace().Last(n))
	})
	mux.HandleFunc("/spans", func(w http.ResponseWriter, req *http.Request) {
		fn := r.spansFn.Load()
		if fn == nil {
			httpError(w, http.StatusNotFound, "no flight recorder wired to this registry")
			return
		}
		n, err := parseN(req, 128)
		if err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode((*fn)(n))
	})
	mux.HandleFunc("/bundle", func(w http.ResponseWriter, _ *http.Request) {
		fn := r.bundleFn.Load()
		if fn == nil {
			httpError(w, http.StatusNotFound, "no bundle writer wired to this registry")
			return
		}
		dir, err := (*fn)()
		if err != nil {
			httpError(w, http.StatusInternalServerError, err.Error())
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]string{"bundle": dir})
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the registry's HTTP surface on addr as a managed httpd
// server (header/idle timeouts, context-driven Shutdown, joined serve
// goroutine) and returns it with the bound address — useful with addr ":0"
// for an ephemeral port. Stop it with Shutdown (graceful) or Close.
func (r *Registry) Serve(addr string) (*httpd.Server, string, error) {
	srv, err := httpd.Start(addr, r.Handler())
	if err != nil {
		return nil, "", err
	}
	return srv, srv.Addr(), nil
}
