package telemetry

import (
	"strings"
	"testing"
)

func TestShardLabel(t *testing.T) {
	cases := map[string]string{
		"engine_pairs_total":                 `engine_pairs_total{shard="2"}`,
		`ladder_fallback_total{from="heeb"}`: `ladder_fallback_total{shard="2",from="heeb"}`,
	}
	for in, want := range cases {
		if got := ShardLabel(in, 2); got != want {
			t.Errorf("ShardLabel(%q, 2) = %q, want %q", in, got, want)
		}
	}
}

func buildShardSet() ShardSet {
	coord := NewRegistry()
	coord.Counter("rt_moves_total").Add(3)
	s0 := NewRegistry()
	s0.Counter("steps_total").Add(10)
	s0.Gauge("budget").Set(4)
	s1 := NewRegistry()
	s1.Counter("steps_total").Add(20)
	s1.HistogramWith("lat_ns", []float64{1, 10}).Observe(5)
	return ShardSet{Coordinator: coord, Shards: []*Registry{s0, s1, nil}}
}

func TestShardSetMerged(t *testing.T) {
	m := buildShardSet().Merged()
	if m.Counters["rt_moves_total"] != 3 {
		t.Fatalf("coordinator counter lost: %v", m.Counters)
	}
	if m.Counters[`steps_total{shard="0"}`] != 10 || m.Counters[`steps_total{shard="1"}`] != 20 {
		t.Fatalf("shard counters mislabeled: %v", m.Counters)
	}
	if m.Gauges[`budget{shard="0"}`] != 4 {
		t.Fatalf("shard gauge mislabeled: %v", m.Gauges)
	}
	if m.Histograms[`lat_ns{shard="1"}`].Count != 1 {
		t.Fatalf("shard histogram mislabeled: %v", m.Histograms)
	}
	// The nil shard contributes nothing and breaks nothing.
	for k := range m.Counters {
		if strings.Contains(k, `shard="2"`) {
			t.Fatalf("nil shard produced series %q", k)
		}
	}
}

func TestShardSetWritePrometheus(t *testing.T) {
	var sb strings.Builder
	buildShardSet().WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"rt_moves_total 3",
		`steps_total{shard="0"} 10`,
		`steps_total{shard="1"} 20`,
		`budget{shard="0"} 4`,
		`lat_ns_count{shard="1"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestShardSetSnapshot(t *testing.T) {
	snap := buildShardSet().Snapshot()
	if snap.Coordinator == nil || snap.Coordinator.Counters["rt_moves_total"] != 3 {
		t.Fatalf("coordinator snapshot: %+v", snap.Coordinator)
	}
	if len(snap.Shards) != 3 {
		t.Fatalf("want 3 shard slots, got %d", len(snap.Shards))
	}
	if snap.Shards[1].Counters["steps_total"] != 20 {
		t.Fatalf("shard 1 snapshot: %+v", snap.Shards[1])
	}
	// Nil registry slot stays an empty snapshot, keeping shard indexes stable.
	if len(snap.Shards[2].Counters) != 0 {
		t.Fatalf("nil shard slot not empty: %+v", snap.Shards[2])
	}
}
