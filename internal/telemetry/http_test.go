package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHandlerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("req_total").Add(2)
	reg.Histogram("lat_ns").Observe(500)
	reg.Trace().Record(DecisionRecord{Step: 1, Policy: "HEEB", Need: 1})
	reg.Trace().Record(DecisionRecord{Step: 2, Policy: "HEEB", Need: 1})

	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(b)
	}

	code, body := get("/metrics")
	if code != http.StatusOK || !strings.Contains(body, "req_total 2") {
		t.Fatalf("/metrics: %d\n%s", code, body)
	}
	if !strings.Contains(body, "# TYPE lat_ns histogram") {
		t.Fatalf("/metrics missing histogram:\n%s", body)
	}

	code, body = get("/metrics.json")
	if code != http.StatusOK {
		t.Fatalf("/metrics.json: %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/metrics.json invalid: %v", err)
	}
	if snap.Counters["req_total"] != 2 {
		t.Fatalf("json snapshot = %+v", snap)
	}

	code, body = get("/trace?n=1")
	if code != http.StatusOK {
		t.Fatalf("/trace: %d", code)
	}
	var recs []DecisionRecord
	if err := json.Unmarshal([]byte(body), &recs); err != nil {
		t.Fatalf("/trace body %q: %v", body, err)
	}
	if len(recs) != 1 || recs[0].Step != 2 {
		t.Fatalf("trace records = %+v, want just the newest (step 2)", recs)
	}

	if code, _ := get("/debug/vars"); code != http.StatusOK {
		t.Fatalf("/debug/vars: %d", code)
	}
	if code, _ := get("/debug/pprof/"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/: %d", code)
	}
}

func TestServeBindsAndShutsDown(t *testing.T) {
	reg := NewRegistry()
	srv, addr, err := reg.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if addr == "" || !strings.Contains(addr, ":") {
		t.Fatalf("addr = %q", addr)
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}
