package telemetry

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHandlerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("req_total").Add(2)
	reg.Histogram("lat_ns").Observe(500)
	reg.Trace().Record(DecisionRecord{Step: 1, Policy: "HEEB", Need: 1})
	reg.Trace().Record(DecisionRecord{Step: 2, Policy: "HEEB", Need: 1})

	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(b)
	}

	code, body := get("/metrics")
	if code != http.StatusOK || !strings.Contains(body, "req_total 2") {
		t.Fatalf("/metrics: %d\n%s", code, body)
	}
	if !strings.Contains(body, "# TYPE lat_ns histogram") {
		t.Fatalf("/metrics missing histogram:\n%s", body)
	}

	code, body = get("/metrics.json")
	if code != http.StatusOK {
		t.Fatalf("/metrics.json: %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/metrics.json invalid: %v", err)
	}
	if snap.Counters["req_total"] != 2 {
		t.Fatalf("json snapshot = %+v", snap)
	}

	code, body = get("/trace?n=1")
	if code != http.StatusOK {
		t.Fatalf("/trace: %d", code)
	}
	var recs []DecisionRecord
	if err := json.Unmarshal([]byte(body), &recs); err != nil {
		t.Fatalf("/trace body %q: %v", body, err)
	}
	if len(recs) != 1 || recs[0].Step != 2 {
		t.Fatalf("trace records = %+v, want just the newest (step 2)", recs)
	}

	if code, _ := get("/debug/vars"); code != http.StatusOK {
		t.Fatalf("/debug/vars: %d", code)
	}
	if code, _ := get("/debug/pprof/"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/: %d", code)
	}
}

// httpGet is the shared request helper for the endpoint-validation tests.
func httpGet(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

// jsonError decodes the {"error": ...} body every rejected request carries.
func jsonError(t *testing.T, body string) string {
	t.Helper()
	var m map[string]string
	if err := json.Unmarshal([]byte(body), &m); err != nil {
		t.Fatalf("error body %q is not JSON: %v", body, err)
	}
	if m["error"] == "" {
		t.Fatalf("error body %q has no error field", body)
	}
	return m["error"]
}

func TestTraceParamValidation(t *testing.T) {
	reg := NewRegistry()
	reg.Trace().Record(DecisionRecord{Step: 1, Policy: "HEEB", Need: 1})
	reg.Trace().Record(DecisionRecord{Step: 2, Policy: "HEEB", Need: 1})
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()

	// n=0 is a valid request for an empty window, not an error.
	code, body := httpGet(t, srv, "/trace?n=0")
	if code != http.StatusOK || strings.TrimSpace(body) != "[]" {
		t.Fatalf("/trace?n=0: %d %q, want 200 with an empty array", code, body)
	}

	// n beyond the ring size returns everything recorded, silently clamped.
	code, body = httpGet(t, srv, "/trace?n=100000")
	var recs []DecisionRecord
	if code != http.StatusOK {
		t.Fatalf("/trace?n=100000: %d", code)
	}
	if err := json.Unmarshal([]byte(body), &recs); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("oversized n returned %d records, want all 2", len(recs))
	}

	for _, tc := range []struct {
		path, wantErr string
	}{
		{"/trace?n=abc", "not an integer"},
		{"/trace?n=1.5", "not an integer"},
		{"/trace?n=-1", "negative"},
	} {
		code, body := httpGet(t, srv, tc.path)
		if code != http.StatusBadRequest {
			t.Fatalf("%s: %d, want 400", tc.path, code)
		}
		if msg := jsonError(t, body); !strings.Contains(msg, tc.wantErr) {
			t.Fatalf("%s error = %q, want mention of %q", tc.path, msg, tc.wantErr)
		}
	}
}

func TestSpansEndpoint(t *testing.T) {
	reg := NewRegistry()
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()

	// Without a wired recorder the endpoint is absent, not empty.
	code, body := httpGet(t, srv, "/spans")
	if code != http.StatusNotFound {
		t.Fatalf("/spans unwired: %d, want 404", code)
	}
	jsonError(t, body)

	reg.SetSpansFunc(func(n int) any {
		out := []int{}
		for i := 0; i < n && i < 3; i++ {
			out = append(out, i)
		}
		return out
	})
	code, body = httpGet(t, srv, "/spans?n=2")
	if code != http.StatusOK {
		t.Fatalf("/spans wired: %d", code)
	}
	var got []int
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("/spans?n=2 returned %v", got)
	}

	// Validation is shared with /trace: same 400 responses.
	for _, path := range []string{"/spans?n=zz", "/spans?n=-3"} {
		code, body := httpGet(t, srv, path)
		if code != http.StatusBadRequest {
			t.Fatalf("%s: %d, want 400", path, code)
		}
		jsonError(t, body)
	}
}

func TestBundleEndpoint(t *testing.T) {
	reg := NewRegistry()
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()

	code, body := httpGet(t, srv, "/bundle")
	if code != http.StatusNotFound {
		t.Fatalf("/bundle unwired: %d, want 404", code)
	}
	jsonError(t, body)

	reg.SetBundleFunc(func() (string, error) { return "out/bundle-0000", nil })
	code, body = httpGet(t, srv, "/bundle")
	if code != http.StatusOK {
		t.Fatalf("/bundle: %d", code)
	}
	var m map[string]string
	if err := json.Unmarshal([]byte(body), &m); err != nil {
		t.Fatal(err)
	}
	if m["bundle"] != "out/bundle-0000" {
		t.Fatalf("/bundle body = %v", m)
	}

	reg.SetBundleFunc(func() (string, error) { return "", errors.New("disk full") })
	code, body = httpGet(t, srv, "/bundle")
	if code != http.StatusInternalServerError {
		t.Fatalf("/bundle failing writer: %d, want 500", code)
	}
	if msg := jsonError(t, body); !strings.Contains(msg, "disk full") {
		t.Fatalf("/bundle error = %q", msg)
	}
}

func TestServeBindsAndShutsDown(t *testing.T) {
	reg := NewRegistry()
	srv, addr, err := reg.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if addr == "" || !strings.Contains(addr, ":") {
		t.Fatalf("addr = %q", addr)
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}
