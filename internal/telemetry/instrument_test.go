package telemetry

import (
	"testing"

	"stochstream/internal/dist"
	"stochstream/internal/join"
	"stochstream/internal/policy"
	"stochstream/internal/process"
	"stochstream/internal/stats"
)

func testProcs() [2]process.Process {
	return [2]process.Process{
		&process.LinearTrend{Slope: 1, Intercept: -1, Noise: dist.BoundedNormal(1, 10)},
		&process.LinearTrend{Slope: 1, Intercept: 0, Noise: dist.BoundedNormal(2, 15)},
	}
}

func testStreams(n int, seed uint64) ([]int, []int) {
	procs := testProcs()
	return procs[0].Generate(stats.NewRNG(seed), n), procs[1].Generate(stats.NewRNG(seed+1), n)
}

func newHEEB() join.Policy {
	return policy.NewHEEB(policy.HEEBOptions{Mode: policy.HEEBDirect, LifetimeEstimate: 3})
}

func TestInstrumentPolicyIdempotent(t *testing.T) {
	reg := NewRegistry()
	p := InstrumentPolicy(newHEEB(), reg)
	if InstrumentPolicy(p, reg) != p {
		t.Fatal("double wrapping must be a no-op")
	}
}

type eagerStub struct{ join.Policy }

func (eagerStub) EagerEvict() {}

func TestInstrumentPolicyPreservesEagerMarker(t *testing.T) {
	reg := NewRegistry()
	plain := InstrumentPolicy(newHEEB(), reg)
	if _, eager := plain.(join.EagerEvictor); eager {
		t.Fatal("plain policy must not gain the eager marker")
	}
	wrapped := InstrumentPolicy(eagerStub{newHEEB()}, reg)
	if _, eager := wrapped.(join.EagerEvictor); !eager {
		t.Fatal("eager marker lost by wrapping")
	}
	if InstrumentPolicy(wrapped, reg) != wrapped {
		t.Fatal("double wrapping of eager policy must be a no-op")
	}
}

func TestInstrumentedPolicyRecordsMetricsAndTrace(t *testing.T) {
	reg := NewRegistry()
	ip := &InstrumentedPolicy{Inner: newHEEB(), Reg: reg, TraceEvery: 1}
	r, s := testStreams(200, 3)
	res := join.Run(r, s, ip, join.Config{CacheSize: 5, Warmup: 0, Procs: testProcs()}, stats.NewRNG(1))
	if res.Evictions == 0 {
		t.Fatal("run produced no evictions; test is vacuous")
	}

	snap := reg.Snapshot()
	decisions := snap.Counters[`policy_decisions_total{policy="HEEB"}`]
	evictions := snap.Counters[`policy_evictions_total{policy="HEEB"}`]
	if decisions == 0 {
		t.Fatal("no decisions counted")
	}
	if int(evictions) != res.Evictions {
		t.Fatalf("evictions counter %d != simulator's %d", evictions, res.Evictions)
	}
	lat := snap.Histograms[`policy_evict_latency_ns{policy="HEEB"}`]
	if lat.Count != decisions {
		t.Fatalf("latency observations %d != decisions %d", lat.Count, decisions)
	}
	// TraceEvery=1: every decision recorded (up to ring capacity).
	if got := reg.Trace().Total(); got != uint64(decisions) {
		t.Fatalf("trace total %d != decisions %d", got, decisions)
	}
	recs := reg.Trace().Records()
	if len(recs) == 0 {
		t.Fatal("no trace records")
	}
	rec := recs[len(recs)-1]
	if rec.Policy != "HEEB" || rec.Need < 1 || len(rec.Candidates) == 0 {
		t.Fatalf("record = %+v", rec)
	}
	evicted, scored := 0, 0
	for _, c := range rec.Candidates {
		if c.Evicted {
			evicted++
		}
		if c.Score != 0 {
			scored++
		}
	}
	if evicted != rec.Need {
		t.Fatalf("record marks %d evicted, need %d", evicted, rec.Need)
	}
	if scored == 0 {
		t.Fatal("no candidate carries a HEEB score")
	}
	// Scoring latency was measured too.
	if snap.Histograms[`policy_score_latency_ns{policy="HEEB"}`].Count == 0 {
		t.Fatal("score latency not recorded")
	}
}

func TestTraceSampling(t *testing.T) {
	reg := NewRegistry()
	ip := &InstrumentedPolicy{Inner: newHEEB(), Reg: reg, TraceEvery: 10}
	r, s := testStreams(150, 5)
	join.Run(r, s, ip, join.Config{CacheSize: 4, Warmup: 0, Procs: testProcs()}, stats.NewRNG(1))
	decisions := reg.Snapshot().Counters[`policy_decisions_total{policy="HEEB"}`]
	want := (decisions + 9) / 10 // decisions 0, 10, 20, ... are recorded
	if got := reg.Trace().Total(); got != uint64(want) {
		t.Fatalf("trace total %d, want %d of %d decisions", got, want, decisions)
	}

	// Negative TraceEvery disables tracing entirely.
	reg2 := NewRegistry()
	ip2 := &InstrumentedPolicy{Inner: newHEEB(), Reg: reg2, TraceEvery: -1}
	join.Run(r, s, ip2, join.Config{CacheSize: 4, Warmup: 0, Procs: testProcs()}, stats.NewRNG(1))
	if got := reg2.Trace().Total(); got != 0 {
		t.Fatalf("disabled trace recorded %d", got)
	}
}

func TestJoinObserverInstrumentsRuns(t *testing.T) {
	reg := NewRegistry()
	join.SetObserver(NewJoinObserver(reg))
	defer join.SetObserver(nil)

	n := 120
	r, s := testStreams(n, 7)
	res := join.Run(r, s, newHEEB(), join.Config{CacheSize: 5, Warmup: 0, Procs: testProcs()}, stats.NewRNG(1))

	snap := reg.Snapshot()
	if got := snap.Counters["join_steps_total"]; got != int64(n) {
		t.Fatalf("steps = %d, want %d", got, n)
	}
	if got := snap.Counters["join_results_total"]; got != int64(res.TotalJoins) {
		t.Fatalf("results = %d, want %d", got, res.TotalJoins)
	}
	if got := snap.Counters["join_evictions_total"]; got != int64(res.Evictions) {
		t.Fatalf("evictions = %d, want %d", got, res.Evictions)
	}
	if got := snap.Histograms["join_step_latency_ns"].Count; got != int64(n) {
		t.Fatalf("step latency observations = %d, want %d", got, n)
	}
	// The observer wraps the policy, so labeled policy metrics appear too.
	if snap.Counters[`policy_decisions_total{policy="HEEB"}`] == 0 {
		t.Fatal("observer did not wrap the policy")
	}
}

func TestEnableDisableGlobal(t *testing.T) {
	reg := EnableGlobal()
	defer DisableGlobal()
	if reg != Default() {
		t.Fatal("EnableGlobal must return the default registry")
	}
	if !Enabled() {
		t.Fatal("EnableGlobal must flip the enabled flag")
	}
	before := reg.Snapshot().Counters["join_steps_total"]
	r, s := testStreams(50, 11)
	join.Run(r, s, newHEEB(), join.Config{CacheSize: 4, Warmup: 0, Procs: testProcs()}, stats.NewRNG(1))
	after := reg.Snapshot().Counters["join_steps_total"]
	if after-before != 50 {
		t.Fatalf("global observer counted %d steps, want 50", after-before)
	}
	// Solver gauges are registered (zero or more, but present).
	if _, ok := reg.Snapshot().Gauges["mincostflow_solves_total"]; !ok {
		t.Fatal("min-cost-flow gauges not registered")
	}

	DisableGlobal()
	if Enabled() {
		t.Fatal("DisableGlobal must clear the enabled flag")
	}
	mid := reg.Snapshot().Counters["join_steps_total"]
	join.Run(r, s, newHEEB(), join.Config{CacheSize: 4, Warmup: 0, Procs: testProcs()}, stats.NewRNG(1))
	if got := reg.Snapshot().Counters["join_steps_total"]; got != mid {
		t.Fatalf("observer still active after DisableGlobal (%d != %d)", got, mid)
	}
}

func TestFlowExpectScoreCandidates(t *testing.T) {
	var _ CandidateScorer = &policy.FlowExpect{}
	var _ CandidateScorer = &policy.HEEB{}

	fe := &policy.FlowExpect{Lookahead: 3}
	cfg := join.Config{CacheSize: 3, Warmup: 0, Procs: testProcs()}
	fe.Reset(cfg, stats.NewRNG(1))
	hists := [2]*process.History{process.NewHistory(), process.NewHistory()}
	r, s := testStreams(20, 13)
	for i := 0; i < 20; i++ {
		hists[0].Append(r[i])
		hists[1].Append(s[i])
	}
	st := &join.State{Time: 19, Hists: hists, Config: cfg, RNG: stats.NewRNG(2)}
	cands := []join.Tuple{
		{ID: 0, Value: r[19], Stream: 0, Arrived: 19},
		{ID: 1, Value: s[19], Stream: 1, Arrived: 19},
		{ID: 2, Value: -999, Stream: 0, Arrived: 10}, // impossible value
	}
	scores := fe.ScoreCandidates(st, cands)
	if len(scores) != 3 {
		t.Fatalf("scores = %v", scores)
	}
	if scores[2] != 0 {
		t.Fatalf("impossible value scored %g, want 0", scores[2])
	}
	for _, sc := range scores {
		if sc < 0 || sc > 3 {
			t.Fatalf("score %g outside [0, lookahead]", sc)
		}
	}
}
