package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("x_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if reg.Counter("x_total") != c {
		t.Fatal("Counter must return the same handle for the same name")
	}

	g := reg.Gauge("x_gauge")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %g, want 1.5", got)
	}
	if reg.Gauge("x_gauge") != g {
		t.Fatal("Gauge must return the same handle for the same name")
	}
}

func TestGaugeFuncEvaluatedAtSnapshot(t *testing.T) {
	reg := NewRegistry()
	v := 1.0
	reg.GaugeFunc("derived", func() float64 { return v })
	if got := reg.Snapshot().Gauges["derived"]; got != 1 {
		t.Fatalf("first snapshot = %g", got)
	}
	v = 7
	if got := reg.Snapshot().Gauges["derived"]; got != 7 {
		t.Fatalf("snapshot must re-evaluate the func: got %g, want 7", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram([]float64{10, 20, 30})
	// 10 observations uniformly into the first bucket, 10 into the second.
	for i := 0; i < 10; i++ {
		h.Observe(5)
		h.Observe(15)
	}
	s := h.Snapshot()
	if s.Count != 20 {
		t.Fatalf("count = %d", s.Count)
	}
	if math.Abs(s.Sum-(10*5+10*15)) > 1e-9 {
		t.Fatalf("sum = %g", s.Sum)
	}
	// The median rank (10) sits exactly at the first bucket's upper bound.
	if got := s.Quantile(0.5); math.Abs(got-10) > 1e-9 {
		t.Fatalf("p50 = %g, want 10", got)
	}
	// p90 → rank 18, 8/10 of the way through bucket (10,20].
	if got := s.Quantile(0.9); math.Abs(got-18) > 1e-9 {
		t.Fatalf("p90 = %g, want 18", got)
	}
	if s.P50 != s.Quantile(0.5) || s.P99 != s.Quantile(0.99) {
		t.Fatal("snapshot quantile fields must match Quantile")
	}
}

func TestHistogramEmptyAndOverflow(t *testing.T) {
	h := NewHistogram([]float64{10})
	if got := h.Snapshot().Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %g, want 0", got)
	}
	h.Observe(1e6) // lands in the +Inf bucket
	s := h.Snapshot()
	if s.Counts[len(s.Counts)-1] != 1 {
		t.Fatalf("overflow bucket counts = %v", s.Counts)
	}
	// +Inf bucket extrapolates past the last bound rather than returning 0.
	if got := s.Quantile(0.99); got <= 10 {
		t.Fatalf("overflow quantile = %g, want > last bound", got)
	}
}

func TestHistogramDefaultBoundsCoverLatencies(t *testing.T) {
	h := NewHistogram(nil)
	for _, ns := range []float64{50, 1e3, 1e6, 1e9, 1e11} {
		h.Observe(ns)
	}
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d", s.Count)
	}
	var sum int64
	for _, c := range s.Counts {
		sum += c
	}
	if sum != s.Count {
		t.Fatalf("bucket sum %d != count %d", sum, s.Count)
	}
}

func TestTraceRingWraparound(t *testing.T) {
	tr := NewDecisionTrace(3)
	for i := 0; i < 5; i++ {
		tr.Record(DecisionRecord{Step: i})
	}
	recs := tr.Records()
	if len(recs) != 3 {
		t.Fatalf("retained = %d, want 3", len(recs))
	}
	for i, want := range []int{2, 3, 4} {
		if recs[i].Step != want {
			t.Fatalf("records = %v, want steps 2,3,4 oldest-first", recs)
		}
	}
	last := tr.Last(2)
	if len(last) != 2 || last[0].Step != 3 || last[1].Step != 4 {
		t.Fatalf("last(2) = %v", last)
	}
	if got := tr.Total(); got != 5 {
		t.Fatalf("total = %d, want 5", got)
	}
	// n larger than retained returns everything.
	if got := len(tr.Last(100)); got != 3 {
		t.Fatalf("last(100) = %d records", got)
	}
}

func TestWritePrometheus(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(`evictions_total{policy="HEEB"}`).Add(3)
	reg.Gauge("cache_len").Set(8)
	h := reg.HistogramWith("lat_ns", []float64{10, 20})
	h.Observe(5)
	h.Observe(15)
	h.Observe(99)

	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		"# TYPE evictions_total counter",
		`evictions_total{policy="HEEB"} 3`,
		"# TYPE cache_len gauge",
		"cache_len 8",
		"# TYPE lat_ns histogram",
		`lat_ns_bucket{le="10"} 1`,
		`lat_ns_bucket{le="20"} 2`,
		`lat_ns_bucket{le="+Inf"} 3`,
		"lat_ns_sum 119",
		"lat_ns_count 3",
		"lat_ns_p50",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestWritePrometheusElidesEmptyInteriorBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat_ns") // default buckets, 81 of them
	h.Observe(150)
	h.Observe(5e8)
	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	lines := 0
	for _, l := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(l, "lat_ns_bucket") {
			lines++
		}
	}
	// Two hit buckets plus the first and +Inf buckets at most; far fewer than 81.
	if lines > 6 {
		t.Fatalf("%d bucket lines emitted, empties should be elided", lines)
	}
	// The cumulative count at +Inf must still be exact.
	if !strings.Contains(buf.String(), `lat_ns_bucket{le="+Inf"} 2`) {
		t.Fatalf("cumulative +Inf wrong:\n%s", buf.String())
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a_total").Inc()
	reg.Histogram("h_ns").Observe(1234)
	reg.Trace().Record(DecisionRecord{Step: 7, Policy: "HEEB", Need: 1,
		Candidates: []TraceCandidate{{Key: 5, Stream: "R", Score: 0.25, Evicted: true}}})

	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if s.Counters["a_total"] != 1 || s.Histograms["h_ns"].Count != 1 {
		t.Fatalf("snapshot = %+v", s)
	}
	if len(s.Trace) != 1 || s.Trace[0].Candidates[0].Score != 0.25 {
		t.Fatalf("trace = %+v", s.Trace)
	}
}

func TestSplitJoinName(t *testing.T) {
	base, labels := splitName(`x_total{policy="HEEB"}`)
	if base != "x_total" || labels != `policy="HEEB"` {
		t.Fatalf("split = %q, %q", base, labels)
	}
	if b, l := splitName("plain"); b != "plain" || l != "" {
		t.Fatalf("plain split = %q, %q", b, l)
	}
	if got := joinName("x", `a="b"`); got != `x{a="b"}` {
		t.Fatalf("joinName = %q", got)
	}
	if got := joinLabels("", `le="5"`); got != `{le="5"}` {
		t.Fatalf("joinLabels = %q", got)
	}
	if got := joinLabels("", ""); got != "" {
		t.Fatalf("empty joinLabels = %q", got)
	}
}

// TestRegistryConcurrent hammers handle resolution, metric writes, the trace
// and snapshots from many goroutines at once; run with -race.
func TestRegistryConcurrent(t *testing.T) {
	reg := NewRegistry()
	const workers, iters = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				reg.Counter("shared_total").Inc()
				reg.Counter(fmt.Sprintf("per_worker_%d_total", w)).Inc()
				reg.Gauge("shared_gauge").Add(1)
				reg.Histogram("shared_ns").Observe(float64(i%1000 + 100))
				if i%50 == 0 {
					reg.Trace().Record(DecisionRecord{Step: i, Policy: "T"})
					reg.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	s := reg.Snapshot()
	if got := s.Counters["shared_total"]; got != workers*iters {
		t.Fatalf("shared counter = %d, want %d", got, workers*iters)
	}
	if got := s.Gauges["shared_gauge"]; got != workers*iters {
		t.Fatalf("shared gauge = %g, want %d", got, workers*iters)
	}
	hs := s.Histograms["shared_ns"]
	if hs.Count != workers*iters {
		t.Fatalf("histogram count = %d, want %d", hs.Count, workers*iters)
	}
	var sum int64
	for _, c := range hs.Counts {
		sum += c
	}
	if sum != hs.Count {
		t.Fatalf("bucket sum %d != count %d", sum, hs.Count)
	}
}

// TestHistogramSnapshotConsistencyUnderWrites takes snapshots while writers
// run; every snapshot's bucket sum must equal its reported count and counts
// must be monotone across snapshots.
func TestHistogramSnapshotConsistencyUnderWrites(t *testing.T) {
	h := NewHistogram(nil)
	done := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
					h.Observe(float64(100 + i%100000))
				}
			}
		}()
	}
	var prev int64
	for i := 0; i < 200; i++ {
		s := h.Snapshot()
		var sum int64
		for _, c := range s.Counts {
			sum += c
		}
		if sum != s.Count {
			t.Fatalf("snapshot %d: bucket sum %d != count %d", i, sum, s.Count)
		}
		if s.Count < prev {
			t.Fatalf("snapshot %d: count went backwards (%d < %d)", i, s.Count, prev)
		}
		prev = s.Count
	}
	close(done)
	wg.Wait()
}
