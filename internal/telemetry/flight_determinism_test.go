package telemetry_test

import (
	"bytes"
	"testing"

	"stochstream/internal/engine"
	"stochstream/internal/flightrec"
	"stochstream/internal/telemetry"
)

// exportRun drives a seeded operator with a flight recorder on a logical
// clock and returns the two observability exports: the registry's JSON
// snapshot (the /metrics.json body) and the recorder's Chrome trace.
func exportRun(t *testing.T, seed uint64) (metricsJSON, chromeTrace []byte) {
	t.Helper()
	reg := telemetry.NewRegistry()
	rec := flightrec.New(flightrec.Options{
		Clock:       flightrec.LogicalClock(),
		SampleEvery: 4,
	})
	j, err := engine.NewJoin(engine.Config{
		CacheSize: 4,
		Window:    16,
		Seed:      seed,
		Telemetry: reg,
		Flight:    rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		j.Step(engine.Tuple{Key: i % 7}, engine.Tuple{Key: (i * 3) % 11})
	}
	var mj, ct bytes.Buffer
	if err := reg.WriteJSON(&mj); err != nil {
		t.Fatal(err)
	}
	if err := rec.WriteChromeTrace(&ct); err != nil {
		t.Fatal(err)
	}
	return mj.Bytes(), ct.Bytes()
}

// TestFlightExportByteIdentical extends the export-determinism contract to
// the flight-recorder surfaces: two operators built from the same seed, each
// with its own registry and logical-clock recorder, must export byte-identical
// /metrics.json snapshots AND byte-identical Chrome traces. Wall time leaking
// into span timestamps, latency histograms, or the decision trace would break
// this immediately.
func TestFlightExportByteIdentical(t *testing.T) {
	mjA, ctA := exportRun(t, 42)
	mjB, ctB := exportRun(t, 42)

	if len(mjA) == 0 || len(ctA) == 0 {
		t.Fatal("empty export")
	}
	if !bytes.Equal(mjA, mjB) {
		t.Fatalf("metrics.json differs between identical seeded runs:\nA:\n%s\nB:\n%s", mjA, mjB)
	}
	if !bytes.Equal(ctA, ctB) {
		t.Fatalf("Chrome trace differs between identical seeded runs:\nA:\n%s\nB:\n%s", ctA, ctB)
	}

	// A different seed must actually change the exports — otherwise the
	// byte-identity assertions above would be vacuous.
	mjC, _ := exportRun(t, 43)
	if bytes.Equal(mjA, mjC) {
		t.Fatal("metrics.json identical across different seeds; determinism test is vacuous")
	}
}
