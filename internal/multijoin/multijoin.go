// Package multijoin extends the joining problem to multiple binary equijoin
// queries over multiple streams sharing one cache — the generalization the
// paper's appendix sketches for Theorem 2: "in the case of multiple binary
// joins, this expected benefit is a summary of each expected benefit of the
// binary join with one partner stream". A tuple's HEEB score is accordingly
// the sum of its per-partner scores.
package multijoin

import (
	"fmt"

	"stochstream/internal/core"
	"stochstream/internal/process"
	"stochstream/internal/stats"
)

// Edge is one binary equijoin between two streams, identified by index.
type Edge struct{ A, B int }

// Config describes a multi-join simulation.
type Config struct {
	// Procs holds one stream model per stream; its length fixes the stream
	// count. Model-free policies may leave entries nil.
	Procs []process.Process
	// Edges lists the binary joins of the query workload.
	Edges []Edge
	// CacheSize is the shared cache budget.
	CacheSize int
	// Warmup excludes early results from Result.Joins (negative = 4×cache).
	Warmup int
	// Band generalizes each equijoin to a band join when > 0.
	Band int
}

// EffectiveWarmup resolves the warm-up period.
func (c Config) EffectiveWarmup() int {
	if c.Warmup >= 0 {
		return c.Warmup
	}
	return 4 * c.CacheSize
}

// partners returns, per stream, the set of streams it joins with. A pair
// listed twice (or as a self-join) is rejected.
func (c Config) partners() ([][]int, error) {
	n := len(c.Procs)
	seen := map[[2]int]bool{}
	out := make([][]int, n)
	for _, e := range c.Edges {
		if e.A < 0 || e.A >= n || e.B < 0 || e.B >= n {
			return nil, fmt.Errorf("multijoin: edge (%d,%d) outside streams [0,%d)", e.A, e.B, n)
		}
		if e.A == e.B {
			return nil, fmt.Errorf("multijoin: self-join (%d,%d) not supported", e.A, e.B)
		}
		k := [2]int{min(e.A, e.B), max(e.A, e.B)}
		if seen[k] {
			return nil, fmt.Errorf("multijoin: duplicate edge (%d,%d)", e.A, e.B)
		}
		seen[k] = true
		out[e.A] = append(out[e.A], e.B)
		out[e.B] = append(out[e.B], e.A)
	}
	return out, nil
}

// Tuple is a cached tuple in the multi-join setting.
type Tuple struct {
	ID      int
	Value   int
	Stream  int
	Arrived int
}

// State is the policy's view at decision time.
type State struct {
	Time     int
	Hists    []*process.History
	Config   Config
	Partners [][]int
	RNG      *stats.RNG
}

// Policy decides evictions for the shared cache.
type Policy interface {
	// Name identifies the policy.
	Name() string
	// Reset prepares for a run.
	Reset(cfg Config, rng *stats.RNG)
	// Evict returns indices into candidates of exactly n tuples to discard.
	Evict(st *State, candidates []Tuple, n int) []int
}

// Result summarizes a run.
type Result struct {
	// Joins counts result tuples after warm-up, across all edges.
	Joins int
	// TotalJoins counts everything.
	TotalJoins int
	// PerEdge[i] counts post-warm-up results of Edges[i].
	PerEdge []int
	// Occupancy[s] is the mean post-warm-up fraction of the cache held by
	// stream s.
	Occupancy []float64
}

// Run simulates the multi-join workload over the given per-stream value
// sequences (streams[s][t] arrives on stream s at time t).
func Run(streams [][]int, p Policy, cfg Config, rng *stats.RNG) (Result, error) {
	n := len(cfg.Procs)
	if len(streams) != n {
		return Result{}, fmt.Errorf("multijoin: %d streams for %d models", len(streams), n)
	}
	if n < 2 {
		return Result{}, fmt.Errorf("multijoin: need at least 2 streams")
	}
	length := len(streams[0])
	for s := 1; s < n; s++ {
		if len(streams[s]) != length {
			return Result{}, fmt.Errorf("multijoin: stream %d has length %d, want %d", s, len(streams[s]), length)
		}
	}
	if cfg.CacheSize < 1 {
		return Result{}, fmt.Errorf("multijoin: cache size must be >= 1")
	}
	partners, err := cfg.partners()
	if err != nil {
		return Result{}, err
	}
	edgeIndex := map[[2]int]int{}
	for i, e := range cfg.Edges {
		edgeIndex[[2]int{min(e.A, e.B), max(e.A, e.B)}] = i
	}

	p.Reset(cfg, rng)
	warmup := cfg.EffectiveWarmup()
	hists := make([]*process.History, n)
	for s := range hists {
		hists[s] = process.NewHistory()
	}
	st := &State{Hists: hists, Config: cfg, Partners: partners, RNG: rng}
	var cache []Tuple
	res := Result{PerEdge: make([]int, len(cfg.Edges)), Occupancy: make([]float64, n)}
	occupancySamples := 0
	nextID := 0

	matches := func(a, b int) bool {
		if a == process.NoValue || b == process.NoValue {
			return false
		}
		d := a - b
		if d < 0 {
			d = -d
		}
		return d <= cfg.Band
	}

	for t := 0; t < length; t++ {
		arrivals := make([]Tuple, n)
		for s := 0; s < n; s++ {
			arrivals[s] = Tuple{ID: nextID, Value: streams[s][t], Stream: s, Arrived: t}
			nextID++
			hists[s].Append(streams[s][t])
		}
		st.Time = t

		// Arrivals join cached tuples of their partner streams.
		for _, a := range arrivals {
			for _, c := range cache {
				isPartner := false
				for _, ps := range partners[a.Stream] {
					if ps == c.Stream {
						isPartner = true
						break
					}
				}
				if isPartner && matches(a.Value, c.Value) {
					res.TotalJoins++
					if t >= warmup {
						res.Joins++
						ei := edgeIndex[[2]int{min(a.Stream, c.Stream), max(a.Stream, c.Stream)}]
						res.PerEdge[ei]++
					}
				}
			}
		}

		// Replacement: cache plus all arrivals.
		cands := append(append(make([]Tuple, 0, len(cache)+n), cache...), arrivals...)
		need := len(cands) - cfg.CacheSize
		if need <= 0 {
			cache = cands
		} else {
			evict := p.Evict(st, cands, need)
			if len(evict) != need {
				return Result{}, fmt.Errorf("multijoin: policy %s returned %d evictions, need %d", p.Name(), len(evict), need)
			}
			drop := make(map[int]bool, need)
			for _, i := range evict {
				if i < 0 || i >= len(cands) || drop[i] {
					return Result{}, fmt.Errorf("multijoin: policy %s returned invalid eviction %d", p.Name(), i)
				}
				drop[i] = true
			}
			cache = cache[:0]
			for i, c := range cands {
				if !drop[i] {
					cache = append(cache, c)
				}
			}
		}

		if t >= warmup && len(cache) > 0 {
			occupancySamples++
			for _, c := range cache {
				res.Occupancy[c.Stream] += 1 / float64(len(cache))
			}
		}
	}
	if occupancySamples > 0 {
		for s := range res.Occupancy {
			res.Occupancy[s] /= float64(occupancySamples)
		}
	}
	return res, nil
}

// HEEB scores each candidate as the sum of its per-partner HEEB scores (the
// appendix's multi-join benefit) and discards the lowest.
type HEEB struct {
	// Alpha is Lexp's α (0 = derive from the cache size).
	Alpha float64
	// FallbackHorizon bounds sums for non-decaying forecasts (0 = 1000).
	FallbackHorizon int

	alpha float64
}

// Name implements Policy.
func (p *HEEB) Name() string { return "HEEB" }

// Reset implements Policy.
func (p *HEEB) Reset(cfg Config, _ *stats.RNG) {
	p.alpha = p.Alpha
	if p.alpha == 0 {
		p.alpha = stats.AlphaForLifetime(float64(cfg.CacheSize))
	}
	if p.FallbackHorizon == 0 {
		p.FallbackHorizon = 1000
	}
}

// Score returns the summed per-partner HEEB score of one tuple.
func (p *HEEB) Score(st *State, tp Tuple) float64 {
	l := core.LExp{Alpha: p.alpha}
	var sum float64
	for _, partner := range st.Partners[tp.Stream] {
		sum += core.BandJoinH(st.Config.Procs[partner], st.Hists[partner], tp.Value, st.Config.Band, l, p.FallbackHorizon)
	}
	return sum
}

// Evict implements Policy.
func (p *HEEB) Evict(st *State, cands []Tuple, n int) []int {
	scores := make([]float64, len(cands))
	for i, c := range cands {
		scores[i] = p.Score(st, c)
	}
	return lowestN(scores, cands, n)
}

// Rand evicts uniformly at random.
type Rand struct{ rng *stats.RNG }

// Name implements Policy.
func (p *Rand) Name() string { return "RAND" }

// Reset implements Policy.
func (p *Rand) Reset(_ Config, rng *stats.RNG) { p.rng = rng }

// Evict implements Policy.
func (p *Rand) Evict(st *State, cands []Tuple, n int) []int {
	perm := p.rng.Perm(len(cands))
	return perm[:n]
}

// Prob evicts the tuple whose value is least frequent across its partners'
// histories — the PROB heuristic summed over the join graph.
type Prob struct {
	counts   []map[int]int
	consumed []int
}

// Name implements Policy.
func (p *Prob) Name() string { return "PROB" }

// Reset implements Policy.
func (p *Prob) Reset(cfg Config, _ *stats.RNG) {
	p.counts = make([]map[int]int, len(cfg.Procs))
	p.consumed = make([]int, len(cfg.Procs))
	for i := range p.counts {
		p.counts[i] = map[int]int{}
	}
}

// Evict implements Policy.
func (p *Prob) Evict(st *State, cands []Tuple, n int) []int {
	for s := range p.counts {
		h := st.Hists[s]
		for ; p.consumed[s] < h.Len(); p.consumed[s]++ {
			p.counts[s][h.At(p.consumed[s])]++
		}
	}
	scores := make([]float64, len(cands))
	for i, c := range cands {
		var f float64
		for _, partner := range st.Partners[c.Stream] {
			total := st.Hists[partner].Len()
			if total == 0 {
				continue
			}
			count := 0
			for v := c.Value - st.Config.Band; v <= c.Value+st.Config.Band; v++ {
				count += p.counts[partner][v]
			}
			f += float64(count) / float64(total)
		}
		scores[i] = f
	}
	return lowestN(scores, cands, n)
}

func lowestN(scores []float64, cands []Tuple, n int) []int {
	idx := make([]int, len(cands))
	for i := range idx {
		idx[i] = i
	}
	// Insertion-sort by (score, ID); candidate counts are small.
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0; j-- {
			a, b := idx[j], idx[j-1]
			//lint:ignore floateq deterministic (score, ID) tie-break; scores are bitwise-reproducible kernel outputs
			if scores[a] < scores[b] || (scores[a] == scores[b] && cands[a].ID < cands[b].ID) {
				idx[j], idx[j-1] = idx[j-1], idx[j]
			} else {
				break
			}
		}
	}
	return idx[:n]
}
