package multijoin

import (
	"math"
	"testing"

	"stochstream/internal/core"
	"stochstream/internal/dist"
	"stochstream/internal/join"
	"stochstream/internal/process"
	"stochstream/internal/stats"
)

func twoStreamConfig(cache int) Config {
	return Config{
		Procs: []process.Process{
			&process.LinearTrend{Slope: 1, Intercept: -1, Noise: dist.BoundedNormal(1, 10)},
			&process.LinearTrend{Slope: 1, Intercept: 0, Noise: dist.BoundedNormal(2, 15)},
		},
		Edges:     []Edge{{A: 0, B: 1}},
		CacheSize: cache,
		Warmup:    -1,
	}
}

// fifo evicts oldest first, deterministically, in both simulators.
type fifo struct{}

func (fifo) Name() string             { return "fifo" }
func (fifo) Reset(Config, *stats.RNG) {}
func (fifo) Evict(_ *State, cands []Tuple, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

type binFifo struct{}

func (binFifo) Name() string                  { return "fifo" }
func (binFifo) Reset(join.Config, *stats.RNG) {}
func (binFifo) Evict(_ *join.State, cands []join.Tuple, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// With two streams and one edge, the multi-join simulator must agree exactly
// with the binary join simulator under the same deterministic policy.
func TestTwoStreamReducesToBinaryJoin(t *testing.T) {
	cfg := twoStreamConfig(8)
	rng := stats.NewRNG(3)
	r := cfg.Procs[0].Generate(rng.Split(), 800)
	s := cfg.Procs[1].Generate(rng.Split(), 800)

	multi, err := Run([][]int{r, s}, fifo{}, cfg, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	binCfg := join.Config{CacheSize: 8, Warmup: -1}
	bin := join.Run(r, s, binFifo{}, binCfg, stats.NewRNG(1))
	if multi.TotalJoins != bin.TotalJoins || multi.Joins != bin.Joins {
		t.Fatalf("multi (%d/%d) != binary (%d/%d)", multi.TotalJoins, multi.Joins, bin.TotalJoins, bin.Joins)
	}
	if multi.PerEdge[0] != multi.Joins {
		t.Fatalf("per-edge accounting broken: %v vs %d", multi.PerEdge, multi.Joins)
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := twoStreamConfig(4)
	rng := stats.NewRNG(1)
	r := cfg.Procs[0].Generate(rng.Split(), 10)
	s := cfg.Procs[1].Generate(rng.Split(), 10)

	bad := cfg
	bad.Edges = []Edge{{A: 0, B: 5}}
	if _, err := Run([][]int{r, s}, fifo{}, bad, stats.NewRNG(1)); err == nil {
		t.Fatal("out-of-range edge should error")
	}
	bad.Edges = []Edge{{A: 1, B: 1}}
	if _, err := Run([][]int{r, s}, fifo{}, bad, stats.NewRNG(1)); err == nil {
		t.Fatal("self-join should error")
	}
	bad.Edges = []Edge{{A: 0, B: 1}, {B: 0, A: 1}}
	if _, err := Run([][]int{r, s}, fifo{}, bad, stats.NewRNG(1)); err == nil {
		t.Fatal("duplicate edge should error")
	}
	bad = cfg
	bad.CacheSize = 0
	if _, err := Run([][]int{r, s}, fifo{}, bad, stats.NewRNG(1)); err == nil {
		t.Fatal("cache 0 should error")
	}
	if _, err := Run([][]int{r}, fifo{}, cfg, stats.NewRNG(1)); err == nil {
		t.Fatal("stream count mismatch should error")
	}
	if _, err := Run([][]int{r, s[:5]}, fifo{}, cfg, stats.NewRNG(1)); err == nil {
		t.Fatal("length mismatch should error")
	}
}

// Star topology: stream 0 joins both 1 and 2. Its tuples earn benefit from
// two partners, so HEEB should hold more stream-0 tuples than RAND does.
func starConfig(cache int) Config {
	mk := func(intercept int) process.Process {
		return &process.LinearTrend{Slope: 1, Intercept: intercept, Noise: dist.BoundedNormal(2, 12)}
	}
	return Config{
		Procs:     []process.Process{mk(0), mk(0), mk(0)},
		Edges:     []Edge{{A: 0, B: 1}, {A: 0, B: 2}},
		CacheSize: cache,
		Warmup:    -1,
	}
}

func TestStarTopologyHEEBFavorsHub(t *testing.T) {
	cfg := starConfig(9)
	rng := stats.NewRNG(5)
	streams := make([][]int, 3)
	for s := range streams {
		streams[s] = cfg.Procs[s].Generate(rng.Split(), 2500)
	}
	heeb, err := Run(streams, &HEEB{Alpha: stats.AlphaForLifetime(4)}, cfg, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	rand, err := Run(streams, &Rand{}, cfg, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if heeb.Joins <= rand.Joins {
		t.Fatalf("HEEB %d <= RAND %d on star topology", heeb.Joins, rand.Joins)
	}
	// The hub stream participates in both edges, so HEEB allocates it more
	// cache than either spoke.
	if !(heeb.Occupancy[0] > heeb.Occupancy[1]) || !(heeb.Occupancy[0] > heeb.Occupancy[2]) {
		t.Fatalf("hub not favored: occupancy %v", heeb.Occupancy)
	}
	// RAND has no such preference: its occupancy is near-uniform.
	if math.Abs(rand.Occupancy[0]-1.0/3) > 0.08 {
		t.Fatalf("RAND occupancy skewed: %v", rand.Occupancy)
	}
}

// The appendix's scoring rule: a hub tuple's score equals the sum of its
// per-partner binary scores.
func TestHEEBScoreIsSumOverPartners(t *testing.T) {
	cfg := starConfig(5)
	h := &HEEB{Alpha: 4}
	h.Reset(cfg, stats.NewRNG(1))
	partners, err := cfg.partners()
	if err != nil {
		t.Fatal(err)
	}
	hists := []*process.History{
		process.NewHistory(make([]int, 51)...),
		process.NewHistory(make([]int, 51)...),
		process.NewHistory(make([]int, 51)...),
	}
	st := &State{Time: 50, Hists: hists, Config: cfg, Partners: partners}
	tp := Tuple{Value: 52, Stream: 0, Arrived: 50}
	got := h.Score(st, tp)
	l := core.LExp{Alpha: 4}
	want := core.JoinH(cfg.Procs[1], hists[1], 52, l, 1000) +
		core.JoinH(cfg.Procs[2], hists[2], 52, l, 1000)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("score %v != sum of partner scores %v", got, want)
	}
	// A spoke tuple only earns from the hub.
	spoke := Tuple{Value: 52, Stream: 1, Arrived: 50}
	gotSpoke := h.Score(st, spoke)
	wantSpoke := core.JoinH(cfg.Procs[0], hists[0], 52, l, 1000)
	if math.Abs(gotSpoke-wantSpoke) > 1e-12 {
		t.Fatalf("spoke score %v != %v", gotSpoke, wantSpoke)
	}
	if got <= gotSpoke {
		t.Fatal("hub tuple should outscore spoke tuple at the same value")
	}
}

func TestChainTopologyPerEdgeCounts(t *testing.T) {
	// 0—1—2 chain: middle stream joins both ends.
	mk := func() process.Process {
		return &process.Stationary{P: dist.NewUniform(0, 4)}
	}
	cfg := Config{
		Procs:     []process.Process{mk(), mk(), mk()},
		Edges:     []Edge{{A: 0, B: 1}, {A: 1, B: 2}},
		CacheSize: 6,
		Warmup:    0,
	}
	rng := stats.NewRNG(7)
	streams := make([][]int, 3)
	for s := range streams {
		streams[s] = cfg.Procs[s].Generate(rng.Split(), 1500)
	}
	res, err := Run(streams, &HEEB{}, cfg, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Joins != res.PerEdge[0]+res.PerEdge[1] {
		t.Fatalf("per-edge sums %v != total %d", res.PerEdge, res.Joins)
	}
	if res.PerEdge[0] == 0 || res.PerEdge[1] == 0 {
		t.Fatalf("an edge produced nothing: %v", res.PerEdge)
	}
}

func TestMultiProbRunsAndScoresSensibly(t *testing.T) {
	cfg := twoStreamConfig(6)
	rng := stats.NewRNG(4)
	r := cfg.Procs[0].Generate(rng.Split(), 1200)
	s := cfg.Procs[1].Generate(rng.Split(), 1200)
	prob, err := Run([][]int{r, s}, &Prob{}, cfg, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	heeb, err := Run([][]int{r, s}, &HEEB{Alpha: stats.AlphaForLifetime(3)}, cfg, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	// Trend pathology: PROB discards fresh arrivals, HEEB must win.
	if heeb.Joins <= prob.Joins {
		t.Fatalf("HEEB %d <= PROB %d under a trend", heeb.Joins, prob.Joins)
	}
}

func TestInvalidEvictionsRejected(t *testing.T) {
	cfg := twoStreamConfig(2)
	rng := stats.NewRNG(1)
	r := cfg.Procs[0].Generate(rng.Split(), 20)
	s := cfg.Procs[1].Generate(rng.Split(), 20)
	if _, err := Run([][]int{r, s}, badPolicy{}, cfg, stats.NewRNG(1)); err == nil {
		t.Fatal("invalid eviction set should error")
	}
}

type badPolicy struct{}

func (badPolicy) Name() string                     { return "bad" }
func (badPolicy) Reset(Config, *stats.RNG)         {}
func (badPolicy) Evict(*State, []Tuple, int) []int { return nil }
