package faultinject

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"stochstream/internal/shardrt"
	"stochstream/internal/stats"
	"stochstream/internal/streamd"
	"stochstream/internal/streamd/client"
	"stochstream/internal/streamd/wire"
)

// Network chaos campaign: a real client drives a live daemon through a
// fault-injecting net.Conn whose per-operation decisions come from a seeded
// NetInjector — connection resets, truncated frames, stalled reads, and the
// duplicated-ingest-after-reconnect case a reset between a consumed batch
// and its acknowledgment manufactures. The contract under chaos: no panics,
// no untyped failures (every shed is wire.ErrOverloaded/ErrDraining and the
// client retries through it), replayed sequences dedup, and the accepted
// result stream is byte-identical to a fault-free direct runtime fed the
// same batch boundaries.

// faultConn wraps a TCP connection, consulting the injector before every
// socket operation. Resets close the underlying connection so both sides
// observe the failure, like a real RST.
type faultConn struct {
	net.Conn
	inj *NetInjector
}

func (f *faultConn) Write(p []byte) (int, error) {
	switch f.inj.NextWrite() {
	case NetReset:
		_ = f.Conn.Close()
		return 0, errors.New("faultinject: connection reset before write")
	case NetPartialFrame:
		if n := f.inj.Cut(len(p)); n > 0 {
			_, _ = f.Conn.Write(p[:n])
		}
		_ = f.Conn.Close()
		return 0, errors.New("faultinject: frame truncated mid-write")
	}
	return f.Conn.Write(p)
}

func (f *faultConn) Read(p []byte) (int, error) {
	switch f.inj.NextRead() {
	case NetReset:
		_ = f.Conn.Close()
		return 0, errors.New("faultinject: connection reset before read")
	case NetStall:
		time.Sleep(2 * time.Millisecond)
	}
	return f.Conn.Read(p)
}

// faultDialer dials the daemon and wraps the connection in the injector.
func faultDialer(inj *NetInjector) func(addr string) (net.Conn, error) {
	return func(addr string) (net.Conn, error) {
		nc, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		return &faultConn{Conn: nc, inj: inj}, nil
	}
}

func netChaosRuntime() shardrt.Config {
	return shardrt.Config{Shards: 4, TotalCache: 64, Seed: 42}
}

// netChaosSteps builds one deterministic batch with key collisions and
// payloads, so the differential covers pair content, not just counts.
func netChaosSteps(rng *stats.RNG, n int) []wire.Step {
	steps := make([]wire.Step, n)
	for i := range steps {
		steps[i] = wire.Step{
			RKey:     int64(rng.IntN(16)),
			SKey:     int64(rng.IntN(16)),
			RPayload: []byte{byte(i), 'r'},
			SPayload: []byte{byte(i), 's'},
		}
	}
	return steps
}

func netChaosOracleSteps(in []wire.Step) []shardrt.Step {
	out := make([]shardrt.Step, len(in))
	for i, ws := range in {
		out[i].R.Key = int(ws.RKey)
		out[i].S.Key = int(ws.SKey)
		out[i].R.Payload = ws.RPayload
		out[i].S.Payload = ws.SPayload
	}
	return out
}

func netChaosComparePairs(t *testing.T, batch int, got []wire.Pair, want []shardrt.Pair) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("batch %d: %d pairs, oracle %d", batch, len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		wr, _ := w.R.Payload.([]byte)
		ws, _ := w.S.Payload.([]byte)
		if g.RSeq != w.RSeq || g.SSeq != w.SSeq || int(g.RKey) != w.R.Key || int(g.SKey) != w.S.Key ||
			int(g.Shard) != w.Shard || g.SameStep != w.SameStep ||
			string(g.RPayload) != string(wr) || string(g.SPayload) != string(ws) {
			t.Fatalf("batch %d pair %d diverged from oracle: %+v vs %+v", batch, i, g, w)
		}
	}
}

// TestNetworkChaosDifferential runs one session through the fault campaign
// until every fault class has fired and at least one duplicated sequence
// has been deduped, comparing every batch's pairs against the fault-free
// oracle.
func TestNetworkChaosDifferential(t *testing.T) {
	srv, err := streamd.Start(streamd.Config{
		Runtime:    netChaosRuntime(),
		Listen:     "127.0.0.1:0",
		RetryAfter: time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer func() { _ = srv.Close() }()

	oracle, err := shardrt.New(netChaosRuntime())
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	defer func() { _, _ = oracle.Close() }()

	inj := NewNet(DefaultNetPlan(1234))
	cl, err := client.Dial(client.Options{
		Addr:        srv.Addr(),
		Session:     "netchaos",
		Seed:        5,
		MaxAttempts: 100,
		BaseBackoff: 200 * time.Microsecond,
		MaxBackoff:  5 * time.Millisecond,
		Dialer:      faultDialer(inj),
	})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer func() { _ = cl.Close() }()

	rng := stats.NewRNG(99)
	const maxBatches, batchLen = 400, 40
	done := func() bool {
		c := inj.NetCounts()
		dups := srv.Registry().Snapshot().Counters["streamd_dup_batches_total"]
		return c.WriteResets > 0 && c.PartialFrames > 0 && c.ReadResets > 0 && c.ReadStalls > 0 && dups > 0
	}
	batches := 0
	for ; batches < maxBatches; batches++ {
		steps := netChaosSteps(rng, batchLen)
		got, err := cl.Ingest(steps)
		if err != nil {
			t.Fatalf("batch %d: Ingest under chaos: %v", batches, err)
		}
		want, err := oracle.IngestBatch(netChaosOracleSteps(steps))
		if err != nil {
			t.Fatalf("batch %d: oracle IngestBatch: %v", batches, err)
		}
		netChaosComparePairs(t, batches, got, want)
		// A modest floor keeps the campaign meaningful even when faults
		// cluster early; past it, stop as soon as every class has fired.
		if batches >= 60 && done() {
			batches++
			break
		}
	}
	if !done() {
		t.Fatalf("campaign too tame after %d batches: %+v, dups=%d",
			batches, inj.NetCounts(), srv.Registry().Snapshot().Counters["streamd_dup_batches_total"])
	}
	if cl.Acked() != uint64(batches) {
		t.Fatalf("Acked = %d, want %d", cl.Acked(), batches)
	}

	snap := srv.Registry().Snapshot()
	// Every accepted batch was ingested exactly once: replayed sequences
	// were deduped, nothing was double-counted and nothing acked was lost.
	if got, want := snap.Counters["streamd_steps_total"], int64(batches*batchLen); got != want {
		t.Fatalf("steps_total = %d, want %d (dedup or loss failure)", got, want)
	}
	if snap.Counters["streamd_internal_errors_total"] != 0 {
		t.Fatalf("internal errors under chaos: %d", snap.Counters["streamd_internal_errors_total"])
	}
	t.Logf("campaign: %d batches, faults %+v, dup batches %d, slow sheds %d",
		batches, inj.NetCounts(), snap.Counters["streamd_dup_batches_total"], snap.Counters["streamd_shed_slow_total"])
}

// TestNetworkChaosConcurrent turns the same campaign loose with several
// sessions sharing one daemon whose ingest queue is a single slot, so
// admission pressure is constant. Every client must complete every batch —
// sheds surface only as typed overloads the retry loop absorbs — and the
// daemon's step counter must balance exactly: no duplicated ingest, no
// dropped-but-acked batch, across sessions and reconnects.
func TestNetworkChaosConcurrent(t *testing.T) {
	srv, err := streamd.Start(streamd.Config{
		Runtime:    netChaosRuntime(),
		Listen:     "127.0.0.1:0",
		QueueDepth: 1,
		RetryAfter: 200 * time.Microsecond,
	})
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer func() { _ = srv.Close() }()

	const clients, batchesPer, batchLen = 6, 30, 256
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			cl, err := client.Dial(client.Options{
				Addr:        srv.Addr(),
				Session:     "chaos-" + string(rune('a'+id)),
				Seed:        uint64(id),
				MaxAttempts: 200,
				BaseBackoff: 200 * time.Microsecond,
				MaxBackoff:  5 * time.Millisecond,
				Dialer:      faultDialer(NewNet(DefaultNetPlan(uint64(7000 + id)))),
			})
			if err != nil {
				t.Errorf("client %d: Dial: %v", id, err)
				return
			}
			defer func() { _ = cl.Close() }()
			rng := stats.NewRNG(uint64(500 + id))
			for b := 0; b < batchesPer; b++ {
				if _, err := cl.Ingest(netChaosSteps(rng, batchLen)); err != nil {
					t.Errorf("client %d batch %d: %v", id, b, err)
					return
				}
			}
			if cl.Acked() != batchesPer {
				t.Errorf("client %d: Acked = %d, want %d", id, cl.Acked(), batchesPer)
			}
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	snap := srv.Registry().Snapshot()
	if got, want := snap.Counters["streamd_steps_total"], int64(clients*batchesPer*batchLen); got != want {
		t.Fatalf("steps_total = %d, want %d (dedup or loss under concurrency)", got, want)
	}
	if snap.Counters["streamd_internal_errors_total"] != 0 {
		t.Fatalf("internal errors: %d", snap.Counters["streamd_internal_errors_total"])
	}
	t.Logf("concurrent campaign: queue sheds %d, dup batches %d, slow sheds %d",
		snap.Counters["streamd_shed_queue_total"], snap.Counters["streamd_dup_batches_total"],
		snap.Counters["streamd_shed_slow_total"])
}
