package faultinject

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"stochstream/internal/engine"
	"stochstream/internal/flightrec"
	"stochstream/internal/join"
	"stochstream/internal/policy"
	"stochstream/internal/process"
	"stochstream/internal/shardrt"
	"stochstream/internal/stats"
)

// Multi-shard chaos campaign: a seeded, skewed workload faulted at ingress
// drives a sharded runtime in which one shard's ladder is forced to degrade
// (its FlowExpect rung is starved of solver budget, so every decision falls
// through — the deterministic stand-in for the solver hook, which is
// process-global and unusable under concurrent shard workers). The campaign
// asserts the sharded fault-tolerance contract: no panics, runtime invariants
// after every batch, out-of-domain keys rejected atomically, a diagnostics
// bundle per downgraded step on the degraded shard, and a byte-identical
// differential replay.

const (
	shardChaosShards = 4
	shardChaosSteps  = 400
	shardChaosBatch  = 16
)

// shardChaosKeys builds the skewed key stream: most keys route to the hot
// shard (shard 0), the rest spread over a wider domain.
func shardChaosKeys(seed uint64, n int) [][2]int {
	var hot []int
	for k := 0; len(hot) < 6; k++ {
		if shardrt.ShardOf(k, shardChaosShards) == 0 {
			hot = append(hot, k)
		}
	}
	rng := stats.NewRNG(seed)
	keys := make([][2]int, n)
	for i := range keys {
		for side := 0; side < 2; side++ {
			if rng.Float64() < 0.7 {
				keys[i][side] = hot[rng.IntN(len(hot))]
			} else {
				keys[i][side] = rng.IntN(200)
			}
		}
	}
	return keys
}

type shardChaosResult struct {
	pairs     []shardrt.Pair
	metrics   shardrt.Metrics
	counts    Counts
	rejected  int
	fallbacks [][]uint64
}

func runShardChaos(t *testing.T, seed uint64, flightDir string) shardChaosResult {
	t.Helper()
	heeb := policy.HEEBOptions{Mode: policy.HEEBDirect, LifetimeEstimate: 4}
	rt, err := shardrt.New(shardrt.Config{
		Shards:     shardChaosShards,
		TotalCache: 32,
		Procs:      chaosProcs(),
		Seed:       seed,
		NewPolicy: func(shard int) join.Policy {
			budget := int64(50_000)
			if shard == 0 {
				budget = 1 // starve the solver: every decision downgrades
			}
			return policy.NewDefaultLadder(3, budget, heeb)
		},
		Telemetry:      true,
		FlightDir:      flightDir,
		RebalanceEvery: 5,
		MinBudget:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	keys := shardChaosKeys(seed+100, shardChaosSteps)
	inj := New(Plan{Seed: seed + 200, DupProb: 0.03, DropProb: 0.03, DelayProb: 0.03, CorruptProb: 0.02})
	valid := func(k int) bool {
		return k == process.NoValue || (k >= engine.MinKey && k <= engine.MaxKey)
	}

	res := shardChaosResult{}
	ingest := func(batch []shardrt.Step) {
		if len(batch) == 0 {
			return
		}
		pairs, err := rt.IngestBatch(batch)
		if err != nil {
			t.Fatalf("IngestBatch: %v", err)
		}
		res.pairs = append(res.pairs, pairs...)
		if err := rt.CheckInvariants(); err != nil {
			t.Fatalf("invariants after batch: %v", err)
		}
	}
	var batch []shardrt.Step
	for i := 0; i < shardChaosSteps; i++ {
		rk, sk := inj.Next(keys[i][0], keys[i][1])
		st := shardrt.Step{R: engine.Tuple{Key: rk}, S: engine.Tuple{Key: sk}}
		if !valid(rk) || !valid(sk) {
			// A corrupted out-of-domain key must reject its batch atomically;
			// feed it alone so only the bad step is lost, like the single
			// operator's StepChecked rejection.
			ingest(batch)
			batch = batch[:0]
			before := rt.Metrics().Ingested
			if _, err := rt.IngestBatch([]shardrt.Step{st}); !errors.Is(err, shardrt.ErrBadStep) {
				t.Fatalf("step %d: corrupted key accepted (err %v)", i, err)
			}
			if after := rt.Metrics().Ingested; after != before {
				t.Fatalf("step %d: rejected batch mutated ingress state (%d -> %d)", i, before, after)
			}
			res.rejected++
			continue
		}
		batch = append(batch, st)
		if len(batch) == shardChaosBatch {
			ingest(batch)
			batch = batch[:0]
		}
	}
	ingest(batch)
	tail, err := rt.Flush()
	if err != nil {
		t.Fatal(err)
	}
	res.pairs = append(res.pairs, tail...)
	if err := rt.CheckInvariants(); err != nil {
		t.Fatalf("invariants after flush: %v", err)
	}
	res.metrics = rt.Metrics()
	res.counts = inj.Counts()
	for i := 0; i < shardChaosShards; i++ {
		_, fb, ok := rt.Shard(i).FallbackCounts()
		if !ok {
			t.Fatalf("shard %d ladder did not report fallback counts", i)
		}
		res.fallbacks = append(res.fallbacks, fb)
	}
	return res
}

func TestShardedChaosCampaign(t *testing.T) {
	dir := t.TempDir()
	res := runShardChaos(t, 31, dir)

	if res.counts.CorruptOutOfDomain != res.rejected {
		t.Fatalf("injected %d out-of-domain keys but rejected %d batches", res.counts.CorruptOutOfDomain, res.rejected)
	}
	if res.counts.Drops == 0 || res.counts.Dups == 0 || res.counts.Delays == 0 {
		t.Fatalf("campaign too tame: %+v", res.counts)
	}
	if len(res.pairs) == 0 {
		t.Fatal("campaign produced no pairs at all")
	}

	// The starved shard degraded; sum of its per-rung fallbacks is the number
	// of decisions that fell past rung 0.
	var hotFallbacks uint64
	for _, c := range res.fallbacks[0] {
		hotFallbacks += c
	}
	if hotFallbacks == 0 {
		t.Fatal("starved shard 0 never fell down its ladder")
	}

	// Bundle-per-downgrade: the degraded shard dumped diagnostics bundles
	// into its own FlightDir subdirectory, one per downgraded step, each
	// loadable and carrying a restorable checkpoint.
	bundles, err := filepath.Glob(filepath.Join(dir, "shard-0", "bundle-*"))
	if err != nil || len(bundles) == 0 {
		t.Fatalf("degraded shard wrote no bundles (err %v)", err)
	}
	if uint64(len(bundles)) > hotFallbacks {
		t.Fatalf("%d bundles but only %d downgrade decisions", len(bundles), hotFallbacks)
	}
	for _, dir := range bundles[:min(3, len(bundles))] {
		b, err := flightrec.LoadBundle(dir)
		if err != nil {
			t.Fatalf("LoadBundle(%s): %v", dir, err)
		}
		if b.Manifest.Reason != "downgrade" {
			t.Fatalf("bundle %s reason %q, want downgrade", dir, b.Manifest.Reason)
		}
		if !strings.Contains(filepath.Base(dir), "downgrade") {
			t.Fatalf("bundle dir %s not named for its reason", dir)
		}
		if len(b.Checkpoint) == 0 {
			t.Fatalf("bundle %s has no checkpoint", dir)
		}
	}
	// Healthy shards wrote no bundles: their generous solver budgets never
	// downgraded on this campaign.
	for i := 1; i < shardChaosShards; i++ {
		sub := filepath.Join(dir, fmt.Sprintf("shard-%d", i))
		if entries, err := os.ReadDir(sub); err == nil && len(entries) > 0 {
			var fb uint64
			for _, c := range res.fallbacks[i] {
				fb += c
			}
			if fb == 0 {
				t.Fatalf("shard %d wrote %d bundles without any downgrade", i, len(entries))
			}
		}
	}
}

// TestShardedChaosReplay: the whole faulted, degraded, rebalancing campaign
// is deterministic — two runs from the same seed are byte-identical in
// pairs, metrics, fault counts and per-shard downgrade counts.
func TestShardedChaosReplay(t *testing.T) {
	a := runShardChaos(t, 77, t.TempDir())
	b := runShardChaos(t, 77, t.TempDir())
	if len(a.pairs) != len(b.pairs) {
		t.Fatalf("replay diverged: %d vs %d pairs", len(a.pairs), len(b.pairs))
	}
	for i := range a.pairs {
		if a.pairs[i] != b.pairs[i] {
			t.Fatalf("replay diverged at pair %d: %+v vs %+v", i, a.pairs[i], b.pairs[i])
		}
	}
	if a.rejected != b.rejected || a.counts != b.counts {
		t.Fatalf("replay fault profile diverged: %+v/%d vs %+v/%d", a.counts, a.rejected, b.counts, b.rejected)
	}
	if a.metrics.Ingested != b.metrics.Ingested || a.metrics.Pairs != b.metrics.Pairs ||
		a.metrics.Rebalances != b.metrics.Rebalances {
		t.Fatalf("replay metrics diverged: %+v vs %+v", a.metrics, b.metrics)
	}
	for i := range a.metrics.Shards {
		if a.metrics.Shards[i] != b.metrics.Shards[i] {
			t.Fatalf("shard %d metrics diverged: %+v vs %+v", i, a.metrics.Shards[i], b.metrics.Shards[i])
		}
	}
	for i := range a.fallbacks {
		for r := range a.fallbacks[i] {
			if a.fallbacks[i][r] != b.fallbacks[i][r] {
				t.Fatalf("shard %d rung %d fallbacks diverged: %d vs %d", i, r, a.fallbacks[i][r], b.fallbacks[i][r])
			}
		}
	}
}
