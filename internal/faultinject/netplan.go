package faultinject

import "stochstream/internal/stats"

// NetFault is one network-level fault decision, applied to a single socket
// read or write by a fault-injecting net.Conn wrapper (the chaos tests keep
// the wrapper; this package keeps the seeded decisions, so a failing
// campaign replays identically).
type NetFault int

const (
	// NetNone lets the operation through untouched.
	NetNone NetFault = iota
	// NetReset closes the connection before the operation — a connection
	// reset. A reset after the daemon has consumed a batch but before the
	// client read its acknowledgment is exactly the "duplicated ingest
	// after reconnect" case: the client resends the batch and the daemon
	// must dedup it by sequence.
	NetReset
	// NetPartialFrame delivers only a seeded prefix of the frame bytes and
	// then resets — the daemon sees a truncated frame and must tear the
	// connection down without consuming a sequence number.
	NetPartialFrame
	// NetStall holds the reader for a beat before the read proceeds — a
	// stalled consumer, exercising the daemon's write path and deadlines
	// without violating the protocol.
	NetStall
)

// NetPlan is a seeded network fault campaign over the streamd framed
// protocol: per-write probabilities of resets and truncated frames, and
// per-read probabilities of resets and stalls. Probabilities are in [0, 1];
// the zero NetPlan injects nothing.
type NetPlan struct {
	Seed uint64
	// ResetWriteProb resets the connection instead of sending a frame.
	ResetWriteProb float64
	// PartialWriteProb sends a seeded prefix of the frame and then resets.
	PartialWriteProb float64
	// ResetReadProb resets the connection instead of reading. When the
	// preceding write carried an ingest batch this manufactures a
	// duplicated ingest: the acknowledgment is lost, the client reconnects
	// and resends an already-consumed sequence.
	ResetReadProb float64
	// StallReadProb stalls the reader before the read proceeds.
	StallReadProb float64
}

// DefaultNetPlan is the CI network chaos campaign: every fault class occurs
// often enough to be exercised in a few hundred operations, rarely enough
// that bounded client retries always recover.
func DefaultNetPlan(seed uint64) NetPlan {
	return NetPlan{
		Seed:             seed,
		ResetWriteProb:   0.04,
		PartialWriteProb: 0.03,
		ResetReadProb:    0.03,
		StallReadProb:    0.05,
	}
}

// NetCounts reports how many faults of each class a NetInjector has decided.
type NetCounts struct {
	WriteResets, PartialFrames, ReadResets, ReadStalls int
}

// NetInjector turns a NetPlan into a deterministic stream of per-operation
// fault decisions. Not safe for concurrent use: give each client connection
// (or each single-threaded client) its own injector.
type NetInjector struct {
	plan   NetPlan
	rng    *stats.RNG
	counts NetCounts
}

// NewNet returns an injector for the plan.
func NewNet(plan NetPlan) *NetInjector {
	return &NetInjector{plan: plan, rng: stats.NewRNG(plan.Seed)}
}

// NextWrite decides the fault for one socket write:
// NetNone, NetReset or NetPartialFrame.
func (in *NetInjector) NextWrite() NetFault {
	switch u := in.rng.Float64(); {
	case u < in.plan.ResetWriteProb:
		in.counts.WriteResets++
		return NetReset
	case u < in.plan.ResetWriteProb+in.plan.PartialWriteProb:
		in.counts.PartialFrames++
		return NetPartialFrame
	}
	return NetNone
}

// NextRead decides the fault for one socket read:
// NetNone, NetReset or NetStall.
func (in *NetInjector) NextRead() NetFault {
	switch u := in.rng.Float64(); {
	case u < in.plan.ResetReadProb:
		in.counts.ReadResets++
		return NetReset
	case u < in.plan.ResetReadProb+in.plan.StallReadProb:
		in.counts.ReadStalls++
		return NetStall
	}
	return NetNone
}

// Cut picks how many of n frame bytes a NetPartialFrame lets through:
// a seeded value in [0, n).
func (in *NetInjector) Cut(n int) int {
	if n <= 0 {
		return 0
	}
	return in.rng.IntN(n)
}

// NetCounts returns the per-class decision counters so far.
func (in *NetInjector) NetCounts() NetCounts { return in.counts }
