package faultinject

import (
	"bytes"
	"errors"
	"path/filepath"
	"sort"
	"testing"

	"stochstream/internal/engine"
	"stochstream/internal/flightrec"
	"stochstream/internal/mincostflow"
	"stochstream/internal/policy"
	"stochstream/internal/stats"
	"stochstream/internal/telemetry"
)

// seededSolverHook returns a min-cost-flow failure hook driven by its own
// seeded stream, with an external draw counter. Unlike the injector's hook it
// can be re-derived and fast-forwarded, which is what lets the bundle-restore
// replay below resume the exact fault pattern from mid-campaign.
func seededSolverHook(rng *stats.RNG, prob float64, draws *int) func() bool {
	return func() bool {
		*draws++
		return rng.Float64() < prob
	}
}

// stepRecord captures one campaign step for replay: the faulted keys, whether
// StepChecked rejected them, and the emitted pairs.
type stepRecord struct {
	rk, sk   int
	rejected bool
	pairs    []engine.Pair
}

// The bundle-on-fault chaos test: a seeded campaign with injected arrival and
// solver faults must leave one diagnostics bundle per faulting step, each
// bundle's embedded checkpoint must re-serialize byte-identically after a
// restore, the restored operator's continuation must match the uninterrupted
// run, and a full replay against the ReferenceJoin oracle must emit identical
// pairs throughout.
func TestChaosBundlePerFault(t *testing.T) {
	const steps = 1500
	const solverSeed, solverProb = 555, 0.05
	dir := t.TempDir()
	plan := Plan{Seed: 23, DupProb: 0.02, DropProb: 0.02, DelayProb: 0.02, CorruptProb: 0.01}

	procs := chaosProcs()
	rng := stats.NewRNG(4242)
	r := procs[0].Generate(rng.Split(), steps)
	s := procs[1].Generate(rng.Split(), steps)
	mkCfg := func() engine.Config {
		return engine.Config{CacheSize: 8, Window: 16, Procs: procs, Policy: chaosLadder(), Seed: 7}
	}

	// Campaign: faulted arrivals, seeded solver failures, bundles on faults.
	rec := flightrec.New(flightrec.Options{Clock: flightrec.LogicalClock(), BundleDir: dir})
	reg := telemetry.NewRegistry()
	cfg := mkCfg()
	downSteps := map[int]bool{}
	cfg.Policy.(*policy.Ladder).OnDowngrade = func(d policy.Downgrade) { downSteps[d.Step] = true }
	cfg.Telemetry = reg
	cfg.Flight = rec
	j, err := engine.NewJoin(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer mincostflow.SetFailureHook(nil)
	draws := 0
	mincostflow.SetFailureHook(seededSolverHook(stats.NewRNG(solverSeed), solverProb, &draws))

	inj := New(plan)
	recs := make([]stepRecord, steps)
	acceptedIdx := []int{}            // operator time -> input index
	drawsBefore := make([]int, steps) // solver draws consumed before input i
	for i := 0; i < steps; i++ {
		drawsBefore[i] = draws
		rk, sk := inj.Next(r[i], s[i])
		out, err := j.StepChecked(engine.Tuple{Key: rk}, engine.Tuple{Key: sk})
		if err != nil {
			if !errors.Is(err, engine.ErrBadTuple) {
				t.Fatalf("step %d: %v", i, err)
			}
			recs[i] = stepRecord{rk: rk, sk: sk, rejected: true}
			continue
		}
		recs[i] = stepRecord{rk: rk, sk: sk, pairs: append([]engine.Pair(nil), out...)}
		acceptedIdx = append(acceptedIdx, i)
	}
	if len(downSteps) == 0 {
		t.Fatal("campaign produced no downgrades; the bundle path went unexercised")
	}

	// One bundle per faulting step, every one loadable with a checkpoint.
	bundles, err := filepath.Glob(filepath.Join(dir, "bundle-*"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(bundles)
	if len(bundles) != len(downSteps) {
		t.Fatalf("%d bundles for %d faulting steps", len(bundles), len(downSteps))
	}
	var last *flightrec.Bundle
	for _, bd := range bundles {
		b, err := flightrec.LoadBundle(bd)
		if err != nil {
			t.Fatalf("%s: %v", bd, err)
		}
		if b.Manifest.Reason != "downgrade" || !downSteps[b.Manifest.Step] {
			t.Fatalf("%s: manifest %+v does not match a faulting step", bd, b.Manifest)
		}
		if len(b.Checkpoint) == 0 || b.Manifest.CheckpointError != "" {
			t.Fatalf("%s: bundle has no usable checkpoint (%+v)", bd, b.Manifest)
		}
		last = b
	}

	// The embedded checkpoint restores byte-identically: restoring it into a
	// fresh operator and checkpointing again reproduces the exact bytes.
	restored, err := engine.NewJoin(mkCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.Restore(bytes.NewReader(last.Checkpoint)); err != nil {
		t.Fatalf("restoring bundle checkpoint: %v", err)
	}
	var again bytes.Buffer
	if err := restored.Checkpoint(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again.Bytes(), last.Checkpoint) {
		t.Fatal("re-checkpoint after restore differs from the bundle's checkpoint bytes")
	}

	// Continuation: with the solver-fault stream fast-forwarded to the
	// faulting step, the restored operator replays the rest of the campaign
	// exactly as the uninterrupted run did.
	start := acceptedIdx[last.Manifest.Step] + 1
	contRNG := stats.NewRNG(solverSeed)
	for k := 0; k < drawsBefore[start]; k++ {
		contRNG.Float64()
	}
	contDraws := 0
	mincostflow.SetFailureHook(seededSolverHook(contRNG, solverProb, &contDraws))
	for i := start; i < steps; i++ {
		if recs[i].rejected {
			continue
		}
		out, err := restored.StepChecked(engine.Tuple{Key: recs[i].rk}, engine.Tuple{Key: recs[i].sk})
		if err != nil {
			t.Fatalf("restored step %d: %v", i, err)
		}
		if !pairsMatch(out, recs[i].pairs) {
			t.Fatalf("restored continuation diverges at step %d:\n  restored %v\n  baseline %v", i, out, recs[i].pairs)
		}
	}
	if rm, jm := restored.Metrics(), j.Metrics(); rm != jm {
		t.Fatalf("restored final metrics diverge:\n  restored %+v\n  baseline %+v", rm, jm)
	}

	// Full differential replay against the oracle: same injector seed, same
	// solver-fault stream, same pairs at every step.
	inj2 := New(plan)
	refDraws := 0
	mincostflow.SetFailureHook(seededSolverHook(stats.NewRNG(solverSeed), solverProb, &refDraws))
	ref, err := engine.NewReferenceJoin(mkCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < steps; i++ {
		rk, sk := inj2.Next(r[i], s[i])
		if rk != recs[i].rk || sk != recs[i].sk {
			t.Fatalf("injector replay diverges at step %d: (%d, %d) vs (%d, %d)", i, rk, sk, recs[i].rk, recs[i].sk)
		}
		if recs[i].rejected {
			continue
		}
		if out := ref.Step(engine.Tuple{Key: rk}, engine.Tuple{Key: sk}); !pairsMatch(out, recs[i].pairs) {
			t.Fatalf("reference replay diverges at step %d:\n  ref      %v\n  operator %v", i, out, recs[i].pairs)
		}
	}
}

// pairsMatch compares emitted pairs field by field ([]Pair is not comparable
// with == because Tuple carries an interface payload).
func pairsMatch(a, b []engine.Pair) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
