// Package faultinject perturbs operator inputs and internals under a seeded,
// fully deterministic fault plan, so chaos tests can assert the engine's
// fault-tolerance contract: no panics, invariants intact after every step,
// and degradation only along the documented policy ladder.
//
// Faults model what a streaming deployment actually sees: duplicated
// arrivals (at-least-once transport replays a tuple), dropped arrivals (the
// paper's "−" tuples), out-of-order delivery (a tuple held back one or more
// steps), corrupted join keys (including values outside the supported
// domain, which StepChecked must reject), and solver failures (forced
// through the min-cost-flow failure hook, standing in for numerical
// instability on adversarial inputs).
//
// Everything is driven by one stats.RNG seeded from the plan, so a chaos run
// replays identically — a failing seed is a reproducible bug report.
package faultinject

import (
	"math"

	"stochstream/internal/mincostflow"
	"stochstream/internal/process"
	"stochstream/internal/stats"
)

// Plan is a seeded fault campaign: per-arrival fault probabilities, applied
// independently to each stream at each step, plus a per-solve probability of
// a forced solver failure. Probabilities are in [0, 1]; the zero Plan
// injects nothing.
type Plan struct {
	Seed uint64
	// DupProb replaces an arrival's key with the previous key seen on the
	// same stream (a transport-level duplicate).
	DupProb float64
	// DropProb replaces an arrival with the NoValue sentinel (a lost tuple;
	// the synchronized-step model still advances).
	DropProb float64
	// DelayProb holds the arrival back and delivers the previously held one
	// in its place (out-of-order delivery with reordering distance ≥ 1).
	DelayProb float64
	// CorruptProb replaces the key with a corrupted value; half the
	// corruptions stay inside the supported key domain (extreme but legal),
	// half fall outside it (StepChecked must reject those cleanly).
	CorruptProb float64
	// SolverFailProb is the per-solve probability that the min-cost-flow
	// failure hook forces an injected failure.
	SolverFailProb float64
}

// DefaultPlan is a moderately hostile campaign used by the CI chaos smoke:
// every fault class is exercised, none dominates.
func DefaultPlan(seed uint64) Plan {
	return Plan{
		Seed:           seed,
		DupProb:        0.02,
		DropProb:       0.02,
		DelayProb:      0.02,
		CorruptProb:    0.01,
		SolverFailProb: 0.05,
	}
}

// Counts reports how many faults of each class an Injector has injected.
type Counts struct {
	Dups, Drops, Delays int
	// CorruptInDomain are corruptions to extreme-but-legal keys;
	// CorruptOutOfDomain are keys outside [engine.MinKey, engine.MaxKey].
	CorruptInDomain, CorruptOutOfDomain int
	SolverFailures                      int
}

// Injector applies a Plan to a stream of synchronized arrivals.
// Not safe for concurrent use.
type Injector struct {
	plan Plan
	rng  *stats.RNG
	// solverRNG drives the solver hook from its own stream, so installing
	// the hook does not perturb the arrival faults.
	solverRNG *stats.RNG
	prev      [2]int
	held      [2]int
	hasHeld   [2]bool
	counts    Counts
}

// New returns an injector for the plan.
func New(plan Plan) *Injector {
	rng := stats.NewRNG(plan.Seed)
	return &Injector{
		plan:      plan,
		rng:       rng.Split(),
		solverRNG: rng.Split(),
		prev:      [2]int{process.NoValue, process.NoValue},
	}
}

// Next transforms one synchronized step of arrivals under the plan.
func (in *Injector) Next(r, s int) (int, int) {
	return in.one(0, r), in.one(1, s)
}

func (in *Injector) one(side, key int) int {
	out := key
	switch u := in.rng.Float64(); {
	case u < in.plan.DupProb:
		out = in.prev[side]
		in.counts.Dups++
	case u < in.plan.DupProb+in.plan.DropProb:
		out = process.NoValue
		in.counts.Drops++
	case u < in.plan.DupProb+in.plan.DropProb+in.plan.DelayProb:
		if in.hasHeld[side] {
			out, in.held[side] = in.held[side], key
		} else {
			in.held[side], in.hasHeld[side] = key, true
			out = process.NoValue // nothing to deliver yet this step
		}
		in.counts.Delays++
	case u < in.plan.DupProb+in.plan.DropProb+in.plan.DelayProb+in.plan.CorruptProb:
		out = in.corrupt()
	}
	in.prev[side] = key
	return out
}

// corrupt picks a corrupted key: alternately an extreme-but-legal value and
// one outside the supported domain.
func (in *Injector) corrupt() int {
	legal := []int{math.MaxInt32, math.MinInt32 + 1, 0, -1}
	illegal := []int{math.MaxInt64, math.MinInt64, math.MaxInt32 + 1, math.MinInt32 - 1}
	if in.rng.Float64() < 0.5 {
		in.counts.CorruptInDomain++
		return legal[in.rng.IntN(len(legal))]
	}
	in.counts.CorruptOutOfDomain++
	return illegal[in.rng.IntN(len(illegal))]
}

// InstallSolverHook installs a process-wide min-cost-flow failure hook that
// fails each solve with probability SolverFailProb, driven by the injector's
// own seeded stream. It returns an uninstall function; callers must invoke
// it (typically via defer) before another test installs a hook.
func (in *Injector) InstallSolverHook() (uninstall func()) {
	if in.plan.SolverFailProb <= 0 {
		return func() {}
	}
	mincostflow.SetFailureHook(func() bool {
		if in.solverRNG.Float64() < in.plan.SolverFailProb {
			in.counts.SolverFailures++
			return true
		}
		return false
	})
	return func() { mincostflow.SetFailureHook(nil) }
}

// Counts returns the per-class injection counters so far.
func (in *Injector) Counts() Counts { return in.counts }
