package faultinject

import (
	"errors"
	"testing"

	"stochstream/internal/dist"
	"stochstream/internal/engine"
	"stochstream/internal/policy"
	"stochstream/internal/process"
	"stochstream/internal/stats"
	"stochstream/internal/telemetry"
)

func chaosProcs() [2]process.Process {
	noise := dist.BoundedNormal(3, 9)
	return [2]process.Process{
		&process.LinearTrend{Slope: 1, Noise: noise},
		&process.LinearTrend{Slope: 1, Intercept: -2, Noise: noise},
	}
}

func chaosLadder() *policy.Ladder {
	// A small solver budget on top of injected failures, so both the
	// budget-exhaustion and injected-failure downgrade paths fire.
	return policy.NewDefaultLadder(3, 200, policy.HEEBOptions{Mode: policy.HEEBDirect, LifetimeEstimate: 4})
}

type chaosResult struct {
	metrics    engine.Metrics
	counts     Counts
	rejected   int
	fallbacks  []uint64
	downgrades uint64
}

// runChaos drives an operator with the full degradation ladder through steps
// faulted arrivals, asserting the fault-tolerance contract at every step.
func runChaos(t *testing.T, plan Plan, steps int) chaosResult {
	t.Helper()
	procs := chaosProcs()
	rng := stats.NewRNG(4242)
	r := procs[0].Generate(rng.Split(), steps)
	s := procs[1].Generate(rng.Split(), steps)

	reg := telemetry.NewRegistry()
	lad := chaosLadder()
	j, err := engine.NewJoin(engine.Config{
		CacheSize: 8,
		Window:    16,
		Procs:     procs,
		Policy:    lad,
		Seed:      7,
		Telemetry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	inj := New(plan)
	defer inj.InstallSolverHook()()

	rejected := 0
	for i := 0; i < steps; i++ {
		rk, sk := inj.Next(r[i], s[i])
		_, err := j.StepChecked(engine.Tuple{Key: rk}, engine.Tuple{Key: sk})
		if err != nil {
			// The only error a faulted-but-ladder-protected operator may
			// return is a clean bad-tuple rejection; anything else (in
			// particular ErrStepFailed from a panic) breaks the contract.
			if !errors.Is(err, engine.ErrBadTuple) {
				t.Fatalf("step %d: %v", i, err)
			}
			rejected++
		}
		if err := j.CheckInvariants(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}

	names, fallbacks, ok := j.FallbackCounts()
	if !ok {
		t.Fatal("ladder policy did not report fallback counts")
	}
	// Degradation happens only along the documented ladder: every downgrade
	// record names adjacent rungs, in order.
	recs := reg.Downgrades().Records()
	for _, rec := range recs {
		idx := -1
		for k, n := range names {
			if n == rec.From {
				idx = k
				break
			}
		}
		if idx < 0 || idx+1 >= len(names) || names[idx+1] != rec.To {
			t.Fatalf("downgrade outside the documented ladder: %+v (rungs %v)", rec, names)
		}
	}
	// Every downgrade is visible in telemetry: per-edge counters sum to the
	// ladder's own fallback total.
	var counterTotal, ladderTotal uint64
	for i := 0; i+1 < len(names); i++ {
		c := reg.Counter(`ladder_fallback_total{from="` + names[i] + `",to="` + names[i+1] + `"}`)
		counterTotal += uint64(c.Value())
	}
	for i := range names {
		ladderTotal += fallbacks[i]
	}
	if counterTotal != ladderTotal {
		t.Fatalf("telemetry counters saw %d downgrades, ladder counted %d", counterTotal, ladderTotal)
	}
	if reg.Downgrades().Total() != ladderTotal {
		t.Fatalf("downgrade trace saw %d records, ladder counted %d", reg.Downgrades().Total(), ladderTotal)
	}
	return chaosResult{
		metrics:    j.Metrics(),
		counts:     inj.Counts(),
		rejected:   rejected,
		fallbacks:  fallbacks,
		downgrades: ladderTotal,
	}
}

// The chaos differential test of ISSUE 4: 5k faulted steps against the full
// ladder. No panics, invariants hold throughout, out-of-domain corruption is
// cleanly rejected, and the injected solver failures surface as ladder
// downgrades — every one visible in telemetry.
func TestChaos5k(t *testing.T) {
	res := runChaos(t, DefaultPlan(99), 5000)
	if res.counts.SolverFailures == 0 {
		t.Fatal("plan injected no solver failures; the downgrade path went unexercised")
	}
	if res.fallbacks[0] == 0 {
		t.Fatal("no FlowExpect downgrades despite injected solver failures")
	}
	if res.counts.CorruptOutOfDomain > 0 && res.rejected == 0 {
		t.Fatal("out-of-domain keys were injected but none were rejected")
	}
	if res.rejected > 2*res.counts.CorruptOutOfDomain {
		t.Fatalf("%d rejections for %d out-of-domain corruptions (both streams can be hit at once)",
			res.rejected, res.counts.CorruptOutOfDomain)
	}
	if res.metrics.Steps != 5000-res.rejected {
		t.Fatalf("steps %d + rejected %d != 5000", res.metrics.Steps, res.rejected)
	}
}

// A seeded plan is a reproducible bug report: two identical campaigns give
// identical metrics, injection counts and downgrade totals.
func TestChaosDeterministic(t *testing.T) {
	a := runChaos(t, DefaultPlan(7), 1500)
	b := runChaos(t, DefaultPlan(7), 1500)
	if a.metrics != b.metrics || a.counts != b.counts || a.rejected != b.rejected || a.downgrades != b.downgrades {
		t.Fatalf("chaos runs with the same seed diverge:\n  a %+v\n  b %+v", a, b)
	}
}

// The zero plan is a no-op: nothing injected, nothing rejected, and — with
// the solver under a generous budget and healthy models — no downgrades.
func TestChaosZeroPlanIsClean(t *testing.T) {
	res := runChaos(t, Plan{}, 1500)
	if res.counts != (Counts{}) {
		t.Fatalf("zero plan injected faults: %+v", res.counts)
	}
	if res.rejected != 0 {
		t.Fatalf("zero plan rejected %d steps", res.rejected)
	}
}

func TestInjectorDelayPreservesDeliveryEventually(t *testing.T) {
	inj := New(Plan{Seed: 1, DelayProb: 1})
	// With DelayProb 1 every arrival is held: the first step delivers the
	// sentinel, later steps deliver the previous held key.
	r0, _ := inj.Next(10, 20)
	if r0 != process.NoValue {
		t.Fatalf("first delayed delivery = %d, want NoValue", r0)
	}
	r1, _ := inj.Next(11, 21)
	if r1 != 10 {
		t.Fatalf("second delivery = %d, want the held 10", r1)
	}
}
