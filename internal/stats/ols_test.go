package stats

import (
	"math"
	"testing"
)

func TestFitLinearExactLine(t *testing.T) {
	series := make([]float64, 50)
	for tm := range series {
		series[tm] = 3*float64(tm) - 7
	}
	f := FitLinear(series)
	if math.Abs(f.Slope-3) > 1e-9 || math.Abs(f.Intercept+7) > 1e-9 {
		t.Fatalf("fit = %+v", f)
	}
	if math.Abs(f.R2-1) > 1e-12 {
		t.Fatalf("R2 = %v, want 1", f.R2)
	}
	res := f.Residuals(series)
	for _, r := range res {
		if math.Abs(r) > 1e-9 {
			t.Fatalf("residual %v on exact line", r)
		}
	}
}

func TestFitLinearNoisyLine(t *testing.T) {
	g := NewRNG(8)
	series := make([]float64, 3000)
	for tm := range series {
		series[tm] = 0.5*float64(tm) + 10 + 2*g.NormFloat64()
	}
	f := FitLinear(series)
	if math.Abs(f.Slope-0.5) > 0.005 {
		t.Fatalf("slope = %v", f.Slope)
	}
	if f.R2 < 0.99 {
		t.Fatalf("R2 = %v", f.R2)
	}
}

func TestFitLinearFlatSeries(t *testing.T) {
	f := FitLinear([]float64{5, 5, 5, 5})
	if f.Slope != 0 || f.R2 != 0 {
		t.Fatalf("flat fit = %+v", f)
	}
	if g := FitLinear([]float64{1}); g.Slope != 0 {
		t.Fatalf("single point fit = %+v", g)
	}
}

func TestFitLinearWhiteNoiseHasLowR2(t *testing.T) {
	g := NewRNG(9)
	series := make([]float64, 2000)
	for tm := range series {
		series[tm] = g.NormFloat64()
	}
	if f := FitLinear(series); f.R2 > 0.01 {
		t.Fatalf("white noise R2 = %v", f.R2)
	}
}

func TestFitLinearInt(t *testing.T) {
	f := FitLinearInt([]int{0, 2, 4, 6, 8})
	if math.Abs(f.Slope-2) > 1e-12 {
		t.Fatalf("slope = %v", f.Slope)
	}
}

func TestDiffs(t *testing.T) {
	got := Diffs([]int{3, 5, 4, 10})
	want := []float64{2, -1, 6}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Diffs = %v", got)
		}
	}
	if Diffs([]int{1}) != nil {
		t.Fatal("single element should have no diffs")
	}
}
