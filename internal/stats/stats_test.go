package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced different streams")
		}
	}
	c := NewRNG(8)
	same := true
	a2 := NewRNG(7)
	for i := 0; i < 10; i++ {
		if a2.Float64() != c.Float64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	g := NewRNG(1)
	c1 := g.Split()
	v1 := c1.Float64()
	// Re-derive: a fresh parent split twice gives the same first child stream.
	g2 := NewRNG(1)
	c1b := g2.Split()
	if c1b.Float64() != v1 {
		t.Fatal("split is not deterministic")
	}
}

func TestRNGIntNRange(t *testing.T) {
	g := NewRNG(3)
	for i := 0; i < 1000; i++ {
		if v := g.IntN(10); v < 0 || v >= 10 {
			t.Fatalf("IntN out of range: %d", v)
		}
	}
}

func TestSummary(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if got := s.Mean(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Mean = %v, want 5", got)
	}
	// Population variance is 4; unbiased sample variance is 32/7.
	if got := s.Variance(); math.Abs(got-32.0/7) > 1e-12 {
		t.Fatalf("Variance = %v, want %v", got, 32.0/7)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if got := s.RelStdDev(); math.Abs(got-s.StdDev()/5) > 1e-12 {
		t.Fatalf("RelStdDev = %v", got)
	}
}

func TestSummaryEdgeCases(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Variance() != 0 || s.RelStdDev() != 0 {
		t.Fatal("empty summary should be all zeros")
	}
	s.Add(3)
	if s.Variance() != 0 {
		t.Fatal("single observation variance should be 0")
	}
}

func TestSummaryMatchesDirectComputation(t *testing.T) {
	f := func(seed uint64) bool {
		g := NewRNG(seed)
		n := 2 + g.IntN(200)
		xs := make([]float64, n)
		var s Summary
		for i := range xs {
			xs[i] = g.NormFloat64() * 100
			s.Add(xs[i])
		}
		var mean float64
		for _, x := range xs {
			mean += x
		}
		mean /= float64(n)
		var v float64
		for _, x := range xs {
			v += (x - mean) * (x - mean)
		}
		v /= float64(n - 1)
		return math.Abs(s.Mean()-mean) < 1e-8 && math.Abs(s.Variance()-v) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFitAR1RecoversParameters(t *testing.T) {
	g := NewRNG(11)
	const phi0, phi1, sigma = 5.59, 0.72, 4.22
	x := phi0 / (1 - phi1)
	series := make([]float64, 20000)
	for i := range series {
		x = phi0 + phi1*x + sigma*g.NormFloat64()
		series[i] = x
	}
	fit, err := FitAR1(series)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Phi1-phi1) > 0.02 {
		t.Fatalf("Phi1 = %v, want ~%v", fit.Phi1, phi1)
	}
	if math.Abs(fit.Phi0-phi0) > 0.5 {
		t.Fatalf("Phi0 = %v, want ~%v", fit.Phi0, phi0)
	}
	if math.Abs(fit.Sigma-sigma) > 0.15 {
		t.Fatalf("Sigma = %v, want ~%v", fit.Sigma, sigma)
	}
	if math.Abs(fit.StationaryMean()-phi0/(1-phi1)) > 1.5 {
		t.Fatalf("StationaryMean = %v", fit.StationaryMean())
	}
	wantSD := sigma / math.Sqrt(1-phi1*phi1)
	if math.Abs(fit.StationaryStdDev()-wantSD) > 0.5 {
		t.Fatalf("StationaryStdDev = %v, want ~%v", fit.StationaryStdDev(), wantSD)
	}
}

func TestFitAR1Errors(t *testing.T) {
	if _, err := FitAR1([]float64{1, 2}); err != ErrShortSeries {
		t.Fatalf("short series: err = %v", err)
	}
	if _, err := FitAR1([]float64{3, 3, 3, 3}); err == nil {
		t.Fatal("constant series should fail")
	}
}

func TestFitAR1IntMatchesFloat(t *testing.T) {
	ints := []int{10, 12, 11, 14, 13, 15, 14, 16, 18, 17, 19, 18}
	fi, err := FitAR1Int(ints)
	if err != nil {
		t.Fatal(err)
	}
	fs := make([]float64, len(ints))
	for i, v := range ints {
		fs[i] = float64(v)
	}
	ff, _ := FitAR1(fs)
	if fi != ff {
		t.Fatalf("int fit %+v != float fit %+v", fi, ff)
	}
}

func TestAutocorrelation(t *testing.T) {
	// White noise: lag-1 autocorrelation near 0; AR(1) with phi=0.9: near 0.9.
	g := NewRNG(5)
	white := make([]float64, 5000)
	for i := range white {
		white[i] = g.NormFloat64()
	}
	if r := Autocorrelation(white, 1); math.Abs(r) > 0.05 {
		t.Fatalf("white noise lag-1 autocorr = %v", r)
	}
	ar := make([]float64, 5000)
	x := 0.0
	for i := range ar {
		x = 0.9*x + g.NormFloat64()
		ar[i] = x
	}
	if r := Autocorrelation(ar, 1); math.Abs(r-0.9) > 0.05 {
		t.Fatalf("AR lag-1 autocorr = %v, want ~0.9", r)
	}
	if r := Autocorrelation(ar, 0); math.Abs(r-1) > 1e-12 {
		t.Fatalf("lag-0 autocorr = %v, want 1", r)
	}
	if r := Autocorrelation(ar, -1); r != 0 {
		t.Fatalf("negative lag = %v, want 0", r)
	}
	if r := Autocorrelation([]float64{1, 1, 1}, 1); r != 0 {
		t.Fatalf("constant series autocorr = %v, want 0", r)
	}
}

func TestAlphaLifetimeRoundTrip(t *testing.T) {
	for _, m := range []float64{1.5, 2, 5, 10, 30, 300} {
		alpha := AlphaForLifetime(m)
		if got := LifetimeForAlpha(alpha); math.Abs(got-m) > 1e-9*m {
			t.Fatalf("round trip m=%v: got %v", m, got)
		}
	}
	if a := AlphaForLifetime(0.5); a != 1e-3 {
		t.Fatalf("sub-step lifetime should clamp, got %v", a)
	}
	if l := LifetimeForAlpha(0); l != 1 {
		t.Fatalf("alpha 0 lifetime = %v, want 1", l)
	}
}

func TestAlphaMonotoneInLifetime(t *testing.T) {
	f := func(a, b uint16) bool {
		ma := 1.1 + float64(a)/10
		mb := ma + 0.1 + float64(b)/10
		return AlphaForLifetime(ma) < AlphaForLifetime(mb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLifetimeTracker(t *testing.T) {
	lt := NewLifetimeTracker(0.5)
	if got := lt.MeanLifetime(9); got != 9 {
		t.Fatalf("fallback = %v, want 9", got)
	}
	lt.Observe(0, 10) // life 10
	if got := lt.MeanLifetime(9); got != 10 {
		t.Fatalf("first obs mean = %v, want 10", got)
	}
	lt.Observe(5, 25) // life 20 → mean 15 with decay 0.5
	if got := lt.MeanLifetime(9); math.Abs(got-15) > 1e-12 {
		t.Fatalf("mean = %v, want 15", got)
	}
	if lt.N() != 2 {
		t.Fatalf("N = %d", lt.N())
	}
	// Lifetimes clamp at 1.
	lt2 := NewLifetimeTracker(1)
	lt2.Observe(7, 7)
	if got := lt2.MeanLifetime(0); got != 1 {
		t.Fatalf("clamped lifetime = %v, want 1", got)
	}
	// Alpha passthrough.
	if got, want := lt.Alpha(0), AlphaForLifetime(15); got != want {
		t.Fatalf("Alpha = %v, want %v", got, want)
	}
}

func TestLifetimeTrackerPanics(t *testing.T) {
	for _, d := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("decay %v did not panic", d)
				}
			}()
			NewLifetimeTracker(d)
		}()
	}
}
