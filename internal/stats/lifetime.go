package stats

import (
	"errors"
	"math"
)

// AlphaForLifetime inverts the Lexp lifetime model: Lexp(Δt) = e^{-Δt/α}
// predicts an average cached-tuple lifetime of 1/(1−e^{-1/α}), so given an
// observed or estimated mean lifetime m this returns the α whose prediction
// matches. Lifetimes of one step or less map to a very small α.
func AlphaForLifetime(m float64) float64 {
	if m <= 1 {
		return 1e-3
	}
	// Log1p keeps the inversion stable for very long lifetimes, where
	// 1 - 1/m would round to exactly 1.
	return -1 / math.Log1p(-1/m)
}

// LifetimeForAlpha is the forward direction: the mean lifetime Lexp with
// parameter α predicts, 1/(1−e^{-1/α}).
func LifetimeForAlpha(alpha float64) float64 {
	if alpha <= 0 {
		return 1
	}
	return 1 / (1 - math.Exp(-1/alpha))
}

// LifetimeTracker observes how long tuples actually survive in the cache and
// maintains an exponentially-weighted mean lifetime. The paper lists
// adapting α from the observed lifetime as future work; HEEB's AdaptiveAlpha
// option is built on this tracker.
//
// The zero value is not ready: use NewLifetimeTracker.
type LifetimeTracker struct {
	decay float64
	mean  float64
	n     int
}

// NewLifetimeTracker returns a tracker whose running mean gives recent
// evictions weight decay ∈ (0, 1]; decay 1 reduces to a plain mean over a
// growing window approximation. Typical decay: 0.05.
func NewLifetimeTracker(decay float64) *LifetimeTracker {
	if decay <= 0 || decay > 1 {
		panic("stats: LifetimeTracker decay must be in (0, 1]")
	}
	return &LifetimeTracker{decay: decay}
}

// Observe records that a tuple inserted at time in was evicted at time out.
func (lt *LifetimeTracker) Observe(in, out int) {
	life := float64(out - in)
	if life < 1 {
		life = 1
	}
	lt.n++
	if lt.n == 1 {
		lt.mean = life
		return
	}
	lt.mean += lt.decay * (life - lt.mean)
}

// N returns the number of observed evictions.
func (lt *LifetimeTracker) N() int { return lt.n }

// MeanLifetime returns the tracked mean lifetime, or fallback before any
// eviction has been observed.
func (lt *LifetimeTracker) MeanLifetime(fallback float64) float64 {
	if lt.n == 0 {
		return fallback
	}
	return lt.mean
}

// Alpha returns the α matching the tracked lifetime, or the α matching
// fallbackLifetime before any observation.
func (lt *LifetimeTracker) Alpha(fallbackLifetime float64) float64 {
	return AlphaForLifetime(lt.MeanLifetime(fallbackLifetime))
}

// State returns the tracker's internal state (decay, running mean, count) for
// checkpointing; Restore is its inverse.
func (lt *LifetimeTracker) State() (decay, mean float64, n int) {
	return lt.decay, lt.mean, lt.n
}

// Restore overwrites the tracker with a previously captured State. The decay
// must satisfy the constructor's contract.
func (lt *LifetimeTracker) Restore(decay, mean float64, n int) error {
	if decay <= 0 || decay > 1 {
		return errors.New("stats: LifetimeTracker decay must be in (0, 1]")
	}
	if n < 0 {
		return errors.New("stats: LifetimeTracker count must be >= 0")
	}
	lt.decay, lt.mean, lt.n = decay, mean, n
	return nil
}
