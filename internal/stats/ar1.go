package stats

import (
	"errors"
	"math"
)

// AR1Fit is a fitted first-order autoregressive model
// X_t = Phi0 + Phi1·X_{t-1} + Y_t with Y_t ~ N(0, Sigma²).
type AR1Fit struct {
	Phi0  float64 // constant drift
	Phi1  float64 // autoregressive coefficient
	Sigma float64 // innovation standard deviation
	N     int     // number of transitions used
}

// StationaryMean returns the long-run mean Phi0/(1−Phi1); it is only
// meaningful for |Phi1| < 1.
func (f AR1Fit) StationaryMean() float64 { return f.Phi0 / (1 - f.Phi1) }

// StationaryStdDev returns the long-run standard deviation
// Sigma/√(1−Phi1²) for |Phi1| < 1.
func (f AR1Fit) StationaryStdDev() float64 {
	return f.Sigma / math.Sqrt(1-f.Phi1*f.Phi1)
}

// ErrShortSeries is returned when a series is too short to fit a model.
var ErrShortSeries = errors.New("stats: series too short to fit")

// FitAR1 fits an AR(1) model by conditional maximum likelihood, which for
// Gaussian innovations coincides with least squares of X_t on X_{t-1}. This
// is the "standard MLE procedure" the paper runs offline on the REAL data.
func FitAR1(series []float64) (AR1Fit, error) {
	n := len(series) - 1
	if n < 2 {
		return AR1Fit{}, ErrShortSeries
	}
	var sx, sy, sxx, sxy float64
	for t := 1; t < len(series); t++ {
		x, y := series[t-1], series[t]
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	fn := float64(n)
	den := fn*sxx - sx*sx
	if den == 0 {
		return AR1Fit{}, errors.New("stats: degenerate series (constant)")
	}
	phi1 := (fn*sxy - sx*sy) / den
	phi0 := (sy - phi1*sx) / fn
	var rss float64
	for t := 1; t < len(series); t++ {
		r := series[t] - phi0 - phi1*series[t-1]
		rss += r * r
	}
	return AR1Fit{Phi0: phi0, Phi1: phi1, Sigma: math.Sqrt(rss / fn), N: n}, nil
}

// FitAR1Int fits an AR(1) model to an integer series (the stream models in
// this module carry integer join-attribute values).
func FitAR1Int(series []int) (AR1Fit, error) {
	f := make([]float64, len(series))
	for i, v := range series {
		f[i] = float64(v)
	}
	return FitAR1(f)
}

// Autocorrelation returns the lag-k sample autocorrelation of the series.
func Autocorrelation(series []float64, k int) float64 {
	n := len(series)
	if k < 0 || k >= n {
		return 0
	}
	var mean float64
	for _, v := range series {
		mean += v
	}
	mean /= float64(n)
	var num, den float64
	for t := 0; t < n; t++ {
		d := series[t] - mean
		den += d * d
		if t+k < n {
			num += d * (series[t+k] - mean)
		}
	}
	if den == 0 {
		return 0
	}
	return num / den
}
