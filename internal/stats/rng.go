// Package stats provides the statistical substrate for the stream-join
// framework: seeded random number generation, running summaries, time-series
// diagnostics, AR(1) maximum-likelihood fitting, and the cached-tuple
// lifetime tracker that drives adaptive choices of HEEB's α parameter.
package stats

import (
	"errors"
	"math"
	"math/rand/v2"
)

// RNG is a deterministic random source. Every experiment in this module
// threads an explicit RNG so runs are reproducible from a seed. The
// underlying PCG state is serializable (MarshalBinary/UnmarshalBinary), which
// is what lets an engine checkpoint capture a mid-run generator and resume it
// bit-for-bit: rand/v2's Rand carries no buffered state of its own, so the
// PCG words are the whole story.
type RNG struct {
	//lint:ignore snapcomplete rand.Rand buffers nothing; the PCG words are the whole state and UnmarshalBinary rebuilds r around the restored source
	r   *rand.Rand
	pcg *rand.PCG
}

// NewRNG returns a PCG-backed source seeded deterministically from seed.
func NewRNG(seed uint64) *RNG {
	pcg := rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)
	return &RNG{r: rand.New(pcg), pcg: pcg}
}

// Float64 returns a uniform variate in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// IntN returns a uniform integer in [0, n).
func (g *RNG) IntN(n int) int { return g.r.IntN(n) }

// NormFloat64 returns a standard normal variate.
func (g *RNG) NormFloat64() float64 { return g.r.NormFloat64() }

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Split derives an independent child generator. Multi-run experiments give
// each run a split so adding a policy never perturbs another policy's data.
func (g *RNG) Split() *RNG {
	pcg := rand.NewPCG(g.r.Uint64(), g.r.Uint64())
	return &RNG{r: rand.New(pcg), pcg: pcg}
}

// MarshalBinary implements encoding.BinaryMarshaler by serializing the
// underlying PCG state.
func (g *RNG) MarshalBinary() ([]byte, error) {
	if g.pcg == nil {
		return nil, errors.New("stats: RNG has no serializable source")
	}
	return g.pcg.MarshalBinary()
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler: the generator
// resumes exactly where the marshaled one stopped.
func (g *RNG) UnmarshalBinary(data []byte) error {
	pcg := rand.NewPCG(0, 0)
	if err := pcg.UnmarshalBinary(data); err != nil {
		return err
	}
	g.pcg = pcg
	g.r = rand.New(pcg)
	return nil
}

// Summary accumulates count, mean and variance online (Welford's method).
// The zero value is ready to use.
type Summary struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds x into the summary.
func (s *Summary) Add(x float64) {
	if s.n == 0 {
		s.min, s.max = x, x
	} else {
		s.min = math.Min(s.min, x)
		s.max = math.Max(s.max, x)
	}
	s.n++
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// N returns the number of observations.
func (s *Summary) N() int { return s.n }

// Mean returns the sample mean, or 0 with no observations.
func (s *Summary) Mean() float64 { return s.mean }

// Variance returns the unbiased sample variance (0 for n < 2).
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Min returns the smallest observation (0 with no observations).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation (0 with no observations).
func (s *Summary) Max() float64 { return s.max }

// RelStdDev returns the coefficient of variation, which the experiment
// harness reports to mirror the paper's "variances under 5%" observation.
func (s *Summary) RelStdDev() float64 {
	if s.mean == 0 {
		return 0
	}
	return s.StdDev() / math.Abs(s.mean)
}
