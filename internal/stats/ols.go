package stats

// LinearFit fits y_t = Intercept + Slope·t by ordinary least squares over
// t = 0..len(series)-1 and reports the coefficient of determination R².
// Model selection uses it to detect deterministic trends.
type LinearFit struct {
	Intercept float64
	Slope     float64
	R2        float64
}

// FitLinear computes the OLS trend of a series. It returns a zero fit for
// series shorter than two points.
func FitLinear(series []float64) LinearFit {
	n := len(series)
	if n < 2 {
		return LinearFit{}
	}
	var st, sy, stt, sty float64
	for t, y := range series {
		ft := float64(t)
		st += ft
		sy += y
		stt += ft * ft
		sty += ft * y
	}
	fn := float64(n)
	den := fn*stt - st*st
	if den == 0 {
		return LinearFit{Intercept: sy / fn}
	}
	slope := (fn*sty - st*sy) / den
	intercept := (sy - slope*st) / fn
	mean := sy / fn
	var ssTot, ssRes float64
	for t, y := range series {
		ssTot += (y - mean) * (y - mean)
		r := y - intercept - slope*float64(t)
		ssRes += r * r
	}
	r2 := 0.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return LinearFit{Intercept: intercept, Slope: slope, R2: r2}
}

// FitLinearInt fits an integer series.
func FitLinearInt(series []int) LinearFit {
	f := make([]float64, len(series))
	for i, v := range series {
		f[i] = float64(v)
	}
	return FitLinear(f)
}

// Residuals returns the OLS residuals of the fit over the series.
func (lf LinearFit) Residuals(series []float64) []float64 {
	out := make([]float64, len(series))
	for t, y := range series {
		out[t] = y - lf.Intercept - lf.Slope*float64(t)
	}
	return out
}

// Diffs returns the first differences of an integer series.
func Diffs(series []int) []float64 {
	if len(series) < 2 {
		return nil
	}
	out := make([]float64, len(series)-1)
	for i := 1; i < len(series); i++ {
		out[i-1] = float64(series[i] - series[i-1])
	}
	return out
}
