// Package cachepolicy implements the classic and model-driven replacement
// policies the paper's caching experiments compare: LRU, perfect LFU
// (PROB's caching analogue), LRU-k, RAND, the offline-optimal LFD, the
// model-based Ao of Aho/Denning/Ullman, and HEEB for caching (direct
// first-reference form for independent reference streams, and the
// precomputed h2 surface for AR(1) streams such as REAL).
package cachepolicy

import (
	"math"
	"sort"
	"strconv"

	"stochstream/internal/core"
	"stochstream/internal/process"
	"stochstream/internal/stats"
)

// LRU evicts the least recently used value. "Perfect" in the paper's sense:
// it tracks exact recency over the whole run.
type LRU struct {
	last map[int]int
}

// Name implements cachesim.Policy.
func (p *LRU) Name() string { return "LRU" }

// Reset implements cachesim.Policy.
func (p *LRU) Reset(int, []int, *stats.RNG) { p.last = make(map[int]int) }

// Touch implements cachesim.Policy.
func (p *LRU) Touch(t, v int, _ bool) { p.last[v] = t }

// Victim implements cachesim.Policy.
func (p *LRU) Victim(_ int, _ int, cached []int) (int, bool) {
	best, bestT := 0, math.MaxInt
	for i, v := range cached {
		if lt := p.last[v]; lt < bestT {
			best, bestT = i, lt
		}
	}
	return best, true
}

// LFU evicts the least frequently used value, counting every reference from
// the start of the run (perfect LFU — the paper's PROB for caching). The
// incoming value competes too: if it is the least frequent, it is not
// admitted.
type LFU struct {
	count map[int]int
}

// Name implements cachesim.Policy.
func (p *LFU) Name() string { return "PROB(LFU)" }

// Reset implements cachesim.Policy.
func (p *LFU) Reset(int, []int, *stats.RNG) { p.count = make(map[int]int) }

// Touch implements cachesim.Policy.
func (p *LFU) Touch(_, v int, _ bool) { p.count[v]++ }

// Victim implements cachesim.Policy. The least frequent of cached ∪
// {incoming} loses; ties break on the smaller value so the decision is a
// pure function of the cache contents and reference history (Theorem 1's
// reduction requires order-independence).
func (p *LFU) Victim(_ int, v int, cached []int) (int, bool) {
	best, bestC, bestV := -1, p.count[v], v
	for i, cv := range cached {
		c := p.count[cv]
		if c < bestC || (c == bestC && cv < bestV) {
			best, bestC, bestV = i, c, cv
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}

// LRUK is the LRU-k policy of O'Neil et al.: evict the value whose k-th most
// recent reference is oldest (values with fewer than k references count as
// infinitely old, falling back to plain LRU order among themselves).
type LRUK struct {
	K    int
	hist map[int][]int
}

// Name implements cachesim.Policy.
func (p *LRUK) Name() string { return "LRU-" + strconv.Itoa(p.K) }

// Reset implements cachesim.Policy.
func (p *LRUK) Reset(int, []int, *stats.RNG) {
	if p.K < 1 {
		panic("cachepolicy: LRU-k requires K >= 1")
	}
	p.hist = make(map[int][]int)
}

// Touch implements cachesim.Policy.
func (p *LRUK) Touch(t, v int, _ bool) {
	h := append(p.hist[v], t)
	if len(h) > p.K {
		h = h[len(h)-p.K:]
	}
	p.hist[v] = h
}

// kDistance returns the time of the k-th most recent reference, or
// math.MinInt64-ish when fewer than k references exist.
func (p *LRUK) kDistance(v int) (kth int, full bool, last int) {
	h := p.hist[v]
	if len(h) == 0 {
		return math.MinInt32, false, math.MinInt32
	}
	last = h[len(h)-1]
	if len(h) < p.K {
		return math.MinInt32, false, last
	}
	return h[len(h)-p.K], true, last
}

// Victim implements cachesim.Policy.
func (p *LRUK) Victim(_ int, _ int, cached []int) (int, bool) {
	best := 0
	bk, bf, bl := p.kDistance(cached[0])
	for i := 1; i < len(cached); i++ {
		k, f, l := p.kDistance(cached[i])
		// Prefer evicting values without a full k-history; among those,
		// least-recently-used; among full histories, oldest k-th reference.
		worse := false
		switch {
		case !f && bf:
			worse = true
		case f == bf && !f:
			worse = l < bl
		case f == bf:
			worse = k < bk
		}
		if worse {
			best, bk, bf, bl = i, k, f, l
		}
	}
	return best, true
}

// Rand evicts a uniformly random cached value.
type Rand struct{ rng *stats.RNG }

// Name implements cachesim.Policy.
func (p *Rand) Name() string { return "RAND" }

// Reset implements cachesim.Policy.
func (p *Rand) Reset(_ int, _ []int, rng *stats.RNG) { p.rng = rng }

// Touch implements cachesim.Policy.
func (p *Rand) Touch(int, int, bool) {}

// Victim implements cachesim.Policy.
func (p *Rand) Victim(_ int, _ int, cached []int) (int, bool) {
	return p.rng.IntN(len(cached)), true
}

// LFD is Belady's offline-optimal policy (Section 5.1 re-derives it from
// single-step offline ECBs): evict the value referenced farthest in the
// future, preferring values never referenced again — including the incoming
// value, which is not admitted if its own next reference is the farthest.
type LFD struct {
	// upcoming[v]: sorted future reference times, consumed as time passes.
	upcoming map[int][]int
}

// Name implements cachesim.Policy.
func (p *LFD) Name() string { return "LFD" }

// Reset implements cachesim.Policy.
func (p *LFD) Reset(_ int, refs []int, _ *stats.RNG) {
	p.upcoming = make(map[int][]int)
	for t, v := range refs {
		p.upcoming[v] = append(p.upcoming[v], t)
	}
}

// Touch implements cachesim.Policy: consume the occurrence list as time
// advances so nextUse stays O(log n).
func (p *LFD) Touch(t, v int, _ bool) {
	u := p.upcoming[v]
	for len(u) > 0 && u[0] <= t {
		u = u[1:]
	}
	p.upcoming[v] = u
}

// nextUse returns the next reference time of v strictly after t, or MaxInt.
func (p *LFD) nextUse(t, v int) int {
	u := p.upcoming[v]
	i := sort.SearchInts(u, t+1)
	if i == len(u) {
		return math.MaxInt
	}
	return u[i]
}

// Victim implements cachesim.Policy. Among values never referenced again
// (equal "infinite" distances) the larger value is evicted, so the decision
// is a pure function of the cache contents — any choice is equally optimal,
// but order-independence is what the Theorem 1 reduction tests rely on.
func (p *LFD) Victim(t int, v int, cached []int) (int, bool) {
	bestIdx, bestNext, bestV := -1, p.nextUse(t, v), v
	for i, cv := range cached {
		nu := p.nextUse(t, cv)
		if nu > bestNext || (nu == bestNext && cv > bestV) {
			bestIdx, bestNext, bestV = i, nu, cv
		}
	}
	if bestIdx < 0 {
		return 0, false // the incoming value itself is the farthest
	}
	return bestIdx, true
}

// Ao is the model-based optimal policy of Aho, Denning and Ullman for
// (almost) stationary reference streams: evict the value with the lowest
// reference probability under the model, the incoming value included.
// Section 5.2 re-derives its optimality from ECB dominance.
type Ao struct {
	// P reports the model's reference probability of value v at time t.
	P func(t, v int) float64
}

// Name implements cachesim.Policy.
func (p *Ao) Name() string { return "A0" }

// Reset implements cachesim.Policy.
func (p *Ao) Reset(int, []int, *stats.RNG) {
	if p.P == nil {
		panic("cachepolicy: Ao requires a probability model")
	}
}

// Touch implements cachesim.Policy.
func (p *Ao) Touch(int, int, bool) {}

// Victim implements cachesim.Policy.
func (p *Ao) Victim(t int, v int, cached []int) (int, bool) {
	bestIdx, bestP := -1, p.P(t, v)
	for i, cv := range cached {
		if pr := p.P(t, cv); pr < bestP {
			bestIdx, bestP = i, pr
		}
	}
	if bestIdx < 0 {
		return 0, false
	}
	return bestIdx, true
}

// HEEB is the paper's heuristic applied to the caching problem. For AR(1)
// reference streams (REAL) it scores through the precomputed h2 surface of
// Theorem 5 with Lexp(α = cache size, per Section 6.5); for independent
// streams it uses the direct first-reference form of Corollary 1.
type HEEB struct {
	// Model is the reference-stream model. AR(1) and GaussianWalk models
	// use precomputed marginal scoring; independent models use CacheH.
	Model process.Process
	// Alpha overrides Lexp's α (0 = cache capacity).
	Alpha float64
	// ControlPoints sets the h2 control grid (0 = 5, the paper's 25-point
	// grid).
	ControlPoints int
	// FallbackHorizon bounds sums for non-decaying L (0 = 1000).
	FallbackHorizon int

	alpha  float64
	h2     *core.H2
	h1     *core.H1
	markov *process.MarkovChain
	hist   *process.History
}

// Name implements cachesim.Policy.
func (p *HEEB) Name() string { return "HEEB" }

// Reset implements cachesim.Policy.
func (p *HEEB) Reset(capacity int, _ []int, _ *stats.RNG) {
	if p.Model == nil {
		panic("cachepolicy: HEEB requires a reference-stream model")
	}
	p.alpha = p.Alpha
	if p.alpha == 0 {
		p.alpha = float64(capacity)
	}
	if p.FallbackHorizon == 0 {
		p.FallbackHorizon = 1000
	}
	cp := p.ControlPoints
	if cp == 0 {
		cp = 5
	}
	p.hist = process.NewHistory()
	p.h1, p.h2, p.markov = nil, nil, nil
	l := core.LExp{Alpha: p.alpha}
	switch m := p.Model.(type) {
	case *process.AR1:
		mean := m.Phi0 / (1 - m.Phi1)
		sd := m.Sigma / math.Sqrt(1-m.Phi1*m.Phi1)
		lo, hi := int(mean-4*sd), int(mean+4*sd)
		h2, err := core.PrecomputeH2(m, l, lo, hi, lo, hi, cp, cp, p.FallbackHorizon)
		if err != nil {
			panic("cachepolicy: h2 precomputation failed: " + err.Error())
		}
		p.h2 = h2
	case *process.GaussianWalk:
		r := int(math.Ceil(6*m.Sigma*math.Sqrt(3*p.alpha))) + 5
		lo := -r + min(0, int(3*m.Drift*p.alpha))
		hi := r + max(0, int(3*m.Drift*p.alpha))
		h1, err := core.PrecomputeH1(m, l, lo, hi, 1, p.FallbackHorizon)
		if err != nil {
			panic("cachepolicy: h1 precomputation failed: " + err.Error())
		}
		p.h1 = h1
	case *process.MarkovChain:
		p.markov = m
	}
}

// Touch implements cachesim.Policy.
func (p *HEEB) Touch(_, v int, _ bool) { p.hist.Append(v) }

func (p *HEEB) score(v int) float64 {
	switch {
	case p.h2 != nil:
		return p.h2.At(p.hist.Last(), v)
	case p.h1 != nil:
		return p.h1.At(p.hist.Last(), v)
	case p.markov != nil:
		// Exact first-reference score by first-passage DP over the chain.
		return core.MarkovFirstPassageH(p.markov, p.hist.Last(), v, core.LExp{Alpha: p.alpha}, p.FallbackHorizon)
	default:
		return core.CacheH(p.Model, p.hist, v, core.LExp{Alpha: p.alpha}, p.FallbackHorizon)
	}
}

// Victim implements cachesim.Policy. With a precomputed h2 surface the
// candidates share one spline section for the current observation, so a
// decision over the whole cache costs one section build plus O(log) per
// candidate.
func (p *HEEB) Victim(_ int, v int, cached []int) (int, bool) {
	score := p.score
	if p.h2 != nil {
		sec := p.h2.Section(p.hist.Last())
		score = func(u int) float64 { return sec(u) }
	}
	bestIdx, bestH := -1, score(v)
	for i, cv := range cached {
		if h := score(cv); h < bestH {
			bestIdx, bestH = i, h
		}
	}
	if bestIdx < 0 {
		return 0, false
	}
	return bestIdx, true
}
