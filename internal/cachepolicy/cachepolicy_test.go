package cachepolicy

import (
	"testing"
	"testing/quick"

	"stochstream/internal/cachesim"
	"stochstream/internal/dist"
	"stochstream/internal/process"
	"stochstream/internal/stats"
)

func run(refs []int, p cachesim.Policy, capacity int, seed uint64) cachesim.Result {
	return cachesim.Run(refs, p, cachesim.Config{Capacity: capacity}, stats.NewRNG(seed))
}

func TestLRUClassicSequence(t *testing.T) {
	// Belady's anomaly playground: 1,2,3,4,1,2,5,1,2,3,4,5 with capacity 3
	// under LRU yields 10 misses.
	refs := []int{1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5}
	res := run(refs, &LRU{}, 3, 1)
	if res.Misses != 10 {
		t.Fatalf("LRU misses = %d, want 10", res.Misses)
	}
}

func TestLFUKeepsHotValue(t *testing.T) {
	// Value 1 is hot; LFU must never evict it once frequencies diverge.
	refs := []int{1, 1, 1, 1, 2, 3, 4, 1, 2, 3, 4, 1}
	res := run(refs, &LFU{}, 2, 1)
	// 1 hits on every re-reference after the first.
	hits1 := 0
	seen := false
	for _, v := range refs {
		if v == 1 {
			if seen {
				hits1++
			}
			seen = true
		}
	}
	if res.Hits < hits1 {
		t.Fatalf("LFU hits = %d, want at least the %d hot-value re-references", res.Hits, hits1)
	}
}

func TestLFUDeclinesColdAdmission(t *testing.T) {
	// Cache full of hot values: a one-off value must not displace them.
	p := &LFU{}
	p.Reset(2, nil, nil)
	for i := 0; i < 5; i++ {
		p.Touch(i, 100, true)
		p.Touch(i, 200, true)
	}
	p.Touch(10, 7, false)
	if _, admit := p.Victim(10, 7, []int{100, 200}); admit {
		t.Fatal("LFU admitted a cold value over hot ones")
	}
}

func TestLRUKPrefersEvictingSingleReferenceValues(t *testing.T) {
	p := &LRUK{K: 2}
	p.Reset(3, nil, nil)
	// 10 referenced twice (old), 20 referenced once (recent).
	p.Touch(0, 10, false)
	p.Touch(1, 10, true)
	p.Touch(5, 20, false)
	v, admit := p.Victim(6, 30, []int{10, 20})
	if !admit || v != 1 {
		t.Fatalf("LRU-2 victim = %d, want 20 (no full k-history)", v)
	}
}

func TestLRUKDegeneratesToLRUForK1(t *testing.T) {
	refs := []int{1, 2, 3, 1, 4, 2, 5, 1, 2, 3}
	a := run(refs, &LRUK{K: 1}, 2, 1)
	b := run(refs, &LRU{}, 2, 1)
	if a.Hits != b.Hits {
		t.Fatalf("LRU-1 hits %d != LRU hits %d", a.Hits, b.Hits)
	}
}

func TestLRUKRequiresPositiveK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("K=0 did not panic")
		}
	}()
	(&LRUK{}).Reset(1, nil, nil)
}

func TestLFDIsOptimalOnBeladySequence(t *testing.T) {
	refs := []int{1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5}
	res := run(refs, &LFD{}, 3, 1)
	// OPT (Belady) incurs 7 misses on this classic sequence with capacity 3.
	if res.Misses != 7 {
		t.Fatalf("LFD misses = %d, want 7", res.Misses)
	}
}

// LFD never loses to any online policy on random traces.
func TestQuickLFDOptimality(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		n := 10 + rng.IntN(100)
		vals := 3 + rng.IntN(6)
		refs := make([]int, n)
		for i := range refs {
			refs[i] = rng.IntN(vals)
		}
		capacity := 1 + rng.IntN(3)
		lfd := run(refs, &LFD{}, capacity, seed)
		for _, p := range []cachesim.Policy{&LRU{}, &LFU{}, &LRUK{K: 2}, &Rand{}} {
			if run(refs, p, capacity, seed).Hits > lfd.Hits {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestAoMatchesLFUOrderingForStationary(t *testing.T) {
	// With the true stationary probabilities, Ao evicts the lowest-p value.
	probs := map[int]float64{1: 0.5, 2: 0.3, 3: 0.2}
	ao := &Ao{P: func(_, v int) float64 { return probs[v] }}
	ao.Reset(2, nil, nil)
	v, admit := ao.Victim(0, 2, []int{1, 3})
	if !admit || v != 1 {
		t.Fatalf("Ao victim = %d admit=%v, want index 1 (value 3)", v, admit)
	}
	// Incoming value with the lowest probability is not admitted.
	if _, admit := ao.Victim(0, 3, []int{1, 2}); admit {
		t.Fatal("Ao admitted the least probable value")
	}
}

func TestAoBeatsLRUOnSkewedStationaryStream(t *testing.T) {
	p := dist.NewTable(0, []float64{40, 20, 10, 8, 6, 5, 4, 3, 2, 2})
	proc := &process.Stationary{P: p}
	refs := proc.Generate(stats.NewRNG(8), 4000)
	ao := &Ao{P: func(_, v int) float64 { return p.Prob(v) }}
	aoRes := run(refs, ao, 3, 1)
	lruRes := run(refs, &LRU{}, 3, 1)
	if aoRes.Hits < lruRes.Hits {
		t.Fatalf("Ao hits %d < LRU hits %d on stationary skewed stream", aoRes.Hits, lruRes.Hits)
	}
}

func TestAoRequiresModel(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Ao without model did not panic")
		}
	}()
	(&Ao{}).Reset(1, nil, nil)
}

func TestHEEBRequiresModel(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("HEEB without model did not panic")
		}
	}()
	(&HEEB{}).Reset(1, nil, nil)
}

func TestHEEBCachingAR1BeatsRandAndTracksLFD(t *testing.T) {
	// REAL-style AR(1) reference stream (scaled by 10).
	model := &process.AR1{Phi0: 55.9, Phi1: 0.72, Sigma: 42.2, Init: 200}
	refs := model.Generate(stats.NewRNG(17), 3650)
	capacity := 100
	heeb := run(refs, &HEEB{Model: model}, capacity, 1)
	randRes := run(refs, &Rand{}, capacity, 1)
	lfd := run(refs, &LFD{}, capacity, 1)
	if heeb.Misses >= randRes.Misses {
		t.Fatalf("HEEB misses %d >= RAND misses %d", heeb.Misses, randRes.Misses)
	}
	if heeb.Misses < lfd.Misses {
		t.Fatalf("HEEB beat the offline optimum (%d < %d): accounting bug", heeb.Misses, lfd.Misses)
	}
}

func TestHEEBCachingWalkUsesH1(t *testing.T) {
	model := &process.GaussianWalk{Sigma: 1, Init: 0}
	refs := model.Generate(stats.NewRNG(3), 1500)
	heeb := &HEEB{Model: model}
	res := run(refs, heeb, 20, 1)
	if heeb.h1 == nil {
		t.Fatal("walk model should precompute h1")
	}
	randRes := run(refs, &Rand{}, 20, 1)
	if res.Misses > randRes.Misses {
		t.Fatalf("HEEB(h1) misses %d > RAND %d", res.Misses, randRes.Misses)
	}
}

func TestHEEBCachingStationaryUsesDirectForm(t *testing.T) {
	p := dist.NewTable(0, []float64{5, 4, 3, 2, 1})
	model := &process.Stationary{P: p}
	refs := model.Generate(stats.NewRNG(5), 2000)
	heeb := &HEEB{Model: model}
	res := run(refs, heeb, 2, 1)
	if heeb.h1 != nil || heeb.h2 != nil {
		t.Fatal("stationary model should use the direct CacheH form")
	}
	// For a stationary stream HEEB's ordering coincides with Ao/LFU
	// (Section 5.2), so it must match Ao's hits.
	ao := &Ao{P: func(_, v int) float64 { return p.Prob(v) }}
	aoRes := run(refs, ao, 2, 1)
	if res.Hits != aoRes.Hits {
		t.Fatalf("HEEB hits %d != Ao hits %d on stationary stream", res.Hits, aoRes.Hits)
	}
}

func TestRandVictimInRange(t *testing.T) {
	p := &Rand{}
	p.Reset(3, nil, stats.NewRNG(1))
	for i := 0; i < 100; i++ {
		v, admit := p.Victim(i, 9, []int{1, 2, 3})
		if !admit || v < 0 || v > 2 {
			t.Fatalf("bad victim %d", v)
		}
	}
}

func TestPolicyNames(t *testing.T) {
	for p, want := range map[interface{ Name() string }]string{
		&LRU{}: "LRU", &LFU{}: "PROB(LFU)", &LRUK{K: 2}: "LRU-2",
		&Rand{}: "RAND", &LFD{}: "LFD", &Ao{}: "A0", &HEEB{}: "HEEB",
	} {
		if got := p.Name(); got != want {
			t.Fatalf("Name = %q, want %q", got, want)
		}
	}
}

func TestHEEBCachingMarkovChain(t *testing.T) {
	// A strongly structured chain: a few "hot loop" states and rarely
	// visited cold states. HEEB's first-passage scoring should beat RAND.
	p := [][]float64{
		{0.6, 0.3, 0.05, 0.05},
		{0.3, 0.6, 0.05, 0.05},
		{0.45, 0.45, 0.05, 0.05},
		{0.45, 0.45, 0.05, 0.05},
	}
	model, err := process.NewMarkovChain(0, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	refs := model.Generate(stats.NewRNG(21), 3000)
	heeb := &HEEB{Model: model}
	res := run(refs, heeb, 2, 1)
	if heeb.markov == nil {
		t.Fatal("Markov model should select the first-passage scorer")
	}
	randRes := run(refs, &Rand{}, 2, 1)
	lfd := run(refs, &LFD{}, 2, 1)
	if res.Misses > randRes.Misses {
		t.Fatalf("HEEB(markov) misses %d > RAND %d", res.Misses, randRes.Misses)
	}
	if res.Misses < lfd.Misses {
		t.Fatalf("HEEB beat LFD (%d < %d)", res.Misses, lfd.Misses)
	}
}
