// Package cachesim simulates the paper's caching problem: an equijoin
// between a reference stream and a database relation through a fixed-size
// cache of database tuples, counting hits and misses. It also implements the
// Section 2 reduction from caching to joining (Theorem 1), which the tests
// use to cross-validate the two simulators.
package cachesim

import (
	"fmt"

	"stochstream/internal/stats"
)

// Policy is a cache-replacement policy for the caching problem. Every
// reference tuple joins exactly one database tuple (identified by its join
// attribute value), so the cache holds plain values.
type Policy interface {
	// Name identifies the policy in experiment reports.
	Name() string
	// Reset prepares for a new run over the given reference sequence. refs
	// is provided so offline policies (LFD) can see the future; online
	// policies must only use it through Touch.
	Reset(capacity int, refs []int, rng *stats.RNG)
	// Touch is called on every reference so the policy can maintain
	// recency/frequency state.
	Touch(t int, v int, hit bool)
	// Victim chooses which cached value to evict to admit v after a miss at
	// time t, or returns admit = false to leave the cache unchanged (the
	// fetched tuple is not cached). victim indexes cached.
	Victim(t int, v int, cached []int) (victim int, admit bool)
}

// Result summarizes one caching run.
type Result struct {
	Hits   int
	Misses int
	// MissesAfterWarmup counts misses at t >= warmup.
	MissesAfterWarmup int
	// HitTrace, when requested, records per-step hit (1) / miss (0).
	HitTrace []byte
}

// Config controls a run.
type Config struct {
	Capacity int
	// Warmup excludes early steps from MissesAfterWarmup (Misses always
	// counts everything, matching the paper's Figure 13 single-run totals).
	Warmup int
	// TrackTrace records the per-step hit trace.
	TrackTrace bool
}

// Run replays the reference sequence against the policy.
func Run(refs []int, p Policy, cfg Config, rng *stats.RNG) Result {
	if cfg.Capacity < 1 {
		panic("cachesim: capacity must be >= 1")
	}
	p.Reset(cfg.Capacity, refs, rng)
	cache := make([]int, 0, cfg.Capacity)
	pos := make(map[int]int, cfg.Capacity) // value -> index in cache
	var res Result
	if cfg.TrackTrace {
		res.HitTrace = make([]byte, 0, len(refs))
	}
	for t, v := range refs {
		_, hit := pos[v]
		p.Touch(t, v, hit)
		if hit {
			res.Hits++
		} else {
			res.Misses++
			if t >= cfg.Warmup {
				res.MissesAfterWarmup++
			}
			if len(cache) < cfg.Capacity {
				pos[v] = len(cache)
				cache = append(cache, v)
			} else if victim, admit := p.Victim(t, v, cache); admit {
				if victim < 0 || victim >= len(cache) {
					panic(fmt.Sprintf("cachesim: policy %s returned invalid victim %d", p.Name(), victim))
				}
				delete(pos, cache[victim])
				cache[victim] = v
				pos[v] = victim
			}
		}
		if cfg.TrackTrace {
			b := byte(0)
			if hit {
				b = 1
			}
			res.HitTrace = append(res.HitTrace, b)
		}
	}
	return res
}
