package cachesim

import (
	"testing"
	"testing/quick"

	"stochstream/internal/cachepolicy"
	"stochstream/internal/join"
	"stochstream/internal/stats"
)

func TestRunCountsHitsAndMisses(t *testing.T) {
	refs := []int{1, 2, 1, 3, 2, 1}
	res := Run(refs, &cachepolicy.LRU{}, Config{Capacity: 10}, stats.NewRNG(1))
	// Compulsory misses for 1, 2, 3; the rest hit.
	if res.Misses != 3 || res.Hits != 3 {
		t.Fatalf("hits/misses = %d/%d, want 3/3", res.Hits, res.Misses)
	}
}

func TestRunWarmupCounter(t *testing.T) {
	refs := []int{1, 2, 3, 4}
	res := Run(refs, &cachepolicy.LRU{}, Config{Capacity: 1, Warmup: 2}, stats.NewRNG(1))
	if res.Misses != 4 || res.MissesAfterWarmup != 2 {
		t.Fatalf("misses = %d/%d, want 4/2", res.Misses, res.MissesAfterWarmup)
	}
}

func TestRunHitTrace(t *testing.T) {
	refs := []int{1, 1, 2, 1}
	res := Run(refs, &cachepolicy.LRU{}, Config{Capacity: 5, TrackTrace: true}, stats.NewRNG(1))
	want := []byte{0, 1, 0, 1}
	for i := range want {
		if res.HitTrace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", res.HitTrace, want)
		}
	}
}

func TestRunLRUEviction(t *testing.T) {
	// Capacity 2: referencing 1, 2, 3 evicts 1; then 1 misses again.
	refs := []int{1, 2, 3, 1}
	res := Run(refs, &cachepolicy.LRU{}, Config{Capacity: 2}, stats.NewRNG(1))
	if res.Hits != 0 || res.Misses != 4 {
		t.Fatalf("hits/misses = %d/%d, want 0/4", res.Hits, res.Misses)
	}
	// Capacity 2 with re-touch: 1, 2, 1, 3 evicts 2 (LRU), so final 1 hits.
	refs2 := []int{1, 2, 1, 3, 1}
	res2 := Run(refs2, &cachepolicy.LRU{}, Config{Capacity: 2}, stats.NewRNG(1))
	if res2.Hits != 2 {
		t.Fatalf("hits = %d, want 2", res2.Hits)
	}
}

func TestRunPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("capacity 0 did not panic")
		}
	}()
	Run([]int{1}, &cachepolicy.LRU{}, Config{Capacity: 0}, stats.NewRNG(1))
}

func TestReduceProducesDistinctStreams(t *testing.T) {
	refs := []int{7, 8, 7, 9, 7}
	r, s := Reduce(refs)
	if len(r) != len(refs) || len(s) != len(refs) {
		t.Fatal("length mismatch")
	}
	// No duplicates within either stream (the paper's observation 1).
	seenR, seenS := map[int]bool{}, map[int]bool{}
	for i := range r {
		if seenR[r[i]] || seenS[s[i]] {
			t.Fatalf("duplicate within a stream: r=%v s=%v", r, s)
		}
		seenR[r[i]] = true
		seenS[s[i]] = true
	}
	// The k-th S' tuple joins exactly the (k+1)-th occurrence in R':
	// s[0] encodes (7,1) and r[2] encodes (7,1).
	if s[0] != r[2] {
		t.Fatalf("supply tuple should match next occurrence: s[0]=%d r[2]=%d", s[0], r[2])
	}
	if s[2] != r[4] {
		t.Fatalf("s[2]=%d should equal r[4]=%d", s[2], r[4])
	}
	// And never an earlier or same-time occurrence.
	if s[0] == r[0] {
		t.Fatal("supply tuple equals its own occurrence")
	}
}

// Theorem 1: the number of cache hits equals the number of join results
// under the reduction, for every reasonable policy.
func theorem1Holds(t *testing.T, refs []int, capacity int, mk func() Policy, seed uint64) {
	t.Helper()
	cacheRes := Run(refs, mk(), Config{Capacity: capacity}, stats.NewRNG(seed))
	rPrime, sPrime := Reduce(refs)
	adapter := NewJoinAdapter(mk(), refs)
	joinRes := join.Run(rPrime, sPrime, adapter, join.Config{CacheSize: capacity, Warmup: 0}, stats.NewRNG(seed))
	if cacheRes.Hits != joinRes.TotalJoins {
		t.Fatalf("Theorem 1 violated: hits %d != joins %d (refs=%v cap=%d policy=%s)",
			cacheRes.Hits, joinRes.TotalJoins, refs, capacity, mk().Name())
	}
}

func TestTheorem1LRU(t *testing.T) {
	theorem1Holds(t, []int{1, 2, 1, 3, 1, 2, 4, 1, 2, 3}, 2, func() Policy { return &cachepolicy.LRU{} }, 1)
}

func TestTheorem1LFU(t *testing.T) {
	theorem1Holds(t, []int{5, 5, 6, 7, 5, 6, 8, 5, 7, 6, 5}, 2, func() Policy { return &cachepolicy.LFU{} }, 1)
}

func TestTheorem1LFD(t *testing.T) {
	theorem1Holds(t, []int{1, 2, 3, 1, 2, 4, 3, 1, 4, 2}, 2, func() Policy { return &cachepolicy.LFD{} }, 1)
}

func TestTheorem1LRUK(t *testing.T) {
	// Theorem 1 applies to policies that are deterministic functions of the
	// cache state and reference history (RAND's victim depends on internal
	// cache ordering, which legitimately differs across the reduction).
	theorem1Holds(t, []int{1, 2, 3, 1, 2, 4, 3, 1, 1, 2, 3, 4}, 2, func() Policy { return &cachepolicy.LRUK{K: 2} }, 42)
}

// Property form over random reference sequences and policies.
func TestQuickTheorem1(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		n := 5 + rng.IntN(40)
		vals := 2 + rng.IntN(5)
		refs := make([]int, n)
		for i := range refs {
			refs[i] = rng.IntN(vals)
		}
		capacity := 1 + rng.IntN(3)
		var mk func() Policy
		switch rng.IntN(4) {
		case 0:
			mk = func() Policy { return &cachepolicy.LRU{} }
		case 1:
			mk = func() Policy { return &cachepolicy.LFU{} }
		case 2:
			mk = func() Policy { return &cachepolicy.LFD{} }
		default:
			mk = func() Policy { return &cachepolicy.LRUK{K: 2} }
		}
		cacheRes := Run(refs, mk(), Config{Capacity: capacity}, stats.NewRNG(seed+1))
		rPrime, sPrime := Reduce(refs)
		adapter := NewJoinAdapter(mk(), refs)
		joinRes := join.Run(rPrime, sPrime, adapter, join.Config{CacheSize: capacity, Warmup: 0}, stats.NewRNG(seed+1))
		return cacheRes.Hits == joinRes.TotalJoins
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// The reduction preserves optimality: LFD through the adapter achieves the
// same joins as the offline flow optimum restricted to reasonable policies.
func TestReductionLFDIsOptimalAmongReasonable(t *testing.T) {
	refs := []int{1, 2, 3, 1, 2, 4, 3, 1, 4, 2, 1, 3}
	capacity := 2
	lfd := Run(refs, &cachepolicy.LFD{}, Config{Capacity: capacity}, stats.NewRNG(1))
	for _, other := range []Policy{&cachepolicy.LRU{}, &cachepolicy.LFU{}, &cachepolicy.LRUK{K: 2}} {
		res := Run(refs, other, Config{Capacity: capacity}, stats.NewRNG(1))
		if res.Hits > lfd.Hits {
			t.Fatalf("%s beat LFD: %d > %d", other.Name(), res.Hits, lfd.Hits)
		}
	}
}

// Property: hits + misses == len(refs), hit rate can only improve with
// capacity for LFD, and the hit trace is consistent with the counters.
func TestQuickCacheAccounting(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		n := 10 + rng.IntN(200)
		vals := 2 + rng.IntN(8)
		refs := make([]int, n)
		for i := range refs {
			refs[i] = rng.IntN(vals)
		}
		cap1 := 1 + rng.IntN(4)
		res := Run(refs, &cachepolicy.LFD{}, Config{Capacity: cap1, TrackTrace: true}, stats.NewRNG(seed))
		if res.Hits+res.Misses != n {
			return false
		}
		hits := 0
		for _, b := range res.HitTrace {
			hits += int(b)
		}
		if hits != res.Hits {
			return false
		}
		bigger := Run(refs, &cachepolicy.LFD{}, Config{Capacity: cap1 + 2}, stats.NewRNG(seed))
		return bigger.Hits >= res.Hits
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
