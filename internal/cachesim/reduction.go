package cachesim

import (
	"stochstream/internal/core"
	"stochstream/internal/join"
	"stochstream/internal/stats"
)

// Reduce converts a caching-problem reference sequence into the two joining
// streams of the Section 2 reduction: the i-th occurrence (0-based) of value
// v becomes the pair (v, i) in the reference stream R′ and (v, i+1) in the
// supply stream S′, so that each supply tuple joins exactly the next
// occurrence of its value. Pairs are encoded into single ints via a dense
// dictionary, preserving equality.
func Reduce(refs []int) (rPrime, sPrime []int) {
	occ := make(map[int]int, len(refs))
	code := make(map[[2]int]int)
	encode := func(v, i int) int {
		k := [2]int{v, i}
		c, ok := code[k]
		if !ok {
			c = len(code)
			code[k] = c
		}
		return c
	}
	rPrime = make([]int, len(refs))
	sPrime = make([]int, len(refs))
	for t, v := range refs {
		i := occ[v]
		occ[v] = i + 1
		rPrime[t] = encode(v, i)
		sPrime[t] = encode(v, i+1)
	}
	return rPrime, sPrime
}

// JoinAdapter wraps a caching policy as a joining policy over the reduced
// streams, implementing a "reasonable replacement policy" in the sense of
// Theorem 1: it never caches reference-stream tuples and always replaces the
// supply tuple that has just produced its (single possible) join result.
// Running it through join.Run yields exactly as many result tuples as the
// caching policy yields hits (Theorem 1), which reduction_test verifies.
type JoinAdapter struct {
	Inner Policy
	// Refs is the original (un-encoded) reference sequence, needed to feed
	// the inner policy the values it understands.
	Refs []int

	capacity int
	// decode maps encoded supply-tuple values back to their database value.
	decode map[int]int
}

// NewJoinAdapter builds the adapter; rPrime/sPrime must come from
// Reduce(refs).
func NewJoinAdapter(inner Policy, refs []int) *JoinAdapter {
	return &JoinAdapter{Inner: inner, Refs: refs}
}

// Name implements join.Policy.
func (a *JoinAdapter) Name() string { return "reduced(" + a.Inner.Name() + ")" }

// EagerEvict implements join.EagerEvictor: the adapter discards
// reference-stream tuples and expired supply tuples at every step, whether
// or not the cache is overflowing.
func (a *JoinAdapter) EagerEvict() {}

// Reset implements join.Policy.
func (a *JoinAdapter) Reset(cfg join.Config, rng *stats.RNG) {
	a.capacity = cfg.CacheSize
	a.Inner.Reset(cfg.CacheSize, a.Refs, rng)
	// Rebuild the decode table exactly as Reduce built the encode table.
	occ := make(map[int]int, len(a.Refs))
	code := 0
	a.decode = make(map[int]int)
	seen := make(map[[2]int]int)
	encode := func(v, i int) int {
		k := [2]int{v, i}
		c, ok := seen[k]
		if !ok {
			c = code
			code++
			seen[k] = c
		}
		return c
	}
	for _, v := range a.Refs {
		i := occ[v]
		occ[v] = i + 1
		encode(v, i)        // R' tuple
		c := encode(v, i+1) // S' tuple
		a.decode[c] = v
	}
}

// Evict implements join.Policy. candidates = cached S′ tuples + new R′ tuple
// + new S′ tuple; exactly the last two slots hold the arrivals (the
// simulator appends arrivals after the cache).
func (a *JoinAdapter) Evict(st *join.State, cands []join.Tuple, n int) []int {
	t := st.Time
	v := a.Refs[t]
	var evict []int

	// The reference-stream arrival is never cached (reasonable policy /
	// Observation 3 of Section 2).
	for i, c := range cands {
		if c.Stream == core.StreamR {
			evict = append(evict, i)
		}
	}

	// Hit: the cached supply tuple for (v, k) just joined and expires —
	// replace it with the newly arrived relabeled copy (v, k+1).
	hitIdx := -1
	for i, c := range cands {
		if c.Stream == core.StreamS && c.Arrived < t && a.decode[c.Value] == v {
			// The expired copy is the one whose encoded pair matches the
			// current reference arrival's pair: its encoded value equals the
			// R' arrival's encoded value... the R' arrival at t encodes
			// (v, k) and the expired supply tuple also encodes (v, k) — but
			// supply tuples encode (v, i+1), so equality with the *next* R'
			// occurrence is what identifies it. The simplest correct test:
			// it is the unique cached S' tuple whose decoded value is v.
			hitIdx = i
			break
		}
	}
	a.Inner.Touch(t, v, hitIdx >= 0)
	if hitIdx >= 0 {
		evict = append(evict, hitIdx)
		return evict
	}

	// Miss: ask the inner policy whether (and what) to evict for v.
	var cachedVals []int
	var cachedIdx []int
	for i, c := range cands {
		if c.Stream == core.StreamS && c.Arrived < t {
			cachedVals = append(cachedVals, a.decode[c.Value])
			cachedIdx = append(cachedIdx, i)
		}
	}
	newSIdx := -1
	for i, c := range cands {
		if c.Stream == core.StreamS && c.Arrived == t {
			newSIdx = i
		}
	}
	if len(cachedVals) >= a.capacity {
		if victim, admit := a.Inner.Victim(t, v, cachedVals); admit {
			evict = append(evict, cachedIdx[victim])
		} else {
			evict = append(evict, newSIdx)
		}
	}
	return evict
}
