// Package dist provides discrete probability mass functions over the
// integers, together with the operations the stream models in this module
// need: shifting, convolution, mixing, moments, CDFs and sampling.
//
// All join-attribute values in the paper are discrete, so every distribution
// here is integer-valued with finite support. A PMF reports an inclusive
// support window [Lo, Hi] outside of which Prob is exactly zero; inside the
// window Prob may still be zero for individual points.
package dist

import (
	"fmt"
	"math"
)

// PMF is a probability mass function over the integers with finite support.
//
// Implementations must be immutable after construction: the stream models
// share PMFs freely across goroutines and across simulation steps.
type PMF interface {
	// Prob returns Pr{X = v}. It is zero outside [Support()].
	Prob(v int) float64
	// Support returns the inclusive interval outside of which Prob is zero.
	Support() (lo, hi int)
}

// Sampler is implemented by PMFs that can draw variates directly. PMFs that
// do not implement Sampler can be sampled through SampleInverse.
type Sampler interface {
	Sample(u float64) int
}

// Mean returns the expected value of p.
func Mean(p PMF) float64 {
	lo, hi := p.Support()
	var m float64
	for v := lo; v <= hi; v++ {
		m += float64(v) * p.Prob(v)
	}
	return m
}

// Variance returns the variance of p.
func Variance(p PMF) float64 {
	lo, hi := p.Support()
	m := Mean(p)
	var s float64
	for v := lo; v <= hi; v++ {
		d := float64(v) - m
		s += d * d * p.Prob(v)
	}
	return s
}

// StdDev returns the standard deviation of p.
func StdDev(p PMF) float64 { return math.Sqrt(Variance(p)) }

// TotalMass sums Prob over the support. A well-formed PMF returns a value
// within rounding error of 1; the tests use this as an invariant.
func TotalMass(p PMF) float64 {
	lo, hi := p.Support()
	var s float64
	for v := lo; v <= hi; v++ {
		s += p.Prob(v)
	}
	return s
}

// CDF returns Pr{X <= v}.
func CDF(p PMF, v int) float64 {
	lo, hi := p.Support()
	if v < lo {
		return 0
	}
	if v >= hi {
		return 1
	}
	var s float64
	for x := lo; x <= v; x++ {
		s += p.Prob(x)
	}
	return s
}

// Entropy returns the Shannon entropy of p in nats.
func Entropy(p PMF) float64 {
	lo, hi := p.Support()
	var h float64
	for v := lo; v <= hi; v++ {
		q := p.Prob(v)
		if q > 0 {
			h -= q * math.Log(q)
		}
	}
	return h
}

// SampleInverse draws a variate from p by inverse-CDF search using the
// uniform variate u in [0, 1). It works for any PMF; Table-backed PMFs offer
// a faster direct Sampler.
func SampleInverse(p PMF, u float64) int {
	lo, hi := p.Support()
	var c float64
	for v := lo; v <= hi; v++ {
		c += p.Prob(v)
		if u < c {
			return v
		}
	}
	return hi
}

// Sample draws from p using u in [0, 1), preferring the PMF's own Sampler.
func Sample(p PMF, u float64) int {
	if s, ok := p.(Sampler); ok {
		return s.Sample(u)
	}
	return SampleInverse(p, u)
}

// DotProduct returns Σ_v a.Prob(v)·b.Prob(v), the probability that two
// independent draws from a and b are equal. FlowExpect uses this to weight
// arcs out of undetermined nodes.
func DotProduct(a, b PMF) float64 {
	alo, ahi := a.Support()
	blo, bhi := b.Support()
	lo, hi := max(alo, blo), min(ahi, bhi)
	var s float64
	for v := lo; v <= hi; v++ {
		s += a.Prob(v) * b.Prob(v)
	}
	return s
}

// validateInterval panics if lo > hi; constructors use it to reject
// malformed supports early rather than producing silently-empty PMFs.
func validateInterval(lo, hi int, what string) {
	if lo > hi {
		panic(fmt.Sprintf("dist: %s has empty support [%d, %d]", what, lo, hi))
	}
}
