package dist

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

const tol = 1e-9

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestPointMass(t *testing.T) {
	p := NewPointMass(7)
	if got := p.Prob(7); got != 1 {
		t.Fatalf("Prob(7) = %v, want 1", got)
	}
	if got := p.Prob(6); got != 0 {
		t.Fatalf("Prob(6) = %v, want 0", got)
	}
	if lo, hi := p.Support(); lo != 7 || hi != 7 {
		t.Fatalf("Support() = [%d,%d], want [7,7]", lo, hi)
	}
	if got := Mean(p); got != 7 {
		t.Fatalf("Mean = %v, want 7", got)
	}
	if got := Variance(p); got != 0 {
		t.Fatalf("Variance = %v, want 0", got)
	}
	if got := p.Sample(0.3); got != 7 {
		t.Fatalf("Sample = %v, want 7", got)
	}
}

func TestUniformBasics(t *testing.T) {
	u := NewUniform(-10, 10)
	if got := u.Prob(0); !almostEqual(got, 1.0/21, tol) {
		t.Fatalf("Prob(0) = %v, want 1/21", got)
	}
	if got := u.Prob(11); got != 0 {
		t.Fatalf("Prob(11) = %v, want 0", got)
	}
	if got := Mean(u); !almostEqual(got, 0, tol) {
		t.Fatalf("Mean = %v, want 0", got)
	}
	// Var of discrete uniform on [-w, w] with n = 2w+1 points is (n^2-1)/12.
	want := (21.0*21.0 - 1) / 12
	if got := Variance(u); !almostEqual(got, want, 1e-8) {
		t.Fatalf("Variance = %v, want %v", got, want)
	}
	if got := TotalMass(u); !almostEqual(got, 1, tol) {
		t.Fatalf("TotalMass = %v, want 1", got)
	}
}

func TestUniformPanicsOnEmptySupport(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewUniform(3, 2) did not panic")
		}
	}()
	NewUniform(3, 2)
}

func TestUniformSampleCoversSupport(t *testing.T) {
	u := NewUniform(2, 5)
	seen := map[int]bool{}
	for i := 0; i < 4000; i++ {
		v := u.Sample(float64(i) / 4000)
		if v < 2 || v > 5 {
			t.Fatalf("Sample produced out-of-support value %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 4 {
		t.Fatalf("Sample covered %d values, want 4", len(seen))
	}
}

func TestTableNormalizesAndTrims(t *testing.T) {
	tab := NewTable(10, []float64{0, 0, 2, 6, 2, 0})
	lo, hi := tab.Support()
	if lo != 12 || hi != 14 {
		t.Fatalf("Support = [%d,%d], want [12,14]", lo, hi)
	}
	if got := tab.Prob(13); !almostEqual(got, 0.6, tol) {
		t.Fatalf("Prob(13) = %v, want 0.6", got)
	}
	if got := TotalMass(tab); !almostEqual(got, 1, tol) {
		t.Fatalf("TotalMass = %v, want 1", got)
	}
}

func TestTablePanics(t *testing.T) {
	for name, weights := range map[string][]float64{
		"all zero": {0, 0, 0},
		"negative": {0.5, -0.1, 0.6},
		"nan":      {math.NaN()},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewTable(%s) did not panic", name)
				}
			}()
			NewTable(0, weights)
		}()
	}
}

func TestTableSampleMatchesInverse(t *testing.T) {
	tab := NewTable(-3, []float64{1, 2, 3, 4})
	for i := 0; i <= 100; i++ {
		u := float64(i) / 101
		if got, want := tab.Sample(u), SampleInverse(tab, u); got != want {
			t.Fatalf("Sample(%v) = %d, SampleInverse = %d", u, got, want)
		}
	}
}

func TestBoundedNormalSymmetryAndMass(t *testing.T) {
	for _, sigma := range []float64{1, 2, 3.3, 5} {
		n := BoundedNormal(sigma, 15)
		if got := TotalMass(n); !almostEqual(got, 1, tol) {
			t.Fatalf("sigma=%v: TotalMass = %v, want 1", sigma, got)
		}
		if got := Mean(n); !almostEqual(got, 0, 1e-9) {
			t.Fatalf("sigma=%v: Mean = %v, want 0", sigma, got)
		}
		for v := 1; v <= 15; v++ {
			if !almostEqual(n.Prob(v), n.Prob(-v), tol) {
				t.Fatalf("sigma=%v: asymmetric at ±%d: %v vs %v", sigma, v, n.Prob(v), n.Prob(-v))
			}
		}
		// Unimodal at zero.
		if n.Prob(0) <= n.Prob(1) {
			t.Fatalf("sigma=%v: mode not at 0", sigma)
		}
	}
}

func TestBoundedNormalSmallSigmaConcentrates(t *testing.T) {
	n := BoundedNormal(1, 10)
	if got := n.Prob(0); got < 0.38 {
		t.Fatalf("Prob(0) = %v, want roughly 0.383 for sigma=1", got)
	}
	if got := n.Prob(9); got > 1e-10 {
		t.Fatalf("Prob(9) = %v, want ~0 for sigma=1", got)
	}
}

func TestNormalMatchesMoments(t *testing.T) {
	n := Normal(3.7, 2.5, 1e-12)
	if got := TotalMass(n); !almostEqual(got, 1, 1e-9) {
		t.Fatalf("TotalMass = %v, want 1", got)
	}
	if got := Mean(n); !almostEqual(got, 3.7, 1e-6) {
		t.Fatalf("Mean = %v, want 3.7", got)
	}
	// Discretization adds 1/12 to the variance (Sheppard's correction).
	if got := Variance(n); !almostEqual(got, 2.5*2.5+1.0/12, 0.01) {
		t.Fatalf("Variance = %v, want ~%v", got, 2.5*2.5+1.0/12)
	}
}

func TestNormalProbAgreesWithTable(t *testing.T) {
	n := Normal(-4.2, 1.7, 1e-12)
	lo, hi := n.Support()
	for v := lo; v <= hi; v++ {
		if got, want := NormalProb(v, -4.2, 1.7), n.Prob(v); !almostEqual(got, want, 1e-9) {
			t.Fatalf("NormalProb(%d) = %v, table has %v", v, got, want)
		}
	}
}

func TestEmpirical(t *testing.T) {
	e := Empirical([]int{3, 3, 3, 5, 5, 9, 3})
	if got := e.Prob(3); !almostEqual(got, 4.0/7, tol) {
		t.Fatalf("Prob(3) = %v, want 4/7", got)
	}
	if got := e.Prob(4); got != 0 {
		t.Fatalf("Prob(4) = %v, want 0", got)
	}
	if got := e.Prob(9); !almostEqual(got, 1.0/7, tol) {
		t.Fatalf("Prob(9) = %v, want 1/7", got)
	}
}

func TestEmpiricalPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Empirical(nil) did not panic")
		}
	}()
	Empirical(nil)
}

func TestShiftCollapsesAndPreservesMass(t *testing.T) {
	u := NewUniform(0, 4)
	s := Shift(Shift(u, 3), -1)
	if sh, ok := s.(Uniform); !ok || sh.Lo != 2 || sh.Hi != 6 {
		t.Fatalf("Shift of Uniform should stay Uniform on [2,6], got %#v", s)
	}
	n := BoundedNormal(2, 6)
	sn := Shift(Shift(n, 5), 5)
	if sh, ok := sn.(Shifted); !ok || sh.K != 10 {
		t.Fatalf("nested shifts should collapse to K=10, got %#v", sn)
	}
	if got := sn.Prob(10); !almostEqual(got, n.Prob(0), tol) {
		t.Fatalf("shifted Prob(10) = %v, want %v", got, n.Prob(0))
	}
	if got := Mean(sn); !almostEqual(got, 10, 1e-9) {
		t.Fatalf("shifted Mean = %v, want 10", got)
	}
	if got := Shift(u, 0); got != PMF(u) {
		t.Fatalf("Shift by 0 should be identity")
	}
}

func TestShiftPointMass(t *testing.T) {
	p := Shift(NewPointMass(2), 5)
	if pm, ok := p.(PointMass); !ok || pm.V != 7 {
		t.Fatalf("Shift(PointMass(2), 5) = %#v, want PointMass(7)", p)
	}
}

func TestConvolveUniforms(t *testing.T) {
	// Two fair dice: triangular distribution on [2, 12].
	d := NewUniform(1, 6)
	s := Convolve(d, d)
	if lo, hi := s.Support(); lo != 2 || hi != 12 {
		t.Fatalf("Support = [%d,%d], want [2,12]", lo, hi)
	}
	if got := s.Prob(7); !almostEqual(got, 6.0/36, tol) {
		t.Fatalf("Prob(7) = %v, want 6/36", got)
	}
	if got := s.Prob(2); !almostEqual(got, 1.0/36, tol) {
		t.Fatalf("Prob(2) = %v, want 1/36", got)
	}
	if got := TotalMass(s); !almostEqual(got, 1, tol) {
		t.Fatalf("TotalMass = %v, want 1", got)
	}
}

func TestConvolveMeansAdd(t *testing.T) {
	a := NewTable(0, []float64{1, 2, 1})
	b := NewTable(5, []float64{3, 1})
	c := Convolve(a, b)
	if got, want := Mean(c), Mean(a)+Mean(b); !almostEqual(got, want, 1e-9) {
		t.Fatalf("Mean(conv) = %v, want %v", got, want)
	}
	if got, want := Variance(c), Variance(a)+Variance(b); !almostEqual(got, want, 1e-9) {
		t.Fatalf("Var(conv) = %v, want %v", got, want)
	}
}

func TestConvolvePower(t *testing.T) {
	step := NewTable(-1, []float64{1, 0, 1}) // ±1 with prob 1/2
	for _, n := range []int{1, 2, 3, 5, 8} {
		p := ConvolvePower(step, n)
		if got := TotalMass(p); !almostEqual(got, 1, 1e-9) {
			t.Fatalf("n=%d: TotalMass = %v", n, got)
		}
		if got := Mean(p); !almostEqual(got, 0, 1e-9) {
			t.Fatalf("n=%d: Mean = %v, want 0", n, got)
		}
		if got := Variance(p); !almostEqual(got, float64(n), 1e-9) {
			t.Fatalf("n=%d: Variance = %v, want %d", n, got, n)
		}
		// Parity: after n ±1 steps only values with the same parity as n.
		lo, hi := p.Support()
		for v := lo; v <= hi; v++ {
			if (v+n)%2 != 0 && p.Prob(v) > 0 {
				t.Fatalf("n=%d: impossible parity value %d has mass %v", n, v, p.Prob(v))
			}
		}
	}
	if p := ConvolvePower(step, 0); p.Prob(0) != 1 {
		t.Fatal("ConvolvePower(_, 0) should be a point mass at 0")
	}
}

func TestMixture(t *testing.T) {
	m := NewMixture([]PMF{NewPointMass(0), NewPointMass(10)}, []float64{1, 3})
	if got := m.Prob(0); !almostEqual(got, 0.25, tol) {
		t.Fatalf("Prob(0) = %v, want 0.25", got)
	}
	if got := m.Prob(10); !almostEqual(got, 0.75, tol) {
		t.Fatalf("Prob(10) = %v, want 0.75", got)
	}
	if lo, hi := m.Support(); lo != 0 || hi != 10 {
		t.Fatalf("Support = [%d,%d], want [0,10]", lo, hi)
	}
	if got := Mean(m); !almostEqual(got, 7.5, tol) {
		t.Fatalf("Mean = %v, want 7.5", got)
	}
}

func TestMixturePanics(t *testing.T) {
	cases := []func(){
		func() { NewMixture(nil, nil) },
		func() { NewMixture([]PMF{NewPointMass(0)}, []float64{1, 2}) },
		func() { NewMixture([]PMF{NewPointMass(0)}, []float64{-1}) },
		func() { NewMixture([]PMF{NewPointMass(0)}, []float64{0}) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestDotProduct(t *testing.T) {
	a := NewUniform(0, 9)
	if got := DotProduct(a, a); !almostEqual(got, 0.1, tol) {
		t.Fatalf("DotProduct(U,U) = %v, want 0.1", got)
	}
	b := NewUniform(5, 14)
	if got := DotProduct(a, b); !almostEqual(got, 0.05, tol) {
		t.Fatalf("DotProduct overlap-half = %v, want 0.05", got)
	}
	c := NewUniform(100, 101)
	if got := DotProduct(a, c); got != 0 {
		t.Fatalf("DotProduct disjoint = %v, want 0", got)
	}
}

func TestCDF(t *testing.T) {
	u := NewUniform(0, 3)
	if got := CDF(u, -1); got != 0 {
		t.Fatalf("CDF(-1) = %v", got)
	}
	if got := CDF(u, 1); !almostEqual(got, 0.5, tol) {
		t.Fatalf("CDF(1) = %v, want 0.5", got)
	}
	if got := CDF(u, 3); got != 1 {
		t.Fatalf("CDF(3) = %v, want 1", got)
	}
	if got := CDF(u, 99); got != 1 {
		t.Fatalf("CDF(99) = %v, want 1", got)
	}
}

func TestEntropyUniformIsLogN(t *testing.T) {
	u := NewUniform(0, 7)
	if got := Entropy(u); !almostEqual(got, math.Log(8), tol) {
		t.Fatalf("Entropy = %v, want ln 8", got)
	}
	if got := Entropy(NewPointMass(3)); got != 0 {
		t.Fatalf("Entropy of point mass = %v, want 0", got)
	}
}

func TestMaterialize(t *testing.T) {
	n := Shift(BoundedNormal(2, 8), 100)
	m := Materialize(n)
	lo, hi := n.Support()
	if mlo, mhi := m.Support(); mlo != lo || mhi != hi {
		t.Fatalf("support mismatch: [%d,%d] vs [%d,%d]", mlo, mhi, lo, hi)
	}
	for v := lo; v <= hi; v++ {
		if !almostEqual(m.Prob(v), n.Prob(v), tol) {
			t.Fatalf("Prob(%d) mismatch: %v vs %v", v, m.Prob(v), n.Prob(v))
		}
	}
	if got := Materialize(m); got != m {
		t.Fatal("Materialize of a Table should return it unchanged")
	}
}

func TestSampleInverseExtremes(t *testing.T) {
	tab := NewTable(0, []float64{1, 1})
	if got := SampleInverse(tab, 0); got != 0 {
		t.Fatalf("SampleInverse(0) = %d, want 0", got)
	}
	if got := SampleInverse(tab, 0.999999); got != 1 {
		t.Fatalf("SampleInverse(~1) = %d, want 1", got)
	}
}

// Property: every constructor yields unit total mass, mean within support,
// and CDF reaching 1 at the upper end.
func TestQuickPMFInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b9))
		var p PMF
		switch rng.IntN(5) {
		case 0:
			lo := rng.IntN(41) - 20
			p = NewUniform(lo, lo+rng.IntN(30))
		case 1:
			p = BoundedNormal(0.5+rng.Float64()*5, 1+rng.IntN(20))
		case 2:
			w := make([]float64, 1+rng.IntN(15))
			for i := range w {
				w[i] = rng.Float64()
			}
			w[rng.IntN(len(w))] = 1 // ensure not all zero
			p = NewTable(rng.IntN(21)-10, w)
		case 3:
			a := BoundedNormal(1+rng.Float64(), 5)
			b := NewUniform(-3, 3)
			p = Convolve(a, b)
		default:
			p = Shift(BoundedNormal(2, 10), rng.IntN(100)-50)
		}
		if !almostEqual(TotalMass(p), 1, 1e-8) {
			return false
		}
		lo, hi := p.Support()
		m := Mean(p)
		if m < float64(lo)-1e-9 || m > float64(hi)+1e-9 {
			return false
		}
		if !almostEqual(CDF(p, hi), 1, 1e-8) {
			return false
		}
		if Variance(p) < -1e-12 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: sampling via the Table's binary search has the right frequencies.
func TestSampleFrequencies(t *testing.T) {
	tab := NewTable(0, []float64{1, 2, 3, 4})
	rng := rand.New(rand.NewPCG(42, 43))
	counts := make([]int, 4)
	const n = 200000
	for i := 0; i < n; i++ {
		counts[tab.Sample(rng.Float64())]++
	}
	for v := 0; v < 4; v++ {
		want := float64(v+1) / 10
		got := float64(counts[v]) / n
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("freq(%d) = %v, want ~%v", v, got, want)
		}
	}
}
