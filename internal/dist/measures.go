package dist

import "math"

// Quantile returns the smallest v with CDF(v) >= q, for q in (0, 1]. It
// panics for q outside (0, 1].
func Quantile(p PMF, q float64) int {
	if q <= 0 || q > 1 {
		panic("dist: Quantile requires q in (0, 1]")
	}
	lo, hi := p.Support()
	var c float64
	for v := lo; v <= hi; v++ {
		c += p.Prob(v)
		if c >= q-1e-15 {
			return v
		}
	}
	return hi
}

// KLDivergence returns D(p‖q) in nats, +Inf when p has mass where q does
// not. Model-selection diagnostics use it to compare fitted forecasts.
func KLDivergence(p, q PMF) float64 {
	lo, hi := p.Support()
	var d float64
	for v := lo; v <= hi; v++ {
		pv := p.Prob(v)
		if pv == 0 {
			continue
		}
		qv := q.Prob(v)
		if qv == 0 {
			return math.Inf(1)
		}
		d += pv * math.Log(pv/qv)
	}
	return d
}

// TotalVariation returns the total-variation distance ½·Σ|p−q| ∈ [0, 1].
func TotalVariation(p, q PMF) float64 {
	plo, phi := p.Support()
	qlo, qhi := q.Support()
	lo, hi := min(plo, qlo), max(phi, qhi)
	var s float64
	for v := lo; v <= hi; v++ {
		s += math.Abs(p.Prob(v) - q.Prob(v))
	}
	return s / 2
}
