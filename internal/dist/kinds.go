package dist

import "math"

// PointMass is the degenerate distribution concentrated at V. Deterministic
// (offline) streams forecast with point masses.
type PointMass struct{ V int }

// NewPointMass returns the distribution with all mass at v.
func NewPointMass(v int) PointMass { return PointMass{V: v} }

// Prob implements PMF.
func (p PointMass) Prob(v int) float64 {
	if v == p.V {
		return 1
	}
	return 0
}

// Support implements PMF.
func (p PointMass) Support() (int, int) { return p.V, p.V }

// Sample implements Sampler.
func (p PointMass) Sample(float64) int { return p.V }

// Uniform is the discrete uniform distribution over the inclusive integer
// interval [Lo, Hi]; the FLOOR workload uses bounded uniform noise.
type Uniform struct{ Lo, Hi int }

// NewUniform returns the uniform distribution on [lo, hi].
func NewUniform(lo, hi int) Uniform {
	validateInterval(lo, hi, "Uniform")
	return Uniform{Lo: lo, Hi: hi}
}

// Prob implements PMF.
func (u Uniform) Prob(v int) float64 {
	if v < u.Lo || v > u.Hi {
		return 0
	}
	return 1 / float64(u.Hi-u.Lo+1)
}

// Support implements PMF.
func (u Uniform) Support() (int, int) { return u.Lo, u.Hi }

// Sample implements Sampler.
func (u Uniform) Sample(x float64) int {
	n := u.Hi - u.Lo + 1
	i := int(x * float64(n))
	if i >= n {
		i = n - 1
	}
	return u.Lo + i
}

// Table is an explicit finite PMF: Probs[i] is the probability of value
// Offset+i. Convolutions, empirical histograms and discretized continuous
// distributions all normalize into a Table.
type Table struct {
	Offset int
	Probs  []float64
	cum    []float64 // cumulative sums for O(log n) sampling
}

// NewTable builds a Table from probabilities starting at offset. The weights
// are normalized to sum to one; leading and trailing zeros are trimmed so the
// reported support is tight. NewTable panics if all weights are zero or any
// weight is negative.
func NewTable(offset int, weights []float64) *Table {
	lo, hi := -1, -1
	var sum float64
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic("dist: NewTable given negative or NaN weight")
		}
		if w > 0 {
			if lo < 0 {
				lo = i
			}
			hi = i
		}
		sum += w
	}
	if lo < 0 {
		panic("dist: NewTable given all-zero weights")
	}
	probs := make([]float64, hi-lo+1)
	cum := make([]float64, hi-lo+1)
	var c float64
	for i := range probs {
		probs[i] = weights[lo+i] / sum
		c += probs[i]
		cum[i] = c
	}
	return &Table{Offset: offset + lo, Probs: probs, cum: cum}
}

// Prob implements PMF.
func (t *Table) Prob(v int) float64 {
	i := v - t.Offset
	if i < 0 || i >= len(t.Probs) {
		return 0
	}
	return t.Probs[i]
}

// Support implements PMF.
func (t *Table) Support() (int, int) { return t.Offset, t.Offset + len(t.Probs) - 1 }

// Sample implements Sampler by binary search over the cumulative table.
func (t *Table) Sample(u float64) int {
	lo, hi := 0, len(t.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if t.cum[mid] > u {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return t.Offset + lo
}

// BoundedNormal is a zero-mean normal distribution with standard deviation
// Sigma, truncated to [-Bound, Bound], discretized at the integers and
// renormalized. The TOWER and ROOF workloads use it as their noise term, and
// random-walk steps and AR(1) innovations discretize through it as well.
//
// The mass at integer v is proportional to ∫_{v-1/2}^{v+1/2} φ(x/σ)/σ dx,
// computed with the error function.
func BoundedNormal(sigma float64, bound int) *Table {
	if sigma <= 0 {
		panic("dist: BoundedNormal requires sigma > 0")
	}
	validateInterval(-bound, bound, "BoundedNormal")
	w := make([]float64, 2*bound+1)
	for v := -bound; v <= bound; v++ {
		a := (float64(v) - 0.5) / (sigma * math.Sqrt2)
		b := (float64(v) + 0.5) / (sigma * math.Sqrt2)
		w[v+bound] = 0.5 * (math.Erf(b) - math.Erf(a))
	}
	return NewTable(-bound, w)
}

// Normal is an unbounded discretized normal with the given mean and standard
// deviation, truncated at tails mass below tailEps on each side. AR(1) and
// random-walk multi-step forecasts use it as the closed-form marginal.
func Normal(mean, sigma, tailEps float64) *Table {
	if sigma <= 0 {
		panic("dist: Normal requires sigma > 0")
	}
	if tailEps <= 0 {
		tailEps = 1e-9
	}
	// Half-width covering all but tailEps of each tail.
	half := int(math.Ceil(sigma*invTail(tailEps))) + 1
	center := int(math.Round(mean))
	w := make([]float64, 2*half+1)
	for i := range w {
		v := center - half + i
		a := (float64(v) - 0.5 - mean) / (sigma * math.Sqrt2)
		b := (float64(v) + 0.5 - mean) / (sigma * math.Sqrt2)
		w[i] = 0.5 * (math.Erf(b) - math.Erf(a))
	}
	return NewTable(center-half, w)
}

// invTail returns z such that the standard normal upper-tail mass beyond z is
// approximately eps, via bisection on erfc.
func invTail(eps float64) float64 {
	lo, hi := 0.0, 40.0
	for i := 0; i < 80; i++ {
		mid := (lo + hi) / 2
		if 0.5*math.Erfc(mid/math.Sqrt2) > eps {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}

// NormalProb returns the discretized-normal mass at integer v for the given
// mean and standard deviation, without materializing a Table. HEEB's
// closed-form AR(1)/random-walk sums use this in their inner loop.
func NormalProb(v int, mean, sigma float64) float64 {
	a := (float64(v) - 0.5 - mean) / (sigma * math.Sqrt2)
	b := (float64(v) + 0.5 - mean) / (sigma * math.Sqrt2)
	return 0.5 * (math.Erf(b) - math.Erf(a))
}

// Empirical builds a Table from observed integer values, i.e. the empirical
// frequency histogram. The PROB and LIFE heuristics estimate partner-stream
// join probabilities from it. Empirical panics on an empty sample.
func Empirical(values []int) *Table {
	if len(values) == 0 {
		panic("dist: Empirical given no values")
	}
	lo, hi := values[0], values[0]
	for _, v := range values {
		lo, hi = min(lo, v), max(hi, v)
	}
	w := make([]float64, hi-lo+1)
	for _, v := range values {
		w[v-lo]++
	}
	return NewTable(lo, w)
}
