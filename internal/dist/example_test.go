package dist_test

import (
	"fmt"

	"stochstream/internal/dist"
)

// Bounded normal noise, as in the TOWER workload.
func ExampleBoundedNormal() {
	n := dist.BoundedNormal(1, 10)
	fmt.Printf("Pr{0} = %.3f, Pr{±1} = %.3f, mass = %.3f\n",
		n.Prob(0), n.Prob(1), dist.TotalMass(n))
	// Output:
	// Pr{0} = 0.383, Pr{±1} = 0.242, mass = 1.000
}

// Convolution: the distribution of two dice.
func ExampleConvolve() {
	die := dist.NewUniform(1, 6)
	sum := dist.Convolve(die, die)
	fmt.Printf("Pr{7} = %.4f, mean = %.1f\n", sum.Prob(7), dist.Mean(sum))
	// Output:
	// Pr{7} = 0.1667, mean = 7.0
}

// DotProduct is the probability that two independent draws coincide — the
// expected-benefit weight FlowExpect puts on undetermined arrivals.
func ExampleDotProduct() {
	a := dist.NewUniform(0, 9)
	b := dist.NewUniform(5, 14)
	fmt.Printf("%.2f\n", dist.DotProduct(a, b))
	// Output:
	// 0.05
}
