package dist

// Shifted is the distribution of X+K where X follows Base. Linear-trend
// streams forecast by shifting their noise PMF to the trend value.
type Shifted struct {
	Base PMF
	K    int
}

// Shift returns the distribution of X+k. Shifts of shifts are collapsed and
// point masses are shifted in place, so forecast chains stay O(1) deep.
func Shift(p PMF, k int) PMF {
	if k == 0 {
		return p
	}
	switch q := p.(type) {
	case Shifted:
		return Shift(q.Base, q.K+k)
	case PointMass:
		return PointMass{V: q.V + k}
	case Uniform:
		return Uniform{Lo: q.Lo + k, Hi: q.Hi + k}
	}
	return Shifted{Base: p, K: k}
}

// Prob implements PMF.
func (s Shifted) Prob(v int) float64 { return s.Base.Prob(v - s.K) }

// Support implements PMF.
func (s Shifted) Support() (int, int) {
	lo, hi := s.Base.Support()
	return lo + s.K, hi + s.K
}

// Sample implements Sampler.
func (s Shifted) Sample(u float64) int { return Sample(s.Base, u) + s.K }

// Convolve returns the distribution of X+Y for independent X ~ a, Y ~ b.
// Random-walk Δ-step forecasts with non-normal steps fold their step
// distribution with it.
func Convolve(a, b PMF) *Table {
	alo, ahi := a.Support()
	blo, bhi := b.Support()
	w := make([]float64, (ahi-alo)+(bhi-blo)+1)
	for x := alo; x <= ahi; x++ {
		pa := a.Prob(x)
		if pa == 0 {
			continue
		}
		for y := blo; y <= bhi; y++ {
			pb := b.Prob(y)
			if pb != 0 {
				w[(x-alo)+(y-blo)] += pa * pb
			}
		}
	}
	return NewTable(alo+blo, w)
}

// ConvolvePower returns the distribution of the sum of n independent copies
// of p, computed by repeated squaring so n-fold convolution costs O(log n)
// convolutions.
func ConvolvePower(p PMF, n int) PMF {
	if n <= 0 {
		return PointMass{V: 0}
	}
	var acc PMF
	sq := p
	for n > 0 {
		if n&1 == 1 {
			if acc == nil {
				acc = sq
			} else {
				acc = Convolve(acc, sq)
			}
		}
		n >>= 1
		if n > 0 {
			sq = Convolve(sq, sq)
		}
	}
	return acc
}

// Mixture is a convex combination of component PMFs. FlowExpect's
// undetermined nodes forecast with mixtures over their arrival distribution.
type Mixture struct {
	Components []PMF
	Weights    []float64
	lo, hi     int
}

// NewMixture builds a mixture; weights are normalized and must be
// non-negative with positive sum, with one weight per component.
func NewMixture(components []PMF, weights []float64) *Mixture {
	if len(components) == 0 || len(components) != len(weights) {
		panic("dist: NewMixture requires matching non-empty components and weights")
	}
	var sum float64
	for _, w := range weights {
		if w < 0 {
			panic("dist: NewMixture given negative weight")
		}
		sum += w
	}
	if sum <= 0 {
		panic("dist: NewMixture weights sum to zero")
	}
	m := &Mixture{Components: components, Weights: make([]float64, len(weights))}
	for i, w := range weights {
		m.Weights[i] = w / sum
	}
	m.lo, m.hi = components[0].Support()
	for _, c := range components[1:] {
		lo, hi := c.Support()
		m.lo, m.hi = min(m.lo, lo), max(m.hi, hi)
	}
	return m
}

// Prob implements PMF.
func (m *Mixture) Prob(v int) float64 {
	var s float64
	for i, c := range m.Components {
		s += m.Weights[i] * c.Prob(v)
	}
	return s
}

// Support implements PMF.
func (m *Mixture) Support() (int, int) { return m.lo, m.hi }

// Materialize copies any PMF into a Table, which makes repeated Prob lookups
// and sampling cheap for deeply composed distributions.
func Materialize(p PMF) *Table {
	if t, ok := p.(*Table); ok {
		return t
	}
	lo, hi := p.Support()
	w := make([]float64, hi-lo+1)
	for v := lo; v <= hi; v++ {
		w[v-lo] = p.Prob(v)
	}
	return NewTable(lo, w)
}
