package dist

import (
	"math"
	"testing"
	"testing/quick"

	"math/rand/v2"
)

func TestQuantile(t *testing.T) {
	u := NewUniform(0, 9)
	if got := Quantile(u, 0.05); got != 0 {
		t.Fatalf("q=0.05: %d", got)
	}
	if got := Quantile(u, 0.5); got != 4 {
		t.Fatalf("median: %d", got)
	}
	if got := Quantile(u, 1); got != 9 {
		t.Fatalf("q=1: %d", got)
	}
	pm := NewPointMass(7)
	if got := Quantile(pm, 0.3); got != 7 {
		t.Fatalf("point mass: %d", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("q=0 did not panic")
		}
	}()
	Quantile(u, 0)
}

func TestKLDivergence(t *testing.T) {
	p := NewTable(0, []float64{1, 1})
	if got := KLDivergence(p, p); !almostEqual(got, 0, 1e-12) {
		t.Fatalf("D(p||p) = %v", got)
	}
	q := NewTable(0, []float64{3, 1})
	// D(p||q) = 0.5·ln(0.5/0.75) + 0.5·ln(0.5/0.25)
	want := 0.5*math.Log(0.5/0.75) + 0.5*math.Log(0.5/0.25)
	if got := KLDivergence(p, q); !almostEqual(got, want, 1e-12) {
		t.Fatalf("D = %v, want %v", got, want)
	}
	// Support mismatch → +Inf.
	r := NewPointMass(0)
	wide := NewUniform(0, 3)
	if got := KLDivergence(wide, r); !math.IsInf(got, 1) {
		t.Fatalf("support mismatch D = %v", got)
	}
	if got := KLDivergence(r, wide); math.IsInf(got, 1) {
		t.Fatalf("narrow-into-wide should be finite, got %v", got)
	}
}

func TestTotalVariation(t *testing.T) {
	a := NewPointMass(0)
	b := NewPointMass(5)
	if got := TotalVariation(a, b); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("disjoint TV = %v", got)
	}
	if got := TotalVariation(a, a); got != 0 {
		t.Fatalf("identical TV = %v", got)
	}
	u1 := NewUniform(0, 1)
	u2 := NewUniform(1, 2)
	if got := TotalVariation(u1, u2); !almostEqual(got, 0.5, 1e-12) {
		t.Fatalf("half-overlap TV = %v", got)
	}
}

// Properties: TV symmetric and within [0,1]; KL non-negative (Gibbs).
func TestQuickDivergenceProperties(t *testing.T) {
	mk := func(rng *rand.Rand) *Table {
		w := make([]float64, 2+rng.IntN(10))
		for i := range w {
			w[i] = rng.Float64() + 0.01
		}
		return NewTable(rng.IntN(5), w)
	}
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 1))
		p, q := mk(rng), mk(rng)
		tv := TotalVariation(p, q)
		if tv < 0 || tv > 1+1e-12 {
			return false
		}
		if math.Abs(tv-TotalVariation(q, p)) > 1e-12 {
			return false
		}
		kl := KLDivergence(p, q)
		return kl >= -1e-12 || math.IsInf(kl, 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func FuzzNewTable(f *testing.F) {
	f.Add(uint64(1), 4)
	f.Add(uint64(99), 12)
	f.Fuzz(func(t *testing.T, seed uint64, n int) {
		if n < 1 || n > 64 {
			return
		}
		rng := rand.New(rand.NewPCG(seed, 2))
		w := make([]float64, n)
		any := false
		for i := range w {
			if rng.IntN(3) > 0 {
				w[i] = rng.Float64()
				if w[i] > 0 {
					any = true
				}
			}
		}
		if !any {
			return
		}
		tab := NewTable(rng.IntN(21)-10, w)
		if m := TotalMass(tab); math.Abs(m-1) > 1e-9 {
			t.Fatalf("mass = %v", m)
		}
		lo, hi := tab.Support()
		if tab.Prob(lo) <= 0 || tab.Prob(hi) <= 0 {
			t.Fatal("support not tight")
		}
	})
}

func FuzzConvolvePreservesMass(f *testing.F) {
	f.Add(uint64(3), uint64(4))
	f.Fuzz(func(t *testing.T, s1, s2 uint64) {
		r1 := rand.New(rand.NewPCG(s1, 5))
		r2 := rand.New(rand.NewPCG(s2, 6))
		mk := func(r *rand.Rand) *Table {
			w := make([]float64, 1+r.IntN(16))
			for i := range w {
				w[i] = r.Float64()
			}
			w[r.IntN(len(w))] += 0.5
			return NewTable(r.IntN(11)-5, w)
		}
		a, b := mk(r1), mk(r2)
		c := Convolve(a, b)
		if m := TotalMass(c); math.Abs(m-1) > 1e-9 {
			t.Fatalf("mass = %v", m)
		}
		if got, want := Mean(c), Mean(a)+Mean(b); math.Abs(got-want) > 1e-6 {
			t.Fatalf("mean %v != %v", got, want)
		}
	})
}
