package workload

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"stochstream/internal/cachepolicy"
	"stochstream/internal/cachesim"

	"stochstream/internal/core"
	"stochstream/internal/join"
	"stochstream/internal/policy"
	"stochstream/internal/process"
	"stochstream/internal/stats"
)

func TestTrendSpecsMatchPaperParameters(t *testing.T) {
	tw, rf, fl := Tower(), Roof(), Floor()
	for _, ts := range []TrendSpec{tw, rf, fl} {
		if ts.Lag != 1 || ts.RBound != 10 || ts.SBound != 15 {
			t.Fatalf("%s: lag/bounds = %d/%d/%d", ts.Name, ts.Lag, ts.RBound, ts.SBound)
		}
	}
	if tw.RSigma != 1 || tw.SSigma != 2 {
		t.Fatalf("TOWER sigmas = %v/%v", tw.RSigma, tw.SSigma)
	}
	if rf.RSigma != 3.3 || rf.SSigma != 5 {
		t.Fatalf("ROOF sigmas = %v/%v", rf.RSigma, rf.SSigma)
	}
	if fl.RSigma != 0 || fl.SSigma != 0 {
		t.Fatalf("FLOOR should be uniform")
	}
}

func TestJoinWorkloadStreamsStayInBands(t *testing.T) {
	w := Tower().Join()
	rng := stats.NewRNG(1)
	r, s := w.Generate(rng, 500)
	for tm := range r {
		if d := r[tm] - (tm - 1); d < -10 || d > 10 {
			t.Fatalf("R strays outside band at %d: %d", tm, r[tm])
		}
		if d := s[tm] - tm; d < -15 || d > 15 {
			t.Fatalf("S strays outside band at %d: %d", tm, s[tm])
		}
	}
}

func TestLifetimeMatchesWindowGeometry(t *testing.T) {
	w := Floor().Join()
	now := 100
	// R tuple at the right edge of S's future window: lifetime ~ full width.
	rt := join.Tuple{Value: now + 15, Stream: core.StreamR}
	if got := w.Lifetime(now, rt); got != 30 {
		t.Fatalf("R edge lifetime = %d, want 30", got)
	}
	// R tuple just behind the S window: expired.
	rt2 := join.Tuple{Value: now - 16, Stream: core.StreamR}
	if got := w.Lifetime(now, rt2); got > 0 {
		t.Fatalf("expired R tuple has lifetime %d", got)
	}
	// S tuple measured against R's (lagged) window.
	stp := join.Tuple{Value: now, Stream: core.StreamS}
	if got := w.Lifetime(now, stp); got != 11 {
		t.Fatalf("S lifetime = %d, want 11 (bound 10 + lag 1)", got)
	}
}

func TestLifetimeEstimates(t *testing.T) {
	if got := Floor().Join().LifetimeEstimate; got != 12.5 {
		t.Fatalf("FLOOR estimate = %v, want (10+15)/2", got)
	}
	if got := Tower().Join().LifetimeEstimate; got != 3 {
		t.Fatalf("TOWER estimate = %v, want 1+2", got)
	}
	if got := Roof().Join().LifetimeEstimate; math.Abs(got-8.3) > 1e-12 {
		t.Fatalf("ROOF estimate = %v, want 8.3", got)
	}
}

func TestWalkWorkload(t *testing.T) {
	w := Walk()
	if w.Lifetime != nil {
		t.Fatal("WALK must not define a pseudo-window (no LIFE)")
	}
	if w.HEEBMode != policy.HEEBPrecomputedH1 {
		t.Fatalf("WALK HEEB mode = %v", w.HEEBMode)
	}
	r, s := w.Generate(stats.NewRNG(2), 1000)
	// Independent walks: they should drift apart in mean square.
	var last float64
	for i := range r {
		last = float64(r[i] - s[i])
	}
	if last == 0 {
		t.Log("walks ended at the same point (possible but unlikely); not failing")
	}
	if len(r) != 1000 || len(s) != 1000 {
		t.Fatal("length mismatch")
	}
}

func TestHEEBPolicyConstruction(t *testing.T) {
	p := Tower().Join().HEEBPolicy()
	if p.Opts.Mode != policy.HEEBDirect {
		t.Fatalf("mode = %v", p.Opts.Mode)
	}
	if p.Opts.LifetimeEstimate != 3 {
		t.Fatalf("estimate = %v", p.Opts.LifetimeEstimate)
	}
}

func TestRealBuildFitsCloseToGeneratingModel(t *testing.T) {
	rw, err := Real().Build(stats.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(rw.Refs) != 3650 {
		t.Fatalf("len(Refs) = %d", len(rw.Refs))
	}
	if math.Abs(rw.Fit.Phi1-0.72) > 0.05 {
		t.Fatalf("fitted Phi1 = %v, want ~0.72", rw.Fit.Phi1)
	}
	if math.Abs(rw.Fit.Phi0-55.9) > 6 {
		t.Fatalf("fitted Phi0 = %v, want ~55.9 (scaled)", rw.Fit.Phi0)
	}
	if math.Abs(rw.Fit.Sigma-42.2) > 3 {
		t.Fatalf("fitted Sigma = %v, want ~42.2 (scaled)", rw.Fit.Sigma)
	}
	if rw.Model == nil || rw.Model.Phi1 != rw.Fit.Phi1 {
		t.Fatal("model not built from fit")
	}
	// Temperatures should look Melbourne-ish: mean ~20 °C (200 buckets).
	var sum float64
	for _, v := range rw.Refs {
		sum += float64(v)
	}
	mean := sum / float64(len(rw.Refs))
	if mean < 150 || mean > 250 {
		t.Fatalf("mean bucket = %v, want ~200", mean)
	}
}

func TestRealBuildRejectsTinySeries(t *testing.T) {
	spec := Real()
	spec.Days = 3
	if _, err := spec.Build(stats.NewRNG(1)); err == nil {
		t.Fatal("tiny series should fail")
	}
}

func TestRealDeterministicPerSeed(t *testing.T) {
	a, _ := Real().Build(stats.NewRNG(9))
	b, _ := Real().Build(stats.NewRNG(9))
	for i := range a.Refs {
		if a.Refs[i] != b.Refs[i] {
			t.Fatal("same seed produced different REAL series")
		}
	}
}

// End-to-end sanity: on TOWER, HEEB beats PROB and LIFE (the paper's
// headline qualitative result), and OPT-offline bounds everyone.
func TestTowerPolicyOrdering(t *testing.T) {
	w := Tower().Join()
	cfg := join.Config{CacheSize: 10, Warmup: -1, Procs: w.Procs}
	runs := 3
	var heebSum, probSum, lifeSum, randSum, optSum int
	for i := 0; i < runs; i++ {
		rng := stats.NewRNG(100 + uint64(i))
		r, s := w.Generate(rng, 2000)
		heebSum += join.Run(r, s, w.HEEBPolicy(), cfg, stats.NewRNG(1)).Joins
		probSum += join.Run(r, s, &policy.Prob{Lifetime: w.Lifetime}, cfg, stats.NewRNG(1)).Joins
		lifeSum += join.Run(r, s, &policy.Life{Lifetime: w.Lifetime}, cfg, stats.NewRNG(1)).Joins
		randSum += join.Run(r, s, &policy.Rand{Lifetime: w.Lifetime}, cfg, stats.NewRNG(1)).Joins
		opt := core.OptOfflineJoin(r, s, cfg.CacheSize, 0)
		optSum += opt.CountAfter(cfg.EffectiveWarmup() - 1)
	}
	if !(heebSum > probSum && heebSum > lifeSum && heebSum > randSum) {
		t.Fatalf("HEEB=%d PROB=%d LIFE=%d RAND=%d: HEEB should lead", heebSum, probSum, lifeSum, randSum)
	}
	if optSum < heebSum {
		t.Fatalf("OPT=%d below HEEB=%d: accounting bug", optSum, heebSum)
	}
}

func TestRealSeasonalVariant(t *testing.T) {
	rw, err := RealSeasonal().Build(stats.NewRNG(15))
	if err != nil {
		t.Fatal(err)
	}
	// The seasonal cycle widens the value range relative to the plain AR(1).
	plain, _ := Real().Build(stats.NewRNG(15))
	rangeOf := func(xs []int) int {
		lo, hi := xs[0], xs[0]
		for _, v := range xs {
			lo, hi = min(lo, v), max(hi, v)
		}
		return hi - lo
	}
	if rangeOf(rw.Refs) <= rangeOf(plain.Refs) {
		t.Fatalf("seasonal range %d not wider than plain %d", rangeOf(rw.Refs), rangeOf(plain.Refs))
	}
	// The (misspecified) AR(1) fit still produces a usable model: HEEB must
	// beat RAND on the seasonal series.
	heeb := cachesim.Run(rw.Refs, &cachepolicy.HEEB{Model: rw.Model}, cachesim.Config{Capacity: 100}, stats.NewRNG(1))
	rnd := cachesim.Run(rw.Refs, &cachepolicy.Rand{}, cachesim.Config{Capacity: 100}, stats.NewRNG(1))
	if heeb.Misses >= rnd.Misses {
		t.Fatalf("seasonal HEEB misses %d >= RAND %d", heeb.Misses, rnd.Misses)
	}
	// Seasonality raises the fitted phi1 (slowly varying mean): still < 1.
	if rw.Fit.Phi1 <= plain.Fit.Phi1 || rw.Fit.Phi1 >= 1 {
		t.Fatalf("seasonal phi1 = %v vs plain %v", rw.Fit.Phi1, plain.Fit.Phi1)
	}
}

func TestLoadRealTrace(t *testing.T) {
	// Generate a synthetic "file" in date,value CSV form with comments.
	var sb strings.Builder
	sb.WriteString("# Melbourne-like daily temperatures\n\n")
	series := (&process.AR1{Phi0: 5.59, Phi1: 0.72, Sigma: 4.22, Init: 20}).Generate(stats.NewRNG(31), 800)
	for i, v := range series {
		fmt.Fprintf(&sb, "1981-%03d,%.1f\n", i, float64(v))
	}
	rw, err := LoadRealTrace(strings.NewReader(sb.String()), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rw.Refs) != 800 {
		t.Fatalf("len = %d", len(rw.Refs))
	}
	if rw.Refs[0] != series[0]*10 {
		t.Fatalf("scaling wrong: %d vs %d", rw.Refs[0], series[0]*10)
	}
	if math.Abs(rw.Fit.Phi1-0.72) > 0.1 {
		t.Fatalf("fitted Phi1 = %v", rw.Fit.Phi1)
	}
	// HEEB runs on the loaded workload.
	res := cachesim.Run(rw.Refs, &cachepolicy.HEEB{Model: rw.Model}, cachesim.Config{Capacity: 40}, stats.NewRNG(1))
	if res.Hits == 0 {
		t.Fatal("no hits on loaded trace")
	}
}

func TestLoadRealTraceErrors(t *testing.T) {
	if _, err := LoadRealTrace(strings.NewReader("1\n2\nbroken\n"), 1); err == nil {
		t.Fatal("malformed line should fail")
	}
	if _, err := LoadRealTrace(strings.NewReader("1\n2\n3\n"), 1); err == nil {
		t.Fatal("short trace should fail")
	}
	if _, err := LoadRealTrace(strings.NewReader(strings.Repeat("5\n", 50)), 1); err == nil {
		t.Fatal("constant trace should fail the AR fit")
	}
}

func TestLoadRealTracePlainNumbers(t *testing.T) {
	var sb strings.Builder
	series := (&process.GaussianWalk{Sigma: 2, Init: 100}).Generate(stats.NewRNG(5), 60)
	for _, v := range series {
		fmt.Fprintf(&sb, "%d\n", v)
	}
	rw, err := LoadRealTrace(strings.NewReader(sb.String()), 1)
	if err != nil {
		t.Fatal(err)
	}
	if rw.Refs[10] != series[10] {
		t.Fatal("plain-number parsing broken")
	}
}
