package workload

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"stochstream/internal/process"
	"stochstream/internal/stats"
)

// LoadRealTrace builds the REAL workload from an actual reference trace
// instead of the synthetic series — e.g. the Melbourne temperature data set
// the paper uses, for users who have it. The reader supplies one observation
// per line (plain numbers; '#'-prefixed lines and blank lines are skipped;
// a trailing CSV column layout of "value" or "date,value" is accepted, in
// which case the last field is parsed). Values are multiplied by scale and
// rounded to the paper's 0.1-unit buckets (scale 10), and the AR(1) model is
// fitted by the same offline MLE the synthetic pipeline uses.
func LoadRealTrace(r io.Reader, scale int) (RealWorkload, error) {
	if scale < 1 {
		scale = 1
	}
	var refs []int
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		if i := strings.LastIndexByte(text, ','); i >= 0 {
			text = strings.TrimSpace(text[i+1:])
		}
		v, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return RealWorkload{}, fmt.Errorf("workload: trace line %d: %w", line, err)
		}
		refs = append(refs, int(math.Round(v*float64(scale))))
	}
	if err := sc.Err(); err != nil {
		return RealWorkload{}, fmt.Errorf("workload: reading trace: %w", err)
	}
	if len(refs) < 10 {
		return RealWorkload{}, fmt.Errorf("workload: trace too short (%d observations)", len(refs))
	}
	fit, err := stats.FitAR1Int(refs)
	if err != nil {
		return RealWorkload{}, fmt.Errorf("workload: AR(1) fit failed: %w", err)
	}
	return RealWorkload{Name: "REAL(trace)", Refs: refs, Model: process.FromFit(fit), Fit: fit}, nil
}
