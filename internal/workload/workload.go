// Package workload defines the paper's experiment configurations: the
// synthetic joining workloads TOWER, ROOF, FLOOR (linear trends with bounded
// normal or uniform noise, R lagging one step behind S) and WALK (two
// independent Gaussian random walks), plus the REAL caching workload (a
// Melbourne-temperature-like AR(1) reference stream joined with a synthetic
// energy-consumption relation keyed by 0.1 °C buckets).
//
// The real Melbourne data set (StatSci.org) is not redistributable here;
// REAL instead samples the AR(1) model the paper itself fits to that data
// (X_t = 0.72·X_{t-1} + 5.59 + Y_t, σ = 4.22) and re-runs the paper's MLE
// pipeline on the synthetic series — see DESIGN.md for the substitution
// note.
package workload

import (
	"fmt"
	"math"

	"stochstream/internal/core"
	"stochstream/internal/dist"
	"stochstream/internal/join"
	"stochstream/internal/policy"
	"stochstream/internal/process"
	"stochstream/internal/stats"
)

// TrendSpec parameterizes a linear-trend joining workload. The zero value is
// not useful; start from one of Tower, Roof, Floor and tweak.
type TrendSpec struct {
	Name string
	// Lag is how many steps stream R lags behind stream S (paper default 1).
	Lag int
	// RBound and SBound bound the noise supports: [-RBound, RBound] for R
	// and [-SBound, SBound] for S (paper defaults 10 and 15).
	RBound, SBound int
	// RSigma and SSigma are the bounded-normal noise standard deviations; a
	// zero sigma selects bounded uniform noise (the FLOOR configuration).
	RSigma, SSigma float64
}

// Tower returns the TOWER configuration: sharply peaked normal noise
// (σ_R = 1, σ_S = 2), the most predictable workload.
func Tower() TrendSpec {
	return TrendSpec{Name: "TOWER", Lag: 1, RBound: 10, SBound: 15, RSigma: 1, SSigma: 2}
}

// Roof returns the ROOF configuration: wider normal noise (σ_R = 3.3,
// σ_S = 5).
func Roof() TrendSpec {
	return TrendSpec{Name: "ROOF", Lag: 1, RBound: 10, SBound: 15, RSigma: 3.3, SSigma: 5}
}

// Floor returns the FLOOR configuration: bounded uniform noise.
func Floor() TrendSpec {
	return TrendSpec{Name: "FLOOR", Lag: 1, RBound: 10, SBound: 15}
}

// Join materializes the joining workload: stream models, the LIFE/RAND/PROB
// pseudo-window lifetime estimator, and HEEB's a-priori lifetime estimate.
func (ts TrendSpec) Join() JoinWorkload {
	noise := func(sigma float64, bound int) dist.PMF {
		if sigma == 0 {
			return dist.NewUniform(-bound, bound)
		}
		return dist.BoundedNormal(sigma, bound)
	}
	procs := [2]process.Process{
		&process.LinearTrend{Slope: 1, Intercept: -ts.Lag, Noise: noise(ts.RSigma, ts.RBound)},
		&process.LinearTrend{Slope: 1, Intercept: 0, Noise: noise(ts.SSigma, ts.SBound)},
	}
	// A tuple stays joinable while its value remains inside the partner's
	// moving noise window — the bound doubles as the paper's sliding window
	// for LIFE and the window-aware RAND and PROB.
	lifetime := func(now int, tp join.Tuple) int {
		if tp.Stream == core.StreamR { // R tuple joins S: window center f_S(now) = now
			return tp.Value + ts.SBound - now
		}
		// S tuple joins R: window center f_R(now) = now - Lag.
		return tp.Value + ts.RBound - (now - ts.Lag)
	}
	// HEEB's lifetime estimate: FLOOR uses (w_R + w_S)/2 (Section 5.3);
	// TOWER/ROOF use the time for the trend to advance twice the (mean)
	// noise standard deviation (Section 5.4).
	est := float64(ts.RBound+ts.SBound) / 2
	if ts.RSigma > 0 {
		est = ts.RSigma + ts.SSigma // 2 × mean of the two sigmas
	}
	return JoinWorkload{
		Name:             ts.Name,
		Procs:            procs,
		Lifetime:         lifetime,
		LifetimeEstimate: est,
		HEEBMode:         policy.HEEBDirect,
	}
}

// Walk returns the WALK configuration: two independent Gaussian random walks
// with unit-variance zero-mean steps. There is no pseudo-window, so LIFE is
// not applicable (Section 6.2); HEEB uses the precomputed h1 curve with α
// set to the cache size.
func Walk() JoinWorkload {
	return JoinWorkload{
		Name: "WALK",
		Procs: [2]process.Process{
			&process.GaussianWalk{Drift: 0, Sigma: 1, Init: 0},
			&process.GaussianWalk{Drift: 0, Sigma: 1, Init: 0},
		},
		HEEBMode: policy.HEEBPrecomputedH1,
	}
}

// JoinWorkload bundles everything a joining experiment needs.
type JoinWorkload struct {
	Name  string
	Procs [2]process.Process
	// Lifetime is the pseudo-window estimator for LIFE and window-aware
	// RAND/PROB; nil when no window exists (WALK).
	Lifetime policy.Lifetime
	// LifetimeEstimate seeds HEEB's α (0 means "use the cache size").
	LifetimeEstimate float64
	// HEEBMode is the scoring implementation suited to the workload.
	HEEBMode policy.HEEBMode
}

// Generate samples both streams for one run.
func (w JoinWorkload) Generate(rng *stats.RNG, n int) (r, s []int) {
	return w.Procs[0].Generate(rng.Split(), n), w.Procs[1].Generate(rng.Split(), n)
}

// HEEBPolicy builds the workload's HEEB policy instance.
func (w JoinWorkload) HEEBPolicy() *policy.HEEB {
	return policy.NewHEEB(policy.HEEBOptions{
		Mode:             w.HEEBMode,
		LifetimeEstimate: w.LifetimeEstimate,
	})
}

// RealSpec parameterizes the REAL caching workload.
type RealSpec struct {
	// Days is the series length (paper: 10 years of daily data = 3650).
	Days int
	// Phi0, Phi1, Sigma are the generating AR(1) parameters in °C (paper's
	// fit: 5.59, 0.72, 4.22).
	Phi0, Phi1, Sigma float64
	// Scale converts degrees to integer buckets (paper granularity 0.1 °C →
	// scale 10).
	Scale int
	// SeasonalAmp adds an annual sinusoid of this amplitude (°C) on top of
	// the AR(1) component, making the series Melbourne-like in shape rather
	// than only in autocorrelation; 0 disables it.
	SeasonalAmp float64
	// SeasonalPeriod is the cycle length in days (0 = 365).
	SeasonalPeriod int
}

// Real returns the paper's REAL configuration.
func Real() RealSpec {
	return RealSpec{Days: 3650, Phi0: 5.59, Phi1: 0.72, Sigma: 4.22, Scale: 10}
}

// RealSeasonal returns the REAL configuration with a ±4 °C annual cycle.
// The fitting pipeline still uses a plain AR(1) model — exactly what the
// paper's offline MLE would produce on such data — so this variant stresses
// HEEB's robustness to model misspecification.
func RealSeasonal() RealSpec {
	s := Real()
	s.SeasonalAmp = 4
	return s
}

// RealWorkload is a materialized caching experiment: the reference sequence
// (temperature buckets) and the AR(1) model re-fitted from it with the
// paper's offline MLE procedure.
type RealWorkload struct {
	Name string
	// Refs is the reference sequence of temperature buckets.
	Refs []int
	// Model is the AR(1) model fitted to Refs by maximum likelihood.
	Model *process.AR1
	// Fit carries the raw fit for reporting.
	Fit stats.AR1Fit
}

// Build generates the synthetic Melbourne-like series and fits the model.
func (rs RealSpec) Build(rng *stats.RNG) (RealWorkload, error) {
	if rs.Days < 10 {
		return RealWorkload{}, fmt.Errorf("workload: Real needs at least 10 days, got %d", rs.Days)
	}
	gen := &process.AR1{
		Phi0:  rs.Phi0 * float64(rs.Scale),
		Phi1:  rs.Phi1,
		Sigma: rs.Sigma * float64(rs.Scale),
		Init:  int(rs.Phi0 / (1 - rs.Phi1) * float64(rs.Scale)),
	}
	refs := gen.Generate(rng, rs.Days)
	if rs.SeasonalAmp != 0 {
		period := rs.SeasonalPeriod
		if period == 0 {
			period = 365
		}
		amp := rs.SeasonalAmp * float64(rs.Scale)
		for t := range refs {
			refs[t] += int(math.Round(amp * math.Sin(2*math.Pi*float64(t)/float64(period))))
		}
	}
	fit, err := stats.FitAR1Int(refs)
	if err != nil {
		return RealWorkload{}, fmt.Errorf("workload: AR(1) fit failed: %w", err)
	}
	model := process.FromFit(fit)
	return RealWorkload{Name: "REAL", Refs: refs, Model: model, Fit: fit}, nil
}
