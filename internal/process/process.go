// Package process models input streams as discrete-time stochastic processes
// {X_t}, exactly as in Section 2 of the paper: at every time step a stream
// produces one tuple whose join-attribute value is a random variable. Each
// model can both generate sample paths and forecast the conditional
// distribution Pr{X_{t0+Δ} = v | x̄_{t0}} of a future value given the
// observed history, which is the quantity every ECB and HEEB computation in
// internal/core consumes.
package process

import (
	"math"

	"stochstream/internal/dist"
	"stochstream/internal/stats"
)

// NoValue is the join-attribute value used for tuples that can never join
// (the paper's "−" tuples) and for forecasts past the end of a deterministic
// sequence. It is far outside every experiment's value domain.
const NoValue = math.MinInt32

// Process is a stochastic stream model.
type Process interface {
	// Forecast returns the conditional distribution of X_{t0+delta} given
	// the history h observed through time t0 = h.T0(). delta must be >= 1.
	Forecast(h *History, delta int) dist.PMF
	// Generate samples a path of n values starting at time 0.
	Generate(rng *stats.RNG, n int) []int
	// Independent reports whether the per-step random variables are
	// mutually independent. Time- and value-incremental HEEB updates
	// (Corollaries 3–5) require independence.
	Independent() bool
}

// NormalForecaster is implemented by models whose Δ-step forecast is a
// discretized normal with a closed-form mean and standard deviation
// (Gaussian random walks and AR(1) streams). HEEB's precomputation uses it
// to avoid materializing a PMF table per horizon step.
type NormalForecaster interface {
	// ForecastNormal returns the mean and standard deviation of
	// X_{t0+delta} conditioned on X_{t0} = last.
	ForecastNormal(last int, delta int) (mean, sd float64)
}

// History is the observed prefix of one stream: Values[t] is the join
// attribute produced at time t, and T0 is the current (last observed) time.
// The zero value is an empty history.
type History struct {
	vals []int
}

// NewHistory returns a history pre-populated with the given observations.
func NewHistory(vals ...int) *History {
	h := &History{}
	h.vals = append(h.vals, vals...)
	return h
}

// Append records the next observation.
func (h *History) Append(v int) { h.vals = append(h.vals, v) }

// Len returns the number of observations.
func (h *History) Len() int { return len(h.vals) }

// T0 returns the current time (index of the last observation), or -1 when
// nothing has been observed.
func (h *History) T0() int { return len(h.vals) - 1 }

// At returns the observation at time t.
func (h *History) At(t int) int { return h.vals[t] }

// Last returns the most recent observation; it panics on an empty history.
func (h *History) Last() int { return h.vals[len(h.vals)-1] }

// Values returns the underlying observations; callers must not modify it.
func (h *History) Values() []int { return h.vals }

// Deterministic is the offline-stream model of Section 5.1: the whole
// sequence is known in advance, so Pr{X_t = Seq[t]} = 1. Forecasts past the
// end of the sequence are point masses at NoValue.
type Deterministic struct {
	Seq []int
}

// Forecast implements Process.
func (d *Deterministic) Forecast(h *History, delta int) dist.PMF {
	checkDelta(delta)
	t := h.T0() + delta
	if t < 0 || t >= len(d.Seq) {
		return dist.NewPointMass(NoValue)
	}
	return dist.NewPointMass(d.Seq[t])
}

// Generate implements Process by replaying the sequence (truncating or
// padding with NoValue as needed).
func (d *Deterministic) Generate(_ *stats.RNG, n int) []int {
	out := make([]int, n)
	for i := range out {
		if i < len(d.Seq) {
			out[i] = d.Seq[i]
		} else {
			out[i] = NoValue
		}
	}
	return out
}

// Independent implements Process. Degenerate (point-mass) variables are
// trivially independent.
func (d *Deterministic) Independent() bool { return true }

// Stationary is the stationary independent model of Section 5.2: one
// time-invariant distribution P for every step.
type Stationary struct {
	P dist.PMF
}

// Forecast implements Process.
func (s *Stationary) Forecast(_ *History, delta int) dist.PMF {
	checkDelta(delta)
	return s.P
}

// Generate implements Process.
func (s *Stationary) Generate(rng *stats.RNG, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = dist.Sample(s.P, rng.Float64())
	}
	return out
}

// Independent implements Process.
func (s *Stationary) Independent() bool { return true }

// LinearTrend is the Section 5.3/5.4 model X_t = Slope·t + Intercept + Y_t
// with i.i.d. zero-mean noise Y. The TOWER, ROOF and FLOOR workloads are
// linear trends with bounded normal or bounded uniform noise; a stream
// lagging k steps behind another has Intercept lowered by k·Slope.
type LinearTrend struct {
	Slope     int
	Intercept int
	Noise     dist.PMF
}

// TrendAt returns the deterministic trend component f(t).
func (l *LinearTrend) TrendAt(t int) int { return l.Slope*t + l.Intercept }

// Forecast implements Process.
func (l *LinearTrend) Forecast(h *History, delta int) dist.PMF {
	checkDelta(delta)
	return dist.Shift(l.Noise, l.TrendAt(h.T0()+delta))
}

// Generate implements Process.
func (l *LinearTrend) Generate(rng *stats.RNG, n int) []int {
	out := make([]int, n)
	for t := range out {
		out[t] = l.TrendAt(t) + dist.Sample(l.Noise, rng.Float64())
	}
	return out
}

// Independent implements Process.
func (l *LinearTrend) Independent() bool { return true }

// GeneralTrend generalizes LinearTrend to an arbitrary trend function f(t);
// Section 5.3's caching analysis holds for any non-decreasing f.
type GeneralTrend struct {
	F     func(t int) int
	Noise dist.PMF
}

// Forecast implements Process.
func (g *GeneralTrend) Forecast(h *History, delta int) dist.PMF {
	checkDelta(delta)
	return dist.Shift(g.Noise, g.F(h.T0()+delta))
}

// Generate implements Process.
func (g *GeneralTrend) Generate(rng *stats.RNG, n int) []int {
	out := make([]int, n)
	for t := range out {
		out[t] = g.F(t) + dist.Sample(g.Noise, rng.Float64())
	}
	return out
}

// Independent implements Process.
func (g *GeneralTrend) Independent() bool { return true }

func checkDelta(delta int) {
	if delta < 1 {
		panic("process: Forecast requires delta >= 1")
	}
}
