package process

import (
	"math"
	"testing"
	"testing/quick"

	"stochstream/internal/dist"
	"stochstream/internal/stats"
)

func TestDeterministicForecast(t *testing.T) {
	d := &Deterministic{Seq: []int{10, 20, 30}}
	h := NewHistory(10) // t0 = 0
	if got := d.Forecast(h, 1).Prob(20); got != 1 {
		t.Fatalf("Forecast(1).Prob(20) = %v, want 1", got)
	}
	if got := d.Forecast(h, 2).Prob(30); got != 1 {
		t.Fatalf("Forecast(2).Prob(30) = %v, want 1", got)
	}
	// Beyond the end: point mass at NoValue, zero probability everywhere real.
	p := d.Forecast(h, 5)
	if got := p.Prob(10); got != 0 {
		t.Fatalf("past-end Prob(10) = %v, want 0", got)
	}
	if got := p.Prob(NoValue); got != 1 {
		t.Fatalf("past-end Prob(NoValue) = %v, want 1", got)
	}
}

func TestDeterministicGenerate(t *testing.T) {
	d := &Deterministic{Seq: []int{1, 2}}
	got := d.Generate(nil, 4)
	want := []int{1, 2, NoValue, NoValue}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Generate = %v, want %v", got, want)
		}
	}
	if !d.Independent() {
		t.Fatal("Deterministic should report independent")
	}
}

func TestHistory(t *testing.T) {
	h := NewHistory()
	if h.T0() != -1 || h.Len() != 0 {
		t.Fatal("empty history should have T0 = -1")
	}
	h.Append(5)
	h.Append(7)
	if h.T0() != 1 || h.Last() != 7 || h.At(0) != 5 || h.Len() != 2 {
		t.Fatalf("history state wrong: %+v", h)
	}
	if got := h.Values(); len(got) != 2 || got[1] != 7 {
		t.Fatalf("Values = %v", got)
	}
}

func TestStationaryForecastIsTimeInvariant(t *testing.T) {
	p := dist.NewUniform(0, 9)
	s := &Stationary{P: p}
	h := NewHistory(3, 4, 5)
	for _, d := range []int{1, 2, 50} {
		if got := s.Forecast(h, d); got != dist.PMF(p) {
			t.Fatalf("Forecast(%d) should be the stationary PMF", d)
		}
	}
	rng := stats.NewRNG(1)
	out := s.Generate(rng, 10000)
	var sum float64
	for _, v := range out {
		if v < 0 || v > 9 {
			t.Fatalf("generated out-of-support value %d", v)
		}
		sum += float64(v)
	}
	if mean := sum / 10000; math.Abs(mean-4.5) > 0.15 {
		t.Fatalf("generated mean = %v, want ~4.5", mean)
	}
}

func TestLinearTrendForecast(t *testing.T) {
	l := &LinearTrend{Slope: 1, Intercept: -1, Noise: dist.NewUniform(-10, 10)}
	h := NewHistory(make([]int, 100)...) // t0 = 99
	f := l.Forecast(h, 1)                // time 100, trend 99
	lo, hi := f.Support()
	if lo != 89 || hi != 109 {
		t.Fatalf("support = [%d,%d], want [89,109]", lo, hi)
	}
	if got := f.Prob(99); math.Abs(got-1.0/21) > 1e-12 {
		t.Fatalf("Prob(trend) = %v, want 1/21", got)
	}
	if got := dist.Mean(l.Forecast(h, 7)); math.Abs(got-105) > 1e-9 {
		t.Fatalf("mean of Forecast(7) = %v, want 105", got)
	}
}

func TestLinearTrendGenerateStaysInBand(t *testing.T) {
	l := &LinearTrend{Slope: 2, Intercept: 5, Noise: dist.BoundedNormal(2, 8)}
	out := l.Generate(stats.NewRNG(2), 500)
	for tm, v := range out {
		trend := 2*tm + 5
		if v < trend-8 || v > trend+8 {
			t.Fatalf("t=%d: value %d outside band around trend %d", tm, v, trend)
		}
	}
}

func TestGeneralTrendMatchesLinear(t *testing.T) {
	noise := dist.NewUniform(-3, 3)
	lin := &LinearTrend{Slope: 3, Intercept: 1, Noise: noise}
	gen := &GeneralTrend{F: func(t int) int { return 3*t + 1 }, Noise: noise}
	h := NewHistory(1, 4, 7)
	for d := 1; d <= 5; d++ {
		a, b := lin.Forecast(h, d), gen.Forecast(h, d)
		alo, ahi := a.Support()
		blo, bhi := b.Support()
		if alo != blo || ahi != bhi {
			t.Fatalf("delta %d: support mismatch", d)
		}
		for v := alo; v <= ahi; v++ {
			if math.Abs(a.Prob(v)-b.Prob(v)) > 1e-12 {
				t.Fatalf("delta %d: Prob(%d) mismatch", d, v)
			}
		}
	}
	outA := lin.Generate(stats.NewRNG(9), 50)
	outB := gen.Generate(stats.NewRNG(9), 50)
	for i := range outA {
		if outA[i] != outB[i] {
			t.Fatal("same-seed generation should agree")
		}
	}
}

func TestForecastPanicsOnBadDelta(t *testing.T) {
	s := &Stationary{P: dist.NewUniform(0, 1)}
	defer func() {
		if recover() == nil {
			t.Fatal("Forecast(0) did not panic")
		}
	}()
	s.Forecast(NewHistory(0), 0)
}

func TestRandomWalkForecastMoments(t *testing.T) {
	// ±1 steps: after Δ steps, mean last, variance Δ.
	step := dist.NewTable(-1, []float64{1, 0, 1})
	w := &RandomWalk{Step: step, Init: 0}
	h := NewHistory(0, 2, 4) // last = 4
	for _, d := range []int{1, 2, 5, 10} {
		f := w.Forecast(h, d)
		if got := dist.Mean(f); math.Abs(got-4) > 1e-9 {
			t.Fatalf("delta %d: mean %v, want 4", d, got)
		}
		if got := dist.Variance(f); math.Abs(got-float64(d)) > 1e-9 {
			t.Fatalf("delta %d: variance %v, want %d", d, got, d)
		}
	}
	if w.Independent() {
		t.Fatal("RandomWalk should not report independent")
	}
}

func TestRandomWalkDriftViaStepMean(t *testing.T) {
	// Steps uniform on [1, 3]: drift 2 per step.
	w := &RandomWalk{Step: dist.NewUniform(1, 3), Init: 10}
	h := NewHistory(10)
	f := w.Forecast(h, 4)
	if got := dist.Mean(f); math.Abs(got-18) > 1e-9 {
		t.Fatalf("mean = %v, want 18", got)
	}
	// Empty history falls back to Init.
	f0 := w.Forecast(NewHistory(), 1)
	if got := dist.Mean(f0); math.Abs(got-12) > 1e-9 {
		t.Fatalf("empty-history mean = %v, want 12", got)
	}
}

func TestRandomWalkPowerMemoization(t *testing.T) {
	w := &RandomWalk{Step: dist.NewUniform(-1, 1), Init: 0}
	h := NewHistory(7)
	p5a := w.Forecast(h, 5)
	p5b := w.Forecast(h, 5)
	// Shifted wrappers around the identical memoized table.
	sa, sb := p5a.(dist.Shifted), p5b.(dist.Shifted)
	if sa.Base != sb.Base {
		t.Fatal("convolution powers should be memoized")
	}
	if len(w.powers) != 5 {
		t.Fatalf("expected 5 memoized powers, got %d", len(w.powers))
	}
}

func TestGaussianWalkForecast(t *testing.T) {
	w := &GaussianWalk{Drift: 2, Sigma: 1.5, Init: 0}
	mean, sd := w.ForecastNormal(10, 4)
	if mean != 18 {
		t.Fatalf("mean = %v, want 18", mean)
	}
	if math.Abs(sd-3) > 1e-12 {
		t.Fatalf("sd = %v, want 3", sd)
	}
	f := w.Forecast(NewHistory(10), 4)
	if got := dist.Mean(f); math.Abs(got-18) > 0.01 {
		t.Fatalf("PMF mean = %v, want ~18", got)
	}
	if got := dist.TotalMass(f); math.Abs(got-1) > 1e-6 {
		t.Fatalf("PMF mass = %v", got)
	}
}

func TestGaussianWalkGenerateStatistics(t *testing.T) {
	w := &GaussianWalk{Drift: 0.5, Sigma: 1, Init: 0}
	out := w.Generate(stats.NewRNG(4), 20000)
	// Increments should have mean ~0.5 and variance ~1 (+rounding noise).
	var s stats.Summary
	prev := 0
	for _, v := range out {
		s.Add(float64(v - prev))
		prev = v
	}
	if math.Abs(s.Mean()-0.5) > 0.03 {
		t.Fatalf("increment mean = %v, want ~0.5", s.Mean())
	}
	// Per-step rounding adds two uniform(±1/2) errors to each increment,
	// inflating its variance by ~2/12.
	if want := 1 + 2.0/12; math.Abs(s.Variance()-want) > 0.1 {
		t.Fatalf("increment variance = %v, want ~%v", s.Variance(), want)
	}
}

func TestAR1ForecastConvergesToStationary(t *testing.T) {
	a := &AR1{Phi0: 5.59, Phi1: 0.72, Sigma: 4.22, Init: 20}
	mean1, sd1 := a.ForecastNormal(40, 1)
	if math.Abs(mean1-(0.72*40+5.59)) > 1e-9 {
		t.Fatalf("1-step mean = %v", mean1)
	}
	if math.Abs(sd1-4.22) > 1e-9 {
		t.Fatalf("1-step sd = %v, want 4.22", sd1)
	}
	meanInf, sdInf := a.ForecastNormal(40, 500)
	wantMean := 5.59 / (1 - 0.72)
	wantSD := 4.22 / math.Sqrt(1-0.72*0.72)
	if math.Abs(meanInf-wantMean) > 1e-6 {
		t.Fatalf("long-run mean = %v, want %v", meanInf, wantMean)
	}
	if math.Abs(sdInf-wantSD) > 1e-6 {
		t.Fatalf("long-run sd = %v, want %v", sdInf, wantSD)
	}
}

func TestAR1Phi1OneDegeneratesToWalk(t *testing.T) {
	a := &AR1{Phi0: 2, Phi1: 1, Sigma: 1.5, Init: 0}
	w := &GaussianWalk{Drift: 2, Sigma: 1.5, Init: 0}
	for _, d := range []int{1, 3, 10} {
		am, asd := a.ForecastNormal(7, d)
		wm, wsd := w.ForecastNormal(7, d)
		if am != wm || math.Abs(asd-wsd) > 1e-12 {
			t.Fatalf("delta %d: AR1(phi1=1) (%v,%v) != walk (%v,%v)", d, am, asd, wm, wsd)
		}
	}
}

func TestAR1GenerateMatchesFit(t *testing.T) {
	a := &AR1{Phi0: 5.59, Phi1: 0.72, Sigma: 4.22, Init: 20}
	out := a.Generate(stats.NewRNG(6), 30000)
	fit, err := stats.FitAR1Int(out)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Phi1-0.72) > 0.02 {
		t.Fatalf("refit Phi1 = %v", fit.Phi1)
	}
	if math.Abs(fit.Phi0-5.59) > 0.6 {
		t.Fatalf("refit Phi0 = %v", fit.Phi0)
	}
	// Discretization inflates sigma slightly (rounding noise).
	if math.Abs(fit.Sigma-4.22) > 0.15 {
		t.Fatalf("refit Sigma = %v", fit.Sigma)
	}
}

func TestFromFit(t *testing.T) {
	f := stats.AR1Fit{Phi0: 5.59, Phi1: 0.72, Sigma: 4.22}
	a := FromFit(f)
	if a.Init != 20 { // round(5.59/0.28) = round(19.96)
		t.Fatalf("Init = %d, want 20", a.Init)
	}
	walkFit := stats.AR1Fit{Phi0: 1, Phi1: 1, Sigma: 2}
	if got := FromFit(walkFit).Init; got != 0 {
		t.Fatalf("phi1=1 Init = %d, want 0", got)
	}
}

func TestAR1EmptyHistoryUsesInit(t *testing.T) {
	a := &AR1{Phi0: 0, Phi1: 0.5, Sigma: 1, Init: 100}
	f := a.Forecast(NewHistory(), 1)
	if got := dist.Mean(f); math.Abs(got-50) > 0.05 {
		t.Fatalf("mean = %v, want ~50", got)
	}
}

// Property: for every model, Forecast mass is ~1 and generation is
// deterministic in the seed.
func TestQuickProcessInvariants(t *testing.T) {
	build := func(g *stats.RNG) Process {
		switch g.IntN(5) {
		case 0:
			seq := make([]int, 5+g.IntN(20))
			for i := range seq {
				seq[i] = g.IntN(100)
			}
			return &Deterministic{Seq: seq}
		case 1:
			return &Stationary{P: dist.NewUniform(-5, 5+g.IntN(10))}
		case 2:
			return &LinearTrend{Slope: g.IntN(3), Intercept: g.IntN(10) - 5, Noise: dist.BoundedNormal(1+g.Float64()*3, 10)}
		case 3:
			return &RandomWalk{Step: dist.NewUniform(-2, 2), Init: g.IntN(10)}
		default:
			return &AR1{Phi0: g.Float64() * 5, Phi1: 0.3 + g.Float64()*0.6, Sigma: 1 + g.Float64()*3, Init: g.IntN(20)}
		}
	}
	f := func(seed uint64) bool {
		g := stats.NewRNG(seed)
		p := build(g)
		h := NewHistory(p.Generate(stats.NewRNG(seed+1), 5)...)
		for _, d := range []int{1, 3} {
			if m := dist.TotalMass(p.Forecast(h, d)); math.Abs(m-1) > 1e-6 {
				return false
			}
		}
		a := p.Generate(stats.NewRNG(seed+2), 20)
		b := p.Generate(stats.NewRNG(seed+2), 20)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
