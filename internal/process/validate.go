package process

import (
	"errors"
	"fmt"
	"math"
)

// Validator is implemented by stream models that can check their parameters
// up front. The models are plain structs, so a caller can build one with
// parameters that only blow up deep inside a run — a GaussianWalk with
// σ ≤ 0 panics the first time dist.Normal materializes a forecast.
// engine.Config.Validate calls Validate on every model that has it, turning
// those latent mid-run panics into construction-time errors. Internal
// invariant panics (Forecast with delta < 1, indexing a History out of
// range) stay panics: they are programming errors, not configuration errors.
type Validator interface {
	Validate() error
}

// Validate implements Validator. A Deterministic sequence has no invalid
// parameterizations: an empty or short Seq forecasts NoValue past its end.
func (d *Deterministic) Validate() error { return nil }

// Validate implements Validator.
func (s *Stationary) Validate() error {
	if s.P == nil {
		return errors.New("process: Stationary requires a distribution P")
	}
	return nil
}

// Validate implements Validator.
func (l *LinearTrend) Validate() error {
	if l.Noise == nil {
		return errors.New("process: LinearTrend requires a noise distribution")
	}
	return nil
}

// Validate implements Validator.
func (g *GeneralTrend) Validate() error {
	if g.F == nil {
		return errors.New("process: GeneralTrend requires a trend function F")
	}
	if g.Noise == nil {
		return errors.New("process: GeneralTrend requires a noise distribution")
	}
	return nil
}

// Validate implements Validator.
func (w *RandomWalk) Validate() error {
	if w.Step == nil {
		return errors.New("process: RandomWalk requires a step distribution")
	}
	return nil
}

// Validate implements Validator: σ must be positive and finite (dist.Normal
// panics otherwise when the first forecast is materialized), and the drift
// finite.
func (w *GaussianWalk) Validate() error {
	if !(w.Sigma > 0) || math.IsInf(w.Sigma, 0) {
		return fmt.Errorf("process: GaussianWalk requires finite sigma > 0, got %g", w.Sigma)
	}
	if math.IsNaN(w.Drift) || math.IsInf(w.Drift, 0) {
		return fmt.Errorf("process: GaussianWalk requires finite drift, got %g", w.Drift)
	}
	return nil
}

// Validate implements Validator: the innovation σ must be positive and
// finite, the coefficients finite, and |Phi1| ≤ 1 (an explosive AR(1) drives
// the forecast mean and variance to overflow within a few steps).
func (a *AR1) Validate() error {
	if !(a.Sigma > 0) || math.IsInf(a.Sigma, 0) {
		return fmt.Errorf("process: AR1 requires finite sigma > 0, got %g", a.Sigma)
	}
	if math.IsNaN(a.Phi0) || math.IsInf(a.Phi0, 0) {
		return fmt.Errorf("process: AR1 requires finite phi0, got %g", a.Phi0)
	}
	if math.IsNaN(a.Phi1) || math.Abs(a.Phi1) > 1 {
		return fmt.Errorf("process: AR1 requires |phi1| <= 1, got %g", a.Phi1)
	}
	return nil
}

// Validate implements Validator by re-running the NewMarkovChain checks, for
// chains assembled directly rather than through the constructor.
func (m *MarkovChain) Validate() error {
	_, err := NewMarkovChain(m.Lo, m.P, m.Init)
	return err
}
