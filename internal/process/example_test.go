package process_test

import (
	"fmt"

	"stochstream/internal/dist"
	"stochstream/internal/process"
	"stochstream/internal/stats"
)

// A linear trend forecasts by shifting its noise to the future trend value.
func ExampleLinearTrend_Forecast() {
	lt := &process.LinearTrend{Slope: 2, Intercept: 1, Noise: dist.NewUniform(-1, 1)}
	h := process.NewHistory(1, 3, 5) // observed through t0 = 2
	f := lt.Forecast(h, 3)           // time 5: trend 2*5+1 = 11
	lo, hi := f.Support()
	fmt.Printf("support [%d, %d], Pr{11} = %.3f\n", lo, hi, f.Prob(11))
	// Output:
	// support [10, 12], Pr{11} = 0.333
}

// AR(1) forecasts revert toward the stationary mean as the horizon grows.
func ExampleAR1_ForecastNormal() {
	ar := &process.AR1{Phi0: 5, Phi1: 0.5, Sigma: 1}
	m1, _ := ar.ForecastNormal(20, 1)
	mInf, _ := ar.ForecastNormal(20, 100)
	fmt.Printf("1-step mean %.1f, long-run mean %.1f\n", m1, mInf)
	// Output:
	// 1-step mean 15.0, long-run mean 10.0
}

// Generation is deterministic in the seed.
func ExampleStationary_Generate() {
	s := &process.Stationary{P: dist.NewUniform(0, 9)}
	a := s.Generate(stats.NewRNG(7), 5)
	b := s.Generate(stats.NewRNG(7), 5)
	fmt.Println(fmt.Sprint(a) == fmt.Sprint(b))
	// Output:
	// true
}

// A deterministic cycle chain forecasts its future states exactly.
func ExampleMarkovChain() {
	m, err := process.NewMarkovChain(0, [][]float64{
		{0, 1, 0},
		{0, 0, 1},
		{1, 0, 0},
	}, 0)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	h := process.NewHistory(0)
	fmt.Println(m.Forecast(h, 1).Prob(1), m.Forecast(h, 2).Prob(2), m.Forecast(h, 3).Prob(0))
	// Output:
	// 1 1 1
}
