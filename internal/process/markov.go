package process

import (
	"fmt"

	"stochstream/internal/dist"
	"stochstream/internal/stats"
)

// MarkovChain is a finite-state first-order Markov model over a contiguous
// integer value range [Lo, Lo+len(P)-1]: P[i][j] is the probability of
// moving from value Lo+i to value Lo+j. It extends the framework beyond the
// paper's case studies — Aho, Denning and Ullman's analysis covers Markov
// reference strings, and the ECB machinery applies through multi-step
// transition powers.
type MarkovChain struct {
	Lo   int
	P    [][]float64
	Init int // initial value; must lie in [Lo, Lo+len(P)-1]

	// powers caches row distributions: powers[d-1][i] is the value
	// distribution d steps after state i, filled lazily.
	powers [][][]float64
}

// NewMarkovChain validates the transition matrix (square, stochastic rows)
// and returns the model.
func NewMarkovChain(lo int, p [][]float64, initValue int) (*MarkovChain, error) {
	n := len(p)
	if n == 0 {
		return nil, fmt.Errorf("process: empty transition matrix")
	}
	for i, row := range p {
		if len(row) != n {
			return nil, fmt.Errorf("process: row %d has %d entries for %d states", i, len(row), n)
		}
		var sum float64
		for j, v := range row {
			if v < 0 {
				return nil, fmt.Errorf("process: negative transition P[%d][%d]", i, j)
			}
			sum += v
		}
		if sum < 1-1e-9 || sum > 1+1e-9 {
			return nil, fmt.Errorf("process: row %d sums to %g", i, sum)
		}
	}
	if initValue < lo || initValue >= lo+n {
		return nil, fmt.Errorf("process: initial value %d outside [%d, %d]", initValue, lo, lo+n-1)
	}
	return &MarkovChain{Lo: lo, P: p, Init: initValue}, nil
}

// States returns the number of states.
func (m *MarkovChain) States() int { return len(m.P) }

// stateOf clamps a value to a state index.
func (m *MarkovChain) stateOf(v int) int {
	s := v - m.Lo
	if s < 0 {
		s = 0
	}
	if s >= len(m.P) {
		s = len(m.P) - 1
	}
	return s
}

// rowPower returns the value distribution delta steps after state i.
func (m *MarkovChain) rowPower(i, delta int) []float64 {
	for len(m.powers) < delta {
		d := len(m.powers)
		next := make([][]float64, len(m.P))
		for s := range next {
			var prev []float64
			if d == 0 {
				prev = oneHot(len(m.P), s)
			} else {
				prev = m.powers[d-1][s]
			}
			next[s] = stepVector(prev, m.P)
		}
		m.powers = append(m.powers, next)
	}
	return m.powers[delta-1][i]
}

func oneHot(n, i int) []float64 {
	v := make([]float64, n)
	v[i] = 1
	return v
}

// stepVector returns q·P for a row vector q.
func stepVector(q []float64, p [][]float64) []float64 {
	out := make([]float64, len(q))
	for i, qi := range q {
		if qi == 0 {
			continue
		}
		row := p[i]
		for j, pij := range row {
			if pij != 0 {
				out[j] += qi * pij
			}
		}
	}
	return out
}

// Forecast implements Process.
func (m *MarkovChain) Forecast(h *History, delta int) dist.PMF {
	checkDelta(delta)
	last := m.Init
	if h != nil && h.Len() > 0 {
		last = h.Last()
	}
	row := m.rowPower(m.stateOf(last), delta)
	return dist.NewTable(m.Lo, row)
}

// Generate implements Process.
func (m *MarkovChain) Generate(rng *stats.RNG, n int) []int {
	out := make([]int, n)
	state := m.stateOf(m.Init)
	for t := range out {
		u := rng.Float64()
		var c float64
		next := len(m.P) - 1
		for j, p := range m.P[state] {
			c += p
			if u < c {
				next = j
				break
			}
		}
		state = next
		out[t] = m.Lo + state
	}
	return out
}

// Independent implements Process.
func (m *MarkovChain) Independent() bool { return false }
