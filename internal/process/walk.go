package process

import (
	"math"

	"stochstream/internal/dist"
	"stochstream/internal/stats"
)

// RandomWalk is the Section 5.5 model X_t = X_{t-1} + S_t with i.i.d. integer
// steps S_t ~ Step. A constant drift φ0 is expressed as a nonzero step mean
// (shift the step distribution). The Δ-step forecast is the Δ-fold
// convolution of the step distribution shifted by the last observation;
// convolution powers are memoized because every candidate tuple at a given
// time shares them.
//
// RandomWalk is not safe for concurrent use; simulations are single-threaded
// per run.
type RandomWalk struct {
	Step dist.PMF
	Init int

	powers []dist.PMF // powers[d] = Δ=d+1 fold convolution
}

// Forecast implements Process.
func (w *RandomWalk) Forecast(h *History, delta int) dist.PMF {
	checkDelta(delta)
	return dist.Shift(w.power(delta), w.last(h))
}

func (w *RandomWalk) last(h *History) int {
	if h == nil || h.Len() == 0 {
		return w.Init
	}
	return h.Last()
}

func (w *RandomWalk) power(delta int) dist.PMF {
	for len(w.powers) < delta {
		if len(w.powers) == 0 {
			w.powers = append(w.powers, dist.Materialize(w.Step))
		} else {
			w.powers = append(w.powers, dist.Convolve(w.powers[len(w.powers)-1], w.Step))
		}
	}
	return w.powers[delta-1]
}

// Generate implements Process.
func (w *RandomWalk) Generate(rng *stats.RNG, n int) []int {
	out := make([]int, n)
	x := w.Init
	for t := range out {
		x += dist.Sample(w.Step, rng.Float64())
		out[t] = x
	}
	return out
}

// Independent implements Process: successive values share the accumulated
// walk, so they are dependent.
func (w *RandomWalk) Independent() bool { return false }

// GaussianWalk is a random walk with drift and normal steps,
// X_t = φ0 + X_{t-1} + Y_t with Y_t ~ N(0, Sigma²), generated on the integer
// lattice by rounding. Its Δ-step forecast has the closed form
// N(x + Δ·Drift, Δ·Sigma²), which makes it the model of choice for the
// paper's WALK workload and the Figure 6 h1 precomputation.
type GaussianWalk struct {
	Drift float64
	Sigma float64
	Init  int
}

// Forecast implements Process.
func (w *GaussianWalk) Forecast(h *History, delta int) dist.PMF {
	checkDelta(delta)
	mean, sd := w.ForecastNormal(w.lastOf(h), delta)
	return dist.Normal(mean, sd, 1e-9)
}

// ForecastNormal implements NormalForecaster.
func (w *GaussianWalk) ForecastNormal(last int, delta int) (mean, sd float64) {
	return float64(last) + float64(delta)*w.Drift, w.Sigma * math.Sqrt(float64(delta))
}

func (w *GaussianWalk) lastOf(h *History) int {
	if h == nil || h.Len() == 0 {
		return w.Init
	}
	return h.Last()
}

// Generate implements Process. The walk accumulates in floating point and is
// rounded per step, so rounding error does not compound.
func (w *GaussianWalk) Generate(rng *stats.RNG, n int) []int {
	out := make([]int, n)
	x := float64(w.Init)
	for t := range out {
		x += w.Drift + w.Sigma*rng.NormFloat64()
		out[t] = int(math.Round(x))
	}
	return out
}

// Independent implements Process.
func (w *GaussianWalk) Independent() bool { return false }

// AR1 is the first-order autoregressive model of Theorem 5 and the REAL
// experiment: X_t = Phi0 + Phi1·X_{t-1} + Y_t with Y_t ~ N(0, Sigma²).
// Values are kept on the integer lattice (the REAL workload scales
// temperatures by 10 to preserve the paper's 0.1 °C granularity).
//
// The Δ-step forecast conditioned on X_{t0} = x is normal with
//
//	mean = Phi1^Δ·x + Phi0·(1−Phi1^Δ)/(1−Phi1)
//	var  = Sigma²·(1−Phi1^{2Δ})/(1−Phi1²)
//
// degenerating to the random-walk forms x + Δ·Phi0 and Δ·Sigma² when
// Phi1 = 1.
type AR1 struct {
	Phi0  float64
	Phi1  float64
	Sigma float64
	Init  int
}

// FromFit builds an AR1 process from a fitted model, starting at the
// model's stationary mean.
func FromFit(f stats.AR1Fit) *AR1 {
	init := 0
	//lint:ignore floateq unit-root test: Phi1 is exactly 1 only when set from the literal by the random-walk constructors
	if f.Phi1 != 1 {
		init = int(math.Round(f.StationaryMean()))
	}
	return &AR1{Phi0: f.Phi0, Phi1: f.Phi1, Sigma: f.Sigma, Init: init}
}

// Forecast implements Process.
func (a *AR1) Forecast(h *History, delta int) dist.PMF {
	checkDelta(delta)
	mean, sd := a.ForecastNormal(a.lastOf(h), delta)
	return dist.Normal(mean, sd, 1e-9)
}

// ForecastNormal implements NormalForecaster.
func (a *AR1) ForecastNormal(last int, delta int) (mean, sd float64) {
	//lint:ignore floateq unit-root test: Phi1 is exactly 1 only when set from the literal by the random-walk constructors
	if a.Phi1 == 1 {
		return float64(last) + float64(delta)*a.Phi0, a.Sigma * math.Sqrt(float64(delta))
	}
	pd := math.Pow(a.Phi1, float64(delta))
	mean = pd*float64(last) + a.Phi0*(1-pd)/(1-a.Phi1)
	v := a.Sigma * a.Sigma * (1 - pd*pd) / (1 - a.Phi1*a.Phi1)
	return mean, math.Sqrt(v)
}

func (a *AR1) lastOf(h *History) int {
	if h == nil || h.Len() == 0 {
		return a.Init
	}
	return h.Last()
}

// Generate implements Process. As with GaussianWalk, the latent state stays
// in floating point; only the emitted values are rounded.
func (a *AR1) Generate(rng *stats.RNG, n int) []int {
	out := make([]int, n)
	x := float64(a.Init)
	for t := range out {
		x = a.Phi0 + a.Phi1*x + a.Sigma*rng.NormFloat64()
		out[t] = int(math.Round(x))
	}
	return out
}

// Independent implements Process.
func (a *AR1) Independent() bool { return false }
