package process

import (
	"math"
	"testing"

	"stochstream/internal/dist"
	"stochstream/internal/stats"
)

func mustChain(t *testing.T, lo int, p [][]float64, init int) *MarkovChain {
	t.Helper()
	m, err := NewMarkovChain(lo, p, init)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewMarkovChainValidation(t *testing.T) {
	if _, err := NewMarkovChain(0, nil, 0); err == nil {
		t.Fatal("empty matrix should fail")
	}
	if _, err := NewMarkovChain(0, [][]float64{{0.5, 0.5}, {1}}, 0); err == nil {
		t.Fatal("ragged matrix should fail")
	}
	if _, err := NewMarkovChain(0, [][]float64{{0.5, 0.4}, {0.5, 0.5}}, 0); err == nil {
		t.Fatal("non-stochastic row should fail")
	}
	if _, err := NewMarkovChain(0, [][]float64{{0.5, -0.5}, {0.5, 0.5}}, 0); err == nil {
		t.Fatal("negative entry should fail")
	}
	if _, err := NewMarkovChain(0, [][]float64{{1, 0}, {0, 1}}, 5); err == nil {
		t.Fatal("init outside range should fail")
	}
}

func TestMarkovForecastTwoStateClosedForm(t *testing.T) {
	// Symmetric two-state chain with switch probability q: the probability
	// of being in the starting state after d steps is (1 + (1-2q)^d)/2.
	q := 0.3
	m := mustChain(t, 10, [][]float64{{1 - q, q}, {q, 1 - q}}, 10)
	h := NewHistory(10)
	for d := 1; d <= 8; d++ {
		f := m.Forecast(h, d)
		want := (1 + math.Pow(1-2*q, float64(d))) / 2
		if got := f.Prob(10); math.Abs(got-want) > 1e-12 {
			t.Fatalf("d=%d: Prob(start) = %v, want %v", d, got, want)
		}
		if got := dist.TotalMass(f); math.Abs(got-1) > 1e-12 {
			t.Fatalf("d=%d: mass %v", d, got)
		}
	}
}

func TestMarkovForecastConditionsOnLastObservation(t *testing.T) {
	m := mustChain(t, 0, [][]float64{{0, 1, 0}, {0, 0, 1}, {1, 0, 0}}, 0) // 3-cycle
	// Last observed 1 → next is 2 with certainty, then 0, then 1.
	h := NewHistory(0, 1)
	if got := m.Forecast(h, 1).Prob(2); got != 1 {
		t.Fatalf("delta 1: %v", got)
	}
	if got := m.Forecast(h, 2).Prob(0); got != 1 {
		t.Fatalf("delta 2: %v", got)
	}
	if got := m.Forecast(h, 3).Prob(1); got != 1 {
		t.Fatalf("delta 3: %v", got)
	}
	// Empty history: condition on Init.
	if got := m.Forecast(NewHistory(), 1).Prob(1); got != 1 {
		t.Fatalf("init conditioning: %v", got)
	}
}

func TestMarkovGenerateMatchesStationary(t *testing.T) {
	// Chain with stationary distribution (2/3, 1/3): p01 = 0.2, p10 = 0.4.
	m := mustChain(t, 0, [][]float64{{0.8, 0.2}, {0.4, 0.6}}, 0)
	out := m.Generate(stats.NewRNG(5), 60000)
	ones := 0
	for _, v := range out {
		if v == 1 {
			ones++
		}
	}
	frac := float64(ones) / float64(len(out))
	if math.Abs(frac-1.0/3) > 0.01 {
		t.Fatalf("state-1 fraction %v, want ~1/3", frac)
	}
	if m.Independent() {
		t.Fatal("Markov chain must not report independence")
	}
}

func TestMarkovRowPowerMemoization(t *testing.T) {
	m := mustChain(t, 0, [][]float64{{0.5, 0.5}, {0.5, 0.5}}, 0)
	h := NewHistory(0)
	m.Forecast(h, 5)
	if len(m.powers) != 5 {
		t.Fatalf("memoized %d powers, want 5", len(m.powers))
	}
	m.Forecast(h, 3)
	if len(m.powers) != 5 {
		t.Fatal("re-forecast should reuse the cache")
	}
}

func TestMarkovStateClamping(t *testing.T) {
	m := mustChain(t, 100, [][]float64{{1, 0}, {0, 1}}, 100)
	// Observation outside the chain's range clamps to the nearest state
	// instead of panicking.
	h := NewHistory(999)
	if got := m.Forecast(h, 1).Prob(101); got != 1 {
		t.Fatalf("clamped forecast: %v", got)
	}
	h2 := NewHistory(-50)
	if got := m.Forecast(h2, 1).Prob(100); got != 1 {
		t.Fatalf("low clamp: %v", got)
	}
}
