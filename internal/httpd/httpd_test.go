package httpd

import (
	"context"
	"io"
	"net/http"
	"testing"
	"time"
)

func TestStartServeShutdown(t *testing.T) {
	srv, err := Start("127.0.0.1:0", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		_, _ = io.WriteString(w, "ok")
	}))
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	resp, err := http.Get("http://" + srv.Addr() + "/")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil || string(body) != "ok" {
		t.Fatalf("GET body = %q, err %v, want ok", body, err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// The serve goroutine is joined: a second request must fail.
	if _, err := http.Get("http://" + srv.Addr() + "/"); err == nil {
		t.Fatal("GET after Shutdown succeeded, want connection error")
	}
}

func TestTimeoutsApplied(t *testing.T) {
	srv, err := StartOptions("127.0.0.1:0", http.NotFoundHandler(), Options{
		ReadHeaderTimeout: 1 * time.Second,
		IdleTimeout:       2 * time.Second,
	})
	if err != nil {
		t.Fatalf("StartOptions: %v", err)
	}
	defer func() { _ = srv.Close() }()
	if got := srv.srv.ReadHeaderTimeout; got != 1*time.Second {
		t.Errorf("ReadHeaderTimeout = %v, want 1s", got)
	}
	if got := srv.srv.IdleTimeout; got != 2*time.Second {
		t.Errorf("IdleTimeout = %v, want 2s", got)
	}
}

func TestDefaultTimeouts(t *testing.T) {
	srv, err := Start("127.0.0.1:0", http.NotFoundHandler())
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer func() { _ = srv.Close() }()
	if got := srv.srv.ReadHeaderTimeout; got != DefaultReadHeaderTimeout {
		t.Errorf("ReadHeaderTimeout = %v, want default %v", got, DefaultReadHeaderTimeout)
	}
	if got := srv.srv.IdleTimeout; got != DefaultIdleTimeout {
		t.Errorf("IdleTimeout = %v, want default %v", got, DefaultIdleTimeout)
	}
}

func TestCloseIsAbrupt(t *testing.T) {
	started := make(chan struct{})
	srv, err := Start("127.0.0.1:0", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(started)
		<-r.Context().Done()
	}))
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	go func() {
		_, _ = http.Get("http://" + srv.Addr() + "/")
	}()
	<-started
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}
