// Package httpd is the repo's one managed http.Server lifecycle: every HTTP
// surface in the tree (telemetry registries, the sharded runtime's
// aggregated handler, the stochstreamd daemon) serves through it, so every
// server carries header/idle timeouts against slowloris-style clients and a
// context-driven Shutdown whose completion is observable — the serve
// goroutine signals a done channel, and Shutdown/Close do not return until
// that goroutine has exited.
//
// The done-channel handshake is also what lets stochlint's goleak analyzer
// accept the serve goroutine without a suppression: the server value the
// goroutine blocks in Serve on is the same field a visible Shutdown/Close
// path stops, which is exactly the termination evidence the analyzer looks
// for (see internal/lintrules/goleak.go, "managed serve").
package httpd

import (
	"context"
	"net"
	"net/http"
	"time"
)

// Default timeouts applied to every managed server. They bound how long a
// client may dawdle over request headers and how long an idle keep-alive
// connection is kept, not how long a handler may run — the pprof and
// long-poll style handlers on the telemetry surface stay usable.
const (
	// DefaultReadHeaderTimeout caps the time from connection accept to a
	// complete request header.
	DefaultReadHeaderTimeout = 10 * time.Second
	// DefaultIdleTimeout reaps keep-alive connections with no request in
	// flight.
	DefaultIdleTimeout = 2 * time.Minute
)

// Server is a managed net/http server: a listener, the serve goroutine, and
// the done channel that proves the goroutine exited.
type Server struct {
	srv  *http.Server
	addr string
	done chan struct{}
}

// Options tune a managed server; the zero value uses the defaults above.
type Options struct {
	// ReadHeaderTimeout overrides DefaultReadHeaderTimeout when > 0.
	ReadHeaderTimeout time.Duration
	// IdleTimeout overrides DefaultIdleTimeout when > 0.
	IdleTimeout time.Duration
}

// Start listens on addr (use ":0" or "127.0.0.1:0" for an ephemeral port)
// and serves handler on a managed goroutine. The returned server must be
// stopped with Shutdown (graceful) or Close (abrupt).
func Start(addr string, handler http.Handler) (*Server, error) {
	return StartOptions(addr, handler, Options{})
}

// StartOptions is Start with explicit timeout overrides.
func StartOptions(addr string, handler http.Handler, opts Options) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	rht := opts.ReadHeaderTimeout
	if rht <= 0 {
		rht = DefaultReadHeaderTimeout
	}
	idle := opts.IdleTimeout
	if idle <= 0 {
		idle = DefaultIdleTimeout
	}
	s := &Server{
		srv: &http.Server{
			Handler:           handler,
			ReadHeaderTimeout: rht,
			IdleTimeout:       idle,
		},
		addr: ln.Addr().String(),
		done: make(chan struct{}),
	}
	go s.run(ln)
	return s, nil
}

// run is the managed serve goroutine: it blocks in Serve until Shutdown or
// Close stops the server, then signals done. Serve's error is discarded on
// purpose — after a shutdown it is always http.ErrServerClosed.
func (s *Server) run(ln net.Listener) {
	defer close(s.done)
	_ = s.srv.Serve(ln)
}

// Addr returns the bound listen address (host:port).
func (s *Server) Addr() string { return s.addr }

// Shutdown gracefully stops the server: no new connections, in-flight
// requests run to completion (bounded by ctx), and the serve goroutine is
// joined before returning.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.srv.Shutdown(ctx)
	<-s.done
	return err
}

// Close abruptly stops the server, dropping in-flight requests, and joins
// the serve goroutine.
func (s *Server) Close() error {
	err := s.srv.Close()
	<-s.done
	return err
}
