package core

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"stochstream/internal/interp"
)

// Precomputed HEEB forms can be stored and reloaded — the paper's deployment
// story precomputes h1/h2 offline and keeps "a compact, approximate
// representation online". The wire forms carry the tabulation ranges and the
// interpolant data.

type h1Wire struct {
	Lo, Hi int
	Spline []byte
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (h *H1) MarshalBinary() ([]byte, error) {
	sp, err := h.sp.MarshalBinary()
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	err = gob.NewEncoder(&buf).Encode(h1Wire{Lo: h.lo, Hi: h.hi, Spline: sp})
	return buf.Bytes(), err
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (h *H1) UnmarshalBinary(data []byte) error {
	var w h1Wire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return fmt.Errorf("core: decoding h1: %w", err)
	}
	out := H1{lo: w.Lo, hi: w.Hi, sp: new(interp.Spline)}
	if err := out.sp.UnmarshalBinary(w.Spline); err != nil {
		return fmt.Errorf("core: decoding h1 spline: %w", err)
	}
	*h = out
	return nil
}

type h2Wire struct {
	VLo, VHi int
	XLo, XHi int
	Grid     []byte
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (h *H2) MarshalBinary() ([]byte, error) {
	g, err := h.grid.MarshalBinary()
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	err = gob.NewEncoder(&buf).Encode(h2Wire{VLo: h.vLo, VHi: h.vHi, XLo: h.xLo, XHi: h.xHi, Grid: g})
	return buf.Bytes(), err
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (h *H2) UnmarshalBinary(data []byte) error {
	var w h2Wire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return fmt.Errorf("core: decoding h2: %w", err)
	}
	out := H2{vLo: w.VLo, vHi: w.VHi, xLo: w.XLo, xHi: w.XHi, grid: new(interp.Grid)}
	if err := out.grid.UnmarshalBinary(w.Grid); err != nil {
		return fmt.Errorf("core: decoding h2 grid: %w", err)
	}
	*h = out
	return nil
}
