package core

import (
	"fmt"
	"math"
)

// LFunc estimates the probability that a candidate tuple will still be
// cached Δt steps from now (Section 4.3). A valid LFunc satisfies the five
// properties of Section 4.3: values in [0,1], non-increasing in Δt,
// convergence of the HEEB sum, dominance preservation across tuples (trivial
// when every tuple shares one LFunc, as all case studies here do), and
// L(1) > 0.
type LFunc interface {
	// At returns the survival estimate at Δt >= 1.
	At(dt int) float64
	// Horizon returns a Δt beyond which At is below eps, suitable for
	// truncating HEEB's infinite sum. Unbounded L functions (LInf) return 0
	// and the caller must impose its own horizon.
	Horizon(eps float64) int
}

// LFixed is Lfixed(Δt) = 1 for Δt ≤ DT and 0 afterwards: HEEB under the
// assumption that every tuple is replaced after exactly DT steps, giving
// H_x = B_x(DT).
type LFixed struct{ DT int }

// At implements LFunc.
func (l LFixed) At(dt int) float64 {
	if dt <= l.DT {
		return 1
	}
	return 0
}

// Horizon implements LFunc.
func (l LFixed) Horizon(float64) int { return l.DT }

// LInf is Linf(Δt) = 1: H_x becomes lim B_x(Δt), the probability the tuple
// is ever referenced. It converges for caching problems only, so callers
// must bound the summation horizon themselves.
type LInf struct{}

// At implements LFunc.
func (LInf) At(int) float64 { return 1 }

// Horizon implements LFunc: LInf never decays.
func (LInf) Horizon(float64) int { return 0 }

// LInv is Linv(Δt) = 1/Δt: H_x becomes the expected inverse waiting time.
// Like LInf it is intended for caching problems; the harmonic tail means
// callers should bound the horizon.
type LInv struct{}

// At implements LFunc.
func (LInv) At(dt int) float64 { return 1 / float64(dt) }

// Horizon implements LFunc.
func (LInv) Horizon(eps float64) int {
	if eps <= 0 {
		return 0
	}
	return int(math.Ceil(1 / eps))
}

// LExp is Lexp(Δt) = e^{−Δt/α}, the paper's L function of choice: it
// guarantees convergence of H and admits the time-incremental computation of
// Corollaries 3–4. α should be chosen so the predicted mean tuple lifetime
// 1/(1−e^{−1/α}) matches the estimated or observed lifetime
// (stats.AlphaForLifetime).
type LExp struct{ Alpha float64 }

// NewLExp validates α > 0 and returns the L function.
func NewLExp(alpha float64) LExp {
	if alpha <= 0 {
		panic(fmt.Sprintf("core: LExp requires alpha > 0, got %g", alpha))
	}
	return LExp{Alpha: alpha}
}

// At implements LFunc.
func (l LExp) At(dt int) float64 { return math.Exp(-float64(dt) / l.Alpha) }

// Horizon implements LFunc.
func (l LExp) Horizon(eps float64) int {
	if eps <= 0 {
		eps = 1e-12
	}
	return int(math.Ceil(l.Alpha*math.Log(1/eps))) + 1
}

// LTable is an LFunc whose leading values are tabulated once and then read
// from a slice: the HEEB summation evaluates L(Δt) per candidate per horizon
// step, which for LExp means a math.Exp call each — identical across all
// candidates of a decision. Values beyond the table (and Horizon) delegate to
// the inner function, so an LTable is value-for-value interchangeable with
// the LFunc it tabulates.
type LTable struct {
	inner LFunc
	vals  []float64
}

// TabulateL tabulates l over Δt = 1..HorizonFor(l, fallbackHorizon).
func TabulateL(l LFunc, fallbackHorizon int) LTable {
	horizon := HorizonFor(l, fallbackHorizon)
	vals := make([]float64, horizon)
	for dt := 1; dt <= horizon; dt++ {
		vals[dt-1] = l.At(dt)
	}
	return LTable{inner: l, vals: vals}
}

// At implements LFunc.
func (l LTable) At(dt int) float64 {
	if dt <= len(l.vals) {
		return l.vals[dt-1]
	}
	return l.inner.At(dt)
}

// Horizon implements LFunc by delegating to the tabulated function.
func (l LTable) Horizon(eps float64) int { return l.inner.Horizon(eps) }

// LWindow clips an inner L function to sliding-window semantics (Section 7):
// the survival probability is zero from the step the tuple leaves the
// window. Remaining is the number of steps the tuple has left inside the
// window (≤ 0 means already expired).
type LWindow struct {
	Inner     LFunc
	Remaining int
}

// At implements LFunc.
func (l LWindow) At(dt int) float64 {
	if dt > l.Remaining {
		return 0
	}
	return l.Inner.At(dt)
}

// Horizon implements LFunc.
func (l LWindow) Horizon(eps float64) int {
	if l.Remaining <= 0 {
		return 1
	}
	if h := l.Inner.Horizon(eps); h > 0 && h < l.Remaining {
		return h
	}
	return l.Remaining
}

// CheckLProperties verifies the testable Section 4.3 properties of an LFunc
// over Δt = 1..horizon: range [0,1], monotone non-increasing, and L(1) > 0
// when strictlyPositive is requested (Property 5). It returns a descriptive
// error for the first violation, or nil.
func CheckLProperties(l LFunc, horizon int, strictlyPositive bool) error {
	prev := math.Inf(1)
	for dt := 1; dt <= horizon; dt++ {
		v := l.At(dt)
		if v < 0 || v > 1 {
			return fmt.Errorf("core: L(%d) = %g outside [0,1]", dt, v)
		}
		if v > prev {
			return fmt.Errorf("core: L not non-increasing at Δt=%d (%g > %g)", dt, v, prev)
		}
		prev = v
	}
	if strictlyPositive && l.At(1) <= 0 {
		return fmt.Errorf("core: L(1) = %g, want > 0", l.At(1))
	}
	return nil
}
