package core

import (
	"errors"
	"fmt"

	"stochstream/internal/dist"
	"stochstream/internal/mincostflow"
	"stochstream/internal/process"
)

// StreamID identifies one of the two joined streams.
type StreamID int

// The two streams of a binary join.
const (
	StreamR StreamID = 0
	StreamS StreamID = 1
)

// Partner returns the other stream of the join.
func (s StreamID) Partner() StreamID { return 1 - s }

// String implements fmt.Stringer.
func (s StreamID) String() string {
	if s == StreamR {
		return "R"
	}
	return "S"
}

// Candidate is a tuple under consideration at the current time: either
// already cached or newly arrived. All candidates are determined (their join
// attribute value is known); the undetermined nodes of the flow graph are
// future arrivals the builder adds internally.
type Candidate struct {
	Value  int
	Stream StreamID
	// Age is the number of steps since the tuple arrived (0 for the new
	// arrivals). It only matters under sliding-window semantics, where a
	// tuple stops producing benefit once its age exceeds the window.
	Age int
}

// FlowDecision is the outcome of one FlowExpect step.
type FlowDecision struct {
	// Keep holds the indices of the candidates to retain, |Keep| = cache
	// size (or all candidates when they fit).
	Keep []int
	// ExpectedBenefit is the maximum expected number of result tuples over
	// the look-ahead window [t0+1, t0+l] under the best predetermined
	// replacement sequence (the negated min-cost of the flow).
	ExpectedBenefit float64
}

// FlowExpectStep builds the Section 3.1 network-flow graph for the current
// time step and solves it: given the candidate tuples (cache content plus
// new arrivals), the two stream models and their observed histories, a cache
// of size cacheSize and a look-ahead of l steps, it returns which candidates
// an expected-benefit-maximizing predetermined replacement sequence keeps
// now.
//
// procs[StreamR] models stream R and procs[StreamS] stream S; hists are the
// corresponding observed histories through the current time t0.
func FlowExpectStep(cands []Candidate, procs [2]process.Process, hists [2]*process.History, cacheSize, l int) (FlowDecision, error) {
	return FlowExpectStepWindow(cands, procs, hists, cacheSize, l, 0)
}

// FlowExpectStepWindow is FlowExpectStep under sliding-window join semantics
// (Section 7): a tuple's benefit arcs are zeroed from the step its age
// exceeds window. window = 0 means regular semantics.
func FlowExpectStepWindow(cands []Candidate, procs [2]process.Process, hists [2]*process.History, cacheSize, l, window int) (FlowDecision, error) {
	return FlowExpectStepCached(cands, NewForecastCache(procs, hists), cacheSize, l, window)
}

// FlowExpectStepCached is FlowExpectStepWindow reading every arc's forecast
// from a caller-owned per-decision ForecastCache, so the graph construction
// shares forecasts with whatever else the decision computes (and reuses the
// cache's capacity across decisions).
func FlowExpectStepCached(cands []Candidate, fc *ForecastCache, cacheSize, l, window int) (FlowDecision, error) {
	return FlowExpectStepBudget(cands, fc, cacheSize, l, window, mincostflow.Budget{})
}

// FlowExpectStepBudget is FlowExpectStepCached under a deterministic solver
// budget: when the min-cost-flow solve exceeds the budget (or hits numerical
// instability on a degenerate instance) the error is returned for the caller
// to degrade on — errors.Is(err, mincostflow.ErrBudgetExceeded) and
// mincostflow.ErrNumericalInstability distinguish the cases.
func FlowExpectStepBudget(cands []Candidate, fc *ForecastCache, cacheSize, l, window int, budget mincostflow.Budget) (FlowDecision, error) {
	if l < 1 {
		return FlowDecision{}, errors.New("core: FlowExpect look-ahead must be >= 1")
	}
	if cacheSize < 1 {
		return FlowDecision{}, errors.New("core: cache size must be >= 1")
	}
	if len(cands) <= cacheSize {
		keep := make([]int, len(cands))
		for i := range keep {
			keep[i] = i
		}
		return FlowDecision{Keep: keep}, nil
	}

	// Entities: candidates first, then one undetermined arrival per stream
	// per future slice time t0+1 .. t0+l-1.
	type entity struct {
		determined bool
		value      int      // determined only
		stream     StreamID // stream the tuple belongs to
		arriveOff  int      // arrival offset from t0 (undetermined only)
		age0       int      // age at t0 (determined only)
	}
	entities := make([]entity, 0, len(cands)+2*(l-1))
	for _, c := range cands {
		entities = append(entities, entity{determined: true, value: c.Value, stream: c.Stream, age0: c.Age})
	}
	for off := 1; off <= l-1; off++ {
		entities = append(entities, entity{stream: StreamR, arriveOff: off})
		entities = append(entities, entity{stream: StreamS, arriveOff: off})
	}
	// birth[e]: the slice offset at which entity e first exists.
	birth := func(e int) int {
		if entities[e].determined {
			return 0
		}
		return entities[e].arriveOff
	}

	forecast := fc.At
	// benefit(e, off): expected result tuples produced by keeping entity e
	// in cache through the arrival at offset off (time t0+off). Under
	// window semantics a tuple older than the window earns nothing.
	benefit := func(e, off int) float64 {
		ent := entities[e]
		if window > 0 {
			age := off - ent.arriveOff
			if ent.determined {
				age = ent.age0 + off
			}
			if age > window {
				return 0
			}
		}
		partner := ent.stream.Partner()
		pf := forecast(partner, off)
		if ent.determined {
			return pf.Prob(ent.value)
		}
		return dist.DotProduct(forecast(ent.stream, ent.arriveOff), pf)
	}

	// Node ids: source, sink, then one node per (slice offset, entity alive
	// at that offset).
	nE := len(entities)
	nodeID := func(off, e int) int { return 2 + off*nE + e }
	g := mincostflow.New(2 + l*nE)
	const source, sink = 0, 1

	srcArcs := make([]int, len(cands))
	for i := range cands {
		srcArcs[i] = g.AddArc(source, nodeID(0, i), 1, 0)
	}
	for off := 0; off < l; off++ {
		for e := 0; e < nE; e++ {
			if birth(e) > off {
				continue
			}
			if off < l-1 {
				// Horizontal arc: keep e through the arrival at off+1.
				g.AddArc(nodeID(off, e), nodeID(off+1, e), 1, -benefit(e, off+1))
				// Non-horizontal arcs: at slice off+1, an entity copied from
				// this slice may be replaced by an arrival born at off+1.
				for a := 0; a < nE; a++ {
					if !entities[a].determined && entities[a].arriveOff == off+1 {
						g.AddArc(nodeID(off+1, e), nodeID(off+1, a), 1, 0)
					}
				}
			} else {
				// Sink arc, costed as a horizontal arc out of the last slice.
				g.AddArc(nodeID(off, e), sink, 1, -benefit(e, off+1))
			}
		}
	}

	res, err := g.MinCostFlowBudget(source, sink, cacheSize, budget)
	if err != nil {
		return FlowDecision{}, fmt.Errorf("core: FlowExpect flow failed: %w", err)
	}
	if res.Flow != cacheSize {
		return FlowDecision{}, fmt.Errorf("core: FlowExpect routed %d units, want %d", res.Flow, cacheSize)
	}
	dec := FlowDecision{ExpectedBenefit: -res.Cost}
	for i, a := range srcArcs {
		if g.Flow(a) == 1 {
			dec.Keep = append(dec.Keep, i)
		}
	}
	return dec, nil
}
