// Package core implements the paper's primary contribution: expected
// cumulative benefit (ECB) functions over candidate tuples, the dominance
// tests that certify provably optimal cache-replacement decisions
// (Theorem 3, Corollary 2), the HEEB heuristic with its family of survival
// estimates L_x (Section 4.3), the efficient implementations of Section 4.4
// (time-incremental, value-incremental, and precomputed h1/h2 forms), the
// FlowExpect flow-graph construction of Section 3.1, and the compressed
// OPT-offline flow formulation used as the experiments' upper bound.
package core

import (
	"stochstream/internal/process"
)

// ECB is an expected cumulative benefit function tabulated at
// Δt = 1..len(ECB): ECB[i] = B_x(i+1)... indexing note: ECB[Δt-1] = B_x(Δt),
// the expected number of result tuples tuple x produces during
// [t0+1, t0+Δt] if kept in cache throughout (Section 4.1).
type ECB []float64

// At returns B_x(Δt) for Δt >= 1. Beyond the tabulated horizon the last
// value is returned (every ECB in the paper is non-decreasing and the
// models here plateau once the relevant probability mass has passed).
func (b ECB) At(dt int) float64 {
	if dt < 1 {
		panic("core: ECB.At requires Δt >= 1")
	}
	if len(b) == 0 {
		return 0
	}
	if dt > len(b) {
		return b[len(b)-1]
	}
	return b[dt-1]
}

// Increment returns the single-step expected benefit at Δt,
// B_x(Δt) − B_x(Δt−1) (with B_x(0) = 0).
func (b ECB) Increment(dt int) float64 {
	if dt == 1 {
		return b.At(1)
	}
	return b.At(dt) - b.At(dt-1)
}

// JoinECB computes, per Lemma 1, the ECB of a candidate tuple with join
// attribute value v to be joined with the partner stream: B_x(Δt) =
// Σ_{t=t0+1}^{t0+Δt} Pr{X^partner_t = v | x̄_{t0}}, tabulated out to horizon
// steps. h is the partner stream's observed history through the current
// time t0.
func JoinECB(partner process.Process, h *process.History, v int, horizon int) ECB {
	if horizon < 1 {
		panic("core: JoinECB requires horizon >= 1")
	}
	b := make(ECB, horizon)
	var cum float64
	for dt := 1; dt <= horizon; dt++ {
		cum += partner.Forecast(h, dt).Prob(v)
		b[dt-1] = cum
	}
	return b
}

// CacheECB computes, per Corollary 1, the ECB of a candidate database tuple
// with value v referenced by stream ref: B_x(Δt) = 1 − Π_{t=t0+1}^{t0+Δt}
// Pr{X^ref_t ≠ v | x̄_{t0}}, the probability of at least one reference in
// the period. The product form requires the reference stream's per-step
// variables to be independent; for Markov streams (random walk, AR(1)) use
// the marginal-based MarginalH of Theorem 5 instead. Reference-stream tuples
// themselves always have a zero ECB.
func CacheECB(ref process.Process, h *process.History, v int, horizon int) ECB {
	if horizon < 1 {
		panic("core: CacheECB requires horizon >= 1")
	}
	if !ref.Independent() {
		panic("core: CacheECB requires an independent reference process; see MarginalH")
	}
	b := make(ECB, horizon)
	notRef := 1.0
	for dt := 1; dt <= horizon; dt++ {
		notRef *= 1 - ref.Forecast(h, dt).Prob(v)
		b[dt-1] = 1 - notRef
	}
	return b
}

// WindowECB clips an ECB to sliding-window join semantics (Section 7): a
// tuple that arrived at time arrived with window w stops producing benefit
// once it leaves the window at time arrived+w. With t0 the current time the
// clipped ECB is identically zero if the tuple has already expired, and
// min(B(Δt), B(arrived+w−t0)) otherwise.
func WindowECB(b ECB, arrived, t0, w int) ECB {
	if w <= 0 {
		return b
	}
	remaining := arrived + w - t0
	out := make(ECB, len(b))
	if remaining <= 0 {
		return out
	}
	ceiling := b.At(remaining)
	for i := range b {
		out[i] = min(b[i], ceiling)
	}
	return out
}

// Dominates reports whether a dominates b: a(Δt) ≥ b(Δt) for all Δt ≥ 1
// over the common tabulated horizon (Section 4.2). ECBs of different lengths
// are compared through At, which extends each by its plateau.
func Dominates(a, b ECB) bool {
	n := max(len(a), len(b))
	if n == 0 {
		return true
	}
	for dt := 1; dt <= n; dt++ {
		if a.At(dt) < b.At(dt) {
			return false
		}
	}
	return true
}

// StronglyDominates reports whether a(Δt) > b(Δt) strictly for all Δt ≥ 1.
func StronglyDominates(a, b ECB) bool {
	n := max(len(a), len(b))
	if n == 0 {
		return false
	}
	for dt := 1; dt <= n; dt++ {
		if a.At(dt) <= b.At(dt) {
			return false
		}
	}
	return true
}

// Comparable reports whether one of the two ECBs dominates the other.
func Comparable(a, b ECB) bool { return Dominates(a, b) || Dominates(b, a) }

// DominatedSubset finds a subset V of the candidates, |V| ≤ want, such that
// every candidate outside V dominates every candidate inside V — the
// condition of Corollary 2 under which discarding all of V is optimal. It
// returns the indices of V (possibly fewer than want, possibly none).
//
// The search uses the closure structure of the condition: V is valid exactly
// when, for every v ∈ V, every candidate that does NOT dominate v is itself
// in V. Closures of single candidates are therefore the minimal valid
// building blocks, and unions of valid sets are valid, so a greedy union of
// the smallest closures is returned.
func DominatedSubset(ecbs []ECB, want int) []int {
	n := len(ecbs)
	if want <= 0 || n == 0 {
		return nil
	}
	// dom[i][j]: ecbs[i] dominates ecbs[j].
	dom := make([][]bool, n)
	for i := range dom {
		dom[i] = make([]bool, n)
		for j := range dom[i] {
			if i != j {
				dom[i][j] = Dominates(ecbs[i], ecbs[j])
			}
		}
	}
	// closure(x): least set containing x such that any non-dominator of a
	// member is also a member.
	closure := func(x int) []int {
		in := make([]bool, n)
		in[x] = true
		queue := []int{x}
		var members []int
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			members = append(members, v)
			if len(members) > want {
				return nil // already too large to be useful
			}
			for u := 0; u < n; u++ {
				if u != v && !in[u] && !dom[u][v] {
					in[u] = true
					queue = append(queue, u)
				}
			}
		}
		return members
	}
	closures := make([][]int, 0, n)
	for x := 0; x < n; x++ {
		if c := closure(x); c != nil {
			closures = append(closures, c)
		}
	}
	// Greedy union of smallest closures first.
	sortBySize(closures)
	chosen := make([]bool, n)
	var out []int
	for _, c := range closures {
		added := 0
		for _, v := range c {
			if !chosen[v] {
				added++
			}
		}
		if len(out)+added > want {
			continue
		}
		for _, v := range c {
			if !chosen[v] {
				chosen[v] = true
				out = append(out, v)
			}
		}
		if len(out) == want {
			break
		}
	}
	return out
}

func sortBySize(cs [][]int) {
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && len(cs[j]) < len(cs[j-1]); j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
}
