package core

import (
	"math"

	"stochstream/internal/dist"
	"stochstream/internal/process"
)

// DefaultEps is the truncation threshold for HEEB's infinite sum: terms are
// summed until L(Δt) falls below it.
const DefaultEps = 1e-9

// MaxHorizon bounds every HEEB summation as a safety net for unbounded L
// functions (LInf) applied to join problems.
const MaxHorizon = 100000

// HorizonFor returns the summation horizon for l: its own decay horizon if
// bounded, otherwise fallback (clamped to [1, MaxHorizon]).
func HorizonFor(l LFunc, fallback int) int {
	h := l.Horizon(DefaultEps)
	if h <= 0 {
		h = fallback
	}
	if h < 1 {
		h = 1
	}
	if h > MaxHorizon {
		h = MaxHorizon
	}
	return h
}

// HFromECB evaluates the defining HEEB sum of Section 4.3 from a tabulated
// ECB: H_x = B_x(1)·L(1) + Σ_{Δt≥2} (B_x(Δt) − B_x(Δt−1))·L(Δt), truncated
// at the ECB's tabulated horizon.
func HFromECB(b ECB, l LFunc) float64 {
	var h float64
	for dt := 1; dt <= len(b); dt++ {
		h += b.Increment(dt) * l.At(dt)
	}
	return h
}

// joinHSum is the summation kernel shared by JoinH and JoinHCached: both
// paths run the identical loop over the identical forecasts, so the cached
// variant is bitwise-equal to the direct one — the property the differential
// harness in internal/engine asserts.
func joinHSum(forecast func(dt int) dist.PMF, v int, l LFunc, fallbackHorizon int) float64 {
	horizon := HorizonFor(l, fallbackHorizon)
	var sum float64
	for dt := 1; dt <= horizon; dt++ {
		p := forecast(dt).Prob(v)
		if p != 0 {
			sum += p * l.At(dt)
		}
	}
	return sum
}

// JoinH computes HEEB's score for a candidate tuple with value v in the
// joining problem, via the equivalent form
// H_x = Σ_{Δt≥1} Pr{X^partner_{t0+Δt} = v | x̄_{t0}}·L(Δt)
// (Section 4.3). fallbackHorizon bounds the sum when L does not decay.
func JoinH(partner process.Process, h *process.History, v int, l LFunc, fallbackHorizon int) float64 {
	return joinHSum(func(dt int) dist.PMF { return partner.Forecast(h, dt) }, v, l, fallbackHorizon)
}

// JoinHCached is JoinH reading the partner forecasts from a per-decision
// ForecastCache instead of re-deriving them: scoring k candidates of a
// decision costs O(horizon) Forecast calls in total instead of O(k·horizon).
func JoinHCached(fc *ForecastCache, partner StreamID, v int, l LFunc, fallbackHorizon int) float64 {
	return joinHSum(func(dt int) dist.PMF { return fc.At(partner, dt) }, v, l, fallbackHorizon)
}

// CacheH computes HEEB's score for a candidate database tuple with value v
// in the caching problem, via the first-reference form
// H_x = Σ_{Δt≥1} Pr{(X_{t0+Δt} = v) ∩ (X_t ≠ v for t0 < t < t0+Δt)}·L(Δt).
// The product expansion requires an independent reference process; Markov
// reference streams use MarginalH (Theorem 5) instead.
func CacheH(ref process.Process, h *process.History, v int, l LFunc, fallbackHorizon int) float64 {
	if !ref.Independent() {
		panic("core: CacheH requires an independent reference process; see MarginalH")
	}
	horizon := HorizonFor(l, fallbackHorizon)
	var sum float64
	notRef := 1.0
	for dt := 1; dt <= horizon; dt++ {
		p := ref.Forecast(h, dt).Prob(v)
		sum += notRef * p * l.At(dt)
		notRef *= 1 - p
		if notRef < DefaultEps {
			break
		}
	}
	return sum
}

// MarginalH computes the marginal-based HEEB score
// H_x = Σ_{Δt≥1} Pr{X_{t0+Δt} = v | x̄_{t0}}·L(Δt)
// using a closed-form normal forecaster (Gaussian random walk or AR(1)).
// This is exactly the quantity Theorem 5's h1/h2 functions tabulate: its
// constructive proof derives the marginal, so random-walk and AR(1) case
// studies (Sections 5.5 and 6.5) score tuples with this form for both
// joining and caching.
func MarginalH(nf process.NormalForecaster, last, v int, l LFunc, fallbackHorizon int) float64 {
	horizon := HorizonFor(l, fallbackHorizon)
	var sum float64
	for dt := 1; dt <= horizon; dt++ {
		lv := l.At(dt)
		if lv == 0 {
			continue
		}
		mean, sd := nf.ForecastNormal(last, dt)
		sum += normalMass(v, mean, sd) * lv
	}
	return sum
}

// normalMass is the discretized normal mass at integer v.
func normalMass(v int, mean, sd float64) float64 {
	if sd <= 0 {
		if int(math.Round(mean)) == v {
			return 1
		}
		return 0
	}
	a := (float64(v) - 0.5 - mean) / (sd * math.Sqrt2)
	b := (float64(v) + 0.5 - mean) / (sd * math.Sqrt2)
	return 0.5 * (math.Erf(b) - math.Erf(a))
}

// JoinHStep is the time-incremental update of Corollary 3 for Lexp and
// independent streams: given H at time t0−1 and pNow = Pr{X^partner_{t0} =
// v}, the score at t0 is e^{1/α}·H_{t0−1} − pNow.
func JoinHStep(prev float64, alpha float64, pNow float64) float64 {
	return math.Exp(1/alpha)*prev - pNow
}

// CacheHStep is the time-incremental update of Corollary 4 for Lexp and an
// independent reference stream: H_{t0} = (e^{1/α}·H_{t0−1} − pNow)/(1 −
// pNow), where pNow = Pr{X^ref_{t0} = v}. pNow = 1 (the tuple is being
// referenced right now with certainty) has no finite update; the result is
// +Inf and callers should recompute directly.
func CacheHStep(prev float64, alpha float64, pNow float64) float64 {
	return (math.Exp(1/alpha)*prev - pNow) / (1 - pNow)
}

// TransferValue implements the value-incremental technique of Corollary 5
// for a linear-trend stream X_t = a·t + b + Y_t: the ECB (and hence H) of a
// tuple with value v at time t equals that of a tuple with value
// v + a·(t'−t) at time t'. Given a new tuple's value at time tNew, it
// returns the value whose score at time tRef is identical.
func TransferValue(slope int, vNew, tNew, tRef int) int {
	return vNew + slope*(tRef-tNew)
}
