package core

import (
	"stochstream/internal/process"
)

// MarkovFirstPassageH computes HEEB's exact first-reference score for a
// caching problem whose reference stream is a finite Markov chain:
// H_x = Σ_{Δt≥1} Pr{first visit to v_x at step Δt | current state}·L(Δt).
//
// Corollary 4's product form requires independent references and Theorem 5's
// marginal form applies to AR-family streams; for a finite chain the exact
// first-passage distribution is computable by dynamic programming over the
// state space with the target state made absorbing, which is what this does.
// The cost is O(horizon · states²) per evaluation.
func MarkovFirstPassageH(m *process.MarkovChain, last, v int, l LFunc, fallbackHorizon int) float64 {
	n := m.States()
	target := v - m.Lo
	if target < 0 || target >= n {
		return 0 // the chain can never produce v
	}
	horizon := HorizonFor(l, fallbackHorizon)
	// q[s] = Pr{X_t = s ∩ no visit to target in (t0, t]}.
	q := make([]float64, n)
	cur := last - m.Lo
	if cur < 0 {
		cur = 0
	}
	if cur >= n {
		cur = n - 1
	}
	q[cur] = 1
	next := make([]float64, n)
	var sum float64
	for dt := 1; dt <= horizon; dt++ {
		for j := range next {
			next[j] = 0
		}
		for i, qi := range q {
			if qi == 0 {
				continue
			}
			row := m.P[i]
			for j, pij := range row {
				if pij != 0 {
					next[j] += qi * pij
				}
			}
		}
		hit := next[target]
		if hit > 0 {
			sum += hit * l.At(dt)
			next[target] = 0 // absorb: later steps condition on no visit
		}
		q, next = next, q
		// All surviving mass gone: no more first visits possible.
		var alive float64
		for _, qi := range q {
			alive += qi
		}
		if alive < DefaultEps {
			break
		}
	}
	return sum
}
