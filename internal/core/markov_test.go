package core

import (
	"math"
	"testing"

	"stochstream/internal/process"
	"stochstream/internal/stats"
)

func chain(t *testing.T, lo int, p [][]float64, init int) *process.MarkovChain {
	t.Helper()
	m, err := process.NewMarkovChain(lo, p, init)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMarkovFirstPassageDeterministicCycle(t *testing.T) {
	// 3-cycle 0→1→2→0: from state 0, the first visit to 2 is at Δt = 2,
	// with certainty, so H = L(2).
	m := chain(t, 0, [][]float64{{0, 1, 0}, {0, 0, 1}, {1, 0, 0}}, 0)
	l := NewLExp(5)
	got := MarkovFirstPassageH(m, 0, 2, l, 0)
	if !almostEqual(got, l.At(2), 1e-12) {
		t.Fatalf("H = %v, want L(2) = %v", got, l.At(2))
	}
	// First visit to 0 (returning home) is at Δt = 3.
	if got := MarkovFirstPassageH(m, 0, 0, l, 0); !almostEqual(got, l.At(3), 1e-12) {
		t.Fatalf("return H = %v, want L(3)", got)
	}
}

func TestMarkovFirstPassageIIDRowsMatchCacheH(t *testing.T) {
	// A chain whose rows are all identical is an i.i.d. stream, so the
	// first-passage score must equal CacheH on the equivalent Stationary
	// process.
	row := []float64{0.5, 0.3, 0.2}
	m := chain(t, 0, [][]float64{row, row, row}, 0)
	st := &process.Stationary{P: mustTable(row)}
	l := NewLExp(7)
	h := process.NewHistory(0)
	for v := 0; v <= 2; v++ {
		markov := MarkovFirstPassageH(m, 0, v, l, 0)
		iid := CacheH(st, h, v, l, 0)
		if !almostEqual(markov, iid, 1e-9) {
			t.Fatalf("v=%d: markov %v != iid %v", v, markov, iid)
		}
	}
}

func mustTable(row []float64) *tableAdapter { return &tableAdapter{row: row} }

// tableAdapter exposes a probability row as a PMF without importing dist's
// constructors into the assertion path.
type tableAdapter struct{ row []float64 }

func (t *tableAdapter) Prob(v int) float64 {
	if v < 0 || v >= len(t.row) {
		return 0
	}
	return t.row[v]
}
func (t *tableAdapter) Support() (int, int) { return 0, len(t.row) - 1 }

func TestMarkovFirstPassageOutOfRangeValue(t *testing.T) {
	m := chain(t, 10, [][]float64{{0.5, 0.5}, {0.5, 0.5}}, 10)
	if got := MarkovFirstPassageH(m, 10, 99, NewLExp(5), 0); got != 0 {
		t.Fatalf("unreachable value H = %v", got)
	}
}

func TestMarkovFirstPassageMatchesMonteCarlo(t *testing.T) {
	// Random 4-state chain: compare the DP against simulated first-passage
	// times weighted by Lexp.
	p := [][]float64{
		{0.1, 0.4, 0.3, 0.2},
		{0.3, 0.3, 0.2, 0.2},
		{0.25, 0.25, 0.25, 0.25},
		{0.4, 0.1, 0.1, 0.4},
	}
	m := chain(t, 0, p, 0)
	l := NewLExp(6)
	horizon := HorizonFor(l, 0)
	const trials = 400000
	rng := stats.NewRNG(9)
	for _, target := range []int{1, 3} {
		var mc float64
		for tr := 0; tr < trials; tr++ {
			state := 0
			for dt := 1; dt <= horizon; dt++ {
				u := rng.Float64()
				var c float64
				next := len(p) - 1
				for j, pij := range p[state] {
					c += pij
					if u < c {
						next = j
						break
					}
				}
				state = next
				if state == target {
					mc += l.At(dt)
					break
				}
			}
		}
		mc /= trials
		dp := MarkovFirstPassageH(m, 0, target, l, 0)
		if math.Abs(dp-mc) > 0.005 {
			t.Fatalf("target %d: DP %v vs Monte Carlo %v", target, dp, mc)
		}
	}
}

func TestMarkovFirstPassageAbsorptionTerminatesEarly(t *testing.T) {
	// Absorbing target: all mass is absorbed quickly and the loop exits
	// before the horizon without changing the result.
	m := chain(t, 0, [][]float64{{0, 1}, {0, 1}}, 0)
	l := LFixed{DT: 1000}
	// First visit to 1 happens at Δt = 1 with certainty.
	if got := MarkovFirstPassageH(m, 0, 1, l, 0); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("H = %v, want 1", got)
	}
}
