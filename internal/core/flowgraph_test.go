package core

import (
	"math"
	"testing"

	"stochstream/internal/dist"
	"stochstream/internal/process"
	"stochstream/internal/stats"
)

// scripted is a test process whose per-step distributions are given
// explicitly, indexed by absolute time. It models the carefully constructed
// examples of Sections 3.4 and Theorem 2's brute-force checks.
type scripted struct {
	pmfs []dist.PMF
	// dead is the PMF used beyond the script: a point mass at a value that
	// joins nothing.
	dead dist.PMF
}

func newScripted(pmfs ...dist.PMF) *scripted {
	return &scripted{pmfs: pmfs, dead: dist.NewPointMass(process.NoValue)}
}

func (s *scripted) Forecast(h *process.History, delta int) dist.PMF {
	t := h.T0() + delta
	if t < 0 || t >= len(s.pmfs) {
		return s.dead
	}
	return s.pmfs[t]
}

func (s *scripted) Generate(rng *stats.RNG, n int) []int {
	out := make([]int, n)
	for t := range out {
		if t < len(s.pmfs) {
			out[t] = dist.Sample(s.pmfs[t], rng.Float64())
		} else {
			out[t] = process.NoValue
		}
	}
	return out
}

func (s *scripted) Independent() bool { return true }

// pm is shorthand for a deterministic arrival.
func pm(v int) dist.PMF { return dist.NewPointMass(v) }

// two builds a two-point PMF: value v with probability p, a dead value
// otherwise.
func two(v int, p float64, deadV int) dist.PMF {
	return dist.NewMixture([]dist.PMF{dist.NewPointMass(v), dist.NewPointMass(deadV)}, []float64{p, 1 - p})
}

// Section 3.4's counterexample, verbatim. Cache size 1; cached tuple is R
// with value 1. Arrivals (t0 = 0):
//
//	t    new R                        new S
//	t0   − (never joins)             2
//	t0+1 2                           3 w.p. 0.5
//	t0+2 3                           1 w.p. 0.8
//	t0+3 2 w.p. 0.5                  1 w.p. 0.8
//
// FlowExpect's best predetermined sequence keeps the cached R tuple for an
// expected benefit of 1.6, even though an adaptive strategy achieves 1.75.
func section34Setup() ([]Candidate, [2]process.Process, [2]*process.History) {
	// Distinct dead values so "−" tuples join nothing, ever.
	rProc := newScripted(
		pm(-101),          // t0: −
		pm(2),             // t0+1
		pm(3),             // t0+2
		two(2, 0.5, -102), // t0+3
	)
	sProc := newScripted(
		pm(2),             // t0
		two(3, 0.5, -201), // t0+1
		two(1, 0.8, -202), // t0+2
		two(1, 0.8, -203), // t0+3
	)
	cands := []Candidate{
		{Value: 1, Stream: StreamR},    // currently cached
		{Value: -101, Stream: StreamR}, // new R arrival: −
		{Value: 2, Stream: StreamS},    // new S arrival
	}
	hists := [2]*process.History{process.NewHistory(-101), process.NewHistory(2)}
	return cands, [2]process.Process{rProc, sProc}, hists
}

func TestSection34FlowExpectKeepsCachedTuple(t *testing.T) {
	cands, procs, hists := section34Setup()
	dec, err := FlowExpectStep(cands, procs, hists, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(dec.ExpectedBenefit, 1.6, 1e-9) {
		t.Fatalf("expected benefit = %v, want 1.6", dec.ExpectedBenefit)
	}
	if len(dec.Keep) != 1 || dec.Keep[0] != 0 {
		t.Fatalf("Keep = %v, want [0] (the cached R tuple)", dec.Keep)
	}
}

func TestSection34AlternativeSequencesScoreOnePointFive(t *testing.T) {
	// Force the S(2) arrival to be kept by removing the cached R tuple from
	// the candidates: the best predetermined sequence from there is 1.5.
	cands, procs, hists := section34Setup()
	dec, err := FlowExpectStep(cands[1:], procs, hists, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(dec.ExpectedBenefit, 1.5, 1e-9) {
		t.Fatalf("expected benefit = %v, want 1.5", dec.ExpectedBenefit)
	}
	if len(dec.Keep) != 1 || cands[1:][dec.Keep[0]].Stream != StreamS {
		t.Fatalf("Keep = %v, want the S(2) tuple", dec.Keep)
	}
}

func TestSection34AdaptiveStrategyBeatsFlowExpect(t *testing.T) {
	// The adaptive strategy of Section 3.4: cache S(2) now; at t0+1, if the
	// new S tuple is 3, switch to it; keep afterwards. Expected benefit:
	// 0.5·(1 + 1) + 0.5·(1 + 0.5) = 1.75 > 1.6.
	// Computed here by direct expectation to document the gap.
	pSwitch := 0.5
	benefitIfSwitch := 1.0 + 1.0 // joins R(2) at t0+1, then S(3) joins R(3) at t0+2
	benefitIfNot := 1.0 + 0.5    // joins R(2) at t0+1, keeps S(2), joins R at t0+3 w.p. 0.5
	adaptive := pSwitch*benefitIfSwitch + (1-pSwitch)*benefitIfNot
	if !almostEqual(adaptive, 1.75, 1e-12) {
		t.Fatalf("adaptive benefit = %v, want 1.75", adaptive)
	}
	cands, procs, hists := section34Setup()
	dec, err := FlowExpectStep(cands, procs, hists, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if dec.ExpectedBenefit >= adaptive {
		t.Fatalf("FlowExpect %v should be beaten by the adaptive strategy %v", dec.ExpectedBenefit, adaptive)
	}
}

// bruteBestSequence enumerates every predetermined replacement sequence over
// the look-ahead window and returns the maximum expected benefit — the
// quantity Theorem 2 says the min-cost flow computes.
func bruteBestSequence(cands []Candidate, procs [2]process.Process, hists [2]*process.History, k, l int) float64 {
	type entity struct {
		determined bool
		value      int
		stream     StreamID
		arriveOff  int
	}
	var entities []entity
	for _, c := range cands {
		entities = append(entities, entity{determined: true, value: c.Value, stream: c.Stream})
	}
	for off := 1; off <= l-1; off++ {
		entities = append(entities, entity{stream: StreamR, arriveOff: off})
		entities = append(entities, entity{stream: StreamS, arriveOff: off})
	}
	benefit := func(e int, off int) float64 {
		ent := entities[e]
		partner := ent.stream.Partner()
		pf := procs[partner].Forecast(hists[partner], off)
		if ent.determined {
			return pf.Prob(ent.value)
		}
		own := procs[ent.stream].Forecast(hists[ent.stream], ent.arriveOff)
		return dist.DotProduct(own, pf)
	}
	// State: sorted set of held entity indices. Recursive search over
	// replacement choices at each slice.
	var best float64 = math.Inf(-1)
	var recurse func(off int, held []int, acc float64)
	recurse = func(off int, held []int, acc float64) {
		// Earn benefits for the arrival at off+1.
		for _, e := range held {
			acc += benefit(e, off+1)
		}
		if off == l-1 {
			if acc > best {
				best = acc
			}
			return
		}
		// Arrivals born at off+1 may replace held entities.
		var arrivals []int
		for e, ent := range entities {
			if !ent.determined && ent.arriveOff == off+1 {
				arrivals = append(arrivals, e)
			}
		}
		// Choices: each arrival independently replaces one held entity or is
		// discarded; two arrivals cannot replace the same entity.
		var choose func(ai int, cur []int)
		choose = func(ai int, cur []int) {
			if ai == len(arrivals) {
				recurse(off+1, cur, acc)
				return
			}
			// Discard the arrival.
			choose(ai+1, cur)
			// Replace each held entity in turn (only original holds, not
			// same-slice arrivals already swapped in).
			for i, e := range cur {
				if !entities[e].determined && entities[e].arriveOff == off+1 {
					continue
				}
				next := append(append([]int(nil), cur[:i]...), cur[i+1:]...)
				next = append(next, arrivals[ai])
				choose(ai+1, next)
			}
		}
		choose(0, held)
	}
	// Initial choice: keep k of the candidates.
	idx := make([]int, len(cands))
	for i := range idx {
		idx[i] = i
	}
	var initial func(start int, cur []int)
	initial = func(start int, cur []int) {
		if len(cur) == k {
			held := append([]int(nil), cur...)
			recurse(0, held, 0)
			return
		}
		for i := start; i < len(idx); i++ {
			initial(i+1, append(cur, idx[i]))
		}
	}
	initial(0, nil)
	return best
}

// Theorem 2: the flow's optimum equals brute-force enumeration of
// predetermined sequences on randomized small instances.
func TestTheorem2FlowMatchesBruteForce(t *testing.T) {
	rng := stats.NewRNG(2025)
	for trial := 0; trial < 40; trial++ {
		k := 1 + rng.IntN(2) // cache 1 or 2
		l := 2 + rng.IntN(2) // look-ahead 2 or 3
		nc := k + 2
		mkPMF := func() dist.PMF {
			v := rng.IntN(4)
			p := 0.2 + 0.8*rng.Float64()
			return two(v, math.Round(p*8)/8, -(1000 + rng.IntN(100000)))
		}
		var rs, ss []dist.PMF
		for i := 0; i < l+1; i++ {
			rs = append(rs, mkPMF())
			ss = append(ss, mkPMF())
		}
		procs := [2]process.Process{newScripted(rs...), newScripted(ss...)}
		hists := [2]*process.History{process.NewHistory(0), process.NewHistory(0)}
		cands := make([]Candidate, nc)
		for i := range cands {
			cands[i] = Candidate{Value: rng.IntN(4), Stream: StreamID(rng.IntN(2))}
		}
		dec, err := FlowExpectStep(cands, procs, hists, k, l)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteBestSequence(cands, procs, hists, k, l)
		if !almostEqual(dec.ExpectedBenefit, want, 1e-9) {
			t.Fatalf("trial %d (k=%d l=%d): flow %v != brute force %v", trial, k, l, dec.ExpectedBenefit, want)
		}
	}
}

func TestFlowExpectStepFitsWithoutEviction(t *testing.T) {
	cands := []Candidate{{Value: 1, Stream: StreamR}, {Value: 2, Stream: StreamS}}
	procs := [2]process.Process{
		&process.Stationary{P: dist.NewUniform(0, 3)},
		&process.Stationary{P: dist.NewUniform(0, 3)},
	}
	hists := [2]*process.History{process.NewHistory(0), process.NewHistory(0)}
	dec, err := FlowExpectStep(cands, procs, hists, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Keep) != 2 {
		t.Fatalf("Keep = %v, want both candidates", dec.Keep)
	}
}

func TestFlowExpectStepLookaheadOne(t *testing.T) {
	// l = 1: keep the candidates most likely to join the very next arrivals.
	rProc := newScripted(pm(0), pm(7)) // next R arrival is 7
	sProc := newScripted(pm(0), pm(9)) // next S arrival is 9
	cands := []Candidate{
		{Value: 9, Stream: StreamR}, // joins next S: benefit 1
		{Value: 7, Stream: StreamR}, // does not join next S
		{Value: 7, Stream: StreamS}, // joins next R: benefit 1
	}
	hists := [2]*process.History{process.NewHistory(0), process.NewHistory(0)}
	dec, err := FlowExpectStep(cands, [2]process.Process{rProc, sProc}, hists, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(dec.ExpectedBenefit, 2, 1e-9) {
		t.Fatalf("benefit = %v, want 2", dec.ExpectedBenefit)
	}
	keep := map[int]bool{}
	for _, i := range dec.Keep {
		keep[i] = true
	}
	if !keep[0] || !keep[2] || keep[1] {
		t.Fatalf("Keep = %v, want {0, 2}", dec.Keep)
	}
}

func TestFlowExpectStepErrors(t *testing.T) {
	cands := []Candidate{{Value: 1, Stream: StreamR}, {Value: 2, Stream: StreamS}}
	procs := [2]process.Process{
		&process.Stationary{P: dist.NewUniform(0, 3)},
		&process.Stationary{P: dist.NewUniform(0, 3)},
	}
	hists := [2]*process.History{process.NewHistory(0), process.NewHistory(0)}
	if _, err := FlowExpectStep(cands, procs, hists, 1, 0); err == nil {
		t.Fatal("look-ahead 0 should error")
	}
	if _, err := FlowExpectStep(cands, procs, hists, 0, 2); err == nil {
		t.Fatal("cache size 0 should error")
	}
}

func TestStreamID(t *testing.T) {
	if StreamR.Partner() != StreamS || StreamS.Partner() != StreamR {
		t.Fatal("Partner is broken")
	}
	if StreamR.String() != "R" || StreamS.String() != "S" {
		t.Fatal("String is broken")
	}
}

func TestFlowExpectWindowZerosExpiredBenefits(t *testing.T) {
	// Partner S produces 5 at every step; a cached R(5) tuple earns 1 per
	// step — unless the window has passed it.
	sProc := newScripted(pm(5), pm(5), pm(5), pm(5))
	rProc := newScripted(pm(-1), pm(-2), pm(-3), pm(-4))
	hists := [2]*process.History{process.NewHistory(-1), process.NewHistory(5)}
	procs := [2]process.Process{rProc, sProc}
	fresh := []Candidate{
		{Value: 5, Stream: StreamR, Age: 0},
		{Value: -90, Stream: StreamR, Age: 0},
		{Value: -91, Stream: StreamS, Age: 0},
	}
	dec, err := FlowExpectStepWindow(fresh, procs, hists, 1, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(dec.ExpectedBenefit, 3, 1e-9) {
		t.Fatalf("fresh tuple benefit = %v, want 3", dec.ExpectedBenefit)
	}
	// The same tuple aged 2 with window 3 only earns at offset 1 (age 3).
	aged := []Candidate{
		{Value: 5, Stream: StreamR, Age: 2},
		{Value: -90, Stream: StreamR, Age: 0},
		{Value: -91, Stream: StreamS, Age: 0},
	}
	decAged, err := FlowExpectStepWindow(aged, procs, hists, 1, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(decAged.ExpectedBenefit, 1, 1e-9) {
		t.Fatalf("aged tuple benefit = %v, want 1", decAged.ExpectedBenefit)
	}
	if len(decAged.Keep) != 1 || decAged.Keep[0] != 0 {
		t.Fatalf("Keep = %v, want the aged tuple while it still earns", decAged.Keep)
	}
}

func TestFlowExpectWindowPrefersYoungerOfEqualTuples(t *testing.T) {
	// Two tuples with identical values but different ages: under a window
	// the younger one's benefit horizon is longer.
	sProc := newScripted(pm(7), pm(7), pm(7), pm(7), pm(7))
	rProc := newScripted(pm(-1), pm(-2), pm(-3), pm(-4), pm(-5))
	hists := [2]*process.History{process.NewHistory(-1), process.NewHistory(7)}
	procs := [2]process.Process{rProc, sProc}
	cands := []Candidate{
		{Value: 7, Stream: StreamR, Age: 3},
		{Value: 7, Stream: StreamR, Age: 0},
		{Value: -50, Stream: StreamS, Age: 0},
	}
	dec, err := FlowExpectStepWindow(cands, procs, hists, 1, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Keep) != 1 || dec.Keep[0] != 1 {
		t.Fatalf("Keep = %v, want the younger duplicate (1)", dec.Keep)
	}
}
