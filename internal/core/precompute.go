package core

import (
	"fmt"
	"math"

	"stochstream/internal/interp"
	"stochstream/internal/process"
)

// H1 is the precomputed function h1 of Theorem 5(2) for a random walk with
// drift (φ1 = 1): HEEB's score depends on the candidate's value only through
// d = v_x − x_{t0}, so one curve over d serves every tuple at every time.
// The curve is stored as a cubic-spline approximation of exact values
// sampled on an integer lattice.
type H1 struct {
	lo, hi int
	sp     *interp.Spline
}

// PrecomputeH1 tabulates h1(d) for d ∈ [lo, hi] at every step integers and
// fits the interpolating spline. nf must be a φ1 = 1 model (GaussianWalk, or
// AR1 with Phi1 == 1); l is the survival estimate; fallbackHorizon bounds
// the HEEB sum for non-decaying L.
func PrecomputeH1(nf process.NormalForecaster, l LFunc, lo, hi, step int, fallbackHorizon int) (*H1, error) {
	if lo >= hi {
		return nil, fmt.Errorf("core: PrecomputeH1 needs lo < hi, got [%d, %d]", lo, hi)
	}
	if step < 1 {
		step = 1
	}
	var xs, ys []float64
	for d := lo; d <= hi; d += step {
		xs = append(xs, float64(d))
		// By Theorem 5(2) the score is translation invariant, so evaluate
		// at last = 0, v = d.
		ys = append(ys, MarginalH(nf, 0, d, l, fallbackHorizon))
	}
	//lint:ignore floateq both sides are exact integer-valued conversions; equality dedupes the endpoint knot
	if xs[len(xs)-1] != float64(hi) {
		xs = append(xs, float64(hi))
		ys = append(ys, MarginalH(nf, 0, hi, l, fallbackHorizon))
	}
	sp, err := interp.NewSpline(xs, ys)
	if err != nil {
		return nil, err
	}
	return &H1{lo: lo, hi: hi, sp: sp}, nil
}

// At returns the approximate HEEB score for a tuple with value v when the
// most recent observation is last. Differences outside the tabulated range
// clamp to its ends (the curve is flat ≈ 0 there by construction).
func (h *H1) At(last, v int) float64 {
	d := v - last
	if d < h.lo {
		d = h.lo
	}
	if d > h.hi {
		d = h.hi
	}
	return h.sp.At(float64(d))
}

// Curve samples the stored spline at each integer difference in [lo, hi];
// the Figure 6 experiment plots it.
func (h *H1) Curve() (ds []int, hs []float64) {
	for d := h.lo; d <= h.hi; d++ {
		ds = append(ds, d)
		hs = append(hs, h.sp.At(float64(d)))
	}
	return ds, hs
}

// H2 is the precomputed surface h2 of Theorem 5(1) for an AR(1) stream:
// HEEB's score is a time-independent function of (v_x, x_{t0}), stored as a
// bicubic interpolation over a control-point grid — the paper uses 25
// control points (5×5) for the REAL experiment.
type H2 struct {
	vLo, vHi int
	xLo, xHi int
	grid     *interp.Grid
}

// PrecomputeH2 evaluates the exact score at an nv×nx control grid spanning
// v ∈ [vLo, vHi] (candidate values) and x ∈ [xLo, xHi] (current
// observations), then fits the bicubic surface.
func PrecomputeH2(nf process.NormalForecaster, l LFunc, vLo, vHi, xLo, xHi, nv, nx, fallbackHorizon int) (*H2, error) {
	if vLo >= vHi || xLo >= xHi {
		return nil, fmt.Errorf("core: PrecomputeH2 needs non-empty ranges, got v[%d,%d] x[%d,%d]", vLo, vHi, xLo, xHi)
	}
	if nv < 2 || nx < 2 {
		return nil, fmt.Errorf("core: PrecomputeH2 needs at least a 2x2 control grid, got %dx%d", nv, nx)
	}
	vs := intLinspace(vLo, vHi, nv)
	xs := intLinspace(xLo, xHi, nx)
	z := make([][]float64, len(xs))
	for j, x := range xs {
		z[j] = make([]float64, len(vs))
		for i, v := range vs {
			z[j][i] = MarginalH(nf, int(x), int(v), l, fallbackHorizon)
		}
	}
	grid, err := interp.NewGrid(vs, xs, z)
	if err != nil {
		return nil, err
	}
	return &H2{vLo: vLo, vHi: vHi, xLo: xLo, xHi: xHi, grid: grid}, nil
}

// At returns the approximate HEEB score for a tuple with value v when the
// most recent observation is last, clamped to the tabulated domain.
func (h *H2) At(last, v int) float64 {
	return h.grid.At(
		clampF(v, h.vLo, h.vHi),
		clampF(last, h.xLo, h.xHi),
	)
}

// Section returns a fast evaluator for a fixed current observation: the
// one-dimensional slice v ↦ h2(v, last) as a spline. Replacement decisions
// score many candidates against the same observation, so this amortizes the
// bicubic evaluation to one spline build per time step.
func (h *H2) Section(last int) func(v int) float64 {
	sp := h.grid.Section(clampF(last, h.xLo, h.xHi))
	return func(v int) float64 {
		return sp.At(clampF(v, h.vLo, h.vHi))
	}
}

// Accuracy compares the surface against exact recomputation on a dense
// nvEval×nxEval lattice and returns max and mean absolute error (the
// Figure 16 quality report).
func (h *H2) Accuracy(nf process.NormalForecaster, l LFunc, fallbackHorizon, nvEval, nxEval int) (maxErr, meanErr float64) {
	return h.grid.MaxAbsError(func(v, x float64) float64 {
		return MarginalH(nf, int(math.Round(x)), int(math.Round(v)), l, fallbackHorizon)
	}, nvEval, nxEval)
}

// intLinspace returns n distinct integer-valued control coordinates evenly
// covering [lo, hi] (fewer than n when the range is narrower than n points).
func intLinspace(lo, hi, n int) []float64 {
	out := make([]float64, 0, n)
	prev := math.Inf(-1)
	for i := 0; i < n; i++ {
		v := math.Round(float64(lo) + float64(hi-lo)*float64(i)/float64(n-1))
		if v > prev {
			out = append(out, v)
			prev = v
		}
	}
	return out
}

func clampF(v, lo, hi int) float64 {
	if v < lo {
		v = lo
	}
	if v > hi {
		v = hi
	}
	return float64(v)
}
